#include "stats/recorder.h"

// Header-only today; kept as a translation unit so the build target exists
// for future non-inline additions.
