// Per-node performance counters.
//
// The counters mirror the breakdown reported in the paper's figures:
// remote-data wait, predictive-protocol (presend) time, and compute+synch,
// plus raw protocol event counts used in the discussion sections.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace presto::stats {

struct NodeCounters {
  // Time breakdown (simulated ns).
  sim::Time remote_wait = 0;   // stalls on shared-memory faults
  sim::Time presend = 0;       // time in the predictive presend directive
  sim::Time barrier_wait = 0;  // waiting at barriers/reductions
  sim::Time lock_wait = 0;     // spinning on shared locks (Splash variants)
  sim::Time finish = 0;        // local clock at SPMD body completion

  // Shared-memory access counts.
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t local_faults = 0;  // faults whose home is this node

  // Protocol traffic.
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;

  // Predictive protocol.
  std::uint64_t presend_blocks_sent = 0;
  std::uint64_t presend_blocks_received = 0;
  std::uint64_t presend_msgs = 0;
  std::uint64_t schedule_entries = 0;  // live entries recorded at this home

  // Metadata access counts (deterministic, but layout-dependent: they count
  // protocol metadata probes, not simulated events, so golden pins exclude
  // them).
  std::uint64_t dir_probes = 0;      // directory / reader-set probes at home
  std::uint64_t sched_lookups = 0;   // schedule index probes at this home
};

// Host-side (wall-clock) execution counters for one Engine run. These are
// observability only — they describe how fast the host executed the
// simulation and never feed back into simulated results, so they may differ
// across backends and machines while every NodeCounters value stays
// bit-identical. Surfaced by bench/host_throughput and System::run.
struct HostCounters {
  double run_wall_s = 0.0;            // wall time inside System::run
  std::uint64_t events = 0;           // engine events executed
  std::uint64_t handoffs = 0;         // cross-context run-token transfers
  std::uint64_t direct_resumes = 0;   // self-resumes (zero-switch fast path)
  std::uint64_t yields = 0;           // sum of processor horizon yields
  std::uint64_t blocks = 0;           // sum of processor block() parks
  std::uint64_t metadata_bytes = 0;   // protocol + network metadata resident
  const char* backend = "";           // "fiber", "thread" or "parallel"
  std::uint64_t windows = 0;          // conservative windows executed (0 = off)
  int workers = 1;                    // worker threads draining lanes

  // Window-synchronization attribution (parallel backend with workers > 1;
  // all-zero otherwise). Mirrors sim::WindowPoolStats — where the caller's
  // wall time inside run_window goes, and how the helpers were driven.
  std::uint64_t win_barrier_wait_ns = 0;  // caller waiting for helper arrivals
  std::uint64_t win_drain_ns = 0;         // caller draining own/adopted lanes
  std::uint64_t win_boundary_ns = 0;      // serial boundary ops (incl. flush)
  std::uint64_t win_park_ns = 0;          // helpers parked in futex waits
  std::uint64_t win_parks = 0;            // helper futex parks
  std::uint64_t win_spin_releases = 0;    // releases acquired by spin alone
  std::uint64_t win_releases = 0;         // helper releases across windows
  std::uint64_t win_serial_windows = 0;   // windows run wholly on the caller
  std::uint64_t win_adopted_drains = 0;   // helper lanes the caller drained
};

class Recorder {
 public:
  explicit Recorder(int nodes) : nodes_(static_cast<std::size_t>(nodes)) {}

  NodeCounters& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const NodeCounters& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Sums a member over all nodes.
  template <typename T>
  T sum(T NodeCounters::* member) const {
    T total{};
    for (const auto& n : nodes_) total += n.*member;
    return total;
  }
  template <typename T>
  T max(T NodeCounters::* member) const {
    T best{};
    for (const auto& n : nodes_)
      if (n.*member > best) best = n.*member;
    return best;
  }
  template <typename T>
  double avg(T NodeCounters::* member) const {
    return nodes_.empty() ? 0.0
                          : static_cast<double>(sum(member)) /
                                static_cast<double>(nodes_.size());
  }

  HostCounters& host() { return host_; }
  const HostCounters& host() const { return host_; }

 private:
  std::vector<NodeCounters> nodes_;
  HostCounters host_;
};

}  // namespace presto::stats
