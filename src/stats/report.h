// Run reports: the per-version execution-time breakdown the paper's figures
// show ({remote data wait, predictive protocol, compute+synch}), plus the
// raw protocol counters discussed in §5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/recorder.h"

namespace presto::stats {

struct Report {
  std::string label;
  int nodes = 0;
  std::uint32_t block_size = 0;

  // Simulated time (ns). Waits are averaged over nodes, exec is the maximum
  // node finish time; compute_synch = exec - remote_wait - presend.
  sim::Time exec = 0;
  sim::Time remote_wait = 0;
  sim::Time presend = 0;
  sim::Time compute_synch = 0;
  sim::Time barrier_wait = 0;  // informational (included in compute_synch)
  sim::Time lock_wait = 0;     // informational

  std::uint64_t shared_accesses = 0;
  std::uint64_t faults = 0;
  std::uint64_t local_faults = 0;
  double local_hit_pct = 0.0;  // shared accesses satisfied without a fault
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t presend_blocks = 0;

  // Metadata-layer access counts (summed over nodes): directory/reader-set
  // probes and schedule index probes at the home nodes.
  std::uint64_t dir_probes = 0;
  std::uint64_t sched_lookups = 0;

  // Commutative-update (ccached) protocol counters: flush round trips and
  // the (word, delta) entries they carried. Each flush opens one merge-class
  // miss window, so under ccached the class identity reads
  // miss_cold + miss_invalidation + miss_presend_waste + miss_merge ==
  // faults + cc_flushes (zero for every other protocol and for ccached runs
  // that never touch a commutative block).
  std::uint64_t cc_flushes = 0;
  std::uint64_t cc_entries = 0;

  // Host-side (wall-clock) execution counters for the run that produced this
  // report. Observability only — never part of simulated results.
  HostCounters host;

  // Trace-derived attribution (filled only when the run was traced;
  // trace/tracer.h). miss_latency_total reconciles exactly with the summed
  // remote_wait counter, and presend hits + waste + unused with
  // presend_blocks_received.
  bool traced = false;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t miss_cold = 0;
  std::uint64_t miss_invalidation = 0;
  std::uint64_t miss_presend_waste = 0;
  std::uint64_t miss_merge = 0;  // misses on commutative blocks
  sim::Time miss_latency_total = 0;
  std::uint64_t presend_hits = 0;
  std::uint64_t presend_waste = 0;
  std::uint64_t presend_unused = 0;

  // Formatted outputs for a set of versions of one application; times are
  // normalized to the fastest version, as in the paper's figures.
  static std::string table(const std::vector<Report>& rs);
  static std::string bars(const std::vector<Report>& rs);
  // Trace-attribution block for the traced reports in rs (empty string if
  // none were traced); appended after table() by the benches.
  static std::string trace_summary(const std::vector<Report>& rs);
};

}  // namespace presto::stats
