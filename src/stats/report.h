// Run reports: the per-version execution-time breakdown the paper's figures
// show ({remote data wait, predictive protocol, compute+synch}), plus the
// raw protocol counters discussed in §5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/recorder.h"

namespace presto::stats {

struct Report {
  std::string label;
  int nodes = 0;
  std::uint32_t block_size = 0;

  // Simulated time (ns). Waits are averaged over nodes, exec is the maximum
  // node finish time; compute_synch = exec - remote_wait - presend.
  sim::Time exec = 0;
  sim::Time remote_wait = 0;
  sim::Time presend = 0;
  sim::Time compute_synch = 0;
  sim::Time barrier_wait = 0;  // informational (included in compute_synch)
  sim::Time lock_wait = 0;     // informational

  std::uint64_t shared_accesses = 0;
  std::uint64_t faults = 0;
  std::uint64_t local_faults = 0;
  double local_hit_pct = 0.0;  // shared accesses satisfied without a fault
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t presend_blocks = 0;

  // Metadata-layer access counts (summed over nodes): directory/reader-set
  // probes and schedule index probes at the home nodes.
  std::uint64_t dir_probes = 0;
  std::uint64_t sched_lookups = 0;

  // Host-side (wall-clock) execution counters for the run that produced this
  // report. Observability only — never part of simulated results.
  HostCounters host;

  // Formatted outputs for a set of versions of one application; times are
  // normalized to the fastest version, as in the paper's figures.
  static std::string table(const std::vector<Report>& rs);
  static std::string bars(const std::vector<Report>& rs);
};

}  // namespace presto::stats
