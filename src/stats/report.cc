#include "stats/report.h"

#include <algorithm>

#include "util/table.h"

namespace presto::stats {

namespace {
sim::Time min_exec(const std::vector<Report>& rs) {
  sim::Time best = rs.empty() ? 1 : rs.front().exec;
  for (const auto& r : rs) best = std::min(best, r.exec);
  return best > 0 ? best : 1;
}
}  // namespace

std::string Report::table(const std::vector<Report>& rs) {
  util::Table t({"version", "exec (s)", "remote wait", "presend",
                 "compute+synch", "rel. time", "local hit %", "msgs",
                 "MB sent", "faults"});
  const double base = static_cast<double>(min_exec(rs));
  for (const auto& r : rs) {
    t.add_row({r.label, util::fmt_double(sim::to_seconds(r.exec), 3),
               util::fmt_double(sim::to_seconds(r.remote_wait), 3),
               util::fmt_double(sim::to_seconds(r.presend), 3),
               util::fmt_double(sim::to_seconds(r.compute_synch), 3),
               util::fmt_double(static_cast<double>(r.exec) / base, 2),
               util::fmt_double(r.local_hit_pct, 2),
               std::to_string(r.msgs),
               util::fmt_double(static_cast<double>(r.bytes) / 1e6, 2),
               std::to_string(r.faults)});
  }
  return t.to_string();
}

std::string Report::trace_summary(const std::vector<Report>& rs) {
  bool any = false;
  for (const auto& r : rs) any = any || r.traced;
  if (!any) return "";
  util::Table t({"version", "events", "miss lat (s)", "cold", "inval",
                 "presend-waste", "merge", "presend hits", "waste", "unused"});
  for (const auto& r : rs) {
    if (!r.traced) continue;
    t.add_row({r.label, std::to_string(r.trace_events),
               util::fmt_double(sim::to_seconds(r.miss_latency_total), 3),
               std::to_string(r.miss_cold), std::to_string(r.miss_invalidation),
               std::to_string(r.miss_presend_waste),
               std::to_string(r.miss_merge),
               std::to_string(r.presend_hits), std::to_string(r.presend_waste),
               std::to_string(r.presend_unused)});
  }
  return "trace attribution:\n" + t.to_string();
}

std::string Report::bars(const std::vector<Report>& rs) {
  const double base = static_cast<double>(min_exec(rs));
  std::vector<util::Bar> bars;
  for (const auto& r : rs) {
    util::Bar b;
    b.label = r.label;
    b.segments = {
        {"remote data wait", static_cast<double>(r.remote_wait) / base},
        {"predictive protocol", static_cast<double>(r.presend) / base},
        {"compute+synch", static_cast<double>(r.compute_synch) / base},
    };
    bars.push_back(std::move(b));
  }
  return util::render_stacked_bars(bars);
}

}  // namespace presto::stats
