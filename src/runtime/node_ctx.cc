#include "runtime/node_ctx.h"

#include <cstring>

#include "proto/ccached.h"

namespace presto::runtime {

NodeCtx::NodeCtx(int id, const MachineConfig& cfg, sim::Processor& proc,
                 mem::GlobalSpace& space, stats::Recorder& rec,
                 BarrierManager& barrier, proto::Protocol& protocol)
    : id_(id),
      cfg_(cfg),
      proc_(proc),
      space_(space),
      rec_(rec),
      barrier_(barrier),
      protocol_(protocol),
      cc_(dynamic_cast<proto::CCachedProtocol*>(&protocol)),
      rng_(cfg.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(id + 1))) {}

void NodeCtx::cc_add(mem::Addr a, std::int64_t delta) {
  proc_.charge(cfg_.access_check);
  ++rec_.node(id_).shared_writes;
  if (cc_ != nullptr) {
    cc_->cc_update(id_, a, delta);
    return;
  }
  space_.rmw(id_, a, sizeof(std::int64_t), [delta](void* p) {
    std::int64_t v;
    std::memcpy(&v, p, sizeof(v));
    v += delta;
    std::memcpy(p, &v, sizeof(v));
  });
}

void NodeCtx::cc_flush() {
  if (cc_ != nullptr) cc_->cc_flush(id_);
}

}  // namespace presto::runtime
