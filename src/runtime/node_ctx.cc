#include "runtime/node_ctx.h"

namespace presto::runtime {

NodeCtx::NodeCtx(int id, const MachineConfig& cfg, sim::Processor& proc,
                 mem::GlobalSpace& space, stats::Recorder& rec,
                 BarrierManager& barrier, proto::Protocol& protocol)
    : id_(id),
      cfg_(cfg),
      proc_(proc),
      space_(space),
      rec_(rec),
      barrier_(barrier),
      protocol_(protocol),
      rng_(cfg.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(id + 1))) {}

}  // namespace presto::runtime
