#include "runtime/lock.h"

namespace presto::runtime {

SharedLock SharedLock::create(mem::GlobalSpace& space, int home) {
  SharedLock l;
  l.word_ = space.arena_alloc(home, sizeof(std::uint64_t),
                              /*align=*/space.block_size());
  return l;
}

void SharedLock::acquire(NodeCtx& c) {
  const sim::Time t0 = c.proc().now();
  bool contended = false;
  for (;;) {
    bool got = false;
    c.rmw<std::uint64_t>(word_, [&](std::uint64_t& w) {
      if (w == 0) {
        w = 1;
        got = true;
      }
    });
    if (got) break;
    contended = true;
    // Back off, letting pending protocol events (including the holder's
    // release) make progress.
    c.charge(sim::microseconds(5));
    c.proc().yield();
  }
  // Only contended acquisitions count as lock wait; the cost of fetching
  // the lock block itself is already accounted as remote wait.
  if (contended) c.counters().lock_wait += c.proc().now() - t0;
}

void SharedLock::release(NodeCtx& c) {
  c.rmw<std::uint64_t>(word_, [](std::uint64_t& w) { w = 0; });
}

}  // namespace presto::runtime
