#include "runtime/lock.h"

#include "trace/hooks.h"

namespace presto::runtime {

SharedLock SharedLock::create(mem::GlobalSpace& space, int home) {
  SharedLock l;
  l.word_ = space.arena_alloc(home, sizeof(std::uint64_t),
                              /*align=*/space.block_size());
  return l;
}

void SharedLock::acquire(NodeCtx& c) {
  const sim::Time t0 = c.proc().now();
  trace::Hooks* h = c.protocol().trace_hooks();
  const std::uint64_t lock_block = c.space().block_of(word_);
  if (h != nullptr) [[unlikely]]
    h->on_lock_acquire(c.id(), lock_block, t0);
  bool contended = false;
  for (;;) {
    bool got = false;
    c.rmw<std::uint64_t>(word_, [&](std::uint64_t& w) {
      if (w == 0) {
        w = 1;
        got = true;
      }
    });
    if (got) break;
    contended = true;
    // Back off, letting pending protocol events (including the holder's
    // release) make progress.
    c.charge(sim::microseconds(5));
    c.proc().yield();
  }
  if (h != nullptr) [[unlikely]]
    h->on_lock_acquired(c.id(), lock_block, c.proc().now(), contended);
  // Only contended acquisitions count as lock wait; the cost of fetching
  // the lock block itself is already accounted as remote wait.
  if (contended) c.counters().lock_wait += c.proc().now() - t0;
}

void SharedLock::release(NodeCtx& c) {
  if (trace::Hooks* h = c.protocol().trace_hooks(); h != nullptr) [[unlikely]]
    h->on_lock_release(c.id(), c.space().block_of(word_), c.proc().now());
  c.rmw<std::uint64_t>(word_, [](std::uint64_t& w) { w = 0; });
}

}  // namespace presto::runtime
