// Per-node application context: the API that C**-compiled code (and our
// hand-written SPMD applications) runs against.
//
// Every shared-memory access goes through the fine-grain tag check (charging
// the Blizzard software check cost) and may fault into the coherence
// protocol. Compute is charged explicitly in flops/ops, and collectives go
// through the control-network barrier manager. phase()/flush_phase() are the
// compiler-placed predictive-protocol directives — no-ops under other
// protocols, so identical application code runs in every configuration.
#pragma once

#include <cstdint>
#include <span>

#include "mem/global_space.h"
#include "proto/protocol.h"
#include "runtime/barrier.h"
#include "runtime/machine.h"
#include "sim/processor.h"
#include "stats/recorder.h"
#include "trace/hooks.h"
#include "util/rng.h"

namespace presto::proto {
class CCachedProtocol;
}  // namespace presto::proto

namespace presto::runtime {

class NodeCtx {
 public:
  NodeCtx(int id, const MachineConfig& cfg, sim::Processor& proc,
          mem::GlobalSpace& space, stats::Recorder& rec,
          BarrierManager& barrier, proto::Protocol& protocol);

  int id() const { return id_; }
  int nodes() const { return cfg_.nodes; }
  sim::Processor& proc() { return proc_; }
  mem::GlobalSpace& space() { return space_; }
  proto::Protocol& protocol() { return protocol_; }
  util::Rng& rng() { return rng_; }
  const MachineConfig& machine() const { return cfg_; }

  // ---- Shared-memory access ------------------------------------------------

  template <typename T>
  T read(mem::Addr a) {
    proc_.charge(cfg_.access_check);
    ++rec_.node(id_).shared_reads;
    return space_.read_value<T>(id_, a);
  }
  template <typename T>
  void write(mem::Addr a, const T& v) {
    proc_.charge(cfg_.access_check);
    ++rec_.node(id_).shared_writes;
    space_.write_value<T>(id_, a, v);
  }
  void read_bytes(mem::Addr a, void* out, std::size_t n) {
    proc_.charge(cfg_.access_check);
    ++rec_.node(id_).shared_reads;
    space_.read(id_, a, out, n);
  }
  void write_bytes(mem::Addr a, const void* in, std::size_t n) {
    proc_.charge(cfg_.access_check);
    ++rec_.node(id_).shared_writes;
    space_.write(id_, a, in, n);
  }
  // Atomic read-modify-write on a value that does not straddle blocks.
  template <typename T, typename Fn>
  void rmw(mem::Addr a, Fn&& fn) {
    proc_.charge(cfg_.access_check);
    ++rec_.node(id_).shared_writes;
    space_.rmw(id_, a, sizeof(T),
               [&](void* p) { fn(*static_cast<T*>(p)); });
  }

  // ---- Commutative (reduction) updates --------------------------------------

  // Adds `delta` to the 64-bit word at a, which must lie 8-byte aligned
  // inside a mem::GlobalSpace::set_commutative region. Under the ccached
  // protocol the update is privatized into this node's log (made globally
  // visible by cc_flush); under every other protocol it degrades to an
  // ordinary atomic read-modify-write, so identical application code runs in
  // every configuration.
  void cc_add(mem::Addr a, std::int64_t delta);
  // Flushes this node's pending commutative updates to their homes. No-op
  // under non-ccached protocols (there is nothing privatized to flush).
  void cc_flush();

  // ---- Compute cost model ---------------------------------------------------

  void charge(sim::Time t) { proc_.charge(t); }
  void charge_flops(std::int64_t n) { proc_.charge(n * cfg_.flop); }
  void charge_ops(std::int64_t n) { proc_.charge(n * cfg_.op); }

  // ---- Collectives -----------------------------------------------------------

  void barrier() { barrier_.barrier(id_); }
  double reduce_sum(double v) { return barrier_.reduce_sum(id_, v); }
  double reduce_max(double v) { return barrier_.reduce_max(id_, v); }
  void reduce_vec_sum(std::span<double> inout) {
    barrier_.reduce_vec_sum(id_, inout);
  }

  // ---- Predictive-protocol directives ---------------------------------------

  void phase(int phase_id) {
    trace::Hooks* h = protocol_.trace_hooks();
    if (h != nullptr) [[unlikely]] h->on_phase_begin(id_, phase_id, proc_.now());
    protocol_.phase_begin(id_, phase_id);
    if (h != nullptr) [[unlikely]] h->on_phase_ready(id_, phase_id, proc_.now());
  }
  void flush_phase(int phase_id) {
    if (trace::Hooks* h = protocol_.trace_hooks(); h != nullptr) [[unlikely]]
      h->on_phase_flush(id_, phase_id, proc_.now());
    protocol_.phase_flush(id_, phase_id);
  }

  // ---- Dynamic global allocation (homed at this node) ------------------------

  mem::Addr galloc(std::size_t bytes, std::size_t align = 8) {
    return space_.arena_alloc(id_, bytes, align);
  }
  std::size_t arena_mark() const { return space_.arena_mark(id_); }
  void arena_reset(std::size_t mark) { space_.arena_reset(id_, mark); }

  stats::NodeCounters& counters() { return rec_.node(id_); }

 private:
  const int id_;
  const MachineConfig& cfg_;
  sim::Processor& proc_;
  mem::GlobalSpace& space_;
  stats::Recorder& rec_;
  BarrierManager& barrier_;
  proto::Protocol& protocol_;
  proto::CCachedProtocol* cc_ = nullptr;  // non-null iff protocol is ccached
  util::Rng rng_;
};

}  // namespace presto::runtime
