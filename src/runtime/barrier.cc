#include "runtime/barrier.h"

#include "trace/hooks.h"
#include "util/check.h"

namespace presto::runtime {

BarrierManager::BarrierManager(sim::Engine& engine, stats::Recorder& rec,
                               int nodes, sim::Time latency,
                               sim::Time per_byte)
    : engine_(engine),
      rec_(rec),
      nodes_(nodes),
      latency_(latency),
      per_byte_(per_byte),
      deferred_(engine.windowed()) {
  if (deferred_) {
    slots_.resize(static_cast<std::size_t>(nodes));
    engine_.set_boundary_op(sim::BoundaryOp::kBarrier,
                            [this] { boundary_scan(); });
  }
}

void BarrierManager::arrive_and_wait(int node, std::size_t bytes) {
  auto& p = engine_.processor(node);
  const sim::Time arrive = p.now();
  // In deferred mode epoch_ only advances at window boundaries, so this read
  // is stable for the whole drain.
  const std::uint64_t my_epoch = epoch_;
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_barrier_arrive(node, my_epoch, arrive);
  if (deferred_) {
    Slot& s = slots_[static_cast<std::size_t>(node)];
    PRESTO_CHECK(!s.arrived, "node " << node << " re-arrived before release");
    s.arrived = true;
    s.arrive = arrive;
    s.bytes = bytes;
  } else {
    if (arrive > max_arrive_) max_arrive_ = arrive;
    ++arrived_;
    PRESTO_CHECK(arrived_ <= nodes_, "too many barrier arrivals");
    if (arrived_ == nodes_) {
      const sim::Time release = max_arrive_ + latency_ +
                                static_cast<sim::Time>(bytes) * per_byte_;
      scalar_result_[my_epoch & 1] = scalar_acc_;
      vec_result_[my_epoch & 1] = vec_acc_;
      vec_acc_.clear();
      arrived_ = 0;
      max_arrive_ = 0;
      ++epoch_;
      for (int n = 0; n < nodes_; ++n) engine_.processor(n).wake(release);
      // The completer latched its own wake above (it is running, not
      // parked); consume it so its clock also advances to the release time.
      p.block();
    }
  }
  while (epoch_ == my_epoch) p.block();
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_barrier_release(node, my_epoch, p.now());
  rec_.node(node).barrier_wait += p.now() - arrive;
}

void BarrierManager::boundary_scan() {
  for (const Slot& s : slots_)
    if (!s.arrived) return;
  const Slot::Op op = slots_[0].op;
  const std::size_t bytes = slots_[0].bytes;
  sim::Time max_arrive = 0;
  for (const Slot& s : slots_) {
    PRESTO_CHECK(s.op == op && s.bytes == bytes,
                 "mismatched collectives in one epoch");
    if (s.arrive > max_arrive) max_arrive = s.arrive;
  }
  const sim::Time release =
      max_arrive + latency_ + static_cast<sim::Time>(bytes) * per_byte_;
  // Fold contributions in node order — the windowed canon's fixed
  // floating-point combine order (legacy folds in arrival order).
  switch (op) {
    case Slot::Op::kNone:
      break;
    case Slot::Op::kSum: {
      double acc = slots_[0].scalar;
      for (int n = 1; n < nodes_; ++n)
        acc += slots_[static_cast<std::size_t>(n)].scalar;
      scalar_result_[epoch_ & 1] = acc;
      break;
    }
    case Slot::Op::kMax: {
      double acc = slots_[0].scalar;
      for (int n = 1; n < nodes_; ++n) {
        const double v = slots_[static_cast<std::size_t>(n)].scalar;
        if (v > acc) acc = v;
      }
      scalar_result_[epoch_ & 1] = acc;
      break;
    }
    case Slot::Op::kVec: {
      std::vector<double>& acc = vec_result_[epoch_ & 1];
      acc = slots_[0].vec;
      for (int n = 1; n < nodes_; ++n) {
        const std::vector<double>& v = slots_[static_cast<std::size_t>(n)].vec;
        PRESTO_CHECK(v.size() == acc.size(), "reduce_vec_sum size mismatch");
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += v[i];
      }
      break;
    }
  }
  for (Slot& s : slots_) {
    s.arrived = false;
    s.op = Slot::Op::kNone;
    s.vec.clear();
  }
  // Results are published before the epoch advances; parked nodes observe
  // the new epoch only after their boundary-scheduled wake runs.
  ++epoch_;
  for (int n = 0; n < nodes_; ++n) engine_.processor(n).wake(release);
}

void BarrierManager::barrier(int node) { arrive_and_wait(node, 0); }

double BarrierManager::reduce_sum(int node, double v) {
  const std::uint64_t parity = epoch_ & 1;
  if (deferred_) {
    Slot& s = slots_[static_cast<std::size_t>(node)];
    s.op = Slot::Op::kSum;
    s.scalar = v;
  } else {
    scalar_acc_ = arrived_ == 0 ? v : scalar_acc_ + v;
  }
  arrive_and_wait(node, sizeof(double));
  return scalar_result_[parity];
}

double BarrierManager::reduce_max(int node, double v) {
  const std::uint64_t parity = epoch_ & 1;
  if (deferred_) {
    Slot& s = slots_[static_cast<std::size_t>(node)];
    s.op = Slot::Op::kMax;
    s.scalar = v;
  } else {
    scalar_acc_ = arrived_ == 0 ? v : (v > scalar_acc_ ? v : scalar_acc_);
  }
  arrive_and_wait(node, sizeof(double));
  return scalar_result_[parity];
}

void BarrierManager::reduce_vec_sum(int node, std::span<double> inout) {
  const std::uint64_t parity = epoch_ & 1;
  if (deferred_) {
    Slot& s = slots_[static_cast<std::size_t>(node)];
    s.op = Slot::Op::kVec;
    s.vec.assign(inout.begin(), inout.end());
  } else if (arrived_ == 0) {
    vec_acc_.assign(inout.begin(), inout.end());
  } else {
    PRESTO_CHECK(vec_acc_.size() == inout.size(),
                 "reduce_vec_sum size mismatch");
    for (std::size_t i = 0; i < inout.size(); ++i) vec_acc_[i] += inout[i];
  }
  arrive_and_wait(node, inout.size() * sizeof(double));
  const auto& result = vec_result_[parity];
  for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = result[i];
}

}  // namespace presto::runtime
