#include "runtime/barrier.h"

#include "trace/hooks.h"
#include "util/check.h"

namespace presto::runtime {

BarrierManager::BarrierManager(sim::Engine& engine, stats::Recorder& rec,
                               int nodes, sim::Time latency,
                               sim::Time per_byte)
    : engine_(engine),
      rec_(rec),
      nodes_(nodes),
      latency_(latency),
      per_byte_(per_byte) {}

void BarrierManager::arrive_and_wait(int node, std::size_t bytes) {
  auto& p = engine_.processor(node);
  const sim::Time arrive = p.now();
  if (arrive > max_arrive_) max_arrive_ = arrive;
  const std::uint64_t my_epoch = epoch_;
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_barrier_arrive(node, my_epoch, arrive);
  ++arrived_;
  PRESTO_CHECK(arrived_ <= nodes_, "too many barrier arrivals");
  if (arrived_ == nodes_) {
    const sim::Time release = max_arrive_ + latency_ +
                              static_cast<sim::Time>(bytes) * per_byte_;
    scalar_result_[my_epoch & 1] = scalar_acc_;
    vec_result_[my_epoch & 1] = vec_acc_;
    vec_acc_.clear();
    arrived_ = 0;
    max_arrive_ = 0;
    ++epoch_;
    for (int n = 0; n < nodes_; ++n) engine_.processor(n).wake(release);
    // The completer latched its own wake above (it is running, not
    // parked); consume it so its clock also advances to the release time.
    p.block();
  }
  while (epoch_ == my_epoch) p.block();
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_barrier_release(node, my_epoch, p.now());
  rec_.node(node).barrier_wait += p.now() - arrive;
}

void BarrierManager::barrier(int node) { arrive_and_wait(node, 0); }

double BarrierManager::reduce_sum(int node, double v) {
  const std::uint64_t parity = epoch_ & 1;
  scalar_acc_ = arrived_ == 0 ? v : scalar_acc_ + v;
  arrive_and_wait(node, sizeof(double));
  return scalar_result_[parity];
}

double BarrierManager::reduce_max(int node, double v) {
  const std::uint64_t parity = epoch_ & 1;
  scalar_acc_ = arrived_ == 0 ? v : (v > scalar_acc_ ? v : scalar_acc_);
  arrive_and_wait(node, sizeof(double));
  return scalar_result_[parity];
}

void BarrierManager::reduce_vec_sum(int node, std::span<double> inout) {
  const std::uint64_t parity = epoch_ & 1;
  if (arrived_ == 0) {
    vec_acc_.assign(inout.begin(), inout.end());
  } else {
    PRESTO_CHECK(vec_acc_.size() == inout.size(),
                 "reduce_vec_sum size mismatch");
    for (std::size_t i = 0; i < inout.size(); ++i) vec_acc_[i] += inout[i];
  }
  arrive_and_wait(node, inout.size() * sizeof(double));
  const auto& result = vec_result_[parity];
  for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = result[i];
}

}  // namespace presto::runtime
