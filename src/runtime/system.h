// Top-level simulated machine: engine + network + global space + coherence
// protocol + barrier manager, with an SPMD launcher.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "mem/global_space.h"
#include "net/network.h"
#include "proto/ccached.h"
#include "proto/predictive.h"
#include "proto/stache.h"
#include "proto/writeupdate.h"
#include "runtime/barrier.h"
#include "runtime/machine.h"
#include "runtime/node_ctx.h"
#include "sim/engine.h"
#include "stats/recorder.h"
#include "stats/report.h"
#include "trace/tracer.h"

namespace presto::runtime {

class System {
 public:
  System(const MachineConfig& cfg, ProtocolKind kind);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const MachineConfig& config() const { return cfg_; }
  ProtocolKind kind() const { return kind_; }
  sim::Engine& engine() { return engine_; }
  net::Network& network() { return *net_; }
  mem::GlobalSpace& space() { return *space_; }
  stats::Recorder& recorder() { return rec_; }
  BarrierManager& barrier_manager() { return *barrier_; }
  proto::Protocol& protocol() { return *protocol_; }

  // Null unless the corresponding protocol kind is active.
  proto::PredictiveProtocol* predictive();
  proto::WriteUpdateProtocol* writeupdate();
  proto::CCachedProtocol* ccached();

  // Attaches the coherence invariant oracle (check/oracle.h) to this system's
  // space, protocol and network. Attached automatically at construction when
  // check::oracle_enabled_by_default() — PRESTO_ORACLE=1/0 overrides the
  // build-type default (on without NDEBUG, off otherwise). Observation is
  // pure, so simulated results are bit-identical either way. Calling again
  // replaces the oracle (the fuzzer re-attaches with FailMode::kRecord).
  check::Oracle& enable_oracle(check::FailMode fail);
  check::Oracle* oracle() { return oracle_.get(); }

  // Attaches the event tracer (trace/tracer.h). Attached automatically at
  // construction when cfg.trace.enabled (the --trace CLI flag). The tracer
  // chains to whatever observers are already installed (the oracle in Debug
  // builds), so both observe the same run. At the end of run() the trace is
  // written to cfg.trace.path: ".json" → Perfetto trace_event JSON,
  // anything else → the binary format (trace/file.h).
  trace::Tracer& enable_trace(const trace::TraceConfig& tcfg);
  trace::Tracer* tracer() { return tracer_.get(); }

  // Runs `body` on every node to completion; callable once per System.
  void run(const std::function<void(NodeCtx&)>& body);

  sim::Time exec_time() const { return exec_time_; }
  stats::Report report(std::string label) const;

 private:
  void write_trace();

  MachineConfig cfg_;
  ProtocolKind kind_;
  stats::Recorder rec_;
  sim::Engine engine_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<mem::GlobalSpace> space_;
  std::unique_ptr<proto::Protocol> protocol_;
  std::unique_ptr<check::Oracle> oracle_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<BarrierManager> barrier_;
  std::vector<std::unique_ptr<NodeCtx>> ctxs_;
  sim::Time exec_time_ = 0;
  bool ran_ = false;
};

}  // namespace presto::runtime
