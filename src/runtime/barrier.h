// Global barrier and reduction manager, modelling the CM-5 control network
// (hardware barriers and combines in a few microseconds).
//
// All nodes must participate in every collective, in the same order — the
// standard SPMD discipline. Release time is max(arrival) + latency
// (+ payload combine cost for reductions), which naturally exposes load
// imbalance as synchronization time (the effect the paper highlights for
// Adaptive in §5.1).
//
// Windowed engines (sim/engine.h): arrivals from concurrently-draining lanes
// may not fold into shared accumulators, so each node records its arrival
// time and reduction contribution in a private per-node slot and parks; the
// window-boundary scan (BoundaryOp::kBarrier) detects a complete epoch,
// folds the contributions in node order — a fixed floating-point combine
// order, independent of arrival order and of how lanes were partitioned over
// workers — publishes the result, advances the epoch and wakes every node at
// the release time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.h"
#include "sim/processor.h"
#include "stats/recorder.h"

namespace presto::trace {
class Hooks;
}  // namespace presto::trace

namespace presto::runtime {

class BarrierManager {
 public:
  BarrierManager(sim::Engine& engine, stats::Recorder& rec, int nodes,
                 sim::Time latency, sim::Time per_byte);

  void barrier(int node);
  double reduce_sum(int node, double v);
  double reduce_max(int node, double v);
  // Element-wise sum across nodes; result written back into `inout`.
  void reduce_vec_sum(int node, std::span<double> inout);

  std::uint64_t barriers_completed() const { return epoch_; }

  // Event tracer (trace/tracer.h); null in untraced runs.
  void set_trace_hooks(trace::Hooks* h) { trace_ = h; }

 private:
  // Deferred arrival of one node (windowed mode): written only by the
  // owning node's lane during a window, read and reset only by the boundary
  // scan — the pool's window barrier orders the two.
  struct Slot {
    enum class Op : std::uint8_t { kNone, kSum, kMax, kVec };
    bool arrived = false;
    Op op = Op::kNone;
    sim::Time arrive = 0;
    std::size_t bytes = 0;
    double scalar = 0.0;
    std::vector<double> vec;
  };

  // Generic collective: contribute, wait for the epoch to advance. `bytes`
  // models combine payload through the control network.
  void arrive_and_wait(int node, std::size_t bytes);
  // Window-boundary scan: completes the epoch once every slot has arrived.
  void boundary_scan();

  sim::Engine& engine_;
  stats::Recorder& rec_;
  const int nodes_;
  const sim::Time latency_;
  const sim::Time per_byte_;
  trace::Hooks* trace_ = nullptr;

  const bool deferred_;       // windowed engine: per-slot arrivals
  std::vector<Slot> slots_;   // [node]; deferred mode only

  std::uint64_t epoch_ = 0;
  int arrived_ = 0;
  sim::Time max_arrive_ = 0;
  // Scalar and vector accumulators, double-buffered by epoch parity so the
  // next collective cannot clobber a result before every node consumed it.
  double scalar_acc_ = 0.0;
  double scalar_result_[2] = {0.0, 0.0};
  std::vector<double> vec_acc_;
  std::vector<double> vec_result_[2];
};

}  // namespace presto::runtime
