// Spin locks over shared memory (test-and-set on a dedicated cache block).
//
// Used by the Splash-style Water variant, which guards per-molecule force
// accumulation with locks as the SPLASH code does. Contended acquisition
// migrates the lock block between nodes through the coherence protocol —
// the realistic cost the data-parallel C** versions avoid via reductions.
#pragma once

#include "mem/global_space.h"
#include "runtime/node_ctx.h"

namespace presto::runtime {

class SharedLock {
 public:
  SharedLock() = default;

  // Allocates the lock word in its own cache block homed at `home`.
  static SharedLock create(mem::GlobalSpace& space, int home);

  void acquire(NodeCtx& c);
  void release(NodeCtx& c);

 private:
  mem::Addr word_ = 0;
};

}  // namespace presto::runtime
