// C** Aggregates: distributed arrays of elements.
//
// Data distribution is page-granular (the paper: "the C** compiler relies on
// Stache to distribute all shared data at the granularity of a page"), with
// each node's contiguous element range padded to whole pages so that the
// computational owner of an element is also its page home (owner-computes
// locality). The C** computation-distribution schemes of §4.1 are provided:
// block distribution on 1-D Aggregates (Aggregate1D), and row-block
// (Aggregate2D) and tiled (TiledAggregate2D) distributions on 2-D
// Aggregates.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "mem/global_space.h"
#include "runtime/node_ctx.h"
#include "util/check.h"

namespace presto::runtime {

template <typename T>
class Aggregate1D {
 public:
  Aggregate1D() = default;

  static Aggregate1D create(mem::GlobalSpace& space, std::size_t n) {
    PRESTO_CHECK(n > 0, "empty aggregate");
    Aggregate1D a;
    a.n_ = n;
    a.nodes_ = space.nodes();
    a.per_node_ = (n + static_cast<std::size_t>(a.nodes_) - 1) /
                  static_cast<std::size_t>(a.nodes_);
    const std::size_t page = space.page_size();
    a.node_stride_ = ((a.per_node_ * sizeof(T) + page - 1) / page) * page;
    const std::size_t pages_per_node = a.node_stride_ / page;
    a.base_ = space.alloc(
        a.node_stride_ * static_cast<std::size_t>(a.nodes_),
        [&](mem::PageId p) {
          return static_cast<int>(p / pages_per_node);
        });
    return a;
  }

  std::size_t size() const { return n_; }

  int owner(std::size_t i) const {
    const std::size_t k = i / per_node_;
    return static_cast<int>(k) < nodes_ ? static_cast<int>(k) : nodes_ - 1;
  }

  mem::Addr addr(std::size_t i) const {
    PRESTO_CHECK(i < n_, "aggregate index " << i << " out of " << n_);
    const std::size_t k = static_cast<std::size_t>(owner(i));
    return base_ + k * node_stride_ + (i - k * per_node_) * sizeof(T);
  }

  // The contiguous element range owned by `node` (may be empty).
  std::pair<std::size_t, std::size_t> range(int node) const {
    const std::size_t lo = static_cast<std::size_t>(node) * per_node_;
    const std::size_t hi = lo + per_node_;
    return {lo < n_ ? lo : n_, hi < n_ ? hi : n_};
  }

  T get(NodeCtx& c, std::size_t i) const { return c.read<T>(addr(i)); }
  void set(NodeCtx& c, std::size_t i, const T& v) const {
    c.write<T>(addr(i), v);
  }

 private:
  mem::Addr base_ = 0;
  std::size_t n_ = 0;
  std::size_t per_node_ = 0;
  std::size_t node_stride_ = 0;
  int nodes_ = 0;
};

template <typename T>
class Aggregate2D {
 public:
  Aggregate2D() = default;

  static Aggregate2D create(mem::GlobalSpace& space, std::size_t rows,
                            std::size_t cols) {
    PRESTO_CHECK(rows > 0 && cols > 0, "empty aggregate");
    Aggregate2D a;
    a.rows_ = rows;
    a.cols_ = cols;
    a.nodes_ = space.nodes();
    a.rows_per_node_ = (rows + static_cast<std::size_t>(a.nodes_) - 1) /
                       static_cast<std::size_t>(a.nodes_);
    const std::size_t page = space.page_size();
    a.node_stride_ =
        ((a.rows_per_node_ * cols * sizeof(T) + page - 1) / page) * page;
    const std::size_t pages_per_node = a.node_stride_ / page;
    a.base_ = space.alloc(
        a.node_stride_ * static_cast<std::size_t>(a.nodes_),
        [&](mem::PageId p) {
          return static_cast<int>(p / pages_per_node);
        });
    return a;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  int owner(std::size_t i) const {
    const std::size_t k = i / rows_per_node_;
    return static_cast<int>(k) < nodes_ ? static_cast<int>(k) : nodes_ - 1;
  }

  mem::Addr addr(std::size_t i, std::size_t j) const {
    PRESTO_CHECK(i < rows_ && j < cols_,
                 "aggregate index (" << i << "," << j << ") out of ("
                                     << rows_ << "," << cols_ << ")");
    const std::size_t k = static_cast<std::size_t>(owner(i));
    return base_ + k * node_stride_ +
           ((i - k * rows_per_node_) * cols_ + j) * sizeof(T);
  }

  // The contiguous row range owned by `node` (may be empty).
  std::pair<std::size_t, std::size_t> row_range(int node) const {
    const std::size_t lo = static_cast<std::size_t>(node) * rows_per_node_;
    const std::size_t hi = lo + rows_per_node_;
    return {lo < rows_ ? lo : rows_, hi < rows_ ? hi : rows_};
  }

  T get(NodeCtx& c, std::size_t i, std::size_t j) const {
    return c.read<T>(addr(i, j));
  }
  void set(NodeCtx& c, std::size_t i, std::size_t j, const T& v) const {
    c.write<T>(addr(i, j), v);
  }

 private:
  mem::Addr base_ = 0;
  std::size_t rows_ = 0, cols_ = 0;
  std::size_t rows_per_node_ = 0;
  std::size_t node_stride_ = 0;
  int nodes_ = 0;
};

// Tiled distribution: the grid is cut into a tr x tc processor mesh (chosen
// as close to square as the node count allows) and each node owns one
// contiguous tile, stored tile-major so the tile is page-aligned at its
// owner. Halo exchange touches four neighbours instead of two, with shorter
// boundaries — the usual surface-to-volume trade against row-block.
template <typename T>
class TiledAggregate2D {
 public:
  TiledAggregate2D() = default;

  static TiledAggregate2D create(mem::GlobalSpace& space, std::size_t rows,
                                 std::size_t cols) {
    PRESTO_CHECK(rows > 0 && cols > 0, "empty aggregate");
    TiledAggregate2D a;
    a.rows_ = rows;
    a.cols_ = cols;
    a.nodes_ = space.nodes();
    // Processor mesh: tr x tc with tr*tc == nodes, as square as possible.
    a.tr_ = 1;
    for (int d = 1; d * d <= a.nodes_; ++d)
      if (a.nodes_ % d == 0) a.tr_ = d;
    a.tc_ = a.nodes_ / a.tr_;
    a.tile_rows_ = (rows + static_cast<std::size_t>(a.tr_) - 1) /
                   static_cast<std::size_t>(a.tr_);
    a.tile_cols_ = (cols + static_cast<std::size_t>(a.tc_) - 1) /
                   static_cast<std::size_t>(a.tc_);
    const std::size_t page = space.page_size();
    a.node_stride_ =
        ((a.tile_rows_ * a.tile_cols_ * sizeof(T) + page - 1) / page) * page;
    const std::size_t pages_per_node = a.node_stride_ / page;
    a.base_ = space.alloc(
        a.node_stride_ * static_cast<std::size_t>(a.nodes_),
        [&](mem::PageId p) { return static_cast<int>(p / pages_per_node); });
    return a;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  int tile_rows_count() const { return tr_; }
  int tile_cols_count() const { return tc_; }

  int owner(std::size_t i, std::size_t j) const {
    const std::size_t ti = std::min(i / tile_rows_,
                                    static_cast<std::size_t>(tr_) - 1);
    const std::size_t tj = std::min(j / tile_cols_,
                                    static_cast<std::size_t>(tc_) - 1);
    return static_cast<int>(ti * static_cast<std::size_t>(tc_) + tj);
  }

  mem::Addr addr(std::size_t i, std::size_t j) const {
    PRESTO_CHECK(i < rows_ && j < cols_,
                 "aggregate index (" << i << "," << j << ") out of ("
                                     << rows_ << "," << cols_ << ")");
    const auto k = static_cast<std::size_t>(owner(i, j));
    const std::size_t ti = k / static_cast<std::size_t>(tc_);
    const std::size_t tj = k % static_cast<std::size_t>(tc_);
    const std::size_t li = i - ti * tile_rows_;
    const std::size_t lj = j - tj * tile_cols_;
    return base_ + k * node_stride_ + (li * tile_cols_ + lj) * sizeof(T);
  }

  // The owned (row, col) tile of `node`, clipped to the grid:
  // {row_lo, row_hi, col_lo, col_hi}.
  struct Tile {
    std::size_t row_lo, row_hi, col_lo, col_hi;
  };
  Tile tile(int node) const {
    const std::size_t ti =
        static_cast<std::size_t>(node) / static_cast<std::size_t>(tc_);
    const std::size_t tj =
        static_cast<std::size_t>(node) % static_cast<std::size_t>(tc_);
    Tile t;
    t.row_lo = std::min(ti * tile_rows_, rows_);
    t.row_hi = std::min(t.row_lo + tile_rows_, rows_);
    t.col_lo = std::min(tj * tile_cols_, cols_);
    t.col_hi = std::min(t.col_lo + tile_cols_, cols_);
    return t;
  }

  T get(NodeCtx& c, std::size_t i, std::size_t j) const {
    return c.read<T>(addr(i, j));
  }
  void set(NodeCtx& c, std::size_t i, std::size_t j, const T& v) const {
    c.write<T>(addr(i, j), v);
  }

 private:
  mem::Addr base_ = 0;
  std::size_t rows_ = 0, cols_ = 0;
  std::size_t tile_rows_ = 0, tile_cols_ = 0;
  std::size_t node_stride_ = 0;
  int nodes_ = 0;
  int tr_ = 1, tc_ = 1;
};

}  // namespace presto::runtime
