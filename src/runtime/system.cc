#include "runtime/system.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/parallel.h"
#include "trace/file.h"
#include "util/check.h"

namespace presto::runtime {

const char* protocol_kind_name(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kStache: return "stache";
    case ProtocolKind::kPredictive: return "predictive";
    case ProtocolKind::kPredictiveAnticipate: return "predictive+anticipate";
    case ProtocolKind::kWriteUpdate: return "write-update";
    case ProtocolKind::kCCached: return "ccached";
  }
  return "?";
}

bool protocol_kind_from_name(const char* name, ProtocolKind* out) {
  for (const ProtocolKind k : kAllProtocolKinds) {
    if (std::strcmp(name, protocol_kind_name(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

// Worker count for Backend::kParallel when the config leaves it at 0:
// PRESTO_WORKERS, else min(nodes, hardware_concurrency).
int default_workers(int nodes) {
  if (const char* env = std::getenv("PRESTO_WORKERS")) {
    char* end = nullptr;
    const long w = std::strtol(env, &end, 10);
    PRESTO_CHECK(env[0] != '\0' && end != nullptr && *end == '\0' && w >= 1,
                 "PRESTO_WORKERS: expected a positive integer, got '" << env
                                                                     << "'");
    return static_cast<int>(w);
  }
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  return hw < nodes ? hw : nodes;
}

}  // namespace

System::System(const MachineConfig& cfg, ProtocolKind kind)
    : cfg_(cfg), kind_(kind), rec_(cfg.nodes), engine_(cfg.backend) {
  engine_.set_quantum_floor(cfg.quantum_floor);
  if (cfg.backend == sim::Backend::kParallel || cfg.window > 0) {
    // Windowed (conservative-lookahead) execution. The width may not exceed
    // the network's minimum cross-node latency, or staged boundary flushes
    // could land in a destination lane's past.
    sim::Time w = cfg.window > 0 ? cfg.window : cfg.net.wire_latency;
    if (w > cfg.net.wire_latency) w = cfg.net.wire_latency;
    if (w < 1) w = 1;
    cfg_.window = w;
    cfg_.workers = cfg.backend == sim::Backend::kParallel
                       ? (cfg.workers > 0 ? cfg.workers
                                          : default_workers(cfg.nodes))
                       : 1;
    engine_.enable_windows(w, cfg.nodes, cfg_.workers, cfg.batch_windows);
  }
  net_ = std::make_unique<net::Network>(engine_, cfg.nodes, cfg.net);
  space_ = std::make_unique<mem::GlobalSpace>(cfg.nodes, cfg.mem);
  if (engine_.windowed())
    space_->set_grow_gate([this](std::function<void()> fn) {
      engine_.boundary_gate(std::move(fn));
    });
  switch (kind) {
    case ProtocolKind::kStache:
      protocol_ = std::make_unique<proto::StacheProtocol>(
          engine_, *net_, *space_, rec_, cfg.costs, cfg.cluster_nodes);
      break;
    case ProtocolKind::kPredictive:
      protocol_ = std::make_unique<proto::PredictiveProtocol>(
          engine_, *net_, *space_, rec_, cfg.costs,
          proto::ConflictPolicy::kSkip, cfg.cluster_nodes);
      break;
    case ProtocolKind::kPredictiveAnticipate:
      protocol_ = std::make_unique<proto::PredictiveProtocol>(
          engine_, *net_, *space_, rec_, cfg.costs,
          proto::ConflictPolicy::kAnticipate, cfg.cluster_nodes);
      break;
    case ProtocolKind::kWriteUpdate:
      protocol_ = std::make_unique<proto::WriteUpdateProtocol>(
          engine_, *net_, *space_, rec_, cfg.costs);
      break;
    case ProtocolKind::kCCached:
      protocol_ = std::make_unique<proto::CCachedProtocol>(
          engine_, *net_, *space_, rec_, cfg.costs, cfg.cluster_nodes);
      break;
  }
  protocol_->install();
  barrier_ = std::make_unique<BarrierManager>(
      engine_, rec_, cfg.nodes, cfg.barrier_latency, cfg.reduce_per_byte);
  protocol_->set_barrier([this](int node) { barrier_->barrier(node); });
  if (check::oracle_enabled_by_default()) enable_oracle(check::FailMode::kAbort);
  if (cfg.trace.enabled) enable_trace(cfg.trace);
}

check::Oracle& System::enable_oracle(check::FailMode fail) {
  oracle_ = std::make_unique<check::Oracle>(
      *space_, &engine_, check::mode_for_protocol(protocol_->name()), fail);
  space_->set_access_observer(oracle_.get());
  protocol_->set_coherence_observer(oracle_.get());
  net_->set_observer(oracle_.get());
  // Windowed engine: replay the oracle's per-lane buffers at every window
  // boundary. Captures the System (not the oracle) so a replacement oracle
  // inherits the slot without re-registration.
  if (engine_.windowed())
    engine_.set_boundary_op(sim::BoundaryOp::kOracle,
                            [this] { oracle_->replay_window(); });
  // Replacing the observers displaced an attached tracer; put a fresh one
  // back on top, forwarding to the new oracle. (Copy the config first: the
  // reference would dangle once enable_trace replaces the tracer.)
  if (tracer_ != nullptr) {
    const trace::TraceConfig tcfg = tracer_->config();
    enable_trace(tcfg);
  }
  return *oracle_;
}

trace::Tracer& System::enable_trace(const trace::TraceConfig& tcfg) {
  tracer_ = std::make_unique<trace::Tracer>(tcfg, *space_, &engine_);
  // Chain to whatever observers are already installed (the oracle in Debug
  // builds) so both see the identical call stream.
  tracer_->chain(space_->access_observer(), protocol_->coherence_observer(),
                 net_->observer());
  space_->set_access_observer(tracer_.get());
  protocol_->set_coherence_observer(tracer_.get());
  net_->set_observer(tracer_.get());
  protocol_->set_trace_hooks(tracer_.get());
  barrier_->set_trace_hooks(tracer_.get());
  engine_.set_trace_hooks(tracer_.get());
  return *tracer_;
}

System::~System() = default;

proto::PredictiveProtocol* System::predictive() {
  return kind_ == ProtocolKind::kPredictive ||
                 kind_ == ProtocolKind::kPredictiveAnticipate
             ? static_cast<proto::PredictiveProtocol*>(protocol_.get())
             : nullptr;
}

proto::WriteUpdateProtocol* System::writeupdate() {
  return kind_ == ProtocolKind::kWriteUpdate
             ? static_cast<proto::WriteUpdateProtocol*>(protocol_.get())
             : nullptr;
}

proto::CCachedProtocol* System::ccached() {
  return kind_ == ProtocolKind::kCCached
             ? static_cast<proto::CCachedProtocol*>(protocol_.get())
             : nullptr;
}

void System::run(const std::function<void(NodeCtx&)>& body) {
  PRESTO_CHECK(!ran_, "System::run is single-shot");
  ran_ = true;
  for (int n = 0; n < cfg_.nodes; ++n) {
    auto& p = engine_.add_processor();
    ctxs_.push_back(std::make_unique<NodeCtx>(n, cfg_, p, *space_, rec_,
                                              *barrier_, *protocol_));
  }
  for (int n = 0; n < cfg_.nodes; ++n) {
    NodeCtx* ctx = ctxs_[static_cast<std::size_t>(n)].get();
    engine_.processor(n).start([this, ctx, &body] {
      body(*ctx);
      ctx->counters().finish = ctx->proc().now();
    });
  }
  const auto host_t0 = std::chrono::steady_clock::now();
  engine_.run();
  stats::HostCounters& host = rec_.host();
  host.run_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  host.events = engine_.events_executed();
  host.handoffs = engine_.handoffs();
  host.direct_resumes = engine_.direct_resumes();
  host.backend = sim::backend_name(engine_.backend());
  host.windows = engine_.windows_run();
  host.workers = engine_.windowed() ? engine_.workers() : 1;
  const sim::WindowPoolStats wps = engine_.window_stats();
  host.win_barrier_wait_ns = wps.barrier_wait_ns;
  host.win_drain_ns = wps.drain_ns;
  host.win_boundary_ns = wps.boundary_ns;
  host.win_park_ns = wps.park_ns;
  host.win_parks = wps.parks;
  host.win_spin_releases = wps.spin_releases;
  host.win_releases = wps.releases;
  host.win_serial_windows = wps.serial_windows;
  host.win_adopted_drains = wps.adopted_drains;
  for (int n = 0; n < cfg_.nodes; ++n) {
    host.yields += engine_.processor(n).yield_count();
    host.blocks += engine_.processor(n).block_count();
  }
  host.metadata_bytes =
      protocol_->metadata_bytes() + net_->metadata_bytes();
  exec_time_ = rec_.max(&stats::NodeCounters::finish);
  if (oracle_ != nullptr) {
    // End-of-run quiescent checks: whole-memory agreement sweep plus the
    // directory/cache consistency audit for directory-based protocols. The
    // audit aborts on failure, so it only runs in abort mode (the fuzzer's
    // record mode must survive a buggy protocol to diff and shrink it).
    oracle_->final_sweep();
    if (oracle_->fail_mode() == check::FailMode::kAbort &&
        kind_ != ProtocolKind::kWriteUpdate)
      static_cast<proto::StacheProtocol*>(protocol_.get())->check_invariants();
  }
  if (tracer_ != nullptr) {
    tracer_->finalize(exec_time_, protocol_->name());
    if (!tracer_->config().path.empty()) write_trace();
  }
}

namespace {

// Benches run several Systems with the same --trace flag in one process;
// give each run after the first a ".N" suffix before the extension instead
// of overwriting.
std::string trace_output_path(const std::string& path) {
  // Atomic: the experiment pool runs Systems on concurrent host threads.
  static std::atomic<int> runs{0};
  const int n = runs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) return path;
  const std::size_t dot = path.rfind('.');
  const std::string suffix = "." + std::to_string(n);
  if (dot == std::string::npos || dot == 0) return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace

void System::write_trace() {
  const trace::TraceData data = tracer_->build(cfg_.costs, cfg_.net);
  const std::string path = trace_output_path(tracer_->config().path);
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  std::string err;
  const bool ok = json ? trace::write_perfetto(data, path, &err)
                       : trace::write_file(data, path, &err);
  if (!ok) {
    std::fprintf(stderr, "presto: trace write failed: %s\n", err.c_str());
    return;
  }
  std::fprintf(stderr,
               "presto: %s trace written to %s (%zu events, %llu dropped)\n",
               json ? "perfetto" : "binary", path.c_str(), data.events.size(),
               static_cast<unsigned long long>(data.meta.dropped));
}

stats::Report System::report(std::string label) const {
  stats::Report r;
  r.label = std::move(label);
  r.nodes = cfg_.nodes;
  r.block_size = cfg_.mem.block_size;
  r.exec = exec_time_;
  r.remote_wait =
      static_cast<sim::Time>(rec_.avg(&stats::NodeCounters::remote_wait));
  r.presend = static_cast<sim::Time>(rec_.avg(&stats::NodeCounters::presend));
  r.compute_synch = r.exec - r.remote_wait - r.presend;
  r.barrier_wait =
      static_cast<sim::Time>(rec_.avg(&stats::NodeCounters::barrier_wait));
  r.lock_wait =
      static_cast<sim::Time>(rec_.avg(&stats::NodeCounters::lock_wait));
  r.shared_accesses = rec_.sum(&stats::NodeCounters::shared_reads) +
                      rec_.sum(&stats::NodeCounters::shared_writes);
  r.faults = rec_.sum(&stats::NodeCounters::read_faults) +
             rec_.sum(&stats::NodeCounters::write_faults);
  r.local_faults = rec_.sum(&stats::NodeCounters::local_faults);
  r.local_hit_pct =
      r.shared_accesses == 0
          ? 100.0
          : 100.0 * (1.0 - static_cast<double>(r.faults) /
                               static_cast<double>(r.shared_accesses));
  r.msgs = net_->messages_sent();
  r.bytes = net_->bytes_sent();
  r.presend_blocks = rec_.sum(&stats::NodeCounters::presend_blocks_sent);
  r.dir_probes = rec_.sum(&stats::NodeCounters::dir_probes);
  r.sched_lookups = rec_.sum(&stats::NodeCounters::sched_lookups);
  if (kind_ == ProtocolKind::kCCached) {
    const auto& cs =
        static_cast<const proto::CCachedProtocol*>(protocol_.get())->cc_stats();
    r.cc_flushes = cs.flushes;
    r.cc_entries = cs.flushed_entries;
  }
  r.host = rec_.host();
  if (tracer_ != nullptr) {
    const trace::Summary& s = tracer_->summary();
    r.traced = true;
    r.trace_events = s.events;
    r.trace_dropped = s.dropped;
    r.miss_cold =
        s.miss_by_class[static_cast<std::size_t>(trace::MissClass::kCold)];
    r.miss_invalidation = s.miss_by_class[static_cast<std::size_t>(
        trace::MissClass::kInvalidation)];
    r.miss_presend_waste = s.miss_by_class[static_cast<std::size_t>(
        trace::MissClass::kPresendWaste)];
    r.miss_merge =
        s.miss_by_class[static_cast<std::size_t>(trace::MissClass::kMerge)];
    r.miss_latency_total = s.miss_latency_total;
    r.presend_hits = s.presend_hits;
    r.presend_waste = s.presend_waste;
    r.presend_unused = s.presend_unused;
  }
  return r;
}

}  // namespace presto::runtime
