// Machine cost models.
//
// cm5_blizzard() reproduces the paper's platform: a 32-node Thinking
// Machines CM-5 running the Blizzard software fine-grain DSM, where the
// average remote shared-data miss costs on the order of 200 microseconds
// (paper §5.4): software fault vectoring + request message + home handler
// (+ recall round trip for dirty data) + data message + install handler.
// hw_dsm() models a hardware-assisted DSM (low-latency regime) for the
// §5.4 trade-off discussion.
#pragma once

#include <cstdint>

#include "mem/global_space.h"
#include "net/network.h"
#include "proto/protocol.h"
#include "sim/fiber.h"
#include "sim/time.h"
#include "trace/config.h"

namespace presto::runtime {

struct MachineConfig {
  int nodes = 32;
  mem::MemConfig mem;
  net::NetConfig net;
  proto::ProtoCosts costs;
  // Two-level cluster directory for Stache/predictive (proto/stache.h):
  // directory sharer sets track clusters of this many consecutive nodes;
  // invalidations conservatively fan out to whole clusters. 0 (default)
  // keeps exact node-grain sets — required for bit-identity with every
  // pinned golden result. Ignored by write-update (its reader sets drive
  // data pushes, which must stay exact).
  int cluster_nodes = 0;

  sim::Time access_check = 60;  // software fine-grain tag check per access
  sim::Time flop = 30;          // one floating-point op (~33 MHz + FPU)
  sim::Time op = 15;            // one integer/addressing op
  sim::Time barrier_latency = sim::microseconds(5);  // CM-5 control network
  sim::Time reduce_per_byte = 50;                    // control-network combine
  sim::Time quantum_floor = 0;  // 0 = exact event-granularity interleaving
  std::uint64_t seed = 0x5EEDF00DULL;
  // Host-side processor implementation (fibers vs OS threads); simulated
  // results are bit-identical across backends, only host speed differs.
  sim::Backend backend = sim::default_backend();
  // Conservative-window engine (sim/engine.h): 0 keeps the classic
  // single-lane engine (every legacy golden number unchanged). Any positive
  // width — clamped to the network's minimum latency — switches to the
  // windowed canon, whose results are bit-identical across backends and
  // worker counts but deliberately distinct from the legacy canon (node-order
  // reductions, window-granular interleaving). Backend kParallel implies
  // windowed and derives the width from the network when this is 0.
  sim::Time window = 0;
  // Worker threads draining lanes under backend kParallel. 0 = the
  // PRESTO_WORKERS environment variable, falling back to
  // min(nodes, hardware_concurrency); ignored by other backends.
  int workers = 0;
  // Cap on a parallel worker's spin-acquired consecutive-window streak
  // (adaptive window batching, sim/parallel.h). 0 = unbounded. Host-only
  // tuning knob: simulated results are invariant to it; tests and the fuzzer
  // randomize it to exercise both the spin and the park path.
  int batch_windows = 0;
  // Event tracing (trace/tracer.h); disabled by default. Observation is
  // pure, so simulated results are bit-identical with tracing on or off.
  trace::TraceConfig trace;

  static MachineConfig cm5_blizzard(int nodes = 32,
                                    std::uint32_t block_size = 32) {
    MachineConfig m;
    m.nodes = nodes;
    m.mem.block_size = block_size;
    m.mem.page_size = 4096;
    m.net.wire_latency = sim::microseconds(30);
    m.net.per_byte = 100;  // ~10 MB/s effective software messaging
    m.net.self_latency = sim::microseconds(5);
    m.costs.fault = sim::microseconds(10);
    m.costs.handler = sim::microseconds(15);
    m.costs.presend_per_block = sim::microseconds(1);
    return m;
  }

  // Hardware-assisted DSM: microsecond-scale messaging, hardware access
  // checks and handlers (§5.4's "tradeoff is likely to be different").
  static MachineConfig hw_dsm(int nodes = 32, std::uint32_t block_size = 64) {
    MachineConfig m;
    m.nodes = nodes;
    m.mem.block_size = block_size;
    m.mem.page_size = 4096;
    m.net.wire_latency = sim::microseconds(1);
    m.net.per_byte = 10;  // ~100 MB/s
    m.net.self_latency = nanoseconds_(200);
    m.costs.fault = nanoseconds_(500);
    m.costs.handler = nanoseconds_(500);
    m.costs.presend_per_block = nanoseconds_(200);
    m.access_check = 5;
    m.barrier_latency = sim::microseconds(1);
    return m;
  }

 private:
  static constexpr sim::Time nanoseconds_(std::int64_t n) { return n; }
};

enum class ProtocolKind {
  kStache,                 // unoptimized C** versions
  kPredictive,             // compiler-directed predictive protocol
  kPredictiveAnticipate,   // + conflict anticipation extension (§3.4)
  kWriteUpdate,            // hand-optimized SPMD baseline [5]
  kCCached,                // commutative-update (reduction) protocol
};

const char* protocol_kind_name(ProtocolKind k);

// Protocol registry: every kind, in canonical sweep order. Benches and CLIs
// iterate this instead of keeping their own arrays, so a new protocol shows
// up in every sweep without per-tool edits.
inline constexpr ProtocolKind kAllProtocolKinds[] = {
    ProtocolKind::kStache,
    ProtocolKind::kPredictive,
    ProtocolKind::kPredictiveAnticipate,
    ProtocolKind::kWriteUpdate,
    ProtocolKind::kCCached,
};
inline constexpr int kNumProtocolKinds =
    static_cast<int>(sizeof(kAllProtocolKinds) / sizeof(kAllProtocolKinds[0]));

// Parses a name as printed by protocol_kind_name; false on unknown names.
bool protocol_kind_from_name(const char* name, ProtocolKind* out);

}  // namespace presto::runtime
