// Compact versioned binary trace format + readers/writers.
//
// Layout (format v1, little-endian host order — traces are a same-machine
// analysis artifact, like results/BENCH_host.json):
//
//   u32        magic    "PTRC" (0x43525450)
//   TraceMeta  fixed 112-byte POD header (version, machine + cost model)
//   u64        event count
//   Event[n]   32-byte records in canonical (seq) order
//   u64        FNV-1a hash of the event bytes (integrity footer)
//
// The reader never trusts the file: truncation, bit flips, version skew and
// impossible field values all fail cleanly with a diagnostic string — never
// a crash (tests/trace_io_test.cc feeds it adversarial bytes under ASan).
//
// write_perfetto() emits the same stream as Chrome trace_event JSON that
// loads directly in ui.perfetto.dev (docs/observability.md has the how-to).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.h"

namespace presto::trace {

inline constexpr std::uint32_t kTraceMagic = 0x43525450u;  // "PTRC"
inline constexpr std::uint32_t kTraceVersion = 1;

struct TraceMeta {
  std::uint32_t version = kTraceVersion;
  std::uint32_t nodes = 0;
  std::uint32_t block_size = 0;
  std::uint32_t categories = 0;
  char protocol[24] = {};
  // Cost model captured at record time — what the reader-side latency
  // attribution decomposes miss windows with (trace/analysis.h).
  std::int64_t cost_fault = 0;
  std::int64_t cost_handler = 0;
  std::int64_t cost_presend_per_block = 0;
  std::int64_t header_bytes = 0;
  std::int64_t net_wire_latency = 0;
  std::int64_t net_per_byte = 0;
  std::int64_t net_self_latency = 0;
  std::int64_t exec_time = 0;
  std::uint64_t dropped = 0;
};
static_assert(sizeof(TraceMeta) == 112,
              "TraceMeta is the on-disk header; layout is part of format v1");

struct TraceData {
  TraceMeta meta;
  std::vector<Event> events;  // canonical seq order
};

std::uint64_t fnv1a64(std::uint64_t h, const void* p, std::size_t n);
inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

// Serialization is deterministic: equal TraceData gives equal bytes (the
// round-trip identity tests depend on this).
std::vector<std::byte> serialize(const TraceData& t);
bool write_file(const TraceData& t, const std::string& path,
                std::string* err);

// Validating readers; on failure *err describes the first problem found.
bool parse(const std::byte* data, std::size_t n, TraceData* out,
           std::string* err);
bool read_file(const std::string& path, TraceData* out, std::string* err);

// Chrome/Perfetto trace_event JSON (open in ui.perfetto.dev).
bool write_perfetto(const TraceData& t, const std::string& path,
                    std::string* err);

}  // namespace presto::trace
