// The tracer: turns the simulator's observation hooks into a deterministic
// typed event stream plus an online accounting summary.
//
// Buffering follows net/record_ring.h's arena discipline at event
// granularity: fixed 32-byte POD events are appended through a raw write
// cursor into 2048-event chunks (no per-event allocation; one 64 KiB chunk
// allocation per 2048 events, sized under the allocator's mmap threshold so
// chunk memory recycles through the heap arena instead of costing a fresh
// mmap + page-fault sweep per chunk — the dominant tracing cost at millions
// of events was the virtual-memory churn, not the stores). The
// append path is branch-lean by construction: category filtering is one
// indexed load from a per-kind enable table precomputed at construction, the
// store is a plain cursor write, and the canonical sequence number is never
// assigned at emit time — events buffer unstamped and are stamped in bulk at
// window boundaries (windowed engines, BoundaryOp::kTrace) or at finalize
// (serial engines, where the single emission-order buffer makes the stamp
// pass reproduce exactly the dense seq an emit-time counter would have
// produced — digests are byte-identical across the two schemes). Buffers are
// bounded by TraceConfig::max_events_per_node; overflow drops events but
// never silently — dropped counts land in the summary and the file meta.
//
// Observation is pure (no simulated time charged, no events scheduled), and
// the tracer chains to whatever observers were attached before it (the
// coherence oracle in Debug builds), so oracle + tracer coexist and golden
// counters stay bit-identical with tracing on (tests/trace_test.cc).
//
// Presend accounting (two independent paths reconciled by
// tests/trace_property_test.cc): every presend-installed block is pending
// until resolved exactly once —
//   * hit    — the node's next access to it completes without a fault;
//   * waste  — the node faults on it anyway (kMissStart with class
//              kPresendWaste), or a re-presend overwrites it;
//   * unused — still pending at end of run.
// hits + waste + unused == presend_blocks_received (the protocol's counter).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/global_space.h"
#include "net/network.h"
#include "proto/protocol.h"
#include "trace/event.h"
#include "trace/file.h"
#include "trace/hooks.h"
#include "util/block_table.h"

namespace presto::trace {

// Event counts + an FNV-1a hash over the canonical (seq-merged) stream —
// the golden-trace pin unit. Equal digests ⇒ byte-identical streams.
struct Digest {
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
  std::array<std::uint64_t, kNumEventKinds> by_kind{};

  bool operator==(const Digest&) const = default;
};

// Online totals the tracer accumulates independently of the event stream
// (surfaced in stats::Report and reconciled against protocol counters).
struct Summary {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;

  std::uint64_t misses = 0;
  std::array<std::uint64_t, kNumMissClasses> miss_by_class{};
  sim::Time miss_latency_total = 0;

  std::uint64_t presend_installs = 0;  // blocks installed by BulkData runs
  std::uint64_t presend_hits = 0;
  std::uint64_t presend_waste = 0;   // re-faulted or overwritten
  std::uint64_t presend_unused = 0;  // still pending at finalize

  // Per-phase hit/waste totals, indexed by phase id + 1 (bucket 0 = before
  // any phase directive). Sized on demand.
  struct PhaseTotals {
    std::uint64_t misses = 0;
    std::array<std::uint64_t, kNumMissClasses> miss_by_class{};
    sim::Time miss_latency = 0;
    std::uint64_t presend_hits = 0;
    std::uint64_t presend_waste = 0;
  };
  std::vector<PhaseTotals> phases;
};

class Tracer final : public Hooks,
                     public mem::AccessObserver,
                     public proto::CoherenceObserver,
                     public net::Network::Observer {
 public:
  Tracer(const TraceConfig& cfg, mem::GlobalSpace& space, sim::Engine* engine);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Observers attached before the tracer; every hook forwards to them, so
  // the oracle sees the exact call stream it would without tracing.
  void chain(mem::AccessObserver* access, proto::CoherenceObserver* coherence,
             net::Network::Observer* net) {
    next_access_ = access;
    next_coherence_ = coherence;
    next_net_ = net;
  }

  const TraceConfig& config() const { return cfg_; }

  // ---- trace::Hooks ---------------------------------------------------------
  void on_phase_begin(int node, int phase, sim::Time t) override;
  void on_phase_ready(int node, int phase, sim::Time t) override;
  void on_phase_flush(int node, int phase, sim::Time t) override;
  void on_barrier_arrive(int node, std::uint64_t epoch, sim::Time t) override;
  void on_barrier_release(int node, std::uint64_t epoch, sim::Time t) override;
  void on_lock_acquire(int node, std::uint64_t lock_block,
                       sim::Time t) override;
  void on_lock_acquired(int node, std::uint64_t lock_block, sim::Time t,
                        bool contended) override;
  void on_lock_release(int node, std::uint64_t lock_block,
                       sim::Time t) override;
  void on_miss_start(int node, std::uint64_t block, bool is_write,
                     sim::Time t0) override;
  void on_miss_end(int node, std::uint64_t block, bool is_write,
                   sim::Time t1) override;
  void on_msg_send(int src, int dst, std::uint8_t msg_type,
                   std::uint64_t block, std::uint32_t count,
                   std::uint32_t wire_bytes, sim::Time depart) override;
  void on_msg_recv(int dst, int src, std::uint8_t msg_type,
                   std::uint64_t block, std::uint32_t wire_bytes,
                   sim::Time arrival, sim::Time dispatch) override;
  void on_presend_install(int node, int src, std::uint64_t block0,
                          std::uint32_t count, sim::Time t) override;
  void on_ctx_block(int node, sim::Time t) override;
  void on_ctx_resume(int node, sim::Time t) override;

  // ---- mem::AccessObserver --------------------------------------------------
  void on_app_read(int node, mem::BlockId b, std::size_t off, const void* seen,
                   std::size_t n) override;
  void on_app_write(int node, mem::BlockId b, std::size_t off,
                    const void* data, std::size_t n) override;
  void on_cc_update(int node, mem::BlockId b, std::size_t off,
                    std::int64_t delta) override;

  // ---- proto::CoherenceObserver ---------------------------------------------
  void on_data_send(int src, int dst, const proto::Msg& m) override;
  void on_install(int node, mem::BlockId b, const std::byte* data,
                  mem::Tag tag) override;

  // ---- net::Network::Observer -----------------------------------------------
  void on_message(int src, int dst, std::size_t bytes, sim::Time depart,
                  sim::Time arrival) override;

  // ---- End of run ------------------------------------------------------------
  // Resolves still-pending presends as unused and freezes the summary.
  // Idempotent; called by System::run.
  void finalize(sim::Time exec_time, const char* protocol_name);

  // Canonical stream + meta, buildable only after finalize(). The meta's
  // cost-model fields come from the machine config captured at attach.
  TraceData build(const proto::ProtoCosts& costs,
                  const net::NetConfig& net_cfg) const;

  Digest digest() const;
  const Summary& summary() const { return summary_; }

 private:
  // 2048 events = 64 KiB: deliberately below glibc's 128 KiB mmap threshold,
  // so chunks come from (and return to) the heap arena — repeated traced
  // runs in one process reuse warm pages instead of re-faulting fresh maps.
  static constexpr std::size_t kChunkEvents = 2048;
  struct Chunk {
    std::array<Event, kChunkEvents> ev;
    std::size_t n = 0;
  };
  struct NodeBuf {
    // Raw write cursor into the tail chunk; cur == end triggers the refill
    // slow path. The tail chunk's element count is synced from the cursor
    // before any walk (sync_tail).
    Event* cur = nullptr;
    Event* end = nullptr;
    std::vector<std::unique_ptr<Chunk>> chunks;
    // First event not yet given a canonical sequence number (see
    // stamp_window).
    std::size_t stamp_chunk = 0;
    std::size_t stamp_pos = 0;
  };

  // Per-(node, block) presend/validity state bits.
  static constexpr std::uint8_t kEverValid = 1u << 0;
  static constexpr std::uint8_t kPending = 1u << 1;

  void emit(EventKind k, int node, sim::Time t, std::uint64_t block,
            std::uint32_t arg, std::int16_t peer, std::uint16_t aux);
  // Slow path of emit: seals the tail chunk and opens a fresh one (freelist
  // first), returning the new cursor.
  Event* refill(NodeBuf& buf);
  // Syncs the tail chunk's element count from the write cursor; required
  // before any chunk walk (stamp, build).
  static void sync_tail(NodeBuf& buf);
  std::uint8_t& state(int node, mem::BlockId b) {
    return state_[static_cast<std::size_t>(node)].at(b);
  }
  // Summary shard the node's hooks accumulate into: one per node under a
  // windowed engine (hooks fire on concurrently draining lanes), a single
  // shared shard on serial engines; finalize() folds shards into summary_.
  Summary& sum(int node) {
    return shards_[static_cast<std::size_t>(node) & shard_mask_];
  }
  Summary::PhaseTotals& phase_totals(int node);
  // Assigns canonical sequence numbers to every event not yet stamped, in
  // node order then append order — a total order independent of how lanes
  // were partitioned over workers. Windowed engines run this at every
  // boundary (BoundaryOp::kTrace); serial engines once at finalize, where
  // the single emission-order buffer makes it reproduce the emit-order seq.
  void stamp_window();
  // Resolves a pending presend on access (hit) or fault/overwrite (waste).
  void resolve_pending(int node, mem::BlockId b, bool hit, sim::Time t);

  const TraceConfig cfg_;
  mem::GlobalSpace& space_;
  sim::Engine* engine_;

  mem::AccessObserver* next_access_ = nullptr;
  proto::CoherenceObserver* next_coherence_ = nullptr;
  net::Network::Observer* next_net_ = nullptr;

  // Windowed engine attached: per-node buffers and summary shards (lanes
  // append concurrently), stamped at window boundaries. Serial engines use
  // one buffer and one shard for all nodes (mask 0), stamped at finalize.
  const bool deferred_;
  std::vector<NodeBuf> bufs_;
  std::vector<Summary> shards_;
  const std::size_t buf_mask_;    // node -> buffer index mask
  const std::size_t shard_mask_;  // node -> shard index mask
  // Per-kind record filter, precomputed from cfg_.categories: the emit fast
  // path's only filter branch is one indexed load.
  std::array<bool, kNumEventKinds> kind_enabled_{};
  // Per-node appended/dropped counts (the max_events_per_node cap is per
  // node regardless of how nodes share buffers).
  std::vector<std::uint64_t> node_events_;
  std::vector<std::uint64_t> node_dropped_;
  std::uint32_t seq_ = 0;

  std::vector<util::BlockTable<std::uint8_t>> state_;
  std::vector<int> cur_phase_;        // per node; -1 before first directive
  std::vector<std::uint64_t> pending_count_;  // per node, for finalize

  // One outstanding miss per node (on_fault blocks the node's thread).
  struct MissState {
    sim::Time t0 = 0;
    MissClass cls = MissClass::kCold;
  };
  std::vector<MissState> miss_;

  Summary summary_;
  bool finalized_ = false;
  sim::Time exec_time_ = 0;
  std::string protocol_name_;
};

}  // namespace presto::trace
