#include "trace/tracer.h"

#include <algorithm>
#include <cstring>

#include "sim/engine.h"
#include "sim/processor.h"
#include "util/check.h"

namespace presto::trace {

Tracer::Tracer(const TraceConfig& cfg, mem::GlobalSpace& space,
               sim::Engine* engine)
    : cfg_(cfg),
      space_(space),
      engine_(engine),
      deferred_(engine != nullptr && engine->windowed()),
      bufs_(deferred_ ? static_cast<std::size_t>(space.nodes()) : 1),
      shards_(deferred_ ? static_cast<std::size_t>(space.nodes()) : 1),
      buf_mask_(deferred_ ? ~std::size_t{0} : 0),
      shard_mask_(deferred_ ? ~std::size_t{0} : 0),
      node_events_(static_cast<std::size_t>(space.nodes()), 0),
      node_dropped_(static_cast<std::size_t>(space.nodes()), 0),
      state_(static_cast<std::size_t>(space.nodes())),
      cur_phase_(static_cast<std::size_t>(space.nodes()), -1),
      pending_count_(static_cast<std::size_t>(space.nodes()), 0),
      miss_(static_cast<std::size_t>(space.nodes())) {
  const std::uint32_t bpp = space.page_size() / space.block_size();
  for (auto& t : state_) t.configure(bpp);
  for (std::size_t k = 0; k < kNumEventKinds; ++k)
    kind_enabled_[k] =
        (cfg_.categories & event_kind_category(static_cast<EventKind>(k))) != 0;
  if (deferred_) {
    // Overwrites any previous tracer's slot (enable_oracle re-attaches).
    engine_->set_boundary_op(sim::BoundaryOp::kTrace,
                             [this] { stamp_window(); });
  }
}

Tracer::~Tracer() = default;

Summary::PhaseTotals& Tracer::phase_totals(int node) {
  auto& phases = sum(node).phases;
  const std::size_t idx =
      static_cast<std::size_t>(cur_phase_[static_cast<std::size_t>(node)] + 1);
  if (idx >= phases.size()) phases.resize(idx + 1);
  return phases[idx];
}

void Tracer::emit(EventKind k, int node, sim::Time t, std::uint64_t block,
                  std::uint32_t arg, std::int16_t peer, std::uint16_t aux) {
  if (!kind_enabled_[static_cast<std::size_t>(k)]) return;
  std::uint64_t& ne = node_events_[static_cast<std::size_t>(node)];
  if (ne >= cfg_.max_events_per_node) [[unlikely]] {
    ++node_dropped_[static_cast<std::size_t>(node)];
    return;
  }
  NodeBuf& buf = bufs_[static_cast<std::size_t>(node) & buf_mask_];
  Event* e = buf.cur;
  if (e == buf.end) [[unlikely]] e = refill(buf);
  buf.cur = e + 1;
  Event ev;
  ev.t = static_cast<std::uint64_t>(t);
  ev.block = block;
  // Events buffer unstamped; stamp_window() assigns the canonical sequence
  // in bulk (window boundaries, or finalize on serial engines).
  ev.seq = 0;
  ev.arg = arg;
  ev.kind = static_cast<std::uint16_t>(k);
  ev.node = static_cast<std::int16_t>(node);
  ev.peer = peer;
  ev.aux = aux;
  *e = ev;
  ++ne;
}

Event* Tracer::refill(NodeBuf& buf) {
  if (!buf.chunks.empty()) {
    buf.chunks.back()->n = kChunkEvents;  // sealed full
    // Serial engines stamp the sealed chunk here, while its 64 KiB is still
    // cache-resident: append order IS the canonical order (single buffer),
    // so the eager stamp assigns exactly what the finalize walk would — but
    // a deferred walk over the full trace re-streams every chunk from DRAM,
    // which at millions of events costs more than the stores that built
    // them. Windowed engines must wait for the boundary (canonical order is
    // node-major per window), and get the same warmth from stamping every
    // window.
    if (!deferred_) stamp_window();
  }
  // Default-init, not make_unique: value-initialization would memset the
  // whole chunk that the cursor is about to overwrite anyway — with a fresh
  // chunk every 2048 events, that zeroing pass doubles the append path's
  // memory traffic.
  buf.chunks.push_back(std::unique_ptr<Chunk>(new Chunk));
  Chunk& c = *buf.chunks.back();
  c.n = 0;
  buf.cur = c.ev.data();
  buf.end = buf.cur + kChunkEvents;
  return buf.cur;
}

void Tracer::sync_tail(NodeBuf& buf) {
  if (buf.chunks.empty()) return;
  Chunk& c = *buf.chunks.back();
  c.n = static_cast<std::size_t>(buf.cur - c.ev.data());
}

void Tracer::stamp_window() {
  for (auto& buf : bufs_) {
    sync_tail(buf);
    std::size_t ci = buf.stamp_chunk;
    std::size_t pos = buf.stamp_pos;
    while (ci < buf.chunks.size()) {
      Chunk& c = *buf.chunks[ci];
      for (; pos < c.n; ++pos) {
        PRESTO_CHECK(seq_ != 0xffffffffu, "trace sequence space exhausted");
        c.ev[pos].seq = seq_++;
      }
      if (c.n < kChunkEvents) break;  // still-filling tail chunk
      ++ci;
      pos = 0;
    }
    buf.stamp_chunk = ci;
    buf.stamp_pos = pos;
  }
}

// ---- Presend accounting -----------------------------------------------------

void Tracer::resolve_pending(int node, mem::BlockId b, bool hit, sim::Time t) {
  // Caller has already tested the pending bit; clear it and classify.
  state(node, b) &= static_cast<std::uint8_t>(~kPending);
  --pending_count_[static_cast<std::size_t>(node)];
  Summary& sm = sum(node);
  auto& ph = phase_totals(node);
  if (hit) {
    ++sm.presend_hits;
    ++ph.presend_hits;
    emit(EventKind::kPresendHit, node, t, b, 0, -1, 0);
  } else {
    ++sm.presend_waste;
    ++ph.presend_waste;
    emit(EventKind::kPresendWaste, node, t, b, 0, -1, 0);
  }
}

// ---- trace::Hooks -----------------------------------------------------------

void Tracer::on_phase_begin(int node, int phase, sim::Time t) {
  cur_phase_[static_cast<std::size_t>(node)] = phase;
  emit(EventKind::kPhaseBegin, node, t, 0,
       static_cast<std::uint32_t>(phase), -1, 0);
}

void Tracer::on_phase_ready(int node, int phase, sim::Time t) {
  emit(EventKind::kPhaseReady, node, t, 0,
       static_cast<std::uint32_t>(phase), -1, 0);
}

void Tracer::on_phase_flush(int node, int phase, sim::Time t) {
  emit(EventKind::kPhaseFlush, node, t, 0,
       static_cast<std::uint32_t>(phase), -1, 0);
}

void Tracer::on_barrier_arrive(int node, std::uint64_t epoch, sim::Time t) {
  emit(EventKind::kBarrierArrive, node, t, epoch, 0, -1, 0);
}

void Tracer::on_barrier_release(int node, std::uint64_t epoch, sim::Time t) {
  emit(EventKind::kBarrierRelease, node, t, epoch, 0, -1, 0);
}

void Tracer::on_lock_acquire(int node, std::uint64_t lock_block, sim::Time t) {
  emit(EventKind::kLockAcquire, node, t, lock_block, 0, -1, 0);
}

void Tracer::on_lock_acquired(int node, std::uint64_t lock_block, sim::Time t,
                              bool contended) {
  emit(EventKind::kLockAcquired, node, t, lock_block, contended ? 1 : 0, -1,
       0);
}

void Tracer::on_lock_release(int node, std::uint64_t lock_block, sim::Time t) {
  emit(EventKind::kLockRelease, node, t, lock_block, 0, -1, 0);
}

void Tracer::on_miss_start(int node, std::uint64_t block, bool is_write,
                           sim::Time t0) {
  std::uint8_t& st = state(node, static_cast<mem::BlockId>(block));
  MissClass cls;
  if ((st & kPending) != 0) {
    // The schedule presend-installed this block and the node faulted on it
    // anyway (e.g. a read-presend followed by a write, or an intervening
    // invalidation): the presend was waste, and the miss is attributed to it.
    cls = MissClass::kPresendWaste;
    resolve_pending(node, static_cast<mem::BlockId>(block), /*hit=*/false,
                    t0);
  } else {
    cls = (st & kEverValid) != 0 ? MissClass::kInvalidation : MissClass::kCold;
  }
  // Misses on commutative blocks are merge traffic: ccached's flush round
  // trips, and under the other protocols the reduction ping-pong ccached
  // replaces. Classified after the pending-bit logic so the presend
  // hit/waste/unused partition is untouched and the class is comparable
  // across protocols.
  if (space_.is_commutative(static_cast<mem::BlockId>(block)))
    cls = MissClass::kMerge;
  auto& m = miss_[static_cast<std::size_t>(node)];
  m.t0 = t0;
  m.cls = cls;
  emit(EventKind::kMissStart, node, t0, block, 0, -1,
       static_cast<std::uint16_t>(static_cast<std::uint16_t>(cls) |
                                  (is_write ? kMissWriteBit : 0)));
}

void Tracer::on_miss_end(int node, std::uint64_t block, bool is_write,
                         sim::Time t1) {
  const auto& m = miss_[static_cast<std::size_t>(node)];
  const sim::Time total = t1 - m.t0;
  Summary& sm = sum(node);
  ++sm.misses;
  ++sm.miss_by_class[static_cast<std::size_t>(m.cls)];
  sm.miss_latency_total += total;
  auto& ph = phase_totals(node);
  ++ph.misses;
  ++ph.miss_by_class[static_cast<std::size_t>(m.cls)];
  ph.miss_latency += total;
  const std::uint64_t cap = 0xffffffffull;
  emit(EventKind::kMissEnd, node, t1, block,
       static_cast<std::uint32_t>(
           std::min<std::uint64_t>(static_cast<std::uint64_t>(total), cap)),
       -1,
       static_cast<std::uint16_t>(static_cast<std::uint16_t>(m.cls) |
                                  (is_write ? kMissWriteBit : 0)));
}

void Tracer::on_msg_send(int src, int dst, std::uint8_t msg_type,
                         std::uint64_t block, std::uint32_t count,
                         std::uint32_t wire_bytes, sim::Time depart) {
  (void)count;
  emit(EventKind::kMsgSend, src, depart, block, wire_bytes,
       static_cast<std::int16_t>(dst), msg_type);
}

void Tracer::on_msg_recv(int dst, int src, std::uint8_t msg_type,
                         std::uint64_t block, std::uint32_t wire_bytes,
                         sim::Time arrival, sim::Time dispatch) {
  emit(EventKind::kMsgRecv, dst, arrival, block, wire_bytes,
       static_cast<std::int16_t>(src), msg_type);
  emit(EventKind::kMsgDispatch, dst, dispatch, block, wire_bytes,
       static_cast<std::int16_t>(src), msg_type);
}

void Tracer::on_presend_install(int node, int src, std::uint64_t block0,
                                std::uint32_t count, sim::Time t) {
  for (std::uint32_t k = 0; k < count; ++k) {
    const mem::BlockId b = static_cast<mem::BlockId>(block0 + k);
    std::uint8_t& st = state(node, b);
    if ((st & kPending) != 0) {
      // A fresh presend overwrote one the node never consumed.
      resolve_pending(node, b, /*hit=*/false, t);
    }
    st |= kEverValid | kPending;
    ++pending_count_[static_cast<std::size_t>(node)];
  }
  sum(node).presend_installs += count;
  emit(EventKind::kPresendInstall, node, t, block0, count,
       static_cast<std::int16_t>(src), 0);
}

void Tracer::on_ctx_block(int node, sim::Time t) {
  emit(EventKind::kCtxBlock, node, t, 0, 0, -1, 0);
}

void Tracer::on_ctx_resume(int node, sim::Time t) {
  emit(EventKind::kCtxResume, node, t, 0, 0, -1, 0);
}

// ---- mem::AccessObserver ----------------------------------------------------

void Tracer::on_app_read(int node, mem::BlockId b, std::size_t off,
                         const void* seen, std::size_t n) {
  std::uint8_t& st = state(node, b);
  if ((st & kPending) != 0) {
    // Access completed without a fault on a presend-installed block: the
    // schedule saved this miss. (A faulting access resolves the pending bit
    // as waste in on_miss_start before this hook runs.)
    resolve_pending(node, b, /*hit=*/true, engine_->processor(node).now());
  }
  st |= kEverValid;
  if (next_access_ != nullptr) next_access_->on_app_read(node, b, off, seen, n);
}

void Tracer::on_app_write(int node, mem::BlockId b, std::size_t off,
                          const void* data, std::size_t n) {
  std::uint8_t& st = state(node, b);
  if ((st & kPending) != 0)
    resolve_pending(node, b, /*hit=*/true, engine_->processor(node).now());
  st |= kEverValid;
  if (next_access_ != nullptr)
    next_access_->on_app_write(node, b, off, data, n);
}

void Tracer::on_cc_update(int node, mem::BlockId b, std::size_t off,
                          std::int64_t delta) {
  // Privatized update: no copy became valid at the node, so no state change
  // and no event — but the chained oracle must still see it to keep its
  // committed shadow exact.
  if (next_access_ != nullptr) next_access_->on_cc_update(node, b, off, delta);
}

// ---- proto::CoherenceObserver -----------------------------------------------

void Tracer::on_data_send(int src, int dst, const proto::Msg& m) {
  if (next_coherence_ != nullptr) next_coherence_->on_data_send(src, dst, m);
}

void Tracer::on_install(int node, mem::BlockId b, const std::byte* data,
                        mem::Tag tag) {
  state(node, b) |= kEverValid;
  emit(EventKind::kInstall, node, engine_->now(), b, 0,
       static_cast<std::int16_t>(tag), 0);
  if (next_coherence_ != nullptr)
    next_coherence_->on_install(node, b, data, tag);
}

// ---- net::Network::Observer -------------------------------------------------

void Tracer::on_message(int src, int dst, std::size_t bytes, sim::Time depart,
                        sim::Time arrival) {
  // Protocol traffic is covered by on_msg_send/on_msg_recv (typed, with
  // block ids); this chain-through keeps the oracle's event ring intact.
  if (next_net_ != nullptr)
    next_net_->on_message(src, dst, bytes, depart, arrival);
}

// ---- End of run -------------------------------------------------------------

void Tracer::finalize(sim::Time exec_time, const char* protocol_name) {
  if (finalized_) return;
  finalized_ = true;
  exec_time_ = exec_time;
  protocol_name_ = protocol_name;
  {
    // Stamp anything not yet sequenced — everything since the last window
    // boundary (windowed), or the whole emission-order buffer (serial, where
    // the bulk stamp reproduces exactly the seq an emit-time counter would
    // have assigned). Then fold the summary shards (node order, like
    // stamping) and the per-node append/drop counts.
    stamp_window();
    for (std::size_t i = 0; i < node_events_.size(); ++i) {
      summary_.events += node_events_[i];
      summary_.dropped += node_dropped_[i];
    }
    for (const Summary& s : shards_) {
      summary_.misses += s.misses;
      for (std::size_t i = 0; i < kNumMissClasses; ++i)
        summary_.miss_by_class[i] += s.miss_by_class[i];
      summary_.miss_latency_total += s.miss_latency_total;
      summary_.presend_installs += s.presend_installs;
      summary_.presend_hits += s.presend_hits;
      summary_.presend_waste += s.presend_waste;
      if (s.phases.size() > summary_.phases.size())
        summary_.phases.resize(s.phases.size());
      for (std::size_t i = 0; i < s.phases.size(); ++i) {
        auto& dst = summary_.phases[i];
        const auto& src = s.phases[i];
        dst.misses += src.misses;
        for (std::size_t k = 0; k < kNumMissClasses; ++k)
          dst.miss_by_class[k] += src.miss_by_class[k];
        dst.miss_latency += src.miss_latency;
        dst.presend_hits += src.presend_hits;
        dst.presend_waste += src.presend_waste;
      }
    }
  }
  // Presends never consumed: attribute them to the phase each target node
  // ended in. hits + waste + unused == presend_blocks_received.
  for (int n = 0; n < space_.nodes(); ++n)
    summary_.presend_unused += pending_count_[static_cast<std::size_t>(n)];
}

TraceData Tracer::build(const proto::ProtoCosts& costs,
                        const net::NetConfig& net_cfg) const {
  PRESTO_CHECK(finalized_, "Tracer::build before finalize");
  TraceData t;
  t.meta.nodes = static_cast<std::uint32_t>(space_.nodes());
  t.meta.block_size = space_.block_size();
  t.meta.categories = cfg_.categories;
  std::strncpy(t.meta.protocol, protocol_name_.c_str(),
               sizeof(t.meta.protocol) - 1);
  t.meta.cost_fault = costs.fault;
  t.meta.cost_handler = costs.handler;
  t.meta.cost_presend_per_block = costs.presend_per_block;
  t.meta.header_bytes = static_cast<std::int64_t>(costs.header_bytes);
  t.meta.net_wire_latency = net_cfg.wire_latency;
  t.meta.net_per_byte = net_cfg.per_byte;
  t.meta.net_self_latency = net_cfg.self_latency;
  t.meta.exec_time = exec_time_;
  t.meta.dropped = summary_.dropped;

  t.events.reserve(static_cast<std::size_t>(summary_.events));
  for (const auto& buf : bufs_)
    for (const auto& c : buf.chunks)
      t.events.insert(t.events.end(), c->ev.begin(), c->ev.begin() + c->n);
  // Canonical order: the global record sequence (a deterministic total
  // order — one context runs at a time).
  std::sort(t.events.begin(), t.events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return t;
}

Digest Tracer::digest() const {
  PRESTO_CHECK(finalized_, "Tracer::digest before finalize");
  const TraceData t = build(proto::ProtoCosts{}, net::NetConfig{});
  Digest d;
  d.events = t.events.size();
  std::uint64_t h = kFnvBasis;
  for (const Event& e : t.events) {
    h = fnv1a64(h, &e, sizeof(Event));
    ++d.by_kind[e.kind];
  }
  d.hash = h;
  return d;
}

}  // namespace presto::trace
