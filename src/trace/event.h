// Trace event schema (binary format v1, docs/observability.md).
//
// One fixed 32-byte POD per event, written to the file verbatim — every
// field is explicitly sized and ordered so the struct has no padding holes,
// which makes the FNV digest of the canonical stream (and the golden-trace
// pins built on it) a function of simulated behaviour alone, not of compiler
// layout.
//
// `seq` is a global monotone sequence number stamped at record time. Exactly
// one execution context runs at any moment (sim/engine.h), so the sequence
// is a deterministic total order of trace events — the canonical stream is
// simply all per-node buffers merged by seq, and fiber vs thread backends
// produce byte-identical streams (tests/trace_test.cc).
#pragma once

#include <cstdint>
#include <type_traits>

#include "trace/config.h"

namespace presto::trace {

enum class EventKind : std::uint16_t {
  kPhaseBegin = 0,   // node entered phase(arg=phase id); t = directive start
  kPhaseReady,       // presend + barrier done, compute begins
  kPhaseFlush,       // flush_phase directive
  kBarrierArrive,    // block = epoch
  kBarrierRelease,   // block = epoch
  kLockAcquire,      // block = lock block id; t = first attempt
  kLockAcquired,     // arg = 1 when the acquisition was contended
  kLockRelease,
  kMissStart,        // aux = MissClass | (is_write << 8); t matches the
                     //   remote_wait window start in the protocol exactly
  kMissEnd,          // arg = min(latency, u32max) for convenience
  kMsgSend,          // node=src, peer=dst, aux=MsgType, arg=wire bytes
  kMsgRecv,          // node=dst, peer=src; t = FIFO-clamped arrival
  kMsgDispatch,      // t = handler occupancy start (queue wait ended)
  kInstall,          // block copy/permission landed; peer = installed tag
  kPresendInstall,   // BulkData run installed; arg = run length, peer = src
  kPresendHit,       // present block consumed without a fault
  kPresendWaste,     // presend overwritten, re-faulted, or never used
  kCtxBlock,         // processor parked in block()
  kCtxResume,        // block() returned; t = resumed clock
  kKindCount,
};

inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kKindCount);

// Miss classification recorded in kMissStart's aux low byte.
enum class MissClass : std::uint8_t {
  kCold = 0,          // node never held a valid copy of the block
  kInvalidation = 1,  // held one and lost it (includes upgrades)
  kPresendWaste = 2,  // lost a *presend-installed* copy — the schedule paid
                      //   for this block and the miss happened anyway
  kMerge = 3,         // miss on a commutative (set_commutative) block:
                      //   ccached flush round trips and, under other
                      //   protocols, the reduction traffic ccached replaces
};
inline constexpr std::size_t kNumMissClasses = 4;
inline constexpr std::uint16_t kMissWriteBit = 1u << 8;

struct Event {
  std::uint64_t t = 0;      // simulated ns
  std::uint64_t block = 0;  // block id / epoch / phase-free scalar
  std::uint32_t seq = 0;    // global record order (canonical total order)
  std::uint32_t arg = 0;    // kind-specific (bytes, run length, latency)
  std::uint16_t kind = 0;   // EventKind
  std::int16_t node = -1;   // primary node (dst for recv/dispatch)
  std::int16_t peer = -1;   // src/dst counterpart, or installed tag
  std::uint16_t aux = 0;    // kind-specific (MsgType, MissClass|write bit)
};
static_assert(sizeof(Event) == 32 && std::is_trivially_copyable_v<Event>,
              "Event is the on-disk record; layout is part of format v1");

const char* event_kind_name(EventKind k);
Category event_kind_category(EventKind k);
const char* miss_class_name(MissClass c);

}  // namespace presto::trace
