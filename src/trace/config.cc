#include "trace/config.h"

#include "util/check.h"

namespace presto::trace {

const char* category_name(Category c) {
  switch (c) {
    case kCatPhase: return "phase";
    case kCatBarrier: return "barrier";
    case kCatLock: return "lock";
    case kCatMiss: return "miss";
    case kCatMsg: return "msg";
    case kCatData: return "data";
    case kCatSim: return "sim";
    case kCatAll: return "all";
  }
  return "?";
}

std::uint32_t category_from_name(const std::string& name) {
  if (name == "phase") return kCatPhase;
  if (name == "barrier") return kCatBarrier;
  if (name == "lock") return kCatLock;
  if (name == "miss") return kCatMiss;
  if (name == "msg") return kCatMsg;
  if (name == "data") return kCatData;
  if (name == "sim") return kCatSim;
  if (name == "all") return kCatAll;
  return 0;
}

TraceConfig TraceConfig::from_spec(const std::string& spec) {
  TraceConfig cfg;
  if (spec.empty()) return cfg;
  cfg.enabled = true;
  const std::size_t colon = spec.find(':');
  cfg.path = spec.substr(0, colon);
  if (colon == std::string::npos) return cfg;
  cfg.categories = 0;
  std::size_t pos = colon + 1;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string name = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::uint32_t bit = category_from_name(name);
    PRESTO_CHECK(bit != 0, "--trace: unknown category '"
                               << name
                               << "' (phase,barrier,lock,miss,msg,data,sim)");
    cfg.categories |= bit;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return cfg;
}

}  // namespace presto::trace
