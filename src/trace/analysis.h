// Reader-side analysis passes over a parsed trace (trace/file.h).
//
// Latency attribution decomposes every remote-miss window into the cost-model
// components the simulator charged inside it:
//
//   fault      — the local access-fault cost (meta.cost_fault), paid once;
//   transfer   — wire time (wire_latency + per_byte × bytes) of the messages
//                for the missed block that arrived inside the window (the
//                request reaching the home node and the data coming back);
//   occupancy  — protocol-handler occupancy (meta.cost_handler per dispatch
//                of the missed block inside the window);
//   queue      — the residual: time the miss spent waiting behind other
//                handlers and in flow-control, total − the three above.
//
// fault + transfer + occupancy + queue == the miss's measured latency by
// construction, so per-phase / per-class sums reconcile exactly with the
// protocol's remote_wait counter (tests/trace_property_test.cc).
//
// Phase-schedule introspection reconstructs, per phase × iteration, the
// realized communication schedule: the node×node matrix of presend-delivered
// blocks and of all protocol traffic. Consecutive iterations of an adaptive
// phase show §3.3's schedule incrementality directly — the matrix deltas are
// the schedule updates.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/file.h"

namespace presto::trace {

struct MissCosts {
  std::uint64_t count = 0;
  std::uint64_t total = 0;      // Σ miss windows, simulated ns
  std::uint64_t fault = 0;
  std::uint64_t transfer = 0;
  std::uint64_t occupancy = 0;
  std::uint64_t queue = 0;

  void add(const MissCosts& o);
};

struct PhaseAttribution {
  int phase = -1;  // -1 = before any phase directive
  MissCosts all;
  std::array<MissCosts, kNumMissClasses> by_class{};
  std::uint64_t presend_blocks = 0;  // presend-installed while in this phase
  std::uint64_t presend_hits = 0;
  std::uint64_t presend_waste = 0;
};

struct Attribution {
  MissCosts all;
  std::array<MissCosts, kNumMissClasses> by_class{};
  std::vector<PhaseAttribution> phases;  // indexed phase + 1
  std::array<std::uint64_t, kNumEventKinds> by_kind{};
  std::uint64_t barrier_wait = 0;  // Σ arrive→release, all nodes
  std::uint64_t lock_wait = 0;     // Σ acquire→acquired, all nodes
};

Attribution attribute(const TraceData& t);

// One iteration of one phase: who presend-shipped how many blocks to whom,
// and the total protocol traffic, attributed by the acting node's current
// (phase, iteration) at event time. Matrices are nodes×nodes, row = src.
struct PhaseIteration {
  std::vector<std::uint64_t> presend_blocks;  // [src*nodes + dst]
  std::vector<std::uint64_t> msgs;
  std::vector<std::uint64_t> bytes;
  std::uint64_t presend_total = 0;
  std::uint64_t msg_total = 0;
  std::uint64_t byte_total = 0;
};

struct PhaseSchedule {
  int phase = 0;
  std::vector<PhaseIteration> iterations;
};

std::vector<PhaseSchedule> phase_schedules(const TraceData& t);

// Human-readable reports for the presto_trace tool.
std::string summarize(const TraceData& t);
std::string phases_report(const TraceData& t);
std::string diff(const TraceData& a, const TraceData& b);

}  // namespace presto::trace
