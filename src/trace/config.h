// Trace configuration — deliberately tiny (no simulator includes) so
// runtime::MachineConfig can embed one without dragging the trace subsystem
// into every translation unit.
//
// The canonical CLI form is --trace=FILE[:cat1,cat2,...] (util/cli wiring in
// bench/bench_common.h). FILE ending in ".json" selects the Chrome/Perfetto
// trace_event export; any other name selects the compact binary format
// (docs/observability.md). An empty FILE with enabled=true keeps the trace
// in memory only — the tests and host_throughput's overhead measurement use
// that to exercise the tracer without touching the filesystem.
#pragma once

#include <cstdint>
#include <string>

namespace presto::trace {

// Event categories, used both as a record-time filter mask and for the
// reader's grouping. Keep in sync with category_name()/category_from_name().
enum Category : std::uint32_t {
  kCatPhase = 1u << 0,    // phase directives (begin/ready/flush)
  kCatBarrier = 1u << 1,  // barrier arrive/release
  kCatLock = 1u << 2,     // shared-lock acquire/acquired/release
  kCatMiss = 1u << 3,     // remote-miss windows (fault start/end)
  kCatMsg = 1u << 4,      // protocol messages (send/recv/dispatch)
  kCatData = 1u << 5,     // installs, presend installs, hit/waste verdicts
  kCatSim = 1u << 6,      // context block/resume (fiber or thread switches)
  kCatAll = 0x7fu,
};

struct TraceConfig {
  bool enabled = false;
  std::string path;  // empty = in-memory only
  std::uint32_t categories = kCatAll;
  // Per-node event cap; the tracer never drops silently (dropped counts are
  // surfaced in the summary and the file meta). 1M events/node covers every
  // bench at --quick scale with a wide margin.
  std::uint64_t max_events_per_node = 1u << 20;

  // Parses "FILE[:cat1,cat2,...]"; "" yields a disabled config. Aborts on an
  // unknown category name (same strictness as util/cli numeric parsing).
  static TraceConfig from_spec(const std::string& spec);
};

const char* category_name(Category c);
// 0 when the name is unknown.
std::uint32_t category_from_name(const std::string& name);

}  // namespace presto::trace
