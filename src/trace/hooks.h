// Trace hook interface — the new observation points this subsystem adds on
// top of the existing mem::AccessObserver / proto::CoherenceObserver /
// net::Network::Observer trio.
//
// Deliberately dependency-free (only <cstdint> + sim/time.h): sim/, proto/
// and runtime/ hold a `trace::Hooks*` behind a forward declaration and pay
// one null-pointer test when tracing is off — the same pattern the PR 2
// oracle proved costs ≤0.1% on host_throughput. Hooks are pure observation:
// implementations must never charge simulated time or schedule events, so
// simulated results are bit-identical with or without a tracer attached
// (tests/trace_test.cc pins this against the golden matrix).
//
// Each hook passes the relevant clock explicitly (the caller knows whether
// it runs on a node's processor clock or the engine clock), so the tracer
// needs no backdoor into either.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace presto::trace {

class Hooks {
 public:
  // Phase directives (runtime/node_ctx.h). `begin` fires before the
  // protocol's presend work, `ready` after presend + barrier complete.
  virtual void on_phase_begin(int node, int phase, sim::Time t) = 0;
  virtual void on_phase_ready(int node, int phase, sim::Time t) = 0;
  virtual void on_phase_flush(int node, int phase, sim::Time t) = 0;

  // Collectives (runtime/barrier.cc).
  virtual void on_barrier_arrive(int node, std::uint64_t epoch,
                                 sim::Time t) = 0;
  virtual void on_barrier_release(int node, std::uint64_t epoch,
                                  sim::Time t) = 0;

  // Shared locks (runtime/lock.cc); `lock_block` is the lock word's block.
  virtual void on_lock_acquire(int node, std::uint64_t lock_block,
                               sim::Time t) = 0;
  virtual void on_lock_acquired(int node, std::uint64_t lock_block,
                                sim::Time t, bool contended) = 0;
  virtual void on_lock_release(int node, std::uint64_t lock_block,
                               sim::Time t) = 0;

  // Remote-miss window (proto/stache.cc, proto/writeupdate.cc on_fault).
  // t0/t1 bracket exactly the interval the protocol adds to remote_wait.
  virtual void on_miss_start(int node, std::uint64_t block, bool is_write,
                             sim::Time t0) = 0;
  virtual void on_miss_end(int node, std::uint64_t block, bool is_write,
                           sim::Time t1) = 0;

  // Protocol messages (proto/protocol.cc). Send fires as the bytes are
  // copied into the channel ring; recv fires at the FIFO-clamped arrival
  // with the dispatch time (handler occupancy start) already resolved.
  virtual void on_msg_send(int src, int dst, std::uint8_t msg_type,
                           std::uint64_t block, std::uint32_t count,
                           std::uint32_t wire_bytes, sim::Time depart) = 0;
  virtual void on_msg_recv(int dst, int src, std::uint8_t msg_type,
                           std::uint64_t block, std::uint32_t wire_bytes,
                           sim::Time arrival, sim::Time dispatch) = 0;

  // A BulkData presend run installed `count` contiguous blocks at `node`
  // (proto/predictive.cc). Fires once per run, after the installs.
  virtual void on_presend_install(int node, int src, std::uint64_t block0,
                                  std::uint32_t count, sim::Time t) = 0;

  // Context switches (sim/processor.cc): park in block() / resume from it.
  virtual void on_ctx_block(int node, sim::Time t) = 0;
  virtual void on_ctx_resume(int node, sim::Time t) = 0;

 protected:
  ~Hooks() = default;
};

}  // namespace presto::trace
