// presto_trace — offline analysis of presto binary traces.
//
//   presto_trace summarize FILE            event counts + latency attribution
//   presto_trace phases FILE               per-phase schedules + traffic
//   presto_trace diff FILE_A FILE_B        compare two traces
//   presto_trace export-perfetto FILE OUT  Chrome/Perfetto trace_event JSON
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/analysis.h"
#include "trace/file.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: presto_trace <command> ...\n"
               "  summarize FILE            event counts + latency attribution\n"
               "  phases FILE               per-phase schedules + traffic matrices\n"
               "  diff FILE_A FILE_B        compare two traces\n"
               "  export-perfetto FILE OUT  write Perfetto JSON (ui.perfetto.dev)\n");
  return 2;
}

bool load(const char* path, presto::trace::TraceData* out) {
  std::string err;
  if (!presto::trace::read_file(path, out, &err)) {
    std::fprintf(stderr, "presto_trace: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  presto::trace::TraceData t;
  if (cmd == "summarize") {
    if (argc != 3) return usage();
    if (!load(argv[2], &t)) return 1;
    std::fputs(presto::trace::summarize(t).c_str(), stdout);
    return 0;
  }
  if (cmd == "phases") {
    if (argc != 3) return usage();
    if (!load(argv[2], &t)) return 1;
    std::fputs(presto::trace::phases_report(t).c_str(), stdout);
    return 0;
  }
  if (cmd == "diff") {
    if (argc != 4) return usage();
    presto::trace::TraceData b;
    if (!load(argv[2], &t) || !load(argv[3], &b)) return 1;
    const std::string d = presto::trace::diff(t, b);
    std::fputs(d.c_str(), stdout);
    return d == "traces are equivalent\n" ? 0 : 1;
  }
  if (cmd == "export-perfetto") {
    if (argc != 4) return usage();
    if (!load(argv[2], &t)) return 1;
    std::string err;
    if (!presto::trace::write_perfetto(t, argv[3], &err)) {
      std::fprintf(stderr, "presto_trace: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events)\n", argv[3], t.events.size());
    return 0;
  }
  return usage();
}
