#include "trace/analysis.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace presto::trace {

void MissCosts::add(const MissCosts& o) {
  count += o.count;
  total += o.total;
  fault += o.fault;
  transfer += o.transfer;
  occupancy += o.occupancy;
  queue += o.queue;
}

namespace {

// Per-node replay state shared by the analysis passes.
struct NodeState {
  int phase = -1;       // current phase id (-1 before first directive)
  int iter = -1;        // how many times this node has begun current phase
  bool in_miss = false;
  std::uint64_t miss_t0 = 0;
  std::uint64_t miss_block = 0;
  MissClass miss_cls = MissClass::kCold;
  std::uint64_t miss_transfer = 0;
  std::uint64_t miss_occupancy = 0;
  std::uint64_t barrier_t = 0, lock_t = 0;
  bool in_barrier = false, in_lock = false;
};

PhaseAttribution& phase_bucket(Attribution& a, int phase) {
  const std::size_t idx = static_cast<std::size_t>(phase + 1);
  if (a.phases.size() <= idx) a.phases.resize(idx + 1);
  a.phases[idx].phase = phase;
  return a.phases[idx];
}

}  // namespace

Attribution attribute(const TraceData& t) {
  Attribution a;
  const std::uint64_t wire = static_cast<std::uint64_t>(
      std::max<std::int64_t>(t.meta.net_wire_latency, 0));
  const std::uint64_t per_byte = static_cast<std::uint64_t>(
      std::max<std::int64_t>(t.meta.net_per_byte, 0));
  const std::uint64_t fault_cost = static_cast<std::uint64_t>(
      std::max<std::int64_t>(t.meta.cost_fault, 0));
  const std::uint64_t handler_cost = static_cast<std::uint64_t>(
      std::max<std::int64_t>(t.meta.cost_handler, 0));

  std::vector<NodeState> ns(t.meta.nodes);
  for (const Event& e : t.events) {
    a.by_kind[e.kind] += 1;
    if (e.node < 0 || static_cast<std::uint32_t>(e.node) >= t.meta.nodes)
      continue;
    NodeState& s = ns[static_cast<std::size_t>(e.node)];
    switch (static_cast<EventKind>(e.kind)) {
      case EventKind::kPhaseBegin:
        s.phase = static_cast<int>(e.arg);
        break;
      case EventKind::kBarrierArrive:
        s.in_barrier = true;
        s.barrier_t = e.t;
        break;
      case EventKind::kBarrierRelease:
        if (s.in_barrier && e.t >= s.barrier_t)
          a.barrier_wait += e.t - s.barrier_t;
        s.in_barrier = false;
        break;
      case EventKind::kLockAcquire:
        s.in_lock = true;
        s.lock_t = e.t;
        break;
      case EventKind::kLockAcquired:
        if (s.in_lock && e.t >= s.lock_t) a.lock_wait += e.t - s.lock_t;
        s.in_lock = false;
        break;
      case EventKind::kMissStart:
        s.in_miss = true;
        s.miss_t0 = e.t;
        s.miss_block = e.block;
        s.miss_cls = static_cast<MissClass>(e.aux & 0xff);
        s.miss_transfer = 0;
        s.miss_occupancy = 0;
        break;
      case EventKind::kMissEnd: {
        if (!s.in_miss) break;
        s.in_miss = false;
        MissCosts m;
        m.count = 1;
        m.total = e.t >= s.miss_t0 ? e.t - s.miss_t0 : 0;
        m.fault = fault_cost;
        m.transfer = s.miss_transfer;
        m.occupancy = s.miss_occupancy;
        const std::uint64_t known = m.fault + m.transfer + m.occupancy;
        m.queue = m.total > known ? m.total - known : 0;
        // Keep the identity exact even if components overlap the window end.
        if (known > m.total) {
          std::uint64_t excess = known - m.total;
          const std::uint64_t cut = std::min(excess, m.transfer);
          m.transfer -= cut;
          excess -= cut;
          m.occupancy -= std::min(excess, m.occupancy);
        }
        a.all.add(m);
        a.by_class[static_cast<std::size_t>(s.miss_cls)].add(m);
        PhaseAttribution& p = phase_bucket(a, s.phase);
        p.all.add(m);
        p.by_class[static_cast<std::size_t>(s.miss_cls)].add(m);
        break;
      }
      case EventKind::kMsgRecv:
        // Credit this message's wire time to any node currently missing on
        // the same block — the request landing at the home node and the data
        // coming back are both legs of that miss's round trip.
        for (NodeState& o : ns)
          if (o.in_miss && o.miss_block == e.block)
            o.miss_transfer += wire + per_byte * e.arg;
        break;
      case EventKind::kMsgDispatch:
        for (NodeState& o : ns)
          if (o.in_miss && o.miss_block == e.block)
            o.miss_occupancy += handler_cost;
        break;
      case EventKind::kPresendInstall:
        phase_bucket(a, s.phase).presend_blocks += e.arg;
        break;
      case EventKind::kPresendHit:
        phase_bucket(a, s.phase).presend_hits += 1;
        break;
      case EventKind::kPresendWaste:
        phase_bucket(a, s.phase).presend_waste += 1;
        break;
      default:
        break;
    }
  }
  return a;
}

std::vector<PhaseSchedule> phase_schedules(const TraceData& t) {
  const std::size_t n = t.meta.nodes;
  std::vector<PhaseSchedule> out;
  std::vector<NodeState> ns(n);
  // iteration counter per (node, phase id)
  std::vector<std::vector<int>> iters(n);

  auto sched_for = [&](int phase) -> PhaseSchedule& {
    for (PhaseSchedule& s : out)
      if (s.phase == phase) return s;
    out.push_back(PhaseSchedule{phase, {}});
    return out.back();
  };
  auto iter_for = [&](int phase, int iter) -> PhaseIteration& {
    PhaseSchedule& s = sched_for(phase);
    while (s.iterations.size() <= static_cast<std::size_t>(iter)) {
      PhaseIteration it;
      it.presend_blocks.assign(n * n, 0);
      it.msgs.assign(n * n, 0);
      it.bytes.assign(n * n, 0);
      s.iterations.push_back(std::move(it));
    }
    return s.iterations[static_cast<std::size_t>(iter)];
  };

  for (const Event& e : t.events) {
    if (e.node < 0 || static_cast<std::uint32_t>(e.node) >= n) continue;
    NodeState& s = ns[static_cast<std::size_t>(e.node)];
    switch (static_cast<EventKind>(e.kind)) {
      case EventKind::kPhaseBegin: {
        s.phase = static_cast<int>(e.arg);
        auto& per = iters[static_cast<std::size_t>(e.node)];
        if (per.size() <= static_cast<std::size_t>(s.phase))
          per.resize(static_cast<std::size_t>(s.phase) + 1, 0);
        s.iter = per[static_cast<std::size_t>(s.phase)]++;
        break;
      }
      case EventKind::kPresendInstall: {
        if (s.phase < 0 || e.peer < 0) break;
        PhaseIteration& it = iter_for(s.phase, s.iter);
        it.presend_blocks[static_cast<std::size_t>(e.peer) * n +
                          static_cast<std::size_t>(e.node)] += e.arg;
        it.presend_total += e.arg;
        break;
      }
      case EventKind::kMsgSend: {
        if (s.phase < 0 || e.peer < 0) break;
        PhaseIteration& it = iter_for(s.phase, s.iter);
        const std::size_t cell = static_cast<std::size_t>(e.node) * n +
                                 static_cast<std::size_t>(e.peer);
        it.msgs[cell] += 1;
        it.bytes[cell] += e.arg;
        it.msg_total += 1;
        it.byte_total += e.arg;
        break;
      }
      default:
        break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseSchedule& a, const PhaseSchedule& b) {
              return a.phase < b.phase;
            });
  return out;
}

// ---- report builders --------------------------------------------------------

namespace {

void appendf(std::string& s, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& s, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  s += buf;
}

void append_costs_row(std::string& s, const char* label, const MissCosts& m) {
  appendf(s,
          "  %-16s %8" PRIu64 "  %12" PRIu64 "  %12" PRIu64 "  %12" PRIu64
          "  %12" PRIu64 "  %12" PRIu64 "\n",
          label, m.count, m.total, m.fault, m.transfer, m.occupancy, m.queue);
}

}  // namespace

std::string summarize(const TraceData& t) {
  std::string s;
  appendf(s, "trace v%u  protocol=%s  nodes=%u  block=%u B  exec=%" PRId64
             " ns\n",
          t.meta.version, t.meta.protocol, t.meta.nodes, t.meta.block_size,
          t.meta.exec_time);
  appendf(s, "events: %zu recorded, %" PRIu64 " dropped\n", t.events.size(),
          t.meta.dropped);

  const Attribution a = attribute(t);
  s += "\nevent counts by kind:\n";
  for (std::size_t k = 0; k < kNumEventKinds; ++k)
    if (a.by_kind[k] != 0)
      appendf(s, "  %-16s %10" PRIu64 "\n",
              event_kind_name(static_cast<EventKind>(k)), a.by_kind[k]);

  s += "\nmiss latency attribution (ns totals):\n";
  appendf(s, "  %-16s %8s  %12s  %12s  %12s  %12s  %12s\n", "class", "count",
          "total", "fault", "transfer", "occupancy", "queue");
  for (std::size_t c = 0; c < kNumMissClasses; ++c)
    if (a.by_class[c].count != 0)
      append_costs_row(s, miss_class_name(static_cast<MissClass>(c)),
                       a.by_class[c]);
  append_costs_row(s, "all", a.all);

  bool any_phase = false;
  for (const PhaseAttribution& p : a.phases)
    if (p.all.count != 0 || p.presend_blocks != 0) any_phase = true;
  if (any_phase) {
    s += "\nper-phase attribution:\n";
    for (const PhaseAttribution& p : a.phases) {
      if (p.all.count == 0 && p.presend_blocks == 0) continue;
      if (p.phase < 0)
        appendf(s, " (before first phase)\n");
      else
        appendf(s, " phase %d:  presend %" PRIu64 " blocks, %" PRIu64
                   " hits, %" PRIu64 " waste\n",
                p.phase, p.presend_blocks, p.presend_hits, p.presend_waste);
      for (std::size_t c = 0; c < kNumMissClasses; ++c)
        if (p.by_class[c].count != 0)
          append_costs_row(s, miss_class_name(static_cast<MissClass>(c)),
                           p.by_class[c]);
    }
  }
  if (a.barrier_wait != 0 || a.lock_wait != 0)
    appendf(s, "\nbarrier wait: %" PRIu64 " ns   lock wait: %" PRIu64 " ns\n",
            a.barrier_wait, a.lock_wait);
  return s;
}

std::string phases_report(const TraceData& t) {
  std::string s;
  const std::size_t n = t.meta.nodes;
  const std::vector<PhaseSchedule> scheds = phase_schedules(t);
  if (scheds.empty()) return "no phase activity in trace\n";
  for (const PhaseSchedule& ps : scheds) {
    appendf(s, "phase %d: %zu iterations\n", ps.phase, ps.iterations.size());
    const PhaseIteration* prev = nullptr;
    for (std::size_t i = 0; i < ps.iterations.size(); ++i) {
      const PhaseIteration& it = ps.iterations[i];
      appendf(s, " iter %zu: presend %" PRIu64 " blocks, %" PRIu64
                 " msgs, %" PRIu64 " bytes",
              i, it.presend_total, it.msg_total, it.byte_total);
      if (prev != nullptr) {
        // Schedule incrementality (§3.3): how many matrix cells changed
        // since the previous iteration of this phase.
        std::size_t changed = 0;
        for (std::size_t c = 0; c < n * n; ++c)
          if (it.presend_blocks[c] != prev->presend_blocks[c]) ++changed;
        appendf(s, "  (schedule delta: %zu/%zu cells)", changed, n * n);
      }
      s += "\n";
      if (it.presend_total != 0) {
        appendf(s, "   presend blocks (row=src, col=dst):\n");
        for (std::size_t r = 0; r < n; ++r) {
          appendf(s, "    n%-2zu", r);
          for (std::size_t c = 0; c < n; ++c)
            appendf(s, " %6" PRIu64, it.presend_blocks[r * n + c]);
          s += "\n";
        }
      }
      prev = &it;
    }
  }
  return s;
}

std::string diff(const TraceData& a, const TraceData& b) {
  std::string s;
  bool same = true;
  if (std::string(a.meta.protocol) != b.meta.protocol) {
    appendf(s, "protocol: %s vs %s\n", a.meta.protocol, b.meta.protocol);
    same = false;
  }
  if (a.meta.nodes != b.meta.nodes) {
    appendf(s, "nodes: %u vs %u\n", a.meta.nodes, b.meta.nodes);
    same = false;
  }
  if (a.meta.block_size != b.meta.block_size) {
    appendf(s, "block size: %u vs %u\n", a.meta.block_size,
            b.meta.block_size);
    same = false;
  }
  if (a.meta.exec_time != b.meta.exec_time) {
    appendf(s, "exec time: %" PRId64 " vs %" PRId64 " ns (%+.2f%%)\n",
            a.meta.exec_time, b.meta.exec_time,
            a.meta.exec_time != 0
                ? 100.0 *
                      (static_cast<double>(b.meta.exec_time) -
                       static_cast<double>(a.meta.exec_time)) /
                      static_cast<double>(a.meta.exec_time)
                : 0.0);
    same = false;
  }
  const Attribution aa = attribute(a);
  const Attribution ab = attribute(b);
  for (std::size_t k = 0; k < kNumEventKinds; ++k)
    if (aa.by_kind[k] != ab.by_kind[k]) {
      appendf(s, "%-16s %10" PRIu64 " vs %10" PRIu64 "\n",
              event_kind_name(static_cast<EventKind>(k)), aa.by_kind[k],
              ab.by_kind[k]);
      same = false;
    }
  if (aa.all.total != ab.all.total || aa.all.count != ab.all.count) {
    appendf(s, "miss latency: %" PRIu64 " ns over %" PRIu64
               " vs %" PRIu64 " ns over %" PRIu64 "\n",
            aa.all.total, aa.all.count, ab.all.total, ab.all.count);
    same = false;
  }
  if (same && a.events.size() == b.events.size()) {
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      const Event &x = a.events[i], &y = b.events[i];
      if (x.t != y.t || x.block != y.block || x.kind != y.kind ||
          x.node != y.node || x.peer != y.peer || x.arg != y.arg ||
          x.aux != y.aux) {
        appendf(s, "first divergence at event %zu (seq %u vs %u): "
                   "%s@n%d t=%" PRIu64 " vs %s@n%d t=%" PRIu64 "\n",
                i, x.seq, y.seq,
                event_kind_name(static_cast<EventKind>(x.kind)), x.node, x.t,
                event_kind_name(static_cast<EventKind>(y.kind)), y.node, y.t);
        same = false;
        break;
      }
    }
  }
  if (same) s = "traces are equivalent\n";
  return s;
}

}  // namespace presto::trace
