#include "trace/event.h"

namespace presto::trace {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kPhaseBegin: return "PhaseBegin";
    case EventKind::kPhaseReady: return "PhaseReady";
    case EventKind::kPhaseFlush: return "PhaseFlush";
    case EventKind::kBarrierArrive: return "BarrierArrive";
    case EventKind::kBarrierRelease: return "BarrierRelease";
    case EventKind::kLockAcquire: return "LockAcquire";
    case EventKind::kLockAcquired: return "LockAcquired";
    case EventKind::kLockRelease: return "LockRelease";
    case EventKind::kMissStart: return "MissStart";
    case EventKind::kMissEnd: return "MissEnd";
    case EventKind::kMsgSend: return "MsgSend";
    case EventKind::kMsgRecv: return "MsgRecv";
    case EventKind::kMsgDispatch: return "MsgDispatch";
    case EventKind::kInstall: return "Install";
    case EventKind::kPresendInstall: return "PresendInstall";
    case EventKind::kPresendHit: return "PresendHit";
    case EventKind::kPresendWaste: return "PresendWaste";
    case EventKind::kCtxBlock: return "CtxBlock";
    case EventKind::kCtxResume: return "CtxResume";
    case EventKind::kKindCount: break;
  }
  return "?";
}

Category event_kind_category(EventKind k) {
  switch (k) {
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseReady:
    case EventKind::kPhaseFlush: return kCatPhase;
    case EventKind::kBarrierArrive:
    case EventKind::kBarrierRelease: return kCatBarrier;
    case EventKind::kLockAcquire:
    case EventKind::kLockAcquired:
    case EventKind::kLockRelease: return kCatLock;
    case EventKind::kMissStart:
    case EventKind::kMissEnd: return kCatMiss;
    case EventKind::kMsgSend:
    case EventKind::kMsgRecv:
    case EventKind::kMsgDispatch: return kCatMsg;
    case EventKind::kInstall:
    case EventKind::kPresendInstall:
    case EventKind::kPresendHit:
    case EventKind::kPresendWaste: return kCatData;
    case EventKind::kCtxBlock:
    case EventKind::kCtxResume: return kCatSim;
    case EventKind::kKindCount: break;
  }
  return kCatSim;
}

const char* miss_class_name(MissClass c) {
  switch (c) {
    case MissClass::kCold: return "cold";
    case MissClass::kInvalidation: return "invalidation";
    case MissClass::kPresendWaste: return "presend-waste";
    case MissClass::kMerge: return "merge";
  }
  return "?";
}

}  // namespace presto::trace
