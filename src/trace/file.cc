#include "trace/file.h"

#include <cstdio>
#include <cstring>

namespace presto::trace {

std::uint64_t fnv1a64(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

void append(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

}  // namespace

std::vector<std::byte> serialize(const TraceData& t) {
  std::vector<std::byte> out;
  out.reserve(4 + sizeof(TraceMeta) + 16 + t.events.size() * sizeof(Event));
  append(out, &kTraceMagic, sizeof(kTraceMagic));
  append(out, &t.meta, sizeof(TraceMeta));
  const std::uint64_t count = t.events.size();
  append(out, &count, sizeof(count));
  std::uint64_t h = kFnvBasis;
  if (!t.events.empty()) {
    append(out, t.events.data(), t.events.size() * sizeof(Event));
    h = fnv1a64(h, t.events.data(), t.events.size() * sizeof(Event));
  }
  append(out, &h, sizeof(h));
  return out;
}

bool write_file(const TraceData& t, const std::string& path,
                std::string* err) {
  const std::vector<std::byte> bytes = serialize(t);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(err, "cannot open '" + path + "' for writing");
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = n == bytes.size() && std::fclose(f) == 0;
  if (!ok) {
    if (n == bytes.size()) std::fclose(f);
    return fail(err, "short write to '" + path + "'");
  }
  return true;
}

bool parse(const std::byte* data, std::size_t n, TraceData* out,
           std::string* err) {
  const std::size_t kFixed = 4 + sizeof(TraceMeta) + 8 + 8;
  if (n < kFixed)
    return fail(err, "truncated trace: " + std::to_string(n) +
                         " bytes, header alone needs " +
                         std::to_string(kFixed));
  std::size_t off = 0;
  std::uint32_t magic;
  std::memcpy(&magic, data + off, sizeof(magic));
  off += sizeof(magic);
  if (magic != kTraceMagic)
    return fail(err, "bad magic: not a presto trace file");
  TraceMeta meta;
  std::memcpy(&meta, data + off, sizeof(meta));
  off += sizeof(meta);
  if (meta.version != kTraceVersion)
    return fail(err, "unsupported trace version " +
                         std::to_string(meta.version) + " (reader supports " +
                         std::to_string(kTraceVersion) + ")");
  if (meta.nodes == 0 || meta.nodes > 4096)
    return fail(err,
                "implausible node count " + std::to_string(meta.nodes));
  if (meta.block_size == 0 ||
      (meta.block_size & (meta.block_size - 1)) != 0)
    return fail(err, "implausible block size " +
                         std::to_string(meta.block_size));
  // NUL-terminated protocol name within its fixed field.
  if (meta.protocol[sizeof(meta.protocol) - 1] != '\0')
    return fail(err, "unterminated protocol name in header");
  std::uint64_t count;
  std::memcpy(&count, data + off, sizeof(count));
  off += sizeof(count);
  const std::uint64_t payload = n - kFixed;
  if (count * sizeof(Event) != payload)
    return fail(err, "event count " + std::to_string(count) + " needs " +
                         std::to_string(count * sizeof(Event)) +
                         " payload bytes, file has " +
                         std::to_string(payload));
  const std::byte* events = data + off;
  off += static_cast<std::size_t>(count) * sizeof(Event);
  std::uint64_t stored_hash;
  std::memcpy(&stored_hash, data + off, sizeof(stored_hash));
  const std::uint64_t hash =
      fnv1a64(kFnvBasis, events, static_cast<std::size_t>(count) * sizeof(Event));
  if (hash != stored_hash)
    return fail(err, "integrity hash mismatch: file is corrupt");

  out->meta = meta;
  out->events.resize(static_cast<std::size_t>(count));
  if (count != 0)
    std::memcpy(out->events.data(), events,
                static_cast<std::size_t>(count) * sizeof(Event));
  std::uint32_t prev_seq = 0;
  for (std::size_t i = 0; i < out->events.size(); ++i) {
    const Event& e = out->events[i];
    if (e.kind >= static_cast<std::uint16_t>(EventKind::kKindCount))
      return fail(err, "event " + std::to_string(i) + ": unknown kind " +
                           std::to_string(e.kind));
    if (e.node < -1 || e.node >= static_cast<std::int16_t>(meta.nodes))
      return fail(err, "event " + std::to_string(i) + ": node " +
                           std::to_string(e.node) + " out of range");
    if (i != 0 && e.seq <= prev_seq)
      return fail(err, "event " + std::to_string(i) +
                           ": sequence not strictly increasing");
    prev_seq = e.seq;
  }
  return true;
}

bool read_file(const std::string& path, TraceData* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(err, "cannot open '" + path + "'");
  std::vector<std::byte> bytes;
  std::byte buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) != 0)
    bytes.insert(bytes.end(), buf, buf + n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return fail(err, "read error on '" + path + "'");
  return parse(bytes.data(), bytes.size(), out, err);
}

// ---- Perfetto export --------------------------------------------------------

namespace {

// Two timeline lanes per node: application (misses, barriers, locks, phase
// presends) and protocol (handler occupancy, installs).
int app_tid(int node) { return node * 2; }
int proto_tid(int node) { return node * 2 + 1; }

double us(std::uint64_t t_ns) { return static_cast<double>(t_ns) / 1000.0; }

void slice(std::FILE* f, bool& first, const char* name, const char* cat,
           int tid, std::uint64_t t0, std::uint64_t t1) {
  std::fprintf(f,
               "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,"
               "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
               first ? "" : ",\n", name, cat, tid, us(t0),
               us(t1 > t0 ? t1 - t0 : 0));
  first = false;
}

void instant(std::FILE* f, bool& first, const char* name, const char* cat,
             int tid, std::uint64_t t) {
  std::fprintf(f,
               "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
               "\"pid\":0,\"tid\":%d,\"ts\":%.3f}",
               first ? "" : ",\n", name, cat, tid, us(t));
  first = false;
}

}  // namespace

bool write_perfetto(const TraceData& t, const std::string& path,
                    std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(err, "cannot open '" + path + "' for writing");
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  for (std::uint32_t n = 0; n < t.meta.nodes; ++n) {
    std::fprintf(f,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%d,\"args\":{\"name\":\"node %u app\"}},\n"
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%d,\"args\":{\"name\":\"node %u protocol\"}}",
                 first ? "" : ",\n", app_tid(static_cast<int>(n)), n,
                 proto_tid(static_cast<int>(n)), n);
    first = false;
  }

  // Open-interval state per node, matched as the canonical stream replays.
  struct Open {
    std::uint64_t miss_t = 0, barrier_t = 0, lock_t = 0, phase_t = 0;
    std::uint64_t block_t = 0;
    std::uint64_t miss_block = 0;
    std::uint16_t miss_aux = 0;
    bool in_miss = false, in_barrier = false, in_lock = false;
    bool in_phase = false, in_block = false;
  };
  std::vector<Open> open(t.meta.nodes);
  char name[96];

  for (const Event& e : t.events) {
    if (e.node < 0) continue;
    Open& o = open[static_cast<std::size_t>(e.node)];
    const int atid = app_tid(e.node);
    switch (static_cast<EventKind>(e.kind)) {
      case EventKind::kPhaseBegin:
        o.in_phase = true;
        o.phase_t = e.t;
        break;
      case EventKind::kPhaseReady:
        if (o.in_phase) {
          std::snprintf(name, sizeof(name), "phase %u presend", e.arg);
          slice(f, first, name, "phase", atid, o.phase_t, e.t);
          o.in_phase = false;
        }
        break;
      case EventKind::kPhaseFlush:
        std::snprintf(name, sizeof(name), "flush phase %u", e.arg);
        instant(f, first, name, "phase", atid, e.t);
        break;
      case EventKind::kBarrierArrive:
        o.in_barrier = true;
        o.barrier_t = e.t;
        break;
      case EventKind::kBarrierRelease:
        if (o.in_barrier) {
          slice(f, first, "barrier", "barrier", atid, o.barrier_t, e.t);
          o.in_barrier = false;
        }
        break;
      case EventKind::kLockAcquire:
        o.in_lock = true;
        o.lock_t = e.t;
        break;
      case EventKind::kLockAcquired:
        if (o.in_lock) {
          std::snprintf(name, sizeof(name), "lock b%llu%s",
                        static_cast<unsigned long long>(e.block),
                        e.arg != 0 ? " (contended)" : "");
          slice(f, first, name, "lock", atid, o.lock_t, e.t);
          o.in_lock = false;
        }
        break;
      case EventKind::kLockRelease:
        std::snprintf(name, sizeof(name), "unlock b%llu",
                      static_cast<unsigned long long>(e.block));
        instant(f, first, name, "lock", atid, e.t);
        break;
      case EventKind::kMissStart:
        o.in_miss = true;
        o.miss_t = e.t;
        o.miss_block = e.block;
        o.miss_aux = e.aux;
        break;
      case EventKind::kMissEnd:
        if (o.in_miss) {
          std::snprintf(
              name, sizeof(name), "%s miss b%llu (%s)",
              (o.miss_aux & kMissWriteBit) != 0 ? "write" : "read",
              static_cast<unsigned long long>(o.miss_block),
              miss_class_name(static_cast<MissClass>(o.miss_aux & 0xff)));
          slice(f, first, name, "miss", atid, o.miss_t, e.t);
          o.in_miss = false;
        }
        break;
      case EventKind::kMsgSend:
        std::snprintf(name, sizeof(name), "send %u B to %d", e.arg, e.peer);
        instant(f, first, name, "msg", proto_tid(e.node), e.t);
        break;
      case EventKind::kMsgRecv:
        break;  // queue wait is visible as the recv→dispatch gap
      case EventKind::kMsgDispatch:
        std::snprintf(name, sizeof(name), "handler b%llu from %d",
                      static_cast<unsigned long long>(e.block), e.peer);
        slice(f, first, name, "msg", proto_tid(e.node), e.t,
              e.t + static_cast<std::uint64_t>(t.meta.cost_handler));
        break;
      case EventKind::kInstall:
        std::snprintf(name, sizeof(name), "install b%llu",
                      static_cast<unsigned long long>(e.block));
        instant(f, first, name, "data", proto_tid(e.node), e.t);
        break;
      case EventKind::kPresendInstall:
        std::snprintf(name, sizeof(name), "presend +%u b%llu", e.arg,
                      static_cast<unsigned long long>(e.block));
        instant(f, first, name, "data", proto_tid(e.node), e.t);
        break;
      case EventKind::kPresendHit:
        std::snprintf(name, sizeof(name), "presend hit b%llu",
                      static_cast<unsigned long long>(e.block));
        instant(f, first, name, "data", atid, e.t);
        break;
      case EventKind::kPresendWaste:
        std::snprintf(name, sizeof(name), "presend waste b%llu",
                      static_cast<unsigned long long>(e.block));
        instant(f, first, name, "data", atid, e.t);
        break;
      case EventKind::kCtxBlock:
        o.in_block = true;
        o.block_t = e.t;
        break;
      case EventKind::kCtxResume:
        if (o.in_block) {
          slice(f, first, "blocked", "sim", atid, o.block_t, e.t);
          o.in_block = false;
        }
        break;
      case EventKind::kKindCount:
        break;
    }
  }
  std::fprintf(f, "\n]}\n");
  if (std::fclose(f) != 0) return fail(err, "short write to '" + path + "'");
  return true;
}

}  // namespace presto::trace
