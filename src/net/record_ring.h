// Flat FIFO queue of variable-length byte records, built for closure-free
// message transport: records are appended to a contiguous arena behind a
// u32 length prefix and consumed from the head in order. When the queue
// drains the arena rewinds to offset zero, so steady-state traffic reuses
// the same capacity with no allocation; if a queue stays non-empty across a
// long burst, push() compacts the live region instead of growing forever.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace presto::net {

class RecordRing {
 public:
  bool empty() const { return head_ == buf_.size(); }

  // Appends one record assembled from two spans (header + payload; either
  // may be empty). Returns nothing; the bytes are copied immediately.
  void push(const void* a, std::size_t a_len, const void* b,
            std::size_t b_len) {
    if (empty()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ > 4096 && head_ > buf_.size() - head_) {
      // More dead space in front than live bytes behind: compact.
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    const std::uint32_t len = static_cast<std::uint32_t>(a_len + b_len);
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(len) + len);
    std::memcpy(buf_.data() + at, &len, sizeof(len));
    if (a_len != 0) std::memcpy(buf_.data() + at + sizeof(len), a, a_len);
    if (b_len != 0)
      std::memcpy(buf_.data() + at + sizeof(len) + a_len, b, b_len);
  }

  // Front record view; valid until the next push() (pop() only advances the
  // head, it never moves bytes).
  const std::byte* front(std::size_t* len) const {
    PRESTO_CHECK(!empty(), "front() on empty RecordRing");
    std::uint32_t n;
    std::memcpy(&n, buf_.data() + head_, sizeof(n));
    *len = n;
    return reinterpret_cast<const std::byte*>(buf_.data() + head_ +
                                              sizeof(n));
  }

  void pop() {
    std::size_t len;
    (void)front(&len);
    head_ += sizeof(std::uint32_t) + len;
  }

  // Host memory held by the arena (high-water capacity).
  std::size_t capacity_bytes() const { return buf_.capacity(); }

 private:
  std::vector<unsigned char> buf_;
  std::size_t head_ = 0;  // arena offset of the front record
};

}  // namespace presto::net
