#include "net/network.h"

#include "util/check.h"

namespace presto::net {

Network::Network(sim::Engine& engine, int nodes, const NetConfig& cfg)
    : engine_(engine),
      nodes_(nodes),
      cfg_(cfg),
      channels_(static_cast<std::size_t>(nodes) *
                static_cast<std::size_t>(nodes)),
      per_node_msgs_(static_cast<std::size_t>(nodes), 0),
      per_node_bytes_(static_cast<std::size_t>(nodes), 0) {}

std::size_t Network::channels_used() const {
  std::size_t n = 0;
  for (const auto& ch : channels_)
    if (ch.used) ++n;
  return n;
}

std::size_t Network::metadata_bytes() const {
  std::size_t n = channels_.capacity() * sizeof(Channel);
  for (const auto& ch : channels_) n += ch.ring.capacity_bytes();
  return n;
}

sim::Time Network::route(int src, int dst, std::size_t bytes,
                         sim::Time depart) {
  PRESTO_CHECK(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
               "bad endpoints " << src << "->" << dst);
  const sim::Time latency =
      (src == dst ? cfg_.self_latency
                  : cfg_.wire_latency +
                        static_cast<sim::Time>(bytes) * cfg_.per_byte);
  sim::Time arrival = depart + latency;

  Channel& ch = channel(src, dst);
  ch.used = true;
  if (arrival <= ch.last_arrival) arrival = ch.last_arrival + 1;
  ch.last_arrival = arrival;

  ++messages_;
  bytes_ += bytes;
  ++per_node_msgs_[static_cast<std::size_t>(src)];
  per_node_bytes_[static_cast<std::size_t>(src)] += bytes;
  if (observer_ != nullptr) [[unlikely]]
    observer_->on_message(src, dst, bytes, depart, arrival);
  return arrival;
}

sim::Time Network::send_msg(int src, int dst, std::size_t wire_bytes,
                            sim::Time depart, const void* header,
                            std::size_t header_len, const void* payload,
                            std::size_t payload_len) {
  PRESTO_CHECK(sink_ != nullptr, "send_msg with no MsgSink registered");
  const sim::Time arrival = route(src, dst, wire_bytes, depart);
  Channel& ch = channel(src, dst);
  ch.ring.push(header, header_len, payload, payload_len);
  // The channel is FIFO (arrival times are clamped monotone), so the event
  // pops the front record — an 16-byte capture, no per-message allocation.
  engine_.schedule_at(arrival, [this, ch = &ch, dst] {
    std::size_t len;
    const std::byte* rec = ch->ring.front(&len);
    ch->ring.pop();  // pop() never moves bytes; rec stays valid in on_msg
    sink_->on_msg(dst, rec, len);
  });
  return arrival;
}

}  // namespace presto::net
