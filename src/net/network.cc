#include "net/network.h"

#include "util/check.h"

namespace presto::net {

Network::Network(sim::Engine& engine, int nodes, const NetConfig& cfg)
    : engine_(engine),
      nodes_(nodes),
      cfg_(cfg),
      last_arrival_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), 0),
      per_node_msgs_(static_cast<std::size_t>(nodes), 0),
      per_node_bytes_(static_cast<std::size_t>(nodes), 0) {}

sim::Time Network::send(int src, int dst, std::size_t bytes, sim::Time depart,
                        std::function<void()> deliver) {
  PRESTO_CHECK(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
               "bad endpoints " << src << "->" << dst);
  const sim::Time latency =
      (src == dst ? cfg_.self_latency
                  : cfg_.wire_latency +
                        static_cast<sim::Time>(bytes) * cfg_.per_byte);
  sim::Time arrival = depart + latency;

  auto& fifo = last_arrival_[static_cast<std::size_t>(src) *
                                 static_cast<std::size_t>(nodes_) +
                             static_cast<std::size_t>(dst)];
  if (arrival <= fifo) arrival = fifo + 1;
  fifo = arrival;

  ++messages_;
  bytes_ += bytes;
  ++per_node_msgs_[static_cast<std::size_t>(src)];
  per_node_bytes_[static_cast<std::size_t>(src)] += bytes;

  engine_.schedule_at(arrival, std::move(deliver));
  return arrival;
}

}  // namespace presto::net
