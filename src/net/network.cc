#include "net/network.h"

#include <cstring>

#include "check/bughook.h"
#include "util/check.h"

namespace presto::net {

Network::Network(sim::Engine& engine, int nodes, const NetConfig& cfg)
    : engine_(engine),
      nodes_(nodes),
      cfg_(cfg),
      per_node_msgs_(static_cast<std::size_t>(nodes), 0),
      per_node_bytes_(static_cast<std::size_t>(nodes), 0) {
  if (nodes <= kDenseNodeLimit)
    channels_.resize(static_cast<std::size_t>(nodes) *
                     static_cast<std::size_t>(nodes));
  else
    sparse_.resize(static_cast<std::size_t>(nodes));
  if (engine_.windowed()) {
    PRESTO_CHECK(engine_.window() <= min_latency(),
                 "window width " << engine_.window()
                                 << " exceeds the network's minimum latency "
                                 << min_latency());
    outboxes_.resize(static_cast<std::size_t>(nodes));
    engine_.set_boundary_op(sim::BoundaryOp::kNet, [this] { flush_staged(); });
  }
}

std::uint64_t Network::messages_sent() const {
  std::uint64_t n = 0;
  for (const std::uint64_t m : per_node_msgs_) n += m;
  return n;
}

std::uint64_t Network::bytes_sent() const {
  std::uint64_t n = 0;
  for (const std::uint64_t b : per_node_bytes_) n += b;
  return n;
}

Network::Channel& Network::sparse_channel(int src, int dst) {
  SrcChannels& sc = sparse_[static_cast<std::size_t>(src)];
  if (sc.slot.empty()) sc.slot.resize(static_cast<std::size_t>(nodes_), 0);
  std::uint32_t& s = sc.slot[static_cast<std::size_t>(dst)];
  if (s == 0) {
    if (sc.count % kSparseChunk == 0)
      sc.chunks.push_back(std::make_unique<Channel[]>(kSparseChunk));
    s = ++sc.count;
  }
  const std::uint32_t idx = s - 1;
  return sc.chunks[idx / kSparseChunk][idx % kSparseChunk];
}

std::size_t Network::channels_used() const {
  std::size_t n = 0;
  for (const auto& ch : channels_)
    if (ch.used) ++n;
  for (const auto& sc : sparse_)
    for (std::uint32_t i = 0; i < sc.count; ++i)
      if (sc.chunks[i / kSparseChunk][i % kSparseChunk].used) ++n;
  return n;
}

std::size_t Network::metadata_bytes() const {
  std::size_t n = channels_.capacity() * sizeof(Channel);
  for (const auto& ch : channels_) n += ch.ring.capacity_bytes();
  for (const auto& sc : sparse_) {
    n += sc.slot.capacity() * sizeof(std::uint32_t) +
         sc.chunks.capacity() * sizeof(sc.chunks[0]) +
         sc.chunks.size() * kSparseChunk * sizeof(Channel);
    for (std::uint32_t i = 0; i < sc.count; ++i)
      n += sc.chunks[i / kSparseChunk][i % kSparseChunk].ring.capacity_bytes();
  }
  for (const auto& ob : outboxes_) {
    n += ob.entries.capacity() * sizeof(Staged);
    if (ob.open != nullptr) n += sizeof(StagedArena) + ob.open->bytes.capacity();
    for (const auto& a : ob.sealed) n += sizeof(StagedArena) + a->bytes.capacity();
    for (const auto& a : ob.free) n += sizeof(StagedArena) + a->bytes.capacity();
  }
  n += holdover_.entries.capacity() * sizeof(Staged);
  return n;
}

sim::Time Network::route(int src, int dst, std::size_t bytes,
                         sim::Time depart) {
  PRESTO_CHECK(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
               "bad endpoints " << src << "->" << dst);
  const sim::Time latency =
      (src == dst ? cfg_.self_latency
                  : cfg_.wire_latency +
                        static_cast<sim::Time>(bytes) * cfg_.per_byte);
  sim::Time arrival = depart + latency;

  Channel& ch = channel(src, dst);
  ch.used = true;
  if (arrival <= ch.last_arrival) arrival = ch.last_arrival + 1;
  ch.last_arrival = arrival;

  ++per_node_msgs_[static_cast<std::size_t>(src)];
  per_node_bytes_[static_cast<std::size_t>(src)] += bytes;
  if (observer_ != nullptr) [[unlikely]]
    observer_->on_message(src, dst, bytes, depart, arrival);
  return arrival;
}

void Network::schedule_record_delivery(Channel& ch, int dst,
                                       sim::Time arrival) {
  // The channel is FIFO (arrival times are clamped monotone), so the event
  // pops the front record — a 16-byte capture, no per-message allocation.
  engine_.schedule_on(engine_.windowed() ? dst : 0, arrival,
                      [this, ch = &ch, dst] {
                        std::size_t len;
                        const std::byte* rec = ch->ring.front(&len);
                        ch->ring.pop();  // never moves bytes; rec stays valid
                        sink_->on_msg(dst, rec, len);
                      });
}

sim::Time Network::send_msg(int src, int dst, std::size_t wire_bytes,
                            sim::Time depart, const void* header,
                            std::size_t header_len, const void* payload,
                            std::size_t payload_len) {
  PRESTO_CHECK(sink_ != nullptr, "send_msg with no MsgSink registered");
  const sim::Time arrival = route(src, dst, wire_bytes, depart);
  if (src != dst && engine_.in_lane_context()) {
    PRESTO_CHECK(engine_.current_lane() == src,
                 "lane " << engine_.current_lane() << " sending as " << src);
    // Single copy: header+payload land contiguously in the source's open
    // arena; the boundary flush schedules deliveries that read them in
    // place (no ring push, no second copy).
    Outbox& ob = outboxes_[static_cast<std::size_t>(src)];
    if (ob.open == nullptr) ob.open = std::make_unique<StagedArena>();
    StagedArena& a = *ob.open;
    const std::size_t off = a.bytes.size();
    const auto* h = static_cast<const std::byte*>(header);
    a.bytes.insert(a.bytes.end(), h, h + header_len);
    if (payload_len > 0) {
      const auto* p = static_cast<const std::byte*>(payload);
      a.bytes.insert(a.bytes.end(), p, p + payload_len);
    }
    ++ob.open_records;
    ob.entries.push_back(Staged{&a, dst, arrival, /*is_record=*/true,
                                static_cast<std::uint32_t>(header_len),
                                static_cast<std::uint32_t>(payload_len), off,
                                sim::InlineFn()});
    return arrival;
  }
  Channel& ch = channel(src, dst);
  ch.ring.push(header, header_len, payload, payload_len);
  schedule_record_delivery(ch, dst, arrival);
  return arrival;
}

void Network::stage_fn(int src, int dst, sim::Time arrival, sim::InlineFn fn) {
  PRESTO_CHECK(engine_.current_lane() == src,
               "lane " << engine_.current_lane() << " sending as " << src);
  outboxes_[static_cast<std::size_t>(src)].entries.push_back(
      Staged{nullptr, dst, arrival, /*is_record=*/false, 0, 0, 0,
             std::move(fn)});
}

void Network::seal_open(Outbox& ob) {
  if (ob.open_records == 0) return;
  // The count is the arena's delivery obligation; the window barrier's
  // release/acquire edges publish the bytes to the destination lanes that
  // will read them.
  ob.open->live.store(ob.open_records, std::memory_order_release);
  ob.sealed.push_back(std::move(ob.open));
  if (!ob.free.empty()) {
    ob.open = std::move(ob.free.back());
    ob.free.pop_back();
  } else {
    ob.open = std::make_unique<StagedArena>();
  }
  ob.open_records = 0;
}

void Network::reclaim_arenas(Outbox& ob) {
  for (std::size_t i = 0; i < ob.sealed.size();) {
    if (ob.sealed[i]->live.load(std::memory_order_acquire) != 0) {
      ++i;
      continue;
    }
    ob.sealed[i]->bytes.clear();  // keep capacity
    ob.free.push_back(std::move(ob.sealed[i]));
    ob.sealed[i] = std::move(ob.sealed.back());
    ob.sealed.pop_back();
  }
}

void Network::flush_staged() {
  // A mailbox held back by the planted delay bug is recovered first, so the
  // fault stays a one-window reordering rather than a lost message.
  if (!holdover_.entries.empty()) flush_outbox(holdover_);
  // The planted bug fires only under a pooled drain (workers > 1): it models
  // a worker-pool flush-coordination mistake, and gating it this way keeps a
  // serial windowed run in the same process (the differential's reference)
  // clean while the parallel run under test diverges.
  if (check::bug_hooks().delay_window_flush && !flush_delayed_ && nodes_ > 1 &&
      engine_.workers() > 1 && !outboxes_[1].entries.empty()) [[unlikely]] {
    // Planted bug (one-shot): hold source 1's mailbox for a full window. The
    // messages physically sit in the mailbox, so their wire departure — and
    // therefore arrival — slips by the window width (merely re-inserting the
    // events late would be invisible: delivery times are absolute stamps).
    // Only the entries move; their record bytes stay in source 1's arena,
    // which seals normally below and is reclaimed once the late deliveries
    // finally run.
    flush_delayed_ = true;
    std::swap(holdover_.entries, outboxes_[1].entries);
    for (Staged& s : holdover_.entries) s.arrival += engine_.window();
  }
  for (Outbox& ob : outboxes_) {
    reclaim_arenas(ob);
    seal_open(ob);
    flush_outbox(ob);
  }
}

void Network::flush_outbox(Outbox& ob) {
  for (Staged& s : ob.entries) {
    if (s.is_record) {
      // Deliver straight out of the sealed arena: the capture fits the
      // engine's inline closure storage, and the decrement is the arena's
      // only shared word.
      engine_.schedule_on(s.dst, s.arrival,
                          [this, a = s.arena, off = s.byte_off,
                           len = static_cast<std::size_t>(s.header_len) +
                                 s.payload_len,
                           dst = s.dst] {
                            sink_->on_msg(dst, a->bytes.data() + off, len);
                            a->live.fetch_sub(1, std::memory_order_release);
                          });
    } else {
      engine_.schedule_on(s.dst, s.arrival, std::move(s.fn));
    }
  }
  ob.entries.clear();
}

}  // namespace presto::net
