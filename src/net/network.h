// Point-to-point interconnect model.
//
// Models a CM-5-style data network without contention: a message of b bytes
// sent at time t arrives at t + wire_latency + b * per_byte. Delivery between
// a fixed (src, dst) pair is FIFO — Stache's transaction serialization at the
// home node assumes ordered channels, which we enforce by clamping arrival
// times to be monotone per channel. Self-sends (protocol dispatch to the
// local node) use a cheaper loopback latency.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.h"
#include "sim/time.h"

namespace presto::net {

struct NetConfig {
  sim::Time wire_latency = sim::microseconds(30);  // software messaging cost
  sim::Time per_byte = 100;                        // ~10 MB/s effective
  sim::Time self_latency = sim::microseconds(5);   // local protocol dispatch
};

class Network {
 public:
  Network(sim::Engine& engine, int nodes, const NetConfig& cfg);

  // Schedules deliver() to run in engine context at the arrival time of a
  // message of `bytes` bytes departing src at `depart`. Returns the arrival
  // time. Callable from both engine and processor threads (depart must be
  // the caller's current virtual time or later).
  sim::Time send(int src, int dst, std::size_t bytes, sim::Time depart,
                 std::function<void()> deliver);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t messages_from(int src) const {
    return per_node_msgs_[static_cast<std::size_t>(src)];
  }
  std::uint64_t bytes_from(int src) const {
    return per_node_bytes_[static_cast<std::size_t>(src)];
  }
  const NetConfig& config() const { return cfg_; }
  int nodes() const { return nodes_; }

 private:
  sim::Engine& engine_;
  const int nodes_;
  const NetConfig cfg_;
  std::vector<sim::Time> last_arrival_;  // [src * nodes + dst] FIFO clamp
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> per_node_msgs_;
  std::vector<std::uint64_t> per_node_bytes_;
};

}  // namespace presto::net
