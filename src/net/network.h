// Point-to-point interconnect model.
//
// Models a CM-5-style data network without contention: a message of b bytes
// sent at time t arrives at t + wire_latency + b * per_byte. Delivery between
// a fixed (src, dst) pair is FIFO — Stache's transaction serialization at the
// home node assumes ordered channels, which we enforce by clamping arrival
// times to be monotone per channel. Self-sends (protocol dispatch to the
// local node) use a cheaper loopback latency.
//
// Two delivery paths share the routing/FIFO logic:
//   * send_msg — the protocol fast path: the caller's header+payload bytes
//     are copied into the (src, dst) channel's record ring and handed to the
//     registered MsgSink at arrival time. No heap allocation in steady state
//     and no closure per message.
//   * send — closure delivery for control messages and tests; the callable
//     goes straight into the engine's event queue.
//
// Channel state (FIFO clamp + ring) lives in one dense nodes² table indexed
// by src*nodes+dst on machines of up to kDenseNodeLimit nodes: a channel
// lookup is one multiply-add, the FIFO clamp and ring head share a cache
// line, and the table is allocated exactly once up front — Channel pointers
// captured by in-flight delivery events stay stable because the vector never
// grows. Rings start empty, so an idle channel costs sizeof(Channel), not a
// ring arena.
//
// Above kDenseNodeLimit the dense table would be the largest allocation in
// the simulator (nodes² channels for traffic that is overwhelmingly
// neighbor/home-patterned), so each source instead keeps a flat dst->slot
// index (built lazily on the source's first send) plus a chunked arena of
// channels materialized on first use. Chunks never move, so Channel pointers
// are as stable as the dense table's, and both the index and the arena are
// owned by the source — under the parallel windowed engine every touch
// happens on the source's lane, so no lock is needed. metadata_bytes then
// scales with channels actually used, not nodes².
//
// Windowed engines (sim/engine.h): a cross-node send issued inside a lane
// drain may not touch the destination lane's event queue, so it is *staged*
// in the source node's outbox — routing (the FIFO clamp, traffic counters,
// the observer call) still happens at send time, on state the source lane
// owns — and the boundary flush (BoundaryOp::kNet) walks sources 0..N-1 in
// send order, scheduling each delivery on the destination lane. The flush
// order is fixed, so message sequence numbers — and therefore every
// simulated result — are independent of how lanes were partitioned over
// workers. Self-sends and sends from outside any lane (setup, boundary
// context) deliver directly through the channel ring, as before.
//
// Staged record bytes are written exactly once: send_msg appends them to the
// source's open *arena*, and the boundary flush merely seals the arena
// (stamping its live-delivery count) and schedules events that read the
// bytes in place at arrival — no second copy into the channel ring, no
// boundary memcpy at all. A sealed arena is immutable, so destination lanes
// read it concurrently without synchronization beyond the window barrier's
// release/acquire edges; each delivery decrements the arena's live counter
// (single producer per arena, its consumers are the destination lanes — the
// counter is the only shared word), and the flush reclaims drained arenas
// into a freelist, so steady-state staging allocates nothing. Per-source
// staging is deliberate: a worker→worker mailbox indexing would make the
// flush order depend on the worker count, per-source order keeps it
// canonical for free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/record_ring.h"
#include "sim/engine.h"
#include "sim/time.h"

namespace presto::net {

struct NetConfig {
  sim::Time wire_latency = sim::microseconds(30);  // software messaging cost
  sim::Time per_byte = 100;                        // ~10 MB/s effective
  sim::Time self_latency = sim::microseconds(5);   // local protocol dispatch
};

class Network {
 public:
  // Receiver of typed messages (the protocol layer). The record bytes are
  // only valid for the duration of the on_msg call.
  class MsgSink {
   public:
    virtual void on_msg(int dst, const std::byte* rec, std::size_t len) = 0;

   protected:
    ~MsgSink() = default;
  };

  // Observer of every routed message (both delivery paths), used by the
  // coherence oracle's event ring for failure-trace triage. Pure
  // observation: never charges time or perturbs FIFO clamping.
  class Observer {
   public:
    virtual void on_message(int src, int dst, std::size_t bytes,
                            sim::Time depart, sim::Time arrival) = 0;

   protected:
    ~Observer() = default;
  };

  // Widest machine that gets the dense nodes² channel table; larger
  // machines use the per-source sparse tables.
  static constexpr int kDenseNodeLimit = 64;

  Network(sim::Engine& engine, int nodes, const NetConfig& cfg);

  void set_msg_sink(MsgSink* sink) { sink_ = sink; }
  void set_observer(Observer* o) { observer_ = o; }
  Observer* observer() const { return observer_; }

  // Typed fast path: copies header+payload into the channel ring; the sink
  // receives the concatenated record at the arrival time. `wire_bytes` is
  // the simulated message size (it can differ from the host record size).
  // Returns the arrival time. Callable from engine and processor threads.
  sim::Time send_msg(int src, int dst, std::size_t wire_bytes,
                     sim::Time depart, const void* header,
                     std::size_t header_len, const void* payload,
                     std::size_t payload_len);

  // Schedules deliver() to run in engine context at the arrival time of a
  // message of `bytes` bytes departing src at `depart`. Returns the arrival
  // time. Callable from both engine and processor threads (depart must be
  // the caller's current virtual time or later).
  template <typename F>
  sim::Time send(int src, int dst, std::size_t bytes, sim::Time depart,
                 F&& deliver) {
    const sim::Time arrival = route(src, dst, bytes, depart);
    if (src != dst && engine_.in_lane_context()) {
      stage_fn(src, dst, arrival, sim::InlineFn(std::forward<F>(deliver)));
    } else {
      engine_.schedule_on(engine_.windowed() ? dst : 0, arrival,
                          std::forward<F>(deliver));
    }
    return arrival;
  }

  // Lower bound on cross-node delivery latency. A windowed engine's window
  // width must not exceed this: a message departing at t < cap then arrives
  // at t + min_latency() >= cap, so boundary flushes never land in a
  // destination lane's past.
  sim::Time min_latency() const { return cfg_.wire_latency; }

  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;
  std::uint64_t messages_from(int src) const {
    return per_node_msgs_[static_cast<std::size_t>(src)];
  }
  std::uint64_t bytes_from(int src) const {
    return per_node_bytes_[static_cast<std::size_t>(src)];
  }
  const NetConfig& config() const { return cfg_; }
  int nodes() const { return nodes_; }
  // Channels that have carried at least one message (test/telemetry hook).
  std::size_t channels_used() const;

  // Host bytes held by the channel table and its record-ring arenas.
  std::size_t metadata_bytes() const;

  // What the pre-sparse dense nodes² channel table would occupy for a
  // machine this wide — the baseline the scale benches report sub-quadratic
  // metadata against.
  static std::size_t dense_equiv_bytes(int nodes) {
    return static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes) *
           sizeof(Channel);
  }

 private:
  struct Channel {
    sim::Time last_arrival = 0;
    bool used = false;  // carried at least one message
    RecordRing ring;
  };

  // Staged record bytes for one flush interval of one source. The arena
  // object's address is stable from the moment a record lands in it (the
  // byte vector may grow while open; offsets stay valid). Sealing stamps
  // `live` with the number of deliveries that will read the bytes; each
  // delivery decrements it, and an arena at zero is recycled.
  struct StagedArena {
    std::vector<std::byte> bytes;
    std::atomic<std::uint32_t> live{0};
  };

  // One staged cross-node delivery (windowed mode). Record deliveries keep
  // their header+payload bytes in a staging arena; closure deliveries carry
  // the callable itself.
  struct Staged {
    StagedArena* arena;  // bytes owner (records only; null for closures)
    int dst;
    sim::Time arrival;
    bool is_record;
    std::uint32_t header_len;
    std::uint32_t payload_len;
    std::size_t byte_off;  // into arena->bytes (records only)
    sim::InlineFn fn;      // closure delivery when !is_record
  };
  // Per-source mailbox; entries are flushed in send order. The open arena
  // collects this interval's record bytes; sealed arenas are in flight until
  // their deliveries drain, then return to the freelist with their capacity.
  struct Outbox {
    std::vector<Staged> entries;
    std::unique_ptr<StagedArena> open;   // created on first staged record
    std::uint32_t open_records = 0;      // records staged in `open`
    std::vector<std::unique_ptr<StagedArena>> sealed;
    std::vector<std::unique_ptr<StagedArena>> free;
  };

  // Sparse mode (> kDenseNodeLimit nodes): per-source open-channel table.
  // The dst->slot index array is built on the source's first send; channels
  // live in fixed-size chunks that never move.
  struct SrcChannels {
    std::vector<std::uint32_t> slot;  // dst -> arena slot + 1; 0 = unopened
    std::vector<std::unique_ptr<Channel[]>> chunks;
    std::uint32_t count = 0;
  };
  static constexpr std::uint32_t kSparseChunk = 8;  // channels per chunk

  // Computes the FIFO-clamped arrival time and records traffic stats.
  sim::Time route(int src, int dst, std::size_t bytes, sim::Time depart);
  Channel& channel(int src, int dst) {
    if (!channels_.empty())
      return channels_[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(nodes_) +
                       static_cast<std::size_t>(dst)];
    return sparse_channel(src, dst);
  }
  Channel& sparse_channel(int src, int dst);

  // Pops the front record of ch and hands it to the sink at `arrival`, on
  // the destination's lane (lane 0 when windows are off — the legacy path).
  void schedule_record_delivery(Channel& ch, int dst, sim::Time arrival);
  void stage_fn(int src, int dst, sim::Time arrival, sim::InlineFn fn);
  // Boundary flush (BoundaryOp::kNet): sources 0..N-1 in send order.
  void flush_staged();
  void flush_outbox(Outbox& ob);
  // Stamps the open arena's live count and moves it to the sealed list
  // (no-op when it holds no records).
  void seal_open(Outbox& ob);
  // Recycles sealed arenas whose deliveries have all run.
  void reclaim_arenas(Outbox& ob);

  sim::Engine& engine_;
  const int nodes_;
  const NetConfig cfg_;
  MsgSink* sink_ = nullptr;
  Observer* observer_ = nullptr;
  // Dense nodes² table, [src*nodes + dst]; sized once in the constructor and
  // never resized (delivery events hold Channel pointers). Empty above
  // kDenseNodeLimit, where sparse_ takes over.
  std::vector<Channel> channels_;
  std::vector<SrcChannels> sparse_;
  // Traffic counters are per-source (the source lane owns its own slots, so
  // concurrent lane drains never share a counter); totals are summed on read.
  std::vector<std::uint64_t> per_node_msgs_;
  std::vector<std::uint64_t> per_node_bytes_;
  // Windowed mode only (empty otherwise).
  std::vector<Outbox> outboxes_;
  // Planted-bug state (check/bughook.h delay_window_flush): a one-shot hold
  // of one source's mailbox entries for a full window, recovered at the next
  // flush. Only entries move; their arena seals normally in the owning
  // outbox, so the held records' bytes stay valid.
  Outbox holdover_;
  bool flush_delayed_ = false;
};

}  // namespace presto::net
