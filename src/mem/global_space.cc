#include "mem/global_space.h"

#include <bit>

namespace presto::mem {

namespace {
int log2_exact(std::uint32_t v) {
  PRESTO_CHECK(std::has_single_bit(v), "not a power of two: " << v);
  return std::countr_zero(v);
}
}  // namespace

GlobalSpace::GlobalSpace(int nodes, const MemConfig& cfg)
    : nodes_(nodes),
      cfg_(cfg),
      block_shift_(log2_exact(cfg.block_size)),
      page_shift_(log2_exact(cfg.page_size)),
      tag_chunk_shift_(page_shift_ - block_shift_),
      tag_chunk_mask_((1ULL << (page_shift_ - block_shift_)) - 1),
      tags_(static_cast<std::size_t>(nodes)),
      frames_(static_cast<std::size_t>(nodes)),
      arenas_(static_cast<std::size_t>(nodes)) {
  PRESTO_CHECK(nodes > 0 && nodes <= 65536, "node count " << nodes);
  PRESTO_CHECK(cfg.page_size % cfg.block_size == 0,
               "page size not a multiple of block size");
}

void GlobalSpace::grow_to(std::size_t new_size) {
  const std::size_t npages = new_size >> page_shift_;
  for (int n = 0; n < nodes_; ++n) {
    tags_[static_cast<std::size_t>(n)].resize(npages);
    frames_[static_cast<std::size_t>(n)].resize(npages);
  }
  page_home_.resize(npages, -1);
  size_ = new_size;
}

Addr GlobalSpace::alloc(std::size_t bytes,
                        const std::function<int(PageId)>& home) {
  if (grow_gate_) {
    Addr base = 0;
    grow_gate_([&] { base = alloc_now(bytes, home); });
    return base;
  }
  return alloc_now(bytes, home);
}

Addr GlobalSpace::alloc_now(std::size_t bytes,
                            const std::function<int(PageId)>& home) {
  PRESTO_CHECK(bytes > 0, "zero-byte allocation");
  const std::size_t pages =
      (bytes + cfg_.page_size - 1) / cfg_.page_size;
  const Addr base = size_;
  const PageId first_page = base >> page_shift_;
  grow_to(size_ + pages * cfg_.page_size);

  const std::size_t blocks_per_page =
      cfg_.page_size / cfg_.block_size;
  for (std::size_t p = 0; p < pages; ++p) {
    const int h = home(static_cast<PageId>(p));
    PRESTO_CHECK(h >= 0 && h < nodes_, "bad home " << h);
    page_home_[static_cast<std::size_t>(first_page) + p] = h;
    // The home starts with ReadWrite permission on all its blocks.
    const BlockId b0 =
        (first_page + p) << (page_shift_ - block_shift_);
    for (std::size_t b = 0; b < blocks_per_page; ++b)
      set_tag(h, b0 + b, Tag::ReadWrite);
  }
  return base;
}

Addr GlobalSpace::alloc_on_node(int node, std::size_t bytes) {
  return alloc(bytes, [node](PageId) { return node; });
}

Addr GlobalSpace::arena_alloc(int node, std::size_t bytes, std::size_t align) {
  PRESTO_CHECK(bytes <= cfg_.page_size,
               "arena object " << bytes << " exceeds page size");
  auto& ar = arenas_[static_cast<std::size_t>(node)];
  // Align the linear cursor.
  Addr pos = (ar.cur + align - 1) & ~static_cast<Addr>(align - 1);
  // Objects may not straddle (non-contiguous) arena chunks.
  if ((pos & (cfg_.page_size - 1)) + bytes > cfg_.page_size)
    pos = (pos + cfg_.page_size) & ~static_cast<Addr>(cfg_.page_size - 1);
  const std::size_t chunk = static_cast<std::size_t>(pos >> page_shift_);
  while (chunk >= ar.chunks.size())
    ar.chunks.push_back(alloc_on_node(node, cfg_.page_size));
  ar.cur = pos + bytes;
  return ar.chunks[chunk] + (pos & (cfg_.page_size - 1));
}

std::size_t GlobalSpace::arena_mark(int node) const {
  return static_cast<std::size_t>(arenas_[static_cast<std::size_t>(node)].cur);
}

void GlobalSpace::arena_reset(int node, std::size_t mark) {
  auto& ar = arenas_[static_cast<std::size_t>(node)];
  PRESTO_CHECK(mark <= ar.cur, "arena reset past current position");
  ar.cur = mark;
}

void GlobalSpace::set_commutative(Addr base, std::size_t bytes) {
  PRESTO_CHECK(bytes > 0, "empty commutative region");
  PRESTO_CHECK(base + bytes <= size_, "commutative region past end of space");
  const BlockId first = block_of(base);
  const BlockId last = block_of(base + bytes - 1);
  if (commutative_.size() <= static_cast<std::size_t>(last))
    commutative_.resize(static_cast<std::size_t>(last) + 1, 0);
  for (BlockId b = first; b <= last; ++b)
    commutative_[static_cast<std::size_t>(b)] = 1;
}

std::uint8_t* GlobalSpace::materialize_tags(int node, PageId p) {
  auto& c = tags_[static_cast<std::size_t>(node)][static_cast<std::size_t>(p)];
  const std::size_t bpp = cfg_.page_size / cfg_.block_size;
  c = std::make_unique<std::uint8_t[]>(bpp);
  std::memset(c.get(), static_cast<int>(Tag::Invalid), bpp);
  return c.get();
}

std::size_t GlobalSpace::tag_bytes_resident() const {
  const std::size_t bpp = cfg_.page_size / cfg_.block_size;
  std::size_t n = 0;
  for (const auto& per_node : tags_) {
    n += per_node.capacity() * sizeof(per_node[0]);
    for (const auto& c : per_node)
      if (c != nullptr) n += bpp;
  }
  return n;
}

std::byte* GlobalSpace::materialize_frame(int node, PageId p) {
  auto& f = frames_[static_cast<std::size_t>(node)][static_cast<std::size_t>(p)];
  f = std::make_unique<std::byte[]>(cfg_.page_size);
  std::memset(f.get(), 0, cfg_.page_size);
  return f.get();
}

void GlobalSpace::resolve_fault(int node, BlockId b, bool is_write) {
  // The handler may install a tag weaker than requested (or the tag may be
  // stolen again before the processor resumes); re-check until it sticks.
  do {
    PRESTO_CHECK(fault_ != nullptr, "no fault handler installed");
    fault_->on_fault(node, b, is_write);
  } while (is_write ? tag(node, b) != Tag::ReadWrite
                    : tag(node, b) == Tag::Invalid);
}

void GlobalSpace::read_slow(int node, Addr a, void* out, std::size_t n) {
  std::byte* dst = static_cast<std::byte*>(out);
  while (n > 0) {
    const BlockId b = block_of(a);
    if (tag(node, b) == Tag::Invalid)
      resolve_fault(node, b, /*is_write=*/false);
    const std::size_t in_block =
        cfg_.block_size - static_cast<std::size_t>(a & (cfg_.block_size - 1));
    const std::size_t chunk = n < in_block ? n : in_block;
    const std::byte* src =
        block_data(node, b) + (a & (cfg_.block_size - 1));
    std::memcpy(dst, src, chunk);
    if (observer_ != nullptr) [[unlikely]]
      observer_->on_app_read(node, b, a & (cfg_.block_size - 1), dst, chunk);
    a += chunk;
    dst += chunk;
    n -= chunk;
  }
}

void GlobalSpace::write_slow(int node, Addr a, const void* in, std::size_t n) {
  const std::byte* src = static_cast<const std::byte*>(in);
  while (n > 0) {
    const BlockId b = block_of(a);
    if (tag(node, b) != Tag::ReadWrite)
      resolve_fault(node, b, /*is_write=*/true);
    const std::size_t in_block =
        cfg_.block_size - static_cast<std::size_t>(a & (cfg_.block_size - 1));
    const std::size_t chunk = n < in_block ? n : in_block;
    std::byte* dst = block_data(node, b) + (a & (cfg_.block_size - 1));
    std::memcpy(dst, src, chunk);
    if (observer_ != nullptr) [[unlikely]]
      observer_->on_app_write(node, b, a & (cfg_.block_size - 1), src, chunk);
    a += chunk;
    src += chunk;
    n -= chunk;
  }
}

void GlobalSpace::rmw(int node, Addr a, std::size_t n,
                      const std::function<void(void*)>& fn) {
  const BlockId b = block_of(a);
  PRESTO_CHECK(block_of(a + n - 1) == b, "rmw may not straddle blocks");
  if (tag(node, b) != Tag::ReadWrite) resolve_fault(node, b, /*is_write=*/true);
  // Holding ReadWrite and not yielding makes the read-modify-write atomic
  // with respect to all other simulated processors.
  std::byte* p = block_data(node, b) + (a & (cfg_.block_size - 1));
  fn(p);
  if (observer_ != nullptr) [[unlikely]]
    observer_->on_app_write(node, b, a & (cfg_.block_size - 1), p, n);
}

}  // namespace presto::mem
