// Global shared address space with fine-grain access control — the Tempest
// substrate (Reinhardt et al. [14]) that Blizzard implements on the CM-5.
//
// The space is carved into pages (home-assignment granularity, as in C**'s
// page-grain data distribution) and cache blocks (coherence granularity,
// 32–1024 bytes). Every node keeps its own copy of any page it touches plus
// a per-block access tag {Invalid, ReadOnly, ReadWrite}; an access that the
// tag does not permit vectors to a user-level fault handler (the coherence
// protocol), which blocks the accessing processor until the tag is upgraded.
// Data genuinely moves between per-node frames, so coherence-protocol bugs
// corrupt application results and are caught by the numeric tests.
//
// The access path mirrors the hardware split Blizzard emulates in software:
// the tag check plus data copy for a permitted single-block access is
// inlined here (no virtual call, no std::function), and only faults or
// block-spanning accesses drop into the out-of-line slow path.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "util/check.h"

namespace presto::mem {

using Addr = std::uint64_t;
using BlockId = std::uint64_t;
using PageId = std::uint64_t;

enum class Tag : std::uint8_t { Invalid = 0, ReadOnly = 1, ReadWrite = 2 };

// Installed by the coherence protocol; on_fault runs on the faulting node's
// processor thread and must block it until the access is permitted.
class FaultHandler {
 public:
  virtual void on_fault(int node, BlockId b, bool is_write) = 0;

 protected:
  ~FaultHandler() = default;
};

// Observer of every completed application access, at single-block
// granularity (block-spanning accesses report once per block touched).
// Implemented by the coherence invariant oracle (check/oracle.h); null in
// normal runs, so the fast paths pay only a pointer test. Hooks run on the
// accessing node's thread, after the bytes moved, with the tag still held.
class AccessObserver {
 public:
  virtual void on_app_read(int node, BlockId b, std::size_t off,
                           const void* seen, std::size_t n) = 0;
  virtual void on_app_write(int node, BlockId b, std::size_t off,
                            const void* data, std::size_t n) = 0;
  // Privatized commutative update (ccached protocol, NodeCtx::cc_add):
  // `delta` will be added to the 64-bit word at byte offset `off` of block b
  // when the node's update log merges at the home. Defaulted so observers
  // that predate commutative regions ignore it.
  virtual void on_cc_update(int node, BlockId b, std::size_t off,
                            std::int64_t delta) {
    (void)node;
    (void)b;
    (void)off;
    (void)delta;
  }

 protected:
  ~AccessObserver() = default;
};

struct MemConfig {
  std::uint32_t block_size = 32;   // power of two, 8..page_size
  std::uint32_t page_size = 4096;  // power of two, multiple of block_size
};

class GlobalSpace {
 public:
  GlobalSpace(int nodes, const MemConfig& cfg);

  int nodes() const { return nodes_; }
  std::uint32_t block_size() const { return cfg_.block_size; }
  std::uint32_t page_size() const { return cfg_.page_size; }
  std::size_t size_bytes() const { return size_; }
  std::size_t num_blocks() const { return size_ / cfg_.block_size; }
  std::size_t num_pages() const { return size_ / cfg_.page_size; }

  BlockId block_of(Addr a) const { return a >> block_shift_; }
  PageId page_of(Addr a) const { return a >> page_shift_; }
  PageId page_of_block(BlockId b) const {
    return b >> (page_shift_ - block_shift_);
  }
  Addr block_base(BlockId b) const { return b << block_shift_; }

  int home_of_page(PageId p) const {
    return page_home_[static_cast<std::size_t>(p)];
  }
  int home_of_block(BlockId b) const { return home_of_page(page_of_block(b)); }
  int home_of_addr(Addr a) const { return home_of_page(page_of(a)); }

  // ---- Allocation ----------------------------------------------------------

  // Allocates `bytes` rounded up to whole pages; `home(i)` gives the home
  // node of the i-th page of the allocation. Returns the base address.
  Addr alloc(std::size_t bytes, const std::function<int(PageId)>& home);

  // Serializer for structural growth: alloc resizes every node's tag and
  // frame tables, which no concurrently-draining lane may observe. A
  // windowed engine installs its window-boundary gate here
  // (sim::Engine::boundary_gate); unset (the default), growth runs inline.
  void set_grow_gate(std::function<void(std::function<void()>)> gate) {
    grow_gate_ = std::move(gate);
  }

  // Allocates all pages on one node.
  Addr alloc_on_node(int node, std::size_t bytes);

  // Small-object bump allocation from a per-node arena (pages homed at the
  // node). Used for dynamically grown structures (quad-/oct-tree cells).
  Addr arena_alloc(int node, std::size_t bytes, std::size_t align = 8);

  // Arena mark/reset let an application rebuild a structure each iteration
  // at the *same* addresses (Barnes rebuilds its tree every step; address
  // stability is what makes the communication schedule repetitive).
  std::size_t arena_mark(int node) const;
  void arena_reset(int node, std::size_t mark);

  // ---- Commutative (reduction) regions -------------------------------------

  // Marks [base, base+bytes) as commutative: every block the range touches
  // may be updated with order-independent privatized int64 adds
  // (NodeCtx::cc_add). The marking is advisory for invalidation protocols —
  // only the ccached protocol, the tracer's merge attribution, and the
  // oracle's exemptions consult it. Set before the parallel section begins;
  // marks are never cleared.
  void set_commutative(Addr base, std::size_t bytes);
  bool is_commutative(BlockId b) const {
    const std::size_t i = static_cast<std::size_t>(b);
    return i < commutative_.size() && commutative_[i] != 0;
  }

  // ---- Access control ------------------------------------------------------

  // Tags are stored in page-granularity chunks materialized on first
  // set_tag: a node that never touches a page holds a null pointer for it,
  // which reads as Invalid — so per-node tag storage is O(pages touched),
  // not O(nodes × blocks), and a 1024-node space stays affordable.
  Tag tag(int node, BlockId b) const {
    const std::uint8_t* c =
        tags_[static_cast<std::size_t>(node)]
             [static_cast<std::size_t>(b >> tag_chunk_shift_)]
                 .get();
    if (c == nullptr) return Tag::Invalid;
    return static_cast<Tag>(c[b & tag_chunk_mask_]);
  }
  void set_tag(int node, BlockId b, Tag t) {
    std::uint8_t* c = tags_[static_cast<std::size_t>(node)]
                           [static_cast<std::size_t>(b >> tag_chunk_shift_)]
                               .get();
    if (c == nullptr) {
      if (t == Tag::Invalid) return;  // null chunk already reads as Invalid
      c = materialize_tags(node, static_cast<PageId>(b >> tag_chunk_shift_));
    }
    c[b & tag_chunk_mask_] = static_cast<std::uint8_t>(t);
  }

  // Host bytes held by materialized tag chunks and the per-node chunk
  // tables (telemetry for the scale benchmarks).
  std::size_t tag_bytes_resident() const;

  // Node-local bytes of block b if its page frame has been materialized,
  // else nullptr. Never allocates — safe for whole-space validation sweeps.
  const std::byte* peek_block(int node, BlockId b) const {
    const PageId p = page_of_block(b);
    const std::byte* f =
        frames_[static_cast<std::size_t>(node)][static_cast<std::size_t>(p)]
            .get();
    if (f == nullptr) return nullptr;
    return f + (block_base(b) & (cfg_.page_size - 1));
  }

  // Pointer to the node-local bytes of block b (frame allocated on demand).
  std::byte* block_data(int node, BlockId b) {
    const PageId p = page_of_block(b);
    std::byte* f =
        frames_[static_cast<std::size_t>(node)][static_cast<std::size_t>(p)]
            .get();
    if (f == nullptr) f = materialize_frame(node, p);
    return f + (block_base(b) & (cfg_.page_size - 1));
  }

  // ---- Application access path (runs on the node's processor thread) ------

  void set_fault_handler(FaultHandler* h) { fault_ = h; }

  // Attaches the invariant oracle (or detaches with nullptr). Observation is
  // pure: the observer never charges time or schedules events, so simulated
  // results are bit-identical with or without it.
  void set_access_observer(AccessObserver* o) { observer_ = o; }
  AccessObserver* access_observer() const { return observer_; }

  // Permitted single-block accesses complete inline; faults and
  // block-spanning accesses take the out-of-line slow path.
  void read(int node, Addr a, void* out, std::size_t n) {
    const std::size_t off =
        static_cast<std::size_t>(a) & (cfg_.block_size - 1);
    const BlockId b = block_of(a);
    if (off + n <= cfg_.block_size && tag(node, b) != Tag::Invalid)
        [[likely]] {
      std::memcpy(out, block_data(node, b) + off, n);
      if (observer_ != nullptr) [[unlikely]]
        observer_->on_app_read(node, b, off, out, n);
      return;
    }
    read_slow(node, a, out, n);
  }

  void write(int node, Addr a, const void* in, std::size_t n) {
    const std::size_t off =
        static_cast<std::size_t>(a) & (cfg_.block_size - 1);
    const BlockId b = block_of(a);
    if (off + n <= cfg_.block_size && tag(node, b) == Tag::ReadWrite)
        [[likely]] {
      std::memcpy(block_data(node, b) + off, in, n);
      if (observer_ != nullptr) [[unlikely]]
        observer_->on_app_write(node, b, off, in, n);
      return;
    }
    write_slow(node, a, in, n);
  }

  // Read-modify-write executed without yielding between the read and the
  // write once ReadWrite permission is held (the primitive shared locks are
  // built on). `fn` mutates the bytes in place.
  void rmw(int node, Addr a, std::size_t n,
           const std::function<void(void*)>& fn);

  template <typename T>
  T read_value(int node, Addr a) {
    T v;
    read(node, a, &v, sizeof(T));
    return v;
  }
  template <typename T>
  void write_value(int node, Addr a, const T& v) {
    write(node, a, &v, sizeof(T));
  }

 private:
  Addr alloc_now(std::size_t bytes, const std::function<int(PageId)>& home);
  void grow_to(std::size_t new_size);
  std::byte* materialize_frame(int node, PageId p);
  std::uint8_t* materialize_tags(int node, PageId p);
  void read_slow(int node, Addr a, void* out, std::size_t n);
  void write_slow(int node, Addr a, const void* in, std::size_t n);
  // Vectors to the fault handler until the tag permits the access.
  void resolve_fault(int node, BlockId b, bool is_write);

  const int nodes_;
  const MemConfig cfg_;
  int block_shift_ = 0;
  int page_shift_ = 0;
  int tag_chunk_shift_ = 0;  // page_shift_ - block_shift_ (blocks per page)
  BlockId tag_chunk_mask_ = 0;
  std::size_t size_ = 0;

  std::vector<int> page_home_;
  // tags_[node][page] -> per-page tag chunk (null = all Invalid);
  // frames_[node][page] allocated lazily.
  std::vector<std::vector<std::unique_ptr<std::uint8_t[]>>> tags_;
  std::vector<std::vector<std::unique_ptr<std::byte[]>>> frames_;

  struct Arena {
    Addr cur = 0;
    Addr end = 0;
    std::vector<Addr> chunks;  // page-aligned chunks in allocation order
  };
  std::vector<Arena> arenas_;

  // commutative_[block] != 0 — block belongs to a set_commutative region.
  // A plain byte vector (one per block in the space): regions are rare and
  // contiguous, and is_commutative sits on protocol hot paths.
  std::vector<std::uint8_t> commutative_;

  FaultHandler* fault_ = nullptr;
  AccessObserver* observer_ = nullptr;
  std::function<void(std::function<void()>)> grow_gate_;
};

}  // namespace presto::mem
