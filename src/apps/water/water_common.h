// Shared pieces of the two Water implementations.
#pragma once

#include <cmath>
#include <cstddef>

#include "util/rng.h"

namespace presto::apps::water_detail {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};
static_assert(sizeof(Vec3) == 24);

struct Box {
  double length = 0;   // cube edge
  double cutoff2 = 0;  // (length/2)^2, the paper's spherical cutoff
};

inline Box make_box(std::size_t n, double density) {
  Box b;
  b.length = std::cbrt(static_cast<double>(n) / density);
  const double rc = b.length / 2.0;
  b.cutoff2 = rc * rc;
  return b;
}

// Minimum-image displacement component.
inline double min_image(double d, double length) {
  if (d > length / 2) return d - length;
  if (d < -length / 2) return d + length;
  return d;
}

// Lennard-Jones force and potential at squared distance r2 (< cutoff2).
// Returns the scalar force factor f such that F = f * dr, and adds the pair
// potential into `pe`.
inline double lj_pair(double r2, double& pe) {
  const double inv2 = 1.0 / r2;
  const double inv6 = inv2 * inv2 * inv2;
  pe += 4.0 * inv6 * (inv6 - 1.0);
  return 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
}

// Deterministic initial state: simple-cubic lattice with seeded thermal
// velocities (zero net momentum is not enforced; energies are still a good
// cross-version fingerprint because every version starts identically).
inline Vec3 lattice_position(std::size_t i, std::size_t n, double length) {
  std::size_t side = 1;
  while (side * side * side < n) ++side;
  const double a = length / static_cast<double>(side);
  const std::size_t x = i % side, y = (i / side) % side, z = i / (side * side);
  return Vec3{(static_cast<double>(x) + 0.5) * a,
              (static_cast<double>(y) + 0.5) * a,
              (static_cast<double>(z) + 0.5) * a};
}

inline Vec3 thermal_velocity(std::size_t i, std::uint64_t seed) {
  util::Rng rng(seed ^ (0xAC1DULL * (i + 7)));
  return Vec3{0.1 * rng.next_normal(), 0.1 * rng.next_normal(),
              0.1 * rng.next_normal()};
}

}  // namespace presto::apps::water_detail
