#include "apps/water/water.h"

#include <vector>

#include "apps/water/water_common.h"
#include "runtime/aggregate.h"
#include "runtime/system.h"

namespace presto::apps {
namespace {

using runtime::Aggregate1D;
using runtime::NodeCtx;
using namespace water_detail;

constexpr int kPhaseForces = 0;
constexpr int kPhaseAdvance = 1;

}  // namespace

AppResult run_water(const WaterParams& params,
                    const runtime::MachineConfig& machine,
                    runtime::ProtocolKind kind, bool directives) {
  runtime::System sys(machine, kind);
  const std::size_t n = params.molecules;
  const Box box = make_box(n, params.density);

  // Positions are the only shared state; velocities and forces are private
  // (forces are combined with the control-network vector reduction).
  auto pos = Aggregate1D<Vec3>::create(sys.space(), n);
  double checksum = 0.0;

  sys.run([&](NodeCtx& c) {
    const auto [lo, hi] = pos.range(c.id());
    std::vector<Vec3> vel(hi - lo);
    std::vector<double> force(3 * n, 0.0);  // private accumulation, all n

    for (std::size_t i = lo; i < hi; ++i) {
      pos.set(c, i, lattice_position(i, n, box.length));
      vel[i - lo] = thermal_velocity(i, c.machine().seed);
    }
    c.barrier();

    double energy_trace = 0.0;
    for (int step = 0; step < params.steps; ++step) {
      // ---- Interaction phase: static repetitive producer-consumer ---------
      if (directives) c.phase(kPhaseForces);
      std::fill(force.begin(), force.end(), 0.0);
      double pe = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const Vec3 pi = pos.get(c, i);
        for (std::size_t k = 1; k <= n / 2; ++k) {
          const std::size_t j = (i + k) % n;
          if (2 * k == n && i > j) continue;  // antipodal pair counted once
          const Vec3 pj = pos.get(c, j);
          const double dx = min_image(pi.x - pj.x, box.length);
          const double dy = min_image(pi.y - pj.y, box.length);
          const double dz = min_image(pi.z - pj.z, box.length);
          const double r2 = dx * dx + dy * dy + dz * dz;
          c.charge_flops(11);
          if (r2 >= box.cutoff2 || r2 == 0.0) continue;
          const double f = lj_pair(r2, pe);
          c.charge_flops(20);
          force[3 * i + 0] += f * dx;
          force[3 * i + 1] += f * dy;
          force[3 * i + 2] += f * dz;
          force[3 * j + 0] -= f * dx;
          force[3 * j + 1] -= f * dy;
          force[3 * j + 2] -= f * dz;
        }
      }
      // C** reduction support combines the private force arrays.
      c.reduce_vec_sum(force);

      // ---- Advance phase: owner writes invalidate cached readers -----------
      if (directives) c.phase(kPhaseAdvance);
      double ke = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        Vec3 p = pos.get(c, i);
        Vec3& v = vel[i - lo];
        v.x += force[3 * i + 0] * params.dt;
        v.y += force[3 * i + 1] * params.dt;
        v.z += force[3 * i + 2] * params.dt;
        auto wrap = [&](double x) {
          if (x < 0) return x + box.length;
          if (x >= box.length) return x - box.length;
          return x;
        };
        p.x = wrap(p.x + v.x * params.dt);
        p.y = wrap(p.y + v.y * params.dt);
        p.z = wrap(p.z + v.z * params.dt);
        c.charge_flops(15);
        pos.set(c, i, p);
        ke += 0.5 * (v.x * v.x + v.y * v.y + v.z * v.z);
      }
      const double total_ke = c.reduce_sum(ke);
      const double total_pe = c.reduce_sum(pe);
      energy_trace += total_ke + total_pe;
      c.barrier();
    }

    if (c.id() == 0) checksum = energy_trace;
  });

  AppResult result;
  result.report = sys.report("");
  result.checksum = checksum;
  return result;
}

}  // namespace presto::apps
