#include "apps/water/splash_water.h"

#include <algorithm>
#include <vector>

#include "apps/water/water_common.h"
#include "runtime/aggregate.h"
#include "runtime/lock.h"
#include "runtime/system.h"

namespace presto::apps {
namespace {

using runtime::Aggregate1D;
using runtime::NodeCtx;
using runtime::SharedLock;
using namespace water_detail;

constexpr std::size_t kMolsPerLock = 16;

}  // namespace

AppResult run_water_splash(const WaterParams& params,
                           const runtime::MachineConfig& machine) {
  runtime::System sys(machine, runtime::ProtocolKind::kStache);
  const std::size_t n = params.molecules;
  const Box box = make_box(n, params.density);

  auto pos = Aggregate1D<Vec3>::create(sys.space(), n);
  auto force = Aggregate1D<Vec3>::create(sys.space(), n);
  const std::size_t nlocks = (n + kMolsPerLock - 1) / kMolsPerLock;
  std::vector<SharedLock> locks;
  for (std::size_t l = 0; l < nlocks; ++l)
    locks.push_back(SharedLock::create(
        sys.space(), static_cast<int>(l % static_cast<std::size_t>(machine.nodes))));

  double checksum = 0.0;

  sys.run([&](NodeCtx& c) {
    const auto [lo, hi] = pos.range(c.id());
    std::vector<Vec3> vel(hi - lo);

    for (std::size_t i = lo; i < hi; ++i) {
      pos.set(c, i, lattice_position(i, n, box.length));
      force.set(c, i, Vec3{});
      vel[i - lo] = thermal_velocity(i, c.machine().seed);
    }
    c.barrier();

    double energy_trace = 0.0;
    for (int step = 0; step < params.steps; ++step) {
      double pe = 0.0;
      // As in SPLASH-2 Water: pair contributions accumulate into a private
      // per-processor array, then flush into the *shared* force array under
      // per-molecule-group locks — the lock and force-block migration
      // traffic the data-parallel C** version avoids via reductions.
      std::vector<Vec3> partial(n);
      for (std::size_t i = lo; i < hi; ++i) {
        const Vec3 pi = pos.get(c, i);
        for (std::size_t k = 1; k <= n / 2; ++k) {
          const std::size_t j = (i + k) % n;
          if (2 * k == n && i > j) continue;
          const Vec3 pj = pos.get(c, j);
          const double dx = min_image(pi.x - pj.x, box.length);
          const double dy = min_image(pi.y - pj.y, box.length);
          const double dz = min_image(pi.z - pj.z, box.length);
          const double r2 = dx * dx + dy * dy + dz * dz;
          c.charge_flops(11);
          if (r2 >= box.cutoff2 || r2 == 0.0) continue;
          const double f = lj_pair(r2, pe);
          c.charge_flops(20);
          partial[i].x += f * dx;
          partial[i].y += f * dy;
          partial[i].z += f * dz;
          partial[j].x -= f * dx;
          partial[j].y -= f * dy;
          partial[j].z -= f * dz;
        }
      }
      for (std::size_t g = 0; g < nlocks; ++g) {
        const std::size_t glo = g * kMolsPerLock;
        const std::size_t ghi = std::min(n, glo + kMolsPerLock);
        bool any = false;
        for (std::size_t j = glo; j < ghi && !any; ++j)
          any = partial[j].x != 0 || partial[j].y != 0 || partial[j].z != 0;
        if (!any) continue;
        locks[g].acquire(c);
        for (std::size_t j = glo; j < ghi; ++j) {
          const Vec3& pf = partial[j];
          if (pf.x == 0 && pf.y == 0 && pf.z == 0) continue;
          c.rmw<double>(force.addr(j) + 0, [&](double& v) { v += pf.x; });
          c.rmw<double>(force.addr(j) + 8, [&](double& v) { v += pf.y; });
          c.rmw<double>(force.addr(j) + 16, [&](double& v) { v += pf.z; });
        }
        locks[g].release(c);
      }
      c.barrier();

      // Advance from the shared force array, then reset it for next step.
      double ke = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const Vec3 f = force.get(c, i);
        Vec3 p = pos.get(c, i);
        Vec3& v = vel[i - lo];
        v.x += f.x * params.dt;
        v.y += f.y * params.dt;
        v.z += f.z * params.dt;
        auto wrap = [&](double x) {
          if (x < 0) return x + box.length;
          if (x >= box.length) return x - box.length;
          return x;
        };
        p.x = wrap(p.x + v.x * params.dt);
        p.y = wrap(p.y + v.y * params.dt);
        p.z = wrap(p.z + v.z * params.dt);
        c.charge_flops(15);
        pos.set(c, i, p);
        force.set(c, i, Vec3{});
        ke += 0.5 * (v.x * v.x + v.y * v.y + v.z * v.z);
      }
      const double total_ke = c.reduce_sum(ke);
      const double total_pe = c.reduce_sum(pe);
      energy_trace += total_ke + total_pe;
      c.barrier();
    }

    if (c.id() == 0) checksum = energy_trace;
  });

  AppResult result;
  result.report = sys.report("");
  result.checksum = checksum;
  return result;
}

}  // namespace presto::apps
