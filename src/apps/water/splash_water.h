// Splash-style Water (paper §5.3's third bar).
//
// Same physics as run_water, but structured the way the SPLASH-2 code is
// written for transparent shared memory: forces live in a *shared* array and
// both sides of every pair interaction are accumulated in place, guarded by
// per-molecule-group locks. No custom protocols, no message-passing
// primitives, no compiler directives — it runs on plain Stache at whatever
// cache block size suits it best.
#pragma once

#include "apps/common/versions.h"
#include "apps/water/water.h"

namespace presto::apps {

AppResult run_water_splash(const WaterParams& params,
                           const runtime::MachineConfig& machine);

}  // namespace presto::apps
