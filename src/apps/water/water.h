// Water: molecular dynamics over a box of molecules (paper §5.3).
//
// Interactions are computed between all pairs within a spherical cutoff of
// half the box length; in the data-parallel formulation each molecule
// computes interactions with the n/2 molecules following it in the ordered
// data set, accumulating forces privately and combining them with the
// control network's vector reduction (C**'s language-level reduction
// support). The communication the predictive protocol optimizes is the
// *static repetitive producer-consumer* pattern on positions: a position
// written by its owner in one iteration is read by n/2 other molecules in
// the next.
//
// The Splash-style variant (splash_water.h) accumulates into shared force
// arrays guarded by locks instead, as the SPLASH-2 code does on transparent
// shared memory.
#pragma once

#include "apps/common/versions.h"

namespace presto::apps {

struct WaterParams {
  std::size_t molecules = 512;  // paper: 512 molecules
  int steps = 20;               // paper: 20 time steps
  double dt = 0.002;
  double density = 0.8;         // reduced LJ units
};

AppResult run_water(const WaterParams& params,
                    const runtime::MachineConfig& machine,
                    runtime::ProtocolKind kind, bool directives);

}  // namespace presto::apps
