#include "apps/ocean/ocean.h"

#include "proto/writeupdate.h"
#include "runtime/aggregate.h"
#include "runtime/system.h"
#include "util/check.h"

namespace presto::apps {
namespace {

using runtime::Aggregate2D;
using runtime::NodeCtx;

constexpr int kPhaseRed = 0;
constexpr int kPhaseBlack = 1;

// Red/black planes: point (i, j) is red when (i + j) is even. Row i of the
// red plane holds columns j = 2k + (i & 1); the black plane holds the rest.
// A 5-point stencil on a checkerboard reads only the opposite colour, so
// each phase writes one plane and reads the other — no block ever mixes a
// same-phase read and write.
struct Grid {
  Aggregate2D<double> red;
  Aggregate2D<double> black;
  std::size_t n = 0;
  double hot = 0.0;

  bool is_red(std::size_t i, std::size_t j) const { return ((i + j) & 1) == 0; }
  // Boundary potential outside the grid: a hot top edge drives a front that
  // relaxation propagates downward.
  double boundary(std::ptrdiff_t i, std::ptrdiff_t) const {
    return i < 0 ? hot : 0.0;
  }
};

double point_value(NodeCtx& c, const Grid& g, std::ptrdiff_t i,
                   std::ptrdiff_t j) {
  if (i < 0 || j < 0 || i >= static_cast<std::ptrdiff_t>(g.n) ||
      j >= static_cast<std::ptrdiff_t>(g.n))
    return g.boundary(i, j);
  const auto ui = static_cast<std::size_t>(i);
  const auto uj = static_cast<std::size_t>(j);
  const auto& plane = g.is_red(ui, uj) ? g.red : g.black;
  const std::size_t jbase = g.is_red(ui, uj) ? (ui & 1) : 1 - (ui & 1);
  return plane.get(c, ui, (uj - jbase) / 2);
}

// Sweeps one colour plane over the rows this node owns, reading the four
// opposite-colour neighbours (boundary rows of adjacent nodes are the only
// remote accesses).
void sweep(NodeCtx& c, const Grid& g, bool red_phase) {
  const auto& plane = red_phase ? g.red : g.black;
  const auto [lo, hi] = plane.row_range(c.id());
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t jbase = red_phase ? (i & 1) : 1 - (i & 1);
    for (std::size_t k = 0; k < g.n / 2; ++k) {
      const std::size_t j = 2 * k + jbase;
      const auto ii = static_cast<std::ptrdiff_t>(i);
      const auto jj = static_cast<std::ptrdiff_t>(j);
      const double up = point_value(c, g, ii - 1, jj);
      const double down = point_value(c, g, ii + 1, jj);
      const double left = point_value(c, g, ii, jj - 1);
      const double right = point_value(c, g, ii, jj + 1);
      c.charge_flops(5);
      plane.set(c, i, k, 0.25 * (up + down + left + right));
    }
  }
}

}  // namespace

AppResult run_ocean(const OceanParams& params,
                    const runtime::MachineConfig& machine,
                    runtime::ProtocolKind kind, bool directives) {
  PRESTO_CHECK(params.n >= 4 && params.n % 2 == 0,
               "grid size must be even and >= 4");
  runtime::System sys(machine, kind);

  Grid grid;
  grid.n = params.n;
  grid.hot = params.hot;
  grid.red = Aggregate2D<double>::create(sys.space(), params.n, params.n / 2);
  grid.black = Aggregate2D<double>::create(sys.space(), params.n, params.n / 2);

  double checksum = 0.0;

  sys.run([&](NodeCtx& c) {
    // Hand-optimized SPMD discipline under write-update: publish the freshly
    // written plane to its recorded readers before the phase barrier.
    auto* wu = dynamic_cast<proto::WriteUpdateProtocol*>(&c.protocol());
    for (const bool red_phase : {true, false}) {
      const auto& plane = red_phase ? grid.red : grid.black;
      const auto [lo, hi] = plane.row_range(c.id());
      for (std::size_t i = lo; i < hi; ++i)
        for (std::size_t k = 0; k < grid.n / 2; ++k)
          plane.set(c, i, k, 0.0);
    }
    c.barrier();

    for (int it = 0; it < params.iters; ++it) {
      if (params.flush_every > 0 && it > 0 && it % params.flush_every == 0) {
        c.flush_phase(kPhaseRed);
        c.flush_phase(kPhaseBlack);
      }
      if (directives) c.phase(kPhaseRed);
      sweep(c, grid, /*red_phase=*/true);
      if (wu != nullptr) wu->wu_publish(c.id(), 0, c.space().size_bytes());
      c.barrier();
      if (directives) c.phase(kPhaseBlack);
      sweep(c, grid, /*red_phase=*/false);
      if (wu != nullptr) wu->wu_publish(c.id(), 0, c.space().size_bytes());
      c.barrier();
    }

    double local = 0.0;
    const auto [lo, hi] = grid.red.row_range(c.id());
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t k = 0; k < grid.n / 2; ++k)
        local += grid.red.get(c, i, k) + grid.black.get(c, i, k);
    const double total = c.reduce_sum(local);
    if (c.id() == 0) checksum = total;
  });

  AppResult result;
  result.report = sys.report("");
  result.checksum = checksum;
  return result;
}

}  // namespace presto::apps
