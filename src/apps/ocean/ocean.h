// Ocean: regular red-black stencil relaxation on a square grid — the
// statically analyzable counterpart to adaptive (§5.1). Each sweep averages a
// point's four neighbours; red and black points live in separate planes with
// blocked (row-block, page-padded) partitioning, so every block has a single
// writer and the only communication is boundary-row reads between
// neighbouring nodes. The sharing pattern is identical every iteration —
// the best case for the predictive protocol's learned schedules, and a
// workload with no commutative regions at all (so ccached must match Stache
// bit-for-bit on it).
#pragma once

#include "apps/common/versions.h"

namespace presto::apps {

struct OceanParams {
  std::size_t n = 64;   // grid is n x n; must be even and >= 4
  int iters = 10;       // red+black sweeps
  double hot = 100.0;   // boundary potential along the top edge
  int flush_every = 0;  // rebuild predictive schedules every k iterations
                        // (0 = never)
};

AppResult run_ocean(const OceanParams& params,
                    const runtime::MachineConfig& machine,
                    runtime::ProtocolKind kind, bool directives);

}  // namespace presto::apps
