// Shared harness types for the benchmark applications.
//
// Every application runs in several "versions" (paper §5): unoptimized C**
// (Stache), optimized C** (predictive protocol + compiler directives), and —
// per application — a hand-optimized SPMD baseline or a Splash-style shared
// memory variant. A version is (protocol kind, directives on/off, machine
// config); results carry a numeric checksum so tests can assert that every
// version computes identical (or physically equivalent) answers.
#pragma once

#include <string>

#include "runtime/machine.h"
#include "stats/report.h"

namespace presto::apps {

struct AppResult {
  stats::Report report;
  double checksum = 0.0;
};

// Convenience: builds the label used in the paper's figures, e.g.
// "C** opt (32)" — numbers in parentheses are cache block sizes.
std::string version_label(const std::string& base, std::uint32_t block_size);

}  // namespace presto::apps
