#include "apps/common/versions.h"

namespace presto::apps {

std::string version_label(const std::string& base, std::uint32_t block_size) {
  return base + " (" + std::to_string(block_size) + ")";
}

}  // namespace presto::apps
