// Barnes: gravitational N-body simulation with a Barnes–Hut oct-tree
// (paper §5.2).
//
// Bodies are block-distributed by index; positions are generated along a
// Morton (Z-order) curve with jitter, so index locality implies spatial
// locality — the spatial locality that lets the unoptimized version exploit
// 1024-byte cache blocks in the paper's Figure 6. Each step:
//
//   1. tree build   — every node rebuilds an oct-tree over its own bodies
//                     in its arena (same addresses every step, so the
//                     communication schedule stays valid); subtree roots are
//                     published in a shared array. Writes to cells that
//                     remote nodes cached last step fault locally and are
//                     pre-invalidated by the predictive protocol.
//   2. center of mass — upward pass over the node's own subtree. Home
//                     accesses only: the compiler hoists this loop out of
//                     the schedule (Fig. 4), so no directive is placed.
//   3. force        — each body traverses all subtrees with the opening
//                     criterion, reading remote cells: unstructured,
//                     repetitive communication (the presend target).
//   4. advance      — leapfrog update of own bodies.
//
// Versions: C** on Stache (unoptimized), C** + directives on the predictive
// protocol (optimized), and a hand-optimized SPMD variant on the
// write-update protocol that explicitly publishes its subtree after the
// build (the baseline of Falsafi et al. [5]).
#pragma once

#include "apps/common/versions.h"

namespace presto::apps {

struct BarnesParams {
  std::size_t bodies = 16384;  // paper: 16384 bodies
  int steps = 3;               // paper: 3 iterations
  double theta = 0.8;          // opening criterion
  double dt = 0.025;
  double eps = 0.05;           // gravitational softening
};

AppResult run_barnes(const BarnesParams& params,
                     const runtime::MachineConfig& machine,
                     runtime::ProtocolKind kind, bool directives);

}  // namespace presto::apps
