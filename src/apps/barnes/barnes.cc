#include "apps/barnes/barnes.h"

#include <cmath>
#include <vector>

#include "runtime/aggregate.h"
#include "runtime/system.h"
#include "util/check.h"
#include "util/rng.h"

namespace presto::apps {
namespace {

using runtime::Aggregate1D;
using runtime::NodeCtx;

struct Vec3 {
  double x = 0, y = 0, z = 0;
};
static_assert(sizeof(Vec3) == 24);

constexpr double kBox = 2.0;  // simulation cube [0, kBox)^3
constexpr int kLeafCap = 4;
constexpr int kMaxDepth = 24;

// Oct-tree cell. The header (read on every visit) is laid out first so a
// traversal that rejects a distant cell touches only its leading blocks;
// child pointers and leaf body copies follow and are read only when the
// cell is opened.
struct CellHeader {
  Vec3 com;
  double mass = 0;
  Vec3 center;
  double half = 0;          // half-width of the cube this cell covers
  std::int32_t nbodies = 0;  // -1 = internal node, >= 0 = leaf count
  std::int32_t pad = 0;
};
static_assert(sizeof(CellHeader) == 72);

struct CellChildren {
  mem::Addr child[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};
struct CellBodies {
  Vec3 pos[kLeafCap];
  double mass[kLeafCap] = {0, 0, 0, 0};
};
struct Cell {
  CellHeader h;
  CellChildren c;
  CellBodies b;
};
constexpr mem::Addr kChildrenOff = sizeof(CellHeader);
constexpr mem::Addr kBodiesOff = sizeof(CellHeader) + sizeof(CellChildren);

constexpr int kPhaseBuild = 0;
constexpr int kPhaseForce = 1;
constexpr int kPhaseAdvance = 2;

mem::Addr alloc_cell(NodeCtx& c, const Vec3& center, double half) {
  const mem::Addr a = c.galloc(sizeof(Cell), 8);
  Cell cell;
  cell.h.center = center;
  cell.h.half = half;
  cell.h.nbodies = 0;
  c.write<Cell>(a, cell);
  return a;
}

int octant(const Vec3& center, const Vec3& p) {
  return (p.x >= center.x ? 1 : 0) | (p.y >= center.y ? 2 : 0) |
         (p.z >= center.z ? 4 : 0);
}

Vec3 child_center(const Vec3& center, double half, int q) {
  const double h = half * 0.5;
  return Vec3{center.x + ((q & 1) ? h : -h), center.y + ((q & 2) ? h : -h),
              center.z + ((q & 4) ? h : -h)};
}

// Inserts a body into the subtree rooted at `a`. All accesses are homed at
// the calling node (cells are arena-allocated locally; bodies are copies).
void insert_body(NodeCtx& c, mem::Addr a, const Vec3& p, double m,
                 int depth) {
  CellHeader h = c.read<CellHeader>(a);
  if (h.nbodies >= 0) {  // leaf
    if (h.nbodies < kLeafCap || depth >= kMaxDepth) {
      PRESTO_CHECK(h.nbodies < kLeafCap, "coincident bodies overflow leaf");
      CellBodies b = c.read<CellBodies>(a + kBodiesOff);
      b.pos[h.nbodies] = p;
      b.mass[h.nbodies] = m;
      ++h.nbodies;
      c.write<CellBodies>(a + kBodiesOff, b);
      c.write<CellHeader>(a, h);
      return;
    }
    // Split: convert to internal and reinsert the resident bodies.
    CellBodies b = c.read<CellBodies>(a + kBodiesOff);
    const int resident = h.nbodies;
    h.nbodies = -1;
    c.write<CellHeader>(a, h);
    for (int k = 0; k < resident; ++k)
      insert_body(c, a, b.pos[k], b.mass[k], depth);
    insert_body(c, a, p, m, depth);
    return;
  }
  // Internal: descend into (or create) the right octant.
  const int q = octant(h.center, p);
  CellChildren ch = c.read<CellChildren>(a + kChildrenOff);
  if (ch.child[q] == 0) {
    const mem::Addr sub =
        alloc_cell(c, child_center(h.center, h.half, q), h.half * 0.5);
    CellHeader sh = c.read<CellHeader>(sub);
    CellBodies sb;
    sb.pos[0] = p;
    sb.mass[0] = m;
    sh.nbodies = 1;
    c.write<CellBodies>(sub + kBodiesOff, sb);
    c.write<CellHeader>(sub, sh);
    ch.child[q] = sub;
    c.write<CellChildren>(a + kChildrenOff, ch);
    return;
  }
  c.charge_ops(6);
  insert_body(c, ch.child[q], p, m, depth + 1);
}

// Upward center-of-mass pass (home accesses only — the hoisted loop).
void center_of_mass(NodeCtx& c, mem::Addr a) {
  CellHeader h = c.read<CellHeader>(a);
  Vec3 com;
  double mass = 0;
  if (h.nbodies >= 0) {
    const CellBodies b = c.read<CellBodies>(a + kBodiesOff);
    for (int k = 0; k < h.nbodies; ++k) {
      com.x += b.pos[k].x * b.mass[k];
      com.y += b.pos[k].y * b.mass[k];
      com.z += b.pos[k].z * b.mass[k];
      mass += b.mass[k];
    }
    c.charge_flops(7 * h.nbodies);
  } else {
    const CellChildren ch = c.read<CellChildren>(a + kChildrenOff);
    for (const mem::Addr sub : ch.child) {
      if (sub == 0) continue;
      center_of_mass(c, sub);
      const CellHeader sh = c.read<CellHeader>(sub);
      com.x += sh.com.x * sh.mass;
      com.y += sh.com.y * sh.mass;
      com.z += sh.com.z * sh.mass;
      mass += sh.mass;
      c.charge_flops(7);
    }
  }
  if (mass > 0) {
    com.x /= mass;
    com.y /= mass;
    com.z /= mass;
  }
  h.com = com;
  h.mass = mass;
  c.write<CellHeader>(a, h);
}

// Gravitational acceleration on `p` from the subtree at `a` (remote,
// unstructured reads — the presend target).
Vec3 traverse(NodeCtx& c, mem::Addr a, const Vec3& p, double theta2,
              double eps2) {
  const CellHeader h = c.read<CellHeader>(a);
  const double dx = h.com.x - p.x, dy = h.com.y - p.y, dz = h.com.z - p.z;
  const double d2 = dx * dx + dy * dy + dz * dz;
  c.charge_flops(10);
  const double width = 2.0 * h.half;
  Vec3 acc;
  if (h.nbodies < 0 && width * width >= theta2 * d2) {
    // Too close: open the cell.
    const CellChildren ch = c.read<CellChildren>(a + kChildrenOff);
    for (const mem::Addr sub : ch.child) {
      if (sub == 0) continue;
      const Vec3 sa = traverse(c, sub, p, theta2, eps2);
      acc.x += sa.x;
      acc.y += sa.y;
      acc.z += sa.z;
    }
    return acc;
  }
  if (h.nbodies >= 0) {
    // Leaf: direct interactions with resident bodies.
    const CellBodies b = c.read<CellBodies>(a + kBodiesOff);
    for (int k = 0; k < h.nbodies; ++k) {
      const double bx = b.pos[k].x - p.x, by = b.pos[k].y - p.y,
                   bz = b.pos[k].z - p.z;
      const double r2 = bx * bx + by * by + bz * bz + eps2;
      if (r2 <= eps2) continue;  // self
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      acc.x += b.mass[k] * bx * inv;
      acc.y += b.mass[k] * by * inv;
      acc.z += b.mass[k] * bz * inv;
      c.charge_flops(18);
    }
    return acc;
  }
  // Far enough: use the aggregate center of mass.
  const double r2 = d2 + eps2;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  acc.x = h.mass * dx * inv;
  acc.y = h.mass * dy * inv;
  acc.z = h.mass * dz * inv;
  c.charge_flops(12);
  return acc;
}

// Deterministic, spatially coherent initial condition: body i sits near the
// i-th point of a Morton curve through a 32^3 lattice, with seeded jitter.
Vec3 initial_position(std::size_t i, std::uint64_t seed) {
  std::uint32_t x = 0, y = 0, z = 0;
  for (int b = 0; b < 10; ++b) {
    x |= static_cast<std::uint32_t>((i >> (3 * b + 0)) & 1) << b;
    y |= static_cast<std::uint32_t>((i >> (3 * b + 1)) & 1) << b;
    z |= static_cast<std::uint32_t>((i >> (3 * b + 2)) & 1) << b;
  }
  util::Rng rng(seed ^ (0xB0D1E5ULL * (i + 1)));
  const double cell = kBox / 32.0;
  auto jitter = [&] { return (rng.next_double() - 0.5) * 0.8 * cell; };
  return Vec3{(x % 32 + 0.5) * cell + jitter(), (y % 32 + 0.5) * cell + jitter(),
              (z % 32 + 0.5) * cell + jitter()};
}

Vec3 clamp_to_box(Vec3 p) {
  auto clamp = [](double v) {
    if (v < 0.0) return 0.0;
    if (v >= kBox) return kBox * (1.0 - 1e-12);
    return v;
  };
  return Vec3{clamp(p.x), clamp(p.y), clamp(p.z)};
}

}  // namespace

AppResult run_barnes(const BarnesParams& params,
                     const runtime::MachineConfig& machine,
                     runtime::ProtocolKind kind, bool directives) {
  runtime::System sys(machine, kind);
  const std::size_t n = params.bodies;

  auto pos = Aggregate1D<Vec3>::create(sys.space(), n);
  auto roots = Aggregate1D<mem::Addr>::create(
      sys.space(), static_cast<std::size_t>(machine.nodes));

  const double theta2 = params.theta * params.theta;
  const double eps2 = params.eps * params.eps;
  const double body_mass = 1.0 / static_cast<double>(n);
  double checksum = 0.0;

  sys.run([&](NodeCtx& c) {
    auto* wu = dynamic_cast<proto::WriteUpdateProtocol*>(&c.protocol());
    const auto [lo, hi] = pos.range(c.id());
    const std::size_t own = hi - lo;

    std::vector<Vec3> vel(own), acc(own);
    for (std::size_t i = lo; i < hi; ++i)
      pos.set(c, i, initial_position(i, c.machine().seed));
    c.barrier();

    const std::size_t arena0 = c.arena_mark();
    for (int step = 0; step < params.steps; ++step) {
      // ---- Phase 1: tree build (+ center of mass, hoisted) ----------------
      if (directives) c.phase(kPhaseBuild);
      c.arena_reset(arena0);
      const mem::Addr root = c.galloc(sizeof(Cell), 8);
      {
        Cell rc;
        rc.h.center = Vec3{kBox / 2, kBox / 2, kBox / 2};
        rc.h.half = kBox / 2;
        rc.h.nbodies = 0;
        c.write<Cell>(root, rc);
      }
      for (std::size_t i = lo; i < hi; ++i)
        insert_body(c, root, clamp_to_box(pos.get(c, i)), body_mass, 0);
      center_of_mass(c, root);
      roots.set(c, static_cast<std::size_t>(c.id()), root);
      if (wu != nullptr) {
        // Hand-optimized SPMD: publish the rebuilt subtree (and root slot)
        // to every consumer recorded by the update protocol.
        wu->wu_publish(c.id(), 0, c.space().size_bytes());
      }
      c.barrier();

      // ---- Phase 3: force computation -------------------------------------
      if (directives) c.phase(kPhaseForce);
      for (std::size_t i = lo; i < hi; ++i) {
        const Vec3 p = pos.get(c, i);
        Vec3 a;
        for (int r = 0; r < c.nodes(); ++r) {
          const mem::Addr ra =
              roots.get(c, static_cast<std::size_t>(r));
          const Vec3 ra_acc = traverse(c, ra, p, theta2, eps2);
          a.x += ra_acc.x;
          a.y += ra_acc.y;
          a.z += ra_acc.z;
        }
        acc[i - lo] = a;
      }
      c.barrier();

      // ---- Phase 4: advance ------------------------------------------------
      if (directives) c.phase(kPhaseAdvance);
      for (std::size_t i = lo; i < hi; ++i) {
        Vec3 p = pos.get(c, i);
        Vec3& v = vel[i - lo];
        v.x += acc[i - lo].x * params.dt;
        v.y += acc[i - lo].y * params.dt;
        v.z += acc[i - lo].z * params.dt;
        p.x += v.x * params.dt;
        p.y += v.y * params.dt;
        p.z += v.z * params.dt;
        c.charge_flops(12);
        pos.set(c, i, clamp_to_box(p));
      }
      c.barrier();
    }

    // Checksum: kinetic energy plus a position fingerprint.
    double local = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const Vec3& v = vel[i - lo];
      const Vec3 p = pos.get(c, i);
      local += 0.5 * body_mass * (v.x * v.x + v.y * v.y + v.z * v.z);
      local += 1e-3 * (p.x + 2 * p.y + 3 * p.z);
    }
    const double total = c.reduce_sum(local);
    if (c.id() == 0) checksum = total;
  });

  AppResult result;
  result.report = sys.report("");
  result.checksum = checksum;
  return result;
}

}  // namespace presto::apps
