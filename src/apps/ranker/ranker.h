// Ranker: pagerank-style push over a synthetic power-law graph whose edge
// set is re-drawn (deterministically) every iteration, so the sharing
// pattern never converges — the predictive protocol's learned schedules are
// always one iteration stale. Every push is a commutative 64-bit add into a
// contribution array marked with GlobalSpace::set_commutative: under the
// ccached protocol those adds are privatized into per-node logs and merged
// at the home on cc_flush (merge traffic); under every other protocol
// cc_add degrades to a remote atomic read-modify-write, producing a storm
// of write faults to the high-degree (power-law head) vertices.
//
// Arithmetic is integer fixed-point throughout — addition commutes exactly,
// so the final ranks (and checksum) are bit-identical across protocols and
// merge orders. Under write-update (phase consistency: a privatized rmw on
// a stale copy may lose concurrent updates) the push phase instead
// accumulates contributions in private host memory and combines them with a
// deterministic node-order reduce_vec_sum; the sums stay below 2^53, so the
// double-valued reduction is still exact and the ranks still match.
#pragma once

#include <cstdint>

#include "apps/common/versions.h"

namespace presto::apps {

struct RankerParams {
  std::size_t vertices = 256;  // vertex count
  int degree = 4;              // out-edges per vertex, re-drawn per iteration
  int iters = 10;
  int skew = 3;                // edge targets ~ n * u^skew (power-law head)
  std::uint64_t seed = 1;      // edge-set seed (salted per iteration)
};

AppResult run_ranker(const RankerParams& params,
                     const runtime::MachineConfig& machine,
                     runtime::ProtocolKind kind, bool directives);

}  // namespace presto::apps
