#include "apps/ranker/ranker.h"

#include <vector>

#include "runtime/aggregate.h"
#include "runtime/system.h"
#include "util/check.h"
#include "util/rng.h"

namespace presto::apps {
namespace {

using runtime::Aggregate1D;
using runtime::NodeCtx;

constexpr int kPhasePush = 0;
constexpr int kPhaseUpdate = 1;

// Fixed-point scale for ranks and the damping factor 217/256 (~0.85).
constexpr std::int64_t kScale = 1 << 16;
constexpr std::int64_t kDampNum = 217;
constexpr int kDampShift = 8;

// Edge target for (iteration, source, edge): u^skew maps the uniform draw
// onto a power-law head, concentrating in-degree on the low vertex ids. The
// generator is salted with the iteration so the edge set drifts every
// sweep. IEEE multiplies only — bit-deterministic everywhere.
std::size_t edge_target(util::Rng& rng, std::size_t nv, int skew) {
  const double u = rng.next_double();
  double p = u;
  for (int s = 1; s < skew; ++s) p *= u;
  const auto t = static_cast<std::size_t>(static_cast<double>(nv) * p);
  return t < nv ? t : nv - 1;
}

util::Rng edge_rng(std::uint64_t seed, int it, std::size_t v) {
  return util::Rng(seed ^
                   (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(it + 1)) ^
                   (0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(v) + 1)));
}

}  // namespace

AppResult run_ranker(const RankerParams& params,
                     const runtime::MachineConfig& machine,
                     runtime::ProtocolKind kind, bool directives) {
  PRESTO_CHECK(params.vertices > 0, "empty graph");
  PRESTO_CHECK(params.degree > 0 && params.skew > 0, "bad ranker params");
  runtime::System sys(machine, kind);

  const std::size_t nv = params.vertices;
  auto rank = Aggregate1D<std::int64_t>::create(sys.space(), nv);
  auto next = Aggregate1D<std::int64_t>::create(sys.space(), nv);
  // The contribution array takes commutative (reduction) updates only.
  sys.space().set_commutative(
      next.addr(0), next.addr(nv - 1) + sizeof(std::int64_t) - next.addr(0));

  // Write-update provides phase consistency only: a read-modify-write on a
  // stale copy may lose a concurrent node's update, so the push phase
  // cannot use shared-memory accumulation there (see header).
  const bool private_push = kind == runtime::ProtocolKind::kWriteUpdate;

  double checksum = 0.0;

  sys.run([&](NodeCtx& c) {
    const auto [lo, hi] = rank.range(c.id());
    for (std::size_t v = lo; v < hi; ++v) {
      rank.set(c, v, kScale);
      next.set(c, v, 0);
    }
    c.barrier();

    std::vector<double> acc;  // private accumulators (write-update only)
    if (private_push) acc.assign(nv, 0.0);

    for (int it = 0; it < params.iters; ++it) {
      if (directives) c.phase(kPhasePush);
      if (private_push) acc.assign(nv, 0.0);
      for (std::size_t v = lo; v < hi; ++v) {
        const std::int64_t share =
            rank.get(c, v) / static_cast<std::int64_t>(params.degree);
        util::Rng rng = edge_rng(params.seed, it, v);
        for (int e = 0; e < params.degree; ++e) {
          const std::size_t t = edge_target(rng, nv, params.skew);
          c.charge_flops(4);
          if (private_push)
            acc[t] += static_cast<double>(share);
          else
            c.cc_add(next.addr(t), share);
        }
      }
      if (private_push)
        c.reduce_vec_sum(acc);
      else
        c.cc_flush();
      c.barrier();

      if (directives) c.phase(kPhaseUpdate);
      for (std::size_t v = lo; v < hi; ++v) {
        const std::int64_t incoming =
            private_push ? static_cast<std::int64_t>(acc[v]) : next.get(c, v);
        c.charge_flops(2);
        rank.set(c, v, kScale + ((incoming * kDampNum) >> kDampShift));
        if (!private_push) next.set(c, v, 0);
      }
      c.barrier();
    }

    double local = 0.0;
    for (std::size_t v = lo; v < hi; ++v)
      local += static_cast<double>(rank.get(c, v));
    const double total = c.reduce_sum(local);
    if (c.id() == 0) checksum = total;
  });

  AppResult result;
  result.report = sys.report("");
  result.checksum = checksum;
  return result;
}

}  // namespace presto::apps
