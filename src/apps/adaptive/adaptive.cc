#include "apps/adaptive/adaptive.h"

#include <cmath>

#include "runtime/aggregate.h"
#include "runtime/system.h"
#include "util/check.h"

namespace presto::apps {
namespace {

using runtime::Aggregate2D;
using runtime::NodeCtx;

// One mesh point: its potential and an optional quad-tree of refinements.
// 16 bytes, 16-aligned, so a cell never straddles a 32-byte block.
struct Cell {
  float value = 0.0f;
  float pad = 0.0f;
  mem::Addr tree = 0;  // 0 = unrefined
};
static_assert(sizeof(Cell) == 16);

// A quad-tree node: four child values, each optionally refined further.
struct QNode {
  float v[4] = {0, 0, 0, 0};
  mem::Addr child[4] = {0, 0, 0, 0};
};
static_assert(sizeof(QNode) == 48);

constexpr int kPhaseRed = 0;
constexpr int kPhaseBlack = 1;

// Red/black planes: cell (i, j) is red when (i + j) is even. Row i of the
// red plane holds columns j = 2k + (i & 1); the black plane holds the rest.
struct Mesh {
  Aggregate2D<Cell> red;
  Aggregate2D<Cell> black;
  std::size_t n = 0;
  float hot = 0.0f;

  bool is_red(std::size_t i, std::size_t j) const { return ((i + j) & 1) == 0; }
  mem::Addr cell_addr(std::size_t i, std::size_t j) const {
    const auto& plane = is_red(i, j) ? red : black;
    const std::size_t base = is_red(i, j) ? (i & 1) : 1 - (i & 1);
    return plane.addr(i, (j - base) / 2);
  }
  // Boundary potential outside the mesh: a hot strip along the upper part
  // of the left edge. The asymmetry concentrates refinement on the nodes
  // owning the top rows — the load imbalance §5.1 discusses.
  float boundary(std::ptrdiff_t i, std::ptrdiff_t j) const {
    return (j < 0 && i < static_cast<std::ptrdiff_t>(n / 2)) ? hot : 0.0f;
  }
};

// Effective (leaf-averaged) value of a quad-tree rooted at `a`.
float tree_value(NodeCtx& c, mem::Addr a) {
  const QNode q = c.read<QNode>(a);
  c.charge_flops(4);
  float sum = 0.0f;
  for (int k = 0; k < 4; ++k)
    sum += q.child[k] != 0 ? tree_value(c, q.child[k]) : q.v[k];
  return 0.25f * sum;
}

// Effective value of a (possibly refined, possibly off-mesh) mesh point.
float point_value(NodeCtx& c, const Mesh& m, std::ptrdiff_t i,
                  std::ptrdiff_t j) {
  if (i < 0 || j < 0 || i >= static_cast<std::ptrdiff_t>(m.n) ||
      j >= static_cast<std::ptrdiff_t>(m.n))
    return m.boundary(i, j);
  const Cell cell = c.read<Cell>(
      m.cell_addr(static_cast<std::size_t>(i), static_cast<std::size_t>(j)));
  return cell.tree != 0 ? tree_value(c, cell.tree) : cell.value;
}

// Relaxes the tree values toward `target`, refining children whose value
// still deviates sharply (gradual refinement across iterations). Owner-only:
// every access is homed at the calling node.
void relax_tree(NodeCtx& c, mem::Addr a, float target, float threshold,
                int depth, int max_depth) {
  QNode q = c.read<QNode>(a);
  bool dirty = false;
  for (int k = 0; k < 4; ++k) {
    if (q.child[k] != 0) {
      relax_tree(c, q.child[k], target, threshold, depth + 1, max_depth);
      continue;
    }
    const float next = 0.5f * (q.v[k] + target);
    c.charge_flops(2);
    if (depth < max_depth && std::fabs(next - target) > threshold) {
      // Subdivide this child: allocate a sub-node seeded with its value.
      QNode sub;
      for (float& v : sub.v) v = next;
      const mem::Addr sa = c.galloc(sizeof(QNode), 16);
      c.write<QNode>(sa, sub);
      q.child[k] = sa;
      dirty = true;
    } else if (next != q.v[k]) {
      q.v[k] = next;
      dirty = true;
    }
  }
  if (dirty) c.write<QNode>(a, q);
}

// Sweeps one colour plane over the rows this node owns.
void sweep(NodeCtx& c, const Mesh& m, bool red_phase,
           const AdaptiveParams& params) {
  const auto& plane = red_phase ? m.red : m.black;
  const auto [lo, hi] = plane.row_range(c.id());
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t jbase = red_phase ? (i & 1) : 1 - (i & 1);
    for (std::size_t k = 0; k < m.n / 2; ++k) {
      const std::size_t j = 2 * k + jbase;
      const auto ii = static_cast<std::ptrdiff_t>(i);
      const auto jj = static_cast<std::ptrdiff_t>(j);
      const float up = point_value(c, m, ii - 1, jj);
      const float down = point_value(c, m, ii + 1, jj);
      const float left = point_value(c, m, ii, jj - 1);
      const float right = point_value(c, m, ii, jj + 1);
      const float target = 0.25f * (up + down + left + right);
      c.charge_flops(8);

      Cell cell = plane.get(c, i, k);
      const float grad =
          std::max(std::max(std::fabs(up - cell.value),
                            std::fabs(down - cell.value)),
                   std::max(std::fabs(left - cell.value),
                            std::fabs(right - cell.value)));
      if (cell.tree == 0) {
        if (grad > params.refine_threshold && params.max_depth > 0) {
          // Steep gradient: subdivide into four child values.
          QNode q;
          for (float& v : q.v) v = cell.value;
          const mem::Addr a = c.galloc(sizeof(QNode), 16);
          c.write<QNode>(a, q);
          cell.tree = a;
        } else {
          cell.value = target;
          plane.set(c, i, k, cell);
          continue;
        }
      }
      relax_tree(c, cell.tree, target, params.refine_threshold, 1,
                 params.max_depth);
      cell.value = target;  // coarse value tracks the relaxation target
      plane.set(c, i, k, cell);
    }
  }
}

}  // namespace

AppResult run_adaptive(const AdaptiveParams& params,
                       const runtime::MachineConfig& machine,
                       runtime::ProtocolKind kind, bool directives) {
  PRESTO_CHECK(params.n >= 4 && params.n % 2 == 0,
               "mesh size must be even and >= 4");
  runtime::System sys(machine, kind);

  Mesh mesh;
  mesh.n = params.n;
  mesh.hot = params.hot;
  mesh.red = Aggregate2D<Cell>::create(sys.space(), params.n, params.n / 2);
  mesh.black = Aggregate2D<Cell>::create(sys.space(), params.n, params.n / 2);

  double checksum = 0.0;
  std::uint64_t refined = 0;

  sys.run([&](NodeCtx& c) {
    // Initial condition: interior zero; the hot left-edge boundary drives a
    // steep front that relaxation propagates rightward, refining as it goes.
    for (const bool red_phase : {true, false}) {
      const auto& plane = red_phase ? mesh.red : mesh.black;
      const auto [lo, hi] = plane.row_range(c.id());
      for (std::size_t i = lo; i < hi; ++i)
        for (std::size_t k = 0; k < mesh.n / 2; ++k)
          plane.set(c, i, k, Cell{});
    }
    c.barrier();

    for (int it = 0; it < params.iters; ++it) {
      if (params.flush_every > 0 && it > 0 && it % params.flush_every == 0) {
        c.flush_phase(kPhaseRed);
        c.flush_phase(kPhaseBlack);
      }
      if (directives) c.phase(kPhaseRed);
      sweep(c, mesh, /*red_phase=*/true, params);
      c.barrier();
      if (directives) c.phase(kPhaseBlack);
      sweep(c, mesh, /*red_phase=*/false, params);
      c.barrier();
    }

    // Checksum: total potential plus refinement count, reduced globally.
    double local = 0.0;
    std::uint64_t local_refined = 0;
    const auto [lo, hi] = mesh.red.row_range(c.id());
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t k = 0; k < mesh.n / 2; ++k) {
        for (const auto* plane : {&mesh.red, &mesh.black}) {
          const Cell cell = plane->get(c, i, k);
          local += cell.tree != 0 ? tree_value(c, cell.tree) : cell.value;
          local_refined += cell.tree != 0 ? 1 : 0;
        }
      }
    }
    const double total = c.reduce_sum(local);
    const double total_refined =
        c.reduce_sum(static_cast<double>(local_refined));
    if (c.id() == 0) {
      checksum = total;
      refined = static_cast<std::uint64_t>(total_refined);
    }
  });

  AppResult result;
  result.report = sys.report("");
  result.checksum = checksum + static_cast<double>(refined);
  return result;
}

}  // namespace presto::apps
