// Adaptive: structured adaptive mesh relaxation (paper §5.1).
//
// Computes electric potentials in a box: a red-black sweep averages each
// point's four neighbours; where the gradient is steep the cell subdivides
// into a dynamically allocated quad-tree for finer detail, and the sweep
// updates the tree values reading neighbouring points. The quad-trees are
// the communication the predictive protocol targets: neighbour reads chase
// pointers into cells allocated (and homed) on other nodes — unanalyzable
// statically, but repetitive with small incremental changes as refinement
// spreads across iterations.
//
// Layout notes: red and black cells live in separate planes so that a cache
// block never mixes cells written in one phase with cells read in the same
// phase (which would mark the whole block "conflict"); this is the layout a
// data-parallel compiler picks for red-black methods. Quad-tree nodes are
// arena-allocated on the owning node during that cell's colour phase.
#pragma once

#include "apps/common/versions.h"

namespace presto::apps {

struct AdaptiveParams {
  std::size_t n = 128;       // mesh is n x n (paper: 128x128)
  int iters = 100;           // paper: 100 iterations
  float hot = 1000.0f;       // boundary potential on the left edge
  float refine_threshold = 40.0f;  // gradient that triggers subdivision
  int max_depth = 2;         // quad-tree depth limit
  int flush_every = 0;       // rebuild schedules every k iterations
                             // (0 = never; the paper's §3.3 suggestion for
                             // patterns with many deletions)
};

AppResult run_adaptive(const AdaptiveParams& params,
                       const runtime::MachineConfig& machine,
                       runtime::ProtocolKind kind, bool directives);

}  // namespace presto::apps
