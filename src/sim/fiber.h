// User-level fibers: heap-allocated stacks with a fast in-thread context
// switch, the mechanism behind the simulator's default processor backend.
//
// A cross-processor handoff on the thread backend costs a mutex + condvar
// round trip (two futex syscalls and a kernel context switch). A fiber
// handoff is a direct stack switch — save callee-saved registers, swap stack
// pointers, restore — at tens of nanoseconds, with every simulated result
// bit-identical because only the transfer mechanism changes, never the event
// order. On x86-64 and aarch64 the switch is hand-rolled assembly
// (sim/fiber_swap.S, fcontext-style); other architectures (or
// -DPRESTO_FIBER_FORCE_UCONTEXT builds) fall back to portable ucontext.h
// swapcontext, which is slower (it saves the signal mask via a syscall) but
// identical in semantics.
//
// Stacks are mmap'd with a PROT_NONE guard page below them plus an in-band
// canary word, so an overflow faults deterministically (or trips the canary
// check at the next switch) instead of corrupting a neighbour. The size
// comes from the PRESTO_STACK_SIZE environment variable (bytes, optional
// k/m suffix; default 1 MiB, 2 MiB under ASan whose redzones inflate
// frames), overridable per engine for tests.
//
// AddressSanitizer is fully supported: every switch is bracketed with
// __sanitizer_start_switch_fiber/__sanitizer_finish_switch_fiber so ASan
// tracks the active stack, and a dying fiber's final switch passes the
// null fake-stack handle that tells ASan to release its bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(PRESTO_FIBER_FORCE_UCONTEXT) || \
    !(defined(__x86_64__) || defined(__aarch64__))
#define PRESTO_FIBER_ASM 0
#include <ucontext.h>
#else
#define PRESTO_FIBER_ASM 1
#endif

namespace presto::sim {

// Which processor implementation an Engine uses. All produce bit-identical
// simulated results for a given engine mode (tests/backend_equivalence_test.cc,
// tests/parallel_equivalence_test.cc); fibers are the default because
// handoffs are ~two orders of magnitude cheaper than thread wakes.
enum class Backend {
  kFiber,     // user-level stack switches, one OS thread per Engine
  kThread,    // one OS thread per processor, mutex/condvar run token
  kParallel,  // fibers sharded over a worker pool, windowed engine required
};

// Build-default backend (PRESTO_FIBERS CMake option), overridable at runtime
// with PRESTO_BACKEND=fiber|thread|parallel.
Backend default_backend();
const char* backend_name(Backend b);

// Backends whose processors run on user-level fiber stacks.
inline bool is_fiber_backend(Backend b) { return b != Backend::kThread; }

// A suspendable execution context: the saved stack pointer of a fiber or of
// a regular OS-thread stack (the engine driver, or a destructor performing a
// teardown kill), plus sanitizer bookkeeping. A context is resumed by
// fiber_switch()ing to it and becomes valid the moment some context switches
// away while saving into it.
struct FiberContext {
#if PRESTO_FIBER_ASM
  void* sp = nullptr;
#else
  ucontext_t uc = {};
#endif
  // ASan bookkeeping (unused but harmless otherwise). Bounds of thread
  // stacks are learned on the first switch landing that came from them.
  void* asan_fake_stack = nullptr;
  const void* stack_bottom = nullptr;
  std::size_t stack_size = 0;
  // TSan fiber handle: created with the Fiber for fiber stacks, captured
  // lazily (__tsan_get_current_fiber) the first time a host-thread context
  // switches away. Unused outside TSan builds.
  void* tsan = nullptr;
};

class Fiber {
 public:
  // The entry runs on the fiber's own stack, must not let exceptions escape,
  // and returns the context the fiber terminally switches to when done; the
  // fiber's stack is dead (no live frames) from that moment on.
  using Entry = FiberContext* (*)(void* arg);

  Fiber(Entry entry, void* arg, std::size_t stack_size = default_stack_size());
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  FiberContext& context() { return ctx_; }

  // False once an overflow has clobbered the low end of the stack. The guard
  // page catches overflows that jump past it; the canary catches bulk
  // overwrites that started above it.
  bool canary_intact() const;
  std::size_t stack_size() const { return usable_size_; }

  // PRESTO_STACK_SIZE (bytes, k/m suffixes), parsed once.
  static std::size_t default_stack_size();

  // Internal: called by the assembly thunk on first activation. Never
  // returns, but deliberately NOT marked [[noreturn]]: ASan instruments
  // calls to noreturn functions with __asan_handle_no_return(), which
  // unpoisons the "current" stack before __sanitizer_finish_switch_fiber
  // has told ASan which stack is current — tripping an internal CHECK.
  void run_entry() noexcept;

 private:
  void seed_context();

  FiberContext ctx_;
  Entry entry_;
  void* arg_;
  void* map_ = nullptr;          // mmap base (guard page)
  std::size_t map_size_ = 0;
  unsigned char* stack_lo_ = nullptr;  // lowest usable byte, above the guard
  std::size_t usable_size_ = 0;
};

// Suspends the currently running context into `from` and resumes `to`.
// Returns when another context switches back into `from`.
void fiber_switch(FiberContext& from, FiberContext& to);

// Re-binds a host-thread context to the calling thread. A windowed lane's
// drain-loop context may be entered from a different worker thread each
// window (lane adoption, sim/parallel.h); under TSan the context's fiber
// handle is lazily captured from whichever thread first switched away from
// it, so before draining on a possibly-different thread the handle must be
// refreshed to the current thread's. No-op outside TSan builds.
void bind_host_context(FiberContext& ctx);

// Final switch out of a context that will never be resumed (fiber entry
// completed, or a killed fiber finished unwinding). Tells ASan the old
// stack is dying. Never returns; not marked [[noreturn]] for the same
// ASan-instrumentation reason as Fiber::run_entry.
void fiber_exit_to(FiberContext& dying, FiberContext& to);

}  // namespace presto::sim
