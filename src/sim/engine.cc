#include "sim/engine.h"

#include "sim/processor.h"
#include "util/check.h"

namespace presto::sim {

Engine::Engine(Backend backend)
    : backend_(backend), fiber_stack_size_(Fiber::default_stack_size()) {}

Engine::~Engine() = default;

void Engine::check_delay(Time delay) const {
  PRESTO_CHECK(delay >= 0, "negative delay " << delay);
}

void Engine::push_event(Time t, InlineFn fn) {
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(slabs_.size()) << kSlabShift;
    slabs_.push_back(std::make_unique<InlineFn[]>(kSlabSize));
    for (std::uint32_t i = kSlabSize; i > 1; --i) free_.push_back(s + i - 1);
  }
  slot(s) = std::move(fn);

  // 4-ary sift-up keyed on (t, seq).
  HeapEntry e{t, seq_++, s};
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

std::uint32_t Engine::pop_min() {
  const std::uint32_t s = heap_[0].slot;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // 4-ary sift-down of the former last element from the root.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end =
          first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return s;
}

Processor& Engine::add_processor() {
  const int id = static_cast<int>(processors_.size());
  processors_.push_back(std::make_unique<Processor>(*this, id));
  return *processors_.back();
}

Processor* Engine::step_one() {
  const Time t = heap_[0].t;
  const std::uint32_t s = pop_min();
  PRESTO_CHECK(t >= now_, "event time went backwards");
  now_ = t;
  ++events_executed_;
  // Move the closure out and recycle the slot before invoking: the event
  // body may schedule new events (and reuse this very slot).
  InlineFn fn = std::move(slot(s));
  free_.push_back(s);
  fn();
  Processor* to = transfer_to_;
  transfer_to_ = nullptr;
  return to;
}

void Engine::transfer(Processor* self, Processor* to) {
  ++handoffs_;
  if (backend_ == Backend::kFiber) {
    FiberContext& from = self != nullptr ? self->fiber_->context() : main_ctx_;
    fiber_switch(from, to->fiber_->context());
    // Control came back: either our own resume event popped in some other
    // context's drive, or (run()'s caller) the queue drained.
    if (self != nullptr) self->fiber_resumed();  // throws Killed on teardown
    return;
  }
  to->grant_control();
  if (self != nullptr) self->park();  // until our own resume grants back
}

bool Engine::drive(Processor* self) {
  for (;;) {
    if (heap_.empty()) {
      if (self == nullptr) return true;
      // An application context drained the queue while parked in block():
      // either another processor still runs app code elsewhere (it will
      // never hand back — deadlock) or everything finished. Let run()'s
      // caller make the call; this context stays parked (teardown kills it).
      signal_done();
      self->park_forever();
      continue;
    }
    Processor* to = step_one();
    if (to == nullptr) continue;
    if (to == self) {
      ++direct_resumes_;
      return false;  // own resume: continue app code in place
    }
    transfer(self, to);
    return false;
  }
}

void Engine::drive_exit() {
  for (;;) {
    if (heap_.empty()) {
      signal_done();
      return;
    }
    Processor* to = step_one();
    if (to == nullptr) continue;
    ++handoffs_;
    to->grant_control();
    return;
  }
}

FiberContext* Engine::drive_exit_target() {
  for (;;) {
    if (heap_.empty()) {
      signal_done();
      return &main_ctx_;
    }
    Processor* to = step_one();
    if (to == nullptr) continue;
    ++handoffs_;
    return &to->fiber_->context();
  }
}

void Engine::signal_done() {
  if (backend_ == Backend::kFiber) {
    // Single OS thread: run()'s caller observes the flag as soon as control
    // switches back to it; no synchronization needed.
    done_ = true;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void Engine::run() {
  done_ = false;  // no application context is running between runs
  if (!drive(nullptr)) {
    if (backend_ == Backend::kFiber) {
      // The handoff in drive() only returns once a fiber signalled the
      // drain and switched back to this context.
      PRESTO_CHECK(done_, "fiber engine resumed run() before drain");
    } else {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] { return done_; });
    }
  }
  for (const auto& p : processors_) {
    PRESTO_CHECK(!p->started() || p->finished() || !p->parked_in_block(),
                 "deadlock: processor " << p->id()
                                        << " blocked with no pending events");
    PRESTO_CHECK(!p->started() || p->finished(),
                 "processor " << p->id()
                              << " neither finished nor blocked after drain");
  }
}

}  // namespace presto::sim
