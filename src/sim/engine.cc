#include "sim/engine.h"

#include <chrono>

#include "sim/parallel.h"
#include "sim/processor.h"
#include "util/check.h"

namespace presto::sim {

thread_local int Engine::tls_lane_ = 0;
thread_local const Engine* Engine::tls_engine_ = nullptr;

Engine::Engine(Backend backend)
    : backend_(backend), fiber_stack_size_(Fiber::default_stack_size()) {
  lanes_.push_back(std::make_unique<Lane>());
  lane0_ = lanes_.front().get();
}

Engine::~Engine() {
  // Join every processor thread before destroying any processor or engine
  // sync member. A finishing thread-backend processor may still be inside
  // the notify of grant_control() (another processor's condvar) or
  // lane_sched_signal()/signal_done() (this engine's condvars) after the
  // woken side has already moved on, so the condvars must outlive all
  // threads, not just their own processor's.
  for (auto& p : processors_) p->teardown();
  processors_.clear();
}

void Engine::enable_windows(Time window, int lanes, int workers,
                            int max_batch) {
  PRESTO_CHECK(!windowed_, "enable_windows called twice");
  PRESTO_CHECK(window >= 1, "window width must be positive, got " << window);
  PRESTO_CHECK(lanes >= 1, "need at least one lane, got " << lanes);
  PRESTO_CHECK(processors_.empty() && lane0_->heap.empty() && lane0_->seq == 0,
               "enable_windows must be called before processors and events");
  windowed_ = true;
  window_ = window;
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 1; i < lanes; ++i) lanes_.push_back(std::make_unique<Lane>());
  workers_ = 1;
  if (backend_ == Backend::kParallel) {
    workers_ = workers < 1 ? 1 : (workers > lanes ? lanes : workers);
    if (workers_ > 1)
      pool_ = std::make_unique<WindowPool>(*this, workers_, max_batch);
  }
}

WindowPoolStats Engine::window_stats() {
  return pool_ != nullptr ? pool_->collect_stats() : WindowPoolStats{};
}

void Engine::set_boundary_op(BoundaryOp slot, std::function<void()> fn) {
  boundary_ops_[static_cast<int>(slot)] = std::move(fn);
}

void Engine::check_delay(Time delay) const {
  PRESTO_CHECK(delay >= 0, "negative delay " << delay);
}

void Engine::push_into(Lane& l, Time t, InlineFn fn) {
  std::uint32_t s;
  if (!l.free.empty()) {
    s = l.free.back();
    l.free.pop_back();
  } else {
    s = static_cast<std::uint32_t>(l.slabs.size()) << kSlabShift;
    l.slabs.push_back(std::make_unique<InlineFn[]>(kSlabSize));
    for (std::uint32_t i = kSlabSize; i > 1; --i) l.free.push_back(s + i - 1);
  }
  slot(l, s) = std::move(fn);

  // 4-ary sift-up keyed on (t, seq).
  HeapEntry e{t, l.seq++, s};
  std::size_t i = l.heap.size();
  l.heap.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, l.heap[parent])) break;
    l.heap[i] = l.heap[parent];
    i = parent;
  }
  l.heap[i] = e;
}

void Engine::push_event(Time t, InlineFn fn) {
  Lane& l = lane(current_lane());
  if (t < l.now) t = l.now;
  push_into(l, t, std::move(fn));
}

void Engine::push_event_on(int lane_id, Time t, InlineFn fn) {
  Lane& l = lane(lane_id);
  if (t < l.now) t = l.now;
  push_into(l, t, std::move(fn));
}

std::uint32_t Engine::pop_min(Lane& l) {
  const std::uint32_t s = l.heap[0].slot;
  const HeapEntry last = l.heap.back();
  l.heap.pop_back();
  if (!l.heap.empty()) {
    // 4-ary sift-down of the former last element from the root.
    const std::size_t n = l.heap.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end =
          first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (before(l.heap[c], l.heap[best])) best = c;
      if (!before(l.heap[best], last)) break;
      l.heap[i] = l.heap[best];
      i = best;
    }
    l.heap[i] = last;
  }
  return s;
}

Processor& Engine::add_processor() {
  const int id = static_cast<int>(processors_.size());
  PRESTO_CHECK(!windowed_ || id < num_lanes(),
               "windowed engine sized for " << num_lanes()
                                            << " lanes cannot hold processor "
                                            << id);
  processors_.push_back(std::make_unique<Processor>(*this, id));
  return *processors_.back();
}

Processor* Engine::step_one(Lane& l) {
  const Time t = l.heap[0].t;
  const std::uint32_t s = pop_min(l);
  PRESTO_CHECK(t >= l.now, "event time went backwards");
  l.now = t;
  ++l.events;
  // Move the closure out and recycle the slot before invoking: the event
  // body may schedule new events (and reuse this very slot).
  InlineFn fn = std::move(slot(l, s));
  l.free.push_back(s);
  fn();
  Processor* to = l.transfer_to;
  l.transfer_to = nullptr;
  return to;
}

void Engine::transfer(Processor* self, Processor* to) {
  ++lane0_->handoffs;
  if (backend_ != Backend::kThread) {
    FiberContext& from = self != nullptr ? self->fiber_->context() : main_ctx_;
    fiber_switch(from, to->fiber_->context());
    // Control came back: either our own resume event popped in some other
    // context's drive, or (run()'s caller) the queue drained.
    if (self != nullptr) self->fiber_resumed();  // throws Killed on teardown
    return;
  }
  to->grant_control();
  if (self != nullptr) self->park();  // until our own resume grants back
}

bool Engine::drive(Processor* self) {
  Lane& l = *lane0_;
  for (;;) {
    if (l.heap.empty()) {
      if (self == nullptr) return true;
      // An application context drained the queue while parked in block():
      // either another processor still runs app code elsewhere (it will
      // never hand back — deadlock) or everything finished. Let run()'s
      // caller make the call; this context stays parked (teardown kills it).
      signal_done();
      self->park_forever();
      continue;
    }
    Processor* to = step_one(l);
    if (to == nullptr) continue;
    if (to == self) {
      ++l.direct_resumes;
      return false;  // own resume: continue app code in place
    }
    transfer(self, to);
    return false;
  }
}

void Engine::drive_exit() {
  Lane& l = *lane0_;
  for (;;) {
    if (l.heap.empty()) {
      signal_done();
      return;
    }
    Processor* to = step_one(l);
    if (to == nullptr) continue;
    ++l.handoffs;
    to->grant_control();
    return;
  }
}

FiberContext* Engine::drive_exit_target() {
  Lane& l = *lane0_;
  for (;;) {
    if (l.heap.empty()) {
      signal_done();
      return &main_ctx_;
    }
    Processor* to = step_one(l);
    if (to == nullptr) continue;
    ++l.handoffs;
    return &to->fiber_->context();
  }
}

void Engine::signal_done() {
  if (backend_ != Backend::kThread) {
    // Single OS thread: run()'s caller observes the flag as soon as control
    // switches back to it; no synchronization needed.
    done_ = true;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void Engine::lane_sched_wait() {
  std::unique_lock<std::mutex> lock(sched_mutex_);
  sched_cv_.wait(lock, [&] { return sched_token_; });
  sched_token_ = false;
}

void Engine::lane_sched_signal() {
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    sched_token_ = true;
  }
  sched_cv_.notify_one();
}

void Engine::drain_lane(int lane_id) {
  Lane& l = lane(lane_id);
  // Under a worker pool a lane may be drained by a different thread each
  // window (adoption); the saved drain-loop context must be re-bound to the
  // thread actually draining (TSan fiber-handle refresh; no-op otherwise).
  if (backend_ != Backend::kThread) bind_host_context(l.sched_ctx);
  const int prev_lane = tls_lane_;
  const Engine* prev_engine = tls_engine_;
  tls_lane_ = lane_id;
  tls_engine_ = this;
  while (!l.heap.empty() && l.heap[0].t < l.cap) {
    Processor* to = step_one(l);
    if (to == nullptr) continue;
    // Hand control to the resumed processor's context; it runs app code on
    // this worker until it parks back into the lane's drain loop.
    ++l.handoffs;
    if (backend_ == Backend::kThread) {
      to->grant_control();
      lane_sched_wait();
    } else {
      fiber_switch(l.sched_ctx, to->fiber_->context());
    }
  }
  tls_lane_ = prev_lane;
  tls_engine_ = prev_engine;
}

void Engine::boundary_gate(std::function<void()> fn) {
  if (!in_lane_context()) {
    fn();
    return;
  }
  // A windowed lane may not touch cross-lane state mid-drain: queue the
  // operation for the next boundary and block the requesting processor (lane
  // == node id in windowed mode) until it has run. The wake carries the
  // lane's current time, so the wait costs no simulated time beyond the
  // window granularity already inherent to the gate.
  Lane& l = lane(tls_lane_);
  PRESTO_CHECK(!l.gate_pending,
               "nested boundary gates on lane " << tls_lane_);
  l.gate = std::move(fn);
  l.gate_pending = true;
  Processor& p = processor(tls_lane_);
  while (l.gate_pending) p.block();
}

void Engine::run_boundary() {
  for (int i = 0; i < kNumBoundaryOps; ++i) {
    if (i == static_cast<int>(BoundaryOp::kSpace)) {
      // Service deferred gates in lane order before the registered op.
      for (int li = 0; li < num_lanes(); ++li) {
        Lane& l = lane(li);
        if (!l.gate_pending) continue;
        l.gate();
        l.gate = nullptr;
        l.gate_pending = false;
        if (li < num_processors()) processor(li).wake(l.now);
      }
    }
    if (boundary_ops_[i]) boundary_ops_[i]();
  }
}

void Engine::run_windowed() {
  bool final_boundary = false;
  for (;;) {
    Time watermark = kTimeNever;
    for (const auto& lp : lanes_)
      if (!lp->heap.empty() && lp->heap[0].t < watermark)
        watermark = lp->heap[0].t;
    if (watermark == kTimeNever) {
      // Every heap is empty, but staged cross-lane work (a held-back
      // mailbox, an unserviced gate) may still exist outside the queues. One
      // extra boundary pass either schedules it — and the loop continues —
      // or proves quiescence.
      if (final_boundary) break;
      run_boundary();
      final_boundary = true;
      continue;
    }
    final_boundary = false;
    global_now_ = watermark;
    // Events strictly below the cap execute this window. Staged cross-lane
    // deliveries depart at t < cap and arrive at t + latency >= cap (the
    // window never exceeds the minimum latency), so a flush can never land
    // in a lane's past.
    const Time cap = watermark <= kTimeNever - window_ ? watermark + window_
                                                       : kTimeNever;
    for (const auto& lp : lanes_) lp->cap = cap;
    ++windows_run_;
    if (pool_ != nullptr) {
      pool_->run_window();
      const auto t0 = std::chrono::steady_clock::now();
      run_boundary();
      pool_->stats().boundary_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      for (int li = 0; li < num_lanes(); ++li) drain_lane(li);
      run_boundary();
    }
  }
}

void Engine::run() {
  if (windowed_) {
    run_windowed();
  } else {
    done_ = false;  // no application context is running between runs
    if (!drive(nullptr)) {
      if (backend_ != Backend::kThread) {
        // The handoff in drive() only returns once a fiber signalled the
        // drain and switched back to this context.
        PRESTO_CHECK(done_, "fiber engine resumed run() before drain");
      } else {
        std::unique_lock<std::mutex> lock(done_mutex_);
        done_cv_.wait(lock, [&] { return done_; });
      }
    }
  }
  for (const auto& p : processors_) {
    PRESTO_CHECK(!p->started() || p->finished() || !p->parked_in_block(),
                 "deadlock: processor " << p->id()
                                        << " blocked with no pending events");
    PRESTO_CHECK(!p->started() || p->finished(),
                 "processor " << p->id()
                              << " neither finished nor blocked after drain");
  }
}

std::uint64_t Engine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& lp : lanes_) n += lp->events;
  return n;
}

std::uint64_t Engine::handoffs() const {
  std::uint64_t n = 0;
  for (const auto& lp : lanes_) n += lp->handoffs;
  return n;
}

std::uint64_t Engine::direct_resumes() const {
  std::uint64_t n = 0;
  for (const auto& lp : lanes_) n += lp->direct_resumes;
  return n;
}

}  // namespace presto::sim
