#include "sim/engine.h"

#include "sim/processor.h"
#include "util/check.h"

namespace presto::sim {

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Engine::schedule_in(Time delay, std::function<void()> fn) {
  PRESTO_CHECK(delay >= 0, "negative delay " << delay);
  schedule_at(now_ + delay, std::move(fn));
}

Time Engine::horizon() const {
  return queue_.empty() ? kTimeNever : queue_.top().t;
}

Processor& Engine::add_processor() {
  const int id = static_cast<int>(processors_.size());
  processors_.push_back(std::make_unique<Processor>(*this, id));
  return *processors_.back();
}

void Engine::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns a const ref; move the closure out via pop.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    PRESTO_CHECK(ev.t >= now_, "event time went backwards");
    now_ = ev.t;
    ++events_executed_;
    ev.fn();
  }
  for (const auto& p : processors_) {
    PRESTO_CHECK(!p->started() || p->finished() || !p->parked_in_block(),
                 "deadlock: processor " << p->id()
                                        << " blocked with no pending events");
    PRESTO_CHECK(!p->started() || p->finished(),
                 "processor " << p->id()
                              << " neither finished nor blocked after drain");
  }
}

}  // namespace presto::sim
