#include "sim/engine.h"

#include "sim/processor.h"
#include "util/check.h"

namespace presto::sim {

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::check_delay(Time delay) const {
  PRESTO_CHECK(delay >= 0, "negative delay " << delay);
}

void Engine::push_event(Time t, InlineFn fn) {
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(slabs_.size()) << kSlabShift;
    slabs_.push_back(std::make_unique<InlineFn[]>(kSlabSize));
    for (std::uint32_t i = kSlabSize; i > 1; --i) free_.push_back(s + i - 1);
  }
  slot(s) = std::move(fn);

  // 4-ary sift-up keyed on (t, seq).
  HeapEntry e{t, seq_++, s};
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

std::uint32_t Engine::pop_min() {
  const std::uint32_t s = heap_[0].slot;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // 4-ary sift-down of the former last element from the root.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end =
          first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return s;
}

Processor& Engine::add_processor() {
  const int id = static_cast<int>(processors_.size());
  processors_.push_back(std::make_unique<Processor>(*this, id));
  return *processors_.back();
}

Processor* Engine::step_one() {
  const Time t = heap_[0].t;
  const std::uint32_t s = pop_min();
  PRESTO_CHECK(t >= now_, "event time went backwards");
  now_ = t;
  ++events_executed_;
  // Move the closure out and recycle the slot before invoking: the event
  // body may schedule new events (and reuse this very slot).
  InlineFn fn = std::move(slot(s));
  free_.push_back(s);
  fn();
  Processor* to = transfer_to_;
  transfer_to_ = nullptr;
  return to;
}

bool Engine::drive(Processor* self) {
  for (;;) {
    if (heap_.empty()) {
      if (self == nullptr) return true;
      // An application thread drained the queue while parked in block():
      // either another processor still runs app code elsewhere (it will
      // never hand back — deadlock) or everything finished. Let run()'s
      // caller make the call; this thread stays parked (teardown kills it).
      signal_done();
      self->park();
      continue;
    }
    Processor* to = step_one();
    if (to == nullptr) continue;
    if (to == self) return false;  // own resume: continue app code in place
    to->grant_control();
    if (self == nullptr) return false;  // run() goes to wait for the drain
    self->park();                       // until our own resume grants back
    return false;
  }
}

void Engine::drive_exit() {
  for (;;) {
    if (heap_.empty()) {
      signal_done();
      return;
    }
    Processor* to = step_one();
    if (to == nullptr) continue;
    to->grant_control();
    return;
  }
}

void Engine::signal_done() {
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void Engine::run() {
  done_ = false;  // no application thread is running between runs
  if (!drive(nullptr)) {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&] { return done_; });
  }
  for (const auto& p : processors_) {
    PRESTO_CHECK(!p->started() || p->finished() || !p->parked_in_block(),
                 "deadlock: processor " << p->id()
                                        << " blocked with no pending events");
    PRESTO_CHECK(!p->started() || p->finished(),
                 "processor " << p->id()
                              << " neither finished nor blocked after drain");
  }
}

}  // namespace presto::sim
