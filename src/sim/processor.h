// A simulated processor running application code on a dedicated OS thread.
//
// Exactly one thread executes at a time, so execution is sequentially
// deterministic. There is no dedicated engine thread handing out time
// slices: whichever application thread yields (at the event horizon or in
// block()) drives the engine's event loop inline until its own resume event
// pops, and only parks — handing the run token to the target thread — when
// an event resumes a *different* processor. The common case, a processor
// yielding and resuming with no other processor scheduled in between, costs
// zero context switches; a cross-processor switch costs one wake + one park
// instead of the two round trips a central engine thread would need.
//
// Application code advances its local virtual clock with charge() and parks
// with block() until an engine-context event calls wake(). Protocol handlers
// execute in engine context (inside whichever thread is driving); the cycles
// they consume on a node whose application thread is computing are
// accumulated via add_stolen() and folded into the application clock at the
// next charge() (a documented approximation, see DESIGN.md §2).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "sim/time.h"

namespace presto::sim {

class Engine;

class Processor {
 public:
  Processor(Engine& engine, int id);
  ~Processor();

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  int id() const { return id_; }

  // ---- Engine-context interface -------------------------------------------

  // Spawns the thread and schedules the body to begin at start_time.
  void start(std::function<void()> body, Time start_time = 0);

  // Schedules a resume for a processor parked in block(). If the processor
  // is not parked yet (it is running or in a horizon yield), the wake is
  // latched and consumed by its next block() call, so wakes are never lost.
  void wake(Time t);

  // Records protocol handler occupancy that overlaps application compute.
  void add_stolen(Time d) { stolen_pending_ += d; }

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  bool parked_in_block() const { return blocked_; }

  // ---- Application-thread interface ---------------------------------------

  // Local virtual clock.
  Time now() const { return clock_; }

  // Advances the local clock by d plus any pending stolen handler time, then
  // drives pending events if the clock passed the event horizon.
  void charge(Time d);

  // Parks until wake(); on return the clock has advanced to the wake time
  // (if later than the current clock).
  void block();

  // Explicitly lets all events scheduled at or before the current clock run.
  void yield();

  // ---- Accounting ----------------------------------------------------------

  Time stolen_total() const { return stolen_total_; }
  std::uint64_t yield_count() const { return yields_; }
  std::uint64_t block_count() const { return blocks_; }

 private:
  struct Killed {};

  void thread_main(std::function<void()> body);
  // Engine-context resume event: flags the engine to transfer control here.
  void mark_resume();
  // Hands the run token to this processor's thread (called by the driver).
  void grant_control();
  // Waits on this processor's own thread for the run token; throws Killed on
  // teardown.
  void park();
  void absorb_stolen();
  void maybe_yield_at_horizon();

  Engine& engine_;
  const int id_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool go_token_ = false;  // run token: this thread may execute app code
  bool kill_ = false;

  Time clock_ = 0;
  Time stolen_pending_ = 0;
  Time stolen_total_ = 0;
  Time last_yield_clock_ = 0;

  bool started_ = false;
  bool finished_ = false;
  bool blocked_ = false;       // parked in block(), waiting for wake()
  bool wake_pending_ = false;  // wake() arrived while not parked
  Time wake_time_ = 0;
  Time resume_time_ = 0;

  std::uint64_t yields_ = 0;
  std::uint64_t blocks_ = 0;

  friend class Engine;
};

}  // namespace presto::sim
