// A simulated processor running application code on its own execution
// context: a user-level fiber by default, or a dedicated OS thread on the
// fallback backend (sim/fiber.h::Backend, chosen per Engine).
//
// Exactly one context executes at a time, so execution is sequentially
// deterministic. There is no dedicated engine thread handing out time
// slices: whichever application context yields (at the event horizon or in
// block()) drives the engine's event loop inline until its own resume event
// pops, and only hands the run token to the target context when an event
// resumes a *different* processor. The common case, a processor yielding
// and resuming with no other processor scheduled in between, costs zero
// context switches on either backend. A cross-processor handoff costs one
// user-level stack switch (~tens of ns) on the fiber backend; on the thread
// backend it is one wake + one park, i.e. two futex syscalls and a kernel
// context switch. Both backends execute the identical event sequence, so
// simulated results are bit-identical (tests/backend_equivalence_test.cc).
//
// Application code advances its local virtual clock with charge() and parks
// with block() until an engine-context event calls wake(). Protocol handlers
// execute in engine context (inside whichever context is driving); the cycles
// they consume on a node whose application thread is computing are
// accumulated via add_stolen() and folded into the application clock at the
// next charge() (a documented approximation, see DESIGN.md §2).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "sim/fiber.h"
#include "sim/time.h"

namespace presto::sim {

class Engine;

class Processor {
 public:
  Processor(Engine& engine, int id);
  ~Processor();

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  int id() const { return id_; }
  // Event lane this processor schedules on and parks against: its own node
  // lane in windowed mode, lane 0 (the only lane) otherwise.
  int lane() const { return lane_; }

  // ---- Engine-context interface -------------------------------------------

  // Creates the execution context (fiber or thread, per the engine's
  // backend) and schedules the body to begin at start_time.
  void start(std::function<void()> body, Time start_time = 0);

  // Schedules a resume for a processor parked in block(). If the processor
  // is not parked yet (it is running or in a horizon yield), the wake is
  // latched and consumed by its next block() call, so wakes are never lost.
  void wake(Time t);

  // Records protocol handler occupancy that overlaps application compute.
  void add_stolen(Time d) { stolen_pending_ += d; }

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  bool parked_in_block() const { return blocked_; }

  // ---- Application-context interface ---------------------------------------

  // Local virtual clock.
  Time now() const { return clock_; }

  // Advances the local clock by d plus any pending stolen handler time, then
  // drives pending events if the clock passed the event horizon.
  void charge(Time d);

  // Parks until wake(); on return the clock has advanced to the wake time
  // (if later than the current clock).
  void block();

  // Explicitly lets all events scheduled at or before the current clock run.
  void yield();

  // ---- Accounting ----------------------------------------------------------

  Time stolen_total() const { return stolen_total_; }
  std::uint64_t yield_count() const { return yields_; }
  std::uint64_t block_count() const { return blocks_; }

 private:
  struct Killed {};

  // Shared body wrapper: initial park, body, Killed unwind; returns whether
  // the context was killed. Runs on the fiber or the dedicated thread.
  bool run_body();
  void thread_main();
  // Fiber entry (sim/fiber.h): runs the body, then either hands the run
  // token onward via the engine's exit path or, when killed, switches back
  // to the context that performed the kill. The returned context is the
  // fiber's terminal switch target.
  static FiberContext* fiber_entry(void* self);

  // Engine-context resume event: flags the engine to transfer control here.
  void mark_resume();
  // Thread backend: hands the run token to this processor's thread.
  void grant_control();
  // Thread backend: waits for the run token; throws Killed on teardown.
  // Fiber backend: the switch itself is the wait, so this only checks for a
  // teardown kill (the initial park after the first switch-in).
  void park();
  // Called after a fiber switch lands back in this processor: validates the
  // stack canary and unwinds via Killed if the engine is being torn down.
  void fiber_resumed();
  // Windowed mode: parks by returning control to the lane's drain loop
  // (stack switch on fiber-backed processors, sched handshake on the thread
  // backend). The drain loop switches back in only to deliver this
  // processor's own resume event.
  void park_to_scheduler();
  // Queue drained while this context still holds live frames (deadlock or
  // teardown): signal run()'s caller and park until killed.
  void park_forever();
  // Backend-uniform destructor path: kill + unwind only when the context
  // started and has not finished; otherwise just reclaim resources.
  void teardown();

  void absorb_stolen();
  void maybe_yield_at_horizon();

  Engine& engine_;
  const int id_;
  const int lane_;

  // Thread backend.
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool go_token_ = false;  // run token: this thread may execute app code

  // Fiber backend.
  std::unique_ptr<Fiber> fiber_;
  FiberContext* kill_exit_ = nullptr;  // killer's context during teardown

  std::function<void()> body_;  // held from start() until run_body() takes it
  bool kill_ = false;

  Time clock_ = 0;
  Time stolen_pending_ = 0;
  Time stolen_total_ = 0;
  Time last_yield_clock_ = 0;

  bool started_ = false;
  bool finished_ = false;
  bool blocked_ = false;       // parked in block(), waiting for wake()
  bool wake_pending_ = false;  // wake() arrived while not parked
  Time wake_time_ = 0;
  Time resume_time_ = 0;

  std::uint64_t yields_ = 0;
  std::uint64_t blocks_ = 0;

  friend class Engine;
};

}  // namespace presto::sim
