// A simulated processor running application code on a dedicated OS thread.
//
// Exactly one thread — the engine or one processor — executes at a time; the
// baton is handed over with a per-processor mutex/condvar pair. Application
// code advances its local virtual clock with charge() and parks with block()
// until an engine-context event calls wake(). A processor whose clock passes
// the engine's event horizon yields so pending events (message deliveries,
// other processors) interleave deterministically.
//
// Protocol handlers execute in engine context; the cycles they consume on a
// node whose application thread is computing are accumulated via
// add_stolen() and folded into the application clock at the next charge()
// (a documented approximation, see DESIGN.md §2).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "sim/time.h"

namespace presto::sim {

class Engine;

class Processor {
 public:
  Processor(Engine& engine, int id);
  ~Processor();

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  int id() const { return id_; }

  // ---- Engine-context interface -------------------------------------------

  // Spawns the thread and schedules the body to begin at start_time.
  void start(std::function<void()> body, Time start_time = 0);

  // Schedules a resume for a processor parked in block(). If the processor
  // is not parked yet (it is running or in a horizon yield), the wake is
  // latched and consumed by its next block() call, so wakes are never lost.
  void wake(Time t);

  // Records protocol handler occupancy that overlaps application compute.
  void add_stolen(Time d) { stolen_pending_ += d; }

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  bool parked_in_block() const { return blocked_; }

  // ---- Application-thread interface ---------------------------------------

  // Local virtual clock.
  Time now() const { return clock_; }

  // Advances the local clock by d plus any pending stolen handler time, then
  // yields to the engine if the clock passed the event horizon.
  void charge(Time d);

  // Parks until wake(); on return the clock has advanced to the wake time
  // (if later than the current clock).
  void block();

  // Explicitly lets all events scheduled at or before the current clock run.
  void yield();

  // ---- Accounting ----------------------------------------------------------

  Time stolen_total() const { return stolen_total_; }
  std::uint64_t yield_count() const { return yields_; }
  std::uint64_t block_count() const { return blocks_; }

 private:
  struct Killed {};

  void thread_main(std::function<void()> body);
  void resume_from_engine();  // engine context: run the thread until it yields
  void yield_to_engine();     // app context: hand the baton back
  void absorb_stolen();
  void maybe_yield_at_horizon();

  Engine& engine_;
  const int id_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool go_app_ = false;   // baton: true → application thread may run
  bool kill_ = false;

  Time clock_ = 0;
  Time stolen_pending_ = 0;
  Time stolen_total_ = 0;
  Time last_yield_clock_ = 0;

  bool started_ = false;
  bool finished_ = false;
  bool blocked_ = false;       // parked in block(), waiting for wake()
  bool wake_pending_ = false;  // wake() arrived while not parked
  Time wake_time_ = 0;
  Time resume_time_ = 0;

  std::uint64_t yields_ = 0;
  std::uint64_t blocks_ = 0;

  friend class Engine;
};

}  // namespace presto::sim
