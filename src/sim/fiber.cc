#include "sim/fiber.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include <sys/mman.h>
#include <unistd.h>

#include "util/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define PRESTO_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PRESTO_ASAN 1
#endif
#endif
#ifndef PRESTO_ASAN
#define PRESTO_ASAN 0
#endif

#if PRESTO_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define PRESTO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PRESTO_TSAN 1
#endif
#endif
#ifndef PRESTO_TSAN
#define PRESTO_TSAN 0
#endif

#if PRESTO_TSAN
#include <sanitizer/tsan_interface.h>
#endif

#if PRESTO_FIBER_ASM
extern "C" {
// sim/fiber_swap.S
void presto_fiber_swap(void** save_sp, void* new_sp);
void presto_fiber_thunk();
}
#endif

extern "C" void presto_fiber_cxx_entry(void* fiber);

namespace presto::sim {

namespace {

constexpr std::uint64_t kCanary = 0xF1BE25AFE57ACC11ULL;  // "fiber-safe stack"

// The context that performed the switch we just landed from. Written by the
// switching side immediately before the raw swap, read by the landing side
// immediately after; single-OS-thread per engine makes this exact, and
// thread_local keeps concurrent engines (util/pool.h) independent.
thread_local FiberContext* tls_incoming = nullptr;

// Completes a switch on the landing side: tells ASan which stack is live
// again and learns the bounds of the stack we came from (fills them in for
// thread-stack contexts ASan knows but we never measured).
inline void finish_incoming_switch(FiberContext& self) {
#if PRESTO_ASAN
  FiberContext* prev = tls_incoming;
  __sanitizer_finish_switch_fiber(self.asan_fake_stack, &prev->stack_bottom,
                                  &prev->stack_size);
#else
  (void)self;
#endif
}

inline void raw_swap(FiberContext& from, FiberContext& to) {
#if PRESTO_FIBER_ASM
  presto_fiber_swap(&from.sp, to.sp);
#else
  PRESTO_CHECK(swapcontext(&from.uc, &to.uc) == 0, "swapcontext failed");
#endif
}

std::size_t page_size() {
  static const std::size_t p = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return p;
}

std::size_t round_up_pages(std::size_t n) {
  const std::size_t p = page_size();
  return (n + p - 1) / p * p;
}

#if !PRESTO_FIBER_ASM
// makecontext only passes ints; smuggle the Fiber* through two halves.
void ucontext_trampoline(unsigned hi, unsigned lo) {
  const auto bits = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  presto_fiber_cxx_entry(reinterpret_cast<void*>(bits));
}
#endif

}  // namespace

Backend default_backend() {
  static const Backend b = [] {
    const char* v = std::getenv("PRESTO_BACKEND");
    if (v != nullptr && v[0] != '\0') {
      if (std::strcmp(v, "fiber") == 0) return Backend::kFiber;
      if (std::strcmp(v, "thread") == 0) return Backend::kThread;
      if (std::strcmp(v, "parallel") == 0) return Backend::kParallel;
      PRESTO_FAIL("PRESTO_BACKEND must be 'fiber', 'thread' or 'parallel', "
                  "got '"
                  << v << "'");
    }
#if defined(PRESTO_FIBERS_DEFAULT_THREAD)
    return Backend::kThread;
#else
    return Backend::kFiber;
#endif
  }();
  return b;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kFiber: return "fiber";
    case Backend::kThread: return "thread";
    case Backend::kParallel: return "parallel";
  }
  return "unknown";
}

std::size_t Fiber::default_stack_size() {
  static const std::size_t size = [] {
    // ASan redzones roughly double frame sizes; give fibers headroom.
    std::size_t bytes = PRESTO_ASAN ? 2u * 1024 * 1024 : 1u * 1024 * 1024;
    const char* v = std::getenv("PRESTO_STACK_SIZE");
    if (v != nullptr && v[0] != '\0') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      std::size_t mult = 1;
      if (end != nullptr && (*end == 'k' || *end == 'K')) {
        mult = 1024;
        ++end;
      } else if (end != nullptr && (*end == 'm' || *end == 'M')) {
        mult = 1024 * 1024;
        ++end;
      }
      PRESTO_CHECK(end != nullptr && *end == '\0' && n > 0,
                   "PRESTO_STACK_SIZE: expected bytes with optional k/m "
                   "suffix, got '"
                       << v << "'");
      bytes = static_cast<std::size_t>(n) * mult;
    }
    // Handler events run on whichever fiber drives the loop; below this the
    // guard page would fire on perfectly ordinary runs.
    constexpr std::size_t kMin = 64 * 1024;
    return bytes < kMin ? kMin : bytes;
  }();
  return size;
}

Fiber::~Fiber() {
#if PRESTO_TSAN
  // Never the running fiber here: a live fiber is killed (and terminally
  // switched out of) before its Fiber is destroyed.
  if (ctx_.tsan != nullptr) __tsan_destroy_fiber(ctx_.tsan);
#endif
  if (map_ != nullptr) munmap(map_, map_size_);
}

Fiber::Fiber(Entry entry, void* arg, std::size_t stack_size)
    : entry_(entry), arg_(arg) {
#if PRESTO_TSAN
  ctx_.tsan = __tsan_create_fiber(0);
#endif
  usable_size_ = round_up_pages(stack_size);
  map_size_ = usable_size_ + page_size();  // + low guard page
  map_ = mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
              MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  PRESTO_CHECK(map_ != MAP_FAILED,
               "fiber stack mmap of " << map_size_ << " bytes failed");
  PRESTO_CHECK(mprotect(map_, page_size(), PROT_NONE) == 0,
               "fiber guard page mprotect failed");
  stack_lo_ = static_cast<unsigned char*>(map_) + page_size();
  std::memcpy(stack_lo_, &kCanary, sizeof(kCanary));
  ctx_.stack_bottom = stack_lo_;
  ctx_.stack_size = usable_size_;
  seed_context();
}

bool Fiber::canary_intact() const {
  std::uint64_t v;
  std::memcpy(&v, stack_lo_, sizeof(v));
  return v == kCanary;
}

void Fiber::seed_context() {
#if PRESTO_FIBER_ASM
  unsigned char* top = stack_lo_ + usable_size_;  // page-aligned high end
#if defined(__x86_64__)
  // Mirror presto_fiber_swap's frame so its restore path "returns" into
  // presto_fiber_thunk with r12 = this. Layout (see fiber_swap.S):
  //   sp+0  mxcsr | fcw<<32        sp+32 r12 = this
  //   sp+8  r15                    sp+40 rbx
  //   sp+16 r14                    sp+48 rbp
  //   sp+24 r13                    sp+56 return address = thunk
  //   (sp+64: zero sentinel return address for backtracers)
  // sp ends ≡ 8 (mod 16) so the thunk sees a call-convention stack.
  std::uint64_t* sp = reinterpret_cast<std::uint64_t*>(top) - 9;
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  __asm__ volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  sp[0] = static_cast<std::uint64_t>(mxcsr) |
          (static_cast<std::uint64_t>(fcw) << 32);
  sp[1] = 0;                                     // r15
  sp[2] = 0;                                     // r14
  sp[3] = 0;                                     // r13
  sp[4] = reinterpret_cast<std::uint64_t>(this); // r12
  sp[5] = 0;                                     // rbx
  sp[6] = 0;                                     // rbp
  sp[7] = reinterpret_cast<std::uint64_t>(&presto_fiber_thunk);
  sp[8] = 0;                                     // sentinel return address
  ctx_.sp = sp;
#elif defined(__aarch64__)
  // 160-byte frame restored by presto_fiber_swap: x19 = this at +0, the
  // return target x30 = thunk at +88; sp stays 16-aligned throughout.
  std::uint64_t* sp = reinterpret_cast<std::uint64_t*>(top) - 22;  // 160+16
  std::memset(sp, 0, 22 * sizeof(std::uint64_t));
  sp[0] = reinterpret_cast<std::uint64_t>(this);  // x19
  sp[11] = reinterpret_cast<std::uint64_t>(&presto_fiber_thunk);  // x30
  ctx_.sp = sp;
#endif
#else
  PRESTO_CHECK(getcontext(&ctx_.uc) == 0, "getcontext failed");
  ctx_.uc.uc_stack.ss_sp = stack_lo_;
  ctx_.uc.uc_stack.ss_size = usable_size_;
  ctx_.uc.uc_link = nullptr;  // entries never return; they fiber_exit_to
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_.uc, reinterpret_cast<void (*)()>(&ucontext_trampoline), 2,
              static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xFFFFFFFFu));
#endif
}

void Fiber::run_entry() noexcept {
  finish_incoming_switch(ctx_);
  FiberContext* exit_to = entry_(arg_);
  fiber_exit_to(ctx_, *exit_to);
}

void fiber_switch(FiberContext& from, FiberContext& to) {
#if PRESTO_ASAN
  __sanitizer_start_switch_fiber(&from.asan_fake_stack, to.stack_bottom,
                                 to.stack_size);
#endif
#if PRESTO_TSAN
  // Host-thread contexts (engine driver, lane drain loops, teardown killers)
  // get their TSan fiber handle the first time they switch away.
  if (from.tsan == nullptr) from.tsan = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(to.tsan, 0);
#endif
  tls_incoming = &from;
  raw_swap(from, to);
  finish_incoming_switch(from);
}

void bind_host_context(FiberContext& ctx) {
#if PRESTO_TSAN
  ctx.tsan = __tsan_get_current_fiber();
#else
  (void)ctx;
#endif
}

void fiber_exit_to(FiberContext& dying, FiberContext& to) {
#if PRESTO_ASAN
  // Null fake-stack handle: the outgoing stack is gone for good; ASan frees
  // its bookkeeping instead of expecting a later return.
  __sanitizer_start_switch_fiber(nullptr, to.stack_bottom, to.stack_size);
#endif
#if PRESTO_TSAN
  if (dying.tsan == nullptr) dying.tsan = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(to.tsan, 0);
#endif
  tls_incoming = &dying;
  raw_swap(dying, to);
  PRESTO_FAIL("dead fiber resumed");
}

}  // namespace presto::sim

extern "C" void presto_fiber_cxx_entry(void* fiber) {
  static_cast<presto::sim::Fiber*>(fiber)->run_entry();
}
