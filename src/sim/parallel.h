// Persistent worker pool driving a windowed Engine's lane drains in
// parallel (Backend::kParallel).
//
// The caller of run_window() participates as worker 0; the pool spawns
// workers-1 helper threads. Lane ownership is static (lane i belongs to
// worker i mod workers) so a helper just walks its stride, but *which*
// workers run at all is decided per window:
//
//   * Idle-lane elision — a helper none of whose lanes has a runnable event
//     below the cap is simply not released; it sleeps through the window at
//     zero cost. When a boundary flush later lands events in one of its
//     lanes, the next window's classification sees the lane runnable again
//     and either releases the owner or adopts the lane (below).
//   * Adoption — a helper whose runnable lanes hold only a handful of
//     pending events is not worth a release/arrival round trip; the caller
//     adopts those lanes and drains them itself. Windows whose *total*
//     pending work is small run entirely on the caller with no atomics at
//     all (the dominant case for phase-synchronized workloads where most
//     lanes sit parked at a barrier).
//   * Release barrier — released helpers are signalled through per-worker
//     epoch words (a sense-reversing flag generalized to a counter, one
//     cache line each) and arrive by decrementing a shared counter. Both
//     sides spin briefly (cpu pause, then sched yield for oversubscribed
//     hosts) before parking in a futex via std::atomic::wait, so a helper
//     that is re-released while still spinning processes k consecutive
//     windows without touching the kernel — adaptive window batching. The
//     boundary ops still run at every logical window boundary in their
//     canonical order on the caller, so batching is invisible to results.
//     `max_batch` caps the spin-acquired streak (a helper parks at least
//     once every max_batch windows); 0 means unbounded. The cap exists for
//     stress tests and the fuzzer, which randomize it to exercise both the
//     spin and the park path.
//
// Fibers migrate between OS threads under adoption (a lane drained by its
// owner one window may be drained by the caller the next). That is safe:
// every switch is bracketed with the sanitizer fiber hooks, the drain loop
// rebinds the lane's scheduler context to the current thread
// (sim::bind_host_context), and the release/arrival atomics give the
// happens-before edges that order one window's lane writes before the next
// window's reads regardless of which thread performs them.
//
// Determinism: lanes share no mutable state during a drain (every cross-lane
// effect is staged and applied at the window boundary, on the caller), so
// neither the worker count, nor which workers were released or which lanes
// adopted, can influence any simulated result.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace presto::sim {

class Engine;

// Host-side attribution for the pool's window synchronization, surfaced via
// stats::HostCounters (win_* fields) and bench/host_throughput
// --backend=parallel. Observability only; never feeds back into results.
struct WindowPoolStats {
  std::uint64_t barrier_wait_ns = 0;  // caller waiting for helper arrivals
  std::uint64_t drain_ns = 0;         // caller draining own + adopted lanes
  std::uint64_t boundary_ns = 0;      // serial boundary ops between windows
  std::uint64_t park_ns = 0;          // helper wall time parked in futex waits
  std::uint64_t parks = 0;            // helper futex parks
  std::uint64_t spin_releases = 0;    // releases acquired by spinning alone
  std::uint64_t releases = 0;         // helper releases (sum over windows)
  std::uint64_t serial_windows = 0;   // windows run entirely on the caller
  std::uint64_t adopted_drains = 0;   // runnable helper lanes the caller drained
};

class WindowPool {
 public:
  // Spawns `workers - 1` (workers >= 2) persistent helper threads; they idle
  // until released. `max_batch` caps a helper's spin-acquired release streak
  // (0 = unbounded; see file comment).
  WindowPool(Engine& engine, int workers, int max_batch);
  ~WindowPool();

  WindowPool(const WindowPool&) = delete;
  WindowPool& operator=(const WindowPool&) = delete;

  // Drains every lane of the engine up to its cap (caps are set by the
  // engine's run loop before the call), using the caller plus whichever
  // helpers this window's classification releases. Returns after the last
  // released helper arrives.
  void run_window();

  int workers() const { return workers_; }
  int max_batch() const { return max_batch_; }

  // Folds the helper-side counters into stats() and returns it. Safe
  // between windows (helpers publish their counters with each arrival).
  const WindowPoolStats& collect_stats();
  WindowPoolStats& stats() { return stats_; }

 private:
  // Per-helper release word plus helper-owned counters, padded so a
  // spinning helper never shares a line with another or with the arrival
  // counter. Counter fields are published by the helper's arrival
  // (release on arrivals_) and read by the caller after an acquire.
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> epoch{0};
    std::uint64_t park_ns = 0;
    std::uint64_t parks = 0;
    std::uint64_t spin_releases = 0;
  };

  void worker_main(int w);
  // Blocks until the slot's epoch moves past `seen` (spin, then yield, then
  // futex park unless `allow_spin` is false); updates the slot's counters.
  std::uint32_t await_epoch(Slot& slot, std::uint32_t seen, bool allow_spin);

  Engine& engine_;
  const int workers_;
  const int max_batch_;

  std::atomic<int> arrivals_{0};
  std::atomic<bool> stop_{false};
  // Planted-bug state (check/bughook.h stale_sense_flag): one-shot, claimed
  // by the first released helper.
  std::atomic<bool> stale_sense_fired_{false};

  std::vector<std::unique_ptr<Slot>> slots_;  // helper w -> slots_[w - 1]
  std::vector<std::thread> threads_;

  // Caller-side scratch, sized once (no per-window allocation).
  std::vector<std::uint32_t> work_est_;   // per worker, pending-entry estimate
  std::vector<std::uint8_t> released_;    // per worker, this window

  WindowPoolStats stats_;
};

}  // namespace presto::sim
