// Persistent worker pool driving a windowed Engine's lane drains in
// parallel (Backend::kParallel).
//
// Each window, run_window() releases every worker once; worker w drains the
// lanes congruent to w modulo the worker count, in increasing lane order,
// and the call returns when all workers have arrived at the low-watermark
// barrier. Lane ownership is static for the whole run — a simulated node's
// fiber always executes on the same OS thread — which keeps sanitizer fiber
// bookkeeping simple and avoids migrating warm stacks between cores. Static
// interleaved pinning (rather than work stealing) is the right shape here:
// lanes are near-uniform in cost for SPMD workloads, and a stolen lane would
// move its fiber set to a different thread mid-run for little gain.
//
// Determinism: lanes share no mutable state during a drain (every cross-lane
// effect is staged and applied at the window boundary, on the caller of
// run_window()), so the partitioning of lanes over workers — and the worker
// count itself — cannot influence any simulated result. The pool's
// generation/arrival barrier uses a mutex + condvars, giving the
// happens-before edges that make the handoff of lane state between the main
// thread (cap assignment, boundary flushes) and the workers (drains) sound
// under ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace presto::sim {

class Engine;

class WindowPool {
 public:
  // Spawns `workers` (>= 2) persistent threads; they idle until run_window.
  WindowPool(Engine& engine, int workers);
  ~WindowPool();

  WindowPool(const WindowPool&) = delete;
  WindowPool& operator=(const WindowPool&) = delete;

  // Drains every lane of the engine up to its cap, using all workers.
  // Called once per window from the engine's run loop; returns after the
  // last worker arrives.
  void run_window();

  int workers() const { return workers_; }

 private:
  void worker_main(int w);

  Engine& engine_;
  const int workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped once per window (and at stop)
  int arrived_ = 0;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace presto::sim
