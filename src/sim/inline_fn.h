// Small-buffer-optimized move-only callable for simulator events.
//
// Every hot-path event closure (processor resumes, message deliveries,
// handler dispatches) captures well under kInlineSize bytes, so scheduling
// an event never touches the heap — unlike std::function, which boxes any
// capture larger than its (implementation-defined, often 16-byte) inline
// buffer. Oversized callables still work via a boxed fallback so cold-path
// and test code can schedule arbitrary closures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace presto::sim {

class InlineFn {
 public:
  // Large enough for the biggest hot-path capture (Stache's queued-request
  // retry: this + home + block + requester + flag) with headroom.
  static constexpr std::size_t kInlineSize = 48;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* s = std::launder(static_cast<Fn*>(src));
        if (dst != nullptr) ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**std::launder(static_cast<Fn**>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn** s = std::launder(static_cast<Fn**>(src));
        if (dst != nullptr)
          ::new (dst) Fn*(*s);  // ownership moves with the pointer
        else
          delete *s;
      };
    }
  }

  InlineFn(InlineFn&& o) noexcept
      : invoke_(o.invoke_), relocate_(o.relocate_) {
    if (relocate_ != nullptr) o.relocate_(buf_, o.buf_);
    o.invoke_ = nullptr;
    o.relocate_ = nullptr;
  }

  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      relocate_ = o.relocate_;
      if (relocate_ != nullptr) o.relocate_(buf_, o.buf_);
      o.invoke_ = nullptr;
      o.relocate_ = nullptr;
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void reset() {
    if (relocate_ != nullptr) {
      relocate_(nullptr, buf_);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  // relocate_(dst, src): move-construct into dst and end src's lifetime;
  // with dst == nullptr, just destroy src.
  void (*relocate_)(void* dst, void* src) = nullptr;
};

}  // namespace presto::sim
