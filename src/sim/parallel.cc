#include "sim/parallel.h"

#include <algorithm>
#include <chrono>

#include "check/bughook.h"
#include "sim/engine.h"
#include "util/check.h"

namespace presto::sim {
namespace {

// Spin budget before a waiter touches the kernel. The pause phase covers the
// steady state where the peer is at most one window of drain work away; the
// yield phase keeps oversubscribed hosts live without burning a scheduling
// quantum in pause loops.
constexpr int kSpinPause = 1024;
constexpr int kSpinYield = 64;

// A runnable lane's work estimate for one window: its pending-entry count,
// capped. The cap matters because a heap holds every future event of the
// lane while a single window executes only the few that fall inside it —
// uncapped, two deep lanes would look like a parallel-worthy window forever
// and a mostly-idle machine would eat a release/arrival round trip every
// window. With the cap, a worker only looks release-worthy when several of
// its lanes are runnable at once.
constexpr std::uint32_t kLaneEstCap = 8;
// A window whose total estimate is below this runs entirely on the caller:
// a release/arrival round trip costs more than draining this many events.
constexpr std::uint32_t kSerialGrain = 64;
// A helper whose runnable lanes' estimate is below this is not released;
// the caller adopts its lanes instead.
constexpr std::uint32_t kAdoptGrain = 16;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WindowPool::WindowPool(Engine& engine, int workers, int max_batch)
    : engine_(engine), workers_(workers), max_batch_(max_batch) {
  PRESTO_CHECK(workers_ >= 2, "WindowPool needs >= 2 workers, got " << workers_);
  slots_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) slots_.push_back(std::make_unique<Slot>());
  work_est_.resize(static_cast<std::size_t>(workers_));
  released_.resize(static_cast<std::size_t>(workers_));
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

WindowPool::~WindowPool() {
  // Helpers are quiescent here: every run_window() returned only after all
  // released helpers arrived, so each is parked or spinning on its epoch.
  stop_.store(true, std::memory_order_relaxed);
  for (auto& s : slots_) {
    s->epoch.fetch_add(1, std::memory_order_release);
    s->epoch.notify_one();
  }
  for (auto& t : threads_) t.join();
}

std::uint32_t WindowPool::await_epoch(Slot& slot, std::uint32_t seen,
                                      bool allow_spin) {
  std::uint32_t e = slot.epoch.load(std::memory_order_acquire);
  if (e != seen) {
    ++slot.spin_releases;
    return e;
  }
  if (allow_spin) {
    for (int i = 0; i < kSpinPause; ++i) {
      cpu_pause();
      e = slot.epoch.load(std::memory_order_acquire);
      if (e != seen) {
        ++slot.spin_releases;
        return e;
      }
    }
    for (int i = 0; i < kSpinYield; ++i) {
      std::this_thread::yield();
      e = slot.epoch.load(std::memory_order_acquire);
      if (e != seen) {
        ++slot.spin_releases;
        return e;
      }
    }
  }
  const std::uint64_t t0 = now_ns();
  // wait() may return spuriously or on a stale comparand; reload and retry.
  do {
    slot.epoch.wait(seen, std::memory_order_acquire);
    e = slot.epoch.load(std::memory_order_acquire);
  } while (e == seen);
  slot.park_ns += now_ns() - t0;
  ++slot.parks;
  return e;
}

void WindowPool::worker_main(int w) {
  Slot& slot = *slots_[static_cast<std::size_t>(w - 1)];
  std::uint32_t seen = 0;
  int streak = 0;  // consecutive releases acquired without a park
  for (;;) {
    const bool allow_spin = max_batch_ == 0 || streak < max_batch_;
    const std::uint64_t parks_before = slot.parks;
    seen = await_epoch(slot, seen, allow_spin);
    if (stop_.load(std::memory_order_relaxed)) return;
    streak = slot.parks == parks_before ? streak + 1 : 1;
    if (check::bug_hooks().stale_sense_flag &&
        !stale_sense_fired_.exchange(true, std::memory_order_relaxed))
        [[unlikely]] {
      // Planted bug (see check/bughook.h): arrive without draining, as if a
      // stale sense flag already showed the window complete.
      if (arrivals_.fetch_sub(1, std::memory_order_release) == 1)
        arrivals_.notify_one();
      continue;
    }
    const int nlanes = engine_.num_lanes();
    for (int i = w; i < nlanes; i += workers_) engine_.drain_lane(i);
    if (arrivals_.fetch_sub(1, std::memory_order_release) == 1)
      arrivals_.notify_one();
  }
}

void WindowPool::run_window() {
  const int nlanes = engine_.num_lanes();
  // Classify: how much pending work each worker's runnable lanes hold.
  std::fill(work_est_.begin(), work_est_.end(), 0u);
  std::uint64_t total = 0;
  for (int i = 0; i < nlanes; ++i) {
    const Engine::Lane& l = engine_.lane(i);
    if (l.heap.empty() || l.heap[0].t >= l.cap) continue;
    const auto est = static_cast<std::uint32_t>(
        l.heap.size() < kLaneEstCap ? l.heap.size() : kLaneEstCap);
    work_est_[static_cast<std::size_t>(i % workers_)] += est;
    total += est;
  }

  int nreleased = 0;
  std::fill(released_.begin(), released_.end(), std::uint8_t{0});
  if (total > kSerialGrain) {
    for (int w = 1; w < workers_; ++w) {
      if (work_est_[static_cast<std::size_t>(w)] >= kAdoptGrain) {
        released_[static_cast<std::size_t>(w)] = 1;
        ++nreleased;
      }
    }
  }

  if (nreleased == 0) {
    // Serial fast path: the whole window on the caller, no atomics.
    const std::uint64_t t0 = now_ns();
    for (int i = 0; i < nlanes; ++i) {
      if (i % workers_ != 0) {
        const Engine::Lane& l = engine_.lane(i);
        if (!l.heap.empty() && l.heap[0].t < l.cap) ++stats_.adopted_drains;
      }
      engine_.drain_lane(i);
    }
    stats_.drain_ns += now_ns() - t0;
    ++stats_.serial_windows;
    return;
  }

  // The relaxed store is ordered before the epoch release stores below; a
  // helper's acquire on its epoch therefore sees the fresh arrival count
  // (and every lane cap the engine set before calling us).
  arrivals_.store(nreleased, std::memory_order_relaxed);
  for (int w = 1; w < workers_; ++w) {
    if (!released_[static_cast<std::size_t>(w)]) continue;
    Slot& s = *slots_[static_cast<std::size_t>(w - 1)];
    s.epoch.fetch_add(1, std::memory_order_release);
    s.epoch.notify_one();
  }
  stats_.releases += static_cast<std::uint64_t>(nreleased);

  // Drain own lanes plus any unreleased helper's runnable lanes (adoption),
  // concurrently with the released helpers on disjoint lanes.
  const std::uint64_t t0 = now_ns();
  for (int i = 0; i < nlanes; ++i) {
    const int owner = i % workers_;
    if (owner != 0 && released_[static_cast<std::size_t>(owner)]) continue;
    if (owner != 0) {
      const Engine::Lane& l = engine_.lane(i);
      if (!l.heap.empty() && l.heap[0].t < l.cap) ++stats_.adopted_drains;
    }
    engine_.drain_lane(i);
  }
  const std::uint64_t t1 = now_ns();
  stats_.drain_ns += t1 - t0;

  // Wait for arrivals. All decrements form one release sequence on
  // arrivals_, so the acquire that observes zero orders every helper's lane
  // writes before the boundary ops that follow this call.
  int n = arrivals_.load(std::memory_order_acquire);
  while (n != 0) {
    for (int i = 0; i < kSpinPause && n != 0; ++i) {
      cpu_pause();
      n = arrivals_.load(std::memory_order_acquire);
    }
    for (int i = 0; i < kSpinYield && n != 0; ++i) {
      std::this_thread::yield();
      n = arrivals_.load(std::memory_order_acquire);
    }
    if (n != 0) {
      arrivals_.wait(n, std::memory_order_acquire);
      n = arrivals_.load(std::memory_order_acquire);
    }
  }
  stats_.barrier_wait_ns += now_ns() - t1;
}

const WindowPoolStats& WindowPool::collect_stats() {
  // Quiescent point: the last run_window() returned only after every helper
  // arrived, so each helper's counter writes happen-before the acquire that
  // observed its arrival.
  std::uint64_t park_ns = 0, parks = 0, spins = 0;
  for (const auto& s : slots_) {
    park_ns += s->park_ns;
    parks += s->parks;
    spins += s->spin_releases;
  }
  stats_.park_ns = park_ns;
  stats_.parks = parks;
  stats_.spin_releases = spins;
  return stats_;
}

}  // namespace presto::sim
