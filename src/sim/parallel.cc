#include "sim/parallel.h"

#include "sim/engine.h"
#include "util/check.h"

namespace presto::sim {

WindowPool::WindowPool(Engine& engine, int workers)
    : engine_(engine), workers_(workers) {
  PRESTO_CHECK(workers_ >= 2, "WindowPool needs >= 2 workers, got " << workers_);
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w)
    threads_.emplace_back(&WindowPool::worker_main, this, w);
}

WindowPool::~WindowPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WindowPool::run_window() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    arrived_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return arrived_ == workers_; });
}

void WindowPool::worker_main(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return generation_ != seen; });
      seen = generation_;
      if (stop_) return;
    }
    for (int lane = w; lane < engine_.num_lanes(); lane += workers_)
      engine_.drain_lane(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++arrived_ == workers_) done_cv_.notify_one();
    }
  }
}

}  // namespace presto::sim
