// Deterministic discrete-event engine.
//
// Events execute in strict (time, insertion sequence) order. Simulated
// processors (sim/processor.h) run application code on their own execution
// contexts — user-level fibers by default, OS threads on the fallback
// backend — but exactly one context runs at any moment, so execution is
// sequentially deterministic and needs no other synchronization. The event
// loop itself has no dedicated context: run() drives it on the caller until
// an event resumes a processor, after which whichever application context
// yields drives it inline (see processor.h for the run-token protocol). On
// the fiber backend the whole engine lives on one OS thread and a handoff is
// a user-level stack switch; on the thread backend run() parks on a condvar
// until the queue drains. Both backends execute the identical event
// sequence, so simulated results are bit-identical.
//
// The queue is built for host throughput: closures live in a slab of
// fixed-size slots recycled through a freelist (no per-event heap
// allocation; see sim/inline_fn.h), and ordering is a 4-ary implicit heap
// whose entries carry the (time, seq) key inline so sift operations never
// dereference the slab.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/fiber.h"
#include "sim/inline_fn.h"
#include "sim/time.h"

namespace presto::trace {
class Hooks;
}  // namespace presto::trace

namespace presto::sim {

class Processor;

class Engine {
 public:
  explicit Engine(Backend backend = default_backend());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Backend backend() const { return backend_; }

  // Schedules fn to run in engine context at absolute time t (clamped to the
  // current time if in the past). Events at equal times run in schedule order.
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    if (t < now_) t = now_;
    push_event(t, InlineFn(std::forward<F>(fn)));
  }
  template <typename F>
  void schedule_in(Time delay, F&& fn) {
    check_delay(delay);
    push_event(now_ + delay, InlineFn(std::forward<F>(fn)));
  }

  // Time of the event currently executing (or the last one executed).
  Time now() const { return now_; }

  // Earliest pending event time, or kTimeNever when the queue is empty.
  // Running processors yield when their local clock passes this horizon so
  // that cross-processor effects interleave at event granularity.
  Time horizon() const { return heap_.empty() ? kTimeNever : heap_[0].t; }

  // Creates a processor; valid until the engine is destroyed.
  Processor& add_processor();
  Processor& processor(int id) { return *processors_[static_cast<std::size_t>(id)]; }
  int num_processors() const { return static_cast<int>(processors_.size()); }

  // Runs events until the queue drains. Aborts (deadlock) if any processor
  // is still blocked with no pending events.
  void run();

  // Statistics (host-side observability; never part of simulated results).
  std::uint64_t events_executed() const { return events_executed_; }
  // Cross-context control transfers: run token handed to a different
  // processor (a stack switch on the fiber backend, a futex wake + park on
  // the thread backend).
  std::uint64_t handoffs() const { return handoffs_; }
  // Resume events that popped while their own processor was driving — the
  // fast path costing zero context switches on either backend.
  std::uint64_t direct_resumes() const { return direct_resumes_; }

  // Minimum compute time a processor may accumulate before yielding at the
  // horizon; 0 means exact event-granularity interleaving. Larger quanta
  // speed up the host at the cost of sub-quantum timing fidelity (values are
  // unaffected for data-race-free programs).
  void set_quantum_floor(Time q) { quantum_floor_ = q; }
  Time quantum_floor() const { return quantum_floor_; }

  // Per-fiber stack size for processors created after this call (tests use
  // tiny stacks to exercise overflow detection). Defaults to
  // Fiber::default_stack_size(), i.e. the PRESTO_STACK_SIZE environment
  // variable. No effect on the thread backend.
  void set_fiber_stack_size(std::size_t bytes) { fiber_stack_size_ = bytes; }
  std::size_t fiber_stack_size() const { return fiber_stack_size_; }

  // Event tracer (trace/tracer.h): processors emit block/resume events
  // through this. Null in untraced runs; observation only.
  void set_trace_hooks(trace::Hooks* h) { trace_hooks_ = h; }
  trace::Hooks* trace_hooks() const { return trace_hooks_; }

 private:
  friend class Processor;

  // Heap entries carry the ordering key so sifts are slab-free; the closure
  // itself sits in a slab slot recycled through free_.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  static constexpr std::uint32_t kSlabShift = 8;  // 256 slots per slab chunk
  static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;

  InlineFn& slot(std::uint32_t i) {
    return slabs_[i >> kSlabShift][i & (kSlabSize - 1)];
  }

  void check_delay(Time delay) const;
  void push_event(Time t, InlineFn fn);
  std::uint32_t pop_min();  // removes the root, returns its slot index

  // Executes the next event; returns the processor it resumed, or nullptr.
  Processor* step_one();
  // Event loop, called by the context holding the run token. With self set
  // (an application context that yielded or blocked), returns once control
  // is back with self's app code — either its own resume event popped, or
  // the token went to another context and came back. With self null (run()'s
  // caller), returns after draining the queue or handing the token to an
  // application context; returns true iff this call drained the queue.
  bool drive(Processor* self);
  // Hands the run token from `self` (null = run()'s caller) to `to`. Fiber
  // backend: a direct stack switch that returns when control comes back.
  // Thread backend: wake the target, then park (or, for run()'s caller,
  // return and wait on the drain condvar).
  void transfer(Processor* self, Processor* to);
  // Thread backend: drives on a thread whose processor body just finished —
  // hands the token onward or, if the queue drained, signals run(); then
  // returns so the thread can exit.
  void drive_exit();
  // Fiber backend equivalent: returns the context the finished fiber must
  // terminally switch to (the next resumed processor, or run()'s caller
  // after signalling the drain).
  FiberContext* drive_exit_target();
  void signal_done();

  const Backend backend_;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<InlineFn[]>> slabs_;
  std::vector<std::uint32_t> free_;

  std::vector<std::unique_ptr<Processor>> processors_;
  Processor* transfer_to_ = nullptr;  // set by a resume event mid-drive
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t direct_resumes_ = 0;
  Time quantum_floor_ = 0;
  std::size_t fiber_stack_size_;
  trace::Hooks* trace_hooks_ = nullptr;

  // Fiber backend: the saved context of run()'s caller while application
  // fibers drive the event loop.
  FiberContext main_ctx_;

  // Thread backend: run() parks here while application threads drive.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
};

}  // namespace presto::sim
