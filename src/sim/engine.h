// Deterministic discrete-event engine.
//
// Events execute in strict (time, insertion sequence) order on the engine
// thread. Simulated processors (sim/processor.h) run application code on
// their own OS threads, but exactly one thread — the engine or one processor
// — runs at any moment, so execution is sequentially deterministic and needs
// no other synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace presto::sim {

class Processor;

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Schedules fn to run in engine context at absolute time t (clamped to the
  // current time if in the past). Events at equal times run in schedule order.
  void schedule_at(Time t, std::function<void()> fn);
  void schedule_in(Time delay, std::function<void()> fn);

  // Time of the event currently executing (or the last one executed).
  Time now() const { return now_; }

  // Earliest pending event time, or kTimeNever when the queue is empty.
  // Running processors yield when their local clock passes this horizon so
  // that cross-processor effects interleave at event granularity.
  Time horizon() const;

  // Creates a processor; valid until the engine is destroyed.
  Processor& add_processor();
  Processor& processor(int id) { return *processors_[static_cast<std::size_t>(id)]; }
  int num_processors() const { return static_cast<int>(processors_.size()); }

  // Runs events until the queue drains. Aborts (deadlock) if any processor
  // is still blocked with no pending events.
  void run();

  // Statistics.
  std::uint64_t events_executed() const { return events_executed_; }

  // Minimum compute time a processor may accumulate before yielding at the
  // horizon; 0 means exact event-granularity interleaving. Larger quanta
  // speed up the host at the cost of sub-quantum timing fidelity (values are
  // unaffected for data-race-free programs).
  void set_quantum_floor(Time q) { quantum_floor_ = q; }
  Time quantum_floor() const { return quantum_floor_; }

 private:
  friend class Processor;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Processor>> processors_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_executed_ = 0;
  Time quantum_floor_ = 0;
};

}  // namespace presto::sim
