// Deterministic discrete-event engine.
//
// Events execute in strict (time, insertion sequence) order. Simulated
// processors (sim/processor.h) run application code on their own execution
// contexts — user-level fibers by default, OS threads on the fallback
// backend — but exactly one context runs at any moment, so execution is
// sequentially deterministic and needs no other synchronization. The event
// loop itself has no dedicated context: run() drives it on the caller until
// an event resumes a processor, after which whichever application context
// yields drives it inline (see processor.h for the run-token protocol). On
// the fiber backend the whole engine lives on one OS thread and a handoff is
// a user-level stack switch; on the thread backend run() parks on a condvar
// until the queue drains. Both backends execute the identical event
// sequence, so simulated results are bit-identical.
//
// The queue is built for host throughput: closures live in a slab of
// fixed-size slots recycled through a freelist (no per-event heap
// allocation; see sim/inline_fn.h), and ordering is a 4-ary implicit heap
// whose entries carry the (time, seq) key inline so sift operations never
// dereference the slab.
//
// ---- Windowed (lane) mode -------------------------------------------------
//
// enable_windows() switches the engine to a conservative-window organization:
// every simulated node owns a private event *lane* (its own heap, slab,
// sequence counter and clock), and run() proceeds in global windows. Each
// window computes the low watermark (the minimum pending event time across
// lanes), sets every lane's cap to watermark + W where W is the window width
// (at most the network's minimum cross-node latency, see
// net::Network::min_latency), drains every lane independently up to its cap,
// and then runs the registered *boundary operations* in a fixed slot order —
// network mailbox flush, space growth gates, barrier scan, oracle replay,
// trace sequence stamping. Because lanes share no mutable state during a
// drain (all cross-node effects are staged and applied at the boundary), the
// lanes may be drained in any order — or concurrently by a worker pool
// (Backend::kParallel, sim/parallel.h) — and the result is bit-identical to
// draining them serially in lane order. Windowed mode is opt-in: with
// window 0 (the default) the engine is a single lane and behaves exactly as
// before, preserving every legacy golden number.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/fiber.h"
#include "sim/inline_fn.h"
#include "sim/time.h"

namespace presto::trace {
class Hooks;
}  // namespace presto::trace

namespace presto::sim {

class Processor;
class WindowPool;
struct WindowPoolStats;

// Fixed boundary-operation slots, run in enum order at every window
// boundary (serial, on run()'s caller). Re-registering a slot overwrites it,
// so a subsystem replaced mid-setup (e.g. a tracer re-attached by
// enable_oracle) simply installs its new callback over the old one.
enum class BoundaryOp {
  kNet = 0,   // flush staged cross-node messages, in source order
  kSpace,     // service deferred allocation/growth gates, in lane order
  kBarrier,   // scan deferred barrier arrivals, fold reductions, release
  kOracle,    // replay buffered shadow-image checks in canonical order
  kTrace,     // assign trace sequence numbers to this window's events
};
inline constexpr int kNumBoundaryOps = 5;

class Engine {
 public:
  explicit Engine(Backend backend = default_backend());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Backend backend() const { return backend_; }

  // Schedules fn to run in engine context at absolute time t (clamped to the
  // current time if in the past). Events at equal times run in schedule
  // order. In windowed mode the event lands on the calling context's lane.
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    push_event(t, InlineFn(std::forward<F>(fn)));
  }
  template <typename F>
  void schedule_in(Time delay, F&& fn) {
    check_delay(delay);
    push_event(now() + delay, InlineFn(std::forward<F>(fn)));
  }
  // Windowed mode: schedules onto an explicit lane (cross-lane effects at a
  // window boundary, processor wakes). Equivalent to schedule_at on lane 0
  // when windows are off.
  template <typename F>
  void schedule_on(int lane, Time t, F&& fn) {
    push_event_on(lane, t, InlineFn(std::forward<F>(fn)));
  }

  // Time of the event currently executing (or the last one executed) on the
  // calling context's lane. Outside any lane in windowed mode this is the
  // current window's watermark.
  Time now() const {
    if (!windowed_) return lane0_->now;
    return tls_engine_ == this ? lanes_[static_cast<std::size_t>(tls_lane_)]->now
                               : global_now_;
  }

  // Earliest pending event time, or kTimeNever when the queue is empty.
  // Running processors yield when their local clock passes this horizon so
  // that cross-processor effects interleave at event granularity. Windowed
  // mode: the calling lane's head (lane-local by construction).
  Time horizon() const {
    const Lane& l =
        windowed_ && tls_engine_ == this
            ? *lanes_[static_cast<std::size_t>(tls_lane_)]
            : *lane0_;
    return l.heap.empty() ? kTimeNever : l.heap[0].t;
  }

  // Horizon variant for processor yields: the lane head only if it will
  // still execute in the current window. An event beyond the cap cannot run
  // until the next window, so a computing processor need not yield for it.
  Time yield_horizon() const {
    const Lane& l =
        windowed_ && tls_engine_ == this
            ? *lanes_[static_cast<std::size_t>(tls_lane_)]
            : *lane0_;
    if (l.heap.empty()) return kTimeNever;
    const Time h = l.heap[0].t;
    return h < l.cap ? h : kTimeNever;
  }

  // ---- Windowed mode --------------------------------------------------------

  // Switches to windowed (lane-per-node) execution: `lanes` event lanes,
  // window width `window` (>= 1; must not exceed the network's minimum
  // cross-node latency or staged deliveries could land in a lane's past).
  // With backend kParallel, `workers` persistent worker threads drain the
  // lanes concurrently (clamped to [1, lanes]); other backends drain
  // serially and ignore `workers`. `max_batch` caps a worker's spin-acquired
  // consecutive-window streak (0 = unbounded; host-only knob, see
  // sim/parallel.h — simulated results are invariant to it). Must be called
  // before any processor or event exists.
  void enable_windows(Time window, int lanes, int workers, int max_batch = 0);
  bool windowed() const { return windowed_; }
  Time window() const { return window_; }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int workers() const { return workers_; }

  // Window-synchronization attribution (sim/parallel.h); all-zero when no
  // worker pool is active. Host-side observability only.
  WindowPoolStats window_stats();

  // Registers (or overwrites) a boundary operation; null clears the slot.
  void set_boundary_op(BoundaryOp slot, std::function<void()> fn);

  // Runs fn with exclusive access to cross-lane state: immediately when
  // windows are off or the caller is not inside a lane drain; otherwise the
  // calling processor blocks and fn runs at the next window boundary (slot
  // kSpace, lane order), after which the processor is woken at its lane's
  // current time. fn must not touch lane-private state of other lanes.
  void boundary_gate(std::function<void()> fn);

  // True when the calling context is executing inside one of this engine's
  // lane drains (windowed mode only).
  bool in_lane_context() const { return windowed_ && tls_engine_ == this; }

  // Lane the calling context is draining (0 when not in a lane).
  int current_lane() const { return in_lane_context() ? tls_lane_ : 0; }

  // Per-lane clock: time of the last event executed on that lane.
  Time lane_now(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)]->now;
  }

  // Drains one lane up to its cap, running resumed processors to their next
  // park. Called serially by run() or concurrently by a WindowPool; lanes
  // share no mutable state during a drain, so either produces the identical
  // result.
  void drain_lane(int lane);

  // ---------------------------------------------------------------------------

  // Creates a processor; valid until the engine is destroyed.
  Processor& add_processor();
  Processor& processor(int id) { return *processors_[static_cast<std::size_t>(id)]; }
  int num_processors() const { return static_cast<int>(processors_.size()); }

  // Runs events until the queue drains. Aborts (deadlock) if any processor
  // is still blocked with no pending events.
  void run();

  // Statistics (host-side observability; never part of simulated results).
  std::uint64_t events_executed() const;
  // Cross-context control transfers: run token handed to a different
  // processor (a stack switch on the fiber backend, a futex wake + park on
  // the thread backend).
  std::uint64_t handoffs() const;
  // Resume events that popped while their own processor was driving — the
  // fast path costing zero context switches on either backend. Always zero
  // in windowed mode (the drain loop is the only driver).
  std::uint64_t direct_resumes() const;
  // Windows executed (windowed mode only).
  std::uint64_t windows_run() const { return windows_run_; }

  // Minimum compute time a processor may accumulate before yielding at the
  // horizon; 0 means exact event-granularity interleaving. Larger quanta
  // speed up the host at the cost of sub-quantum timing fidelity (values are
  // unaffected for data-race-free programs).
  void set_quantum_floor(Time q) { quantum_floor_ = q; }
  Time quantum_floor() const { return quantum_floor_; }

  // Per-fiber stack size for processors created after this call (tests use
  // tiny stacks to exercise overflow detection). Defaults to
  // Fiber::default_stack_size(), i.e. the PRESTO_STACK_SIZE environment
  // variable. No effect on the thread backend.
  void set_fiber_stack_size(std::size_t bytes) { fiber_stack_size_ = bytes; }
  std::size_t fiber_stack_size() const { return fiber_stack_size_; }

  // Event tracer (trace/tracer.h): processors emit block/resume events
  // through this. Null in untraced runs; observation only.
  void set_trace_hooks(trace::Hooks* h) { trace_hooks_ = h; }
  trace::Hooks* trace_hooks() const { return trace_hooks_; }

 private:
  friend class Processor;
  friend class WindowPool;

  // Heap entries carry the ordering key so sifts are slab-free; the closure
  // itself sits in a slab slot recycled through the lane's freelist.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  static constexpr std::uint32_t kSlabShift = 8;  // 256 slots per slab chunk
  static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;

  // One event lane: a private queue + clock. Legacy mode is exactly one
  // lane; windowed mode has one per simulated node. Heap-allocated (vector
  // of unique_ptr) so lane addresses are stable and lanes drained by
  // different workers do not share cache lines.
  struct Lane {
    std::vector<HeapEntry> heap;
    std::vector<std::unique_ptr<InlineFn[]>> slabs;
    std::vector<std::uint32_t> free;
    Processor* transfer_to = nullptr;  // set by a resume event mid-drain
    Time now = 0;
    Time cap = kTimeNever;  // exclusive drain horizon for the current window
    std::uint64_t seq = 0;
    std::uint64_t events = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t direct_resumes = 0;
    // Windowed: the drain loop's saved context while a fiber runs app code.
    FiberContext sched_ctx;
    // Windowed: a deferred cross-lane operation (boundary_gate).
    std::function<void()> gate;
    bool gate_pending = false;
  };

  InlineFn& slot(Lane& l, std::uint32_t i) {
    return l.slabs[i >> kSlabShift][i & (kSlabSize - 1)];
  }

  Lane& lane(int i) { return *lanes_[static_cast<std::size_t>(i)]; }

  void check_delay(Time delay) const;
  void push_event(Time t, InlineFn fn);             // calling context's lane
  void push_event_on(int lane, Time t, InlineFn fn);
  void push_into(Lane& l, Time t, InlineFn fn);
  std::uint32_t pop_min(Lane& l);  // removes the root, returns its slot index

  // Executes the lane's next event; returns the processor it resumed, or
  // nullptr.
  Processor* step_one(Lane& l);
  // Legacy event loop, called by the context holding the run token. With
  // self set (an application context that yielded or blocked), returns once
  // control is back with self's app code — either its own resume event
  // popped, or the token went to another context and came back. With self
  // null (run()'s caller), returns after draining the queue or handing the
  // token to an application context; returns true iff this call drained the
  // queue.
  bool drive(Processor* self);
  // Hands the run token from `self` (null = run()'s caller) to `to`. Fiber
  // backend: a direct stack switch that returns when control comes back.
  // Thread backend: wake the target, then park (or, for run()'s caller,
  // return and wait on the drain condvar).
  void transfer(Processor* self, Processor* to);
  // Thread backend: drives on a thread whose processor body just finished —
  // hands the token onward or, if the queue drained, signals run(); then
  // returns so the thread can exit.
  void drive_exit();
  // Fiber backend equivalent: returns the context the finished fiber must
  // terminally switch to (the next resumed processor, or run()'s caller
  // after signalling the drain).
  FiberContext* drive_exit_target();
  void signal_done();

  // Windowed run loop: watermark, caps, drain (serial or pooled), boundary.
  void run_windowed();
  void run_boundary();
  // Windowed, thread backend: the drain loop parks here while a processor
  // thread runs app code; the processor hands control back via
  // lane_sched_signal.
  void lane_sched_wait();
  void lane_sched_signal();

  const Backend backend_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  Lane* lane0_;  // lanes_[0], cached for the legacy hot path

  bool windowed_ = false;
  Time window_ = 0;
  int workers_ = 1;
  Time global_now_ = 0;  // watermark of the current window
  std::uint64_t windows_run_ = 0;
  std::function<void()> boundary_ops_[kNumBoundaryOps];
  std::unique_ptr<WindowPool> pool_;

  // Calling context's lane, valid while tls_engine_ == the engine draining
  // on this thread. Lane drains never nest across engines on one thread.
  static thread_local int tls_lane_;
  static thread_local const Engine* tls_engine_;

  std::vector<std::unique_ptr<Processor>> processors_;
  Time quantum_floor_ = 0;
  std::size_t fiber_stack_size_;
  trace::Hooks* trace_hooks_ = nullptr;

  // Fiber backend: the saved context of run()'s caller while application
  // fibers drive the event loop (legacy mode only).
  FiberContext main_ctx_;

  // Thread backend: run() parks here while application threads drive
  // (legacy), and the windowed drain loop parks here while a processor
  // thread runs app code.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  std::mutex sched_mutex_;
  std::condition_variable sched_cv_;
  bool sched_token_ = false;

  friend class EngineTestPeer;
};

}  // namespace presto::sim
