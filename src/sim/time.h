// Virtual time for the discrete-event simulator.
//
// Time is a signed 64-bit count of nanoseconds of simulated machine time.
// Helpers give readable constants for the CM-5/Blizzard cost model.
#pragma once

#include <cstdint>
#include <limits>

namespace presto::sim {

using Time = std::int64_t;

inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t n) { return n * 1000; }
constexpr Time milliseconds(std::int64_t n) { return n * 1000 * 1000; }
constexpr Time seconds(std::int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_millis(Time t) { return static_cast<double>(t) * 1e-6; }
constexpr double to_micros(Time t) { return static_cast<double>(t) * 1e-3; }

}  // namespace presto::sim
