#include "sim/processor.h"

#include "sim/engine.h"
#include "trace/hooks.h"
#include "util/check.h"

namespace presto::sim {

Processor::Processor(Engine& engine, int id)
    : engine_(engine), id_(id), lane_(engine.windowed() ? id : 0) {}

Processor::~Processor() { teardown(); }

void Processor::teardown() {
  if (fiber_ != nullptr) {
    if (!finished_) {
      // Suspended mid-run (or never granted): switch in with the kill flag
      // set; the fiber unwinds via Killed and terminally switches back here.
      kill_ = true;
      FiberContext killer;
      kill_exit_ = &killer;
      fiber_switch(killer, fiber_->context());
      PRESTO_CHECK(finished_, "killed fiber did not unwind");
    }
    fiber_.reset();
    return;
  }
  if (!thread_.joinable()) return;  // never started
  if (!finished_) {
    // Parked mid-run (engine torn down early): unwind via Killed.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      kill_ = true;
      go_token_ = true;
    }
    cv_.notify_all();
  }
  thread_.join();
}

void Processor::start(std::function<void()> body, Time start_time) {
  PRESTO_CHECK(!started_, "processor " << id_ << " started twice");
  started_ = true;
  clock_ = start_time;
  body_ = std::move(body);
  if (is_fiber_backend(engine_.backend())) {
    fiber_ = std::make_unique<Fiber>(&Processor::fiber_entry, this,
                                     engine_.fiber_stack_size());
  } else {
    thread_ = std::thread(&Processor::thread_main, this);
  }
  engine_.schedule_on(lane_, start_time, [this] { mark_resume(); });
}

bool Processor::run_body() {
  bool killed = false;
  try {
    // Scope the body so its captures are destroyed before the exit handoff
    // on either backend.
    std::function<void()> body = std::move(body_);
    park();  // initial grant, delivered by the start-time resume event
    body();
  } catch (const Killed&) {
    // Torn down mid-run (engine destroyed before completion); unwind quietly.
    killed = true;
  }
  finished_ = true;
  return killed;
}

void Processor::thread_main() {
  if (engine_.windowed()) {
    // App code on this thread must resolve engine calls (now, horizon,
    // schedule_at) against its own lane.
    Engine::tls_lane_ = lane_;
    Engine::tls_engine_ = &engine_;
    const bool killed = run_body();
    // The drain loop granted us the token; hand it back so it can keep
    // draining (unless we are being torn down, in which case it is not
    // waiting).
    if (!killed) engine_.lane_sched_signal();
    return;
  }
  // The body ran to completion while this thread held the run token: keep
  // driving the event loop until control passes elsewhere, then exit.
  if (!run_body()) engine_.drive_exit();
}

FiberContext* Processor::fiber_entry(void* self_void) {
  auto* self = static_cast<Processor*>(self_void);
  if (self->run_body()) return self->kill_exit_;
  if (self->engine_.windowed()) {
    // Return control to the lane's drain loop; remaining lane events run on
    // its stack. A stale resume for this processor is a no-op (mark_resume
    // checks finished_).
    return &self->engine_.lane(self->lane_).sched_ctx;
  }
  // Keep driving the event loop on this (now dead-to-the-simulation) stack
  // until control must pass elsewhere; that handoff is the fiber's last act.
  return self->engine_.drive_exit_target();
}

void Processor::mark_resume() {
  if (finished_) return;
  resume_time_ = engine_.lane_now(lane_);
  engine_.lane(lane_).transfer_to = this;
}

void Processor::grant_control() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    go_token_ = true;
  }
  cv_.notify_one();
}

void Processor::park() {
  if (is_fiber_backend(engine_.backend())) {
    // A fiber only executes after control was switched to it, so the grant
    // already happened; only a teardown kill needs handling.
    if (kill_) throw Killed{};
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return go_token_; });
  go_token_ = false;
  if (kill_) throw Killed{};
}

void Processor::fiber_resumed() {
  PRESTO_CHECK(fiber_->canary_intact(),
               "fiber stack overflow on processor "
                   << id_ << " (" << fiber_->stack_size()
                   << " bytes); increase PRESTO_STACK_SIZE");
  if (kill_) throw Killed{};
}

void Processor::park_to_scheduler() {
  if (engine_.backend() == Backend::kThread) {
    engine_.lane_sched_signal();
    park();  // until the drain loop delivers our resume (throws on kill)
    return;
  }
  fiber_switch(fiber_->context(), engine_.lane(lane_).sched_ctx);
  fiber_resumed();  // throws Killed on teardown
}

void Processor::park_forever() {
  if (is_fiber_backend(engine_.backend())) {
    fiber_switch(fiber_->context(), engine_.main_ctx_);
    fiber_resumed();  // teardown kill: throws
    PRESTO_FAIL("processor " << id_ << " resumed after queue drain");
  }
  park();
}

void Processor::wake(Time t) {
  const Time lane_now = engine_.lane_now(lane_);
  if (t < lane_now) t = lane_now;
  if (blocked_) {
    blocked_ = false;
    engine_.schedule_on(lane_, t, [this] { mark_resume(); });
  } else {
    // Not parked yet (running or in a horizon yield): latch for the next
    // block() call so the wake cannot be lost.
    wake_pending_ = true;
    if (t > wake_time_) wake_time_ = t;
  }
}

void Processor::absorb_stolen() {
  if (stolen_pending_ > 0) {
    clock_ += stolen_pending_;
    stolen_total_ += stolen_pending_;
    stolen_pending_ = 0;
  }
}

void Processor::charge(Time d) {
  PRESTO_CHECK(d >= 0, "negative charge " << d);
  clock_ += d;
  absorb_stolen();
  maybe_yield_at_horizon();
}

void Processor::maybe_yield_at_horizon() {
  const Time h = engine_.yield_horizon();
  if (h == kTimeNever || clock_ < h) return;
  if (clock_ < last_yield_clock_ + engine_.quantum_floor()) return;
  last_yield_clock_ = clock_;
  ++yields_;
  engine_.schedule_at(clock_, [this] { mark_resume(); });
  if (engine_.windowed()) {
    park_to_scheduler();
  } else {
    engine_.drive(this);
  }
}

void Processor::yield() {
  ++yields_;
  last_yield_clock_ = clock_;
  engine_.schedule_at(clock_, [this] { mark_resume(); });
  if (engine_.windowed()) {
    park_to_scheduler();
  } else {
    engine_.drive(this);
  }
  if (resume_time_ > clock_) clock_ = resume_time_;
}

void Processor::block() {
  ++blocks_;
  trace::Hooks* h = engine_.trace_hooks();
  if (h != nullptr) [[unlikely]] h->on_ctx_block(id_, clock_);
  if (wake_pending_) {
    // Latched wake: consume it without parking.
    wake_pending_ = false;
    if (wake_time_ > clock_) clock_ = wake_time_;
    absorb_stolen();
  } else {
    blocked_ = true;
    if (engine_.windowed()) {
      park_to_scheduler();
    } else {
      engine_.drive(this);
    }
    // Woken by wake(): the resume event carries the wake time.
    if (resume_time_ > clock_) clock_ = resume_time_;
    absorb_stolen();
  }
  if (h != nullptr) [[unlikely]] h->on_ctx_resume(id_, clock_);
}

}  // namespace presto::sim
