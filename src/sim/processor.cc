#include "sim/processor.h"

#include "sim/engine.h"
#include "util/check.h"

namespace presto::sim {

Processor::Processor(Engine& engine, int id) : engine_(engine), id_(id) {}

Processor::~Processor() {
  if (thread_.joinable()) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!finished_) {
        // Parked mid-run (engine torn down early): unwind via Killed.
        kill_ = true;
        go_app_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return !go_app_; });
      }
    }
    thread_.join();
  }
}

void Processor::start(std::function<void()> body, Time start_time) {
  PRESTO_CHECK(!started_, "processor " << id_ << " started twice");
  started_ = true;
  clock_ = start_time;
  thread_ = std::thread(&Processor::thread_main, this, std::move(body));
  engine_.schedule_at(start_time, [this] { resume_from_engine(); });
}

void Processor::thread_main(std::function<void()> body) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return go_app_; });
    if (kill_) {
      finished_ = true;
      go_app_ = false;
      cv_.notify_all();
      return;
    }
  }
  try {
    body();
  } catch (const Killed&) {
    // Torn down mid-run (engine destroyed before completion); unwind quietly.
  }
  std::unique_lock<std::mutex> lock(mutex_);
  finished_ = true;
  go_app_ = false;
  cv_.notify_all();
}

void Processor::resume_from_engine() {
  if (finished_) return;
  resume_time_ = engine_.now();
  std::unique_lock<std::mutex> lock(mutex_);
  go_app_ = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return !go_app_; });
}

void Processor::yield_to_engine() {
  std::unique_lock<std::mutex> lock(mutex_);
  go_app_ = false;
  cv_.notify_all();
  cv_.wait(lock, [&] { return go_app_; });
  if (kill_) throw Killed{};
}

void Processor::wake(Time t) {
  if (t < engine_.now()) t = engine_.now();
  if (blocked_) {
    blocked_ = false;
    engine_.schedule_at(t, [this] { resume_from_engine(); });
  } else {
    // Not parked yet (running or in a horizon yield): latch for the next
    // block() call so the wake cannot be lost.
    wake_pending_ = true;
    if (t > wake_time_) wake_time_ = t;
  }
}

void Processor::absorb_stolen() {
  if (stolen_pending_ > 0) {
    clock_ += stolen_pending_;
    stolen_total_ += stolen_pending_;
    stolen_pending_ = 0;
  }
}

void Processor::charge(Time d) {
  PRESTO_CHECK(d >= 0, "negative charge " << d);
  clock_ += d;
  absorb_stolen();
  maybe_yield_at_horizon();
}

void Processor::maybe_yield_at_horizon() {
  const Time h = engine_.horizon();
  if (h == kTimeNever || clock_ < h) return;
  if (clock_ < last_yield_clock_ + engine_.quantum_floor()) return;
  last_yield_clock_ = clock_;
  ++yields_;
  engine_.schedule_at(clock_, [this] { resume_from_engine(); });
  yield_to_engine();
}

void Processor::yield() {
  ++yields_;
  last_yield_clock_ = clock_;
  engine_.schedule_at(clock_, [this] { resume_from_engine(); });
  yield_to_engine();
  if (resume_time_ > clock_) clock_ = resume_time_;
}

void Processor::block() {
  ++blocks_;
  if (wake_pending_) {
    wake_pending_ = false;
    if (wake_time_ > clock_) clock_ = wake_time_;
    absorb_stolen();
    return;
  }
  blocked_ = true;
  yield_to_engine();
  // Woken by wake(): the resume event carries the wake time.
  if (resume_time_ > clock_) clock_ = resume_time_;
  absorb_stolen();
}

}  // namespace presto::sim
