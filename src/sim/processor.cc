#include "sim/processor.h"

#include "sim/engine.h"
#include "util/check.h"

namespace presto::sim {

Processor::Processor(Engine& engine, int id) : engine_(engine), id_(id) {}

Processor::~Processor() {
  if (thread_.joinable()) {
    bool need_kill;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      need_kill = !finished_;
      if (need_kill) {
        // Parked mid-run (engine torn down early): unwind via Killed.
        kill_ = true;
        go_token_ = true;
      }
    }
    if (need_kill) cv_.notify_all();
    thread_.join();
  }
}

void Processor::start(std::function<void()> body, Time start_time) {
  PRESTO_CHECK(!started_, "processor " << id_ << " started twice");
  started_ = true;
  clock_ = start_time;
  thread_ = std::thread(&Processor::thread_main, this, std::move(body));
  engine_.schedule_at(start_time, [this] { mark_resume(); });
}

void Processor::thread_main(std::function<void()> body) {
  bool killed = false;
  try {
    park();  // initial grant, delivered by the start-time resume event
    body();
  } catch (const Killed&) {
    // Torn down mid-run (engine destroyed before completion); unwind quietly.
    killed = true;
  }
  finished_ = true;
  // The body ran to completion while this thread held the run token: keep
  // driving the event loop until control passes elsewhere, then exit.
  if (!killed) engine_.drive_exit();
}

void Processor::mark_resume() {
  if (finished_) return;
  resume_time_ = engine_.now();
  engine_.transfer_to_ = this;
}

void Processor::grant_control() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    go_token_ = true;
  }
  cv_.notify_one();
}

void Processor::park() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return go_token_; });
  go_token_ = false;
  if (kill_) throw Killed{};
}

void Processor::wake(Time t) {
  if (t < engine_.now()) t = engine_.now();
  if (blocked_) {
    blocked_ = false;
    engine_.schedule_at(t, [this] { mark_resume(); });
  } else {
    // Not parked yet (running or in a horizon yield): latch for the next
    // block() call so the wake cannot be lost.
    wake_pending_ = true;
    if (t > wake_time_) wake_time_ = t;
  }
}

void Processor::absorb_stolen() {
  if (stolen_pending_ > 0) {
    clock_ += stolen_pending_;
    stolen_total_ += stolen_pending_;
    stolen_pending_ = 0;
  }
}

void Processor::charge(Time d) {
  PRESTO_CHECK(d >= 0, "negative charge " << d);
  clock_ += d;
  absorb_stolen();
  maybe_yield_at_horizon();
}

void Processor::maybe_yield_at_horizon() {
  const Time h = engine_.horizon();
  if (h == kTimeNever || clock_ < h) return;
  if (clock_ < last_yield_clock_ + engine_.quantum_floor()) return;
  last_yield_clock_ = clock_;
  ++yields_;
  engine_.schedule_at(clock_, [this] { mark_resume(); });
  engine_.drive(this);
}

void Processor::yield() {
  ++yields_;
  last_yield_clock_ = clock_;
  engine_.schedule_at(clock_, [this] { mark_resume(); });
  engine_.drive(this);
  if (resume_time_ > clock_) clock_ = resume_time_;
}

void Processor::block() {
  ++blocks_;
  if (wake_pending_) {
    wake_pending_ = false;
    if (wake_time_ > clock_) clock_ = wake_time_;
    absorb_stolen();
    return;
  }
  blocked_ = true;
  engine_.drive(this);
  // Woken by wake(): the resume event carries the wake time.
  if (resume_time_ > clock_) clock_ = resume_time_;
  absorb_stolen();
}

}  // namespace presto::sim
