// Parallel-function access-pattern analysis (paper §4.2).
//
// For each parallel function the analysis compiles a context-insensitive
// summary of every Aggregate member access, conservatively categorized as
// Home (an access at exactly (#0, …, #D-1) — the invocation's own element;
// C** aligns equal-shape aggregates, so an identical-index access to any
// aggregate is local to the owner) or Non-Home (everything else, including
// all indirection through values read from the mesh). Reads and writes are
// distinguished by assignment position; compound assignments count as both.
//
// Summaries are keyed by parameter index and resolved at call sites in the
// sequential program onto the actual Aggregate instances (e.g. the summary
// of `sweep(parallel Grid cur, Grid prev)` applied at `sweep(a, b)` yields
// accesses on instances a and b).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cstar/ast.h"

namespace presto::cstar {

enum AccessBit : unsigned {
  kHomeRead = 1u,
  kHomeWrite = 2u,
  kRemoteRead = 4u,
  kRemoteWrite = 8u,
};
inline bool has_remote(unsigned bits) {
  return (bits & (kRemoteRead | kRemoteWrite)) != 0;
}
std::string access_bits_name(unsigned bits);

struct AccessSummary {
  std::map<int, unsigned> param_bits;            // aggregate param index -> bits
  std::map<std::string, unsigned> global_bits;   // global instance -> bits
};

class AccessAnalysis {
 public:
  explicit AccessAnalysis(const Program& prog);

  const std::vector<std::string>& errors() const { return errors_; }

  // Summary of a parallel function (computed on construction).
  const AccessSummary* summary(const std::string& func) const;

  // All Aggregate instances visible to the sequential program (globals and
  // main-local declarations), in declaration order.
  const std::vector<std::string>& instances() const { return instances_; }
  bool is_aggregate_instance(const std::string& name) const;

  // Binds a call site in main to instance-level access bits. Non-parallel
  // or unknown callees yield an empty map.
  std::map<std::string, unsigned> resolve_call(const Expr& call) const;

 private:
  struct FuncEnv {
    const FuncDecl* decl = nullptr;
    std::map<std::string, int> aggregate_params;  // name -> param index
    std::string parallel_param;                   // the `parallel` argument
    int parallel_dims = 0;
  };

  void analyze_function(const FuncDecl& f);
  void walk_stmt(const Stmt& s, const FuncEnv& env, AccessSummary& out);
  void walk_expr(const Expr& e, const FuncEnv& env, AccessSummary& out,
                 bool store, bool compound);
  void record(const Expr& access, const FuncEnv& env, AccessSummary& out,
              bool store, bool compound);
  bool is_home_access(const Expr& call, const FuncEnv& env) const;

  const Program& prog_;
  std::map<std::string, AccessSummary> summaries_;
  std::vector<std::string> instances_;
  std::map<std::string, int> instance_dims_;
  std::vector<std::string> errors_;
};

}  // namespace presto::cstar
