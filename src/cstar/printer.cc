#include "cstar/printer.h"

#include <sstream>

namespace presto::cstar {

namespace {

const char* op_text(Tok t) { return tok_name(t); }

void print_expr(std::ostringstream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kNumber: {
      // Integers print without a trailing ".0".
      if (e.num == static_cast<double>(static_cast<long long>(e.num)))
        os << static_cast<long long>(e.num);
      else
        os << e.num;
      return;
    }
    case Expr::Kind::kVar:
      os << e.name;
      return;
    case Expr::Kind::kHashIndex:
      os << '#' << e.hash_index;
      return;
    case Expr::Kind::kUnary:
      os << op_text(e.op);
      print_expr(os, *e.rhs);
      return;
    case Expr::Kind::kBinary:
      os << '(';
      print_expr(os, *e.lhs);
      os << ' ' << op_text(e.op) << ' ';
      print_expr(os, *e.rhs);
      os << ')';
      return;
    case Expr::Kind::kAssign:
      print_expr(os, *e.lhs);
      os << ' ' << op_text(e.op) << ' ';
      print_expr(os, *e.rhs);
      return;
    case Expr::Kind::kCall: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr(os, *e.args[i]);
      }
      os << ')';
      return;
    }
    case Expr::Kind::kMember:
      print_expr(os, *e.lhs);
      os << '.' << e.name;
      return;
    case Expr::Kind::kIndex:
      print_expr(os, *e.lhs);
      os << '[';
      print_expr(os, *e.args[0]);
      os << ']';
      return;
  }
}

void indent(std::ostringstream& os, int n) {
  for (int i = 0; i < n; ++i) os << "  ";
}

void print_stmt(std::ostringstream& os, const Stmt& s, int depth) {
  if (s.directive_phase >= 0) {
    indent(os, depth);
    os << "__schedule_phase(" << s.directive_phase << ");";
    if (s.directive_hoisted) os << "  /* hoisted out of loop */";
    os << '\n';
  }
  switch (s.kind) {
    case Stmt::Kind::kExpr:
      indent(os, depth);
      print_expr(os, *s.expr);
      os << ";\n";
      return;
    case Stmt::Kind::kBlock:
      indent(os, depth);
      os << "{\n";
      for (const auto& inner : s.body) print_stmt(os, *inner, depth + 1);
      indent(os, depth);
      os << "}\n";
      return;
    case Stmt::Kind::kIf:
      indent(os, depth);
      os << "if (";
      print_expr(os, *s.expr);
      os << ")\n";
      print_stmt(os, *s.then_stmt, depth + 1);
      if (s.else_stmt) {
        indent(os, depth);
        os << "else\n";
        print_stmt(os, *s.else_stmt, depth + 1);
      }
      return;
    case Stmt::Kind::kFor: {
      indent(os, depth);
      os << "for (";
      if (s.for_init && s.for_init->kind == Stmt::Kind::kVarDecl) {
        os << s.for_init->var_type << ' ' << s.for_init->var_name;
        if (s.for_init->expr) {
          os << " = ";
          print_expr(os, *s.for_init->expr);
        }
      } else if (s.for_init && s.for_init->expr) {
        print_expr(os, *s.for_init->expr);
      }
      os << "; ";
      if (s.for_cond) print_expr(os, *s.for_cond);
      os << "; ";
      if (s.for_step) print_expr(os, *s.for_step);
      os << ")\n";
      print_stmt(os, *s.loop_body, depth + 1);
      return;
    }
    case Stmt::Kind::kWhile:
      indent(os, depth);
      os << "while (";
      print_expr(os, *s.expr);
      os << ")\n";
      print_stmt(os, *s.loop_body, depth + 1);
      return;
    case Stmt::Kind::kVarDecl:
      indent(os, depth);
      os << s.var_type << ' ' << s.var_name;
      if (s.expr) {
        os << " = ";
        print_expr(os, *s.expr);
      }
      os << ";\n";
      return;
    case Stmt::Kind::kReturn:
      indent(os, depth);
      os << "return";
      if (s.expr) {
        os << ' ';
        print_expr(os, *s.expr);
      }
      os << ";\n";
      return;
  }
}

}  // namespace

std::string print_function(const FuncDecl& fn) {
  std::ostringstream os;
  if (fn.parallel) os << "parallel ";
  os << fn.ret_type << ' ' << fn.name << '(';
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i > 0) os << ", ";
    if (fn.params[i].parallel) os << "parallel ";
    os << fn.params[i].type << ' ' << fn.params[i].name;
  }
  os << ")\n";
  if (fn.body) print_stmt(os, *fn.body, 0);
  return os.str();
}

std::string print_program(const Program& prog) {
  std::ostringstream os;
  for (const auto& a : prog.aggregates) {
    os << "aggregate " << a.elem_type << ' ' << a.name;
    for (int d = 0; d < a.dims; ++d) os << "[]";
    os << ";\n";
  }
  for (const auto& g : prog.globals)
    os << g.type << ' ' << g.name << ";\n";
  os << '\n';
  for (const auto& f : prog.functions) os << print_function(f) << '\n';
  return os.str();
}

}  // namespace presto::cstar
