// Pretty-printer: emits the program back as annotated source, with the
// compiler-placed predictive-protocol directives shown as
// `__schedule_phase(k);` lines — the human-readable counterpart of
// Figure 4(b).
#pragma once

#include <string>

#include "cstar/ast.h"

namespace presto::cstar {

std::string print_program(const Program& prog);
std::string print_function(const FuncDecl& fn);

}  // namespace presto::cstar
