#include "cstar/interp.h"

#include <cmath>
#include <map>
#include <vector>

#include "runtime/aggregate.h"
#include "util/check.h"

namespace presto::cstar {

namespace {

constexpr std::size_t kDefaultExtent = 32;
constexpr std::int64_t kLoopCap = 10'000'000;

// Per-node scalar environment with block scoping.
class Env {
 public:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }
  void declare(const std::string& name, double v) {
    scopes_.back()[name] = v;
  }
  double* find(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::map<std::string, double>> scopes_;
};

struct AggStorage {
  int dims = 0;
  runtime::Aggregate1D<double> a1;
  runtime::Aggregate2D<double> a2;
  std::size_t extent = 0;
};

class Interp {
 public:
  Interp(const CompileResult& cr, runtime::System& sys,
         const InterpOptions& opt)
      : cr_(cr), sys_(sys), opt_(opt) {
    for (const auto& g : cr.program->globals) {
      const AggregateDecl* d = cr.program->find_aggregate_type(g.type);
      if (d != nullptr) create_aggregate(g.name, d->dims);
    }
    const FuncDecl* mn = cr.program->find_function("main");
    PRESTO_CHECK(mn != nullptr, "interp: no main");
    if (mn->body) {
      for (const auto& s : mn->body->body) {
        if (s->kind != Stmt::Kind::kVarDecl) continue;
        const AggregateDecl* d =
            cr.program->find_aggregate_type(s->var_type);
        if (d != nullptr) create_aggregate(s->var_name, d->dims);
      }
    }
  }

  void run_main(runtime::NodeCtx& c) {
    const FuncDecl* mn = cr_.program->find_function("main");
    Env env;
    env.push();
    bool returned = false;
    exec_stmt(c, *mn->body, env, nullptr, returned);
    c.barrier();
  }

  std::map<std::string, double> checksums(runtime::NodeCtx& c) {
    std::map<std::string, double> out;
    for (auto& [name, agg] : aggs_) {
      double local = 0.0;
      if (agg.dims == 1) {
        const auto [lo, hi] = agg.a1.range(c.id());
        for (std::size_t i = lo; i < hi; ++i) local += agg.a1.get(c, i);
      } else {
        const auto [lo, hi] = agg.a2.row_range(c.id());
        for (std::size_t i = lo; i < hi; ++i)
          for (std::size_t j = 0; j < agg.extent; ++j)
            local += agg.a2.get(c, i, j);
      }
      out[name] = c.reduce_sum(local);
    }
    return out;
  }

 private:
  void create_aggregate(const std::string& name, int dims) {
    PRESTO_CHECK(dims == 1 || dims == 2,
                 "interp: unsupported aggregate rank " << dims);
    AggStorage st;
    st.dims = dims;
    st.extent = kDefaultExtent;
    if (dims == 1)
      st.a1 = runtime::Aggregate1D<double>::create(sys_.space(), st.extent);
    else
      st.a2 = runtime::Aggregate2D<double>::create(sys_.space(), st.extent,
                                                   st.extent);
    aggs_[name] = st;
  }

  // Resolves an aggregate name in the current parallel-function context
  // (parameter name -> bound instance) or as a global instance.
  AggStorage* resolve_agg(const std::string& name,
                          const std::map<std::string, std::string>* binding) {
    std::string inst = name;
    if (binding != nullptr) {
      const auto it = binding->find(name);
      if (it != binding->end()) inst = it->second;
    }
    const auto it = aggs_.find(inst);
    return it == aggs_.end() ? nullptr : &it->second;
  }

  // ---- Parallel-invocation context ----------------------------------------

  struct PCtx {
    std::map<std::string, std::string> binding;  // param -> instance
    std::size_t pos[2] = {0, 0};                 // #0, #1
  };

  std::size_t clamp_index(double v, std::size_t extent) const {
    if (!(v > 0)) return 0;
    const auto i = static_cast<std::size_t>(v);
    return i >= extent ? extent - 1 : i;
  }

  double read_element(runtime::NodeCtx& c, AggStorage& agg,
                      const Expr& call, Env& env, const PCtx* p) {
    return element_access(c, agg, call, env, p, nullptr);
  }

  // Reads or writes (when `write` non-null) the element addressed by call's
  // index expressions.
  double element_access(runtime::NodeCtx& c, AggStorage& agg,
                        const Expr& call, Env& env, const PCtx* p,
                        const double* write) {
    PRESTO_CHECK(static_cast<int>(call.args.size()) == agg.dims,
                 "interp: rank mismatch on '" << call.name << "'");
    std::size_t idx[2] = {0, 0};
    for (int k = 0; k < agg.dims; ++k)
      idx[k] = clamp_index(
          eval(c, *call.args[static_cast<std::size_t>(k)], env, p),
          agg.extent);
    if (agg.dims == 1) {
      if (write != nullptr) {
        agg.a1.set(c, idx[0], *write);
        return *write;
      }
      return agg.a1.get(c, idx[0]);
    }
    if (write != nullptr) {
      agg.a2.set(c, idx[0], idx[1], *write);
      return *write;
    }
    return agg.a2.get(c, idx[0], idx[1]);
  }

  double eval(runtime::NodeCtx& c, const Expr& e, Env& env, const PCtx* p) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return e.num;
      case Expr::Kind::kHashIndex: {
        PRESTO_CHECK(p != nullptr && e.hash_index >= 0 && e.hash_index < 2,
                     "interp: #index outside a parallel function");
        return static_cast<double>(p->pos[e.hash_index]);
      }
      case Expr::Kind::kVar: {
        double* v = env.find(e.name);
        PRESTO_CHECK(v != nullptr, "interp: undefined variable '" << e.name
                                                                  << "'");
        return *v;
      }
      case Expr::Kind::kUnary: {
        const double r = eval(c, *e.rhs, env, p);
        c.charge(opt_.op_cost);
        return e.op == Tok::kMinus ? -r : (r == 0.0 ? 1.0 : 0.0);
      }
      case Expr::Kind::kBinary: {
        const double a = eval(c, *e.lhs, env, p);
        const double b = eval(c, *e.rhs, env, p);
        c.charge(opt_.op_cost);
        switch (e.op) {
          case Tok::kPlus: return a + b;
          case Tok::kMinus: return a - b;
          case Tok::kStar: return a * b;
          case Tok::kSlash: return b == 0.0 ? 0.0 : a / b;
          case Tok::kPercent:
            return b == 0.0 ? 0.0
                            : static_cast<double>(
                                  static_cast<long long>(a) %
                                  static_cast<long long>(b));
          case Tok::kEq: return a == b ? 1.0 : 0.0;
          case Tok::kNe: return a != b ? 1.0 : 0.0;
          case Tok::kLt: return a < b ? 1.0 : 0.0;
          case Tok::kGt: return a > b ? 1.0 : 0.0;
          case Tok::kLe: return a <= b ? 1.0 : 0.0;
          case Tok::kGe: return a >= b ? 1.0 : 0.0;
          case Tok::kAndAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
          case Tok::kOrOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
          default: PRESTO_FAIL("interp: bad binary op");
        }
      }
      case Expr::Kind::kAssign: {
        double rhs = eval(c, *e.rhs, env, p);
        // Scalar target.
        if (e.lhs->kind == Expr::Kind::kVar) {
          double* v = env.find(e.lhs->name);
          PRESTO_CHECK(v != nullptr, "interp: assign to undefined '"
                                         << e.lhs->name << "'");
          if (e.op == Tok::kPlusAssign) rhs = *v + rhs;
          if (e.op == Tok::kMinusAssign) rhs = *v - rhs;
          *v = rhs;
          return rhs;
        }
        // Aggregate element target.
        PRESTO_CHECK(e.lhs->kind == Expr::Kind::kCall,
                     "interp: unsupported assignment target");
        AggStorage* agg =
            resolve_agg(e.lhs->name, p ? &p->binding : nullptr);
        PRESTO_CHECK(agg != nullptr, "interp: assign to non-aggregate '"
                                         << e.lhs->name << "'");
        if (e.op != Tok::kAssign) {
          const double old = element_access(c, *agg, *e.lhs, env, p, nullptr);
          rhs = e.op == Tok::kPlusAssign ? old + rhs : old - rhs;
        }
        element_access(c, *agg, *e.lhs, env, p, &rhs);
        return rhs;
      }
      case Expr::Kind::kCall: {
        AggStorage* agg = resolve_agg(e.name, p ? &p->binding : nullptr);
        PRESTO_CHECK(agg != nullptr,
                     "interp: call to '" << e.name
                                         << "' is not an element access "
                                            "(nested calls unsupported)");
        return element_access(c, *agg, e, env, p, nullptr);
      }
      case Expr::Kind::kMember:
      case Expr::Kind::kIndex:
        PRESTO_FAIL("interp: struct members/array fields are analyzable but "
                    "not executable (scalar aggregates only)");
    }
    PRESTO_FAIL("interp: bad expression kind");
  }

  // Detects a top-level parallel call in an expression statement.
  const Expr* parallel_call(const Expr* e) const {
    if (e == nullptr || e->kind != Expr::Kind::kCall) return nullptr;
    const FuncDecl* f = cr_.program->find_function(e->name);
    return (f != nullptr && f->parallel) ? e : nullptr;
  }

  void exec_parallel_call(runtime::NodeCtx& c, const Expr& call, Env& env) {
    const FuncDecl* f = cr_.program->find_function(call.name);
    PRESTO_CHECK(f != nullptr && f->parallel, "interp: bad parallel call");
    PCtx p;
    const AggStorage* par_agg = nullptr;
    Env fenv;
    fenv.push();
    for (std::size_t i = 0; i < f->params.size(); ++i) {
      const Param& prm = f->params[i];
      const Expr& arg = *call.args[i];
      if (cr_.program->find_aggregate_type(prm.type) != nullptr) {
        PRESTO_CHECK(arg.kind == Expr::Kind::kVar,
                     "interp: aggregate argument must be a name");
        p.binding[prm.name] = arg.name;
        if (prm.parallel) par_agg = resolve_agg(prm.name, &p.binding);
      } else {
        fenv.declare(prm.name, eval(c, arg, env, nullptr));
      }
    }
    PRESTO_CHECK(par_agg != nullptr,
                 "interp: no parallel aggregate bound in call to '"
                     << call.name << "'");

    // Owner-computes: iterate this node's owned elements.
    auto run_one = [&](std::size_t i, std::size_t j) {
      p.pos[0] = i;
      p.pos[1] = j;
      Env body_env = fenv;  // fresh scalar params per invocation
      body_env.push();
      bool returned = false;
      exec_stmt(c, *f->body, body_env, &p, returned);
    };
    if (par_agg->dims == 1) {
      const auto [lo, hi] = par_agg->a1.range(c.id());
      for (std::size_t i = lo; i < hi; ++i) run_one(i, 0);
    } else {
      const auto [lo, hi] = par_agg->a2.row_range(c.id());
      for (std::size_t i = lo; i < hi; ++i)
        for (std::size_t j = 0; j < par_agg->extent; ++j) run_one(i, j);
    }
    // Implicit barrier at the end of every data-parallel operation.
    c.barrier();
  }

  void exec_stmt(runtime::NodeCtx& c, const Stmt& s, Env& env, const PCtx* p,
                 bool& returned) {
    if (returned) return;
    if (p == nullptr && opt_.use_directives && s.directive_phase >= 0)
      c.phase(s.directive_phase);
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        env.push();
        for (const auto& inner : s.body) {
          exec_stmt(c, *inner, env, p, returned);
          if (returned) break;
        }
        env.pop();
        return;
      }
      case Stmt::Kind::kExpr: {
        if (p == nullptr) {
          if (const Expr* call = parallel_call(s.expr.get())) {
            exec_parallel_call(c, *call, env);
            return;
          }
        }
        eval(c, *s.expr, env, p);
        return;
      }
      case Stmt::Kind::kVarDecl: {
        // Aggregate declarations were materialized up front.
        if (cr_.program->find_aggregate_type(s.var_type) != nullptr) return;
        env.declare(s.var_name,
                    s.expr ? eval(c, *s.expr, env, p) : 0.0);
        return;
      }
      case Stmt::Kind::kIf: {
        if (eval(c, *s.expr, env, p) != 0.0) {
          if (s.then_stmt) exec_stmt(c, *s.then_stmt, env, p, returned);
        } else if (s.else_stmt) {
          exec_stmt(c, *s.else_stmt, env, p, returned);
        }
        return;
      }
      case Stmt::Kind::kFor: {
        env.push();
        if (s.for_init) exec_stmt(c, *s.for_init, env, p, returned);
        std::int64_t guard = 0;
        while (!returned &&
               (!s.for_cond || eval(c, *s.for_cond, env, p) != 0.0)) {
          PRESTO_CHECK(++guard < kLoopCap, "interp: runaway for loop");
          if (s.loop_body) exec_stmt(c, *s.loop_body, env, p, returned);
          if (s.for_step) eval(c, *s.for_step, env, p);
        }
        env.pop();
        return;
      }
      case Stmt::Kind::kWhile: {
        std::int64_t guard = 0;
        while (!returned && eval(c, *s.expr, env, p) != 0.0) {
          PRESTO_CHECK(++guard < kLoopCap, "interp: runaway while loop");
          if (s.loop_body) exec_stmt(c, *s.loop_body, env, p, returned);
        }
        return;
      }
      case Stmt::Kind::kReturn: {
        if (s.expr) eval(c, *s.expr, env, p);
        returned = true;
        return;
      }
    }
  }

  const CompileResult& cr_;
  runtime::System& sys_;
  const InterpOptions opt_;
  std::map<std::string, AggStorage> aggs_;
};

}  // namespace

InterpResult interpret(const CompileResult& compiled,
                       const runtime::MachineConfig& machine,
                       runtime::ProtocolKind kind,
                       const InterpOptions& options) {
  PRESTO_CHECK(compiled.ok(), "interp: program has compile errors");
  runtime::System sys(machine, kind);
  Interp interp(compiled, sys, options);
  InterpResult result;
  sys.run([&](runtime::NodeCtx& c) {
    interp.run_main(c);
    auto sums = interp.checksums(c);
    if (c.id() == 0) result.checksums = std::move(sums);
  });
  result.report = sys.report(std::string("interp/") +
                             runtime::protocol_kind_name(kind));
  return result;
}

}  // namespace presto::cstar
