// Abstract syntax tree for the C**-subset language.
//
// The subset covers what the paper's analyses need: global Aggregate type
// declarations and instances, parallel functions with `parallel`-marked
// Aggregate parameters and #k position pseudo-variables (§4.1), and a
// sequential main with loops and branches whose parallel call sites the
// placement pass annotates with predictive-protocol directives (§4.3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cstar/token.h"

namespace presto::cstar {

struct Expr {
  enum class Kind {
    kNumber,
    kVar,
    kHashIndex,  // #k
    kUnary,      // op rhs
    kBinary,     // lhs op rhs
    kAssign,     // lhs op(=,+=,-=) rhs
    kCall,       // name(args) — function call or Aggregate element access
    kMember,     // lhs . name
    kIndex,      // lhs [ args[0] ]
  };

  Kind kind{};
  double num = 0;
  std::string name;     // kVar, kCall (callee), kMember (field)
  int hash_index = -1;  // kHashIndex
  Tok op{};             // kUnary, kBinary, kAssign
  std::unique_ptr<Expr> lhs, rhs;
  std::vector<std::unique_ptr<Expr>> args;
  int line = 0;
};

struct Stmt {
  enum class Kind { kExpr, kBlock, kIf, kFor, kWhile, kVarDecl, kReturn };

  Kind kind{};
  int line = 0;

  std::unique_ptr<Expr> expr;  // kExpr; kIf/kWhile condition; kReturn value;
                               // kVarDecl initializer (may be null)
  std::vector<std::unique_ptr<Stmt>> body;  // kBlock
  std::unique_ptr<Stmt> then_stmt, else_stmt;  // kIf
  std::unique_ptr<Stmt> loop_body;             // kFor / kWhile
  std::unique_ptr<Stmt> for_init;              // kFor (may be null)
  std::unique_ptr<Expr> for_cond, for_step;    // kFor (may be null)
  std::string var_type, var_name;              // kVarDecl

  // ---- Placement annotations (filled by the placement pass) --------------
  int directive_phase = -1;  // >= 0: presend directive precedes this stmt
  bool directive_hoisted = false;  // directive was hoisted out of this loop
};

struct Param {
  std::string type;
  std::string name;
  bool parallel = false;  // the Aggregate this function is applied over
};

struct FuncDecl {
  bool parallel = false;
  std::string ret_type;
  std::string name;
  std::vector<Param> params;
  std::unique_ptr<Stmt> body;
  int line = 0;
};

// `aggregate float Grid[][];` — an Aggregate *type* of rank dims.
struct AggregateDecl {
  std::string elem_type;
  std::string name;
  int dims = 0;
  int line = 0;
};

// `Grid a;` at top level — an Aggregate *instance* the dataflow tracks.
struct GlobalVar {
  std::string type;
  std::string name;
  int line = 0;
};

struct Program {
  std::vector<AggregateDecl> aggregates;
  std::vector<GlobalVar> globals;
  std::vector<FuncDecl> functions;

  const FuncDecl* find_function(const std::string& name) const {
    for (const auto& f : functions)
      if (f.name == name) return &f;
    return nullptr;
  }
  const AggregateDecl* find_aggregate_type(const std::string& name) const {
    for (const auto& a : aggregates)
      if (a.name == name) return &a;
    return nullptr;
  }
};

}  // namespace presto::cstar
