#include "cstar/access_analysis.h"

namespace presto::cstar {

std::string access_bits_name(unsigned bits) {
  std::string s;
  auto add = [&](const char* what) {
    if (!s.empty()) s += "+";
    s += what;
  };
  if (bits & kHomeRead) add("home-read");
  if (bits & kHomeWrite) add("home-write");
  if (bits & kRemoteRead) add("unstructured-read");
  if (bits & kRemoteWrite) add("unstructured-write");
  return s.empty() ? "none" : s;
}

AccessAnalysis::AccessAnalysis(const Program& prog) : prog_(prog) {
  // Collect Aggregate instances: globals plus main-local declarations.
  auto add_instance = [&](const std::string& type, const std::string& name) {
    const AggregateDecl* d = prog_.find_aggregate_type(type);
    if (d == nullptr) return;
    instances_.push_back(name);
    instance_dims_[name] = d->dims;
  };
  for (const auto& g : prog.globals) add_instance(g.type, g.name);
  if (const FuncDecl* mn = prog.find_function("main");
      mn != nullptr && mn->body != nullptr) {
    // Only top-level declarations in main are treated as instances.
    for (const auto& s : mn->body->body)
      if (s->kind == Stmt::Kind::kVarDecl) add_instance(s->var_type, s->var_name);
  }
  for (const auto& f : prog.functions)
    if (f.parallel) analyze_function(f);
}

const AccessSummary* AccessAnalysis::summary(const std::string& func) const {
  const auto it = summaries_.find(func);
  return it == summaries_.end() ? nullptr : &it->second;
}

bool AccessAnalysis::is_aggregate_instance(const std::string& name) const {
  return instance_dims_.count(name) > 0;
}

void AccessAnalysis::analyze_function(const FuncDecl& f) {
  FuncEnv env;
  env.decl = &f;
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    const Param& p = f.params[i];
    const AggregateDecl* d = prog_.find_aggregate_type(p.type);
    if (d == nullptr) continue;
    env.aggregate_params[p.name] = static_cast<int>(i);
    if (p.parallel) {
      env.parallel_param = p.name;
      env.parallel_dims = d->dims;
    }
  }
  if (env.parallel_param.empty())
    errors_.push_back("parallel function '" + f.name +
                      "' has no parallel Aggregate parameter");
  AccessSummary out;
  if (f.body) walk_stmt(*f.body, env, out);
  summaries_[f.name] = std::move(out);
}

void AccessAnalysis::walk_stmt(const Stmt& s, const FuncEnv& env,
                               AccessSummary& out) {
  switch (s.kind) {
    case Stmt::Kind::kExpr:
    case Stmt::Kind::kReturn:
    case Stmt::Kind::kVarDecl:
      if (s.expr) walk_expr(*s.expr, env, out, false, false);
      break;
    case Stmt::Kind::kBlock:
      for (const auto& inner : s.body) walk_stmt(*inner, env, out);
      break;
    case Stmt::Kind::kIf:
      walk_expr(*s.expr, env, out, false, false);
      if (s.then_stmt) walk_stmt(*s.then_stmt, env, out);
      if (s.else_stmt) walk_stmt(*s.else_stmt, env, out);
      break;
    case Stmt::Kind::kFor:
      if (s.for_init) walk_stmt(*s.for_init, env, out);
      if (s.for_cond) walk_expr(*s.for_cond, env, out, false, false);
      if (s.for_step) walk_expr(*s.for_step, env, out, false, false);
      if (s.loop_body) walk_stmt(*s.loop_body, env, out);
      break;
    case Stmt::Kind::kWhile:
      walk_expr(*s.expr, env, out, false, false);
      if (s.loop_body) walk_stmt(*s.loop_body, env, out);
      break;
  }
}

bool AccessAnalysis::is_home_access(const Expr& call,
                                    const FuncEnv& env) const {
  // Home iff the index expressions are exactly (#0, …, #D-1) where D is the
  // rank of the parallel Aggregate (the invocation's own position).
  if (static_cast<int>(call.args.size()) != env.parallel_dims) return false;
  for (int k = 0; k < env.parallel_dims; ++k) {
    const Expr& a = *call.args[static_cast<std::size_t>(k)];
    if (a.kind != Expr::Kind::kHashIndex || a.hash_index != k) return false;
  }
  return true;
}

void AccessAnalysis::record(const Expr& access, const FuncEnv& env,
                            AccessSummary& out, bool store, bool compound) {
  const bool home = is_home_access(access, env);
  unsigned bits = 0;
  const bool read = !store || compound;
  const bool write = store;
  if (read) bits |= home ? kHomeRead : kRemoteRead;
  if (write) bits |= home ? kHomeWrite : kRemoteWrite;

  const auto pit = env.aggregate_params.find(access.name);
  if (pit != env.aggregate_params.end()) {
    out.param_bits[pit->second] |= bits;
  } else if (is_aggregate_instance(access.name)) {
    out.global_bits[access.name] |= bits;
  }
}

void AccessAnalysis::walk_expr(const Expr& e, const FuncEnv& env,
                               AccessSummary& out, bool store,
                               bool compound) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kVar:
    case Expr::Kind::kHashIndex:
      return;
    case Expr::Kind::kUnary:
      walk_expr(*e.rhs, env, out, false, false);
      return;
    case Expr::Kind::kBinary:
      walk_expr(*e.lhs, env, out, false, false);
      walk_expr(*e.rhs, env, out, false, false);
      return;
    case Expr::Kind::kAssign: {
      const bool comp = e.op != Tok::kAssign;
      walk_expr(*e.lhs, env, out, /*store=*/true, comp);
      walk_expr(*e.rhs, env, out, false, false);
      return;
    }
    case Expr::Kind::kMember:
      // The store flag flows through to the underlying aggregate access.
      walk_expr(*e.lhs, env, out, store, compound);
      return;
    case Expr::Kind::kIndex:
      walk_expr(*e.lhs, env, out, store, compound);
      for (const auto& a : e.args) walk_expr(*a, env, out, false, false);
      return;
    case Expr::Kind::kCall: {
      const bool is_aggregate =
          env.aggregate_params.count(e.name) > 0 ||
          is_aggregate_instance(e.name);
      if (is_aggregate) {
        record(e, env, out, store, compound);
      } else if (prog_.find_function(e.name) != nullptr) {
        errors_.push_back(
            "line " + std::to_string(e.line) + ": call to '" + e.name +
            "' inside a parallel function (no interprocedural analysis)");
      }
      // Index expressions are reads regardless of the access direction.
      for (const auto& a : e.args) walk_expr(*a, env, out, false, false);
      return;
    }
  }
}

std::map<std::string, unsigned> AccessAnalysis::resolve_call(
    const Expr& call) const {
  std::map<std::string, unsigned> out;
  const FuncDecl* f = prog_.find_function(call.name);
  if (f == nullptr || !f->parallel) return out;
  const AccessSummary* sum = summary(call.name);
  if (sum == nullptr) return out;
  for (const auto& [idx, bits] : sum->param_bits) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= call.args.size()) continue;
    const Expr& arg = *call.args[static_cast<std::size_t>(idx)];
    if (arg.kind == Expr::Kind::kVar && is_aggregate_instance(arg.name))
      out[arg.name] |= bits;
  }
  for (const auto& [name, bits] : sum->global_bits) out[name] |= bits;
  return out;
}

}  // namespace presto::cstar
