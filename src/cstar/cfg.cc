#include "cstar/cfg.h"

#include <sstream>

#include "util/check.h"

namespace presto::cstar {

namespace {

// Finds the parallel call expression within a statement's expression, if
// any (the subset allows one parallel call per expression statement).
const Expr* find_call(const Expr* e) {
  if (e == nullptr) return nullptr;
  if (e->kind == Expr::Kind::kCall) return e;
  if (e->kind == Expr::Kind::kAssign || e->kind == Expr::Kind::kBinary) {
    if (const Expr* c = find_call(e->lhs.get())) return c;
    return find_call(e->rhs.get());
  }
  if (e->kind == Expr::Kind::kUnary) return find_call(e->rhs.get());
  return nullptr;
}

class Builder {
 public:
  Builder(const AccessAnalysis& access) : access_(access) {}

  Cfg build(const FuncDecl& fn) {
    cfg_.entry = add_node(CfgNode::Kind::kEntry, nullptr, "entry");
    cfg_.exit = add_node(CfgNode::Kind::kExit, nullptr, "exit");
    std::vector<int> tails = {cfg_.entry};
    if (fn.body) tails = lower_stmt(*fn.body, tails);
    for (int t : tails) link(t, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  int add_node(CfgNode::Kind kind, const Stmt* stmt, std::string label) {
    CfgNode n;
    n.id = static_cast<int>(cfg_.nodes.size());
    n.kind = kind;
    n.stmt = stmt;
    n.label = std::move(label);
    cfg_.nodes.push_back(std::move(n));
    return cfg_.nodes.back().id;
  }

  void link(int from, int to) {
    cfg_.nodes[static_cast<std::size_t>(from)].succ.push_back(to);
    cfg_.nodes[static_cast<std::size_t>(to)].pred.push_back(from);
  }

  std::vector<int> link_all(const std::vector<int>& froms, int to) {
    for (int f : froms) link(f, to);
    return {to};
  }

  // Lowers a statement; `in` is the set of predecessor tails. Returns the
  // statement's fall-through tails.
  std::vector<int> lower_stmt(const Stmt& s, std::vector<int> in) {
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        for (const auto& inner : s.body) in = lower_stmt(*inner, std::move(in));
        return in;
      }
      case Stmt::Kind::kExpr: {
        const Expr* call = find_call(s.expr.get());
        if (call != nullptr && access_.resolve_call(*call).size() > 0) {
          const int n =
              add_node(CfgNode::Kind::kCall, &s, call->name + "(...)");
          cfg_.nodes[static_cast<std::size_t>(n)].call = call;
          cfg_.nodes[static_cast<std::size_t>(n)].access =
              access_.resolve_call(*call);
          cfg_.call_nodes[call] = n;
          return link_all(in, n);
        }
        const int n = add_node(CfgNode::Kind::kStmt, &s, "stmt");
        return link_all(in, n);
      }
      case Stmt::Kind::kVarDecl: {
        const int n = add_node(CfgNode::Kind::kStmt, &s, s.var_name + " decl");
        return link_all(in, n);
      }
      case Stmt::Kind::kReturn: {
        const int n = add_node(CfgNode::Kind::kStmt, &s, "return");
        link_all(in, n);
        link(n, cfg_.exit);
        return {};  // no fall-through
      }
      case Stmt::Kind::kIf: {
        const int cond = add_node(CfgNode::Kind::kStmt, &s, "if-cond");
        link_all(in, cond);
        std::vector<int> tails;
        if (s.then_stmt) {
          auto t = lower_stmt(*s.then_stmt, {cond});
          tails.insert(tails.end(), t.begin(), t.end());
        }
        if (s.else_stmt) {
          auto t = lower_stmt(*s.else_stmt, {cond});
          tails.insert(tails.end(), t.begin(), t.end());
        } else {
          tails.push_back(cond);  // condition false falls through
        }
        return tails;
      }
      case Stmt::Kind::kFor: {
        std::vector<int> pre = std::move(in);
        if (s.for_init) pre = lower_stmt(*s.for_init, std::move(pre));
        const int cond = add_node(CfgNode::Kind::kStmt, &s, "for-cond");
        link_all(pre, cond);
        std::vector<int> body_tails = {cond};
        if (s.loop_body) body_tails = lower_stmt(*s.loop_body, {cond});
        const int step = add_node(CfgNode::Kind::kStmt, &s, "for-step");
        for (int t : body_tails) link(t, step);
        link(step, cond);  // back edge
        return {cond};     // loop exit
      }
      case Stmt::Kind::kWhile: {
        const int cond = add_node(CfgNode::Kind::kStmt, &s, "while-cond");
        link_all(in, cond);
        std::vector<int> body_tails = {cond};
        if (s.loop_body) body_tails = lower_stmt(*s.loop_body, {cond});
        for (int t : body_tails) link(t, cond);  // back edge
        return {cond};
      }
    }
    PRESTO_FAIL("unhandled statement kind");
  }

  const AccessAnalysis& access_;
  Cfg cfg_;
};

}  // namespace

Cfg build_cfg(const FuncDecl& fn, const AccessAnalysis& access) {
  return Builder(access).build(fn);
}

std::string Cfg::to_string() const {
  std::ostringstream os;
  for (const auto& n : nodes) {
    os << "  n" << n.id << " [" << n.label << "]";
    if (!n.access.empty()) {
      os << " {";
      bool first = true;
      for (const auto& [inst, bits] : n.access) {
        if (!first) os << "; ";
        first = false;
        os << inst << ": " << access_bits_name(bits);
      }
      os << "}";
    }
    os << " ->";
    for (int s : n.succ) os << " n" << s;
    os << "\n";
  }
  return os.str();
}

}  // namespace presto::cstar
