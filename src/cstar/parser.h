// Recursive-descent parser for the C**-subset language.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cstar/ast.h"
#include "cstar/token.h"

namespace presto::cstar {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  // Returns the program; parse errors are collected (never throws). On
  // unrecoverable errors the program may be partial.
  std::unique_ptr<Program> parse();
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok t) const { return peek().kind == t; }
  bool match(Tok t);
  bool expect(Tok t, const char* what);
  void error(const std::string& msg);
  void synchronize();

  bool is_type_token(const Token& t) const;
  std::string parse_type_name();

  void parse_aggregate_decl(Program& prog);
  void parse_func_or_global(Program& prog, bool parallel);
  FuncDecl parse_function(bool parallel, std::string ret_type,
                          std::string name);
  std::unique_ptr<Stmt> parse_stmt();
  std::unique_ptr<Stmt> parse_block();
  std::unique_ptr<Stmt> parse_if();
  std::unique_ptr<Stmt> parse_for();
  std::unique_ptr<Stmt> parse_while();
  std::unique_ptr<Stmt> parse_var_decl(std::string type);

  std::unique_ptr<Expr> parse_expr();
  std::unique_ptr<Expr> parse_assignment();
  std::unique_ptr<Expr> parse_or();
  std::unique_ptr<Expr> parse_and();
  std::unique_ptr<Expr> parse_equality();
  std::unique_ptr<Expr> parse_relational();
  std::unique_ptr<Expr> parse_additive();
  std::unique_ptr<Expr> parse_multiplicative();
  std::unique_ptr<Expr> parse_unary();
  std::unique_ptr<Expr> parse_postfix();
  std::unique_ptr<Expr> parse_primary();

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::vector<std::string> errors_;
};

}  // namespace presto::cstar
