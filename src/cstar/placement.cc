#include "cstar/placement.h"

#include <map>

namespace presto::cstar {

namespace {

const Expr* find_call(const Expr* e) {
  if (e == nullptr) return nullptr;
  if (e->kind == Expr::Kind::kCall) return e;
  if (e->kind == Expr::Kind::kAssign || e->kind == Expr::Kind::kBinary) {
    if (const Expr* c = find_call(e->lhs.get())) return c;
    return find_call(e->rhs.get());
  }
  if (e->kind == Expr::Kind::kUnary) return find_call(e->rhs.get());
  return nullptr;
}

class Placer {
 public:
  Placer(const Cfg& cfg, const DataflowResult& flow,
         const AccessAnalysis& access)
      : cfg_(cfg), flow_(flow), access_(access) {}

  PlacementResult run(FuncDecl& fn) {
    if (fn.body) {
      mark_initial(*fn.body);
      hoist(*fn.body);
      coalesce(*fn.body);
      assign_phases(*fn.body);
    }
    return std::move(result_);
  }

 private:
  struct SubtreeInfo {
    bool has_directive = false;
    bool has_parallel_call = false;
    bool all_home_only = true;  // every parallel call has only home accesses
  };

  // ---- Initial placement (rules 1 and 2) ----------------------------------

  void mark_initial(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kExpr: {
        const Expr* call = find_call(s.expr.get());
        if (call == nullptr) return;
        const auto it = cfg_.call_nodes.find(call);
        if (it == cfg_.call_nodes.end()) return;
        const int node = it->second;
        const auto& acc =
            cfg_.nodes[static_cast<std::size_t>(node)].access;
        std::string reason;
        for (const auto& [inst, bits] : acc) {
          if (has_remote(bits)) {
            reason = "unstructured accesses on '" + inst + "'";
            break;
          }
          if ((bits & kHomeWrite) && flow_.reaches(node, inst)) {
            reason = "owner writes on '" + inst +
                     "' reached by unstructured accesses";
            // keep scanning: a rule-2 reason is more informative
          }
        }
        if (!reason.empty()) {
          s.directive_phase = 0;  // tentative; ids assigned later
          ++result_.calls_needing_schedule;
          reasons_[&s] = reason;
        }
        return;
      }
      case Stmt::Kind::kBlock:
        for (auto& inner : s.body) mark_initial(*inner);
        return;
      case Stmt::Kind::kIf:
        if (s.then_stmt) mark_initial(*s.then_stmt);
        if (s.else_stmt) mark_initial(*s.else_stmt);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        if (s.loop_body) mark_initial(*s.loop_body);
        return;
      default:
        return;
    }
  }

  // ---- Summaries ------------------------------------------------------------

  SubtreeInfo info_of(const Stmt& s) const {
    SubtreeInfo info;
    collect_info(s, info);
    return info;
  }

  void collect_info(const Stmt& s, SubtreeInfo& info) const {
    if (s.directive_phase >= 0) info.has_directive = true;
    switch (s.kind) {
      case Stmt::Kind::kExpr: {
        const Expr* call = find_call(s.expr.get());
        if (call == nullptr) return;
        const auto it = cfg_.call_nodes.find(call);
        if (it == cfg_.call_nodes.end()) return;
        info.has_parallel_call = true;
        for (const auto& [inst, bits] :
             cfg_.nodes[static_cast<std::size_t>(it->second)].access) {
          (void)inst;
          if (has_remote(bits)) info.all_home_only = false;
        }
        return;
      }
      case Stmt::Kind::kBlock:
        for (const auto& inner : s.body) collect_info(*inner, info);
        return;
      case Stmt::Kind::kIf:
        if (s.then_stmt) collect_info(*s.then_stmt, info);
        if (s.else_stmt) collect_info(*s.else_stmt, info);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        if (s.loop_body) collect_info(*s.loop_body, info);
        return;
      default:
        return;
    }
  }

  void clear_directives(Stmt& s) {
    s.directive_phase = -1;
    s.directive_hoisted = false;
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (auto& inner : s.body) clear_directives(*inner);
        return;
      case Stmt::Kind::kIf:
        if (s.then_stmt) clear_directives(*s.then_stmt);
        if (s.else_stmt) clear_directives(*s.else_stmt);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        if (s.loop_body) clear_directives(*s.loop_body);
        return;
      default:
        return;
    }
  }

  // ---- Hoisting (inside-out) -------------------------------------------------

  void hoist(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (auto& inner : s.body) hoist(*inner);
        return;
      case Stmt::Kind::kIf:
        if (s.then_stmt) hoist(*s.then_stmt);
        if (s.else_stmt) hoist(*s.else_stmt);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile: {
        if (s.loop_body) hoist(*s.loop_body);  // innermost loops first
        if (s.loop_body == nullptr) return;
        const SubtreeInfo info = info_of(*s.loop_body);
        if (info.has_directive && info.all_home_only) {
          clear_directives(*s.loop_body);
          s.directive_phase = 0;
          s.directive_hoisted = true;
          reasons_[&s] =
              "schedule hoisted out of a loop containing only home accesses";
        }
        return;
      }
      default:
        return;
    }
  }

  // ---- Coalescing -------------------------------------------------------------

  void coalesce(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        Stmt* prev_directive = nullptr;
        bool calls_since_prev = false;
        for (auto& inner : s.body) {
          coalesce(*inner);  // nested blocks/loops first
          const SubtreeInfo info = info_of(*inner);
          if (inner->directive_phase >= 0) {
            // Only phases that include exclusively home accesses may merge
            // (merging an owner-write phase into an unstructured-read phase
            // would record conflicting marks in one schedule).
            if (prev_directive != nullptr && !calls_since_prev &&
                info.all_home_only &&
                info_of(*prev_directive).all_home_only) {
              // Merge this phase into its neighbour: the earlier directive
              // covers both parallel functions with one schedule.
              reasons_[prev_directive] += "; coalesced with phase at line " +
                                          std::to_string(inner->line);
              inner->directive_phase = -1;
              inner->directive_hoisted = false;
              calls_since_prev = false;
              continue;
            }
            prev_directive = inner.get();
            calls_since_prev = false;
            continue;
          }
          if (info.has_parallel_call) calls_since_prev = true;
        }
        return;
      }
      case Stmt::Kind::kIf:
        if (s.then_stmt) coalesce(*s.then_stmt);
        if (s.else_stmt) coalesce(*s.else_stmt);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        if (s.loop_body) coalesce(*s.loop_body);
        return;
      default:
        return;
    }
  }

  // ---- Final phase numbering ---------------------------------------------------

  void assign_phases(Stmt& s) {
    if (s.directive_phase >= 0) {
      s.directive_phase = next_phase_++;
      Directive d;
      d.phase = s.directive_phase;
      d.stmt = &s;
      d.line = s.line;
      d.hoisted = s.directive_hoisted;
      d.reason = reasons_.count(&s) ? reasons_[&s] : "";
      result_.directives.push_back(std::move(d));
    }
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (auto& inner : s.body) assign_phases(*inner);
        return;
      case Stmt::Kind::kIf:
        if (s.then_stmt) assign_phases(*s.then_stmt);
        if (s.else_stmt) assign_phases(*s.else_stmt);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        if (s.loop_body) assign_phases(*s.loop_body);
        return;
      default:
        return;
    }
  }

  const Cfg& cfg_;
  const DataflowResult& flow_;
  const AccessAnalysis& access_;
  PlacementResult result_;
  std::map<const Stmt*, std::string> reasons_;
  int next_phase_ = 1;
};

}  // namespace

PlacementResult place_directives(FuncDecl& main_fn, const Cfg& cfg,
                                 const DataflowResult& flow,
                                 const AccessAnalysis& access) {
  return Placer(cfg, flow, access).run(main_fn);
}

}  // namespace presto::cstar
