// Sample C**-subset programs used by tests, benches, and examples: the
// paper's Figure 2 stencil, Figure 3 unstructured mesh update, and a model
// of the Barnes-Hut main loop from Figure 4.
#pragma once

namespace presto::cstar::samples {

// Figure 2: 4-point stencil (Jacobi-style red/black driver in main).
inline constexpr const char* kStencil = R"(
aggregate float Grid[][];
Grid a;
Grid b;

parallel void compute(parallel Grid cur, Grid prev) {
  cur(#0, #1) = 0.25 * (prev(#0 - 1, #1) + prev(#0 + 1, #1) +
                        prev(#0, #1 - 1) + prev(#0, #1 + 1));
}

void main() {
  for (int i = 0; i < 100; i = i + 1) {
    compute(a, b);
    compute(b, a);
  }
}
)";

// Figure 3: unstructured bipartite mesh update through edge descriptors.
inline constexpr const char* kUnstructuredMesh = R"(
aggregate Elem Mesh[][];
Mesh primal;
Mesh dual;

parallel void update(parallel Mesh p, Mesh d) {
  int e = 0;
  while (e < p(#0, #1).nedges) {
    p(#0, #1).value += p(#0, #1).edges[e].coeff *
                       d(p(#0, #1).edges[e].row, p(#0, #1).edges[e].col).value;
    e = e + 1;
  }
}

void main() {
  for (int i = 0; i < 10; i = i + 1) {
    update(primal, dual);
    update(dual, primal);
  }
}
)";

// Figure 4: the Barnes-Hut main loop. tree-build and force include
// unstructured accesses to the tree; the center-of-mass loop touches only
// home data, so its per-iteration directive hoists out of the loop; the
// body update has owner writes reached by the force phase's unstructured
// reads.
inline constexpr const char* kBarnesMain = R"(
aggregate Cell Tree[];
aggregate Body Bodies[];
Tree tree;
Bodies bodies;

parallel void build_tree(parallel Tree t, Bodies bod) {
  t(#0).mass = bod(t(#0).first).mass;
  t(t(#0).parent).count += 1;
}

parallel void center_of_mass(parallel Tree t) {
  t(#0).com = t(#0).com + t(#0).mass;
}

parallel void compute_forces(parallel Bodies bod, Tree t) {
  bod(#0).force = t(bod(#0).cell).com * bod(bod(#0).next).mass;
}

parallel void update_bodies(parallel Bodies bod) {
  bod(#0).pos += bod(#0).force;
}

void main() {
  for (int step = 0; step < 3; step = step + 1) {
    build_tree(tree, bodies);
    for (int l = 0; l < 8; l = l + 1) {
      center_of_mass(tree);
    }
    compute_forces(bodies, tree);
    update_bodies(bodies);
  }
}
)";

}  // namespace presto::cstar::samples
