// Hand-written lexer for the C**-subset language.
//
// Supports C-style // and /* */ comments, integer and floating literals,
// identifiers, keywords, and the #k position pseudo-variables of C**
// parallel functions.
#pragma once

#include <string>
#include <vector>

#include "cstar/token.h"

namespace presto::cstar {

// Tokenizes source; on a lexical error, records a diagnostic and resumes.
class Lexer {
 public:
  explicit Lexer(std::string source);

  std::vector<Token> tokenize();
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  char peek(int ahead = 0) const;
  char advance();
  bool at_end() const;
  void skip_ws_and_comments();
  Token make(Tok kind, std::string text = {});
  Token lex_ident_or_keyword();
  Token lex_number();

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  std::vector<std::string> errors_;
};

}  // namespace presto::cstar
