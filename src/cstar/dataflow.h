// Reaching-unstructured-accesses dataflow (paper §4.3).
//
// A forward, any-path (union at joins), iterative bit-vector analysis over
// the sequential CFG: for each Aggregate instance at each program point, the
// bit is set when cached copies of its elements may exist on remote
// processors. Transfer functions at parallel call nodes:
//   1. owner (home) writes kill the bit — remote copies are invalidated;
//   2. unstructured writes kill and gen — the bit stays set;
//   3. unstructured reads gen without killing (multiple readers).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cstar/cfg.h"
#include "util/bitset.h"

namespace presto::cstar {

struct DataflowResult {
  std::map<std::string, std::size_t> instance_bit;  // instance -> bit index
  std::vector<util::Bitset> in;   // per CFG node
  std::vector<util::Bitset> out;  // per CFG node
  int iterations = 0;             // fixpoint iterations (diagnostics)

  bool reaches(int node, const std::string& inst) const {
    const auto it = instance_bit.find(inst);
    return it != instance_bit.end() &&
           in[static_cast<std::size_t>(node)].test(it->second);
  }
};

DataflowResult reaching_unstructured(const Cfg& cfg,
                                     const std::vector<std::string>& instances);

}  // namespace presto::cstar
