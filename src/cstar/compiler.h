// Compiler driver: source text -> lexer -> parser -> access-pattern
// analysis (§4.2) -> sequential CFG -> reaching-unstructured-accesses
// dataflow -> directive placement with hoisting/coalescing (§4.3) ->
// annotated listing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cstar/access_analysis.h"
#include "cstar/ast.h"
#include "cstar/cfg.h"
#include "cstar/dataflow.h"
#include "cstar/placement.h"

namespace presto::cstar {

struct CompileResult {
  std::unique_ptr<Program> program;
  std::unique_ptr<AccessAnalysis> access;
  Cfg cfg;                 // of main, annotated with access bits (Fig. 4a)
  DataflowResult flow;     // reaching unstructured accesses
  PlacementResult placement;
  std::string annotated;   // main with directives (Fig. 4b)
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

CompileResult compile(const std::string& source);

}  // namespace presto::cstar
