#include "cstar/lexer.h"

#include <cctype>
#include <unordered_map>

namespace presto::cstar {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kHashIndex: return "#index";
    case Tok::kAggregate: return "aggregate";
    case Tok::kParallel: return "parallel";
    case Tok::kVoid: return "void";
    case Tok::kInt: return "int";
    case Tok::kFloat: return "float";
    case Tok::kDouble: return "double";
    case Tok::kIf: return "if";
    case Tok::kElse: return "else";
    case Tok::kFor: return "for";
    case Tok::kWhile: return "while";
    case Tok::kReturn: return "return";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kDot: return ".";
    case Tok::kAssign: return "=";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kNot: return "!";
  }
  return "?";
}

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char Lexer::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::at_end() const { return pos_ >= src_.size(); }

void Lexer::skip_ws_and_comments() {
  for (;;) {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
      continue;
    }
    if (peek() == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (!at_end()) {
        advance();
        advance();
      } else {
        errors_.push_back("unterminated block comment at line " +
                          std::to_string(line_));
      }
      continue;
    }
    return;
  }
}

Token Lexer::make(Tok kind, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = line_;
  t.col = col_;
  return t;
}

Token Lexer::lex_ident_or_keyword() {
  static const std::unordered_map<std::string, Tok> kKeywords = {
      {"aggregate", Tok::kAggregate}, {"parallel", Tok::kParallel},
      {"void", Tok::kVoid},           {"int", Tok::kInt},
      {"float", Tok::kFloat},         {"double", Tok::kDouble},
      {"if", Tok::kIf},               {"else", Tok::kElse},
      {"for", Tok::kFor},             {"while", Tok::kWhile},
      {"return", Tok::kReturn},
  };
  std::string s;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_'))
    s += advance();
  const auto it = kKeywords.find(s);
  Token t = make(it != kKeywords.end() ? it->second : Tok::kIdent, s);
  return t;
}

Token Lexer::lex_number() {
  std::string s;
  while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.'))
    s += advance();
  Token t = make(Tok::kNumber, s);
  t.value = std::strtoll(s.c_str(), nullptr, 10);
  return t;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    skip_ws_and_comments();
    if (at_end()) {
      out.push_back(make(Tok::kEof));
      return out;
    }
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(lex_ident_or_keyword());
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lex_number());
      continue;
    }
    if (c == '#') {
      advance();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        errors_.push_back("expected digit after '#' at line " +
                          std::to_string(line_));
        continue;
      }
      Token t = lex_number();
      t.kind = Tok::kHashIndex;
      out.push_back(t);
      continue;
    }
    advance();
    switch (c) {
      case '(': out.push_back(make(Tok::kLParen)); break;
      case ')': out.push_back(make(Tok::kRParen)); break;
      case '{': out.push_back(make(Tok::kLBrace)); break;
      case '}': out.push_back(make(Tok::kRBrace)); break;
      case '[': out.push_back(make(Tok::kLBracket)); break;
      case ']': out.push_back(make(Tok::kRBracket)); break;
      case ',': out.push_back(make(Tok::kComma)); break;
      case ';': out.push_back(make(Tok::kSemi)); break;
      case '.': out.push_back(make(Tok::kDot)); break;
      case '+':
        out.push_back(peek() == '=' ? (advance(), make(Tok::kPlusAssign))
                                    : make(Tok::kPlus));
        break;
      case '-':
        out.push_back(peek() == '=' ? (advance(), make(Tok::kMinusAssign))
                                    : make(Tok::kMinus));
        break;
      case '*': out.push_back(make(Tok::kStar)); break;
      case '/': out.push_back(make(Tok::kSlash)); break;
      case '%': out.push_back(make(Tok::kPercent)); break;
      case '=':
        out.push_back(peek() == '=' ? (advance(), make(Tok::kEq))
                                    : make(Tok::kAssign));
        break;
      case '!':
        out.push_back(peek() == '=' ? (advance(), make(Tok::kNe))
                                    : make(Tok::kNot));
        break;
      case '<':
        out.push_back(peek() == '=' ? (advance(), make(Tok::kLe))
                                    : make(Tok::kLt));
        break;
      case '>':
        out.push_back(peek() == '=' ? (advance(), make(Tok::kGe))
                                    : make(Tok::kGt));
        break;
      case '&':
        if (peek() == '&') {
          advance();
          out.push_back(make(Tok::kAndAnd));
        } else {
          errors_.push_back("stray '&' at line " + std::to_string(line_));
        }
        break;
      case '|':
        if (peek() == '|') {
          advance();
          out.push_back(make(Tok::kOrOr));
        } else {
          errors_.push_back("stray '|' at line " + std::to_string(line_));
        }
        break;
      default:
        errors_.push_back(std::string("unexpected character '") + c +
                          "' at line " + std::to_string(line_));
        break;
    }
  }
}

}  // namespace presto::cstar
