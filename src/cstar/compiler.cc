#include "cstar/compiler.h"

#include "cstar/lexer.h"
#include "cstar/parser.h"
#include "cstar/printer.h"

namespace presto::cstar {

CompileResult compile(const std::string& source) {
  CompileResult r;

  Lexer lexer(source);
  auto tokens = lexer.tokenize();
  r.errors.insert(r.errors.end(), lexer.errors().begin(),
                  lexer.errors().end());

  Parser parser(std::move(tokens));
  r.program = parser.parse();
  r.errors.insert(r.errors.end(), parser.errors().begin(),
                  parser.errors().end());
  if (!r.errors.empty()) return r;

  r.access = std::make_unique<AccessAnalysis>(*r.program);
  r.errors.insert(r.errors.end(), r.access->errors().begin(),
                  r.access->errors().end());

  FuncDecl* main_fn = nullptr;
  for (auto& f : r.program->functions)
    if (f.name == "main" && !f.parallel) main_fn = &f;
  if (main_fn == nullptr) {
    r.errors.push_back("no sequential 'main' function");
    return r;
  }

  r.cfg = build_cfg(*main_fn, *r.access);
  r.flow = reaching_unstructured(r.cfg, r.access->instances());
  r.placement = place_directives(*main_fn, r.cfg, r.flow, *r.access);
  r.annotated = print_function(*main_fn);
  return r;
}

}  // namespace presto::cstar
