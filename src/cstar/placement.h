// Directive placement (paper §4.3).
//
// A parallel call needs a communication schedule and a preceding predictive
// protocol phase directive when
//   1. it is reached by unstructured accesses and includes owner (home)
//      writes — its writes will invalidate remotely cached copies, which
//      the presend phase can pre-invalidate — or
//   2. it includes unstructured accesses itself.
//
// Two optimizations from the paper then run inside-out over the program
// structure: directives whose loop bodies contain only home accesses are
// hoisted out of the loop (one directive before the loop instead of one per
// iteration — Fig. 4's single directive for the center-of-mass phase), and
// neighbouring phases that include only home accesses are coalesced with
// their neighbour, amortizing protocol overhead across parallel functions.
#pragma once

#include <string>
#include <vector>

#include "cstar/ast.h"
#include "cstar/cfg.h"
#include "cstar/dataflow.h"

namespace presto::cstar {

struct Directive {
  int phase = -1;
  const Stmt* stmt = nullptr;  // directive immediately precedes this stmt
  int line = 0;
  bool hoisted = false;        // placed on a loop after hoisting
  std::string reason;
};

struct PlacementResult {
  std::vector<Directive> directives;
  int calls_needing_schedule = 0;  // before hoisting/coalescing
};

// Annotates main's statements (directive_phase / directive_hoisted) and
// returns the directive table.
PlacementResult place_directives(FuncDecl& main_fn, const Cfg& cfg,
                                 const DataflowResult& flow,
                                 const AccessAnalysis& access);

}  // namespace presto::cstar
