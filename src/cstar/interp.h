// C**-subset interpreter: executes a compiled program against the simulated
// DSM runtime, closing the loop from source to machine. The compiler's
// directive placement drives the predictive protocol: every statement
// annotated with `directive_phase` issues the phase directive before it runs.
//
// SPMD lowering (what the real C** compiler emitted):
//   * Aggregate instances become runtime Aggregates (block / row-block
//     distributed, page-aligned).
//   * Sequential statements in main execute redundantly on every node
//     (locals are per-node and stay identical — the data-parallel model).
//   * A parallel call executes its body once per owned element on the
//     element's owner, with #0/#1 bound to the element position, followed
//     by an implicit global barrier.
//
// Supported element types: int, float, double (Figure-2-style programs;
// struct elements as in Figure 3 are analyzable but not executable).
// Out-of-range neighbour indices clamp to the boundary.
#pragma once

#include <map>
#include <string>

#include "cstar/compiler.h"
#include "runtime/system.h"

namespace presto::cstar {

struct InterpOptions {
  // Apply the compiler-placed predictive-protocol directives (they are
  // no-ops unless the System runs the predictive protocol).
  bool use_directives = true;
  // Simulated cost per interpreted arithmetic operation.
  sim::Time op_cost = 30;
};

struct InterpResult {
  // Per-aggregate checksum (sum of all elements) after main returns.
  std::map<std::string, double> checksums;
  stats::Report report;
};

// Runs the compiled program's main on the given machine/protocol. The
// CompileResult must be ok() and is not modified. Aborts on unsupported
// constructs (aggregate element types other than scalars, calls to
// undefined functions).
InterpResult interpret(const CompileResult& compiled,
                       const runtime::MachineConfig& machine,
                       runtime::ProtocolKind kind,
                       const InterpOptions& options = {});

}  // namespace presto::cstar
