#include "cstar/parser.h"

namespace presto::cstar {

namespace {
std::unique_ptr<Expr> make_expr(Expr::Kind k, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = k;
  e->line = line;
  return e;
}
std::unique_ptr<Stmt> make_stmt(Stmt::Kind k, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = k;
  s->line = line;
  return s;
}
}  // namespace

Parser::Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < toks_.size() ? toks_[i] : toks_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok t) {
  if (!check(t)) return false;
  advance();
  return true;
}

bool Parser::expect(Tok t, const char* what) {
  if (match(t)) return true;
  error(std::string("expected '") + tok_name(t) + "' " + what + ", got '" +
        tok_name(peek().kind) + "'");
  return false;
}

void Parser::error(const std::string& msg) {
  errors_.push_back("line " + std::to_string(peek().line) + ": " + msg);
}

void Parser::synchronize() {
  while (!check(Tok::kEof) && !check(Tok::kSemi) && !check(Tok::kRBrace))
    advance();
  match(Tok::kSemi);
}

bool Parser::is_type_token(const Token& t) const {
  return t.kind == Tok::kVoid || t.kind == Tok::kInt ||
         t.kind == Tok::kFloat || t.kind == Tok::kDouble ||
         t.kind == Tok::kIdent;
}

std::string Parser::parse_type_name() {
  const Token& t = advance();
  switch (t.kind) {
    case Tok::kVoid: return "void";
    case Tok::kInt: return "int";
    case Tok::kFloat: return "float";
    case Tok::kDouble: return "double";
    case Tok::kIdent: return t.text;
    default:
      error("expected type name");
      return "<error>";
  }
}

std::unique_ptr<Program> Parser::parse() {
  auto prog = std::make_unique<Program>();
  while (!check(Tok::kEof)) {
    if (match(Tok::kAggregate)) {
      parse_aggregate_decl(*prog);
    } else if (match(Tok::kParallel)) {
      parse_func_or_global(*prog, /*parallel=*/true);
    } else if (is_type_token(peek())) {
      parse_func_or_global(*prog, /*parallel=*/false);
    } else {
      error("expected declaration");
      synchronize();
    }
  }
  return prog;
}

// aggregate <elem-type> <Name> ('[' ']')+ ';'
void Parser::parse_aggregate_decl(Program& prog) {
  AggregateDecl d;
  d.line = peek().line;
  d.elem_type = parse_type_name();
  if (!check(Tok::kIdent)) {
    error("expected aggregate type name");
    synchronize();
    return;
  }
  d.name = advance().text;
  while (match(Tok::kLBracket)) {
    expect(Tok::kRBracket, "closing aggregate dimension");
    ++d.dims;
  }
  if (d.dims == 0) error("aggregate needs at least one dimension");
  expect(Tok::kSemi, "after aggregate declaration");
  prog.aggregates.push_back(std::move(d));
}

// <type> <name> '(' ... ')' body | <type> <name> ';' (global instance)
void Parser::parse_func_or_global(Program& prog, bool parallel) {
  const std::string type = parse_type_name();
  if (!check(Tok::kIdent)) {
    error("expected name after type");
    synchronize();
    return;
  }
  const Token& name_tok = advance();
  if (check(Tok::kLParen)) {
    prog.functions.push_back(parse_function(parallel, type, name_tok.text));
    return;
  }
  if (parallel) error("'parallel' only applies to functions");
  GlobalVar g;
  g.type = type;
  g.name = name_tok.text;
  g.line = name_tok.line;
  expect(Tok::kSemi, "after global declaration");
  prog.globals.push_back(std::move(g));
}

FuncDecl Parser::parse_function(bool parallel, std::string ret_type,
                                std::string name) {
  FuncDecl f;
  f.parallel = parallel;
  f.ret_type = std::move(ret_type);
  f.name = std::move(name);
  f.line = peek().line;
  expect(Tok::kLParen, "after function name");
  if (!check(Tok::kRParen)) {
    do {
      Param p;
      p.parallel = match(Tok::kParallel);
      p.type = parse_type_name();
      if (check(Tok::kIdent)) {
        p.name = advance().text;
      } else {
        error("expected parameter name");
      }
      f.params.push_back(std::move(p));
    } while (match(Tok::kComma));
  }
  expect(Tok::kRParen, "after parameters");
  f.body = parse_block();
  return f;
}

std::unique_ptr<Stmt> Parser::parse_block() {
  auto s = make_stmt(Stmt::Kind::kBlock, peek().line);
  expect(Tok::kLBrace, "to open block");
  while (!check(Tok::kRBrace) && !check(Tok::kEof)) {
    auto inner = parse_stmt();
    if (inner) s->body.push_back(std::move(inner));
  }
  expect(Tok::kRBrace, "to close block");
  return s;
}

std::unique_ptr<Stmt> Parser::parse_stmt() {
  if (check(Tok::kLBrace)) return parse_block();
  if (match(Tok::kIf)) return parse_if();
  if (match(Tok::kFor)) return parse_for();
  if (match(Tok::kWhile)) return parse_while();
  if (match(Tok::kReturn)) {
    auto s = make_stmt(Stmt::Kind::kReturn, peek().line);
    if (!check(Tok::kSemi)) s->expr = parse_expr();
    expect(Tok::kSemi, "after return");
    return s;
  }
  // Variable declaration: <type> <ident> ... — disambiguate from an
  // expression by requiring ident ident.
  if (is_type_token(peek()) && peek(1).kind == Tok::kIdent &&
      (peek().kind != Tok::kIdent || peek(1).kind == Tok::kIdent)) {
    // "ident ident" or "int/float/double ident"
    if (peek().kind != Tok::kIdent ||
        (peek(1).kind == Tok::kIdent &&
         (peek(2).kind == Tok::kAssign || peek(2).kind == Tok::kSemi))) {
      const std::string type = parse_type_name();
      return parse_var_decl(type);
    }
  }
  auto s = make_stmt(Stmt::Kind::kExpr, peek().line);
  s->expr = parse_expr();
  expect(Tok::kSemi, "after expression");
  return s;
}

std::unique_ptr<Stmt> Parser::parse_var_decl(std::string type) {
  auto s = make_stmt(Stmt::Kind::kVarDecl, peek().line);
  s->var_type = std::move(type);
  if (check(Tok::kIdent))
    s->var_name = advance().text;
  else
    error("expected variable name");
  if (match(Tok::kAssign)) s->expr = parse_expr();
  expect(Tok::kSemi, "after variable declaration");
  return s;
}

std::unique_ptr<Stmt> Parser::parse_if() {
  auto s = make_stmt(Stmt::Kind::kIf, peek().line);
  expect(Tok::kLParen, "after 'if'");
  s->expr = parse_expr();
  expect(Tok::kRParen, "after if condition");
  s->then_stmt = parse_stmt();
  if (match(Tok::kElse)) s->else_stmt = parse_stmt();
  return s;
}

std::unique_ptr<Stmt> Parser::parse_for() {
  auto s = make_stmt(Stmt::Kind::kFor, peek().line);
  expect(Tok::kLParen, "after 'for'");
  if (!check(Tok::kSemi)) {
    if (is_type_token(peek()) && peek(1).kind == Tok::kIdent &&
        peek().kind != Tok::kIdent) {
      const std::string type = parse_type_name();
      s->for_init = parse_var_decl(type);  // consumes the ';'
    } else if (peek().kind == Tok::kIdent && peek(1).kind == Tok::kIdent) {
      const std::string type = parse_type_name();
      s->for_init = parse_var_decl(type);
    } else {
      auto init = make_stmt(Stmt::Kind::kExpr, peek().line);
      init->expr = parse_expr();
      expect(Tok::kSemi, "after for initializer");
      s->for_init = std::move(init);
    }
  } else {
    advance();  // empty initializer
  }
  if (!check(Tok::kSemi)) s->for_cond = parse_expr();
  expect(Tok::kSemi, "after for condition");
  if (!check(Tok::kRParen)) s->for_step = parse_expr();
  expect(Tok::kRParen, "after for clauses");
  s->loop_body = parse_stmt();
  return s;
}

std::unique_ptr<Stmt> Parser::parse_while() {
  auto s = make_stmt(Stmt::Kind::kWhile, peek().line);
  expect(Tok::kLParen, "after 'while'");
  s->expr = parse_expr();
  expect(Tok::kRParen, "after while condition");
  s->loop_body = parse_stmt();
  return s;
}

// ---- Expressions ------------------------------------------------------------

std::unique_ptr<Expr> Parser::parse_expr() { return parse_assignment(); }

std::unique_ptr<Expr> Parser::parse_assignment() {
  auto lhs = parse_or();
  if (check(Tok::kAssign) || check(Tok::kPlusAssign) ||
      check(Tok::kMinusAssign)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kAssign, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_assignment();
    return e;
  }
  return lhs;
}

namespace {
using ParseFn = std::unique_ptr<Expr> (Parser::*)();
}

std::unique_ptr<Expr> Parser::parse_or() {
  auto lhs = parse_and();
  while (check(Tok::kOrOr)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kBinary, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_and();
    lhs = std::move(e);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_and() {
  auto lhs = parse_equality();
  while (check(Tok::kAndAnd)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kBinary, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_equality();
    lhs = std::move(e);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_equality() {
  auto lhs = parse_relational();
  while (check(Tok::kEq) || check(Tok::kNe)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kBinary, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_relational();
    lhs = std::move(e);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_relational() {
  auto lhs = parse_additive();
  while (check(Tok::kLt) || check(Tok::kGt) || check(Tok::kLe) ||
         check(Tok::kGe)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kBinary, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_additive();
    lhs = std::move(e);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_additive() {
  auto lhs = parse_multiplicative();
  while (check(Tok::kPlus) || check(Tok::kMinus)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kBinary, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_multiplicative();
    lhs = std::move(e);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_multiplicative() {
  auto lhs = parse_unary();
  while (check(Tok::kStar) || check(Tok::kSlash) || check(Tok::kPercent)) {
    const Tok op = advance().kind;
    auto e = make_expr(Expr::Kind::kBinary, lhs->line);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_unary();
    lhs = std::move(e);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_unary() {
  if (check(Tok::kMinus) || check(Tok::kNot)) {
    const Token& t = advance();
    auto e = make_expr(Expr::Kind::kUnary, t.line);
    e->op = t.kind;
    e->rhs = parse_unary();
    return e;
  }
  return parse_postfix();
}

std::unique_ptr<Expr> Parser::parse_postfix() {
  auto e = parse_primary();
  for (;;) {
    if (match(Tok::kDot)) {
      auto m = make_expr(Expr::Kind::kMember, e->line);
      if (check(Tok::kIdent))
        m->name = advance().text;
      else
        error("expected member name after '.'");
      m->lhs = std::move(e);
      e = std::move(m);
      continue;
    }
    if (match(Tok::kLBracket)) {
      auto idx = make_expr(Expr::Kind::kIndex, e->line);
      idx->lhs = std::move(e);
      idx->args.push_back(parse_expr());
      expect(Tok::kRBracket, "after index");
      e = std::move(idx);
      continue;
    }
    break;
  }
  return e;
}

std::unique_ptr<Expr> Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::kNumber: {
      advance();
      auto e = make_expr(Expr::Kind::kNumber, t.line);
      e->num = std::strtod(t.text.c_str(), nullptr);
      return e;
    }
    case Tok::kHashIndex: {
      advance();
      auto e = make_expr(Expr::Kind::kHashIndex, t.line);
      e->hash_index = static_cast<int>(t.value);
      return e;
    }
    case Tok::kIdent: {
      advance();
      if (check(Tok::kLParen)) {
        advance();
        auto e = make_expr(Expr::Kind::kCall, t.line);
        e->name = t.text;
        if (!check(Tok::kRParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (match(Tok::kComma));
        }
        expect(Tok::kRParen, "after arguments");
        return e;
      }
      auto e = make_expr(Expr::Kind::kVar, t.line);
      e->name = t.text;
      return e;
    }
    case Tok::kLParen: {
      advance();
      auto e = parse_expr();
      expect(Tok::kRParen, "after parenthesized expression");
      return e;
    }
    default:
      error(std::string("unexpected token '") + tok_name(t.kind) +
            "' in expression");
      advance();
      return make_expr(Expr::Kind::kNumber, t.line);
  }
}

}  // namespace presto::cstar
