// Control-flow graph of the sequential program (main), with parallel call
// sites annotated by their resolved Aggregate access bits — Figure 4(a) of
// the paper.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cstar/access_analysis.h"
#include "cstar/ast.h"

namespace presto::cstar {

struct CfgNode {
  enum class Kind { kEntry, kExit, kStmt, kCall };

  int id = -1;
  Kind kind = Kind::kStmt;
  const Stmt* stmt = nullptr;   // owning statement (kStmt/kCall)
  const Expr* call = nullptr;   // the parallel call expression (kCall)
  std::string label;
  std::map<std::string, unsigned> access;  // instance -> AccessBit mask
  std::vector<int> succ;
  std::vector<int> pred;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = -1;
  int exit = -1;
  std::map<const Expr*, int> call_nodes;  // call expr -> node id

  std::string to_string() const;  // printable adjacency + annotations
};

// Builds the CFG of `fn` (normally main). Statements containing a parallel
// call become kCall nodes carrying resolved access bits; everything else
// lowers to kStmt nodes (or pure structure).
Cfg build_cfg(const FuncDecl& fn, const AccessAnalysis& access);

}  // namespace presto::cstar
