// Tokens for the C**-subset language (paper §4.1).
#pragma once

#include <cstdint>
#include <string>

namespace presto::cstar {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kNumber,
  kHashIndex,  // #0, #1 — position pseudo-variables within an Aggregate
  // Keywords.
  kAggregate,
  kParallel,
  kVoid,
  kInt,
  kFloat,
  kDouble,
  kIf,
  kElse,
  kFor,
  kWhile,
  kReturn,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kDot,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier spelling / number literal
  std::int64_t value = 0;  // numeric value (kNumber, kHashIndex)
  int line = 0;
  int col = 0;
};

const char* tok_name(Tok t);

}  // namespace presto::cstar
