#include "cstar/dataflow.h"

#include <deque>

namespace presto::cstar {

DataflowResult reaching_unstructured(
    const Cfg& cfg, const std::vector<std::string>& instances) {
  DataflowResult r;
  for (std::size_t i = 0; i < instances.size(); ++i)
    r.instance_bit[instances[i]] = i;
  const std::size_t nbits = instances.size();
  r.in.assign(cfg.nodes.size(), util::Bitset(nbits));
  r.out.assign(cfg.nodes.size(), util::Bitset(nbits));

  auto transfer = [&](const CfgNode& n, const util::Bitset& in) {
    util::Bitset out = in;
    for (const auto& [inst, bits] : n.access) {
      const auto it = r.instance_bit.find(inst);
      if (it == r.instance_bit.end()) continue;
      if (has_remote(bits)) {
        out.set(it->second);  // rules 2 & 3: gen (kill+gen for writes)
      } else if (bits & kHomeWrite) {
        out.reset(it->second);  // rule 1: owner writes invalidate copies
      }
    }
    return out;
  };

  // Worklist iteration to fixpoint.
  std::deque<int> work;
  std::vector<bool> queued(cfg.nodes.size(), false);
  for (const auto& n : cfg.nodes) {
    work.push_back(n.id);
    queued[static_cast<std::size_t>(n.id)] = true;
  }
  while (!work.empty()) {
    const int id = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(id)] = false;
    ++r.iterations;
    const CfgNode& n = cfg.nodes[static_cast<std::size_t>(id)];

    util::Bitset in(nbits);
    for (int p : n.pred) in.union_with(r.out[static_cast<std::size_t>(p)]);
    r.in[static_cast<std::size_t>(id)] = in;
    util::Bitset out = transfer(n, in);
    if (!(out == r.out[static_cast<std::size_t>(id)])) {
      r.out[static_cast<std::size_t>(id)] = std::move(out);
      for (int s : n.succ) {
        if (!queued[static_cast<std::size_t>(s)]) {
          queued[static_cast<std::size_t>(s)] = true;
          work.push_back(s);
        }
      }
    }
  }
  return r;
}

}  // namespace presto::cstar
