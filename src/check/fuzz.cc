#include "check/fuzz.h"

#include <cstring>
#include <sstream>

#include "check/bughook.h"
#include "check/oracle.h"
#include "runtime/lock.h"
#include "runtime/system.h"
#include "util/check.h"
#include "util/rng.h"

namespace presto::check {
namespace {

// Deterministic nonzero value for the write of (round, phase, block) — a
// pure function of the program seed so a shrunk program stays
// self-consistent (indices re-derive the same values).
std::uint32_t cell_value(std::uint64_t salt, int r, int p, int b) {
  std::uint64_t s = salt;
  s ^= (static_cast<std::uint64_t>(r) + 1) * 0x9e3779b97f4a7c15ULL;
  s ^= (static_cast<std::uint64_t>(p) + 1) * 0xbf58476d1ce4e5b9ULL;
  s ^= (static_cast<std::uint64_t>(b) + 1) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>(util::splitmix64(s)) | 1u;
}

// Commutative delta pushed by logical participant `lid` into cc block b in
// (round, phase) — 0 means that (node, block) pair sits the phase out. Pure
// in the program seed, so the host-side expectation and the in-fiber adds
// derive identical values and a shrunk program stays self-consistent.
std::int64_t cc_delta(std::uint64_t salt, int r, int p, int b, int lid) {
  std::uint64_t s = salt ^ 0xcccccccccccccccdULL;
  s ^= (static_cast<std::uint64_t>(r) + 1) * 0x9e3779b97f4a7c15ULL;
  s ^= (static_cast<std::uint64_t>(p) + 1) * 0xbf58476d1ce4e5b9ULL;
  s ^= (static_cast<std::uint64_t>(b) + 1) * 0x94d049bb133111ebULL;
  s ^= (static_cast<std::uint64_t>(lid) + 1) * 0xd6e8feb86659fd93ULL;
  const std::uint64_t h = util::splitmix64(s);
  if (h % 4 == 0) return 0;
  return static_cast<std::int64_t>((h >> 8) % 2001) - 1000;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Sets a bug hook for the duration of a differential run and always clears
// it on exit (the hooks are process-global).
class BugScope {
 public:
  explicit BugScope(const std::string& name) : name_(name) {
    if (!name_.empty()) set_bug_hook(name_.c_str(), true);
  }
  ~BugScope() {
    if (!name_.empty()) set_bug_hook(name_.c_str(), false);
  }
  BugScope(const BugScope&) = delete;
  BugScope& operator=(const BugScope&) = delete;

 private:
  std::string name_;
};

}  // namespace

int participant_count(const FuzzProgram& prog) {
  return prog.participants == 0 ? prog.nodes : prog.participants;
}

int participant_node(const FuzzProgram& prog, int i) {
  if (prog.participants == 0) return i;
  // Spread participants across the whole machine, pinning the last one to
  // node `nodes - 1` so wide shapes always touch spill-range ids (>= 64).
  return static_cast<int>(static_cast<std::int64_t>(i) *
                          (prog.nodes - 1) / (prog.participants - 1));
}

FuzzProgram generate(std::uint64_t seed) {
  std::uint64_t sm = seed;
  util::Rng rng(util::splitmix64(sm));
  FuzzProgram prog;
  prog.seed = seed;
  // Most seeds exercise dense small machines; ~1 in 8 runs the same phase
  // structure on a wide (>= 128-node) machine with a few spread-out
  // participants, driving the hybrid NodeSet / sparse-channel spill paths.
  if (rng.next_below_unbiased(8) == 0) {
    const int widths[] = {128, 192, 256};
    prog.nodes = widths[rng.next_below_unbiased(3)];
    prog.participants = 2 + static_cast<int>(rng.next_below_unbiased(4));
  } else {
    prog.nodes = 2 + static_cast<int>(rng.next_below_unbiased(4));   // 2..5
  }
  const int np = participant_count(prog);
  const std::uint32_t sizes[] = {32, 64, 128};
  prog.block_size = sizes[rng.next_below_unbiased(3)];
  prog.nblocks = 4 + static_cast<int>(rng.next_below_unbiased(21));  // 4..24
  const int phases = 1 + static_cast<int>(rng.next_below_unbiased(3));
  const int rounds = 2 + static_cast<int>(rng.next_below_unbiased(3));
  prog.use_locks = rng.next_below_unbiased(4) == 0;
  const bool use_reducers = rng.next_below_unbiased(4) == 0;
  // Commutative phases model reduction applications (ranker's push): ~1 in 4
  // programs pushes privatized adds, exercising ccached's log/merge paths —
  // and the degraded remote rmw storm under every other protocol.
  const bool use_cc = rng.next_below_unbiased(4) == 0;
  // Drifting assignments model adaptive applications (the schedule changes
  // between rounds, so the predictive protocol keeps mispredicting — it must
  // stay correct anyway).
  const bool drift = rng.next_below_unbiased(5) < 2;

  const auto nb = static_cast<std::size_t>(prog.nblocks);
  std::vector<FuzzPhase> base(static_cast<std::size_t>(phases));
  for (auto& ph : base) {
    ph.writer.assign(nb, -1);
    ph.reader_mask.assign(nb, 0);
    for (std::size_t b = 0; b < nb; ++b) {
      if (rng.next_below_unbiased(2) == 0)
        ph.writer[b] = static_cast<int>(
            rng.next_below_unbiased(static_cast<std::uint64_t>(np)));
      std::uint64_t mask = 0;
      for (int n = 0; n < np; ++n)
        if (rng.next_below_unbiased(10) < 3) mask |= 1ULL << n;
      ph.reader_mask[b] = mask;
    }
    if (prog.use_locks && rng.next_below_unbiased(2) == 0)
      for (int n = 0; n < np; ++n)
        if (rng.next_below_unbiased(10) < 3) ph.lock_users |= 1ULL << n;
    ph.reduce = use_reducers && rng.next_below_unbiased(2) == 0;
    if (use_cc && rng.next_below_unbiased(2) == 0)
      for (int n = 0; n < np; ++n)
        if (rng.next_below_unbiased(10) < 4) ph.cc_mask |= 1ULL << n;
  }

  for (int r = 0; r < rounds; ++r) {
    if (drift && r > 0) {
      // Mutate one assignment per phase; mutations accumulate round over
      // round (base is updated in place).
      for (auto& ph : base) {
        const std::size_t b = rng.next_below_unbiased(nb);
        ph.writer[b] =
            rng.next_below_unbiased(3) == 0
                ? -1
                : static_cast<int>(rng.next_below_unbiased(
                      static_cast<std::uint64_t>(np)));
        std::uint64_t mask = 0;
        for (int n = 0; n < np; ++n)
          if (rng.next_below_unbiased(10) < 3) mask |= 1ULL << n;
        ph.reader_mask[b] = mask;
      }
    }
    FuzzRound rd;
    rd.phases = base;
    prog.rounds.push_back(std::move(rd));
  }
  return prog;
}

bool has_commutative(const FuzzProgram& prog) {
  for (const auto& rd : prog.rounds)
    for (const auto& ph : rd.phases)
      if (ph.cc_mask != 0) return true;
  return false;
}

bool supports_write_update(const FuzzProgram& prog) {
  if (has_commutative(prog)) return false;  // rmw on a stale copy loses adds
  std::vector<int> writer(static_cast<std::size_t>(prog.nblocks), -1);
  for (const auto& rd : prog.rounds) {
    for (const auto& ph : rd.phases) {
      if (ph.lock_users != 0) return false;  // updates cannot mutually exclude
      for (std::size_t b = 0; b < ph.writer.size(); ++b) {
        const int w = ph.writer[b];
        if (w < 0) continue;
        if (writer[b] < 0)
          writer[b] = w;
        else if (writer[b] != w)
          return false;  // write-update assumes a stable owner per block
      }
    }
  }
  return true;
}

RunResult run_program(const FuzzProgram& prog, runtime::ProtocolKind kind,
                      const net::NetConfig& net, TraceCapture* capture,
                      sim::Backend backend, sim::Time window, int workers,
                      int batch_windows) {
  using runtime::NodeCtx;
  PRESTO_CHECK(kind != runtime::ProtocolKind::kWriteUpdate ||
                   supports_write_update(prog),
               "program not meaningful under write-update");
  BugScope bug(prog.injected_bug);

  runtime::MachineConfig m =
      runtime::MachineConfig::cm5_blizzard(prog.nodes, prog.block_size);
  m.mem.page_size = 512;  // small pages spread homes across nodes
  m.net = net;
  m.backend = backend;
  m.window = window;
  m.workers = workers;
  m.batch_windows = batch_windows;
  m.trace.enabled = capture != nullptr;  // in-memory only
  runtime::System sys(m, kind);
  Oracle& oracle = sys.enable_oracle(FailMode::kRecord);
  // Fuzz programs are phase-synchronized (write -> publish -> barrier ->
  // read), so per-read data-value checking is sound even under phase
  // consistency.
  oracle.set_strict_reads(true);

  const auto nb = static_cast<std::size_t>(prog.nblocks);
  const mem::Addr base =
      sys.space().alloc(nb * prog.block_size, [&](mem::PageId p) {
        return static_cast<int>(p % static_cast<mem::PageId>(prog.nodes));
      });
  runtime::SharedLock lock;
  mem::Addr counter = 0;
  if (prog.use_locks) {
    lock = runtime::SharedLock::create(sys.space(), 0);
    counter = sys.space().arena_alloc(0, sizeof(std::uint64_t),
                                      /*align=*/prog.block_size);
  }
  auto addr = [&](std::size_t b) {
    return base + static_cast<mem::Addr>(b) * prog.block_size;
  };
  // Commutative (reduction) region: one 64-bit accumulator per block,
  // allocated only for programs with cc phases so every other program's
  // memory layout — and therefore its golden behavior — is untouched.
  const bool cc = has_commutative(prog);
  mem::Addr cc_base = 0;
  std::vector<std::int64_t> cc_expect(nb, 0);
  if (cc) {
    cc_base = sys.space().alloc(nb * prog.block_size, [&](mem::PageId p) {
      return static_cast<int>(p % static_cast<mem::PageId>(prog.nodes));
    });
    sys.space().set_commutative(cc_base, nb * prog.block_size);
    // Host-side expectation, precomputed so the fibers never touch shared
    // host state: blocks start zero and addition commutes.
    for (std::size_t r = 0; r < prog.rounds.size(); ++r)
      for (std::size_t p = 0; p < prog.rounds[r].phases.size(); ++p) {
        const std::uint64_t mask = prog.rounds[r].phases[p].cc_mask;
        for (int lid = 0; lid < participant_count(prog); ++lid) {
          if (!(mask >> lid & 1)) continue;
          for (std::size_t b = 0; b < nb; ++b)
            cc_expect[b] += cc_delta(prog.seed, static_cast<int>(r),
                                     static_cast<int>(p),
                                     static_cast<int>(b), lid);
        }
      }
  }
  auto cc_addr = [&](std::size_t b) {
    return cc_base + static_cast<mem::Addr>(b) * prog.block_size;
  };
  auto* wu = sys.writeupdate();

  std::vector<std::uint32_t> ref(nb, 0);  // host-side ground truth
  RunResult out;

  // Physical node -> logical participant id (-1 = barriers/reduces only).
  // With participants == 0 this is the identity, so classic dense programs
  // behave exactly as before; wide shapes index writer/reader_mask/lock_users
  // by the logical id, which always fits the one-word masks.
  std::vector<int> logical_of(static_cast<std::size_t>(prog.nodes), -1);
  for (int i = 0; i < participant_count(prog); ++i)
    logical_of[static_cast<std::size_t>(participant_node(prog, i))] = i;

  sys.run([&](NodeCtx& c) {
    const int lid = logical_of[static_cast<std::size_t>(c.id())];
    for (std::size_t r = 0; r < prog.rounds.size(); ++r) {
      const auto& rd = prog.rounds[r];
      for (std::size_t p = 0; p < rd.phases.size(); ++p) {
        const auto& ph = rd.phases[p];
        // Writes and reads get separate phase ids (2p, 2p+1): the
        // producer/consumer separation the compiler's directive placement
        // produces.
        c.phase(2 * static_cast<int>(p));
        for (std::size_t b = 0; lid >= 0 && b < nb; ++b) {
          if (ph.writer[b] != lid) continue;
          const std::uint32_t v = cell_value(prog.seed, static_cast<int>(r),
                                             static_cast<int>(p),
                                             static_cast<int>(b));
          c.write<std::uint32_t>(addr(b), v);
          ref[b] = v;
        }
        if (wu != nullptr && lid >= 0)
          for (std::size_t b = 0; b < nb; ++b)
            if (ph.writer[b] == lid)
              wu->wu_publish(c.id(), addr(b), prog.block_size);
        c.barrier();
        c.phase(2 * static_cast<int>(p) + 1);
        for (std::size_t b = 0; lid >= 0 && b < nb; ++b) {
          if (!(ph.reader_mask[b] >> lid & 1)) continue;
          if (c.read<std::uint32_t>(addr(b)) != ref[b]) ++out.read_mismatches;
        }
        c.barrier();
        if (ph.cc_mask != 0) {
          // Commutative push: every masked participant privatizes its adds,
          // then ALL nodes flush and barrier before anyone reads the region
          // (the ccached discipline; a no-op flush under other protocols,
          // where cc_add degraded to an immediate remote rmw).
          if (lid >= 0 && (ph.cc_mask >> lid & 1)) {
            for (std::size_t b = 0; b < nb; ++b) {
              const std::int64_t d =
                  cc_delta(prog.seed, static_cast<int>(r),
                           static_cast<int>(p), static_cast<int>(b), lid);
              if (d != 0) c.cc_add(cc_addr(b), d);
            }
          }
          if (lid >= 0) c.cc_flush();
          c.barrier();
        }
        if (prog.use_locks) {
          if (lid >= 0 && (ph.lock_users >> lid & 1)) {
            lock.acquire(c);
            const auto v = c.read<std::uint64_t>(counter);
            c.write<std::uint64_t>(counter, v + 1);
            lock.release(c);
          }
          c.barrier();
        }
        if (ph.reduce) {
          const double contrib = static_cast<double>(
              (r * 31 + p * 7 + static_cast<std::size_t>(c.id()) * 3 +
               prog.seed % 997) %
              97);
          const double s = c.reduce_sum(contrib);
          if (c.id() == 0) out.reduce_digest += s;
        }
      }
    }
    c.barrier();
    if (c.id() == 0) {
      out.memory.resize(nb);
      for (std::size_t b = 0; b < nb; ++b)
        out.memory[b] = c.read<std::uint32_t>(addr(b));
      if (cc) {
        out.cc_memory.resize(nb);
        for (std::size_t b = 0; b < nb; ++b) {
          const auto v = c.read<std::int64_t>(cc_addr(b));
          out.cc_memory[b] = v;
          // Every flush landed before the final barrier, so the merged
          // image must equal the host-side sum exactly.
          if (v != cc_expect[b]) ++out.read_mismatches;
        }
      }
      if (prog.use_locks) out.lock_total = c.read<std::uint64_t>(counter);
    }
  });

  out.oracle_violations = oracle.violation_count();
  if (!oracle.violations().empty()) {
    const Violation& v = oracle.violations().front();
    std::ostringstream os;
    os << "T=" << v.when << " node " << v.node << " block " << v.block << ": "
       << v.what;
    out.first_violation = os.str();
  }
  out.exec_time = static_cast<std::uint64_t>(sys.exec_time());
  out.messages = sys.network().messages_sent();
  out.bytes = sys.network().bytes_sent();
  if (capture != nullptr) {
    capture->digest = sys.tracer()->digest();
    capture->summary = sys.tracer()->summary();
    capture->data = sys.tracer()->build(m.costs, m.net);
    for (int n = 0; n < prog.nodes; ++n)
      capture->counters.push_back(sys.recorder().node(n));
    if (auto* ccp = sys.ccached(); ccp != nullptr)
      capture->cc_flushes = ccp->cc_stats().flushes;
  }
  return out;
}

FuzzVerdict check_program(const FuzzProgram& prog, bool latency_sweep,
                          int parallel_workers) {
  using runtime::ProtocolKind;
  std::vector<std::pair<std::string, ProtocolKind>> kinds = {
      {"stache", ProtocolKind::kStache},
      {"predictive", ProtocolKind::kPredictive},
      {"anticipate", ProtocolKind::kPredictiveAnticipate},
      // ccached always applies: programs without commutative phases must
      // reproduce Stache exactly (empty logs change nothing), and cc
      // programs must merge to the same totals every rmw-based protocol
      // reaches.
      {"ccached", ProtocolKind::kCCached},
  };
  if (supports_write_update(prog))
    kinds.emplace_back("write-update", ProtocolKind::kWriteUpdate);

  std::vector<std::pair<std::string, net::NetConfig>> nets;
  nets.emplace_back("", net::NetConfig{});
  if (latency_sweep) {
    // Perturbed latency models shift every arrival time and interleaving;
    // program-visible values must not move.
    net::NetConfig fast;
    fast.wire_latency = sim::microseconds(2);
    fast.per_byte = 5;
    fast.self_latency = sim::microseconds(1);
    net::NetConfig slow;
    slow.wire_latency = sim::microseconds(120);
    slow.per_byte = 400;
    slow.self_latency = sim::microseconds(20);
    nets.emplace_back("@fast", fast);
    nets.emplace_back("@slow", slow);
  }

  FuzzVerdict verdict;
  std::uint64_t digest = kFnvBasis;
  RunResult baseline;
  bool have_baseline = false;

  auto fail = [&](const std::string& category, const std::string& detail) {
    verdict.ok = false;
    verdict.signature = category;
    std::ostringstream os;
    os << category << ": " << detail << "\ndigest " << hex64(digest);
    verdict.report = os.str();
  };

  for (const auto& [nlabel, netcfg] : nets) {
    for (const auto& [klabel, kind] : kinds) {
      // The anticipate policy differs from predictive only in schedule
      // derivation; one latency point suffices for it.
      if (!nlabel.empty() && klabel == "anticipate") continue;
      const std::string label = klabel + nlabel;
      const RunResult r = run_program(prog, kind, netcfg);

      digest = fnv1a(digest, label.data(), label.size());
      digest = fnv1a(digest, r.memory.data(),
                     r.memory.size() * sizeof(std::uint32_t));
      digest = fnv1a(digest, r.cc_memory.data(),
                     r.cc_memory.size() * sizeof(std::int64_t));
      digest = fnv1a(digest, &r.lock_total, sizeof r.lock_total);
      digest = fnv1a(digest, &r.reduce_digest, sizeof r.reduce_digest);
      digest = fnv1a(digest, &r.read_mismatches, sizeof r.read_mismatches);
      digest =
          fnv1a(digest, &r.oracle_violations, sizeof r.oracle_violations);

      // Oracle verdict first: it fires at the faulty protocol event itself
      // (e.g. the write that breaks single-writer), upstream of the stale
      // read the host reference would flag.
      if (r.oracle_violations != 0) {
        fail("violation[" + label + "]",
             std::to_string(r.oracle_violations) +
                 " oracle violation(s); first: " + r.first_violation);
        return verdict;
      }
      if (r.read_mismatches != 0) {
        fail("mismatch[" + label + "]",
             std::to_string(r.read_mismatches) +
                 " read(s) differed from the host reference");
        return verdict;
      }
      if (!have_baseline) {
        baseline = r;
        have_baseline = true;
        continue;
      }
      if (r.memory != baseline.memory) {
        std::size_t b = 0;
        while (b < r.memory.size() && r.memory[b] == baseline.memory[b]) ++b;
        fail("memdiff[" + label + "]",
             "final memory differs from stache at block " +
                 std::to_string(b) + " (" + std::to_string(r.memory[b]) +
                 " vs " + std::to_string(baseline.memory[b]) + ")");
        return verdict;
      }
      if (r.cc_memory != baseline.cc_memory) {
        std::size_t b = 0;
        while (b < r.cc_memory.size() && r.cc_memory[b] == baseline.cc_memory[b])
          ++b;
        fail("ccdiff[" + label + "]",
             "commutative totals differ from stache at block " +
                 std::to_string(b) + " (" + std::to_string(r.cc_memory[b]) +
                 " vs " + std::to_string(baseline.cc_memory[b]) + ")");
        return verdict;
      }
      if (r.lock_total != baseline.lock_total) {
        fail("lockdiff[" + label + "]",
             "lock-protected counter " + std::to_string(r.lock_total) +
                 " vs " + std::to_string(baseline.lock_total));
        return verdict;
      }
      if (std::memcmp(&r.reduce_digest, &baseline.reduce_digest,
                      sizeof r.reduce_digest) != 0) {
        fail("reducediff[" + label + "]", "reduction results diverged");
        return verdict;
      }
    }
  }

  // ---- Backend differential: parallel vs serial windowed --------------------
  // The windowed canon is one deterministic result per (program, machine,
  // window); the worker pool must reproduce it bit-identically — not just
  // program-visible values but exec time, message counts and bytes. Any
  // inequality here is an engine/network-staging bug, not a protocol bug.
  if (parallel_workers > 0) {
    const net::NetConfig& netcfg = nets.front().second;
    // Seed-derived window batch cap: results-invariant by contract, so a
    // soak sweeps the pool's batching/parking configurations (uncapped,
    // park-heavy, and two spin-streak caps) across the corpus while each
    // seed stays exactly reproducible.
    constexpr int kBatchChoices[] = {0, 1, 2, 8};
    const int batch = kBatchChoices[prog.seed % 4];
    for (const auto& [klabel, kind] : kinds) {
      const std::string label = klabel + "@parallel";
      const RunResult serial =
          run_program(prog, kind, netcfg, nullptr, sim::Backend::kFiber,
                      netcfg.wire_latency);
      const RunResult par =
          run_program(prog, kind, netcfg, nullptr, sim::Backend::kParallel,
                      netcfg.wire_latency, parallel_workers, batch);

      digest = fnv1a(digest, label.data(), label.size());
      digest = fnv1a(digest, &par.exec_time, sizeof par.exec_time);
      digest = fnv1a(digest, &par.messages, sizeof par.messages);
      digest = fnv1a(digest, &par.bytes, sizeof par.bytes);
      digest = fnv1a(digest, par.memory.data(),
                     par.memory.size() * sizeof(std::uint32_t));

      if (par.oracle_violations != 0 || serial.oracle_violations != 0) {
        fail("violation[" + label + "]",
             std::to_string(par.oracle_violations + serial.oracle_violations) +
                 " oracle violation(s); first: " +
                 (par.oracle_violations != 0 ? par.first_violation
                                             : serial.first_violation));
        return verdict;
      }
      if (par.read_mismatches != 0 || serial.read_mismatches != 0) {
        fail("mismatch[" + label + "]",
             std::to_string(par.read_mismatches + serial.read_mismatches) +
                 " read(s) differed from the host reference");
        return verdict;
      }
      if (par.memory != serial.memory || par.lock_total != serial.lock_total ||
          std::memcmp(&par.reduce_digest, &serial.reduce_digest,
                      sizeof par.reduce_digest) != 0) {
        fail("pardiff[" + label + "]",
             "parallel backend changed program-visible values");
        return verdict;
      }
      if (par.exec_time != serial.exec_time ||
          par.messages != serial.messages || par.bytes != serial.bytes) {
        fail("pardiff[" + label + "]",
             "parallel backend diverged from the serial windowed canon "
             "(exec " +
                 std::to_string(par.exec_time) + " vs " +
                 std::to_string(serial.exec_time) + ", msgs " +
                 std::to_string(par.messages) + " vs " +
                 std::to_string(serial.messages) + ")");
        return verdict;
      }
    }
  }

  verdict.report = "ok\ndigest " + hex64(digest);
  return verdict;
}

FuzzProgram shrink(const FuzzProgram& prog, const std::string& signature,
                   bool latency_sweep, int max_attempts,
                   int parallel_workers) {
  FuzzProgram best = prog;
  int attempts = 0;
  auto still_fails = [&](const FuzzProgram& cand) {
    if (attempts >= max_attempts) return false;
    ++attempts;
    const FuzzVerdict v = check_program(cand, latency_sweep, parallel_workers);
    return !v.ok && v.signature == signature;
  };

  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;

    // Drop whole rounds.
    for (std::size_t i = 0; i < best.rounds.size() && best.rounds.size() > 1;) {
      FuzzProgram cand = best;
      cand.rounds.erase(cand.rounds.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(cand)) {
        best = std::move(cand);
        progress = true;
      } else {
        ++i;
      }
    }
    // Drop phases within rounds.
    for (std::size_t r = 0; r < best.rounds.size(); ++r) {
      for (std::size_t p = 0;
           p < best.rounds[r].phases.size() && best.rounds[r].phases.size() > 1;) {
        FuzzProgram cand = best;
        auto& phs = cand.rounds[r].phases;
        phs.erase(phs.begin() + static_cast<std::ptrdiff_t>(p));
        if (still_fails(cand)) {
          best = std::move(cand);
          progress = true;
        } else {
          ++p;
        }
      }
    }
    // Clear per-phase features.
    for (std::size_t r = 0; r < best.rounds.size(); ++r) {
      for (std::size_t p = 0; p < best.rounds[r].phases.size(); ++p) {
        auto& ph = best.rounds[r].phases[p];
        if (ph.lock_users != 0) {
          FuzzProgram cand = best;
          cand.rounds[r].phases[p].lock_users = 0;
          if (still_fails(cand)) {
            best = std::move(cand);
            progress = true;
          }
        }
        if (best.rounds[r].phases[p].reduce) {
          FuzzProgram cand = best;
          cand.rounds[r].phases[p].reduce = false;
          if (still_fails(cand)) {
            best = std::move(cand);
            progress = true;
          }
        }
        if (best.rounds[r].phases[p].cc_mask != 0) {
          FuzzProgram cand = best;
          cand.rounds[r].phases[p].cc_mask = 0;
          if (still_fails(cand)) {
            best = std::move(cand);
            progress = true;
          }
        }
      }
    }
    // Clear every assignment of one block across the whole program.
    for (std::size_t b = 0; b < static_cast<std::size_t>(best.nblocks); ++b) {
      FuzzProgram cand = best;
      bool any = false;
      for (auto& rd : cand.rounds)
        for (auto& ph : rd.phases) {
          any = any || ph.writer[b] != -1 || ph.reader_mask[b] != 0;
          ph.writer[b] = -1;
          ph.reader_mask[b] = 0;
        }
      if (any && still_fails(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
    // Trim trailing untouched blocks and retire an unused lock feature.
    {
      FuzzProgram cand = best;
      auto used = [&](const FuzzProgram& pr, std::size_t b) {
        for (const auto& rd : pr.rounds)
          for (const auto& ph : rd.phases)
            if (ph.writer[b] != -1 || ph.reader_mask[b] != 0) return true;
        return false;
      };
      while (cand.nblocks > 1 &&
             !used(cand, static_cast<std::size_t>(cand.nblocks) - 1)) {
        --cand.nblocks;
        for (auto& rd : cand.rounds)
          for (auto& ph : rd.phases) {
            ph.writer.pop_back();
            ph.reader_mask.pop_back();
          }
      }
      if (cand.nblocks != best.nblocks && still_fails(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
    // Collapse a wide shape to the equivalent dense machine (participants
    // become the only nodes). Changes home placement and spill behavior, so
    // it only sticks when the failure is not spill-specific.
    if (best.participants != 0) {
      FuzzProgram cand = best;
      cand.nodes = best.participants;
      cand.participants = 0;
      if (still_fails(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
    if (best.use_locks) {
      bool any_users = false;
      for (const auto& rd : best.rounds)
        for (const auto& ph : rd.phases) any_users |= ph.lock_users != 0;
      if (!any_users) {
        FuzzProgram cand = best;
        cand.use_locks = false;
        if (still_fails(cand)) {
          best = std::move(cand);
          progress = true;
        }
      }
    }
  }
  return best;
}

std::string serialize_trace(const FuzzProgram& prog) {
  std::ostringstream os;
  os << "presto-fuzz-trace v1\n";
  os << "seed " << prog.seed << '\n';
  os << "nodes " << prog.nodes << '\n';
  // Written only for wide shapes: dense traces stay byte-identical to the
  // pre-`participants` format, and old traces parse unchanged.
  if (prog.participants != 0)
    os << "participants " << prog.participants << '\n';
  os << "block_size " << prog.block_size << '\n';
  os << "nblocks " << prog.nblocks << '\n';
  os << "locks " << (prog.use_locks ? 1 : 0) << '\n';
  os << "bug " << (prog.injected_bug.empty() ? "none" : prog.injected_bug)
     << '\n';
  os << "rounds " << prog.rounds.size() << '\n';
  for (std::size_t r = 0; r < prog.rounds.size(); ++r) {
    const auto& rd = prog.rounds[r];
    os << "round " << r << " phases " << rd.phases.size() << '\n';
    for (std::size_t p = 0; p < rd.phases.size(); ++p) {
      const auto& ph = rd.phases[p];
      os << "phase " << p << " lock " << std::hex << ph.lock_users << std::dec
         << " reduce " << (ph.reduce ? 1 : 0);
      // Written only for commutative phases: traces without them stay
      // byte-identical to the pre-`cc` format, and old traces parse
      // unchanged (the `participants` precedent).
      if (ph.cc_mask != 0)
        os << " cc " << std::hex << ph.cc_mask << std::dec;
      os << '\n';
      os << "w";
      for (int w : ph.writer) os << ' ' << w;
      os << "\nr" << std::hex;
      for (std::uint64_t m : ph.reader_mask) os << ' ' << m;
      os << std::dec << '\n';
    }
  }
  os << "end\n";
  return os.str();
}

FuzzProgram parse_trace(const std::string& text) {
  std::istringstream is(text);
  std::string tok;
  auto expect = [&](const char* want) {
    PRESTO_CHECK(is >> tok && tok == want,
                 "malformed trace: expected '" << want << "', got '" << tok
                                               << "'");
  };
  std::string line;
  PRESTO_CHECK(std::getline(is, line) && line == "presto-fuzz-trace v1",
               "not a presto-fuzz trace (bad header '" << line << "')");
  FuzzProgram prog;
  std::size_t rounds = 0;
  expect("seed");
  is >> prog.seed;
  expect("nodes");
  is >> prog.nodes;
  PRESTO_CHECK(is >> tok, "malformed trace: truncated after nodes");
  if (tok == "participants") {
    is >> prog.participants;
    PRESTO_CHECK(is >> tok, "malformed trace: truncated after participants");
  }
  PRESTO_CHECK(tok == "block_size",
               "malformed trace: expected 'block_size', got '" << tok << "'");
  is >> prog.block_size;
  expect("nblocks");
  is >> prog.nblocks;
  int flag = 0;
  expect("locks");
  is >> flag;
  prog.use_locks = flag != 0;
  expect("bug");
  is >> tok;
  prog.injected_bug = tok == "none" ? "" : tok;
  expect("rounds");
  is >> rounds;
  // Dense shapes (participants == 0) index the one-word masks by physical
  // node id, so they stay capped at 64 nodes; wide shapes go through the
  // logical-participant mapping and only the machine width grows.
  PRESTO_CHECK(is && prog.nodes >= 1 && prog.nodes <= 65536 &&
                   (prog.participants == 0
                        ? prog.nodes <= 64
                        : prog.participants >= 2 && prog.participants <= 64 &&
                              prog.participants <= prog.nodes) &&
                   prog.nblocks >= 1 && rounds >= 1,
               "malformed trace header");
  const auto nb = static_cast<std::size_t>(prog.nblocks);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::size_t idx = 0, phases = 0;
    expect("round");
    is >> idx;
    expect("phases");
    is >> phases;
    PRESTO_CHECK(is && idx == r && phases >= 1, "malformed round header");
    FuzzRound rd;
    for (std::size_t p = 0; p < phases; ++p) {
      FuzzPhase ph;
      expect("phase");
      is >> idx;
      expect("lock");
      is >> std::hex >> ph.lock_users >> std::dec;
      expect("reduce");
      is >> flag;
      ph.reduce = flag != 0;
      PRESTO_CHECK(is && idx == p, "malformed phase header");
      PRESTO_CHECK(is >> tok, "malformed trace: truncated after reduce");
      if (tok == "cc") {
        is >> std::hex >> ph.cc_mask >> std::dec;
        PRESTO_CHECK(is >> tok, "malformed trace: truncated after cc");
      }
      PRESTO_CHECK(tok == "w",
                   "malformed trace: expected 'w', got '" << tok << "'");
      ph.writer.resize(nb);
      for (auto& w : ph.writer) is >> w;
      expect("r");
      ph.reader_mask.resize(nb);
      is >> std::hex;
      for (auto& m : ph.reader_mask) is >> m;
      is >> std::dec;
      PRESTO_CHECK(is, "malformed phase body");
      rd.phases.push_back(std::move(ph));
    }
    prog.rounds.push_back(std::move(rd));
  }
  expect("end");
  return prog;
}

}  // namespace presto::check
