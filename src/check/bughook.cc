#include "check/bughook.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"

namespace presto::check {

BugHooks& bug_hooks() {
  static BugHooks hooks;
  return hooks;
}

void set_bug_hook(const char* name, bool on) {
  BugHooks& h = bug_hooks();
  if (std::strcmp(name, "skip-invalidate") == 0) {
    h.skip_invalidate = on;
  } else if (std::strcmp(name, "drop-presend-data") == 0) {
    h.drop_presend_data = on;
  } else if (std::strcmp(name, "delay-window-flush") == 0) {
    h.delay_window_flush = on;
  } else if (std::strcmp(name, "stale-sense-flag") == 0) {
    h.stale_sense_flag = on;
  } else if (std::strcmp(name, "drop-spill-sharer") == 0) {
    h.drop_spill_sharer = on;
  } else if (std::strcmp(name, "drop-merge-entry") == 0) {
    h.drop_merge_entry = on;
  } else if (std::strcmp(name, "double-apply-on-replay") == 0) {
    h.double_apply_on_replay = on;
  } else {
    PRESTO_FAIL("unknown bug hook '" << name << "'");
  }
}

namespace {
// Seed the hooks from PRESTO_TEST_BUG before main() so subprocess-based
// tests can inject a bug by exporting the variable, with no API call.
bool seed_from_env() {
  const char* v = std::getenv("PRESTO_TEST_BUG");
  if (v == nullptr) return false;
  const std::string s(v);
  std::size_t at = 0;
  while (at < s.size()) {
    std::size_t comma = s.find(',', at);
    if (comma == std::string::npos) comma = s.size();
    const std::string name = s.substr(at, comma - at);
    if (!name.empty()) set_bug_hook(name.c_str(), true);
    at = comma + 1;
  }
  return true;
}
const bool env_seeded = seed_from_env();
}  // namespace

}  // namespace presto::check
