// Coherence invariant oracle.
//
// Maintains a shadow model of every cache block — the committed bytes (the
// value of the most recent application write in simulated execution order)
// plus the last writer — and checks, per simulated event, the invariants the
// paper's central claim rests on (§3: schedules change *when* data moves,
// never *what* a read observes):
//
//   * single-writer/multiple-reader — while a node writes a block, no other
//     node holds a valid copy; while a node reads, no other node holds
//     ReadWrite (sequentially consistent protocols only);
//   * data-value — a read returns exactly the bytes of the most recent
//     write in simulated-time order (execution order is a linearization of
//     simulated time for data-race-free programs, see DESIGN.md);
//   * presend coherence — any data-carrying protocol message (including the
//     predictive protocol's BulkData presends) carries bytes equal to the
//     sender's committed view of the block at send time, and installs of
//     those bytes still match the committed view at arrival;
//   * directory/cache agreement — via StacheProtocol::check_invariants(),
//     which callers run at quiescent points; plus a final whole-memory
//     sweep (every valid copy equals the committed bytes) at end of run.
//
// The write-update protocol deliberately provides only phase consistency
// (readers may hold stale copies until the writer publishes), so under
// Mode::kPhase the oracle tracks the shadow but only checks writer-side
// sends; per-read data-value checking can be opted into with
// set_strict_reads(true) by harnesses whose programs are phase-synchronized
// (write -> publish -> barrier -> read), as the fuzzer's are.
//
// Observation is pure: the oracle never charges simulated time or schedules
// events, so results are bit-identical with or without it. It is compiled in
// always and attached per System when enabled — a runtime flag
// (PRESTO_ORACLE=1/0) or by default in builds without NDEBUG (Debug /
// sanitizer CI). Detached, the hot paths pay one null-pointer test
// (mem/global_space.h read()/write(), proto/protocol.cc post()).
//
// Under a windowed engine (sim/engine.h) hooks fire on concurrently
// draining lanes, so they cannot touch the shared shadow directly. Each
// hook instead records its arguments (payload bytes copied into a per-lane
// arena) and replay_window() — registered as BoundaryOp::kOracle — applies
// the window's records against the shadow in merged (time, lane, record)
// order on the coordinating thread. Tag-state checks then see boundary-time
// tags rather than event-time tags; that is sound at window granularity:
// the window never exceeds the network's minimum latency, so any copy a
// peer gained since the event was recorded stems from a grant chain that
// began in an earlier window — if it conflicts with the recorded access,
// the protocol really did let a conflicting copy and an access coexist.
//
// A 256-event ring of recent accesses/messages is kept for failure triage;
// the fuzzer embeds its tail in dumped trace files (docs/testing.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/global_space.h"
#include "net/network.h"
#include "proto/protocol.h"
#include "sim/engine.h"

namespace presto::check {

// Consistency model the protocol under test claims to provide.
enum class Mode : std::uint8_t {
  kSC,     // sequentially consistent (Stache, predictive)
  kPhase,  // phase-consistent (write-update: staleness until publish is legal)
};

enum class FailMode : std::uint8_t {
  kAbort,   // dump the event ring and abort on first violation (debug runs)
  kRecord,  // record and keep simulating (the fuzzer inspects afterwards)
};

struct Violation {
  std::string what;
  sim::Time when = 0;
  int node = -1;
  mem::BlockId block = 0;
};

class Oracle final : public mem::AccessObserver,
                     public proto::CoherenceObserver,
                     public net::Network::Observer {
 public:
  Oracle(mem::GlobalSpace& space, const sim::Engine* engine, Mode mode,
         FailMode fail);

  Mode mode() const { return mode_; }
  FailMode fail_mode() const { return fail_; }

  // Enables per-read data-value checking under Mode::kPhase (no-op for
  // kSC, which always checks). Only valid for phase-synchronized programs.
  void set_strict_reads(bool on) { strict_reads_ = on; }

  // ---- mem::AccessObserver --------------------------------------------------
  void on_app_read(int node, mem::BlockId b, std::size_t off,
                   const void* seen, std::size_t n) override;
  void on_app_write(int node, mem::BlockId b, std::size_t off,
                    const void* data, std::size_t n) override;
  // Privatized commutative update (ccached): folds delta into the committed
  // shadow immediately — addition commutes, so the shadow stays exact no
  // matter what order the protocol's logs merge in. No tag checks apply (the
  // update is local by design); a merge that loses or double-applies a delta
  // is caught by final_sweep when the home's copy diverges from the shadow.
  void on_cc_update(int node, mem::BlockId b, std::size_t off,
                    std::int64_t delta) override;

  // ---- proto::CoherenceObserver ---------------------------------------------
  void on_data_send(int src, int dst, const proto::Msg& m) override;
  void on_install(int node, mem::BlockId b, const std::byte* data,
                  mem::Tag tag) override;

  // ---- net::Network::Observer -----------------------------------------------
  void on_message(int src, int dst, std::size_t bytes, sim::Time depart,
                  sim::Time arrival) override;

  // ---- Quiescent checks ------------------------------------------------------
  // Whole-memory agreement sweep: every materialized, non-Invalid copy at
  // every node must equal the committed bytes. SC mode only (stale valid
  // copies are legal under phase consistency). Call with no transactions in
  // flight (end of run). Returns the number of copies compared.
  std::size_t final_sweep();

  // Windowed mode (BoundaryOp::kOracle): applies every record buffered this
  // window against the shadow, in (time, lane, record) order. Idempotent on
  // an empty window; called once more by final_sweep() as a drain.
  void replay_window();

  // ---- Results ----------------------------------------------------------------
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t reads_checked() const { return reads_checked_; }
  std::uint64_t writes_checked() const { return writes_checked_; }
  std::uint64_t sends_checked() const { return sends_checked_; }
  std::uint64_t installs_checked() const { return installs_checked_; }
  std::uint64_t cc_updates_checked() const { return cc_updates_checked_; }

  // The committed (most recently written) bytes of a block — the shadow the
  // fuzzer uses as its host-side reference.
  const std::byte* committed(mem::BlockId b) const;

  // Renders the most recent ring events (oldest first), one per line.
  std::string ring_dump(std::size_t max_events = 64) const;

 private:
  enum class Ev : std::uint8_t {
    kRead, kWrite, kInstall, kSend, kNet, kCcUpdate
  };
  struct RingEvent {
    sim::Time t = 0;
    Ev kind = Ev::kRead;
    std::int16_t a = -1;  // node / src
    std::int16_t b = -1;  // dst (sends) or tag (installs)
    std::uint8_t info = 0;  // MsgType for sends
    mem::BlockId block = 0;
  };
  static constexpr std::size_t kRingSize = 256;
  static constexpr std::size_t kMaxStoredViolations = 32;

  // One deferred hook invocation (windowed mode). Payload bytes live in the
  // owning lane's arena at data_off; msg is meaningful for kSend only (its
  // data pointer is re-targeted to the arena copy at replay).
  struct DefRec {
    Ev kind = Ev::kRead;
    sim::Time t = 0;
    std::int16_t a = -1;  // node / src
    std::int16_t b = -1;  // dst (sends) or tag (installs)
    mem::BlockId block = 0;
    std::uint32_t off = 0;
    std::uint32_t n = 0;
    std::size_t data_off = 0;
    bool has_data = false;
    proto::Msg msg{};
  };
  struct LaneBuf {
    std::vector<DefRec> recs;
    std::vector<std::byte> bytes;
  };

  void ensure_block(mem::BlockId b);
  sim::Time now() const {
    if (replaying_) return replay_t_;
    return engine_ != nullptr ? engine_->now() : 0;
  }
  // True when the calling hook must buffer instead of checking (windowed
  // engine, inside a lane drain). Returns the lane's buffer.
  LaneBuf* defer_target();
  std::size_t stash(LaneBuf& lb, const void* data, std::size_t n);
  void push_ring(Ev kind, int a, int b, std::uint8_t info, mem::BlockId blk);
  void violation(int node, mem::BlockId b, std::string what);

  // Immediate check bodies; hooks call these directly in legacy mode and
  // replay_window() calls them with replay_t_ overriding now().
  void check_read(int node, mem::BlockId b, std::size_t off, const void* seen,
                  std::size_t n);
  void check_write(int node, mem::BlockId b, std::size_t off, const void* data,
                   std::size_t n);
  void check_send(int src, int dst, const proto::Msg& m);
  void check_install(int node, mem::BlockId b, const std::byte* data,
                     mem::Tag tag);
  void check_cc_update(int node, mem::BlockId b, std::size_t off,
                       std::int64_t delta);

  mem::GlobalSpace& space_;
  const sim::Engine* engine_;
  const Mode mode_;
  const FailMode fail_;
  const bool deferred_;
  bool strict_reads_ = false;

  std::vector<LaneBuf> lanes_;  // [lane]; deferred mode only
  bool replaying_ = false;
  sim::Time replay_t_ = 0;

  // Flat shadow of the whole space (grown on demand, zero-filled to match
  // zero-initialized frames) + last writer per block (-1 = never written).
  std::vector<std::byte> committed_;
  std::vector<std::int16_t> last_writer_;
  // Sticky per-block flag: two distinct nodes have written this block. Under
  // phase consistency the committed shadow is then a merged view no single
  // writer's local copy holds (false sharing — each writer publishes whole
  // blocks containing only its own stores), so the writer-side publish check
  // does not apply.
  std::vector<std::uint8_t> multi_writer_;

  std::vector<RingEvent> ring_;
  std::size_t ring_next_ = 0;

  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t writes_checked_ = 0;
  std::uint64_t sends_checked_ = 0;
  std::uint64_t installs_checked_ = 0;
  std::uint64_t cc_updates_checked_ = 0;
};

// True when a System should attach an oracle without being asked:
// PRESTO_ORACLE=1/0 overrides; otherwise on in builds without NDEBUG
// (Debug / sanitizer CI) and off in optimized builds.
bool oracle_enabled_by_default();

// Oracle mode matching a protocol's consistency claim, by protocol name()
// ("write-update" -> kPhase, everything else -> kSC).
Mode mode_for_protocol(const char* protocol_name);

}  // namespace presto::check
