// Differential schedule fuzzer for the coherence protocols.
//
// Generates seeded random phase-structured SPMD programs (a generalization
// of tests/phase_property_test.cc: optional locks, reducers, drifting
// assignments, mixed block sizes), runs each program under every applicable
// protocol (Stache, predictive, predictive+anticipate, write-update) and
// under perturbed network-latency models, then diffs everything the program
// can observe:
//
//   * final shared memory contents,
//   * per-read verification against a host-side reference,
//   * reduction results and lock-protected counters,
//   * the invariant oracle's verdict (attached in record mode).
//
// Timing may differ across protocols and latencies; program-visible values
// may not (the paper's claim that schedules change *when* data moves, never
// *what* a read observes). On a mismatch the failing program is greedily
// shrunk (drop rounds, phases, block assignments, features) while the
// failure signature reproduces, then dumped as a compact self-contained
// text trace that `presto_fuzz --replay=<file>` re-executes bit-identically.
// The simulation is deterministic, so seed + spec reproduce the run exactly;
// the trace stores the fully-expanded spec so shrinking needs no re-derivation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "runtime/machine.h"
#include "stats/recorder.h"
#include "trace/tracer.h"

namespace presto::check {

// One phase of one round, fully expanded: per block, who writes and who
// reads (writes happen first, then a barrier, then the reads — the
// producer/consumer separation the compiler's directive placement produces).
struct FuzzPhase {
  std::vector<int> writer;                 // per block; -1 = nobody
  std::vector<std::uint64_t> reader_mask;  // per block; bit per node
  std::uint64_t lock_users = 0;            // nodes bumping the locked counter
  bool reduce = false;                     // end the phase with a reduce_sum
  // Nodes pushing commutative adds into the reduction region this phase.
  // The phase ends with an all-node cc_flush + barrier — the discipline the
  // ccached protocol requires before anyone reads (or plain-writes) a
  // commutative block.
  std::uint64_t cc_mask = 0;
};

struct FuzzRound {
  std::vector<FuzzPhase> phases;
};

struct FuzzProgram {
  int nodes = 2;
  // Wide machine shapes: 0 means every node is a participant and logical ids
  // equal physical node ids (the classic <= 64-node corpus, bit-identical to
  // programs generated before this field existed). A positive value P runs
  // the program on a `nodes`-wide machine with only P logical participants,
  // spread evenly so the top participant sits at node `nodes - 1` — this is
  // how the fuzzer reaches spill-range node ids (>= 64) while writer /
  // reader_mask / lock_users stay indexed by logical participant and the
  // reader masks keep fitting in one word.
  int participants = 0;
  std::uint32_t block_size = 32;
  int nblocks = 8;
  bool use_locks = false;
  std::uint64_t seed = 0;        // generator seed; salts the written values
  std::string injected_bug;      // empty = none (see check/bughook.h)
  std::vector<FuzzRound> rounds; // fully expanded, shrink-friendly
};

// Everything a program can observe, plus a determinism digest.
struct RunResult {
  std::vector<std::uint32_t> memory;  // final value per block (node 0 reads)
  // Final value per commutative block (empty when the program has no
  // commutative phases). Integer adds commute exactly, so these must agree
  // bit-for-bit across every protocol and merge order.
  std::vector<std::int64_t> cc_memory;
  std::uint64_t lock_total = 0;       // final lock-protected counter
  double reduce_digest = 0.0;         // accumulated reduction results
  std::uint64_t read_mismatches = 0;  // reads differing from the host ref
  std::uint64_t oracle_violations = 0;
  std::string first_violation;        // empty if none
  // Timing/traffic digest — compared only between identical configurations
  // (the determinism self-check), never across protocols or latencies.
  std::uint64_t exec_time = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct FuzzVerdict {
  bool ok = true;
  std::string report;     // human-readable description of the first failure
  std::string signature;  // stable hash of the failure; equal across replays
};

// Logical-participant geometry (see FuzzProgram::participants).
// participant_count is `participants`, or `nodes` for classic dense shapes;
// participant_node maps logical id -> physical node id.
int participant_count(const FuzzProgram& prog);
int participant_node(const FuzzProgram& prog, int i);

// Seeded program generation (uses Rng::next_below_unbiased throughout).
FuzzProgram generate(std::uint64_t seed);

// True when the program is meaningful under write-update: no locks (an
// update protocol cannot provide mutual exclusion), a stable single
// writer per block across the whole program (the hand-optimized SPMD
// usage the protocol models), and no commutative phases (a read-modify-write
// on a stale phase-consistent copy loses concurrent updates).
bool supports_write_update(const FuzzProgram& prog);

// True when any phase carries commutative adds (a second, set_commutative
// region is allocated and diffed only for such programs).
bool has_commutative(const FuzzProgram& prog);

// Optional per-run trace capture (tests/trace_property_test.cc reconciles
// the tracer's independent accounting against the protocol counters over
// the fuzz corpus). Non-null `capture` runs the program with the event
// tracer attached, in memory.
struct TraceCapture {
  trace::Digest digest;
  trace::Summary summary;
  trace::TraceData data;  // canonical stream + cost-model meta
  std::vector<stats::NodeCounters> counters;  // per node, for reconciliation
  // ccached flush round trips (0 under other protocols): each opens one
  // merge-class miss window with no tag fault, so the reconciliation
  // identity is misses == faults + cc_flushes.
  std::uint64_t cc_flushes = 0;
};

// Runs the program under one protocol/network configuration with the oracle
// attached in record mode. Deterministic: equal inputs give equal results.
// `backend`/`window`/`workers` map onto MachineConfig (window > 0 or
// Backend::kParallel selects the windowed engine; see runtime/machine.h).
RunResult run_program(const FuzzProgram& prog, runtime::ProtocolKind kind,
                      const net::NetConfig& net,
                      TraceCapture* capture = nullptr,
                      sim::Backend backend = sim::default_backend(),
                      sim::Time window = 0, int workers = 0,
                      int batch_windows = 0);

// Full differential check: all applicable protocols under the default
// latency model, plus perturbed latency models when `latency_sweep`. With
// `parallel_workers` > 0 every protocol additionally runs serial
// fiber-windowed vs Backend::kParallel at that worker count, and the two
// must agree BIT-IDENTICALLY — program-visible values AND exec time,
// message counts and bytes (the windowed canon is backend-invariant).
// The parallel run's window batch cap is derived from the program seed
// ({0, 1, 2, 8} cycling with seed % 4), so a soak sweeps the pool's
// batching/parking configurations for free while every seed stays exactly
// reproducible.
FuzzVerdict check_program(const FuzzProgram& prog, bool latency_sweep = true,
                          int parallel_workers = 0);

// Greedy shrink: returns the smallest found program whose check_program
// signature matches the original failure. `max_attempts` bounds re-runs.
FuzzProgram shrink(const FuzzProgram& prog, const std::string& signature,
                   bool latency_sweep, int max_attempts = 200,
                   int parallel_workers = 0);

// Self-contained text trace (spec + seed + injected bug).
std::string serialize_trace(const FuzzProgram& prog);
// Parses a trace; aborts with a diagnostic on malformed input.
FuzzProgram parse_trace(const std::string& text);

}  // namespace presto::check
