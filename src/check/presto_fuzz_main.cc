// presto_fuzz — differential protocol fuzzer driver (see docs/testing.md).
//
//   presto_fuzz --count=200 --seed=1            fixed corpus (CI smoke)
//   presto_fuzz --seed=$RANDOM --time-budget=600 long fuzz (scheduled CI)
//   presto_fuzz --replay=fail-42.trace           re-execute a dumped failure
//   presto_fuzz --inject-bug=skip-invalidate     plant a protocol bug; the
//                                                oracle must catch it
//   presto_fuzz --selfcheck                      determinism self-test
//   presto_fuzz --backend=parallel --workers=4   add the backend differential:
//                                                every program also runs
//                                                serial-windowed vs the
//                                                parallel worker pool, which
//                                                must agree bit-identically
//
// Exit status: 0 = all programs clean (or replay reproduced "ok"), 1 = a
// failure was found (trace dumped to --dump-dir) or a replay still fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fuzz.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/pool.h"

namespace {

using presto::check::check_program;
using presto::check::FuzzProgram;
using presto::check::FuzzVerdict;

int replay(const std::string& path, bool latency_sweep,
           int parallel_workers) {
  std::ifstream in(path);
  PRESTO_CHECK(in.good(), "cannot open trace file '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const FuzzProgram prog = presto::check::parse_trace(buf.str());
  const FuzzVerdict v = check_program(prog, latency_sweep, parallel_workers);
  // The simulation is deterministic: two replays of the same trace print
  // byte-identical reports (tests diff them).
  std::printf("%s\n", v.report.c_str());
  return v.ok ? 0 : 1;
}

int selfcheck(bool latency_sweep, int parallel_workers) {
  // Determinism: the same program checked twice must produce byte-identical
  // reports (digest covers every run's observable outputs).
  const FuzzProgram prog = presto::check::generate(7);
  const FuzzVerdict a = check_program(prog, latency_sweep, parallel_workers);
  const FuzzVerdict b = check_program(prog, latency_sweep, parallel_workers);
  if (!a.ok || a.report != b.report) {
    std::printf("selfcheck FAILED\nfirst:  %s\nsecond: %s\n",
                a.report.c_str(), b.report.c_str());
    return 1;
  }
  // Trace round-trip: serialize -> parse -> identical report.
  const FuzzProgram round =
      presto::check::parse_trace(presto::check::serialize_trace(prog));
  const FuzzVerdict c = check_program(round, latency_sweep, parallel_workers);
  if (c.report != a.report) {
    std::printf("selfcheck FAILED: trace round-trip changed the program\n");
    return 1;
  }
  std::printf("selfcheck ok\n%s\n", a.report.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  presto::util::Cli cli(argc, argv);
  const std::int64_t count = cli.get_int("count", 200);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string dump_dir = cli.get("dump-dir", "fuzz-failures");
  const std::string replay_path = cli.get("replay", "");
  const std::string inject = cli.get("inject-bug", "");
  const bool do_selfcheck = cli.get_bool("selfcheck", false);
  const bool latency_sweep = cli.get_int("latency-sweep", 1) != 0;
  const std::int64_t time_budget = cli.get_int("time-budget", 0);  // seconds
  const int shrink_attempts =
      static_cast<int>(cli.get_int("shrink-attempts", 200));
  int jobs = static_cast<int>(
      cli.get_int("jobs", presto::util::default_pool_jobs()));
  const std::string backend = cli.get("backend", "");
  int parallel_workers = 0;
  if (backend == "parallel") {
    parallel_workers = static_cast<int>(cli.get_int("workers", 4));
    PRESTO_CHECK(parallel_workers >= 1, "--workers must be >= 1");
  } else {
    PRESTO_CHECK(backend.empty(),
                 "--backend: expected 'parallel', got '" << backend << "'");
    (void)cli.get_int("workers", 0);  // accepted, meaningful with --backend
  }
  cli.reject_unknown();
  PRESTO_CHECK(jobs >= 1, "--jobs must be >= 1");

  if (do_selfcheck) return selfcheck(latency_sweep, parallel_workers);
  if (!replay_path.empty())
    return replay(replay_path, latency_sweep, parallel_workers);

  if (!inject.empty() && jobs > 1) {
    // Bug injection goes through the process-wide check::bug_hooks() table;
    // concurrent instances would share the planted bug's bookkeeping.
    std::printf("--inject-bug is process-wide; forcing --jobs=1\n");
    jobs = 1;
  }

  // The corpus is embarrassingly parallel: each program is an independent
  // simulation instance, so chunks of `jobs * 4` seeds run on the host pool.
  // Determinism is preserved — on failure the lowest failing seed in the
  // chunk is the one shrunk and dumped, exactly what the serial loop would
  // have reported — and the time budget is honoured at chunk granularity.
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t chunk =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(jobs) * 4);
  std::int64_t checked = 0;
  for (std::int64_t base = 0; base < count; base += chunk) {
    if (time_budget > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      if (elapsed >= time_budget) {
        std::printf("time budget reached after %lld programs\n",
                    static_cast<long long>(checked));
        break;
      }
    }
    const std::int64_t n = std::min<std::int64_t>(chunk, count - base);
    if (jobs > 1) {
      std::printf("checking seeds %llu..%llu on %d host threads\n",
                  static_cast<unsigned long long>(seed +
                                                  static_cast<std::uint64_t>(base)),
                  static_cast<unsigned long long>(
                      seed + static_cast<std::uint64_t>(base + n - 1)),
                  jobs);
      std::fflush(stdout);
    }
    const std::vector<FuzzVerdict> verdicts = presto::util::parallel_map(
        static_cast<int>(n), jobs, [&](int i) {
          FuzzProgram prog = presto::check::generate(
              seed + static_cast<std::uint64_t>(base + i));
          prog.injected_bug = inject;
          return check_program(prog, latency_sweep, parallel_workers);
        });
    checked += n;
    const auto bad = std::find_if(verdicts.begin(), verdicts.end(),
                                  [](const FuzzVerdict& v) { return !v.ok; });
    if (bad == verdicts.end()) continue;

    const std::int64_t idx = base + (bad - verdicts.begin());
    FuzzProgram prog =
        presto::check::generate(seed + static_cast<std::uint64_t>(idx));
    prog.injected_bug = inject;
    std::printf("FAILURE on seed %llu:\n%s\nshrinking...\n",
                static_cast<unsigned long long>(prog.seed),
                bad->report.c_str());
    const FuzzProgram shrunk =
        presto::check::shrink(prog, bad->signature, latency_sweep,
                              shrink_attempts, parallel_workers);
    const FuzzVerdict sv = check_program(shrunk, latency_sweep,
                                         parallel_workers);
    std::filesystem::create_directories(dump_dir);
    const std::string path =
        dump_dir + "/fail-" + std::to_string(prog.seed) + ".trace";
    std::ofstream out(path);
    out << presto::check::serialize_trace(shrunk);
    out.close();
    std::printf("shrunk failure (%s):\n%s\ntrace dumped to %s\n"
                "replay with: presto_fuzz --replay=%s%s\n",
                sv.signature.c_str(), sv.report.c_str(), path.c_str(),
                path.c_str(), latency_sweep ? "" : " --latency-sweep=0");
    return 1;
  }
  std::printf("%lld program(s) clean (seed base %llu%s, jobs %d)\n",
              static_cast<long long>(checked),
              static_cast<unsigned long long>(seed),
              latency_sweep ? ", latency sweep on" : "", jobs);
  return 0;
}
