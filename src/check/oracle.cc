#include "check/oracle.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/check.h"

namespace presto::check {

Oracle::Oracle(mem::GlobalSpace& space, const sim::Engine* engine, Mode mode,
               FailMode fail)
    : space_(space),
      engine_(engine),
      mode_(mode),
      fail_(fail),
      deferred_(engine != nullptr && engine->windowed()) {
  ring_.resize(kRingSize);
  if (deferred_) lanes_.resize(static_cast<std::size_t>(engine->num_lanes()));
  ensure_block(space_.num_blocks() == 0 ? 0 : space_.num_blocks() - 1);
}

Oracle::LaneBuf* Oracle::defer_target() {
  if (!deferred_ || !engine_->in_lane_context()) return nullptr;
  return &lanes_[static_cast<std::size_t>(engine_->current_lane())];
}

std::size_t Oracle::stash(LaneBuf& lb, const void* data, std::size_t n) {
  const std::size_t off = lb.bytes.size();
  const auto* p = static_cast<const std::byte*>(data);
  lb.bytes.insert(lb.bytes.end(), p, p + n);
  return off;
}

void Oracle::ensure_block(mem::BlockId b) {
  const std::size_t bsz = space_.block_size();
  const std::size_t need = static_cast<std::size_t>(b + 1);
  if (last_writer_.size() >= need) return;
  // Grow geometrically: alloc() extends the space page by page and every
  // access path lands here first.
  std::size_t cap = last_writer_.size() < 64 ? 64 : last_writer_.size() * 2;
  if (cap < need) cap = need;
  last_writer_.resize(cap, -1);
  multi_writer_.resize(cap, 0);
  committed_.resize(cap * bsz);  // zero-filled, matching fresh frames
}

const std::byte* Oracle::committed(mem::BlockId b) const {
  const std::size_t bsz = space_.block_size();
  PRESTO_CHECK(static_cast<std::size_t>(b) < last_writer_.size(),
               "committed() for untracked block " << b);
  return committed_.data() + static_cast<std::size_t>(b) * bsz;
}

void Oracle::push_ring(Ev kind, int a, int b, std::uint8_t info,
                       mem::BlockId blk) {
  RingEvent& e = ring_[ring_next_ % kRingSize];
  ++ring_next_;
  e.t = now();
  e.kind = kind;
  e.a = static_cast<std::int16_t>(a);
  e.b = static_cast<std::int16_t>(b);
  e.info = info;
  e.block = blk;
}

void Oracle::violation(int node, mem::BlockId b, std::string what) {
  ++violation_count_;
  if (violations_.size() < kMaxStoredViolations)
    violations_.push_back(Violation{what, now(), node, b});
  if (fail_ == FailMode::kAbort) {
    std::fprintf(stderr, "--- oracle event ring (most recent last) ---\n%s",
                 ring_dump().c_str());
    PRESTO_FAIL("coherence oracle: T=" << now() << " node " << node
                                       << " block " << b << ": " << what);
  }
}

void Oracle::on_app_write(int node, mem::BlockId b, std::size_t off,
                          const void* data, std::size_t n) {
  if (LaneBuf* lb = defer_target()) {
    DefRec r;
    r.kind = Ev::kWrite;
    r.t = engine_->now();
    r.a = static_cast<std::int16_t>(node);
    r.block = b;
    r.off = static_cast<std::uint32_t>(off);
    r.n = static_cast<std::uint32_t>(n);
    r.data_off = stash(*lb, data, n);
    r.has_data = true;
    lb->recs.push_back(r);
    return;
  }
  check_write(node, b, off, data, n);
}

void Oracle::check_write(int node, mem::BlockId b, std::size_t off,
                         const void* data, std::size_t n) {
  ensure_block(b);
  if (mode_ == Mode::kSC) {
    // Single-writer: while this node writes, no other node may hold a valid
    // copy (its tag check already guarantees it holds ReadWrite itself).
    for (int other = 0; other < space_.nodes(); ++other) {
      if (other == node) continue;
      const mem::Tag t = space_.tag(other, b);
      if (t != mem::Tag::Invalid)
        violation(node, b,
                  "single-writer violated: write while node " +
                      std::to_string(other) + " holds tag " +
                      std::to_string(static_cast<int>(t)));
    }
  }
  std::memcpy(committed_.data() +
                  static_cast<std::size_t>(b) * space_.block_size() + off,
              data, n);
  const std::int16_t prev = last_writer_[static_cast<std::size_t>(b)];
  if (prev != -1 && prev != static_cast<std::int16_t>(node))
    multi_writer_[static_cast<std::size_t>(b)] = 1;
  last_writer_[static_cast<std::size_t>(b)] = static_cast<std::int16_t>(node);
  ++writes_checked_;
  push_ring(Ev::kWrite, node, -1, static_cast<std::uint8_t>(n), b);
}

void Oracle::on_cc_update(int node, mem::BlockId b, std::size_t off,
                          std::int64_t delta) {
  if (LaneBuf* lb = defer_target()) {
    DefRec r;
    r.kind = Ev::kCcUpdate;
    r.t = engine_->now();
    r.a = static_cast<std::int16_t>(node);
    r.block = b;
    r.off = static_cast<std::uint32_t>(off);
    r.n = sizeof(delta);
    r.data_off = stash(*lb, &delta, sizeof(delta));
    r.has_data = true;
    lb->recs.push_back(r);
    return;
  }
  check_cc_update(node, b, off, delta);
}

void Oracle::check_cc_update(int node, mem::BlockId b, std::size_t off,
                             std::int64_t delta) {
  ensure_block(b);
  // Fold the delta into the committed shadow. last_writer_/multi_writer_
  // stay untouched: a commutative update is not a write in the
  // single-writer sense, and every contributor's delta commutes exactly.
  std::byte* p = committed_.data() +
                 static_cast<std::size_t>(b) * space_.block_size() + off;
  std::int64_t v;
  std::memcpy(&v, p, sizeof(v));
  v += delta;
  std::memcpy(p, &v, sizeof(v));
  ++cc_updates_checked_;
  push_ring(Ev::kCcUpdate, node, -1, 0, b);
}

void Oracle::on_app_read(int node, mem::BlockId b, std::size_t off,
                         const void* seen, std::size_t n) {
  if (LaneBuf* lb = defer_target()) {
    DefRec r;
    r.kind = Ev::kRead;
    r.t = engine_->now();
    r.a = static_cast<std::int16_t>(node);
    r.block = b;
    r.off = static_cast<std::uint32_t>(off);
    r.n = static_cast<std::uint32_t>(n);
    r.data_off = stash(*lb, seen, n);  // value observed, frozen at read time
    r.has_data = true;
    lb->recs.push_back(r);
    return;
  }
  check_read(node, b, off, seen, n);
}

void Oracle::check_read(int node, mem::BlockId b, std::size_t off,
                        const void* seen, std::size_t n) {
  ensure_block(b);
  // Reads of commutative blocks are exempt from the data-value check: the
  // committed shadow folds in every node's privatized delta the instant
  // cc_add runs, while the protocol's merged image only catches up at flush
  // time — a mid-phase read legally observes the pre-merge bytes. The
  // end-of-run final_sweep still compares every valid copy strictly.
  if ((mode_ == Mode::kSC || strict_reads_) && !space_.is_commutative(b)) {
    // Data-value: the bytes this read observed must equal the committed
    // bytes — the most recent write in simulated execution order.
    const std::byte* want = committed_.data() +
                            static_cast<std::size_t>(b) * space_.block_size() +
                            off;
    if (std::memcmp(seen, want, n) != 0)
      violation(node, b,
                "data-value violated: read of " + std::to_string(n) +
                    " bytes at offset " + std::to_string(off) +
                    " observed stale data (last writer node " +
                    std::to_string(last_writer_[static_cast<std::size_t>(b)]) +
                    ")");
  }
  if (mode_ == Mode::kSC) {
    for (int other = 0; other < space_.nodes(); ++other) {
      if (other == node) continue;
      if (space_.tag(other, b) == mem::Tag::ReadWrite)
        violation(node, b,
                  "multiple-reader violated: read while node " +
                      std::to_string(other) + " holds ReadWrite");
    }
  }
  ++reads_checked_;
  push_ring(Ev::kRead, node, -1, static_cast<std::uint8_t>(n), b);
}

void Oracle::on_data_send(int src, int dst, const proto::Msg& m) {
  if (LaneBuf* lb = defer_target()) {
    DefRec r;
    r.kind = Ev::kSend;
    r.t = engine_->now();
    r.a = static_cast<std::int16_t>(src);
    r.b = static_cast<std::int16_t>(dst);
    r.block = m.block;
    r.msg = m;  // trivially copyable; data pointer re-targeted at replay
    if (m.data != nullptr) {
      r.data_off = stash(*lb, m.data, m.data_len);
      r.has_data = true;
    }
    lb->recs.push_back(r);
    return;
  }
  check_send(src, dst, m);
}

void Oracle::check_send(int src, int dst, const proto::Msg& m) {
  const std::size_t bsz = space_.block_size();
  push_ring(Ev::kSend, src, dst, static_cast<std::uint8_t>(m.type), m.block);
  if (m.data == nullptr) return;  // fault-injected drop; installs will catch
  if (m.type == proto::MsgType::CcFlush) {
    // Payload is (word, delta) log entries, not block bytes; the merged
    // result is audited against the committed shadow by final_sweep.
    ++sends_checked_;
    return;
  }
  if (m.data_len != m.count * bsz) {
    violation(src, m.block,
              std::string("payload size mismatch on ") +
                  proto::msg_type_name(m.type) + ": " +
                  std::to_string(m.data_len) + " bytes for " +
                  std::to_string(m.count) + " block(s)");
    return;
  }
  for (std::uint32_t k = 0; k < m.count; ++k) {
    const mem::BlockId b = m.block + k;
    ensure_block(b);
    // Presend coherence: the payload snapshotted into the channel must equal
    // the committed bytes of the block at send time. Under phase consistency
    // only the writer's own publishes are required to be fresh, and only
    // while the publisher is the block's sole writer ever — once two nodes
    // have written the same block (false sharing), each publishes a whole
    // block holding only its own stores, so no single payload can equal the
    // merged committed view.
    // Commutative blocks are exempt: the committed shadow runs ahead of the
    // protocol's merged image between cc_add and flush (see check_read).
    const bool must_match =
        !space_.is_commutative(b) &&
        (mode_ == Mode::kSC ||
         (m.type == proto::MsgType::UpdateData &&
          last_writer_[static_cast<std::size_t>(b)] ==
              static_cast<std::int16_t>(src) &&
          multi_writer_[static_cast<std::size_t>(b)] == 0));
    if (must_match &&
        std::memcmp(m.data + static_cast<std::size_t>(k) * bsz,
                    committed_.data() + static_cast<std::size_t>(b) * bsz,
                    bsz) != 0)
      violation(src, b,
                std::string("presend-coherence violated: ") +
                    proto::msg_type_name(m.type) + " to node " +
                    std::to_string(dst) +
                    " carries bytes != committed (last writer node " +
                    std::to_string(last_writer_[static_cast<std::size_t>(b)]) +
                    ")");
    ++sends_checked_;
  }
}

void Oracle::on_install(int node, mem::BlockId b, const std::byte* data,
                        mem::Tag tag) {
  if (LaneBuf* lb = defer_target()) {
    DefRec r;
    r.kind = Ev::kInstall;
    r.t = engine_->now();
    r.a = static_cast<std::int16_t>(node);
    r.b = static_cast<std::int16_t>(tag);
    r.block = b;
    if (data != nullptr) {
      r.data_off = stash(*lb, data, space_.block_size());
      r.has_data = true;
    }
    lb->recs.push_back(r);
    return;
  }
  check_install(node, b, data, tag);
}

void Oracle::check_install(int node, mem::BlockId b, const std::byte* data,
                           mem::Tag tag) {
  ensure_block(b);
  push_ring(Ev::kInstall, node, static_cast<int>(tag), 0, b);
  // Install coherence: bytes landing at a node must still equal the
  // committed view (FIFO channels guarantee no committed write raced past
  // the payload in flight). Stale valid copies are legal under kPhase.
  if (mode_ == Mode::kSC && data != nullptr && !space_.is_commutative(b) &&
      std::memcmp(data,
                  committed_.data() + static_cast<std::size_t>(b) *
                                          space_.block_size(),
                  space_.block_size()) != 0)
    violation(node, b,
              "install coherence violated: installed bytes != committed "
              "(tag " +
                  std::to_string(static_cast<int>(tag)) + ")");
  ++installs_checked_;
}

void Oracle::on_message(int src, int dst, std::size_t bytes, sim::Time depart,
                        sim::Time arrival) {
  (void)depart;
  (void)arrival;
  if (LaneBuf* lb = defer_target()) {
    // Scalars only; replay pushes the ring entry so triage dumps stay in
    // canonical order alongside the replayed checks.
    DefRec r;
    r.kind = Ev::kNet;
    r.t = engine_->now();
    r.a = static_cast<std::int16_t>(src);
    r.b = static_cast<std::int16_t>(dst);
    r.block = static_cast<mem::BlockId>(bytes);
    lb->recs.push_back(r);
    return;
  }
  push_ring(Ev::kNet, src, dst, 0, static_cast<mem::BlockId>(bytes));
}

void Oracle::replay_window() {
  if (!deferred_) return;
  struct Key {
    sim::Time t;
    std::uint32_t lane;
    std::uint32_t idx;
  };
  std::vector<Key> order;
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane)
    for (std::size_t i = 0; i < lanes_[lane].recs.size(); ++i)
      order.push_back(Key{lanes_[lane].recs[i].t,
                          static_cast<std::uint32_t>(lane),
                          static_cast<std::uint32_t>(i)});
  if (order.empty()) return;
  std::sort(order.begin(), order.end(), [](const Key& x, const Key& y) {
    if (x.t != y.t) return x.t < y.t;
    if (x.lane != y.lane) return x.lane < y.lane;
    return x.idx < y.idx;
  });
  replaying_ = true;
  for (const Key& k : order) {
    const LaneBuf& lb = lanes_[k.lane];
    const DefRec& r = lb.recs[k.idx];
    replay_t_ = r.t;
    const std::byte* d = r.has_data ? lb.bytes.data() + r.data_off : nullptr;
    switch (r.kind) {
      case Ev::kRead:
        check_read(r.a, r.block, r.off, d, r.n);
        break;
      case Ev::kWrite:
        check_write(r.a, r.block, r.off, d, r.n);
        break;
      case Ev::kSend: {
        proto::Msg m = r.msg;
        m.data = d;
        check_send(r.a, r.b, m);
        break;
      }
      case Ev::kInstall:
        check_install(r.a, r.block, d, static_cast<mem::Tag>(r.b));
        break;
      case Ev::kNet:
        push_ring(Ev::kNet, r.a, r.b, 0, r.block);
        break;
      case Ev::kCcUpdate: {
        std::int64_t delta;
        std::memcpy(&delta, d, sizeof(delta));
        check_cc_update(r.a, r.block, r.off, delta);
        break;
      }
    }
  }
  replaying_ = false;
  for (LaneBuf& lb : lanes_) {
    lb.recs.clear();
    lb.bytes.clear();
  }
}

std::size_t Oracle::final_sweep() {
  replay_window();  // drain anything buffered since the last boundary
  if (mode_ != Mode::kSC) return 0;
  std::size_t compared = 0;
  const std::size_t bsz = space_.block_size();
  const std::size_t nblocks = space_.num_blocks();
  for (std::size_t b = 0; b < nblocks; ++b) {
    ensure_block(b);
    const std::byte* want = committed_.data() + b * bsz;
    for (int node = 0; node < space_.nodes(); ++node) {
      if (space_.tag(node, b) == mem::Tag::Invalid) continue;
      const std::byte* have = space_.peek_block(node, b);
      if (have == nullptr) continue;  // tag granted, frame never touched
      ++compared;
      if (std::memcmp(have, want, bsz) != 0)
        violation(node, b,
                  "final sweep: valid copy differs from committed bytes "
                  "(tag " +
                      std::to_string(static_cast<int>(space_.tag(node, b))) +
                      ", last writer node " +
                      std::to_string(last_writer_[b]) + ")");
    }
  }
  return compared;
}

std::string Oracle::ring_dump(std::size_t max_events) const {
  std::ostringstream os;
  const std::size_t have = ring_next_ < kRingSize ? ring_next_ : kRingSize;
  const std::size_t n = have < max_events ? have : max_events;
  for (std::size_t i = ring_next_ - n; i < ring_next_; ++i) {
    const RingEvent& e = ring_[i % kRingSize];
    os << "T=" << e.t << ' ';
    switch (e.kind) {
      case Ev::kRead:
        os << "read  node=" << e.a << " block=" << e.block
           << " len=" << static_cast<int>(e.info);
        break;
      case Ev::kWrite:
        os << "write node=" << e.a << " block=" << e.block
           << " len=" << static_cast<int>(e.info);
        break;
      case Ev::kInstall:
        os << "install node=" << e.a << " block=" << e.block
           << " tag=" << e.b;
        break;
      case Ev::kSend:
        os << "send " << proto::msg_type_name(
                             static_cast<proto::MsgType>(e.info))
           << ' ' << e.a << "->" << e.b << " block=" << e.block;
        break;
      case Ev::kNet:
        os << "net  " << e.a << "->" << e.b << " bytes=" << e.block;
        break;
      case Ev::kCcUpdate:
        os << "cc-update node=" << e.a << " block=" << e.block;
        break;
    }
    os << '\n';
  }
  return os.str();
}

bool oracle_enabled_by_default() {
  const char* v = std::getenv("PRESTO_ORACLE");
  if (v != nullptr && v[0] != '\0') return v[0] != '0';
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

Mode mode_for_protocol(const char* protocol_name) {
  return std::strcmp(protocol_name, "write-update") == 0 ? Mode::kPhase
                                                         : Mode::kSC;
}

}  // namespace presto::check
