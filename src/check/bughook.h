// Hidden fault-injection hooks for validating the checking subsystem.
//
// The invariant oracle and the differential fuzzer are only trustworthy if
// they demonstrably catch real protocol bugs. These hooks let a test (or
// `presto_fuzz --inject-bug=...`) plant a classic coherence bug in an
// otherwise-correct protocol — e.g. an invalidation that is acknowledged but
// never applied — and assert that the oracle fires and the failure replays
// bit-identically. Production code never sets them; the consulting branches
// sit on cold handler paths. The PRESTO_TEST_BUG environment variable seeds
// the flags on first use so subprocess-based tests can inject without an API.
#pragma once

namespace presto::check {

struct BugHooks {
  // Stache's Inv handler acknowledges the invalidation but leaves the stale
  // ReadOnly copy in place — the textbook "lost invalidation" bug. Breaks
  // single-writer/multiple-reader and, later, the data-value invariant.
  bool skip_invalidate = false;

  // The predictive presend pushes block bytes but installs them without
  // updating the bytes at the target (install tag only) — pre-sent data
  // diverges from the home's committed bytes.
  bool drop_presend_data = false;

  // Windowed engines with a worker pool only (workers > 1): the network
  // holds one source's staged mailbox back a full window before flushing it
  // (once per run) — the classic conservative-PDES bug of a flush missing
  // its window boundary. Deliveries slip a window, so the parallel run
  // diverges from the serial windowed canon and the parallel-vs-serial
  // differential must catch it. Serial (workers <= 1) runs are unaffected,
  // which is what lets the same process hold a clean reference.
  bool delay_window_flush = false;

  // Parallel worker pool only (workers > 1): the first helper released in a
  // run believes its stale sense flag already shows the window complete, so
  // it arrives at the barrier without draining its lanes (once per run).
  // Its events execute one window late — per-lane (time, seq) order is
  // intact, so counters and execution results match, but the window-boundary
  // trace stamping order diverges and the parallel differential's trace
  // digest must catch it. Serial runs have no pool and are unaffected.
  bool stale_sense_flag = false;

  // Hybrid NodeSet only (machines > 64 nodes): when clearing the last
  // spill-array member shrinks a sharer set back to its inline
  // representation, the shrink also drops the highest surviving inline
  // member — a lost sharer, so a later invalidation round skips that node
  // and leaves a stale ReadOnly copy the oracle's data-value/single-writer
  // invariants must flag. Machines of <= 64 nodes never spill and are
  // unaffected.
  bool drop_spill_sharer = false;

  // ccached only: the home's merge discards the first (word, delta) entry of
  // every CcFlush it applies — a lost commutative update. The merged image
  // diverges from the oracle's committed shadow (final_sweep) and from every
  // other protocol's result (differential fuzzer).
  bool drop_merge_entry = false;

  // ccached only: the home applies each CcFlush log twice — the classic
  // non-idempotent replay bug for logged updates. Every flushed delta lands
  // doubled, caught the same two ways as drop_merge_entry.
  bool double_apply_on_replay = false;
};

// Mutable process-wide hooks; initialized once from PRESTO_TEST_BUG
// ("skip-invalidate", "drop-presend-data" or "delay-window-flush",
// comma-separable).
BugHooks& bug_hooks();

// Maps a bug name to the corresponding flag; aborts on unknown names.
void set_bug_hook(const char* name, bool on);

}  // namespace presto::check
