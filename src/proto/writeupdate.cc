#include "proto/writeupdate.h"

#include "trace/hooks.h"
#include "util/check.h"

namespace presto::proto {

WriteUpdateProtocol::WriteUpdateProtocol(sim::Engine& engine,
                                         net::Network& net,
                                         mem::GlobalSpace& space,
                                         stats::Recorder& rec,
                                         const ProtoCosts& costs)
    : Protocol(engine, net, space, rec, costs),
      readers_(static_cast<std::size_t>(space.nodes())),
      dirty_(static_cast<std::size_t>(space.nodes())),
      outstanding_(static_cast<std::size_t>(space.nodes()), 0),
      fwd_(static_cast<std::size_t>(space.nodes())),
      stats_(static_cast<std::size_t>(space.nodes())) {
  const std::uint32_t bpp = space.page_size() / space.block_size();
  for (auto& t : readers_) t.configure(bpp);
  for (auto& t : dirty_) t.configure(bpp);
}

std::uint64_t WriteUpdateProtocol::alloc_token(int home, ForwardState init) {
  TokenPool& tp = fwd_[static_cast<std::size_t>(home)];
  std::uint32_t slot;
  if (tp.free_head != kNoSlot) {
    slot = tp.free_head;
    tp.free_head = tp.pool[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(tp.pool.size());
    tp.pool.emplace_back();
  }
  init.live = true;
  init.next_free = kNoSlot;
  tp.pool[slot] = init;
  return static_cast<std::uint64_t>(slot) + 1;
}

WriteUpdateProtocol::ForwardState& WriteUpdateProtocol::forward_state(
    int home, std::uint64_t token) {
  TokenPool& tp = fwd_[static_cast<std::size_t>(home)];
  PRESTO_CHECK(token != 0 && token <= tp.pool.size() &&
                   tp.pool[static_cast<std::size_t>(token - 1)].live,
               "stray forward token " << token);
  return tp.pool[static_cast<std::size_t>(token - 1)];
}

void WriteUpdateProtocol::release_token(int home, std::uint64_t token) {
  auto& fs = forward_state(home, token);
  fs.live = false;
  TokenPool& tp = fwd_[static_cast<std::size_t>(home)];
  fs.next_free = tp.free_head;
  tp.free_head = static_cast<std::uint32_t>(token - 1);
}

std::size_t WriteUpdateProtocol::metadata_bytes() const {
  std::size_t n = Protocol::metadata_bytes();
  for (const auto& t : readers_) {
    n += t.bytes_resident();
    t.for_each(
        [&](mem::BlockId, const util::NodeSet& s) { n += s.heap_bytes(); });
  }
  for (const auto& t : dirty_) n += t.bytes_resident();
  for (const auto& tp : fwd_) n += tp.pool.capacity() * sizeof(ForwardState);
  return n;
}

void WriteUpdateProtocol::on_fault(int node, mem::BlockId b, bool is_write) {
  auto& c = rec_.node(node);
  const int home = space_.home_of_block(b);
  auto& p = proc(node);

  if (is_write) {
    ++c.write_faults;
    dirty_[static_cast<std::size_t>(node)].at(b) = 1;
    if (space_.tag(node, b) == mem::Tag::ReadOnly) {
      // Upgrade in place: no invalidations in an update protocol.
      p.charge(costs_.fault);
      space_.set_tag(node, b, mem::Tag::ReadWrite);
      return;
    }
    PRESTO_CHECK(home != node, "home block lost ReadWrite under write-update");
  } else {
    ++c.read_faults;
  }
  if (home == node) ++c.local_faults;

  const sim::Time t0 = p.now();
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_miss_start(node, b, is_write, t0);
  p.charge(costs_.fault);
  Msg m;
  m.type = MsgType::WuGetS;
  m.src = node;
  m.block = b;
  m.tag = static_cast<std::uint8_t>(is_write ? mem::Tag::ReadWrite
                                             : mem::Tag::ReadOnly);
  send_from_app(node, home, std::move(m));

  set_waiting(node, b);
  while (is_write ? space_.tag(node, b) != mem::Tag::ReadWrite
                  : space_.tag(node, b) == mem::Tag::Invalid)
    p.block();
  clear_waiting(node);
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_miss_end(node, b, is_write, p.now());
  c.remote_wait += p.now() - t0;
}

void WriteUpdateProtocol::send_update_run(int src, int dst, mem::BlockId b0,
                                          std::uint32_t count,
                                          std::uint64_t token, bool from_app) {
  const std::size_t bsz = space_.block_size();
  Msg m;
  m.type = MsgType::UpdateData;
  m.src = src;
  m.block = b0;
  m.count = count;
  m.token = token;
  // Runs can straddle page frames, so gather into the node's scratch. The
  // callers (wu_publish and forward_run) send immediately with no yield
  // between this fill and the ring copy in post().
  std::byte* buf = scratch(src, count * bsz);
  for (std::uint32_t k = 0; k < count; ++k)
    std::memcpy(buf + k * bsz, space_.block_data(src, b0 + k), bsz);
  m.data = buf;
  m.data_len = count * static_cast<std::uint32_t>(bsz);
  ++stats_[static_cast<std::size_t>(src)].update_msgs;
  stats_[static_cast<std::size_t>(src)].update_blocks += count;
  if (from_app)
    send_from_app(src, dst, std::move(m));
  else
    send_from_handler(src, dst, std::move(m));
}

int WriteUpdateProtocol::forward_run(int home, mem::BlockId b0,
                                     std::uint32_t count, std::uint64_t token,
                                     int skip_node) {
  int sent = 0;
  std::uint32_t i = 0;
  while (i < count) {
    const util::NodeSet mask = reader_mask(home, b0 + i).without(skip_node);
    // Extend a sub-run with an identical reader mask.
    std::uint32_t j = i + 1;
    while (j < count &&
           reader_mask(home, b0 + j).without(skip_node) == mask)
      ++j;
    if (mask.any()) {
      mask.for_each([&](int r) {
        send_update_run(home, r, b0 + i, j - i, token, /*from_app=*/false);
        ++sent;
      });
    }
    i = j;
  }
  return sent;
}

void WriteUpdateProtocol::wu_publish(int node, mem::Addr base,
                                     std::size_t len) {
  auto& p = proc(node);
  auto& out = outstanding_[static_cast<std::size_t>(node)];
  PRESTO_CHECK(out == 0, "nested publish on node " << node);
  ++stats_[static_cast<std::size_t>(node)].publishes;

  const mem::BlockId first = space_.block_of(base);
  const mem::BlockId last = space_.block_of(base + len - 1);
  auto& dirty = dirty_[static_cast<std::size_t>(node)];

  // Home-owned blocks: push directly to every recorded reader, coalescing
  // runs with identical reader masks.
  mem::BlockId b = first;
  while (b <= last) {
    if (space_.home_of_block(b) != node) {
      ++b;
      continue;
    }
    const util::NodeSet mask = reader_mask(node, b);
    mem::BlockId e = b + 1;
    while (e <= last && space_.home_of_block(e) == node &&
           reader_mask(node, e) == mask)
      ++e;
    if (mask.any()) {
      mask.for_each([&](int r) {
        p.charge(costs_.presend_per_block);
        send_update_run(node, r, b, static_cast<std::uint32_t>(e - b),
                        /*token=*/0, /*from_app=*/true);
        ++out;
      });
    }
    b = e;
  }

  // Dirty remote blocks: push coalesced runs to the home, which forwards to
  // its readers and acknowledges end-to-end.
  auto is_dirty = [&](mem::BlockId blk) {
    const std::uint8_t* d = dirty.peek(blk);
    return d != nullptr && *d != 0;
  };
  b = first;
  while (b <= last) {
    if (space_.home_of_block(b) == node || !is_dirty(b)) {
      ++b;
      continue;
    }
    const int home = space_.home_of_block(b);
    mem::BlockId e = b + 1;
    while (e <= last && space_.home_of_block(e) == home && is_dirty(e)) ++e;
    p.charge(costs_.presend_per_block);
    // Forward-tracking state is allocated by the home when the run arrives
    // (the token is home-lane-local); a writer->home run always travels
    // with token 0.
    send_update_run(node, home, b, static_cast<std::uint32_t>(e - b),
                    /*token=*/0, /*from_app=*/true);
    ++out;
    b = e;
  }

  while (out > 0) p.block();
}

void WriteUpdateProtocol::handle(int self, const Msg& m) {
  const std::size_t bsz = space_.block_size();
  switch (m.type) {
    case MsgType::WuGetS: {
      // self is home. Record readers (read requests only) and reply with
      // the home's current contents; no invalidation, no recall.
      if (static_cast<mem::Tag>(m.tag) == mem::Tag::ReadOnly) {
        ++rec_.node(self).dir_probes;
        readers_[static_cast<std::size_t>(self)].at(m.block).set(m.src);
      }
      Msg r;
      r.type = MsgType::WuData;
      r.src = self;
      r.block = m.block;
      r.tag = m.tag;
      r.data = space_.block_data(self, m.block);
      r.data_len = static_cast<std::uint32_t>(bsz);
      send_from_handler(self, m.src, std::move(r));
      break;
    }
    case MsgType::WuData:
      install_block(self, m.block, m.data, static_cast<mem::Tag>(m.tag));
      break;

    case MsgType::UpdateData: {
      // Install the run locally. At a reader, the tag stays whatever it was
      // (ReadOnly); at the home it stays ReadWrite.
      for (std::uint32_t k = 0; k < m.count; ++k) {
        std::memcpy(space_.block_data(self, m.block + k),
                    m.data + k * bsz, bsz);
        if (space_.tag(self, m.block + k) == mem::Tag::Invalid)
          space_.set_tag(self, m.block + k, mem::Tag::ReadOnly);
        notify_install(self, m.block + k, m.data + k * bsz,
                       space_.tag(self, m.block + k));
      }
      if (space_.home_of_block(m.block) != self) {
        // Push to a reader (direct token==0, or forwarded token!=0):
        // acknowledge the sender, echoing the token for forward matching.
        Msg r;
        r.type = MsgType::UpdateAck;
        r.src = self;
        r.block = m.block;
        r.count = m.count;
        r.token = m.token;
        send_from_handler(self, m.src, std::move(r));
      } else {
        // Writer->home run: forward to readers, then acknowledge. The
        // forward state is allocated here, at the home, so every touch of
        // the token pool happens on the home's lane.
        const std::uint64_t token = alloc_token(
            self, ForwardState{m.src, /*acks_left=*/-1, m.count, false,
                               kNoSlot});
        const int sent = forward_run(self, m.block, m.count, token, m.src);
        if (sent == 0) {
          release_token(self, token);
          Msg r;
          r.type = MsgType::UpdateAck;
          r.src = self;
          r.block = m.block;
          r.count = m.count;
          r.token = 0;
          send_from_handler(self, m.src, std::move(r));
        } else {
          forward_state(self, token).acks_left = sent;
        }
      }
      break;
    }

    case MsgType::UpdateAck: {
      if (m.token == 0) {
        // Final acknowledgement to a publisher.
        if (--outstanding_[static_cast<std::size_t>(self)] == 0)
          proc(self).wake(engine_.now());
      } else {
        // Reader ack for a forwarded run; self is the home.
        auto& fs = forward_state(self, m.token);
        if (--fs.acks_left == 0) {
          Msg r;
          r.type = MsgType::UpdateAck;
          r.src = self;
          r.block = m.block;
          r.count = fs.count;
          r.token = 0;
          send_from_handler(self, fs.writer, std::move(r));
          release_token(self, m.token);
        }
      }
      break;
    }

    default:
      PRESTO_FAIL("unexpected message " << msg_type_name(m.type)
                                        << " in write-update protocol");
  }
}

}  // namespace presto::proto
