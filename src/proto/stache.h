// Stache: Blizzard's default sequentially-consistent, directory-based
// write-invalidate protocol (paper §3.1).
//
// Every block has a home node holding its directory entry. Requests are
// serialized per block at the home: while a transaction is in flight the
// entry is busy and later requests queue. Directory states (home's view):
//
//   Idle    — no remote copies; the home's own tag is ReadWrite.
//   Shared  — remote ReadOnly copies in `readers`; home tag is ReadOnly.
//   Excl    — a single remote ReadWrite `owner`; home tag is Invalid.
//
// The four-message producer-consumer pattern of §3.2 falls out directly:
// consumer GetS -> home RecallS -> producer RecallAckData -> home DataS.
//
// Directory layout: home assignment is page-grained, so each home's
// directory is a flat block-indexed table of page chunks
// (util::BlockTable<DirEntry>) rather than a hash map — a probe is two
// shifts and an indirection, and phase-repetitive traffic walks dense,
// cache-resident runs (docs/performance.md §8). Queued requests spill into
// a pooled FIFO chain (PendPool) instead of a per-entry deque, so
// steady-state queuing never allocates.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "proto/protocol.h"
#include "util/bitset.h"
#include "util/block_table.h"

namespace presto::proto {

class StacheProtocol : public Protocol {
 public:
  // cluster_nodes > 1 turns on the two-level cluster directory: directory
  // sharer sets track clusters of cluster_nodes consecutive nodes instead of
  // individual nodes (the coarse-vector organization), shrinking per-entry
  // metadata by that factor at scale. Invalidations conservatively fan out
  // to every member of a marked cluster — an Inv at a node without a copy
  // is harmless (the tag is already Invalid and the ack still counts), it
  // just costs extra messages; the scale benchmarks measure where the
  // metadata saving beats that overhead. 0 (the default) keeps exact
  // node-grain sets and is bit-identical to the pre-cluster protocol.
  StacheProtocol(sim::Engine& engine, net::Network& net,
                 mem::GlobalSpace& space, stats::Recorder& rec,
                 const ProtoCosts& costs, int cluster_nodes = 0);

  const char* name() const override { return "stache"; }

  void on_fault(int node, mem::BlockId b, bool is_write) override;

  // Debug validator: asserts the directory and every node's access tags
  // agree for all quiescent (non-busy) blocks —
  //   Idle:    home ReadWrite, everyone else Invalid;
  //   Shared:  home ReadOnly, remote tags ReadOnly exactly on `readers`;
  //   Excl:    owner ReadWrite, everyone else (incl. home) Invalid.
  // Call at barrier-aligned points (no transactions in flight). Aborts on
  // violation; returns the number of directory entries checked.
  std::size_t check_invariants() const;

  static constexpr std::uint32_t kNoPend = 0xffffffffu;

  struct DirEntry {
    enum class S : std::uint8_t { Idle, Shared, Excl };
    S state = S::Idle;

    // In-flight transaction (requests queue behind it).
    bool busy = false;
    bool req_write = false;
    // Predictive protocol: a presend-initiated recall is in flight (its
    // RecallAckData must not run the normal transaction-completion path).
    bool presend_recall = false;
    std::int32_t owner = -1;     // remote ReadWrite owner when Excl
    std::int32_t req_node = -1;
    std::int32_t acks_needed = 0;
    util::NodeSet readers;       // remote ReadOnly copies
    // Pooled FIFO chain of queued (requester, is_write) requests.
    std::uint32_t pend_head = kNoPend;
    std::uint32_t pend_tail = kNoPend;

    bool has_pending() const { return pend_head != kNoPend; }
  };

  // Read-only audit walk over every materialized directory entry (test
  // hook: the dir-audit test rebuilds a reference directory from the access
  // tags and cross-checks it against this flat layout).
  template <typename Fn>
  void for_each_dir_entry(Fn&& fn) const {
    for (int h = 0; h < space_.nodes(); ++h)
      dir_[static_cast<std::size_t>(h)].for_each(
          [&](mem::BlockId b, const DirEntry& d) { fn(h, b, d); });
  }

  // Host bytes held by protocol metadata (directory chunks, pending pool,
  // dispatch rings, scratch) — surfaced as stats::HostCounters::metadata_bytes.
  std::size_t metadata_bytes() const override;

 protected:
  void handle(int self, const Msg& m) override;

  // Home-side transaction engine. A directory probe is the protocol's
  // single hottest metadata access; every call is counted per home node.
  DirEntry& dir(int home, mem::BlockId b) {
    ++rec_.node(home).dir_probes;
    return dir_[static_cast<std::size_t>(home)].at(b);
  }
  void start_request(int home, mem::BlockId b, int requester, bool is_write);
  void complete_gets(int home, mem::BlockId b, int requester);
  void complete_getx(int home, mem::BlockId b, int requester);
  void finish_transaction(int home, mem::BlockId b);
  void grant(int home, mem::BlockId b, int requester, mem::Tag tag);

  // Pending-request spill arena: fixed-size nodes recycled via a freelist.
  void pend_push(DirEntry& d, int node, bool is_write);
  std::pair<int, bool> pend_pop(DirEntry& d);

  // Hook for the predictive protocol: called for every request the home
  // processes (all of which involve communication — purely local accesses
  // never fault through here). May be overridden to record schedules.
  virtual void record_request(int home, mem::BlockId b, int requester,
                              bool is_write) {
    (void)home;
    (void)b;
    (void)requester;
    (void)is_write;
  }

  // Hook for the predictive protocol's bulk/presend messages.
  virtual void handle_extra(int self, const Msg& m);

  bool access_ok(int node, mem::BlockId b, bool is_write) const {
    const mem::Tag t = space_.tag(node, b);
    return is_write ? t == mem::Tag::ReadWrite : t != mem::Tag::Invalid;
  }

  // ---- Cluster directory (two-level sharer tracking) -----------------------
  bool coarse_dir() const { return cluster_ > 1; }
  // The bit a sharing `node` occupies in a directory sharer set.
  int sharer_id(int node) const {
    return cluster_ > 1 ? node / cluster_ : node;
  }
  // Expands a directory sharer set into the target nodes an invalidation or
  // push must reach, ascending, skipping skip_a/skip_b (typically requester
  // and home). Exact mode visits the members themselves; coarse mode visits
  // every node of every marked cluster — the conservative fan-out.
  template <typename Fn>
  void for_each_sharer_target(const util::NodeSet& s, int skip_a, int skip_b,
                              Fn&& fn) const {
    if (cluster_ <= 1) {
      s.for_each([&](int n) {
        if (n != skip_a && n != skip_b) fn(n);
      });
      return;
    }
    s.for_each([&](int cl) {
      const int lo = cl * cluster_;
      int hi = lo + cluster_;
      if (hi > space_.nodes()) hi = space_.nodes();
      for (int n = lo; n < hi; ++n)
        if (n != skip_a && n != skip_b) fn(n);
    });
  }

  // dir_[home]: flat block-indexed directory, chunk-materialized per page.
  std::vector<util::BlockTable<DirEntry>> dir_;

 private:
  const int cluster_;  // nodes per directory cluster; <= 1 = exact sets
  struct PendNode {
    std::int32_t node = -1;
    bool is_write = false;
    std::uint32_t next = kNoPend;
  };
  std::vector<PendNode> pend_pool_;
  std::uint32_t pend_free_ = kNoPend;
};

}  // namespace presto::proto
