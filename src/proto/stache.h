// Stache: Blizzard's default sequentially-consistent, directory-based
// write-invalidate protocol (paper §3.1).
//
// Every block has a home node holding its directory entry. Requests are
// serialized per block at the home: while a transaction is in flight the
// entry is busy and later requests queue. Directory states (home's view):
//
//   Idle    — no remote copies; the home's own tag is ReadWrite.
//   Shared  — remote ReadOnly copies in `readers`; home tag is ReadOnly.
//   Excl    — a single remote ReadWrite `owner`; home tag is Invalid.
//
// The four-message producer-consumer pattern of §3.2 falls out directly:
// consumer GetS -> home RecallS -> producer RecallAckData -> home DataS.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "proto/protocol.h"

namespace presto::proto {

class StacheProtocol : public Protocol {
 public:
  StacheProtocol(sim::Engine& engine, net::Network& net,
                 mem::GlobalSpace& space, stats::Recorder& rec,
                 const ProtoCosts& costs);

  const char* name() const override { return "stache"; }

  void on_fault(int node, mem::BlockId b, bool is_write) override;

  // Debug validator: asserts the directory and every node's access tags
  // agree for all quiescent (non-busy) blocks —
  //   Idle:    home ReadWrite, everyone else Invalid;
  //   Shared:  home ReadOnly, remote tags ReadOnly exactly on `readers`;
  //   Excl:    owner ReadWrite, everyone else (incl. home) Invalid.
  // Call at barrier-aligned points (no transactions in flight). Aborts on
  // violation; returns the number of directory entries checked.
  std::size_t check_invariants() const;

 protected:
  struct DirEntry {
    enum class S : std::uint8_t { Idle, Shared, Excl };
    S state = S::Idle;
    std::uint64_t readers = 0;  // remote ReadOnly copies (bit per node)
    int owner = -1;             // remote ReadWrite owner when Excl

    // In-flight transaction (requests queue behind it).
    bool busy = false;
    int req_node = -1;
    bool req_write = false;
    int acks_needed = 0;
    std::deque<std::pair<int, bool>> pending;  // (requester, is_write)
  };

  void handle(int self, const Msg& m) override;

  // Home-side transaction engine.
  DirEntry& dir(int home, mem::BlockId b);
  void start_request(int home, mem::BlockId b, int requester, bool is_write);
  void complete_gets(int home, mem::BlockId b, int requester);
  void complete_getx(int home, mem::BlockId b, int requester);
  void finish_transaction(int home, mem::BlockId b);
  void grant(int home, mem::BlockId b, int requester, mem::Tag tag);

  // Hook for the predictive protocol: called for every request the home
  // processes (all of which involve communication — purely local accesses
  // never fault through here). May be overridden to record schedules.
  virtual void record_request(int home, mem::BlockId b, int requester,
                              bool is_write) {
    (void)home;
    (void)b;
    (void)requester;
    (void)is_write;
  }

  // Hook for the predictive protocol's bulk/presend messages.
  virtual void handle_extra(int self, const Msg& m);

  bool access_ok(int node, mem::BlockId b, bool is_write) const {
    const mem::Tag t = space_.tag(node, b);
    return is_write ? t == mem::Tag::ReadWrite : t != mem::Tag::Invalid;
  }

  static std::uint64_t bit(int n) { return 1ULL << n; }

  // dir_[home] maps block -> entry, created on first request.
  std::vector<std::unordered_map<mem::BlockId, DirEntry>> dir_;
};

}  // namespace presto::proto
