// CCached: commutative-update protocol for reduction-tagged blocks.
//
// Blocks inside a mem::GlobalSpace::set_commutative region may be updated
// with order-independent 64-bit integer adds (NodeCtx::cc_add). Instead of
// faulting for ReadWrite ownership — which turns a hot reduction block into
// an invalidation ping-pong between every contributing node — each node
// privatizes its adds into a per-block word log (delta per 8-byte word) and
// ships the log to the block's home as one CcFlush message at a phase
// boundary (NodeCtx::cc_flush) or on demand when the node itself faults on
// the block. The home serializes flushes per block, quiesces remote copies
// through the ordinary Stache transaction engine (a home write request), and
// folds the deltas into its own — now sole — copy. Integer addition commutes
// exactly, so the merged image is bit-identical regardless of flush order,
// which keeps the protocol inside the golden-pin and differential-fuzzer
// equivalence tiers.
//
// Ordinary (untagged) blocks see stock Stache semantics: this class only
// adds behaviour, never changes the base protocol's, so ccached is
// bit-identical to stache on workloads that never call cc_add.
//
// Required application discipline (enforced by the apps and the fuzzer's
// program generator): all cc_add updates to a block happen-before a
// cc_flush + barrier, and only after that barrier may any node read or
// plainly write the block. The oracle's final_sweep stays strict for
// commutative blocks — a lost or double-applied delta is caught there.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "proto/stache.h"
#include "util/block_table.h"

namespace presto::proto {

class CCachedProtocol : public StacheProtocol {
 public:
  CCachedProtocol(sim::Engine& engine, net::Network& net,
                  mem::GlobalSpace& space, stats::Recorder& rec,
                  const ProtoCosts& costs, int cluster_nodes = 0);

  const char* name() const override { return "ccached"; }

  // A fault on a commutative block first flushes the node's own pending
  // deltas for it (they must reach the home before the node observes the
  // block), then falls through to the Stache miss path.
  void on_fault(int node, mem::BlockId b, bool is_write) override;

  // ---- App-thread API (runtime::NodeCtx) -----------------------------------

  // Privatizes `delta` against the 8-byte word at address a (which must lie
  // in a commutative region, 8-byte aligned). No permission needed, no
  // messages; the update becomes globally visible when the log flushes.
  void cc_update(int node, mem::Addr a, std::int64_t delta);

  // Flushes every block the node holds pending deltas for, in first-touch
  // order. Each block's flush is one CcFlush -> merge -> CcFlushAck round
  // trip, waited out serially on the app thread and bracketed as a write
  // miss (trace MissClass::kMerge), so Σ miss latency == Σ remote_wait holds.
  void cc_flush(int node);

  // One on-the-wire log entry: delta for one 8-byte word of the block.
  struct FlushEntry {
    std::uint64_t word = 0;  // word index within the block
    std::int64_t delta = 0;
  };
  static_assert(sizeof(FlushEntry) == 16);

  struct CcStats {
    std::uint64_t flushes = 0;         // CcFlush messages sent
    std::uint64_t flushed_entries = 0; // log entries shipped
    std::uint64_t merged_flushes = 0;  // flushes folded in at homes
    std::uint64_t merged_entries = 0;  // entries folded in at homes
  };
  const CcStats& cc_stats() const { return cc_; }

  std::size_t metadata_bytes() const override;

 protected:
  void handle_extra(int self, const Msg& m) override;

 private:
  // Per-block privatized delta log: one slot per 8-byte word.
  struct WordLog {
    mem::BlockId block = 0;
    std::vector<std::int64_t> delta;  // words_per_block_ entries
    std::vector<std::uint8_t> used;
  };
  // Per-node log set: block -> pool slot (+1; 0 = none), pool recycled via a
  // freelist, `active` keeps first-touch order for deterministic flushing.
  struct NodeLog {
    util::BlockTable<std::uint32_t> slot;
    std::vector<std::uint32_t> active;
    std::vector<WordLog> pool;
    std::vector<std::uint32_t> free;
  };
  // A flush waiting to merge at its home. Entries are copied out of the
  // dispatch ring (the ring record is only valid during handle()).
  struct FlushOp {
    std::int32_t src = -1;
    mem::BlockId block = 0;
    std::vector<FlushEntry> entries;
  };

  // Sends one block's log to its home and waits for the merge ack.
  void flush_block(int node, mem::BlockId b);
  // Drains the home's flush queue: merges every op whose directory entry is
  // quiescent-Idle, otherwise starts a home write request to quiesce the
  // block and re-polls after a handler occupancy. At most one retry pump is
  // scheduled per home at a time.
  void try_pump(int home);
  void apply_flush(int home, const FlushOp& op);

  const std::uint32_t words_per_block_;
  std::vector<NodeLog> logs_;
  std::vector<std::uint8_t> flush_wait_;  // app thread parked on a merge ack
  std::vector<std::deque<FlushOp>> flushq_;
  std::vector<std::uint8_t> pump_scheduled_;
  CcStats cc_;
};

}  // namespace presto::proto
