// Application-specific write-update protocol — the substrate of the
// hand-optimized SPMD baseline (Falsafi et al. [5]) that the paper compares
// Barnes against.
//
// Unlike Stache, writes never invalidate: a write fault upgrades the local
// copy in place (fetching current contents from the home if the block was
// not cached) and the writer remembers the block as dirty. The application
// publishes its dirty data at phase boundaries with wu_publish(), which
// pushes coalesced update messages to the home and on to every recorded
// reader, blocking until the final recipients acknowledge. As the paper
// notes (§3.2), update protocols do not provide sequential consistency; the
// SPMD application is responsible for phase synchronization (publish +
// barrier before readers consume).
//
// Metadata layout mirrors Stache's flat directory: reader sets and dirty
// marks live in block-indexed page chunks (util::BlockTable) keyed straight
// by block id, and in-flight forward state lives in a token slot pool —
// the wire token is the slot index + 1, recycled LIFO, so steady-state
// publishing never touches a hash table or allocates.
#pragma once

#include <vector>

#include "proto/protocol.h"
#include "util/bitset.h"
#include "util/block_table.h"

namespace presto::proto {

class WriteUpdateProtocol : public Protocol {
 public:
  WriteUpdateProtocol(sim::Engine& engine, net::Network& net,
                      mem::GlobalSpace& space, stats::Recorder& rec,
                      const ProtoCosts& costs);

  const char* name() const override { return "write-update"; }

  void on_fault(int node, mem::BlockId b, bool is_write) override;

  // Pushes every dirty/homed block in [base, base+len) to its sharers and
  // waits for end-to-end acknowledgements. Runs on the node's processor
  // thread; the application must follow with a barrier before readers
  // consume the values.
  void wu_publish(int node, mem::Addr base, std::size_t len);

  // Summed over the per-node shards (lane-local under the windowed engine).
  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t update_blocks = 0;
    std::uint64_t update_msgs = 0;
  };
  Stats stats() const {
    Stats s;
    for (const Stats& t : stats_) {
      s.publishes += t.publishes;
      s.update_blocks += t.update_blocks;
      s.update_msgs += t.update_msgs;
    }
    return s;
  }

  std::size_t metadata_bytes() const override;

 protected:
  void handle(int self, const Msg& m) override;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct ForwardState {
    std::int32_t writer = -1;
    std::int32_t acks_left = 0;
    std::uint32_t count = 0;
    bool live = false;
    std::uint32_t next_free = kNoSlot;
  };

  // Reader set recorded at `home` for block b (empty if never recorded).
  util::NodeSet reader_mask(int home, mem::BlockId b) {
    ++rec_.node(home).dir_probes;
    const util::NodeSet* s =
        readers_[static_cast<std::size_t>(home)].peek(b);
    return s == nullptr ? util::NodeSet{} : *s;
  }

  // Token slot pool, sharded per home: wire token = slot + 1 (0 means
  // "final ack, no forward state"). Forward state lives at the run's home
  // and is allocated, read and released only from the home's handlers — its
  // lane — so concurrently-draining lanes never share a pool (the windowed
  // engine's workers would race on a global freelist). Slots recycle LIFO;
  // each pool only grows to the peak number of concurrently in-flight
  // forwarded runs homed there.
  std::uint64_t alloc_token(int home, ForwardState init);
  ForwardState& forward_state(int home, std::uint64_t token);
  void release_token(int home, std::uint64_t token);

  // Forwards a run of blocks installed at the home to all readers; returns
  // the number of reader messages sent (0 if no readers).
  int forward_run(int home, mem::BlockId b0, std::uint32_t count,
                  std::uint64_t token, int skip_node);
  void send_update_run(int src, int dst, mem::BlockId b0, std::uint32_t count,
                       std::uint64_t token, bool from_app);

  // readers_[home].at(block) — remote ReadOnly copies recorded at the home.
  std::vector<util::BlockTable<util::NodeSet>> readers_;
  // dirty_[node].at(block) — non-home blocks written locally since startup.
  std::vector<util::BlockTable<std::uint8_t>> dirty_;
  std::vector<int> outstanding_;  // publish acks awaited per node
  struct TokenPool {
    std::vector<ForwardState> pool;
    std::uint32_t free_head = kNoSlot;
  };
  std::vector<TokenPool> fwd_;  // [home]
  std::vector<Stats> stats_;  // [node]
};

}  // namespace presto::proto
