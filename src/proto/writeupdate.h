// Application-specific write-update protocol — the substrate of the
// hand-optimized SPMD baseline (Falsafi et al. [5]) that the paper compares
// Barnes against.
//
// Unlike Stache, writes never invalidate: a write fault upgrades the local
// copy in place (fetching current contents from the home if the block was
// not cached) and the writer remembers the block as dirty. The application
// publishes its dirty data at phase boundaries with wu_publish(), which
// pushes coalesced update messages to the home and on to every recorded
// reader, blocking until the final recipients acknowledge. As the paper
// notes (§3.2), update protocols do not provide sequential consistency; the
// SPMD application is responsible for phase synchronization (publish +
// barrier before readers consume).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/protocol.h"

namespace presto::proto {

class WriteUpdateProtocol : public Protocol {
 public:
  WriteUpdateProtocol(sim::Engine& engine, net::Network& net,
                      mem::GlobalSpace& space, stats::Recorder& rec,
                      const ProtoCosts& costs);

  const char* name() const override { return "write-update"; }

  void on_fault(int node, mem::BlockId b, bool is_write) override;

  // Pushes every dirty/homed block in [base, base+len) to its sharers and
  // waits for end-to-end acknowledgements. Runs on the node's processor
  // thread; the application must follow with a barrier before readers
  // consume the values.
  void wu_publish(int node, mem::Addr base, std::size_t len);

  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t update_blocks = 0;
    std::uint64_t update_msgs = 0;
  };
  const Stats& stats() const { return stats_; }

 protected:
  void handle(int self, const Msg& m) override;

 private:
  struct ForwardState {
    int writer = -1;
    int acks_left = 0;
    std::uint32_t count = 0;
  };

  // Forwards a run of blocks installed at the home to all readers; returns
  // the number of reader messages sent (0 if no readers).
  int forward_run(int home, mem::BlockId b0, std::uint32_t count,
                  std::uint64_t token, int skip_node);
  void send_update_run(int src, int dst, mem::BlockId b0, std::uint32_t count,
                       std::uint64_t token, bool from_app);

  static std::uint64_t bit(int n) { return 1ULL << n; }

  // readers_[home][block] — remote ReadOnly copies recorded at the home.
  std::vector<std::unordered_map<mem::BlockId, std::uint64_t>> readers_;
  // dirty_[node] — non-home blocks written locally since the last publish.
  std::vector<std::unordered_set<mem::BlockId>> dirty_;
  std::vector<int> outstanding_;  // publish acks awaited per node
  std::unordered_map<std::uint64_t, ForwardState> forwards_;
  std::uint64_t next_token_ = 1;
  Stats stats_;
};

}  // namespace presto::proto
