#include "proto/stache.h"

#include <cstdlib>

#include "check/bughook.h"
#include "trace/hooks.h"
#include "util/check.h"

namespace presto::proto {

namespace {
// Set PRESTO_STACHE_TRACE=<block id> to log every event on that block.
long trace_block() {
  static const long b = [] {
    const char* v = std::getenv("PRESTO_STACHE_TRACE");
    return v == nullptr ? -1L : std::strtol(v, nullptr, 10);
  }();
  return b;
}
#define STACHE_TRACE(blk, ...)                                        \
  do {                                                                \
    if (static_cast<long>(blk) == trace_block()) [[unlikely]] {       \
      std::fprintf(stderr, __VA_ARGS__);                              \
    }                                                                 \
  } while (0)
}  // namespace

StacheProtocol::StacheProtocol(sim::Engine& engine, net::Network& net,
                               mem::GlobalSpace& space, stats::Recorder& rec,
                               const ProtoCosts& costs, int cluster_nodes)
    : Protocol(engine, net, space, rec, costs),
      dir_(static_cast<std::size_t>(space.nodes())),
      cluster_(cluster_nodes) {
  PRESTO_CHECK(cluster_nodes >= 0 && cluster_nodes <= space.nodes(),
               "cluster size " << cluster_nodes << " on a " << space.nodes()
                               << "-node machine");
  const std::uint32_t bpp = space.page_size() / space.block_size();
  for (auto& t : dir_) t.configure(bpp);
}

void StacheProtocol::pend_push(DirEntry& d, int node, bool is_write) {
  std::uint32_t idx;
  if (pend_free_ != kNoPend) {
    idx = pend_free_;
    pend_free_ = pend_pool_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(pend_pool_.size());
    pend_pool_.emplace_back();
  }
  auto& n = pend_pool_[idx];
  n.node = node;
  n.is_write = is_write;
  n.next = kNoPend;
  if (d.pend_tail == kNoPend) {
    d.pend_head = idx;
  } else {
    pend_pool_[d.pend_tail].next = idx;
  }
  d.pend_tail = idx;
}

std::pair<int, bool> StacheProtocol::pend_pop(DirEntry& d) {
  PRESTO_CHECK(d.pend_head != kNoPend, "pend_pop on empty chain");
  const std::uint32_t idx = d.pend_head;
  auto& n = pend_pool_[idx];
  const std::pair<int, bool> out{n.node, n.is_write};
  d.pend_head = n.next;
  if (d.pend_head == kNoPend) d.pend_tail = kNoPend;
  n.next = pend_free_;
  pend_free_ = idx;
  return out;
}

std::size_t StacheProtocol::metadata_bytes() const {
  std::size_t n = Protocol::metadata_bytes();
  for (const auto& t : dir_) {
    n += t.bytes_resident();
    t.for_each([&](mem::BlockId, const DirEntry& d) {
      n += d.readers.heap_bytes();
    });
  }
  n += pend_pool_.capacity() * sizeof(PendNode);
  return n;
}

std::size_t StacheProtocol::check_invariants() const {
  std::size_t checked = 0;
  for (int h = 0; h < space_.nodes(); ++h) {
    dir_[static_cast<std::size_t>(h)].for_each([&](mem::BlockId b,
                                                   const DirEntry& d) {
      if (d.busy) return;  // transient transaction state
      ++checked;
      switch (d.state) {
        case DirEntry::S::Idle:
          PRESTO_CHECK(space_.tag(h, b) == mem::Tag::ReadWrite,
                       "Idle block " << b << ": home " << h
                                     << " lost ReadWrite");
          for (int n = 0; n < space_.nodes(); ++n)
            PRESTO_CHECK(n == h || space_.tag(n, b) == mem::Tag::Invalid,
                         "Idle block " << b << ": stale copy at node " << n);
          break;
        case DirEntry::S::Shared:
          PRESTO_CHECK(space_.tag(h, b) == mem::Tag::ReadOnly,
                       "Shared block " << b << ": home tag wrong");
          PRESTO_CHECK(d.readers.any(),
                       "Shared block " << b << " with no readers");
          for (int n = 0; n < space_.nodes(); ++n) {
            if (n == h) continue;
            const bool listed = d.readers.test(sharer_id(n));
            const mem::Tag t = space_.tag(n, b);
            // Exact sets agree with the tags both ways; a coarse cluster bit
            // only bounds its members from above (a member may hold no copy).
            PRESTO_CHECK(listed ? (coarse_dir() || t == mem::Tag::ReadOnly)
                                : t == mem::Tag::Invalid,
                         "Shared block " << b << ": node " << n << " tag "
                                         << static_cast<int>(t)
                                         << " listed=" << listed);
          }
          break;
        case DirEntry::S::Excl:
          PRESTO_CHECK(d.owner >= 0 && d.owner != h,
                       "Excl block " << b << ": bad owner " << d.owner);
          PRESTO_CHECK(space_.tag(d.owner, b) == mem::Tag::ReadWrite,
                       "Excl block " << b << ": owner " << d.owner
                                     << " lacks ReadWrite");
          for (int n = 0; n < space_.nodes(); ++n)
            PRESTO_CHECK(n == d.owner ||
                             space_.tag(n, b) == mem::Tag::Invalid,
                         "Excl block " << b << ": stale copy at node " << n);
          break;
      }
    });
  }
  return checked;
}

void StacheProtocol::on_fault(int node, mem::BlockId b, bool is_write) {
  auto& c = rec_.node(node);
  if (is_write)
    ++c.write_faults;
  else
    ++c.read_faults;
  const int home = space_.home_of_block(b);
  if (home == node) ++c.local_faults;

  auto& p = proc(node);
  const sim::Time t0 = p.now();
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_miss_start(node, b, is_write, t0);
  p.charge(costs_.fault);  // software fault vectoring (Blizzard)

  Msg m;
  m.type = is_write ? MsgType::GetX : MsgType::GetS;
  m.src = node;
  m.block = b;
  send_from_app(node, home, std::move(m));

  set_waiting(node, b);
  while (!access_ok(node, b, is_write)) p.block();
  clear_waiting(node);
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_miss_end(node, b, is_write, p.now());
  c.remote_wait += p.now() - t0;
}

void StacheProtocol::handle(int self, const Msg& m) {
  STACHE_TRACE(m.block, "T=%lld node %d handles %s from %d (tag=%d)\n",
               static_cast<long long>(engine_.now()), self,
               msg_type_name(m.type), m.src,
               static_cast<int>(space_.tag(self, m.block)));
  switch (m.type) {
    case MsgType::GetS:
      start_request(self, m.block, m.src, /*is_write=*/false);
      break;
    case MsgType::GetX:
      start_request(self, m.block, m.src, /*is_write=*/true);
      break;

    case MsgType::RecallS: {
      // self is the owner: downgrade to ReadOnly, return fresh data.
      PRESTO_CHECK(space_.tag(self, m.block) == mem::Tag::ReadWrite,
                   "RecallS at non-owner node " << self << " block "
                                                << m.block);
      space_.set_tag(self, m.block, mem::Tag::ReadOnly);
      Msg r;
      r.type = MsgType::RecallAckData;
      r.src = self;
      r.block = m.block;
      r.data = space_.block_data(self, m.block);
      r.data_len = space_.block_size();
      send_from_handler(self, m.src, std::move(r));
      break;
    }
    case MsgType::RecallX: {
      PRESTO_CHECK(space_.tag(self, m.block) == mem::Tag::ReadWrite,
                   "RecallX at non-owner node " << self << " block "
                                                << m.block);
      Msg r;
      r.type = MsgType::RecallAckData;
      r.src = self;
      r.block = m.block;
      r.data = space_.block_data(self, m.block);
      r.data_len = space_.block_size();
      space_.set_tag(self, m.block, mem::Tag::Invalid);
      send_from_handler(self, m.src, std::move(r));
      break;
    }

    case MsgType::Inv: {
      if (!check::bug_hooks().skip_invalidate)
        space_.set_tag(self, m.block, mem::Tag::Invalid);
      Msg r;
      r.type = MsgType::InvAck;
      r.src = self;
      r.block = m.block;
      send_from_handler(self, m.src, std::move(r));
      break;
    }

    case MsgType::InvAck: {
      auto& d = dir(self, m.block);
      PRESTO_CHECK(d.busy && d.acks_needed > 0,
                   "stray InvAck at " << self << " block " << m.block);
      if (--d.acks_needed == 0) complete_getx(self, m.block, d.req_node);
      break;
    }

    case MsgType::RecallAckData: {
      auto& d = dir(self, m.block);
      PRESTO_CHECK(d.busy, "stray RecallAckData at " << self);
      // Install the owner's data at the home.
      std::memcpy(space_.block_data(self, m.block), m.data,
                  space_.block_size());
      notify_install(self, m.block, m.data,
                     d.req_write ? mem::Tag::ReadWrite : mem::Tag::ReadOnly);
      if (d.req_write) {
        // RecallX path: owner invalidated; grant exclusive to requester.
        d.owner = -1;
        d.readers.clear();
        d.state = DirEntry::S::Idle;
        space_.set_tag(self, m.block, mem::Tag::ReadWrite);
        complete_getx(self, m.block, d.req_node);
      } else {
        // RecallS path: owner downgraded to a reader.
        d.readers.set(sharer_id(d.owner));
        d.owner = -1;
        d.state = DirEntry::S::Shared;
        space_.set_tag(self, m.block, mem::Tag::ReadOnly);
        complete_gets(self, m.block, d.req_node);
      }
      break;
    }

    case MsgType::DataS:
      install_block(self, m.block, m.data, mem::Tag::ReadOnly);
      break;
    case MsgType::DataX:
      install_block(self, m.block, m.data, mem::Tag::ReadWrite);
      break;

    default:
      handle_extra(self, m);
      break;
  }
}

void StacheProtocol::handle_extra(int self, const Msg& m) {
  PRESTO_FAIL("unhandled message " << msg_type_name(m.type) << " at node "
                                   << self);
}

void StacheProtocol::start_request(int home, mem::BlockId b, int requester,
                                   bool is_write) {
  auto& d = dir(home, b);
  STACHE_TRACE(b,
               "T=%lld home %d start_request req=%d w=%d state=%d owner=%d "
               "busy=%d pend=%d\n",
               static_cast<long long>(engine_.now()), home, requester,
               static_cast<int>(is_write), static_cast<int>(d.state), d.owner,
               static_cast<int>(d.busy), static_cast<int>(d.has_pending()));
  if (d.busy) {
    pend_push(d, requester, is_write);
    return;
  }
  record_request(home, b, requester, is_write);

  if (!is_write) {
    switch (d.state) {
      case DirEntry::S::Idle:
      case DirEntry::S::Shared:
        complete_gets(home, b, requester);
        return;
      case DirEntry::S::Excl: {
        d.busy = true;
        d.req_node = requester;
        d.req_write = false;
        Msg r;
        r.type = MsgType::RecallS;
        r.src = home;
        r.block = b;
        send_from_handler(home, d.owner, std::move(r));
        return;
      }
    }
  }

  switch (d.state) {
    case DirEntry::S::Idle:
      complete_getx(home, b, requester);
      return;
    case DirEntry::S::Shared: {
      // Exact mode: invalidate the listed readers minus the requester (home
      // is never listed). Coarse mode: conservative fan-out to every member
      // of every marked cluster except home and requester.
      int acks = 0;
      for_each_sharer_target(d.readers, requester, home, [&](int) { ++acks; });
      if (acks == 0) {
        // Sole-reader upgrade.
        complete_getx(home, b, requester);
        return;
      }
      d.busy = true;
      d.req_node = requester;
      d.req_write = true;
      d.acks_needed = acks;
      for_each_sharer_target(d.readers, requester, home, [&](int n) {
        Msg r;
        r.type = MsgType::Inv;
        r.src = home;
        r.block = b;
        send_from_handler(home, n, std::move(r));
      });
      return;
    }
    case DirEntry::S::Excl: {
      PRESTO_CHECK(d.owner != requester, "owner faulted on its own block");
      d.busy = true;
      d.req_node = requester;
      d.req_write = true;
      Msg r;
      r.type = MsgType::RecallX;
      r.src = home;
      r.block = b;
      send_from_handler(home, d.owner, std::move(r));
      return;
    }
  }
}

void StacheProtocol::grant(int home, mem::BlockId b, int requester,
                           mem::Tag tag) {
  if (requester == home) {
    space_.set_tag(home, b, tag);
    if (is_waiting_on(home, b)) wake_waiter(home);
    return;
  }
  Msg r;
  r.type = tag == mem::Tag::ReadWrite ? MsgType::DataX : MsgType::DataS;
  r.src = home;
  r.block = b;
  r.data = space_.block_data(home, b);
  r.data_len = space_.block_size();
  send_from_handler(home, requester, std::move(r));
}

void StacheProtocol::complete_gets(int home, mem::BlockId b, int requester) {
  auto& d = dir(home, b);
  if (requester != home) {
    d.readers.set(sharer_id(requester));
    d.state = DirEntry::S::Shared;
    // The home's own copy drops to ReadOnly so its future writes fault.
    if (space_.tag(home, b) == mem::Tag::ReadWrite)
      space_.set_tag(home, b, mem::Tag::ReadOnly);
  }
  grant(home, b, requester,
        requester == home ? mem::Tag::ReadOnly : mem::Tag::ReadOnly);
  finish_transaction(home, b);
}

void StacheProtocol::complete_getx(int home, mem::BlockId b, int requester) {
  auto& d = dir(home, b);
  d.readers.clear();
  if (requester == home) {
    d.owner = -1;
    d.state = DirEntry::S::Idle;
    grant(home, b, requester, mem::Tag::ReadWrite);
  } else {
    d.owner = requester;
    d.state = DirEntry::S::Excl;
    space_.set_tag(home, b, mem::Tag::Invalid);
    grant(home, b, requester, mem::Tag::ReadWrite);
  }
  finish_transaction(home, b);
}

void StacheProtocol::finish_transaction(int home, mem::BlockId b) {
  auto& d = dir(home, b);
  d.req_node = -1;
  d.acks_needed = 0;
  if (d.has_pending()) {
    const auto [node, is_write] = pend_pop(d);
    // Process the queued request after another handler occupancy slot. The
    // entry stays busy until then: a request arriving in the gap must queue
    // *behind* the dequeued one, or a spinning requester could jump the
    // queue forever and starve it (observed with contended locks). Note
    // busy is set explicitly — fast-path completions reach here without it.
    d.busy = true;
    engine_.schedule_in(costs_.handler, [this, home, b, node, is_write] {
      dir(home, b).busy = false;
      start_request(home, b, node, is_write);
    });
  } else {
    d.busy = false;
  }
}

}  // namespace presto::proto
