// C**'s predictive cache-coherence protocol (paper §3.3–3.4).
//
// Augments Stache in two parts:
//
//  1. *Schedule building.* Every request processed at a home node while a
//     phase is active is recorded in that phase's communication schedule:
//     entry = {readers, writers} per block. All requests reaching the home
//     involve communication (purely local accesses never fault), including
//     the home's own faults that trigger remote invalidations/recalls.
//     Schedules grow incrementally — faults in later iterations extend them
//     (adaptive applications); deletions are not tracked (paper §3.3), so
//     phase_flush() lets applications rebuild a schedule from scratch.
//
//  2. *Presend.* At phase_begin(p) every node walks the phase-p entries for
//     blocks it homes and executes the anticipated transactions early:
//       - Read-marked blocks: recall dirty data, then forward ReadOnly
//         copies to all recorded readers.
//       - Write-marked blocks: invalidate other copies and forward a
//         ReadWrite copy to the recorded writer (pre-invalidation when the
//         writer is the home itself).
//       - Conflict blocks (read & written by different nodes in one phase,
//         e.g. false sharing) are skipped, or optionally anticipate the
//         first stable state (the paper's suggested extension).
//     Neighbouring blocks destined for the same node are coalesced into
//     bulk messages to amortize message startup (§3.4). A global barrier
//     stabilizes all block states before the phase's computation starts.
#pragma once

#include <memory>

#include "proto/stache.h"

namespace presto::proto {

enum class ConflictPolicy {
  kSkip,        // paper's default: no action for conflict blocks
  kAnticipate,  // paper's suggested extension: use the first stable state
};

class PredictiveProtocol : public StacheProtocol {
 public:
  // cluster_nodes: see StacheProtocol — coarsens the *directory* sharer
  // sets; the recorded schedules stay node-exact (they drive presends, and
  // a presend to a node that never asked is pure waste, so coarsening them
  // would defeat the point).
  PredictiveProtocol(sim::Engine& engine, net::Network& net,
                     mem::GlobalSpace& space, stats::Recorder& rec,
                     const ProtoCosts& costs,
                     ConflictPolicy conflicts = ConflictPolicy::kSkip,
                     int cluster_nodes = 0);

  const char* name() const override { return "predictive"; }

  // Compiler-placed directive: presend phase `phase`, then global barrier.
  // Runs on the node's processor thread.
  void phase_begin(int node, int phase) override;

  // Discards this home's schedule for `phase` (schedule rebuild, §3.3).
  void phase_flush(int node, int phase) override;

  // Aggregate protocol statistics (summed over the per-node shards; the
  // shards keep handler paths lane-local under the windowed engine).
  struct Stats {
    std::uint64_t entries_recorded = 0;
    std::uint64_t conflict_entries = 0;   // entries skipped as conflicts
    std::uint64_t presend_recalls = 0;
    std::uint64_t presend_push_blocks = 0;
    std::uint64_t presend_inv_blocks = 0;
    std::uint64_t presend_msgs = 0;
  };
  Stats stats() const {
    Stats s;
    for (const Stats& t : stats_) {
      s.entries_recorded += t.entries_recorded;
      s.conflict_entries += t.conflict_entries;
      s.presend_recalls += t.presend_recalls;
      s.presend_push_blocks += t.presend_push_blocks;
      s.presend_inv_blocks += t.presend_inv_blocks;
      s.presend_msgs += t.presend_msgs;
    }
    return s;
  }

  // Number of live schedule entries for (home, phase) — test/bench hook.
  std::size_t schedule_size(int home, int phase) const;

  // Ablation hook: disable bulk coalescing (§3.4) — every presend block
  // travels in its own message.
  void set_coalescing(bool on) { coalescing_ = on; }

  std::size_t metadata_bytes() const override;

 protected:
  void record_request(int home, mem::BlockId b, int requester,
                      bool is_write) override;
  void handle(int self, const Msg& m) override;
  void handle_extra(int self, const Msg& m) override;

 private:
  struct Entry {
    util::NodeSet readers;
    util::NodeSet writers;
    bool first_is_write = false;
    bool first_set = false;
  };
  enum class Kind { kRead, kWrite, kConflict };

  // One phase's communication schedule. Recording is an O(1) append plus a
  // flat block-indexed probe — no hashing, no rehash, ever. The index table
  // stores record-index + 1 (0 = not recorded), chunk-materialized per page
  // like the directory, so a probe is two shifts and an indirection into
  // memory this home already touches. The block ordering that run coalescing
  // needs is established lazily, by sorting once at presend time. Presend
  // iterates in block order while new requests may keep arriving (the
  // recording home is also presending), so insertions bump `gen` and the
  // iterator re-sorts and re-locates — reproducing std::map
  // iteration-under-insertion semantics: blocks inserted behind the cursor
  // are skipped, ahead of it are visited.
  struct PhaseSched {
    struct Rec {
      mem::BlockId block;
      Entry e;
    };
    std::vector<Rec> recs;
    util::BlockTable<std::uint32_t> index;  // block -> recs idx + 1; 0 absent
    std::uint64_t gen = 0;  // bumped per insertion
    bool sorted = true;     // recs ascending by block

    void ensure_sorted();
  };

  Kind derive(const Entry& e) const;

  // One presend action staged during the stage-2 schedule walk: push (or
  // invalidate) `block` at `target`, installing `tag`.
  struct BatchItem {
    std::int32_t target;
    mem::BlockId block;
    mem::Tag tag;
  };

  PhaseSched& ensure_phase(int home, int phase);
  void do_presend(int node, int phase);
  void send_bulk_runs(int node, int target, const BatchItem* items,
                      std::size_t count, bool invalidate);

  // sched_[home][phase] -> flat schedule, materialized on first record.
  // unique_ptr keeps PhaseSched references stable while the phase vector
  // grows (presend holds one across yields).
  std::vector<std::vector<std::unique_ptr<PhaseSched>>> sched_;
  std::vector<int> cur_phase_;
  std::vector<int> outstanding_;  // presend acks/recalls awaited per node
  // Per-presending-node staging for stage 2, reused across phases (cleared,
  // not freed) — O(actions), where the old per-(node, target) vector-of-
  // vectors was O(nodes²) even when idle. Items are appended in block order
  // and stable-sorted by target before sending, which reproduces the dense
  // layout's per-target block order exactly. Per node because all nodes
  // presend concurrently: send_bulk_runs yields inside charge(), so another
  // node's presend can run mid-batch.
  std::vector<std::vector<BatchItem>> push_batch_;
  std::vector<std::vector<BatchItem>> inv_batch_;
  std::uint32_t blocks_per_page_ = 1;
  ConflictPolicy conflict_policy_;
  bool coalescing_ = true;
  std::vector<Stats> stats_;  // [node]
};

}  // namespace presto::proto
