#include "proto/ccached.h"

#include <cstring>

#include "check/bughook.h"
#include "trace/hooks.h"
#include "util/check.h"

namespace presto::proto {

CCachedProtocol::CCachedProtocol(sim::Engine& engine, net::Network& net,
                                 mem::GlobalSpace& space, stats::Recorder& rec,
                                 const ProtoCosts& costs, int cluster_nodes)
    : StacheProtocol(engine, net, space, rec, costs, cluster_nodes),
      words_per_block_(space.block_size() / 8),
      logs_(static_cast<std::size_t>(space.nodes())),
      flush_wait_(static_cast<std::size_t>(space.nodes()), 0),
      flushq_(static_cast<std::size_t>(space.nodes())),
      pump_scheduled_(static_cast<std::size_t>(space.nodes()), 0) {
  PRESTO_CHECK(space.block_size() >= 8,
               "ccached needs 8-byte words; block size " << space.block_size());
  const std::uint32_t bpp = space.page_size() / space.block_size();
  for (auto& nl : logs_) nl.slot.configure(bpp);
}

void CCachedProtocol::cc_update(int node, mem::Addr a, std::int64_t delta) {
  const mem::BlockId b = space_.block_of(a);
  PRESTO_CHECK(space_.is_commutative(b),
               "cc_update outside a commutative region, addr " << a);
  const std::size_t off =
      static_cast<std::size_t>(a) & (space_.block_size() - 1);
  PRESTO_CHECK((off & 7) == 0, "cc_update not 8-byte aligned, addr " << a);

  auto& nl = logs_[static_cast<std::size_t>(node)];
  std::uint32_t& s = nl.slot.at(b);
  if (s == 0) {
    std::uint32_t idx;
    if (!nl.free.empty()) {
      idx = nl.free.back();
      nl.free.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(nl.pool.size());
      nl.pool.emplace_back();
      nl.pool[idx].delta.resize(words_per_block_, 0);
      nl.pool[idx].used.resize(words_per_block_, 0);
    }
    nl.pool[idx].block = b;
    nl.active.push_back(idx);
    s = idx + 1;
  }
  WordLog& wl = nl.pool[s - 1];
  const std::size_t w = off >> 3;
  wl.delta[w] += delta;
  wl.used[w] = 1;
  if (auto* o = space_.access_observer(); o != nullptr) [[unlikely]]
    o->on_cc_update(node, b, off, delta);
}

void CCachedProtocol::cc_flush(int node) {
  auto& nl = logs_[static_cast<std::size_t>(node)];
  while (!nl.active.empty())
    flush_block(node, nl.pool[nl.active.front()].block);
}

void CCachedProtocol::on_fault(int node, mem::BlockId b, bool is_write) {
  if (space_.is_commutative(b) &&
      logs_[static_cast<std::size_t>(node)].slot.at(b) != 0)
    flush_block(node, b);
  StacheProtocol::on_fault(node, b, is_write);
}

void CCachedProtocol::flush_block(int node, mem::BlockId b) {
  auto& nl = logs_[static_cast<std::size_t>(node)];
  std::uint32_t& s = nl.slot.at(b);
  if (s == 0) return;
  const std::uint32_t idx = s - 1;
  WordLog& wl = nl.pool[idx];

  // Marshal the used words into scratch and reset the log before sending —
  // the payload is copied into the channel ring by send_from_app, and no
  // handler for this node touches scratch while its app thread is parked.
  auto* entries = reinterpret_cast<FlushEntry*>(
      scratch(node, words_per_block_ * sizeof(FlushEntry)));
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < words_per_block_; ++w) {
    if (wl.used[w] == 0) continue;
    entries[count].word = w;
    entries[count].delta = wl.delta[w];
    ++count;
    wl.used[w] = 0;
    wl.delta[w] = 0;
  }
  s = 0;
  nl.free.push_back(idx);
  for (std::size_t i = 0; i < nl.active.size(); ++i) {
    if (nl.active[i] == idx) {
      nl.active.erase(nl.active.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (count == 0) return;

  auto& p = proc(node);
  auto& c = rec_.node(node);
  const sim::Time t0 = p.now();
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_miss_start(node, b, /*is_write=*/true, t0);
  p.charge(costs_.presend_per_block);  // log marshaling

  Msg m;
  m.type = MsgType::CcFlush;
  m.src = node;
  m.block = b;
  m.count = count;
  m.data = reinterpret_cast<const std::byte*>(entries);
  m.data_len = count * static_cast<std::uint32_t>(sizeof(FlushEntry));
  flush_wait_[static_cast<std::size_t>(node)] = 1;
  send_from_app(node, space_.home_of_block(b), std::move(m));

  set_waiting(node, b);
  while (flush_wait_[static_cast<std::size_t>(node)] != 0) p.block();
  clear_waiting(node);
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_miss_end(node, b, /*is_write=*/true, p.now());
  c.remote_wait += p.now() - t0;
  ++cc_.flushes;
  cc_.flushed_entries += count;
}

void CCachedProtocol::handle_extra(int self, const Msg& m) {
  switch (m.type) {
    case MsgType::CcFlush: {
      FlushOp op;
      op.src = m.src;
      op.block = m.block;
      op.entries.resize(m.count);
      std::memcpy(op.entries.data(), m.data,
                  m.count * sizeof(FlushEntry));
      flushq_[static_cast<std::size_t>(self)].push_back(std::move(op));
      try_pump(self);
      break;
    }
    case MsgType::CcFlushAck: {
      flush_wait_[static_cast<std::size_t>(self)] = 0;
      if (is_waiting_on(self, m.block)) wake_waiter(self);
      break;
    }
    default:
      StacheProtocol::handle_extra(self, m);
      break;
  }
}

void CCachedProtocol::try_pump(int home) {
  if (pump_scheduled_[static_cast<std::size_t>(home)] != 0) return;
  auto& q = flushq_[static_cast<std::size_t>(home)];
  while (!q.empty()) {
    const FlushOp& op = q.front();
    const mem::BlockId b = op.block;
    {
      DirEntry& d = dir(home, b);
      if (!d.busy && d.state != DirEntry::S::Idle) {
        // Quiesce remote copies with a home write request through the
        // ordinary transaction engine; it may complete inline (sole-reader
        // upgrade) or leave the entry busy with recalls/invalidations in
        // flight.
        start_request(home, b, home, /*is_write=*/true);
      }
    }
    DirEntry& d = dir(home, b);
    if (d.busy || d.state != DirEntry::S::Idle) {
      // Re-poll after a handler occupancy; one pump per home at a time.
      pump_scheduled_[static_cast<std::size_t>(home)] = 1;
      engine_.schedule_in(costs_.handler, [this, home] {
        pump_scheduled_[static_cast<std::size_t>(home)] = 0;
        try_pump(home);
      });
      return;
    }
    // Idle and quiescent: the home holds the sole ReadWrite copy.
    apply_flush(home, op);
    Msg ack;
    ack.type = MsgType::CcFlushAck;
    ack.src = home;
    ack.block = b;
    send_from_handler(home, op.src, std::move(ack));
    q.pop_front();
  }
}

void CCachedProtocol::apply_flush(int home, const FlushOp& op) {
  PRESTO_CHECK(space_.tag(home, op.block) == mem::Tag::ReadWrite,
               "merge at home " << home << " without ReadWrite on block "
                                << op.block);
  std::byte* data = space_.block_data(home, op.block);
  const auto& hooks = check::bug_hooks();
  const int rounds = hooks.double_apply_on_replay ? 2 : 1;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < op.entries.size(); ++i) {
      if (i == 0 && hooks.drop_merge_entry) continue;
      const FlushEntry& e = op.entries[i];
      PRESTO_CHECK(e.word < words_per_block_,
                   "flush entry word " << e.word << " out of range");
      std::int64_t v;
      std::memcpy(&v, data + e.word * 8, 8);
      v += e.delta;
      std::memcpy(data + e.word * 8, &v, 8);
    }
  }
  ++cc_.merged_flushes;
  cc_.merged_entries += op.entries.size();
}

std::size_t CCachedProtocol::metadata_bytes() const {
  std::size_t n = StacheProtocol::metadata_bytes();
  for (const auto& nl : logs_) {
    n += nl.slot.bytes_resident();
    n += nl.active.capacity() * sizeof(nl.active[0]);
    n += nl.free.capacity() * sizeof(nl.free[0]);
    n += nl.pool.capacity() * sizeof(WordLog);
    for (const auto& wl : nl.pool)
      n += wl.delta.capacity() * sizeof(wl.delta[0]) + wl.used.capacity();
  }
  for (const auto& q : flushq_) {
    n += q.size() * sizeof(FlushOp);
    for (const auto& op : q) n += op.entries.capacity() * sizeof(FlushEntry);
  }
  return n;
}

}  // namespace presto::proto
