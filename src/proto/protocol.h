// User-level coherence protocol framework (the Tempest handler interface).
//
// A protocol is a state machine driven by two kinds of events:
//   * access faults, raised on the faulting node's processor thread by the
//     fine-grain access-control check (mem::GlobalSpace); the handler blocks
//     that processor until the access is legal, and
//   * protocol messages, delivered in engine context by the network.
//
// Message handlers are serialized per node with a busy-until occupancy model
// (one protocol dispatch unit per node, as with Blizzard's software
// handlers); handler time overlapping application compute is charged to the
// application clock as stolen cycles.
//
// Transport is allocation-free in steady state: a Msg is a trivially
// copyable header plus a non-owning payload view. Sending copies header and
// payload into the network's per-channel record ring (net::Network::send_msg);
// arrival moves the record into the destination node's dispatch ring, where
// it waits out handler occupancy before handle() runs. No std::function, no
// per-message heap allocation, no payload vector.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "mem/global_space.h"
#include "net/network.h"
#include "net/record_ring.h"
#include "sim/engine.h"
#include "sim/processor.h"
#include "stats/recorder.h"

namespace presto::trace {
class Hooks;
}  // namespace presto::trace

namespace presto::proto {

enum class MsgType : std::uint8_t {
  // Stache request/response (requester <-> home <-> owner).
  GetS,            // requester -> home: want ReadOnly copy
  GetX,            // requester -> home: want ReadWrite copy
  Inv,             // home -> reader
  InvAck,          // reader -> home
  RecallS,         // home -> owner: downgrade to ReadOnly, return data
  RecallX,         // home -> owner: invalidate, return data
  RecallAckData,   // owner -> home (carries data)
  DataS,           // home -> requester (carries data, install ReadOnly)
  DataX,           // home -> requester (carries data, install ReadWrite)
  // Predictive protocol presend traffic (§3.4).
  BulkData,        // home -> target: run of contiguous blocks + install tag
  BulkAck,         // target -> home
  BulkInv,         // home -> target: run of contiguous blocks to invalidate
  BulkInvAck,      // target -> home
  // Write-update protocol (hand-optimized SPMD baseline, [5]).
  WuGetS,          // reader -> home
  WuData,          // home -> reader
  WuWriteNote,     // writer -> home: writer took local ReadWrite
  UpdateData,      // writer -> home, or home -> readers: fresh block contents
  UpdateAck,       // final recipient -> home -> writer
  // Commutative-update protocol (ccached).
  CcFlush,         // node -> home: (word index, delta) entries for one block
  CcFlushAck,      // home -> node: deltas merged into the committed image
};

const char* msg_type_name(MsgType t);

struct Msg {
  MsgType type{};
  std::uint8_t tag = 0;     // mem::Tag to install (bulk/presend)
  int src = -1;
  std::uint32_t count = 1;  // run length for bulk messages
  std::uint32_t data_len = 0;
  mem::BlockId block = 0;
  std::uint64_t token = 0;  // ack matching
  // Non-owning payload view. When sending it points at the caller's bytes
  // (copied into the channel ring before the send returns, so a pointer
  // straight into GlobalSpace frames is fine); inside handle() it points
  // into the node's dispatch ring and is valid only for that call.
  const std::byte* data = nullptr;
};
static_assert(std::is_trivially_copyable_v<Msg>,
              "Msg rides the record rings by memcpy");

struct ProtoCosts {
  sim::Time fault = sim::microseconds(10);    // fault vectoring on the
                                              // faulting node (Blizzard SW)
  sim::Time handler = sim::microseconds(15);  // per-message handler occupancy
  sim::Time presend_per_block = sim::microseconds(1);
  std::size_t header_bytes = 16;
};

// Observer of protocol-level data movement, implemented by the coherence
// invariant oracle (check/oracle.h). Null in normal runs; hooks are pure
// observation (no time charged, no events scheduled), so simulated results
// are bit-identical with or without it.
//   on_data_send — a data-carrying message (DataS/DataX/RecallAckData/
//     BulkData/WuData/UpdateData) at the instant its payload is snapshotted
//     into the channel ring: the presend-coherence invariant is checked here.
//   on_install — a block copy or permission change lands at a node.
class CoherenceObserver {
 public:
  virtual void on_data_send(int src, int dst, const Msg& m) = 0;
  virtual void on_install(int node, mem::BlockId b, const std::byte* data,
                          mem::Tag tag) = 0;

 protected:
  ~CoherenceObserver() = default;
};

class Protocol : public net::Network::MsgSink, public mem::FaultHandler {
 public:
  Protocol(sim::Engine& engine, net::Network& net, mem::GlobalSpace& space,
           stats::Recorder& rec, const ProtoCosts& costs);
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  // Registers this protocol as the space's fault handler and the network's
  // message sink.
  void install();

  virtual const char* name() const = 0;

  // mem::FaultHandler — runs on the faulting node's processor thread;
  // returns once the access is permitted by the block tag.
  void on_fault(int node, mem::BlockId b, bool is_write) override = 0;

  // Compiler-placed directives (no-ops in the base protocols so identical
  // application code runs under every protocol).
  virtual void phase_begin(int node, int phase) {
    (void)node;
    (void)phase;
  }
  virtual void phase_flush(int node, int phase) {
    (void)node;
    (void)phase;
  }

  // Global barrier callback, wired by runtime::System (the predictive
  // protocol ends its presend with a barrier, §3.4).
  void set_barrier(std::function<void(int)> fn) { barrier_ = std::move(fn); }

  // Attaches the invariant oracle (or detaches with nullptr).
  void set_coherence_observer(CoherenceObserver* o) { observer_ = o; }
  CoherenceObserver* coherence_observer() const { return observer_; }

  // Attaches the event tracer (trace/tracer.h). Like the oracle, hooks are
  // pure observation; null in untraced runs so the hot paths stay branch-
  // predictable single null checks.
  void set_trace_hooks(trace::Hooks* h) { trace_ = h; }
  trace::Hooks* trace_hooks() const { return trace_; }

  const ProtoCosts& costs() const { return costs_; }

  // Host bytes held by protocol metadata (directories, schedules, reader
  // sets, pools, dispatch rings, scratch). Base counts the framework's own
  // structures; protocols add their metadata on top. Surfaced as
  // stats::HostCounters::metadata_bytes at end of run.
  virtual std::size_t metadata_bytes() const;

  // net::Network::MsgSink — arrival: serialize on the destination's protocol
  // dispatch unit, then run handle() after its occupancy.
  void on_msg(int dst, const std::byte* rec, std::size_t len) final;

 protected:
  // Message dispatch in engine context; subclasses implement handle().
  virtual void handle(int self, const Msg& m) = 0;

  // Sends m (header + payload view) through the typed network path;
  // dispatch at the destination respects handler occupancy.
  void send_from_handler(int src, int dst, const Msg& m);  // engine context
  void send_from_app(int src, int dst, const Msg& m);      // node thread

  // Per-node scratch for assembling multi-block payloads (reused, grows to
  // the high-water mark). Per node because a charge() between fill and send
  // yields to other nodes' threads; the one remaining hazard is an
  // engine-context handler for the same node filling scratch while its app
  // thread is parked between fill and send — don't do that.
  std::byte* scratch(int node, std::size_t n) {
    auto& s = scratch_[static_cast<std::size_t>(node)];
    if (s.size() < n) s.resize(n);
    return s.data();
  }

  sim::Processor& proc(int node) { return engine_.processor(node); }

  // Installs a block copy (or permission change) at a node and wakes its
  // processor if it is waiting on this block.
  void install_block(int node, mem::BlockId b, const std::byte* data,
                     mem::Tag tag);

  // Oracle notification for handler sites that install block bytes without
  // going through install_block (e.g. RecallAckData landing at the home).
  void notify_install(int node, mem::BlockId b, const std::byte* data,
                      mem::Tag tag) {
    if (observer_ != nullptr) [[unlikely]]
      observer_->on_install(node, b, data, tag);
  }
  void set_waiting(int node, mem::BlockId b) { waiting_[static_cast<std::size_t>(node)] = static_cast<std::int64_t>(b); }
  void clear_waiting(int node) { waiting_[static_cast<std::size_t>(node)] = -1; }
  bool is_waiting_on(int node, mem::BlockId b) const {
    return waiting_[static_cast<std::size_t>(node)] == static_cast<std::int64_t>(b);
  }
  void wake_waiter(int node);

  sim::Engine& engine_;
  net::Network& net_;
  mem::GlobalSpace& space_;
  stats::Recorder& rec_;
  const ProtoCosts costs_;
  std::function<void(int)> barrier_;
  CoherenceObserver* observer_ = nullptr;
  trace::Hooks* trace_ = nullptr;

 private:
  void post(int src, int dst, const Msg& m, sim::Time depart);
  void dispatch_front(int node);

  std::vector<sim::Time> busy_until_;     // protocol dispatch occupancy
  std::vector<std::int64_t> waiting_;     // block each node's app waits on
  // Per-node queue of arrived records awaiting handler occupancy. Occupancy
  // ends are monotone per node, so dispatch order is FIFO.
  std::vector<net::RecordRing> dispatch_;
  std::vector<std::vector<std::byte>> scratch_;
};

}  // namespace presto::proto
