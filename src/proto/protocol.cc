#include "proto/protocol.h"

#include "util/check.h"

namespace presto::proto {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::GetS: return "GetS";
    case MsgType::GetX: return "GetX";
    case MsgType::Inv: return "Inv";
    case MsgType::InvAck: return "InvAck";
    case MsgType::RecallS: return "RecallS";
    case MsgType::RecallX: return "RecallX";
    case MsgType::RecallAckData: return "RecallAckData";
    case MsgType::DataS: return "DataS";
    case MsgType::DataX: return "DataX";
    case MsgType::BulkData: return "BulkData";
    case MsgType::BulkAck: return "BulkAck";
    case MsgType::BulkInv: return "BulkInv";
    case MsgType::BulkInvAck: return "BulkInvAck";
    case MsgType::WuGetS: return "WuGetS";
    case MsgType::WuData: return "WuData";
    case MsgType::WuWriteNote: return "WuWriteNote";
    case MsgType::UpdateData: return "UpdateData";
    case MsgType::UpdateAck: return "UpdateAck";
  }
  return "?";
}

Protocol::Protocol(sim::Engine& engine, net::Network& net,
                   mem::GlobalSpace& space, stats::Recorder& rec,
                   const ProtoCosts& costs)
    : engine_(engine),
      net_(net),
      space_(space),
      rec_(rec),
      costs_(costs),
      busy_until_(static_cast<std::size_t>(space.nodes()), 0),
      waiting_(static_cast<std::size_t>(space.nodes()), -1) {}

void Protocol::install() {
  space_.set_fault_handler([this](int node, mem::BlockId b, bool is_write) {
    on_fault(node, b, is_write);
  });
}

void Protocol::post(int src, int dst, Msg m, sim::Time depart) {
  const std::size_t bytes = costs_.header_bytes + m.data.size();
  auto& c = rec_.node(src);
  ++c.msgs_sent;
  c.bytes_sent += bytes;
  // Dispatch at arrival: serialize on the destination's protocol unit, then
  // run the handler after its occupancy. Handler time overlapping the
  // destination's application compute is charged as stolen cycles.
  net_.send(src, dst, bytes, depart, [this, dst, m = std::move(m)]() mutable {
    auto& busy = busy_until_[static_cast<std::size_t>(dst)];
    const sim::Time start =
        engine_.now() > busy ? engine_.now() : busy;
    const sim::Time done = start + costs_.handler;
    busy = done;
    if (!proc(dst).parked_in_block()) proc(dst).add_stolen(costs_.handler);
    engine_.schedule_at(done,
                        [this, dst, m = std::move(m)] { handle(dst, m); });
  });
}

void Protocol::send_from_handler(int src, int dst, Msg m) {
  post(src, dst, std::move(m), engine_.now());
}

void Protocol::send_from_app(int src, int dst, Msg m) {
  post(src, dst, std::move(m), proc(src).now());
}

void Protocol::install_block(int node, mem::BlockId b, const std::byte* data,
                             mem::Tag tag) {
  if (data != nullptr)
    std::memcpy(space_.block_data(node, b), data, space_.block_size());
  space_.set_tag(node, b, tag);
  if (is_waiting_on(node, b)) wake_waiter(node);
}

void Protocol::wake_waiter(int node) { proc(node).wake(engine_.now()); }

}  // namespace presto::proto
