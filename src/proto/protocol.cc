#include "proto/protocol.h"

#include "trace/hooks.h"
#include "util/check.h"

namespace presto::proto {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::GetS: return "GetS";
    case MsgType::GetX: return "GetX";
    case MsgType::Inv: return "Inv";
    case MsgType::InvAck: return "InvAck";
    case MsgType::RecallS: return "RecallS";
    case MsgType::RecallX: return "RecallX";
    case MsgType::RecallAckData: return "RecallAckData";
    case MsgType::DataS: return "DataS";
    case MsgType::DataX: return "DataX";
    case MsgType::BulkData: return "BulkData";
    case MsgType::BulkAck: return "BulkAck";
    case MsgType::BulkInv: return "BulkInv";
    case MsgType::BulkInvAck: return "BulkInvAck";
    case MsgType::WuGetS: return "WuGetS";
    case MsgType::WuData: return "WuData";
    case MsgType::WuWriteNote: return "WuWriteNote";
    case MsgType::UpdateData: return "UpdateData";
    case MsgType::UpdateAck: return "UpdateAck";
    case MsgType::CcFlush: return "CcFlush";
    case MsgType::CcFlushAck: return "CcFlushAck";
  }
  return "?";
}

Protocol::Protocol(sim::Engine& engine, net::Network& net,
                   mem::GlobalSpace& space, stats::Recorder& rec,
                   const ProtoCosts& costs)
    : engine_(engine),
      net_(net),
      space_(space),
      rec_(rec),
      costs_(costs),
      busy_until_(static_cast<std::size_t>(space.nodes()), 0),
      waiting_(static_cast<std::size_t>(space.nodes()), -1),
      dispatch_(static_cast<std::size_t>(space.nodes())),
      scratch_(static_cast<std::size_t>(space.nodes())) {}

std::size_t Protocol::metadata_bytes() const {
  std::size_t n = busy_until_.capacity() * sizeof(busy_until_[0]) +
                  waiting_.capacity() * sizeof(waiting_[0]);
  for (const auto& r : dispatch_) n += r.capacity_bytes();
  for (const auto& s : scratch_) n += s.capacity();
  return n;
}

void Protocol::install() {
  space_.set_fault_handler(this);
  net_.set_msg_sink(this);
}

void Protocol::post(int src, int dst, const Msg& m, sim::Time depart) {
  const std::size_t bytes = costs_.header_bytes + m.data_len;
  auto& c = rec_.node(src);
  ++c.msgs_sent;
  c.bytes_sent += bytes;
  if (observer_ != nullptr && m.data_len != 0) [[unlikely]]
    observer_->on_data_send(src, dst, m);
  if (trace_ != nullptr) [[unlikely]]
    trace_->on_msg_send(src, dst, static_cast<std::uint8_t>(m.type), m.block,
                        m.count, static_cast<std::uint32_t>(bytes), depart);
  // Header and payload are copied into the (src, dst) channel ring before
  // this returns; m.data may point straight at GlobalSpace frame bytes.
  net_.send_msg(src, dst, bytes, depart, &m, sizeof(Msg), m.data, m.data_len);
}

void Protocol::send_from_handler(int src, int dst, const Msg& m) {
  post(src, dst, m, engine_.now());
}

void Protocol::send_from_app(int src, int dst, const Msg& m) {
  post(src, dst, m, proc(src).now());
}

void Protocol::on_msg(int dst, const std::byte* rec, std::size_t len) {
  // Serialize on the destination's protocol dispatch unit, then run the
  // handler after its occupancy. Handler time overlapping the destination's
  // application compute is charged as stolen cycles.
  auto& busy = busy_until_[static_cast<std::size_t>(dst)];
  const sim::Time start = engine_.now() > busy ? engine_.now() : busy;
  const sim::Time done = start + costs_.handler;
  busy = done;
  if (trace_ != nullptr) [[unlikely]] {
    // Decode the header only when traced; the untraced arrival path never
    // touches the record bytes.
    Msg m;
    std::memcpy(&m, rec, sizeof(Msg));
    trace_->on_msg_recv(
        dst, m.src, static_cast<std::uint8_t>(m.type), m.block,
        static_cast<std::uint32_t>(costs_.header_bytes + m.data_len),
        engine_.now(), start);
  }
  if (!proc(dst).parked_in_block()) proc(dst).add_stolen(costs_.handler);
  dispatch_[static_cast<std::size_t>(dst)].push(rec, len, nullptr, 0);
  engine_.schedule_at(done, [this, dst] { dispatch_front(dst); });
}

void Protocol::dispatch_front(int node) {
  auto& ring = dispatch_[static_cast<std::size_t>(node)];
  std::size_t len;
  const std::byte* rec = ring.front(&len);
  PRESTO_CHECK(len >= sizeof(Msg), "truncated message record");
  Msg m;
  std::memcpy(&m, rec, sizeof(Msg));
  m.data = m.data_len != 0 ? rec + sizeof(Msg) : nullptr;
  // pop() only advances the ring head, so the record bytes stay valid for
  // the handle() call; nothing pushes to this ring in engine context.
  ring.pop();
  handle(node, m);
}

void Protocol::install_block(int node, mem::BlockId b, const std::byte* data,
                             mem::Tag tag) {
  if (data != nullptr)
    std::memcpy(space_.block_data(node, b), data, space_.block_size());
  space_.set_tag(node, b, tag);
  notify_install(node, b, data, tag);
  if (is_waiting_on(node, b)) wake_waiter(node);
}

void Protocol::wake_waiter(int node) { proc(node).wake(engine_.now()); }

}  // namespace presto::proto
