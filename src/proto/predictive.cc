#include "proto/predictive.h"

#include <algorithm>
#include <limits>

#include "check/bughook.h"
#include "trace/hooks.h"
#include "util/check.h"

namespace presto::proto {

PredictiveProtocol::PredictiveProtocol(sim::Engine& engine, net::Network& net,
                                       mem::GlobalSpace& space,
                                       stats::Recorder& rec,
                                       const ProtoCosts& costs,
                                       ConflictPolicy conflicts,
                                       int cluster_nodes)
    : StacheProtocol(engine, net, space, rec, costs, cluster_nodes),
      sched_(static_cast<std::size_t>(space.nodes())),
      cur_phase_(static_cast<std::size_t>(space.nodes()), -1),
      outstanding_(static_cast<std::size_t>(space.nodes()), 0),
      push_batch_(static_cast<std::size_t>(space.nodes())),
      inv_batch_(static_cast<std::size_t>(space.nodes())),
      blocks_per_page_(space.page_size() / space.block_size()),
      conflict_policy_(conflicts),
      stats_(static_cast<std::size_t>(space.nodes())) {}

void PredictiveProtocol::PhaseSched::ensure_sorted() {
  if (sorted) return;
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.block < b.block; });
  for (std::uint32_t i = 0; i < recs.size(); ++i)
    index.at(recs[i].block) = i + 1;
  sorted = true;
}

PredictiveProtocol::PhaseSched& PredictiveProtocol::ensure_phase(int home,
                                                                 int phase) {
  auto& phases = sched_[static_cast<std::size_t>(home)];
  const auto p = static_cast<std::size_t>(phase);
  if (p >= phases.size()) phases.resize(p + 1);
  if (phases[p] == nullptr) {
    phases[p] = std::make_unique<PhaseSched>();
    phases[p]->index.configure(blocks_per_page_);
  }
  return *phases[p];
}

std::size_t PredictiveProtocol::schedule_size(int home, int phase) const {
  const auto& phases = sched_[static_cast<std::size_t>(home)];
  const auto p = static_cast<std::size_t>(phase);
  if (phase < 0 || p >= phases.size() || phases[p] == nullptr) return 0;
  return phases[p]->recs.size();
}

std::size_t PredictiveProtocol::metadata_bytes() const {
  std::size_t n = StacheProtocol::metadata_bytes();
  for (const auto& phases : sched_) {
    n += phases.capacity() * sizeof(phases[0]);
    for (const auto& ps : phases) {
      if (ps == nullptr) continue;
      n += sizeof(PhaseSched) + ps->recs.capacity() * sizeof(PhaseSched::Rec) +
           ps->index.bytes_resident();
      for (const auto& r : ps->recs)
        n += r.e.readers.heap_bytes() + r.e.writers.heap_bytes();
    }
  }
  for (const auto& v : push_batch_) n += v.capacity() * sizeof(BatchItem);
  for (const auto& v : inv_batch_) n += v.capacity() * sizeof(BatchItem);
  return n;
}

void PredictiveProtocol::record_request(int home, mem::BlockId b,
                                        int requester, bool is_write) {
  const int phase = cur_phase_[static_cast<std::size_t>(home)];
  if (phase < 0) return;
  auto& ps = ensure_phase(home, phase);
  ++rec_.node(home).sched_lookups;
  std::uint32_t& slot = ps.index.at(b);
  if (slot == 0) {
    ps.sorted = ps.sorted && (ps.recs.empty() || b > ps.recs.back().block);
    ps.recs.push_back(PhaseSched::Rec{b, Entry{}});
    slot = static_cast<std::uint32_t>(ps.recs.size());
    ++ps.gen;
    ++stats_[static_cast<std::size_t>(home)].entries_recorded;
    ++rec_.node(home).schedule_entries;
  }
  Entry& e = ps.recs[slot - 1].e;
  if (!e.first_set) {
    e.first_set = true;
    e.first_is_write = is_write;
  }
  if (is_write)
    e.writers.set(requester);
  else
    e.readers.set(requester);
}

PredictiveProtocol::Kind PredictiveProtocol::derive(const Entry& e) const {
  if (e.writers.none()) return Kind::kRead;
  util::NodeSet readers_only = e.readers;
  readers_only.subtract(e.writers);
  if (e.writers.single() && readers_only.none()) return Kind::kWrite;
  return Kind::kConflict;
}

void PredictiveProtocol::phase_flush(int node, int phase) {
  auto& phases = sched_[static_cast<std::size_t>(node)];
  const auto p = static_cast<std::size_t>(phase);
  if (phase >= 0 && p < phases.size()) phases[p].reset();
}

void PredictiveProtocol::phase_begin(int node, int phase) {
  auto& p = proc(node);
  const sim::Time t0 = p.now();
  cur_phase_[static_cast<std::size_t>(node)] = phase;
  do_presend(node, phase);
  PRESTO_CHECK(barrier_, "predictive protocol needs a barrier callback");
  barrier_(node);
  rec_.node(node).presend += p.now() - t0;
}

void PredictiveProtocol::do_presend(int node, int phase) {
  auto& phases = sched_[static_cast<std::size_t>(node)];
  const auto pi = static_cast<std::size_t>(phase);
  if (phase < 0 || pi >= phases.size() || phases[pi] == nullptr ||
      phases[pi]->recs.empty())
    return;
  // unique_ptr target: stable while the phase vector grows mid-walk (only
  // phase_flush frees it, and it cannot run during this node's presend).
  PhaseSched& ps = *phases[pi];
  auto& p = proc(node);
  auto& out = outstanding_[static_cast<std::size_t>(node)];
  PRESTO_CHECK(out == 0, "nested presend on node " << node);

  // Resolve each entry's action, applying the conflict policy.
  auto resolve = [&](const Entry& e) -> std::pair<Kind, int> {
    Kind k = derive(e);
    if (k == Kind::kConflict) {
      if (conflict_policy_ == ConflictPolicy::kAnticipate) {
        // Anticipate the first stable state before the conflict (§3.4).
        if (!e.first_is_write && e.readers.any()) return {Kind::kRead, -1};
        if (e.first_is_write && e.writers.single())
          return {Kind::kWrite, e.writers.first()};
      }
      return {Kind::kConflict, -1};
    }
    return {k, k == Kind::kWrite ? e.writers.first() : -1};
  };

  // ---- Stage 1: recall dirty data held by remote owners --------------------
  // The charge() below can yield to the engine, and handlers at this home
  // may record new blocks into this very schedule mid-walk. Re-sort and
  // re-locate the cursor whenever that happens; entries landing behind the
  // cursor are skipped, ahead of it are visited (std::map semantics).
  ps.ensure_sorted();
  std::uint64_t gen = ps.gen;
  std::size_t idx = 0;
  while (idx < ps.recs.size()) {
    const mem::BlockId b = ps.recs[idx].block;
    p.charge(costs_.presend_per_block);
    if (ps.gen != gen) {
      ps.ensure_sorted();
      gen = ps.gen;
      ++rec_.node(node).sched_lookups;
      idx = ps.index.at(b) - 1;
    }
    // Copy: the entry may have gained readers/writers during the yield, and
    // recs may reallocate under later insertions.
    const Entry e = ps.recs[idx].e;
    ++idx;
    const auto [kind, writer] = resolve(e);
    if (kind == Kind::kConflict) {
      ++stats_[static_cast<std::size_t>(node)].conflict_entries;
      continue;
    }
    auto& d = dir(node, b);
    if (d.busy || d.state != DirEntry::S::Excl) continue;
    if (kind == Kind::kWrite && d.owner == writer) continue;  // already placed
    d.busy = true;
    d.req_node = node;
    d.req_write = kind == Kind::kWrite;
    d.presend_recall = true;
    Msg m;
    m.type = kind == Kind::kWrite ? MsgType::RecallX : MsgType::RecallS;
    m.src = node;
    m.block = b;
    ++out;
    ++stats_[static_cast<std::size_t>(node)].presend_recalls;
    send_from_app(node, d.owner, std::move(m));
  }
  while (out > 0) p.block();

  // ---- Stage 2: coalesced pushes and pre-invalidations ----------------------
  auto& push = push_batch_[static_cast<std::size_t>(node)];
  auto& inv = inv_batch_[static_cast<std::size_t>(node)];
  push.clear();
  inv.clear();

  // No yields inside this walk (sends happen after it), so the schedule
  // cannot change mid-iteration; one up-front sort suffices.
  ps.ensure_sorted();
  for (const auto& [b, e] : ps.recs) {
    const auto [kind, writer] = resolve(e);
    if (kind == Kind::kConflict) continue;
    auto& d = dir(node, b);
    if (d.busy) continue;

    if (kind == Kind::kRead) {
      PRESTO_CHECK(d.state != DirEntry::S::Excl,
                   "presend read entry still exclusive after recalls");
      // Anticipated readers (node-exact, from the schedule) minus those the
      // directory already lists. A coarse directory can only say "this
      // cluster may hold copies", so a marked cluster suppresses pushes to
      // all its members — they fault in the worst case; correctness never
      // depends on a presend.
      util::NodeSet targets = e.readers.without(node);
      if (coarse_dir()) {
        util::NodeSet uncovered;
        targets.for_each([&](int t) {
          if (!d.readers.test(sharer_id(t))) uncovered.set(t);
        });
        targets = std::move(uncovered);
      } else {
        targets.subtract(d.readers);
      }
      targets.for_each([&](int t) {
        push.push_back(BatchItem{t, b, mem::Tag::ReadOnly});
      });
      if (targets.any()) {
        targets.for_each([&](int t) { d.readers.set(sharer_id(t)); });
        d.state = DirEntry::S::Shared;
        if (space_.tag(node, b) == mem::Tag::ReadWrite)
          space_.set_tag(node, b, mem::Tag::ReadOnly);
      }
    } else {  // kWrite
      if (writer == node) {
        // Pre-invalidate remote copies so the home's writes do not stall.
        if (d.state == DirEntry::S::Shared) {
          for_each_sharer_target(d.readers, node, -1, [&](int t) {
            inv.push_back(BatchItem{t, b, mem::Tag::Invalid});
          });
          d.readers.clear();
          d.state = DirEntry::S::Idle;
          space_.set_tag(node, b, mem::Tag::ReadWrite);
        }
      } else {
        if (d.state == DirEntry::S::Excl) continue;  // owner == writer
        for_each_sharer_target(d.readers, writer, node, [&](int t) {
          inv.push_back(BatchItem{t, b, mem::Tag::Invalid});
        });
        push.push_back(BatchItem{writer, b, mem::Tag::ReadWrite});
        d.readers.clear();
        d.owner = writer;
        d.state = DirEntry::S::Excl;
        space_.set_tag(node, b, mem::Tag::Invalid);
      }
    }
  }

  // Group by target: the stable sort keeps each target's items in the block
  // order they were appended, so runs coalesce exactly as they did when each
  // target had its own dense vector, and the target-ascending merge below
  // reproduces the dense layout's emission order (per target: pushes, then
  // invalidations).
  const auto by_target = [](const BatchItem& a, const BatchItem& x) {
    return a.target < x.target;
  };
  std::stable_sort(push.begin(), push.end(), by_target);
  std::stable_sort(inv.begin(), inv.end(), by_target);
  std::size_t ip = 0, iv = 0;
  while (ip < push.size() || iv < inv.size()) {
    const std::int32_t t =
        std::min(ip < push.size() ? push[ip].target
                                  : std::numeric_limits<std::int32_t>::max(),
                 iv < inv.size() ? inv[iv].target
                                 : std::numeric_limits<std::int32_t>::max());
    if (ip < push.size() && push[ip].target == t) {
      std::size_t e = ip + 1;
      while (e < push.size() && push[e].target == t) ++e;
      send_bulk_runs(node, t, push.data() + ip, e - ip, /*invalidate=*/false);
      ip = e;
    }
    if (iv < inv.size() && inv[iv].target == t) {
      std::size_t e = iv + 1;
      while (e < inv.size() && inv[e].target == t) ++e;
      send_bulk_runs(node, t, inv.data() + iv, e - iv, /*invalidate=*/true);
      iv = e;
    }
  }
  while (out > 0) p.block();
}

void PredictiveProtocol::send_bulk_runs(int node, int target,
                                        const BatchItem* items,
                                        std::size_t count_items,
                                        bool invalidate) {
  auto& p = proc(node);
  auto& out = outstanding_[static_cast<std::size_t>(node)];
  const std::size_t bsz = space_.block_size();

  std::size_t i = 0;
  while (i < count_items) {
    // Extend a run of contiguous blocks with the same install tag.
    std::size_t j = i + 1;
    while (coalescing_ && j < count_items &&
           items[j].block == items[j - 1].block + 1 &&
           items[j].tag == items[i].tag)
      ++j;
    const std::uint32_t count = static_cast<std::uint32_t>(j - i);

    Msg m;
    m.type = invalidate ? MsgType::BulkInv : MsgType::BulkData;
    m.src = node;
    m.block = items[i].block;
    m.count = count;
    m.tag = static_cast<std::uint8_t>(items[i].tag);
    if (!invalidate) {
      // Runs can straddle page frames, so gather into the node's scratch.
      // The snapshot is taken before the charge() yield, as a send buffer
      // filled by the handler would be; nothing else writes this node's
      // scratch while its thread is parked in charge().
      std::byte* buf = scratch(node, count * bsz);
      for (std::uint32_t k = 0; k < count; ++k)
        std::memcpy(buf + k * bsz,
                    space_.block_data(node, items[i].block + k), bsz);
      m.data = buf;
      m.data_len = count * static_cast<std::uint32_t>(bsz);
      stats_[static_cast<std::size_t>(node)].presend_push_blocks += count;
      rec_.node(node).presend_blocks_sent += count;
    } else {
      stats_[static_cast<std::size_t>(node)].presend_inv_blocks += count;
    }
    ++stats_[static_cast<std::size_t>(node)].presend_msgs;
    ++rec_.node(node).presend_msgs;
    ++out;
    p.charge(costs_.handler);  // software send cost for the bulk message
    send_from_app(node, target, std::move(m));
    i = j;
  }
}

void PredictiveProtocol::handle(int self, const Msg& m) {
  if (m.type == MsgType::RecallAckData) {
    auto& d = dir(self, m.block);
    if (d.presend_recall) {
      d.presend_recall = false;
      std::memcpy(space_.block_data(self, m.block), m.data,
                  space_.block_size());
      notify_install(self, m.block, m.data,
                     d.req_write ? mem::Tag::ReadWrite : mem::Tag::ReadOnly);
      if (d.req_write) {
        d.owner = -1;
        d.readers.clear();
        d.state = DirEntry::S::Idle;
        space_.set_tag(self, m.block, mem::Tag::ReadWrite);
      } else {
        d.readers.set(sharer_id(d.owner));
        d.owner = -1;
        d.state = DirEntry::S::Shared;
        space_.set_tag(self, m.block, mem::Tag::ReadOnly);
      }
      d.busy = false;
      d.req_node = -1;
      if (--outstanding_[static_cast<std::size_t>(self)] == 0)
        proc(self).wake(engine_.now());
      return;
    }
  }
  StacheProtocol::handle(self, m);
}

void PredictiveProtocol::handle_extra(int self, const Msg& m) {
  const std::size_t bsz = space_.block_size();
  switch (m.type) {
    case MsgType::BulkData: {
      for (std::uint32_t k = 0; k < m.count; ++k)
        install_block(self, m.block + k,
                      check::bug_hooks().drop_presend_data
                          ? nullptr  // grant the tag but keep stale bytes
                          : m.data + k * bsz,
                      static_cast<mem::Tag>(m.tag));
      rec_.node(self).presend_blocks_received += m.count;
      if (trace_ != nullptr) [[unlikely]]
        trace_->on_presend_install(self, m.src, m.block, m.count,
                                   engine_.now());
      Msg r;
      r.type = MsgType::BulkAck;
      r.src = self;
      r.block = m.block;
      r.count = m.count;
      send_from_handler(self, m.src, std::move(r));
      break;
    }
    case MsgType::BulkInv: {
      for (std::uint32_t k = 0; k < m.count; ++k)
        space_.set_tag(self, m.block + k, mem::Tag::Invalid);
      Msg r;
      r.type = MsgType::BulkInvAck;
      r.src = self;
      r.block = m.block;
      r.count = m.count;
      send_from_handler(self, m.src, std::move(r));
      break;
    }
    case MsgType::BulkAck:
    case MsgType::BulkInvAck: {
      if (--outstanding_[static_cast<std::size_t>(self)] == 0)
        proc(self).wake(engine_.now());
      break;
    }
    default:
      StacheProtocol::handle_extra(self, m);
      break;
  }
}

}  // namespace presto::proto
