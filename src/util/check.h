// Runtime invariant checking for presto.
//
// PRESTO_CHECK is always on (simulator correctness depends on these
// invariants and they are cheap relative to the event loop). A failed check
// prints the condition, a formatted context message, and aborts — tests use
// EXPECT_DEATH on these paths.
#pragma once

#include <sstream>
#include <string>

namespace presto::util {

[[noreturn]] void check_fail(const char* cond, const char* file, int line,
                             const std::string& msg);

// Lightweight stream-based message builder so call sites can write
//   PRESTO_CHECK(x < n, "index " << x << " out of range " << n);
#define PRESTO_CHECK(cond, ...)                                              \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream presto_check_os_;                                   \
      presto_check_os_ << __VA_ARGS__;                                       \
      ::presto::util::check_fail(#cond, __FILE__, __LINE__,                  \
                                 presto_check_os_.str());                    \
    }                                                                        \
  } while (0)

#define PRESTO_FAIL(...) PRESTO_CHECK(false, __VA_ARGS__)

}  // namespace presto::util
