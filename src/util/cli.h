// Minimal command-line flag parsing for benches and examples.
//
// Supports --name=value and --name value forms plus boolean --flag.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace presto::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace presto::util
