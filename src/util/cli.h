// Minimal command-line flag parsing for benches and examples.
//
// Supports --name=value and --name value forms plus boolean --flag.
// Parsing is strict where it is cheap to be: malformed numeric values abort
// with a clear message instead of silently reading as 0, and programs call
// reject_unknown() after their last get*() so a mistyped flag aborts instead
// of being ignored.
//
// Lookups take std::string_view and the maps use transparent comparators, so
// has()/get*() with a string literal never constructs a temporary
// std::string — benches poll flags in loops and should not allocate per
// lookup.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

namespace presto::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(std::string_view name) const;
  std::string get(std::string_view name, const std::string& def) const;
  // Aborts if the value is not a (fully consumed) base-10 integer / number.
  std::int64_t get_int(std::string_view name, std::int64_t def) const;
  double get_double(std::string_view name, double def) const;
  bool get_bool(std::string_view name, bool def = false) const;

  // Aborts, listing the offenders, if any provided --flag was never looked
  // up through the accessors above. Call once after the last get*().
  void reject_unknown() const;

  // Distinct flag names the program has queried so far (test hook: repeated
  // lookups of the same name must not grow this).
  std::size_t queried_count() const { return queried_.size(); }

 private:
  // Records the query without allocating when the name was already queried.
  void note_query(std::string_view name) const;

  std::map<std::string, std::string, std::less<>> flags_;
  // Flags the program asked about — the de-facto set of valid names.
  mutable std::set<std::string, std::less<>> queried_;
};

}  // namespace presto::util
