// Minimal command-line flag parsing for benches and examples.
//
// Supports --name=value and --name value forms plus boolean --flag.
// Parsing is strict where it is cheap to be: malformed numeric values abort
// with a clear message instead of silently reading as 0, and programs call
// reject_unknown() after their last get*() so a mistyped flag aborts instead
// of being ignored.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace presto::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  // Aborts if the value is not a (fully consumed) base-10 integer / number.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Aborts, listing the offenders, if any provided --flag was never looked
  // up through the accessors above. Call once after the last get*().
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> flags_;
  // Flags the program asked about — the de-facto set of valid names.
  mutable std::set<std::string> queried_;
};

}  // namespace presto::util
