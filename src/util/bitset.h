// Bit-vector sharer sets.
//
// NodeSet is the protocol-metadata workhorse: a single-word set of node ids
// for directory sharer/reader masks, schedule reader/writer sets, and the
// directory-audit validator. One machine word covers the CM-5-scale
// machines the simulator models (≤ 64 nodes; protocol constructors check
// this). Machines wider than NodeSet::kMaxNodes must spill to the dynamic
// Bitset below, which the compiler's iterative dataflow solver already uses.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace presto::util {

class NodeSet {
 public:
  static constexpr int kMaxNodes = 64;

  constexpr NodeSet() = default;

  static constexpr NodeSet of(int n) { return NodeSet(1ULL << n); }
  static constexpr NodeSet from_word(std::uint64_t w) { return NodeSet(w); }
  constexpr std::uint64_t word() const { return w_; }

  void set(int n) { w_ |= 1ULL << n; }
  void reset(int n) { w_ &= ~(1ULL << n); }
  constexpr bool test(int n) const { return (w_ >> n) & 1; }
  void clear() { w_ = 0; }

  constexpr bool any() const { return w_ != 0; }
  constexpr bool none() const { return w_ == 0; }
  // Exactly one member.
  constexpr bool single() const { return w_ != 0 && (w_ & (w_ - 1)) == 0; }
  int count() const { return __builtin_popcountll(w_); }
  // Lowest member; undefined when empty.
  int first() const { return __builtin_ctzll(w_); }

  NodeSet& operator|=(NodeSet o) {
    w_ |= o.w_;
    return *this;
  }
  NodeSet& operator&=(NodeSet o) {
    w_ &= o.w_;
    return *this;
  }
  // Set difference (this \ o).
  void subtract(NodeSet o) { w_ &= ~o.w_; }
  constexpr NodeSet without(int n) const { return NodeSet(w_ & ~(1ULL << n)); }

  friend constexpr NodeSet operator|(NodeSet a, NodeSet b) {
    return NodeSet(a.w_ | b.w_);
  }
  friend constexpr NodeSet operator&(NodeSet a, NodeSet b) {
    return NodeSet(a.w_ & b.w_);
  }
  friend constexpr bool operator==(NodeSet a, NodeSet b) {
    return a.w_ == b.w_;
  }
  friend constexpr bool operator!=(NodeSet a, NodeSet b) {
    return a.w_ != b.w_;
  }

  // Visits members in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t w = w_;
    while (w) {
      fn(__builtin_ctzll(w));
      w &= w - 1;
    }
  }

 private:
  explicit constexpr NodeSet(std::uint64_t w) : w_(w) {}
  std::uint64_t w_ = 0;
};

static_assert(sizeof(NodeSet) == 8 && NodeSet::kMaxNodes == 64,
              "NodeSet is one machine word; wider machines spill to Bitset");

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }

  void set(std::size_t i) {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void reset(std::size_t i) {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool test(std::size_t i) const {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  // Union; returns true if this changed. Sizes must match.
  bool union_with(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t next = words_[i] | o.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }

  void intersect_with(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  }

  void subtract(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool operator==(const Bitset& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  // Iterate set bits in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace presto::util
