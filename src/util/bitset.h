// Dynamic bit vector used by the compiler's iterative dataflow solver and by
// protocol sharer masks wider than 64 nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace presto::util {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }

  void set(std::size_t i) {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void reset(std::size_t i) {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool test(std::size_t i) const {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  // Union; returns true if this changed. Sizes must match.
  bool union_with(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t next = words_[i] | o.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }

  void intersect_with(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  }

  void subtract(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool operator==(const Bitset& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  // Iterate set bits in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace presto::util
