// Bit-vector sharer sets.
//
// NodeSet is the protocol-metadata workhorse: a set of node ids for
// directory sharer/reader masks, schedule reader/writer sets, and the
// directory-audit validator. It is a hybrid small/large set: members below
// kInlineNodes (64) live in one inline machine word — the common case on
// CM-5-scale machines, where a NodeSet never allocates and compiles down to
// the single-word bit ops it always was — and members >= 64 spill to a
// heap-allocated word array that grows on demand, so 256–1024-node machines
// use the same type end to end. Iteration is globally ascending (ctz order
// within each word, inline word first), which is what keeps protocol message
// emission order — and therefore every golden pin — bit-identical at <= 64
// nodes: on such machines the spill array simply never exists.
//
// The spill array is canonical: ext_ != nullptr implies at least one member
// >= 64. Every clearing operation that can empty the spill words frees them
// (the "large -> small shrink"), so representation and semantics never
// diverge and equality stays cheap.
//
// Bitset (below) is the index-addressed dynamic bit vector used by the
// compiler's iterative dataflow solver; it is sized up front and has no
// small-set optimization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace presto::util {

class NodeSet {
 public:
  // Members below this threshold are stored inline (no allocation).
  static constexpr int kInlineNodes = 64;

  constexpr NodeSet() = default;
  ~NodeSet() {
    if (ext_ != nullptr) [[unlikely]]
      delete[] ext_;
  }
  NodeSet(const NodeSet& o) : w0_(o.w0_) {
    if (o.ext_ != nullptr) [[unlikely]]
      copy_ext_(o);
  }
  NodeSet& operator=(const NodeSet& o) {
    if (this == &o) return *this;
    w0_ = o.w0_;
    if (ext_ != nullptr || o.ext_ != nullptr) [[unlikely]]
      assign_ext_(o);
    return *this;
  }
  NodeSet(NodeSet&& o) noexcept : w0_(o.w0_), ext_(o.ext_) {
    o.w0_ = 0;
    o.ext_ = nullptr;
  }
  NodeSet& operator=(NodeSet&& o) noexcept {
    if (this == &o) return *this;
    if (ext_ != nullptr) delete[] ext_;
    w0_ = o.w0_;
    ext_ = o.ext_;
    o.w0_ = 0;
    o.ext_ = nullptr;
    return *this;
  }

  static NodeSet of(int n) {
    NodeSet s;
    s.set(n);
    return s;
  }
  // Low-word (members < 64) conversions, used by the fuzzer's trace format
  // and tests. from_word never produces spill members; word() ignores them.
  static NodeSet from_word(std::uint64_t w) { return NodeSet(w); }
  constexpr std::uint64_t word() const { return w0_; }

  void set(int n) {
    if (n < kInlineNodes) {
      w0_ |= 1ULL << n;
      return;
    }
    set_spill_(n);
  }
  void reset(int n) {
    if (n < kInlineNodes) {
      w0_ &= ~(1ULL << n);
      return;
    }
    reset_spill_(n);
  }
  bool test(int n) const {
    if (n < kInlineNodes) return (w0_ >> n) & 1;
    const std::size_t wi = static_cast<std::size_t>(n - kInlineNodes) >> 6;
    if (ext_ == nullptr || wi >= ext_[0]) return false;
    return (ext_[wi + 1] >> (n & 63)) & 1;
  }
  void clear() {
    w0_ = 0;
    if (ext_ != nullptr) [[unlikely]] {
      delete[] ext_;
      ext_ = nullptr;
    }
  }

  bool any() const { return w0_ != 0 || ext_ != nullptr; }
  bool none() const { return !any(); }
  // Exactly one member.
  bool single() const {
    if (ext_ == nullptr) return w0_ != 0 && (w0_ & (w0_ - 1)) == 0;
    return w0_ == 0 && count_spill_() == 1;
  }
  int count() const {
    int c = __builtin_popcountll(w0_);
    if (ext_ != nullptr) [[unlikely]]
      c += count_spill_();
    return c;
  }
  // Lowest member; undefined when empty.
  int first() const {
    if (w0_ != 0) return __builtin_ctzll(w0_);
    return first_spill_();
  }

  NodeSet& operator|=(const NodeSet& o) {
    w0_ |= o.w0_;
    if (o.ext_ != nullptr) [[unlikely]]
      union_spill_(o);
    return *this;
  }
  NodeSet& operator&=(const NodeSet& o) {
    w0_ &= o.w0_;
    if (ext_ != nullptr) [[unlikely]]
      intersect_spill_(o);
    return *this;
  }
  // Set difference (this \ o).
  void subtract(const NodeSet& o) {
    w0_ &= ~o.w0_;
    if (ext_ != nullptr) [[unlikely]]
      subtract_spill_(o);
  }
  NodeSet without(int n) const {
    NodeSet r(*this);
    r.reset(n);
    return r;
  }

  friend NodeSet operator|(const NodeSet& a, const NodeSet& b) {
    NodeSet r(a);
    r |= b;
    return r;
  }
  friend NodeSet operator&(const NodeSet& a, const NodeSet& b) {
    NodeSet r(a);
    r &= b;
    return r;
  }
  friend bool operator==(const NodeSet& a, const NodeSet& b) {
    if (a.w0_ != b.w0_) return false;
    if (a.ext_ == nullptr && b.ext_ == nullptr) return true;
    return spill_equal_(a, b);
  }
  friend bool operator!=(const NodeSet& a, const NodeSet& b) {
    return !(a == b);
  }

  // Visits members in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t w = w0_;
    while (w) {
      fn(__builtin_ctzll(w));
      w &= w - 1;
    }
    if (ext_ != nullptr) [[unlikely]] {
      for (std::size_t wi = 0; wi < ext_[0]; ++wi) {
        std::uint64_t v = ext_[wi + 1];
        const int base = kInlineNodes + static_cast<int>(wi) * 64;
        while (v) {
          fn(base + __builtin_ctzll(v));
          v &= v - 1;
        }
      }
    }
  }

  // Heap bytes held by the spill array (0 for inline sets); protocols fold
  // this into their metadata_bytes accounting.
  std::size_t heap_bytes() const {
    return ext_ == nullptr ? 0 : (ext_[0] + 1) * sizeof(std::uint64_t);
  }

 private:
  explicit constexpr NodeSet(std::uint64_t w) : w0_(w) {}

  // Cold spill-array paths, out of line (util/bitset.cc) so the inline fast
  // paths above stay branch-plus-word-op sized.
  void set_spill_(int n);
  void reset_spill_(int n);
  void copy_ext_(const NodeSet& o);
  void assign_ext_(const NodeSet& o);
  int count_spill_() const;
  int first_spill_() const;
  void union_spill_(const NodeSet& o);
  void intersect_spill_(const NodeSet& o);
  void subtract_spill_(const NodeSet& o);
  static bool spill_equal_(const NodeSet& a, const NodeSet& b);
  // Frees the spill array when it holds no members (large -> small shrink,
  // restoring the canonical inline representation).
  void maybe_shrink_();

  std::uint64_t w0_ = 0;   // members [0, 64)
  // nullptr, or new[]'d {word_count, words...}: member 64+i*64+b is bit b of
  // ext_[1+i]. Canonical: non-null implies at least one member >= 64.
  std::uint64_t* ext_ = nullptr;
};

static_assert(sizeof(NodeSet) == 16 && NodeSet::kInlineNodes == 64,
              "NodeSet is one inline word plus a spill pointer");

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }

  void set(std::size_t i) {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void reset(std::size_t i) {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool test(std::size_t i) const {
    PRESTO_CHECK(i < nbits_, "bit " << i << " >= " << nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  // Union; returns true if this changed. Sizes must match.
  bool union_with(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t next = words_[i] | o.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }

  void intersect_with(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  }

  void subtract(const Bitset& o) {
    PRESTO_CHECK(nbits_ == o.nbits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool operator==(const Bitset& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  // Iterate set bits in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace presto::util
