#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace presto::util {

void check_fail(const char* cond, const char* file, int line,
                const std::string& msg) {
  std::fprintf(stderr, "PRESTO_CHECK failed: %s at %s:%d: %s\n", cond, file,
               line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace presto::util
