// ASCII table and stacked-bar rendering for benchmark output.
//
// The figure benches print the same content as the paper's figures: one bar
// per program version, each bar split into {remote data wait, predictive
// protocol, compute+synch} segments, normalized to the fastest version.
#pragma once

#include <string>
#include <vector>

namespace presto::util {

// Simple column-aligned table. Rows may have fewer cells than the header;
// missing cells render empty.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision.
std::string fmt_double(double v, int precision = 2);

// Horizontal stacked bar chart. Each bar has a label and a list of
// (segment label, value) pairs; bars are scaled so the longest bar spans
// `width` characters. Each segment is drawn with its own fill character.
struct BarSegment {
  std::string label;
  double value = 0.0;
};
struct Bar {
  std::string label;
  std::vector<BarSegment> segments;
};
std::string render_stacked_bars(const std::vector<Bar>& bars, int width = 60);

}  // namespace presto::util
