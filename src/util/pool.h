// Host thread pool for running independent Engine instances in parallel.
//
// Each Engine is internally sequential (one OS thread on the fiber backend),
// so experiment sweeps, multi-workload tables, and fuzz corpora scale with
// host cores only by running many *instances* side by side. parallel_map
// does exactly that: fn(0..n-1) on up to `jobs` worker threads, results
// delivered in index order regardless of completion order, so every caller
// stays deterministic — the output of a parallel sweep is byte-identical to
// the serial one.
//
// Requirements on fn: calls for different indices must be independent — in
// particular each call must create its own System/Engine (engines are not
// thread-safe, but distinct instances share nothing mutable). The fiber
// backend is per-OS-thread by construction (thread-local switch bookkeeping),
// so fibers and the pool compose freely. Process-wide test hooks
// (check/bughook.h) are the one exception; callers that set them run with
// jobs=1.
//
// The default worker count comes from PRESTO_JOBS, falling back to
// std::thread::hardware_concurrency(); tools expose it as --jobs.
#pragma once

#include <atomic>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace presto::util {

inline int default_pool_jobs() {
  static const int jobs = [] {
    const char* v = std::getenv("PRESTO_JOBS");
    if (v != nullptr && v[0] != '\0') {
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      PRESTO_CHECK(end != nullptr && *end == '\0' && n > 0 && n <= 4096,
                   "PRESTO_JOBS: expected a positive thread count, got '"
                       << v << "'");
      return static_cast<int>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return jobs;
}

// Runs fn(i) for i in [0, n) on up to `jobs` host threads and returns the
// results in index order. jobs <= 1 (or n <= 1) degenerates to a plain
// serial loop on the caller — useful both for determinism-by-construction
// and because callers compare serial vs parallel output in tests. The first
// exception thrown by any fn is rethrown on the caller after all workers
// stop (remaining indices may be skipped once a failure is recorded).
template <typename Fn>
auto parallel_map(int n, int jobs, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(0))>> {
  using R = std::decay_t<decltype(fn(0))>;
  std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
  if (n <= 0) return out;
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = fn(i);
    return out;
  }

  // Workers land results in a plain array, not the output vector:
  // std::vector<bool> packs elements into shared bytes, so concurrent
  // out[i] stores from different threads would be a data race (TSan flags
  // it). An array of R always gives every index its own object; it is moved
  // into the vector after the join.
  std::unique_ptr<R[]> slots(new R[static_cast<std::size_t>(n)]());
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        slots[static_cast<std::size_t>(i)] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs));
  for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  for (int i = 0; i < n; ++i)
    out[static_cast<std::size_t>(i)] = std::move(slots[static_cast<std::size_t>(i)]);
  return out;
}

// Result-less variant for callers that only want the side effects (each
// index still independent; same failure semantics).
template <typename Fn>
void parallel_for(int n, int jobs, Fn&& fn) {
  parallel_map(n, jobs, [&fn](int i) {
    fn(i);
    return 0;
  });
}

}  // namespace presto::util
