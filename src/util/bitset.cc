// Cold spill-array paths for the hybrid NodeSet (see util/bitset.h). None
// of these run on machines of <= 64 nodes, where every set stays inline.
#include "util/bitset.h"

#include <algorithm>

#include "check/bughook.h"

namespace presto::util {

namespace {

std::uint64_t* alloc_ext(std::size_t nwords) {
  auto* e = new std::uint64_t[nwords + 1]();
  e[0] = nwords;
  return e;
}

}  // namespace

void NodeSet::set_spill_(int n) {
  const std::size_t wi = static_cast<std::size_t>(n - kInlineNodes) >> 6;
  if (ext_ == nullptr || wi >= ext_[0]) {
    const std::size_t old = ext_ == nullptr ? 0 : ext_[0];
    std::uint64_t* grown = alloc_ext(std::max(wi + 1, old * 2));
    for (std::size_t i = 0; i < old; ++i) grown[i + 1] = ext_[i + 1];
    delete[] ext_;
    ext_ = grown;
  }
  ext_[wi + 1] |= 1ULL << (n & 63);
}

void NodeSet::reset_spill_(int n) {
  const std::size_t wi = static_cast<std::size_t>(n - kInlineNodes) >> 6;
  if (ext_ == nullptr || wi >= ext_[0]) return;
  ext_[wi + 1] &= ~(1ULL << (n & 63));
  maybe_shrink_();
}

void NodeSet::copy_ext_(const NodeSet& o) {
  ext_ = alloc_ext(o.ext_[0]);
  for (std::size_t i = 0; i < o.ext_[0]; ++i) ext_[i + 1] = o.ext_[i + 1];
}

void NodeSet::assign_ext_(const NodeSet& o) {
  if (ext_ != nullptr) {
    delete[] ext_;
    ext_ = nullptr;
  }
  if (o.ext_ != nullptr) copy_ext_(o);
}

int NodeSet::count_spill_() const {
  int c = 0;
  for (std::size_t i = 0; i < ext_[0]; ++i)
    c += __builtin_popcountll(ext_[i + 1]);
  return c;
}

int NodeSet::first_spill_() const {
  for (std::size_t i = 0; i < ext_[0]; ++i)
    if (ext_[i + 1] != 0)
      return kInlineNodes + static_cast<int>(i) * 64 +
             __builtin_ctzll(ext_[i + 1]);
  PRESTO_FAIL("first() on empty NodeSet");
}

void NodeSet::union_spill_(const NodeSet& o) {
  if (ext_ == nullptr || ext_[0] < o.ext_[0]) {
    const std::size_t old = ext_ == nullptr ? 0 : ext_[0];
    std::uint64_t* grown = alloc_ext(o.ext_[0]);
    for (std::size_t i = 0; i < old; ++i) grown[i + 1] = ext_[i + 1];
    delete[] ext_;
    ext_ = grown;
  }
  for (std::size_t i = 0; i < o.ext_[0]; ++i) ext_[i + 1] |= o.ext_[i + 1];
}

void NodeSet::intersect_spill_(const NodeSet& o) {
  const std::size_t on = o.ext_ == nullptr ? 0 : o.ext_[0];
  for (std::size_t i = 0; i < ext_[0]; ++i)
    ext_[i + 1] &= i < on ? o.ext_[i + 1] : 0;
  maybe_shrink_();
}

void NodeSet::subtract_spill_(const NodeSet& o) {
  if (o.ext_ == nullptr) return;
  const std::size_t n = std::min(ext_[0], o.ext_[0]);
  for (std::size_t i = 0; i < n; ++i) ext_[i + 1] &= ~o.ext_[i + 1];
  maybe_shrink_();
}

bool NodeSet::spill_equal_(const NodeSet& a, const NodeSet& b) {
  // Canonical form (non-null ext_ holds >= 1 member) means null-vs-non-null
  // differ; equal member sets can still differ in capacity, so compare with
  // zero padding.
  if ((a.ext_ == nullptr) != (b.ext_ == nullptr)) return false;
  const std::size_t an = a.ext_[0], bn = b.ext_[0];
  for (std::size_t i = 0; i < std::max(an, bn); ++i) {
    const std::uint64_t aw = i < an ? a.ext_[i + 1] : 0;
    const std::uint64_t bw = i < bn ? b.ext_[i + 1] : 0;
    if (aw != bw) return false;
  }
  return true;
}

void NodeSet::maybe_shrink_() {
  for (std::size_t i = 0; i < ext_[0]; ++i)
    if (ext_[i + 1] != 0) return;
  delete[] ext_;
  ext_ = nullptr;
  if (check::bug_hooks().drop_spill_sharer) [[unlikely]] {
    // Planted bug (see check/bughook.h): the large -> small shrink loses the
    // highest surviving inline member.
    if (w0_ != 0) w0_ &= ~(1ULL << (63 - __builtin_clzll(w0_)));
  }
}

}  // namespace presto::util
