#include "util/cli.h"

#include <cerrno>
#include <cstdlib>

#include "util/check.h"

namespace presto::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    PRESTO_CHECK(arg.rfind("--", 0) == 0,
                 "unexpected positional argument '" << arg
                                                    << "' (flags are --name[=value])");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "1";
    }
  }
}

void Cli::note_query(std::string_view name) const {
  // Transparent find first: the common case (name already recorded) must not
  // build a temporary std::string.
  if (queried_.find(name) == queried_.end()) queried_.emplace(name);
}

bool Cli::has(std::string_view name) const {
  note_query(name);
  return flags_.find(name) != flags_.end();
}

std::string Cli::get(std::string_view name, const std::string& def) const {
  note_query(name);
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t def) const {
  note_query(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const std::int64_t parsed = std::strtoll(v.c_str(), &end, 10);
  PRESTO_CHECK(!v.empty() && end == v.c_str() + v.size(),
               "flag --" << name << " expects an integer, got '" << v << "'");
  PRESTO_CHECK(errno != ERANGE,
               "flag --" << name << " integer out of range: '" << v << "'");
  return parsed;
}

double Cli::get_double(std::string_view name, double def) const {
  note_query(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  PRESTO_CHECK(!v.empty() && end == v.c_str() + v.size(),
               "flag --" << name << " expects a number, got '" << v << "'");
  PRESTO_CHECK(errno != ERANGE,
               "flag --" << name << " number out of range: '" << v << "'");
  return parsed;
}

bool Cli::get_bool(std::string_view name, bool def) const {
  note_query(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "0" && it->second != "false";
}

void Cli::reject_unknown() const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    if (queried_.find(name) != queried_.end()) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "--" + name;
  }
  PRESTO_CHECK(unknown.empty(), "unknown flag(s): " << unknown);
}

}  // namespace presto::util
