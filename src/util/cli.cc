#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace presto::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "1";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "0" && it->second != "false";
}

}  // namespace presto::util
