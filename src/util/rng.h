// Deterministic pseudo-random number generation.
//
// All randomness in presto (workload generation, property-test inputs) flows
// through explicitly seeded generators so that every simulation run is
// bit-reproducible. SplitMix64 is used for seeding and xoshiro256** for the
// main stream (both public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace presto::util {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  //
  // NOTE: `%` is modulo-biased for n that do not divide 2^64 (low values are
  // marginally over-represented). Existing call sites keep this variant
  // because golden tests depend on its exact consumption of the stream; new
  // code that cares about the distribution (the protocol fuzzer) should use
  // next_below_unbiased().
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  // Uniform integer in [0, n) with no modulo bias: rejection-samples the
  // (2^64 mod n)-sized remainder region, so every value is exactly equally
  // likely. Consumes a variable number of stream words (≥ 1, expected < 2),
  // so it is NOT a drop-in replacement where stream positions are golden.
  std::uint64_t next_below_unbiased(std::uint64_t n) {
    // Values below 2^64 mod n belong to the incomplete final copy of [0, n)
    // and would bias the modulo; reject them. (-n mod 2^64) mod n avoids
    // 128-bit arithmetic for 2^64 mod n.
    const std::uint64_t min = (0 - n) % n;
    std::uint64_t x;
    do {
      x = next_u64();
    } while (x < min);
    return x % n;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // Marsaglia polar method; deterministic given the stream.
  double next_normal(double mean = 0.0, double stddev = 1.0) {
    double u, v, s;
    do {
      u = next_double(-1.0, 1.0);
      v = next_double(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace presto::util
