#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace presto::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_sep = [&] {
    os << '+';
    for (std::size_t c = 0; c < header_.size(); ++c)
      os << std::string(widths[c] + 2, '-') << '+';
    os << '\n';
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string render_stacked_bars(const std::vector<Bar>& bars, int width) {
  static const char kFills[] = {'#', '.', '=', '%', '~', '+'};
  double max_total = 0.0;
  std::size_t max_label = 0;
  for (const auto& bar : bars) {
    double total = 0.0;
    for (const auto& seg : bar.segments) total += seg.value;
    max_total = std::max(max_total, total);
    max_label = std::max(max_label, bar.label.size());
  }
  if (max_total <= 0.0) max_total = 1.0;

  std::ostringstream os;
  for (const auto& bar : bars) {
    os << bar.label << std::string(max_label - bar.label.size(), ' ') << " |";
    double total = 0.0;
    for (std::size_t s = 0; s < bar.segments.size(); ++s) {
      const int chars = static_cast<int>(
          bar.segments[s].value / max_total * width + 0.5);
      os << std::string(static_cast<std::size_t>(chars),
                        kFills[s % sizeof kFills]);
      total += bar.segments[s].value;
    }
    os << "  (" << fmt_double(total) << ")\n";
  }
  if (!bars.empty()) {
    os << "legend:";
    for (std::size_t s = 0; s < bars.front().segments.size(); ++s)
      os << ' ' << kFills[s % sizeof kFills] << '='
         << bars.front().segments[s].label;
    os << '\n';
  }
  return os.str();
}

}  // namespace presto::util
