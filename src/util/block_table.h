// Page-chunked, lazily materialized per-block metadata table.
//
// Protocol metadata (directory entries, sharer sets, dirty marks) is keyed
// by cache block over a contiguous address space whose home assignment is
// page-grained: a home node owns whole pages, so the blocks it keeps state
// for cluster into dense page-sized runs. A hash table pays a hash + probe
// + scattered cache line per touch on exactly the structures iterative
// phases hammer every round; this table instead indexes straight into a
// per-page chunk of `blocks_per_page` value-initialized slots, materialized
// on first touch so untouched pages cost one null pointer. Lookup is two
// shifts, a mask, and one predictable indirection — no hashing, no rehash,
// stable references for the lifetime of the table (chunks never move; only
// the page-pointer vector grows, and `at()` hands out references into the
// chunks, never into that vector).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"

namespace presto::util {

template <typename T>
class BlockTable {
 public:
  using BlockId = std::uint64_t;

  BlockTable() = default;
  explicit BlockTable(std::uint32_t blocks_per_page) {
    configure(blocks_per_page);
  }

  void configure(std::uint32_t blocks_per_page) {
    PRESTO_CHECK(blocks_per_page != 0 &&
                     (blocks_per_page & (blocks_per_page - 1)) == 0,
                 "blocks_per_page must be a power of two, got "
                     << blocks_per_page);
    shift_ = static_cast<std::uint32_t>(__builtin_ctz(blocks_per_page));
    mask_ = blocks_per_page - 1;
  }

  std::uint32_t blocks_per_page() const { return mask_ + 1; }

  // Reference to block b's slot; materializes the page chunk on first touch
  // (value-initialized, so a fresh slot equals a default-constructed T).
  T& at(BlockId b) {
    const std::size_t page = static_cast<std::size_t>(b >> shift_);
    if (page >= chunks_.size()) chunks_.resize(page + 1);
    auto& chunk = chunks_[page];
    if (chunk == nullptr) chunk.reset(new T[static_cast<std::size_t>(mask_) + 1]());
    return chunk[static_cast<std::size_t>(b) & mask_];
  }

  // Read-only peek that never materializes: nullptr if the page chunk does
  // not exist yet (the slot is then logically default-constructed).
  const T* peek(BlockId b) const {
    const std::size_t page = static_cast<std::size_t>(b >> shift_);
    if (page >= chunks_.size() || chunks_[page] == nullptr) return nullptr;
    return &chunks_[page][static_cast<std::size_t>(b) & mask_];
  }

  // Visits every slot of every materialized chunk in ascending block order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t per = static_cast<std::size_t>(mask_) + 1;
    for (std::size_t page = 0; page < chunks_.size(); ++page) {
      const auto& chunk = chunks_[page];
      if (chunk == nullptr) continue;
      for (std::size_t i = 0; i < per; ++i)
        fn(static_cast<BlockId>((page << shift_) + i), chunk[i]);
    }
  }

  std::size_t pages_resident() const {
    std::size_t n = 0;
    for (const auto& c : chunks_)
      if (c != nullptr) ++n;
    return n;
  }

  // Host memory held by materialized chunks plus the page-pointer spine.
  std::size_t bytes_resident() const {
    return pages_resident() * (static_cast<std::size_t>(mask_) + 1) *
               sizeof(T) +
           chunks_.capacity() * sizeof(chunks_[0]);
  }

  void clear() { chunks_.clear(); }

 private:
  std::uint32_t shift_ = 0;
  std::uint32_t mask_ = 0;
  std::vector<std::unique_ptr<T[]>> chunks_;
};

}  // namespace presto::util
