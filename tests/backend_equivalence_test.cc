// Backend equivalence: the fiber and thread processor backends differ only
// in how control is transferred between simulated processors (user-level
// stack switch vs mutex/condvar run token), so every simulated result —
// per-node counters, traffic, event counts, exec times, final memory image —
// must be bit-identical between them for every protocol. This is the
// guarantee that lets the default backend change without touching a single
// golden number.
#include <gtest/gtest.h>

#include "apps/barnes/barnes.h"
#include "runtime/machine.h"
#include "golden_workload.h"

namespace presto {
namespace {

using runtime::ProtocolKind;
using testutil::run_micro_workload;
using testutil::WorkloadResult;

void expect_equal(const stats::NodeCounters& a, const stats::NodeCounters& b,
                  int node) {
  SCOPED_TRACE("node " + std::to_string(node));
  EXPECT_EQ(a.remote_wait, b.remote_wait);
  EXPECT_EQ(a.presend, b.presend);
  EXPECT_EQ(a.barrier_wait, b.barrier_wait);
  EXPECT_EQ(a.lock_wait, b.lock_wait);
  EXPECT_EQ(a.finish, b.finish);
  EXPECT_EQ(a.shared_reads, b.shared_reads);
  EXPECT_EQ(a.shared_writes, b.shared_writes);
  EXPECT_EQ(a.read_faults, b.read_faults);
  EXPECT_EQ(a.write_faults, b.write_faults);
  EXPECT_EQ(a.local_faults, b.local_faults);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.presend_blocks_sent, b.presend_blocks_sent);
  EXPECT_EQ(a.presend_blocks_received, b.presend_blocks_received);
  EXPECT_EQ(a.presend_msgs, b.presend_msgs);
  EXPECT_EQ(a.schedule_entries, b.schedule_entries);
}

void expect_equal(const WorkloadResult& a, const WorkloadResult& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t n = 0; n < a.counters.size(); ++n)
    expect_equal(a.counters[n], b.counters[n], static_cast<int>(n));
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.mem_hash, b.mem_hash);
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(BackendEquivalenceTest, MicroWorkloadBitIdentical) {
  const WorkloadResult fiber = run_micro_workload(
      GetParam(), /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/6,
      sim::Backend::kFiber);
  const WorkloadResult thread = run_micro_workload(
      GetParam(), /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/6,
      sim::Backend::kThread);
  expect_equal(fiber, thread);
}

// A nonzero quantum floor exercises horizon yields — extra voluntary control
// transfers that must also land at identical virtual times on both backends.
TEST_P(BackendEquivalenceTest, MicroWorkloadWithQuantumFloorBitIdentical) {
  const WorkloadResult fiber = run_micro_workload(
      GetParam(), /*quantum_floor=*/500, /*nodes=*/4, /*rounds=*/4,
      sim::Backend::kFiber);
  const WorkloadResult thread = run_micro_workload(
      GetParam(), /*quantum_floor=*/500, /*nodes=*/4, /*rounds=*/4,
      sim::Backend::kThread);
  expect_equal(fiber, thread);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, BackendEquivalenceTest,
    ::testing::ValuesIn(runtime::kAllProtocolKinds),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) -> std::string {
      switch (info.param) {
        case ProtocolKind::kStache: return "Stache";
        case ProtocolKind::kPredictive: return "Predictive";
        case ProtocolKind::kPredictiveAnticipate: return "PredictiveAnticipate";
        case ProtocolKind::kWriteUpdate: return "WriteUpdate";
        case ProtocolKind::kCCached: return "CCached";
      }
      return "Unknown";
    });

// The merge path across backends: the cc micro workload's flush/merge
// scheduling must be bit-identical between fiber and thread control
// transfer, counters and final merged image included.
TEST(BackendEquivalenceCCached, ReductionWorkloadBitIdentical) {
  for (const auto bsz : {32u, 128u}) {
    SCOPED_TRACE("bsz=" + std::to_string(bsz));
    const auto run = [&](sim::Backend backend) {
      return testutil::run_cc_micro_workload(ProtocolKind::kCCached, bsz,
                                             /*nodes=*/4, /*rounds=*/6,
                                             /*traced=*/false, backend);
    };
    const WorkloadResult fiber = run(sim::Backend::kFiber);
    const WorkloadResult thread = run(sim::Backend::kThread);
    expect_equal(fiber, thread);
    EXPECT_EQ(fiber.cc_flushes, thread.cc_flushes);
    EXPECT_EQ(fiber.cc_entries, thread.cc_entries);
    EXPECT_GT(fiber.cc_flushes, 0u);
  }
}

TEST(BackendEquivalenceBarnes, ChecksumAndReportBitIdentical) {
  apps::BarnesParams params;
  params.bodies = 256;
  params.steps = 2;

  runtime::MachineConfig m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.backend = sim::Backend::kFiber;
  const auto fiber =
      apps::run_barnes(params, m, ProtocolKind::kPredictive, true);
  m.backend = sim::Backend::kThread;
  const auto thread =
      apps::run_barnes(params, m, ProtocolKind::kPredictive, true);

  EXPECT_EQ(fiber.checksum, thread.checksum);
  EXPECT_EQ(fiber.report.exec, thread.report.exec);
  EXPECT_EQ(fiber.report.remote_wait, thread.report.remote_wait);
  EXPECT_EQ(fiber.report.presend, thread.report.presend);
  EXPECT_EQ(fiber.report.shared_accesses, thread.report.shared_accesses);
  EXPECT_EQ(fiber.report.faults, thread.report.faults);
  EXPECT_EQ(fiber.report.msgs, thread.report.msgs);
  EXPECT_EQ(fiber.report.bytes, thread.report.bytes);
  EXPECT_EQ(fiber.report.presend_blocks, thread.report.presend_blocks);
  // The host-side counters are the one legitimate difference: a fiber run
  // reports its backend name and cheap direct resumes.
  EXPECT_STREQ(fiber.report.host.backend, "fiber");
  EXPECT_STREQ(thread.report.host.backend, "thread");
}

}  // namespace
}  // namespace presto
