// util::Cli flag parsing and the allocation-free lookup contract, plus the
// bench-side --protocol selector that resolves names through the protocol
// registry.
#include <gtest/gtest.h>

#include <initializer_list>
#include <string_view>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/machine.h"
#include "util/cli.h"

using presto::util::Cli;

namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  static std::vector<const char*> argv;
  argv.assign({"prog"});
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()),
             const_cast<char**>(argv.data()));
}

TEST(Cli, ParsesValueAndBoolForms) {
  const Cli cli = make_cli({"--blocks=512", "--rounds", "192", "--quick"});
  EXPECT_TRUE(cli.has("blocks"));
  EXPECT_EQ(cli.get_int("blocks", 0), 512);
  EXPECT_EQ(cli.get_int("rounds", 0), 192);
  EXPECT_TRUE(cli.get_bool("quick"));
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get("json", "default"), "default");
  EXPECT_EQ(cli.get_double("missing", 2.5), 2.5);
}

// Lookups take std::string_view: a literal (or any non-owning view) must work
// without constructing a std::string at the call site, and the transparent
// map comparators resolve it without a temporary key either.
TEST(Cli, LookupAcceptsStringView) {
  const Cli cli = make_cli({"--alpha=1"});
  constexpr std::string_view key = "alpha";
  EXPECT_TRUE(cli.has(key));
  EXPECT_EQ(cli.get_int(key, 0), 1);
  const char buf[] = {'a', 'l', 'p', 'h', 'a', 'X'};  // not NUL-terminated
  EXPECT_TRUE(cli.has(std::string_view(buf, 5)));
}

// Regression for the per-lookup allocation fix: repeated queries of the same
// name must not grow the queried-names set (the old code built a temporary
// std::string per call and inserted it every time).
TEST(Cli, RepeatedLookupsRecordNameOnce) {
  const Cli cli = make_cli({"--blocks=512"});
  EXPECT_EQ(cli.queried_count(), 0u);
  for (int i = 0; i < 100; ++i) {
    (void)cli.has("blocks");
    (void)cli.get_int("blocks", 0);
  }
  EXPECT_EQ(cli.queried_count(), 1u);
  (void)cli.get("other", "");
  EXPECT_EQ(cli.queried_count(), 2u);
}

TEST(Cli, RejectUnknownPassesWhenAllQueried) {
  const Cli cli = make_cli({"--blocks=512", "--quick"});
  (void)cli.get_int("blocks", 0);
  (void)cli.get_bool("quick");
  cli.reject_unknown();  // must not abort
}

TEST(CliDeath, RejectUnknownAbortsOnUnqueriedFlag) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Cli cli = make_cli({"--typo=1"});
  EXPECT_DEATH(cli.reject_unknown(), "unknown flag");
}

TEST(CliDeath, MalformedIntegerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Cli cli = make_cli({"--blocks=12x"});
  EXPECT_DEATH((void)cli.get_int("blocks", 0), "expects an integer");
}

// The benches take their protocol sweep from the registry: no --protocol
// means every registered protocol in canonical order, so a newly registered
// protocol appears in every sweep without touching the bench binaries.
TEST(ProtocolCli, DefaultsToFullRegistry) {
  const Cli cli = make_cli({});
  const auto protos = presto::bench::protocols_from_cli(cli);
  ASSERT_EQ(protos.size(),
            static_cast<std::size_t>(presto::runtime::kNumProtocolKinds));
  for (int i = 0; i < presto::runtime::kNumProtocolKinds; ++i)
    EXPECT_EQ(protos[static_cast<std::size_t>(i)],
              presto::runtime::kAllProtocolKinds[i]);
}

// Every name protocol_kind_name() prints must round-trip back through the
// selector to exactly that protocol — the spelling in bench output is the
// spelling --protocol accepts.
TEST(ProtocolCli, EveryRegistryNameSelectsItsProtocol) {
  for (const auto kind : presto::runtime::kAllProtocolKinds) {
    const Cli cli = make_cli(
        {(std::string("--protocol=") +
          presto::runtime::protocol_kind_name(kind)).c_str()});
    const auto protos = presto::bench::protocols_from_cli(cli);
    ASSERT_EQ(protos.size(), 1u);
    EXPECT_EQ(protos.front(), kind);
  }
}

TEST(ProtocolCliDeath, UnknownProtocolNameAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Cli cli = make_cli({"--protocol=bogus"});
  // The abort message lists the valid names so a typo is self-correcting.
  EXPECT_DEATH((void)presto::bench::protocols_from_cli(cli),
               "unknown protocol 'bogus'.*stache.*ccached");
}

}  // namespace
