// Cross-version integration tests for the three benchmark applications:
// every protocol/directive combination must compute the same answer, the
// predictive versions must actually communicate less, and the physics must
// be sane.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/adaptive/adaptive.h"
#include "apps/barnes/barnes.h"
#include "apps/ocean/ocean.h"
#include "apps/ranker/ranker.h"
#include "apps/water/splash_water.h"
#include "apps/water/water.h"

namespace presto::apps {
namespace {

using runtime::MachineConfig;
using runtime::ProtocolKind;

AdaptiveParams small_adaptive() {
  AdaptiveParams p;
  p.n = 16;
  p.iters = 10;
  return p;
}

BarnesParams small_barnes() {
  BarnesParams p;
  p.bodies = 256;
  p.steps = 2;
  return p;
}

WaterParams small_water() {
  WaterParams p;
  p.molecules = 64;
  p.steps = 4;
  return p;
}

OceanParams small_ocean() {
  OceanParams p;
  p.n = 16;
  p.iters = 6;
  return p;
}

RankerParams small_ranker() {
  RankerParams p;
  p.vertices = 96;
  p.degree = 4;
  p.iters = 6;
  return p;
}

TEST(Adaptive, OptimizedMatchesUnoptimizedAndRefines) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto unopt =
      run_adaptive(small_adaptive(), m, ProtocolKind::kStache, false);
  const auto opt =
      run_adaptive(small_adaptive(), m, ProtocolKind::kPredictive, true);
  EXPECT_DOUBLE_EQ(unopt.checksum, opt.checksum);
  EXPECT_GT(unopt.checksum, 0.0);  // potential spread from the hot edge
  // The predictive version converts remote waits into presends.
  EXPECT_LT(opt.report.remote_wait, unopt.report.remote_wait);
  EXPECT_GT(opt.report.presend_blocks, 0u);
  EXPECT_GT(opt.report.local_hit_pct, unopt.report.local_hit_pct);
}

TEST(Adaptive, RefinementGrowsTheScheduleIncrementally) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  AdaptiveParams p = small_adaptive();
  p.iters = 3;
  const auto a3 = run_adaptive(p, m, ProtocolKind::kPredictive, true);
  p.iters = 10;
  const auto a10 = run_adaptive(p, m, ProtocolKind::kPredictive, true);
  // More iterations -> more refinement -> more presend traffic per phase.
  EXPECT_GT(a10.report.presend_blocks, a3.report.presend_blocks);
}

TEST(Adaptive, DeterministicAcrossRuns) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto r1 =
      run_adaptive(small_adaptive(), m, ProtocolKind::kPredictive, true);
  const auto r2 =
      run_adaptive(small_adaptive(), m, ProtocolKind::kPredictive, true);
  EXPECT_DOUBLE_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.report.exec, r2.report.exec);
  EXPECT_EQ(r1.report.msgs, r2.report.msgs);
}

TEST(Adaptive, BlockSizeChangesCostsNotValues) {
  const auto a32 = run_adaptive(small_adaptive(),
                                MachineConfig::cm5_blizzard(4, 32),
                                ProtocolKind::kStache, false);
  const auto a256 = run_adaptive(small_adaptive(),
                                 MachineConfig::cm5_blizzard(4, 256),
                                 ProtocolKind::kStache, false);
  EXPECT_DOUBLE_EQ(a32.checksum, a256.checksum);
  EXPECT_NE(a32.report.exec, a256.report.exec);
}

TEST(Barnes, AllVersionsAgree) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto unopt = run_barnes(small_barnes(), m, ProtocolKind::kStache, false);
  const auto opt =
      run_barnes(small_barnes(), m, ProtocolKind::kPredictive, true);
  const auto spmd =
      run_barnes(small_barnes(), m, ProtocolKind::kWriteUpdate, false);
  EXPECT_DOUBLE_EQ(unopt.checksum, opt.checksum);
  EXPECT_DOUBLE_EQ(unopt.checksum, spmd.checksum);
  EXPECT_NE(unopt.checksum, 0.0);
}

TEST(Barnes, PredictiveReducesRemoteWait) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto unopt = run_barnes(small_barnes(), m, ProtocolKind::kStache, false);
  const auto opt =
      run_barnes(small_barnes(), m, ProtocolKind::kPredictive, true);
  EXPECT_LT(opt.report.remote_wait, unopt.report.remote_wait);
  EXPECT_GT(opt.report.presend_blocks, 0u);
}

TEST(Barnes, SpatialLocalityHelpsBigBlocksUnderStache) {
  const auto b32 = run_barnes(small_barnes(),
                              MachineConfig::cm5_blizzard(4, 32),
                              ProtocolKind::kStache, false);
  const auto b1024 = run_barnes(small_barnes(),
                                MachineConfig::cm5_blizzard(4, 1024),
                                ProtocolKind::kStache, false);
  EXPECT_DOUBLE_EQ(b32.checksum, b1024.checksum);
  // Morton-coherent bodies/cells: larger blocks mean far fewer faults.
  EXPECT_LT(b1024.report.faults, b32.report.faults / 2);
}

TEST(Water, OptimizedMatchesUnoptimized) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto unopt = run_water(small_water(), m, ProtocolKind::kStache, false);
  const auto opt = run_water(small_water(), m, ProtocolKind::kPredictive, true);
  EXPECT_DOUBLE_EQ(unopt.checksum, opt.checksum);
  EXPECT_LT(opt.report.remote_wait, unopt.report.remote_wait);
}

TEST(Water, SplashVariantComputesSamePhysics) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto cstar = run_water(small_water(), m, ProtocolKind::kStache, false);
  const auto splash = run_water_splash(small_water(), m);
  // Different accumulation order: equal up to floating-point tolerance.
  EXPECT_NEAR(splash.checksum, cstar.checksum,
              1e-6 * std::abs(cstar.checksum) + 1e-9);
  // The lock-based variant pays for its shared-force accumulation.
  EXPECT_GT(splash.report.lock_wait, 0);
}

TEST(Water, StaticPatternReachesSteadyStateHits) {
  WaterParams p = small_water();
  p.steps = 8;
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto opt = run_water(p, m, ProtocolKind::kPredictive, true);
  const auto unopt = run_water(p, m, ProtocolKind::kStache, false);
  // Static repetitive pattern: optimized version satisfies nearly all
  // position reads locally after the first step.
  EXPECT_GT(opt.report.local_hit_pct, unopt.report.local_hit_pct);
  EXPECT_LT(opt.report.faults, unopt.report.faults / 2);
}

TEST(Ocean, AllProtocolsAgree) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto unopt = run_ocean(small_ocean(), m, ProtocolKind::kStache, false);
  const auto opt = run_ocean(small_ocean(), m, ProtocolKind::kPredictive, true);
  const auto wu = run_ocean(small_ocean(), m, ProtocolKind::kWriteUpdate, false);
  const auto cc = run_ocean(small_ocean(), m, ProtocolKind::kCCached, false);
  EXPECT_DOUBLE_EQ(unopt.checksum, opt.checksum);
  EXPECT_DOUBLE_EQ(unopt.checksum, wu.checksum);
  EXPECT_DOUBLE_EQ(unopt.checksum, cc.checksum);
  EXPECT_GT(unopt.checksum, 0.0);  // potential spread from the hot edge
}

TEST(Ocean, CCachedMatchesStacheOnNonCommutativeWork) {
  // Ocean declares no commutative regions, so ccached must degrade to
  // Stache exactly: same simulated time, same message count, same faults.
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto st = run_ocean(small_ocean(), m, ProtocolKind::kStache, false);
  const auto cc = run_ocean(small_ocean(), m, ProtocolKind::kCCached, false);
  EXPECT_EQ(st.report.exec, cc.report.exec);
  EXPECT_EQ(st.report.msgs, cc.report.msgs);
  EXPECT_EQ(st.report.bytes, cc.report.bytes);
  EXPECT_EQ(st.report.faults, cc.report.faults);
  EXPECT_DOUBLE_EQ(st.checksum, cc.checksum);
}

TEST(Ocean, StaticStencilFavoursPredictive) {
  // The boundary-row exchange repeats identically every sweep — predictive
  // schedules converge and presends replace nearly all remote waits.
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto unopt = run_ocean(small_ocean(), m, ProtocolKind::kStache, false);
  const auto opt = run_ocean(small_ocean(), m, ProtocolKind::kPredictive, true);
  EXPECT_LT(opt.report.remote_wait, unopt.report.remote_wait);
  EXPECT_GT(opt.report.presend_blocks, 0u);
}

TEST(Ranker, AllProtocolsAgreeExactly) {
  // Integer fixed-point ranks: addition commutes exactly, so every
  // protocol — including the privatized ccached merge and the write-update
  // host-side reduction — lands on bit-identical ranks.
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto st = run_ranker(small_ranker(), m, ProtocolKind::kStache, false);
  const auto pr =
      run_ranker(small_ranker(), m, ProtocolKind::kPredictive, true);
  const auto an =
      run_ranker(small_ranker(), m, ProtocolKind::kPredictiveAnticipate, true);
  const auto wu =
      run_ranker(small_ranker(), m, ProtocolKind::kWriteUpdate, false);
  const auto cc = run_ranker(small_ranker(), m, ProtocolKind::kCCached, false);
  EXPECT_DOUBLE_EQ(st.checksum, pr.checksum);
  EXPECT_DOUBLE_EQ(st.checksum, an.checksum);
  EXPECT_DOUBLE_EQ(st.checksum, wu.checksum);
  EXPECT_DOUBLE_EQ(st.checksum, cc.checksum);
  EXPECT_GT(st.checksum, 0.0);
}

TEST(Ranker, CCachedCutsTheWriteStorm) {
  // Under Stache every push is a remote read-modify-write and the power-law
  // head blocks ping-pong between all nodes; ccached privatizes the adds
  // and pays one merge round trip per touched block per node instead.
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto st = run_ranker(small_ranker(), m, ProtocolKind::kStache, false);
  const auto cc = run_ranker(small_ranker(), m, ProtocolKind::kCCached, false);
  EXPECT_LT(cc.report.faults, st.report.faults);
  EXPECT_LT(cc.report.remote_wait, st.report.remote_wait);
  EXPECT_LT(cc.report.exec, st.report.exec);
}

TEST(Ranker, DriftingEdgesDefeatPredictiveSchedules) {
  // The edge set is re-drawn every iteration, so last iteration's learned
  // schedule is always stale; ccached must beat predictive here.
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto pr =
      run_ranker(small_ranker(), m, ProtocolKind::kPredictive, true);
  const auto cc = run_ranker(small_ranker(), m, ProtocolKind::kCCached, false);
  EXPECT_LT(cc.report.remote_wait, pr.report.remote_wait);
}

TEST(Ranker, DeterministicAcrossRuns) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto r1 = run_ranker(small_ranker(), m, ProtocolKind::kCCached, false);
  const auto r2 = run_ranker(small_ranker(), m, ProtocolKind::kCCached, false);
  EXPECT_DOUBLE_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.report.exec, r2.report.exec);
  EXPECT_EQ(r1.report.msgs, r2.report.msgs);
}

TEST(Water, EnergyScaleIsPhysical) {
  const auto m = MachineConfig::cm5_blizzard(4, 32);
  const auto r = run_water(small_water(), m, ProtocolKind::kStache, false);
  // LJ lattice at rho=0.8: per-molecule energy is O(1..10) in reduced
  // units; the trace accumulates steps * total energy.
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_NE(r.checksum, 0.0);
}

}  // namespace
}  // namespace presto::apps
