// Attribution reconciliation properties over the fuzz corpus and the paper
// apps: the tracer keeps its own accounting (summary) and the reader-side
// analysis recomputes everything from the raw event stream — both must
// reconcile EXACTLY with the protocol's counters. No tolerance, no
// approximation: simulated time is integral and every charge is observed.
//
//   * presend hits + waste + unused == presend_blocks_received (protocol)
//   * miss windows == access faults (one window per fault, all protocols)
//   * Σ miss latency == Σ remote_wait (windows bracket the charge exactly)
//   * reader attribution: fault + transfer + occupancy + queue == total,
//     per class, per phase, and in aggregate; totals match the summary
//   * per-phase presend totals partition the global totals
#include <gtest/gtest.h>

#include "apps/adaptive/adaptive.h"
#include "apps/barnes/barnes.h"
#include "apps/ocean/ocean.h"
#include "apps/ranker/ranker.h"
#include "apps/water/water.h"
#include "check/fuzz.h"
#include "golden_workload.h"
#include "trace/analysis.h"

using namespace presto;

namespace {

using runtime::ProtocolKind;

// `upgrades_in_place`: write-update satisfies a write fault on a ReadOnly
// copy locally (no invalidation in an update protocol), so it bumps
// write_faults without opening a miss window or charging remote_wait —
// the fault-count identity becomes an upper bound there, while the latency
// identity stays exact for every protocol.
void expect_reconciles(const check::TraceCapture& cap,
                       bool upgrades_in_place = false) {
  const trace::Summary& s = cap.summary;
  ASSERT_EQ(s.dropped, 0u) << "drops would break exact reconciliation";

  std::uint64_t faults = 0, presend_received = 0;
  sim::Time remote_wait = 0;
  for (const auto& c : cap.counters) {
    faults += c.read_faults + c.write_faults;
    presend_received += c.presend_blocks_received;
    remote_wait += c.remote_wait;
  }

  // Presend life-cycle: every installed block resolves exactly once.
  EXPECT_EQ(s.presend_installs, presend_received);
  EXPECT_EQ(s.presend_hits + s.presend_waste + s.presend_unused,
            presend_received);

  // One miss window per access fault — plus one per ccached flush round
  // trip, which blocks like a miss without a tag fault — and the windows
  // bracket the protocol's remote_wait accumulation exactly.
  if (upgrades_in_place)
    EXPECT_LE(s.misses, faults);
  else
    EXPECT_EQ(s.misses, faults + cap.cc_flushes);
  EXPECT_EQ(s.miss_latency_total, remote_wait);
  std::uint64_t by_class = 0;
  for (const auto n : s.miss_by_class) by_class += n;
  EXPECT_EQ(by_class, s.misses);

  // Per-phase totals partition the global totals.
  std::uint64_t ph_misses = 0, ph_hits = 0, ph_waste = 0;
  sim::Time ph_lat = 0;
  for (const auto& p : s.phases) {
    ph_misses += p.misses;
    ph_hits += p.presend_hits;
    ph_waste += p.presend_waste;
    ph_lat += p.miss_latency;
  }
  EXPECT_EQ(ph_misses, s.misses);
  EXPECT_EQ(ph_lat, s.miss_latency_total);
  EXPECT_EQ(ph_hits, s.presend_hits);
  EXPECT_EQ(ph_waste, s.presend_waste);

  // Reader-side attribution recomputed from the raw stream.
  const auto att = trace::attribute(cap.data);
  EXPECT_EQ(att.all.count, s.misses);
  EXPECT_EQ(att.all.total, static_cast<std::uint64_t>(s.miss_latency_total));
  for (std::size_t c = 0; c < trace::kNumMissClasses; ++c) {
    SCOPED_TRACE("class " + std::to_string(c));
    EXPECT_EQ(att.by_class[c].count, s.miss_by_class[c]);
    const auto& m = att.by_class[c];
    EXPECT_EQ(m.fault + m.transfer + m.occupancy + m.queue, m.total);
  }
  EXPECT_EQ(att.all.fault + att.all.transfer + att.all.occupancy +
                att.all.queue,
            att.all.total);

  // Phase buckets of the attribution partition the aggregate too.
  trace::MissCosts phase_sum;
  std::uint64_t att_ph_hits = 0, att_ph_waste = 0, att_ph_blocks = 0;
  for (const auto& p : att.phases) {
    phase_sum.add(p.all);
    att_ph_hits += p.presend_hits;
    att_ph_waste += p.presend_waste;
    att_ph_blocks += p.presend_blocks;
    trace::MissCosts cls_sum;
    for (const auto& m : p.by_class) cls_sum.add(m);
    EXPECT_EQ(cls_sum.count, p.all.count);
    EXPECT_EQ(cls_sum.total, p.all.total);
  }
  EXPECT_EQ(phase_sum.count, att.all.count);
  EXPECT_EQ(phase_sum.total, att.all.total);
  EXPECT_EQ(att_ph_hits, s.presend_hits);
  EXPECT_EQ(att_ph_waste, s.presend_waste);
  EXPECT_EQ(att_ph_blocks, s.presend_installs);
}

using FuzzParam = std::tuple<std::uint64_t, ProtocolKind>;

class TracePropertyFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(TracePropertyFuzz, ReconcilesWithProtocolCounters) {
  const auto [seed, kind] = GetParam();
  const auto prog = check::generate(seed);
  if (kind == ProtocolKind::kWriteUpdate &&
      !check::supports_write_update(prog))
    GTEST_SKIP() << "program not meaningful under write-update";
  check::TraceCapture cap;
  const auto res = check::run_program(prog, kind, net::NetConfig{}, &cap);
  ASSERT_EQ(res.read_mismatches, 0u);
  ASSERT_EQ(res.oracle_violations, 0u) << res.first_violation;
  expect_reconciles(cap);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TracePropertyFuzz,
    ::testing::Combine(
        ::testing::Values(1ull, 2ull, 5ull, 11ull, 13ull, 17ull, 29ull),
        ::testing::Values(ProtocolKind::kStache, ProtocolKind::kPredictive,
                          ProtocolKind::kPredictiveAnticipate,
                          ProtocolKind::kCCached)),
    [](const ::testing::TestParamInfo<FuzzParam>& info) -> std::string {
      const std::uint64_t seed = std::get<0>(info.param);
      std::string k;
      switch (std::get<1>(info.param)) {
        case ProtocolKind::kStache: k = "Stache"; break;
        case ProtocolKind::kPredictive: k = "Predictive"; break;
        case ProtocolKind::kPredictiveAnticipate: k = "Anticipate"; break;
        case ProtocolKind::kWriteUpdate: k = "WriteUpdate"; break;
        case ProtocolKind::kCCached: k = "CCached"; break;
      }
      return "Seed" + std::to_string(seed) + k;
    });

// The micro workload under every protocol (write-update included — its
// write-upgrade-in-place path must charge no remote_wait and emit no miss
// window, or the identity breaks).
TEST(TraceProperty, MicroWorkloadAllProtocols) {
  for (const auto kind :
       {ProtocolKind::kStache, ProtocolKind::kPredictive,
        ProtocolKind::kPredictiveAnticipate, ProtocolKind::kWriteUpdate}) {
    SCOPED_TRACE(runtime::protocol_kind_name(kind));
    const auto r = testutil::run_micro_workload(
        kind, /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/6,
        sim::default_backend(), /*block_size=*/32, /*traced=*/true);
    ASSERT_TRUE(r.traced);
    check::TraceCapture cap;
    cap.summary = r.trace_summary;
    cap.data = r.trace_data;
    cap.counters = r.counters;
    expect_reconciles(cap, kind == ProtocolKind::kWriteUpdate);
  }
}

// The three paper applications at small scale: report-surfaced attribution
// must reconcile with the report's own protocol counters.
void expect_report_reconciles(const stats::Report& r) {
  ASSERT_TRUE(r.traced);
  EXPECT_EQ(r.trace_dropped, 0u);
  EXPECT_GT(r.trace_events, 0u);
  EXPECT_EQ(r.miss_cold + r.miss_invalidation + r.miss_presend_waste +
                r.miss_merge,
            r.faults + r.cc_flushes);
  // Every presend-sent block is delivered, so sent == received == resolved.
  EXPECT_EQ(r.presend_hits + r.presend_waste + r.presend_unused,
            r.presend_blocks);
}

TEST(TraceProperty, BarnesSmallReconciles) {
  apps::BarnesParams params;
  params.bodies = 128;
  params.steps = 2;
  auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.trace.enabled = true;
  const auto r =
      apps::run_barnes(params, m, ProtocolKind::kPredictive, true);
  expect_report_reconciles(r.report);
}

TEST(TraceProperty, WaterSmallReconciles) {
  apps::WaterParams params;
  params.molecules = 64;
  params.steps = 2;
  auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.trace.enabled = true;
  const auto r = apps::run_water(params, m, ProtocolKind::kPredictive, true);
  expect_report_reconciles(r.report);
}

TEST(TraceProperty, AdaptiveSmallReconciles) {
  apps::AdaptiveParams params;
  params.n = 32;
  params.iters = 6;
  auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.trace.enabled = true;
  const auto r =
      apps::run_adaptive(params, m, ProtocolKind::kPredictive, true);
  expect_report_reconciles(r.report);
}

TEST(TraceProperty, OceanSmallReconciles) {
  apps::OceanParams params;
  params.n = 16;
  params.iters = 4;
  auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.trace.enabled = true;
  for (const auto kind : {ProtocolKind::kPredictive, ProtocolKind::kCCached}) {
    SCOPED_TRACE(runtime::protocol_kind_name(kind));
    const auto r = apps::run_ocean(params, m, kind,
                                   kind == ProtocolKind::kPredictive);
    expect_report_reconciles(r.report);
    // No commutative regions: nothing may classify as a merge miss.
    EXPECT_EQ(r.report.miss_merge, 0u);
    EXPECT_EQ(r.report.cc_flushes, 0u);
  }
}

TEST(TraceProperty, RankerMergeTrafficReconciles) {
  apps::RankerParams params;
  params.vertices = 96;
  params.iters = 4;
  auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.trace.enabled = true;
  const auto cc = apps::run_ranker(params, m, ProtocolKind::kCCached, false);
  expect_report_reconciles(cc.report);
  // The push phase is all merge traffic: flush round trips classify as
  // merge misses, and there were real flushes carrying real entries.
  EXPECT_GT(cc.report.cc_flushes, 0u);
  EXPECT_GT(cc.report.cc_entries, 0u);
  EXPECT_GE(cc.report.miss_merge, cc.report.cc_flushes);
  // Under Stache the same pushes are remote rmw faults on commutative
  // blocks — still attributed to the merge class, with no flushes.
  const auto st = apps::run_ranker(params, m, ProtocolKind::kStache, false);
  expect_report_reconciles(st.report);
  EXPECT_GT(st.report.miss_merge, 0u);
  EXPECT_EQ(st.report.cc_flushes, 0u);
}

}  // namespace
