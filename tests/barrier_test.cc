// BarrierManager: barriers, reductions, double-buffered results, and the
// load-imbalance -> synchronization-time effect the paper leans on (§5.1).
#include <gtest/gtest.h>

#include "runtime/system.h"

namespace presto::runtime {
namespace {

MachineConfig tiny(int nodes) { return MachineConfig::cm5_blizzard(nodes, 32); }

TEST(Barrier, ReleasesAllAtMaxArrivalPlusLatency) {
  System sys(tiny(4), ProtocolKind::kStache);
  const sim::Time latency = sys.config().barrier_latency;
  sys.run([&](NodeCtx& c) {
    // Node i arrives at roughly i * 100us.
    c.charge(sim::microseconds(100) * c.id());
    c.barrier();
    const sim::Time release = c.proc().now();
    EXPECT_EQ(release, sim::microseconds(300) + latency);
  });
}

TEST(Barrier, WaitTimeReflectsImbalance) {
  System sys(tiny(4), ProtocolKind::kStache);
  sys.run([&](NodeCtx& c) {
    c.charge(sim::microseconds(100) * c.id());
    c.barrier();
  });
  // The earliest arriver waited the longest.
  EXPECT_GT(sys.recorder().node(0).barrier_wait,
            sys.recorder().node(2).barrier_wait);
  EXPECT_GT(sys.recorder().node(2).barrier_wait,
            sys.recorder().node(3).barrier_wait);
}

TEST(Barrier, ManySequentialBarriersStayAligned) {
  System sys(tiny(8), ProtocolKind::kStache);
  sys.run([&](NodeCtx& c) {
    for (int r = 0; r < 50; ++r) {
      c.charge(1000 * ((c.id() + r) % 3));
      c.barrier();
    }
  });
  EXPECT_EQ(sys.barrier_manager().barriers_completed(), 50u);
}

TEST(Reduce, SumAndMax) {
  System sys(tiny(5), ProtocolKind::kStache);
  sys.run([&](NodeCtx& c) {
    const double s = c.reduce_sum(static_cast<double>(c.id() + 1));
    EXPECT_DOUBLE_EQ(s, 15.0);  // 1+2+3+4+5
    const double m = c.reduce_max(static_cast<double>((c.id() * 7) % 5));
    EXPECT_DOUBLE_EQ(m, 4.0);
  });
}

TEST(Reduce, VectorSumCombinesElementwise) {
  System sys(tiny(4), ProtocolKind::kStache);
  sys.run([&](NodeCtx& c) {
    std::vector<double> v = {static_cast<double>(c.id()), 1.0,
                             static_cast<double>(-c.id())};
    c.reduce_vec_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 6.0);   // 0+1+2+3
    EXPECT_DOUBLE_EQ(v[1], 4.0);   // 1*4
    EXPECT_DOUBLE_EQ(v[2], -6.0);
  });
}

TEST(Reduce, BackToBackCollectivesDoNotClobberResults) {
  // Regression guard for the double-buffered result: a fast node may start
  // the next collective before a slow node consumed the previous result.
  System sys(tiny(3), ProtocolKind::kStache);
  sys.run([&](NodeCtx& c) {
    for (int r = 0; r < 20; ++r) {
      const double expect = 3.0 * r;
      const double got = c.reduce_sum(static_cast<double>(r));
      EXPECT_DOUBLE_EQ(got, expect) << "round " << r << " node " << c.id();
      // Deliberately skew when nodes re-enter the next collective.
      c.charge(100 * ((c.id() * 13 + r) % 7));
    }
  });
}

TEST(Reduce, VectorThenScalarInterleave) {
  System sys(tiny(3), ProtocolKind::kStache);
  sys.run([&](NodeCtx& c) {
    std::vector<double> v(8, 1.0);
    c.reduce_vec_sum(v);
    EXPECT_DOUBLE_EQ(v[7], 3.0);
    EXPECT_DOUBLE_EQ(c.reduce_sum(2.0), 6.0);
    c.reduce_vec_sum(v);  // v now all 3.0 -> 9.0
    EXPECT_DOUBLE_EQ(v[0], 9.0);
  });
}

TEST(Reduce, PayloadSizeAddsCombineLatency) {
  System small(tiny(2), ProtocolKind::kStache);
  sim::Time t_small = 0, t_big = 0;
  small.run([&](NodeCtx& c) {
    std::vector<double> v(2, 1.0);
    c.reduce_vec_sum(v);
    if (c.id() == 0) t_small = c.proc().now();
  });
  System big(tiny(2), ProtocolKind::kStache);
  big.run([&](NodeCtx& c) {
    std::vector<double> v(2048, 1.0);
    c.reduce_vec_sum(v);
    if (c.id() == 0) t_big = c.proc().now();
  });
  EXPECT_GT(t_big, t_small);
}

}  // namespace
}  // namespace presto::runtime
