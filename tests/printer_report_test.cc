// Printer round-trip property (parse → print → parse → print reaches a
// fixpoint) and run-report formatting.
#include <gtest/gtest.h>

#include "cstar/lexer.h"
#include "cstar/parser.h"
#include "cstar/printer.h"
#include "cstar/samples.h"
#include "stats/report.h"

namespace presto {
namespace {

std::string reprint(const std::string& source) {
  cstar::Lexer lex(source);
  cstar::Parser parser(lex.tokenize());
  auto prog = parser.parse();
  EXPECT_TRUE(parser.errors().empty())
      << source.substr(0, 60) << "...: " << parser.errors().front();
  return cstar::print_program(*prog);
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, PrintedProgramReparsesToSameText) {
  const std::string once = reprint(GetParam());
  const std::string twice = reprint(once);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, PrinterRoundTrip,
    ::testing::Values(cstar::samples::kStencil,
                      cstar::samples::kUnstructuredMesh,
                      cstar::samples::kBarnesMain,
                      // Operator and control-flow stress.
                      "void main() { x = -a * (b + c) / d % e; "
                      "if (!(x <= 3) && y != 0 || z) { x += 1; } else x -= 2; }",
                      "aggregate int V[];\nV v;\n"
                      "parallel void f(parallel V x) { x(#0) = x(#0 + 1); }\n"
                      "void main() { while (1 < 2) { f(v); return; } }"));

TEST(Report, TableContainsAllVersionsAndColumns) {
  stats::Report a;
  a.label = "alpha";
  a.exec = sim::seconds(2);
  a.remote_wait = sim::seconds(1);
  a.compute_synch = sim::seconds(1);
  a.local_hit_pct = 98.5;
  stats::Report b;
  b.label = "beta";
  b.exec = sim::seconds(1);
  b.compute_synch = sim::seconds(1);
  const std::string t = stats::Report::table({a, b});
  EXPECT_NE(t.find("alpha"), std::string::npos);
  EXPECT_NE(t.find("beta"), std::string::npos);
  EXPECT_NE(t.find("rel. time"), std::string::npos);
  EXPECT_NE(t.find("2.00"), std::string::npos);  // alpha is 2x the fastest
  EXPECT_NE(t.find("98.50"), std::string::npos);
}

TEST(Report, BarsNormalizeToFastest) {
  stats::Report fast;
  fast.label = "fast";
  fast.exec = sim::seconds(1);
  fast.compute_synch = sim::seconds(1);
  stats::Report slow;
  slow.label = "slow";
  slow.exec = sim::seconds(3);
  slow.remote_wait = sim::seconds(2);
  slow.compute_synch = sim::seconds(1);
  const std::string s = stats::Report::bars({fast, slow});
  EXPECT_NE(s.find("(1.00)"), std::string::npos);
  EXPECT_NE(s.find("(3.00)"), std::string::npos);
  EXPECT_NE(s.find("remote data wait"), std::string::npos);
  EXPECT_NE(s.find("predictive protocol"), std::string::npos);
}

TEST(Report, EmptyAndZeroExecAreSafe) {
  EXPECT_NO_FATAL_FAILURE(stats::Report::table({}));
  stats::Report z;
  z.label = "zero";
  EXPECT_NO_FATAL_FAILURE(stats::Report::bars({z}));
}

}  // namespace
}  // namespace presto
