// Golden simulated-time statistics, pinned from the seed implementation.
//
// These values freeze the *simulated* behavior of a small Stache run and a
// small Predictive run: message counts, bytes on the wire, fault counts,
// remote wait, presend time, execution time, and a hash of final memory
// contents + access tags. Host-performance rewrites (event queue, message
// transport, access fast path, schedule layout) must keep every number
// bit-identical; any drift here means simulated results changed.
#include <gtest/gtest.h>

#include "golden_workload.h"

using namespace presto;

namespace {

struct Golden {
  std::uint64_t msgs, bytes, events;
  sim::Time exec;
  std::uint64_t shared_reads, shared_writes, read_faults, write_faults,
      local_faults, msgs_sent, bytes_sent;
  sim::Time remote_wait, presend, barrier_wait;
  std::uint64_t presend_blocks_sent, presend_msgs, schedule_entries;
  std::uint64_t mem_hash;
};

void check_against(const testutil::WorkloadResult& r, const Golden& g) {
  std::uint64_t shared_reads = 0, shared_writes = 0, read_faults = 0,
                write_faults = 0, local_faults = 0, msgs_sent = 0,
                bytes_sent = 0, presend_blocks = 0, presend_msgs = 0,
                schedule_entries = 0;
  sim::Time remote_wait = 0, presend = 0, barrier_wait = 0;
  for (const auto& c : r.counters) {
    shared_reads += c.shared_reads;
    shared_writes += c.shared_writes;
    read_faults += c.read_faults;
    write_faults += c.write_faults;
    local_faults += c.local_faults;
    msgs_sent += c.msgs_sent;
    bytes_sent += c.bytes_sent;
    presend_blocks += c.presend_blocks_sent;
    presend_msgs += c.presend_msgs;
    schedule_entries += c.schedule_entries;
    remote_wait += c.remote_wait;
    presend += c.presend;
    barrier_wait += c.barrier_wait;
  }
  EXPECT_EQ(r.msgs, g.msgs);
  EXPECT_EQ(r.bytes, g.bytes);
  EXPECT_EQ(r.events, g.events);
  EXPECT_EQ(r.exec, g.exec);
  EXPECT_EQ(shared_reads, g.shared_reads);
  EXPECT_EQ(shared_writes, g.shared_writes);
  EXPECT_EQ(read_faults, g.read_faults);
  EXPECT_EQ(write_faults, g.write_faults);
  EXPECT_EQ(local_faults, g.local_faults);
  EXPECT_EQ(msgs_sent, g.msgs_sent);
  EXPECT_EQ(bytes_sent, g.bytes_sent);
  EXPECT_EQ(remote_wait, g.remote_wait);
  EXPECT_EQ(presend, g.presend);
  EXPECT_EQ(barrier_wait, g.barrier_wait);
  EXPECT_EQ(presend_blocks, g.presend_blocks_sent);
  EXPECT_EQ(presend_msgs, g.presend_msgs);
  EXPECT_EQ(schedule_entries, g.schedule_entries);
  EXPECT_EQ(r.mem_hash, g.mem_hash);

  // On mismatch, print the full actual row so the golden can be inspected.
  if (::testing::Test::HasFailure()) {
    std::printf(
        "ACTUAL: {%lluull, %lluull, %lluull, %lld, %lluull, %lluull, "
        "%lluull, %lluull, %lluull, %lluull, %lluull, %lld, %lld, %lld, "
        "%lluull, %lluull, %lluull, %lluull},\n",
        (unsigned long long)r.msgs, (unsigned long long)r.bytes,
        (unsigned long long)r.events, (long long)r.exec,
        (unsigned long long)shared_reads, (unsigned long long)shared_writes,
        (unsigned long long)read_faults, (unsigned long long)write_faults,
        (unsigned long long)local_faults, (unsigned long long)msgs_sent,
        (unsigned long long)bytes_sent, (long long)remote_wait,
        (long long)presend, (long long)barrier_wait,
        (unsigned long long)presend_blocks, (unsigned long long)presend_msgs,
        (unsigned long long)schedule_entries,
        (unsigned long long)r.mem_hash);
  }
}

// Values captured from the seed implementation (std::function event queue,
// closure-based message delivery, std::map schedules) before the host-perf
// rewrite; both runs end with the same memory/tag hash by construction.
TEST(GoldenStats, StacheSmallRun) {
  const Golden g = {6903ull,   196368ull, 16749ull, 249736440, 2496ull,
                    1488ull,   963ull,    1314ull,  471ull,    6903ull,
                    196368ull, 331391500, 0,        667300220, 0ull,
                    0ull,      0ull,      14559042160599073619ull};
  check_against(testutil::run_micro_workload(runtime::ProtocolKind::kStache),
                g);
}

TEST(GoldenStats, PredictiveSmallRun) {
  const Golden g = {7022ull,   201984ull, 18534ull, 244331520, 2496ull,
                    1488ull,   564ull,    1332ull,  372ull,    7022ull,
                    201984ull, 281955600, 31760800, 669356240, 340ull,
                    396ull,    330ull,    14559042160599073619ull};
  check_against(
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive), g);
}

}  // namespace
