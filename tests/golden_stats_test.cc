// Golden simulated-time statistics, pinned from the seed implementation.
//
// These values freeze the *simulated* behavior of a small Stache run and a
// small Predictive run: message counts, bytes on the wire, fault counts,
// remote wait, presend time, execution time, and a hash of final memory
// contents + access tags. Host-performance rewrites (event queue, message
// transport, access fast path, schedule layout) must keep every number
// bit-identical; any drift here means simulated results changed.
#include <gtest/gtest.h>

#include "apps/ocean/ocean.h"
#include "apps/ranker/ranker.h"
#include "golden_workload.h"

using namespace presto;

namespace {

struct Golden {
  std::uint64_t msgs, bytes, events;
  sim::Time exec;
  std::uint64_t shared_reads, shared_writes, read_faults, write_faults,
      local_faults, msgs_sent, bytes_sent;
  sim::Time remote_wait, presend, barrier_wait;
  std::uint64_t presend_blocks_sent, presend_msgs, schedule_entries;
  std::uint64_t mem_hash;
};

void check_against(const testutil::WorkloadResult& r, const Golden& g) {
  std::uint64_t shared_reads = 0, shared_writes = 0, read_faults = 0,
                write_faults = 0, local_faults = 0, msgs_sent = 0,
                bytes_sent = 0, presend_blocks = 0, presend_msgs = 0,
                schedule_entries = 0;
  sim::Time remote_wait = 0, presend = 0, barrier_wait = 0;
  for (const auto& c : r.counters) {
    shared_reads += c.shared_reads;
    shared_writes += c.shared_writes;
    read_faults += c.read_faults;
    write_faults += c.write_faults;
    local_faults += c.local_faults;
    msgs_sent += c.msgs_sent;
    bytes_sent += c.bytes_sent;
    presend_blocks += c.presend_blocks_sent;
    presend_msgs += c.presend_msgs;
    schedule_entries += c.schedule_entries;
    remote_wait += c.remote_wait;
    presend += c.presend;
    barrier_wait += c.barrier_wait;
  }
  EXPECT_EQ(r.msgs, g.msgs);
  EXPECT_EQ(r.bytes, g.bytes);
  EXPECT_EQ(r.events, g.events);
  EXPECT_EQ(r.exec, g.exec);
  EXPECT_EQ(shared_reads, g.shared_reads);
  EXPECT_EQ(shared_writes, g.shared_writes);
  EXPECT_EQ(read_faults, g.read_faults);
  EXPECT_EQ(write_faults, g.write_faults);
  EXPECT_EQ(local_faults, g.local_faults);
  EXPECT_EQ(msgs_sent, g.msgs_sent);
  EXPECT_EQ(bytes_sent, g.bytes_sent);
  EXPECT_EQ(remote_wait, g.remote_wait);
  EXPECT_EQ(presend, g.presend);
  EXPECT_EQ(barrier_wait, g.barrier_wait);
  EXPECT_EQ(presend_blocks, g.presend_blocks_sent);
  EXPECT_EQ(presend_msgs, g.presend_msgs);
  EXPECT_EQ(schedule_entries, g.schedule_entries);
  EXPECT_EQ(r.mem_hash, g.mem_hash);

  // On mismatch, print the full actual row so the golden can be inspected.
  if (::testing::Test::HasFailure()) {
    std::printf(
        "ACTUAL: {%lluull, %lluull, %lluull, %lld, %lluull, %lluull, "
        "%lluull, %lluull, %lluull, %lluull, %lluull, %lld, %lld, %lld, "
        "%lluull, %lluull, %lluull, %lluull},\n",
        (unsigned long long)r.msgs, (unsigned long long)r.bytes,
        (unsigned long long)r.events, (long long)r.exec,
        (unsigned long long)shared_reads, (unsigned long long)shared_writes,
        (unsigned long long)read_faults, (unsigned long long)write_faults,
        (unsigned long long)local_faults, (unsigned long long)msgs_sent,
        (unsigned long long)bytes_sent, (long long)remote_wait,
        (long long)presend, (long long)barrier_wait,
        (unsigned long long)presend_blocks, (unsigned long long)presend_msgs,
        (unsigned long long)schedule_entries,
        (unsigned long long)r.mem_hash);
  }
}

// Values captured from the seed implementation (std::function event queue,
// closure-based message delivery, std::map schedules) before the host-perf
// rewrite; both runs end with the same memory/tag hash by construction.
TEST(GoldenStats, StacheSmallRun) {
  const Golden g = {6903ull,   196368ull, 16749ull, 249736440, 2496ull,
                    1488ull,   963ull,    1314ull,  471ull,    6903ull,
                    196368ull, 331391500, 0,        667300220, 0ull,
                    0ull,      0ull,      14559042160599073619ull};
  check_against(testutil::run_micro_workload(runtime::ProtocolKind::kStache),
                g);
}

TEST(GoldenStats, PredictiveSmallRun) {
  const Golden g = {7022ull,   201984ull, 18534ull, 244331520, 2496ull,
                    1488ull,   564ull,    1332ull,  372ull,    7022ull,
                    201984ull, 281955600, 31760800, 669356240, 340ull,
                    396ull,    330ull,    14559042160599073619ull};
  check_against(
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive), g);
}

// Compact digest pins across every protocol × coherence block size. These
// freeze the simulated behavior of the directory, sharer-set, schedule and
// channel metadata across the layouts the flat rewrite replaces: any layout
// change that perturbs message counts, wire bytes, event counts, simulated
// time, fault counts, or final memory/tag contents trips here.
struct MatrixGolden {
  runtime::ProtocolKind kind;
  std::uint32_t block_size;
  std::uint64_t msgs, bytes, events;
  sim::Time exec;
  std::uint64_t faults;  // read + write faults summed over nodes
  std::uint64_t mem_hash;
};

const char* kind_id(runtime::ProtocolKind k) {
  switch (k) {
    case runtime::ProtocolKind::kStache: return "kStache";
    case runtime::ProtocolKind::kPredictive: return "kPredictive";
    case runtime::ProtocolKind::kPredictiveAnticipate:
      return "kPredictiveAnticipate";
    case runtime::ProtocolKind::kWriteUpdate: return "kWriteUpdate";
    case runtime::ProtocolKind::kCCached: return "kCCached";
  }
  return "?";
}

TEST(GoldenStats, ProtocolBlockSizeMatrix) {
  using runtime::ProtocolKind;
  const MatrixGolden table[] = {
      {ProtocolKind::kStache, 32, 6903ull, 196368ull, 16749ull, 249736440,
       2277ull, 14559042160599073619ull},
      {ProtocolKind::kStache, 128, 1850ull, 121376ull, 4607ull, 72437540,
       611ull, 9683470072194729308ull},
      {ProtocolKind::kStache, 1024, 435ull, 166704ull, 1174ull, 26442760,
       141ull, 5269624061003381707ull},
      {ProtocolKind::kPredictive, 32, 7022ull, 201984ull, 18534ull, 244331520,
       1896ull, 14559042160599073619ull},
      {ProtocolKind::kPredictive, 128, 1869ull, 125008ull, 5103ull, 70490520,
       500ull, 9683470072194729308ull},
      {ProtocolKind::kPredictive, 1024, 434ull, 174880ull, 1313ull, 24603360,
       84ull, 5269624061003381707ull},
      {ProtocolKind::kPredictiveAnticipate, 32, 6962ull, 201024ull, 20108ull,
       237321660, 1662ull, 14559042160599073619ull},
      {ProtocolKind::kPredictiveAnticipate, 128, 1854ull, 124768ull, 5463ull,
       68646520, 443ull, 9683470072194729308ull},
      {ProtocolKind::kPredictiveAnticipate, 1024, 434ull, 174880ull, 1313ull,
       24603360, 84ull, 5269624061003381707ull},
      {ProtocolKind::kWriteUpdate, 32, 6882ull, 230208ull, 17897ull,
       105085720, 957ull, 2800090443976628580ull},
      {ProtocolKind::kWriteUpdate, 128, 1788ull, 155328ull, 4534ull, 29901120,
       255ull, 17181031399765319607ull},
      {ProtocolKind::kWriteUpdate, 1024, 318ull, 192480ull, 840ull, 11759960,
       45ull, 15502453886649105430ull},
      // ccached on a workload with no commutative regions must reproduce the
      // Stache rows above bit-for-bit (the fallback-path identity).
      {ProtocolKind::kCCached, 32, 6903ull, 196368ull, 16749ull, 249736440,
       2277ull, 14559042160599073619ull},
      {ProtocolKind::kCCached, 128, 1850ull, 121376ull, 4607ull, 72437540,
       611ull, 9683470072194729308ull},
      {ProtocolKind::kCCached, 1024, 435ull, 166704ull, 1174ull, 26442760,
       141ull, 5269624061003381707ull},
  };
  for (const auto& g : table) {
    SCOPED_TRACE(std::string(runtime::protocol_kind_name(g.kind)) + " bsz=" +
                 std::to_string(g.block_size));
    const auto r = testutil::run_micro_workload(
        g.kind, /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/6,
        sim::default_backend(), g.block_size);
    std::uint64_t faults = 0;
    for (const auto& c : r.counters) faults += c.read_faults + c.write_faults;
    EXPECT_EQ(r.msgs, g.msgs);
    EXPECT_EQ(r.bytes, g.bytes);
    EXPECT_EQ(r.events, g.events);
    EXPECT_EQ(r.exec, g.exec);
    EXPECT_EQ(faults, g.faults);
    EXPECT_EQ(r.mem_hash, g.mem_hash);
    if (::testing::Test::HasFailure()) {
      std::printf("ACTUAL: {ProtocolKind::%s, %u, %lluull, %lluull, %lluull, "
                  "%lld, %lluull, %lluull},\n",
                  kind_id(g.kind), g.block_size,
                  (unsigned long long)r.msgs, (unsigned long long)r.bytes,
                  (unsigned long long)r.events, (long long)r.exec,
                  (unsigned long long)faults, (unsigned long long)r.mem_hash);
    }
  }
}

// Golden pins for the commutative-update path itself: the cc micro workload
// under ccached across the block-size sweep. Freezes the merge machinery's
// simulated behavior — flush counts, log-entry counts, merge quiescing
// traffic, execution time, and the final merged image.
struct CcGolden {
  std::uint32_t block_size;
  std::uint64_t msgs, bytes, events;
  sim::Time exec;
  std::uint64_t faults, cc_flushes, cc_entries;
  std::uint64_t mem_hash;
};

TEST(GoldenStats, CCachedReductionMatrix) {
  const CcGolden table[] = {
      {32, 9060ull, 218976ull, 27590ull, 106303980, 261ull, 4104ull, 4104ull,
       610398598696613665ull},
      {128, 8256ull, 271488ull, 26707ull, 103596880, 576ull, 3072ull, 4104ull,
       13582391546771832539ull},
      {1024, 1824ull, 389760ull, 9840ull, 32277880, 288ull, 384ull, 4104ull,
       2918967825027301891ull},
  };
  for (const auto& g : table) {
    SCOPED_TRACE("bsz=" + std::to_string(g.block_size));
    const auto r = testutil::run_cc_micro_workload(
        runtime::ProtocolKind::kCCached, g.block_size);
    std::uint64_t faults = 0;
    for (const auto& c : r.counters) faults += c.read_faults + c.write_faults;
    EXPECT_EQ(r.msgs, g.msgs);
    EXPECT_EQ(r.bytes, g.bytes);
    EXPECT_EQ(r.events, g.events);
    EXPECT_EQ(r.exec, g.exec);
    EXPECT_EQ(faults, g.faults);
    EXPECT_EQ(r.cc_flushes, g.cc_flushes);
    EXPECT_EQ(r.cc_entries, g.cc_entries);
    EXPECT_EQ(r.mem_hash, g.mem_hash);
    if (::testing::Test::HasFailure()) {
      std::printf("ACTUAL: {%u, %lluull, %lluull, %lluull, %lld, %lluull, "
                  "%lluull, %lluull, %lluull},\n",
                  g.block_size, (unsigned long long)r.msgs,
                  (unsigned long long)r.bytes, (unsigned long long)r.events,
                  (long long)r.exec, (unsigned long long)faults,
                  (unsigned long long)r.cc_flushes,
                  (unsigned long long)r.cc_entries,
                  (unsigned long long)r.mem_hash);
    }
  }
}

// Application-level pins: ocean and ranker under every protocol. The
// checksum is pinned once (all five protocols must agree exactly — the
// cross-protocol assertion lives in apps_test.cc); the per-protocol rows
// freeze each protocol's simulated traffic and timing on the new workloads.
struct AppGolden {
  runtime::ProtocolKind kind;
  sim::Time exec;
  std::uint64_t msgs, bytes, faults;
};

template <typename RunFn>
void check_app_pins(const AppGolden (&table)[5], double golden_checksum,
                    RunFn run) {
  for (const auto& g : table) {
    SCOPED_TRACE(runtime::protocol_kind_name(g.kind));
    const auto r = run(g.kind);
    EXPECT_EQ(r.report.exec, g.exec);
    EXPECT_EQ(r.report.msgs, g.msgs);
    EXPECT_EQ(r.report.bytes, g.bytes);
    EXPECT_EQ(r.report.faults, g.faults);
    EXPECT_DOUBLE_EQ(r.checksum, golden_checksum);
    if (::testing::Test::HasFailure()) {
      std::printf("ACTUAL: {ProtocolKind::%s, %lld, %lluull, %lluull, "
                  "%lluull},  // checksum %.17g\n",
                  kind_id(g.kind), (long long)r.report.exec,
                  (unsigned long long)r.report.msgs,
                  (unsigned long long)r.report.bytes,
                  (unsigned long long)r.report.faults, r.checksum);
    }
  }
}

TEST(GoldenStats, OceanProtocolPins) {
  using runtime::ProtocolKind;
  const AppGolden table[5] = {
      {ProtocolKind::kStache, 7025760, 444ull, 10176ull, 180ull},
      {ProtocolKind::kPredictive, 3304760, 252ull, 7104ull, 48ull},
      {ProtocolKind::kPredictiveAnticipate, 3304760, 252ull, 7104ull, 48ull},
      {ProtocolKind::kWriteUpdate, 2234880, 224ull, 9984ull, 24ull},
      // No commutative regions: identical to the Stache row by construction.
      {ProtocolKind::kCCached, 7025760, 444ull, 10176ull, 180ull},
  };
  apps::OceanParams params;
  params.n = 16;
  params.iters = 4;
  const auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  check_app_pins(table, 1674.0921020507812, [&](ProtocolKind kind) {
    const bool directives = kind == ProtocolKind::kPredictive ||
                            kind == ProtocolKind::kPredictiveAnticipate;
    return apps::run_ocean(params, m, kind, directives);
  });
}

TEST(GoldenStats, RankerProtocolPins) {
  using runtime::ProtocolKind;
  // The ranker rows are the protocol's thesis in numbers: the rmw push storm
  // costs Stache 1196 faults / 55.2ms; privatized logs + merges bring
  // ccached to 0 faults / 8.2ms. (Write-update's row is all-private
  // accumulation + reduce — no shared push traffic at all.)
  const AppGolden table[5] = {
      {ProtocolKind::kStache, 55205420, 3758ull, 111712ull, 1196ull},
      {ProtocolKind::kPredictive, 52793200, 3582ull, 109088ull, 1106ull},
      {ProtocolKind::kPredictiveAnticipate, 52793200, 3582ull, 109088ull,
       1106ull},
      {ProtocolKind::kWriteUpdate, 291680, 0ull, 0ull, 0ull},
      {ProtocolKind::kCCached, 8201640, 676ull, 22784ull, 0ull},
  };
  apps::RankerParams params;
  params.vertices = 96;
  params.iters = 4;
  const auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  check_app_pins(table, 23224662.0, [&](ProtocolKind kind) {
    const bool directives = kind == ProtocolKind::kPredictive ||
                            kind == ProtocolKind::kPredictiveAnticipate;
    return apps::run_ranker(params, m, kind, directives);
  });
}

}  // namespace
