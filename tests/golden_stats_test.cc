// Golden simulated-time statistics, pinned from the seed implementation.
//
// These values freeze the *simulated* behavior of a small Stache run and a
// small Predictive run: message counts, bytes on the wire, fault counts,
// remote wait, presend time, execution time, and a hash of final memory
// contents + access tags. Host-performance rewrites (event queue, message
// transport, access fast path, schedule layout) must keep every number
// bit-identical; any drift here means simulated results changed.
#include <gtest/gtest.h>

#include "golden_workload.h"

using namespace presto;

namespace {

struct Golden {
  std::uint64_t msgs, bytes, events;
  sim::Time exec;
  std::uint64_t shared_reads, shared_writes, read_faults, write_faults,
      local_faults, msgs_sent, bytes_sent;
  sim::Time remote_wait, presend, barrier_wait;
  std::uint64_t presend_blocks_sent, presend_msgs, schedule_entries;
  std::uint64_t mem_hash;
};

void check_against(const testutil::WorkloadResult& r, const Golden& g) {
  std::uint64_t shared_reads = 0, shared_writes = 0, read_faults = 0,
                write_faults = 0, local_faults = 0, msgs_sent = 0,
                bytes_sent = 0, presend_blocks = 0, presend_msgs = 0,
                schedule_entries = 0;
  sim::Time remote_wait = 0, presend = 0, barrier_wait = 0;
  for (const auto& c : r.counters) {
    shared_reads += c.shared_reads;
    shared_writes += c.shared_writes;
    read_faults += c.read_faults;
    write_faults += c.write_faults;
    local_faults += c.local_faults;
    msgs_sent += c.msgs_sent;
    bytes_sent += c.bytes_sent;
    presend_blocks += c.presend_blocks_sent;
    presend_msgs += c.presend_msgs;
    schedule_entries += c.schedule_entries;
    remote_wait += c.remote_wait;
    presend += c.presend;
    barrier_wait += c.barrier_wait;
  }
  EXPECT_EQ(r.msgs, g.msgs);
  EXPECT_EQ(r.bytes, g.bytes);
  EXPECT_EQ(r.events, g.events);
  EXPECT_EQ(r.exec, g.exec);
  EXPECT_EQ(shared_reads, g.shared_reads);
  EXPECT_EQ(shared_writes, g.shared_writes);
  EXPECT_EQ(read_faults, g.read_faults);
  EXPECT_EQ(write_faults, g.write_faults);
  EXPECT_EQ(local_faults, g.local_faults);
  EXPECT_EQ(msgs_sent, g.msgs_sent);
  EXPECT_EQ(bytes_sent, g.bytes_sent);
  EXPECT_EQ(remote_wait, g.remote_wait);
  EXPECT_EQ(presend, g.presend);
  EXPECT_EQ(barrier_wait, g.barrier_wait);
  EXPECT_EQ(presend_blocks, g.presend_blocks_sent);
  EXPECT_EQ(presend_msgs, g.presend_msgs);
  EXPECT_EQ(schedule_entries, g.schedule_entries);
  EXPECT_EQ(r.mem_hash, g.mem_hash);

  // On mismatch, print the full actual row so the golden can be inspected.
  if (::testing::Test::HasFailure()) {
    std::printf(
        "ACTUAL: {%lluull, %lluull, %lluull, %lld, %lluull, %lluull, "
        "%lluull, %lluull, %lluull, %lluull, %lluull, %lld, %lld, %lld, "
        "%lluull, %lluull, %lluull, %lluull},\n",
        (unsigned long long)r.msgs, (unsigned long long)r.bytes,
        (unsigned long long)r.events, (long long)r.exec,
        (unsigned long long)shared_reads, (unsigned long long)shared_writes,
        (unsigned long long)read_faults, (unsigned long long)write_faults,
        (unsigned long long)local_faults, (unsigned long long)msgs_sent,
        (unsigned long long)bytes_sent, (long long)remote_wait,
        (long long)presend, (long long)barrier_wait,
        (unsigned long long)presend_blocks, (unsigned long long)presend_msgs,
        (unsigned long long)schedule_entries,
        (unsigned long long)r.mem_hash);
  }
}

// Values captured from the seed implementation (std::function event queue,
// closure-based message delivery, std::map schedules) before the host-perf
// rewrite; both runs end with the same memory/tag hash by construction.
TEST(GoldenStats, StacheSmallRun) {
  const Golden g = {6903ull,   196368ull, 16749ull, 249736440, 2496ull,
                    1488ull,   963ull,    1314ull,  471ull,    6903ull,
                    196368ull, 331391500, 0,        667300220, 0ull,
                    0ull,      0ull,      14559042160599073619ull};
  check_against(testutil::run_micro_workload(runtime::ProtocolKind::kStache),
                g);
}

TEST(GoldenStats, PredictiveSmallRun) {
  const Golden g = {7022ull,   201984ull, 18534ull, 244331520, 2496ull,
                    1488ull,   564ull,    1332ull,  372ull,    7022ull,
                    201984ull, 281955600, 31760800, 669356240, 340ull,
                    396ull,    330ull,    14559042160599073619ull};
  check_against(
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive), g);
}

// Compact digest pins across every protocol × coherence block size. These
// freeze the simulated behavior of the directory, sharer-set, schedule and
// channel metadata across the layouts the flat rewrite replaces: any layout
// change that perturbs message counts, wire bytes, event counts, simulated
// time, fault counts, or final memory/tag contents trips here.
struct MatrixGolden {
  runtime::ProtocolKind kind;
  std::uint32_t block_size;
  std::uint64_t msgs, bytes, events;
  sim::Time exec;
  std::uint64_t faults;  // read + write faults summed over nodes
  std::uint64_t mem_hash;
};

const char* kind_id(runtime::ProtocolKind k) {
  switch (k) {
    case runtime::ProtocolKind::kStache: return "kStache";
    case runtime::ProtocolKind::kPredictive: return "kPredictive";
    case runtime::ProtocolKind::kPredictiveAnticipate:
      return "kPredictiveAnticipate";
    case runtime::ProtocolKind::kWriteUpdate: return "kWriteUpdate";
  }
  return "?";
}

TEST(GoldenStats, ProtocolBlockSizeMatrix) {
  using runtime::ProtocolKind;
  const MatrixGolden table[] = {
      {ProtocolKind::kStache, 32, 6903ull, 196368ull, 16749ull, 249736440,
       2277ull, 14559042160599073619ull},
      {ProtocolKind::kStache, 128, 1850ull, 121376ull, 4607ull, 72437540,
       611ull, 9683470072194729308ull},
      {ProtocolKind::kStache, 1024, 435ull, 166704ull, 1174ull, 26442760,
       141ull, 5269624061003381707ull},
      {ProtocolKind::kPredictive, 32, 7022ull, 201984ull, 18534ull, 244331520,
       1896ull, 14559042160599073619ull},
      {ProtocolKind::kPredictive, 128, 1869ull, 125008ull, 5103ull, 70490520,
       500ull, 9683470072194729308ull},
      {ProtocolKind::kPredictive, 1024, 434ull, 174880ull, 1313ull, 24603360,
       84ull, 5269624061003381707ull},
      {ProtocolKind::kPredictiveAnticipate, 32, 6962ull, 201024ull, 20108ull,
       237321660, 1662ull, 14559042160599073619ull},
      {ProtocolKind::kPredictiveAnticipate, 128, 1854ull, 124768ull, 5463ull,
       68646520, 443ull, 9683470072194729308ull},
      {ProtocolKind::kPredictiveAnticipate, 1024, 434ull, 174880ull, 1313ull,
       24603360, 84ull, 5269624061003381707ull},
      {ProtocolKind::kWriteUpdate, 32, 6882ull, 230208ull, 17897ull,
       105085720, 957ull, 2800090443976628580ull},
      {ProtocolKind::kWriteUpdate, 128, 1788ull, 155328ull, 4534ull, 29901120,
       255ull, 17181031399765319607ull},
      {ProtocolKind::kWriteUpdate, 1024, 318ull, 192480ull, 840ull, 11759960,
       45ull, 15502453886649105430ull},
  };
  for (const auto& g : table) {
    SCOPED_TRACE(std::string(runtime::protocol_kind_name(g.kind)) + " bsz=" +
                 std::to_string(g.block_size));
    const auto r = testutil::run_micro_workload(
        g.kind, /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/6,
        sim::default_backend(), g.block_size);
    std::uint64_t faults = 0;
    for (const auto& c : r.counters) faults += c.read_faults + c.write_faults;
    EXPECT_EQ(r.msgs, g.msgs);
    EXPECT_EQ(r.bytes, g.bytes);
    EXPECT_EQ(r.events, g.events);
    EXPECT_EQ(r.exec, g.exec);
    EXPECT_EQ(faults, g.faults);
    EXPECT_EQ(r.mem_hash, g.mem_hash);
    if (::testing::Test::HasFailure()) {
      std::printf("ACTUAL: {ProtocolKind::%s, %u, %lluull, %lluull, %lluull, "
                  "%lld, %lluull, %lluull},\n",
                  kind_id(g.kind), g.block_size,
                  (unsigned long long)r.msgs, (unsigned long long)r.bytes,
                  (unsigned long long)r.events, (long long)r.exec,
                  (unsigned long long)faults, (unsigned long long)r.mem_hash);
    }
  }
}

}  // namespace
