// Flat-directory audit: after a fuzzed phase-structured run quiesces, a
// reference directory rebuilt from every node's access tags must agree with
// the block-indexed flat layout (util::BlockTable chunks) in both
// directions — every expected entry is present and correct, and every
// materialized entry is either correct or an untouched default. This is the
// cross-check that the page-chunked layout neither drops nor invents
// directory state relative to the ground truth the tags represent.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "runtime/system.h"
#include "util/rng.h"

namespace presto::runtime {
namespace {

struct RefEntry {
  proto::StacheProtocol::DirEntry::S state =
      proto::StacheProtocol::DirEntry::S::Idle;
  int owner = -1;
  util::NodeSet readers;
};

// Rebuilds the directory a home node *should* hold for block b from the
// quiescent access tags: a remote ReadWrite copy means Excl, remote
// ReadOnly copies mean Shared, otherwise Idle.
RefEntry rebuild_reference(System& sys, int home, mem::BlockId b) {
  RefEntry ref;
  for (int n = 0; n < sys.config().nodes; ++n) {
    if (n == home) continue;
    switch (sys.space().tag(n, b)) {
      case mem::Tag::ReadWrite:
        ref.state = proto::StacheProtocol::DirEntry::S::Excl;
        ref.owner = n;
        break;
      case mem::Tag::ReadOnly:
        ref.readers.set(n);
        break;
      case mem::Tag::Invalid:
        break;
    }
  }
  if (ref.state != proto::StacheProtocol::DirEntry::S::Excl &&
      ref.readers.any())
    ref.state = proto::StacheProtocol::DirEntry::S::Shared;
  return ref;
}

// Seeded random phase-structured workload (same shape as the differential
// fuzzer's programs): writers then readers per phase, repeated for a few
// rounds, leaving a nontrivial mix of Idle/Shared/Excl entries behind.
void run_fuzzed_workload(System& sys, mem::Addr base, int nblocks,
                         std::uint32_t block_size, std::uint64_t seed) {
  const int nodes = sys.config().nodes;
  util::Rng rng(seed);
  const int phases = 2;
  const int rounds = 4;
  std::vector<int> writer(static_cast<std::size_t>(
      static_cast<std::size_t>(nblocks) * phases));
  std::vector<std::uint64_t> readers(writer.size(), 0);
  for (std::size_t i = 0; i < writer.size(); ++i) {
    writer[i] = rng.next_bool(0.6)
                    ? static_cast<int>(
                          rng.next_below(static_cast<std::uint64_t>(nodes)))
                    : -1;
    for (int n = 0; n < nodes; ++n)
      if (rng.next_bool(0.3)) readers[i] |= 1ULL << n;
  }
  sys.run([&](NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) {
      for (int p = 0; p < phases; ++p) {
        c.phase(2 * p);
        for (int b = 0; b < nblocks; ++b) {
          const std::size_t i =
              static_cast<std::size_t>(b) * phases + static_cast<std::size_t>(p);
          if (writer[i] == c.id())
            c.write<std::uint32_t>(
                base + static_cast<mem::Addr>(b) * block_size,
                static_cast<std::uint32_t>(r * 1000 + b));
        }
        c.barrier();
        c.phase(2 * p + 1);
        for (int b = 0; b < nblocks; ++b) {
          const std::size_t i =
              static_cast<std::size_t>(b) * phases + static_cast<std::size_t>(p);
          if (readers[i] & (1ULL << c.id())) {
            volatile auto v = c.read<std::uint32_t>(
                base + static_cast<mem::Addr>(b) * block_size);
            (void)v;
          }
        }
        c.barrier();
      }
    }
  });
}

class DirAudit
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, std::uint64_t>> {
};

TEST_P(DirAudit, FlatLayoutMatchesReferenceRebuild) {
  const auto [kind, seed] = GetParam();
  const int nodes = 4;
  const std::uint32_t block_size = 32;
  const int nblocks = 96;

  MachineConfig m = MachineConfig::cm5_blizzard(nodes, block_size);
  m.mem.page_size = 512;
  System sys(m, kind);
  const mem::Addr base = sys.space().alloc(
      static_cast<std::size_t>(nblocks) * block_size,
      [&](mem::PageId p) { return static_cast<int>(p) % nodes; });
  run_fuzzed_workload(sys, base, nblocks, block_size, seed);

  auto* st = dynamic_cast<proto::StacheProtocol*>(&sys.protocol());
  ASSERT_NE(st, nullptr);
  // The built-in validator first: tags and directory must agree.
  EXPECT_GT(st->check_invariants(), 0u);

  const mem::BlockId first = sys.space().block_of(base);
  const mem::BlockId last = sys.space().block_of(
      base + static_cast<mem::Addr>(nblocks) * block_size - 1);

  // Direction 1: every materialized flat entry is owned by the right home
  // and matches the reference rebuilt from tags (or is an untouched
  // default outside the workload's range).
  std::map<std::pair<int, mem::BlockId>, RefEntry> seen;
  st->for_each_dir_entry([&](int h, mem::BlockId b,
                             const proto::StacheProtocol::DirEntry& d) {
    EXPECT_FALSE(d.busy) << "in-flight transaction after quiescence, block "
                         << b;
    EXPECT_EQ(sys.space().home_of_block(b), h)
        << "entry materialized at non-home node " << h << " for block " << b;
    if (b < first || b > last) {
      EXPECT_EQ(d.state, proto::StacheProtocol::DirEntry::S::Idle);
      EXPECT_FALSE(d.readers.any());
      return;
    }
    const RefEntry ref = rebuild_reference(sys, h, b);
    EXPECT_EQ(d.state, ref.state) << "block " << b;
    EXPECT_TRUE(d.readers == ref.readers) << "block " << b;
    if (ref.state == proto::StacheProtocol::DirEntry::S::Excl)
      EXPECT_EQ(d.owner, ref.owner) << "block " << b;
    seen[{h, b}] = ref;
  });

  // Direction 2: every block whose tags imply directory state has a
  // materialized flat entry (nothing was dropped by the chunked layout).
  for (mem::BlockId b = first; b <= last; ++b) {
    const int h = sys.space().home_of_block(b);
    const RefEntry ref = rebuild_reference(sys, h, b);
    const bool nontrivial =
        ref.state != proto::StacheProtocol::DirEntry::S::Idle;
    if (nontrivial)
      EXPECT_TRUE(seen.count({h, b}))
          << "tags imply directory state for block " << b
          << " but no flat entry is materialized";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FuzzedRuns, DirAudit,
    ::testing::Combine(::testing::Values(ProtocolKind::kStache,
                                         ProtocolKind::kPredictive,
                                         ProtocolKind::kPredictiveAnticipate),
                       ::testing::Values(11ull, 42ull, 1234ull)));

}  // namespace
}  // namespace presto::runtime
