// End-to-end compiler tests: C**-subset source is compiled, its directives
// placed, and the program executed on the simulated DSM. The compiled
// stencil must compute the same values under Stache and under the
// predictive protocol with compiler-placed directives — and the directives
// must actually reduce communication.
#include <gtest/gtest.h>

#include "cstar/compiler.h"
#include "cstar/interp.h"
#include "cstar/samples.h"

namespace presto::cstar {
namespace {

runtime::MachineConfig machine(int nodes = 8) {
  return runtime::MachineConfig::cm5_blizzard(nodes, 32);
}

// A self-contained red/black-style stencil: init writes a ramp, then two
// alternating sweeps relax it.
constexpr const char* kProgram = R"(
aggregate double Grid[][];
Grid a;
Grid b;

parallel void init(parallel Grid g) {
  g(#0, #1) = #0 * 31 + #1 * 7;
}

parallel void relax(parallel Grid cur, Grid prev) {
  cur(#0, #1) = 0.25 * (prev(#0 - 1, #1) + prev(#0 + 1, #1) +
                        prev(#0, #1 - 1) + prev(#0, #1 + 1));
}

void main() {
  init(a);
  init(b);
  for (int it = 0; it < 6; it = it + 1) {
    relax(b, a);
    relax(a, b);
  }
}
)";

TEST(Interp, CompiledStencilRunsAndConverges) {
  auto cr = compile(kProgram);
  ASSERT_TRUE(cr.ok()) << cr.errors.front();
  const auto r = interpret(cr, machine(), runtime::ProtocolKind::kStache);
  ASSERT_TRUE(r.checksums.count("a"));
  ASSERT_TRUE(r.checksums.count("b"));
  EXPECT_GT(r.checksums.at("a"), 0.0);
  EXPECT_TRUE(std::isfinite(r.checksums.at("b")));
  EXPECT_GT(r.report.shared_accesses, 0u);
}

TEST(Interp, PredictiveWithDirectivesComputesSameValues) {
  auto cr = compile(kProgram);
  ASSERT_TRUE(cr.ok());
  const auto stache =
      interpret(cr, machine(), runtime::ProtocolKind::kStache);
  const auto pred =
      interpret(cr, machine(), runtime::ProtocolKind::kPredictive);
  EXPECT_DOUBLE_EQ(stache.checksums.at("a"), pred.checksums.at("a"));
  EXPECT_DOUBLE_EQ(stache.checksums.at("b"), pred.checksums.at("b"));
}

TEST(Interp, CompilerDirectivesReduceCommunication) {
  auto cr = compile(kProgram);
  ASSERT_TRUE(cr.ok());
  ASSERT_FALSE(cr.placement.directives.empty());
  InterpOptions with;
  with.use_directives = true;
  InterpOptions without;
  without.use_directives = false;
  const auto opt =
      interpret(cr, machine(), runtime::ProtocolKind::kPredictive, with);
  const auto unopt = interpret(cr, machine(),
                               runtime::ProtocolKind::kPredictive, without);
  // Same answers, fewer faults, less remote waiting.
  EXPECT_DOUBLE_EQ(opt.checksums.at("a"), unopt.checksums.at("a"));
  EXPECT_LT(opt.report.faults, unopt.report.faults);
  EXPECT_LT(opt.report.remote_wait, unopt.report.remote_wait);
  EXPECT_GT(opt.report.presend_blocks, 0u);
}

TEST(Interp, FigureTwoStencilSampleExecutes) {
  // The paper's Figure 2 program verbatim, with the iteration count cut
  // from 100 to 4 to keep the test fast.
  std::string src = samples::kStencil;
  const auto pos = src.find("i < 100");
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, 7, "i < 4");
  auto cr = compile(src);
  ASSERT_TRUE(cr.ok());
  // All values start at zero; the program must still run to completion
  // under both protocols with identical (zero) checksums.
  const auto s = interpret(cr, machine(4), runtime::ProtocolKind::kStache);
  const auto o =
      interpret(cr, machine(4), runtime::ProtocolKind::kPredictive);
  EXPECT_DOUBLE_EQ(s.checksums.at("a"), o.checksums.at("a"));
}

TEST(Interp, SequentialControlFlowMatchesSemantics) {
  // Sequential scalar code in main drives how many sweeps run; a wrong
  // loop/branch implementation changes the checksum.
  auto cr = compile(R"(
aggregate double G[];
G g;
parallel void bump(parallel G x, double amount) { x(#0) += amount; }
void main() {
  int total = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 3 == 0) { bump(g, 1); total = total + 1; }
    else { bump(g, 10); }
  }
  while (total > 0) { bump(g, 100); total = total - 1; }
}
)");
  ASSERT_TRUE(cr.ok()) << cr.errors.front();
  const auto r = interpret(cr, machine(4), runtime::ProtocolKind::kStache);
  // Per element: 4 bumps of 1, 6 bumps of 10, 4 bumps of 100 = 464.
  EXPECT_DOUBLE_EQ(r.checksums.at("g"), 464.0 * 32);
}

TEST(Interp, ScalarParamsPassByValue) {
  auto cr = compile(R"(
aggregate double G[];
G g;
parallel void setv(parallel G x, double v) { x(#0) = v * 2; }
void main() { setv(g, 21); }
)");
  ASSERT_TRUE(cr.ok());
  const auto r = interpret(cr, machine(2), runtime::ProtocolKind::kStache);
  EXPECT_DOUBLE_EQ(r.checksums.at("g"), 42.0 * 32);
}

TEST(Interp, RejectsStructElementPrograms) {
  auto cr = compile(samples::kUnstructuredMesh);
  ASSERT_TRUE(cr.ok());
  EXPECT_DEATH(interpret(cr, machine(2), runtime::ProtocolKind::kStache),
               "not executable");
}

TEST(Interp, DeterministicAcrossRuns) {
  auto cr = compile(kProgram);
  ASSERT_TRUE(cr.ok());
  const auto r1 =
      interpret(cr, machine(), runtime::ProtocolKind::kPredictive);
  const auto r2 =
      interpret(cr, machine(), runtime::ProtocolKind::kPredictive);
  EXPECT_EQ(r1.report.exec, r2.report.exec);
  EXPECT_EQ(r1.report.msgs, r2.report.msgs);
  EXPECT_DOUBLE_EQ(r1.checksums.at("a"), r2.checksums.at("a"));
}

}  // namespace
}  // namespace presto::cstar
