// Stress tier for the worker pool's synchronization hot path: sense-epoch
// barrier, spin-then-park wake-ups, adaptive window batching, idle-lane
// elision with caller adoption.
//
// Everything here runs the 16-node golden workload: the pool's grain
// heuristic routes the 4/8-node workloads of the base equivalence tier down
// the serial fast path (correct — a release/arrival round trip costs more
// than those windows hold), so 16 nodes is the smallest shape where helpers
// are genuinely released and the cross-thread machinery actually runs. Each
// test asserts the mechanism it stresses ENGAGED (win_releases, win_parks,
// win_serial_windows from the host counters) before asserting equivalence —
// a heuristic drift that silently serialized these runs would otherwise turn
// the whole tier vacuous.
//
// Plus the second planted bug: a helper that consumes a window release
// without draining (a stale sense flag, check/bughook.h) keeps every
// simulated result intact — same events at the same virtual times, one
// window later in host time — and is caught ONLY by the trace digest, whose
// boundary stamping order shifts. That is the narrowest observable the
// equivalence tier owns, and this proves it has teeth.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/bughook.h"
#include "runtime/machine.h"
#include "golden_workload.h"

namespace presto {
namespace {

using runtime::ProtocolKind;
using testutil::run_micro_workload;
using testutil::WorkloadResult;

constexpr sim::Time kWindow = sim::microseconds(30);  // = cm5 wire latency
constexpr int kNodes = 16;
constexpr int kRounds = 4;

WorkloadResult run_serial(ProtocolKind kind) {
  return run_micro_workload(kind, /*quantum_floor=*/0, kNodes, kRounds,
                            sim::Backend::kFiber, /*block_size=*/32,
                            /*traced=*/true, trace::kCatAll, kWindow);
}

WorkloadResult run_pool(ProtocolKind kind, int workers, int batch) {
  return run_micro_workload(kind, /*quantum_floor=*/0, kNodes, kRounds,
                            sim::Backend::kParallel, /*block_size=*/32,
                            /*traced=*/true, trace::kCatAll, kWindow, workers,
                            batch);
}

void expect_equivalent(const WorkloadResult& a, const WorkloadResult& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t n = 0; n < a.counters.size(); ++n) {
    SCOPED_TRACE("node " + std::to_string(n));
    EXPECT_EQ(a.counters[n].finish, b.counters[n].finish);
    EXPECT_EQ(a.counters[n].msgs_sent, b.counters[n].msgs_sent);
    EXPECT_EQ(a.counters[n].read_faults, b.counters[n].read_faults);
    EXPECT_EQ(a.counters[n].write_faults, b.counters[n].write_faults);
  }
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.mem_hash, b.mem_hash);
  ASSERT_TRUE(a.traced);
  ASSERT_TRUE(b.traced);
  EXPECT_EQ(a.trace_digest.events, b.trace_digest.events);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

struct ScopedBugHook {
  explicit ScopedBugHook(const char* name) : name_(name) {
    check::set_bug_hook(name, true);
  }
  ~ScopedBugHook() { check::set_bug_hook(name_, false); }
  const char* name_;
};

// ---- Elision / adoption engagement ------------------------------------------
// At 16 nodes the rotating-writer workload leaves most lanes idle in writer
// phases and all lanes busy in read phases, so one run crosses the full
// spectrum: serial-fast-path windows, released windows, and adopted drains
// of unreleased helpers' lanes — all bit-identical to the serial canon.

TEST(ParallelElision, MixedPathWindowsStayByteIdentical) {
  const WorkloadResult serial = run_serial(ProtocolKind::kPredictive);
  for (int workers : {2, 5, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const WorkloadResult par =
        run_pool(ProtocolKind::kPredictive, workers, /*batch=*/0);
    // The mechanisms under test must actually engage.
    EXPECT_GT(par.host.win_releases, 0u) << "pool never released a helper; "
                                            "this test has gone vacuous";
    EXPECT_GT(par.host.win_serial_windows, 0u);
    EXPECT_GT(par.host.win_adopted_drains, 0u);
    expect_equivalent(serial, par);
  }
}

// ---- Adaptive batching sweep ------------------------------------------------
// The batch cap only changes HOW helpers are woken (spin streaks vs parks),
// never what is simulated: every (workers, batch) cell must land on the
// serial canon's digest. batch=1 is the park-heavy extreme (a helper may
// spin-acquire at most one consecutive release before it must park), batch=8
// the spin-friendly one, batch=0 uncapped.

TEST(ParallelBatching, BatchCapSweepStaysByteIdentical) {
  // Predictive, not stache: the presend machinery is what keeps 16-node
  // windows heavy enough to release helpers (stache windows at this scale
  // fall under the release grain and serialize — correctly, but vacuously
  // for this sweep).
  const WorkloadResult serial = run_serial(ProtocolKind::kPredictive);
  for (int workers : {2, 7}) {
    for (int batch : {1, 2, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) + " batch=" +
                   std::to_string(batch));
      const WorkloadResult par =
          run_pool(ProtocolKind::kPredictive, workers, batch);
      EXPECT_GT(par.host.win_releases, 0u);
      expect_equivalent(serial, par);
    }
  }
}

// ---- Park/unpark stress -----------------------------------------------------
// Oversubscription (8 workers on however few CPUs the host has) plus
// batch=1 forces the futex path: after each helper's first spin-acquired
// release, every further wake-up goes through epoch.wait()/notify_one(). The
// rotating writer keeps lane load imbalanced, so release sets differ window
// to window — exactly the wake/sleep churn the barrier must survive without
// deadlock, lost wake-ups, or result drift.

TEST(ParallelParkStress, OversubscribedBatchOneParksAndMatches) {
  const WorkloadResult serial = run_serial(ProtocolKind::kPredictive);
  const WorkloadResult par =
      run_pool(ProtocolKind::kPredictive, /*workers=*/8, /*batch=*/1);
  EXPECT_GT(par.host.win_releases, 0u);
  // batch=1 with repeated releases forces parks (a helper's second
  // consecutive release may not be spin-acquired).
  EXPECT_GT(par.host.win_parks, 0u) << "batch=1 never parked a helper; the "
                                       "spin cap is not being enforced";
  expect_equivalent(serial, par);
}

// ---- Planted bug: stale sense flag ------------------------------------------
// The first released helper consumes its epoch bump but skips the drain, as
// if a stale sense flag told it the window was already complete. Every
// simulated observable survives — the skipped lanes drain one window later
// at unchanged virtual times, so counters, messages, exec time, and memory
// all match. Only the trace's boundary stamping order shifts: the skipped
// lanes' events are sequenced one boundary late. If the digest ever stops
// catching this, the equivalence tier has lost its sharpest check.

TEST(ParallelPlantedBug, StaleSenseFlagIsCaughtByTraceDigest) {
  const WorkloadResult good = run_serial(ProtocolKind::kPredictive);
  WorkloadResult bad;
  {
    ScopedBugHook hook("stale-sense-flag");
    bad = run_pool(ProtocolKind::kPredictive, /*workers=*/2, /*batch=*/0);
  }
  // The bug only fires when a helper is actually released.
  ASSERT_GT(bad.host.win_releases, 0u);
  // Simulated results are intact...
  EXPECT_EQ(good.msgs, bad.msgs);
  EXPECT_EQ(good.exec, bad.exec);
  EXPECT_EQ(good.mem_hash, bad.mem_hash);
  EXPECT_EQ(good.trace_digest.events, bad.trace_digest.events);
  // ...but the canonical stream's stamping order is not.
  EXPECT_NE(good.trace_digest.hash, bad.trace_digest.hash);
  // With the hook cleared the same configuration matches again, pinning the
  // divergence on the planted bug alone.
  const WorkloadResult clean =
      run_pool(ProtocolKind::kPredictive, /*workers=*/2, /*batch=*/0);
  expect_equivalent(good, clean);
}

}  // namespace
}  // namespace presto
