// Shared micro workload for the golden-stats and determinism tests.
//
// A small, fully deterministic producer/consumer mix over pages homed
// round-robin across the nodes: each round a rotating writer updates a
// strided subset of every page, all nodes read another strided subset, and
// phase directives bracket both so the predictive protocol records and
// presends a schedule. The workload exercises GetS/GetX, Inv/InvAck,
// RecallS/RecallX, Data installs, and (under predictive) bulk presend
// traffic — every steady-state path the perf work rewrites.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/system.h"
#include "trace/tracer.h"

namespace presto::testutil {

struct WorkloadResult {
  std::vector<stats::NodeCounters> counters;  // per node
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  sim::Time exec = 0;
  std::uint64_t mem_hash = 0;  // FNV-1a over every node's view + tags
  // ccached flush counters (zero under every other protocol).
  std::uint64_t cc_flushes = 0;
  std::uint64_t cc_entries = 0;
  // Host-side counters (never part of equivalence — they describe how the
  // host ran the simulation, not what was simulated). Tests use the win_*
  // fields to prove a parallel run actually released helpers / elided lanes
  // rather than passing vacuously through the serial fast path.
  stats::HostCounters host;
  // Filled only when the run was traced (the golden-trace tier).
  bool traced = false;
  trace::Digest trace_digest;
  trace::Summary trace_summary;
  trace::TraceData trace_data;  // canonical stream + meta
};

inline std::uint64_t fnv1a(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline WorkloadResult run_micro_workload(runtime::ProtocolKind kind,
                                         sim::Time quantum_floor = 0,
                                         int nodes = 4, int rounds = 6,
                                         sim::Backend backend =
                                             sim::default_backend(),
                                         std::uint32_t block_size = 32,
                                         bool traced = false,
                                         std::uint32_t trace_categories =
                                             trace::kCatAll,
                                         sim::Time window = 0,
                                         int workers = 0,
                                         int batch_windows = 0) {
  runtime::MachineConfig cfg =
      runtime::MachineConfig::cm5_blizzard(nodes, block_size);
  cfg.quantum_floor = quantum_floor;
  cfg.backend = backend;
  cfg.trace.enabled = traced;  // in-memory: tests read the stream directly
  cfg.trace.categories = trace_categories;
  cfg.window = window;            // 0 = legacy single-lane engine
  cfg.workers = workers;          // kParallel only
  cfg.batch_windows = batch_windows;  // kParallel only; results-invariant
  runtime::System sys(cfg, kind);
  auto& space = sys.space();

  // One page per node, homed round-robin.
  const mem::Addr base = space.alloc(
      static_cast<std::size_t>(nodes) * cfg.mem.page_size,
      [nodes](mem::PageId p) { return static_cast<int>(p) % nodes; });
  const std::uint32_t bsz = cfg.mem.block_size;
  const int blocks_per_page =
      static_cast<int>(cfg.mem.page_size / bsz);
  const std::size_t total_bytes =
      static_cast<std::size_t>(nodes) * cfg.mem.page_size;
  // Write-update provides phase consistency only: writers publish their
  // dirty blocks before the barrier that separates them from the readers.
  proto::WriteUpdateProtocol* wu = sys.writeupdate();

  sys.run([&](runtime::NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) {
      const int writer = r % c.nodes();
      c.phase(0);
      if (c.id() == writer) {
        for (int pg = 0; pg < c.nodes(); ++pg)
          for (int b = 0; b < blocks_per_page; b += 3)
            c.write<int>(base + static_cast<mem::Addr>(pg) * 4096 +
                             static_cast<mem::Addr>(b) * bsz,
                         r * 1000 + pg * 100 + b);
        if (wu != nullptr) wu->wu_publish(c.id(), base, total_bytes);
      }
      c.barrier();
      c.phase(1);
      for (int pg = 0; pg < c.nodes(); ++pg)
        for (int b = 0; b < blocks_per_page; b += 5) {
          volatile int v = c.read<int>(base + static_cast<mem::Addr>(pg) * 4096 +
                                       static_cast<mem::Addr>(b) * bsz);
          (void)v;
        }
      c.barrier();
      // A second writer creates upgrade (sole-reader GetX) and recall
      // traffic on a distinct stride.
      const int writer2 = (r + 1) % c.nodes();
      if (c.id() == writer2) {
        for (int pg = 0; pg < c.nodes(); ++pg)
          for (int b = 1; b < blocks_per_page; b += 7)
            c.write<int>(base + static_cast<mem::Addr>(pg) * 4096 +
                             static_cast<mem::Addr>(b) * bsz,
                         -(r * 1000 + pg * 100 + b));
        if (wu != nullptr) wu->wu_publish(c.id(), base, total_bytes);
      }
      c.barrier();
    }
  });

  WorkloadResult res;
  for (int n = 0; n < nodes; ++n) res.counters.push_back(sys.recorder().node(n));
  res.msgs = sys.network().messages_sent();
  res.bytes = sys.network().bytes_sent();
  res.events = sys.engine().events_executed();
  res.exec = sys.exec_time();
  res.host = sys.recorder().host();
  std::uint64_t h = 1469598103934665603ULL;
  for (int n = 0; n < nodes; ++n) {
    for (std::uint64_t b = 0; b < space.num_blocks(); ++b) {
      h = fnv1a(h, space.block_data(n, b), bsz);
      const auto t = static_cast<std::uint8_t>(space.tag(n, b));
      h = fnv1a(h, &t, 1);
    }
  }
  res.mem_hash = h;
  if (sys.tracer() != nullptr) {
    res.traced = true;
    res.trace_digest = sys.tracer()->digest();
    res.trace_summary = sys.tracer()->summary();
    res.trace_data = sys.tracer()->build(cfg.costs, cfg.net);
  }
  return res;
}

// Commutative-update micro workload for the ccached golden pins: one page
// per node (homed round-robin), the whole region reduction-tagged. Each
// round every node pushes deltas into a disjoint strided word set and
// flushes; then all nodes read a strided sample, installing copies the next
// round's merges must quiesce through the home's transaction engine. The
// word sets are disjoint, so every protocol computes the same final image
// (under non-ccached kinds cc_add degrades to an rmw) — but only ccached
// rows are pinned: the rmw write storm is the baseline the protocol exists
// to remove, not a behavior worth freezing.
inline WorkloadResult run_cc_micro_workload(runtime::ProtocolKind kind,
                                            std::uint32_t block_size = 32,
                                            int nodes = 4, int rounds = 6,
                                            bool traced = false,
                                            sim::Backend backend =
                                                sim::default_backend(),
                                            sim::Time window = 0,
                                            int workers = 0) {
  runtime::MachineConfig cfg =
      runtime::MachineConfig::cm5_blizzard(nodes, block_size);
  cfg.trace.enabled = traced;
  cfg.backend = backend;
  cfg.window = window;
  cfg.workers = workers;
  runtime::System sys(cfg, kind);
  auto& space = sys.space();

  const std::size_t region =
      static_cast<std::size_t>(nodes) * cfg.mem.page_size;
  const mem::Addr base = space.alloc(
      region, [nodes](mem::PageId p) { return static_cast<int>(p) % nodes; });
  space.set_commutative(base, region);
  const std::size_t words = region / 8;

  sys.run([&](runtime::NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) {
      c.phase(0);
      const auto stride = static_cast<std::size_t>(3) * c.nodes();
      for (std::size_t w = static_cast<std::size_t>(c.id()); w < words;
           w += stride)
        c.cc_add(base + w * 8,
                 r * 1000 + c.id() * 10 + static_cast<std::int64_t>(w % 7) + 1);
      c.cc_flush();
      c.barrier();
      c.phase(1);
      for (std::size_t w = 0; w < words; w += 64) {
        volatile std::int64_t v = c.read<std::int64_t>(base + w * 8);
        (void)v;
      }
      c.barrier();
    }
  });

  WorkloadResult res;
  for (int n = 0; n < nodes; ++n) res.counters.push_back(sys.recorder().node(n));
  res.msgs = sys.network().messages_sent();
  res.bytes = sys.network().bytes_sent();
  res.events = sys.engine().events_executed();
  res.exec = sys.exec_time();
  res.host = sys.recorder().host();
  if (auto* cc = sys.ccached(); cc != nullptr) {
    res.cc_flushes = cc->cc_stats().flushes;
    res.cc_entries = cc->cc_stats().flushed_entries;
  }
  std::uint64_t h = 1469598103934665603ULL;
  for (int n = 0; n < nodes; ++n) {
    for (std::uint64_t b = 0; b < space.num_blocks(); ++b) {
      h = fnv1a(h, space.block_data(n, b), cfg.mem.block_size);
      const auto t = static_cast<std::uint8_t>(space.tag(n, b));
      h = fnv1a(h, &t, 1);
    }
  }
  res.mem_hash = h;
  if (sys.tracer() != nullptr) {
    res.traced = true;
    res.trace_digest = sys.tracer()->digest();
    res.trace_summary = sys.tracer()->summary();
    res.trace_data = sys.tracer()->build(cfg.costs, cfg.net);
  }
  return res;
}

}  // namespace presto::testutil
