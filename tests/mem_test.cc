#include <gtest/gtest.h>

#include "mem/global_space.h"

namespace presto::mem {
namespace {

MemConfig small_cfg() {
  MemConfig c;
  c.block_size = 32;
  c.page_size = 128;
  return c;
}

TEST(GlobalSpace, AllocAssignsHomesPerPage) {
  GlobalSpace s(4, small_cfg());
  const Addr base = s.alloc(3 * 128, [](PageId p) {
    return static_cast<int>(p);  // page i homed at node i
  });
  EXPECT_EQ(base, 0u);
  EXPECT_EQ(s.home_of_addr(base), 0);
  EXPECT_EQ(s.home_of_addr(base + 128), 1);
  EXPECT_EQ(s.home_of_addr(base + 2 * 128 + 127), 2);
  EXPECT_EQ(s.size_bytes(), 3u * 128u);
}

TEST(GlobalSpace, HomeStartsReadWriteOthersInvalid) {
  GlobalSpace s(3, small_cfg());
  s.alloc(128, [](PageId) { return 1; });
  const BlockId b = 0;
  EXPECT_EQ(s.tag(1, b), Tag::ReadWrite);
  EXPECT_EQ(s.tag(0, b), Tag::Invalid);
  EXPECT_EQ(s.tag(2, b), Tag::Invalid);
}

TEST(GlobalSpace, BlockAndPageArithmetic) {
  GlobalSpace s(2, small_cfg());
  s.alloc(256, [](PageId) { return 0; });
  EXPECT_EQ(s.block_of(0), 0u);
  EXPECT_EQ(s.block_of(31), 0u);
  EXPECT_EQ(s.block_of(32), 1u);
  EXPECT_EQ(s.page_of(127), 0u);
  EXPECT_EQ(s.page_of(128), 1u);
  EXPECT_EQ(s.page_of_block(4), 1u);
  EXPECT_EQ(s.block_base(3), 96u);
}

struct FailOnFault : FaultHandler {
  void on_fault(int, BlockId, bool) override { FAIL() << "unexpected fault"; }
};

// Simulates the protocol satisfying the request: copy home data, set tag.
struct CopyFromHome : FaultHandler {
  explicit CopyFromHome(GlobalSpace& s) : space(s) {}
  void on_fault(int node, BlockId b, bool is_write) override {
    ++faults;
    std::memcpy(space.block_data(node, b), space.block_data(0, b),
                space.block_size());
    space.set_tag(node, b, is_write ? Tag::ReadWrite : Tag::ReadOnly);
  }
  GlobalSpace& space;
  int faults = 0;
};

TEST(GlobalSpace, HomeReadsAndWritesNeedNoFault) {
  GlobalSpace s(2, small_cfg());
  const Addr a = s.alloc(128, [](PageId) { return 0; });
  FailOnFault h;
  s.set_fault_handler(&h);
  s.write_value<int>(0, a + 4, 42);
  EXPECT_EQ(s.read_value<int>(0, a + 4), 42);
}

TEST(GlobalSpace, FaultHandlerInvokedUntilTagOk) {
  GlobalSpace s(2, small_cfg());
  const Addr a = s.alloc(128, [](PageId) { return 0; });
  CopyFromHome h(s);
  s.set_fault_handler(&h);
  int& faults = h.faults;
  s.write_value<double>(0, a, 3.5);
  EXPECT_EQ(s.read_value<double>(1, a), 3.5);
  EXPECT_EQ(faults, 1);
  // Subsequent read hits the cached copy.
  EXPECT_EQ(s.read_value<double>(1, a), 3.5);
  EXPECT_EQ(faults, 1);
  // A write needs an upgrade fault.
  s.write_value<double>(1, a, 4.5);
  EXPECT_EQ(faults, 2);
}

TEST(GlobalSpace, ReadsSpanningBlocksAndPages) {
  GlobalSpace s(2, small_cfg());
  const Addr a = s.alloc(256, [](PageId) { return 0; });
  // Fill 256 bytes with a pattern via block-spanning writes at the home.
  std::vector<std::uint8_t> pat(200);
  for (std::size_t i = 0; i < pat.size(); ++i)
    pat[i] = static_cast<std::uint8_t>(i * 7 + 1);
  s.write(0, a + 30, pat.data(), pat.size());  // spans blocks and the page
  std::vector<std::uint8_t> got(200);
  s.read(0, a + 30, got.data(), got.size());
  EXPECT_EQ(pat, got);
}

TEST(GlobalSpace, ArenaAllocHomesAtNodeAndAligns) {
  GlobalSpace s(4, small_cfg());
  const Addr a = s.arena_alloc(2, 40, 16);
  EXPECT_EQ(s.home_of_addr(a), 2);
  EXPECT_EQ(a % 16, 0u);
  const Addr b = s.arena_alloc(2, 40, 16);
  EXPECT_EQ(s.home_of_addr(b), 2);
  EXPECT_NE(a, b);
  const Addr c = s.arena_alloc(3, 8, 8);
  EXPECT_EQ(s.home_of_addr(c), 3);
}

TEST(GlobalSpace, ArenaObjectsDoNotStraddleChunks) {
  MemConfig cfg = small_cfg();
  GlobalSpace s(2, cfg);
  // Fill most of a page, then allocate an object that would straddle.
  s.arena_alloc(0, 100, 8);
  const Addr a = s.arena_alloc(0, 60, 8);
  // Object fits entirely within one page.
  EXPECT_EQ(s.page_of(a), s.page_of(a + 59));
}

TEST(GlobalSpace, ArenaMarkResetReusesAddresses) {
  GlobalSpace s(2, small_cfg());
  s.arena_alloc(1, 16, 8);
  const std::size_t mark = s.arena_mark(1);
  const Addr a1 = s.arena_alloc(1, 24, 8);
  const Addr a2 = s.arena_alloc(1, 24, 8);
  s.arena_reset(1, mark);
  const Addr b1 = s.arena_alloc(1, 24, 8);
  const Addr b2 = s.arena_alloc(1, 24, 8);
  EXPECT_EQ(a1, b1);  // address stability across rebuilds
  EXPECT_EQ(a2, b2);
}

TEST(GlobalSpace, RmwRequiresSingleBlock) {
  GlobalSpace s(2, small_cfg());
  const Addr a = s.alloc(128, [](PageId) { return 0; });
  s.rmw(0, a + 8, 8, [](void* p) { *static_cast<std::uint64_t*>(p) = 9; });
  EXPECT_EQ(s.read_value<std::uint64_t>(0, a + 8), 9u);
  EXPECT_DEATH(s.rmw(0, a + 28, 8, [](void*) {}), "straddle");
}

TEST(GlobalSpace, RejectsNonPowerOfTwoBlock) {
  MemConfig cfg;
  cfg.block_size = 48;
  cfg.page_size = 4096;
  EXPECT_DEATH(GlobalSpace(2, cfg), "power of two");
}

}  // namespace
}  // namespace presto::mem
