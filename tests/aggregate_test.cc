// Distribution properties of C** Aggregates, parameterized over node counts
// and sizes: ownership partitions exactly, the computational owner is
// always the page home (owner-computes locality), addresses are distinct,
// and the tiled mesh is as square as the node count allows.
#include <gtest/gtest.h>

#include <set>

#include "runtime/aggregate.h"
#include "runtime/system.h"

namespace presto::runtime {
namespace {

MachineConfig tiny(int nodes) {
  MachineConfig m = MachineConfig::cm5_blizzard(nodes, 32);
  m.mem.page_size = 256;
  return m;
}

struct DistParam {
  int nodes;
  std::size_t n;  // elements (1D) or rows==cols (2D)
};

class Distribution : public ::testing::TestWithParam<DistParam> {};

TEST_P(Distribution, OneDimensionalPartitionAndHomes) {
  const auto [nodes, n] = GetParam();
  System sys(tiny(nodes), ProtocolKind::kStache);
  auto agg = Aggregate1D<double>::create(sys.space(), n);

  std::set<mem::Addr> addrs;
  std::size_t covered = 0;
  for (int k = 0; k < nodes; ++k) {
    const auto [lo, hi] = agg.range(k);
    covered += hi - lo;
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_EQ(agg.owner(i), k);
      EXPECT_EQ(sys.space().home_of_addr(agg.addr(i)), k);
      EXPECT_TRUE(addrs.insert(agg.addr(i)).second) << "address reuse";
    }
  }
  EXPECT_EQ(covered, n);  // ranges partition the index space exactly
}

TEST_P(Distribution, RowBlockPartitionAndHomes) {
  const auto [nodes, n] = GetParam();
  System sys(tiny(nodes), ProtocolKind::kStache);
  auto agg = Aggregate2D<float>::create(sys.space(), n, n);
  std::size_t covered = 0;
  for (int k = 0; k < nodes; ++k) {
    const auto [lo, hi] = agg.row_range(k);
    covered += (hi - lo) * n;
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t j = 0; j < n; j += 3) {
        EXPECT_EQ(agg.owner(i), k);
        EXPECT_EQ(sys.space().home_of_addr(agg.addr(i, j)), k);
      }
  }
  EXPECT_EQ(covered, n * n);
}

TEST_P(Distribution, TiledPartitionAndHomes) {
  const auto [nodes, n] = GetParam();
  System sys(tiny(nodes), ProtocolKind::kStache);
  auto agg = TiledAggregate2D<float>::create(sys.space(), n, n);
  EXPECT_EQ(agg.tile_rows_count() * agg.tile_cols_count(), nodes);
  // Mesh as square as possible: tr <= tc and tr is the largest divisor.
  EXPECT_LE(agg.tile_rows_count(), agg.tile_cols_count());

  std::size_t covered = 0;
  for (int k = 0; k < nodes; ++k) {
    const auto t = agg.tile(k);
    covered += (t.row_hi - t.row_lo) * (t.col_hi - t.col_lo);
    for (std::size_t i = t.row_lo; i < t.row_hi; ++i)
      for (std::size_t j = t.col_lo; j < t.col_hi; ++j) {
        EXPECT_EQ(agg.owner(i, j), k);
        EXPECT_EQ(sys.space().home_of_addr(agg.addr(i, j)), k);
      }
  }
  EXPECT_EQ(covered, n * n);
}

TEST_P(Distribution, TiledAddressesAreDistinct) {
  const auto [nodes, n] = GetParam();
  System sys(tiny(nodes), ProtocolKind::kStache);
  auto agg = TiledAggregate2D<double>::create(sys.space(), n, n);
  std::set<mem::Addr> addrs;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_TRUE(addrs.insert(agg.addr(i, j)).second)
          << "collision at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Distribution,
    ::testing::Values(DistParam{1, 7}, DistParam{2, 16}, DistParam{3, 10},
                      DistParam{4, 16}, DistParam{6, 23}, DistParam{8, 64},
                      DistParam{16, 32}),
    [](const ::testing::TestParamInfo<DistParam>& info) {
      return "n" + std::to_string(info.param.nodes) + "_e" +
             std::to_string(info.param.n);
    });

TEST(TiledAggregate, HaloExchangeWorksAcrossTileBoundaries) {
  System sys(tiny(4), ProtocolKind::kStache);  // 2x2 mesh
  auto agg = TiledAggregate2D<int>::create(sys.space(), 8, 8);
  sys.run([&](NodeCtx& c) {
    const auto t = agg.tile(c.id());
    for (std::size_t i = t.row_lo; i < t.row_hi; ++i)
      for (std::size_t j = t.col_lo; j < t.col_hi; ++j)
        agg.set(c, i, j, static_cast<int>(100 * i + j));
    c.barrier();
    // Every node reads a full halo ring around its tile.
    for (std::size_t i = t.row_lo; i < t.row_hi; ++i) {
      if (t.col_lo > 0)
        EXPECT_EQ(agg.get(c, i, t.col_lo - 1),
                  static_cast<int>(100 * i + t.col_lo - 1));
      if (t.col_hi < 8)
        EXPECT_EQ(agg.get(c, i, t.col_hi),
                  static_cast<int>(100 * i + t.col_hi));
    }
    for (std::size_t j = t.col_lo; j < t.col_hi; ++j) {
      if (t.row_lo > 0)
        EXPECT_EQ(agg.get(c, t.row_lo - 1, j),
                  static_cast<int>(100 * (t.row_lo - 1) + j));
      if (t.row_hi < 8)
        EXPECT_EQ(agg.get(c, t.row_hi, j),
                  static_cast<int>(100 * t.row_hi + j));
    }
  });
  // Cross-tile reads faulted; the counts are per-node nonzero.
  EXPECT_GT(sys.recorder().node(0).read_faults, 0u);
}

}  // namespace
}  // namespace presto::runtime
