// Determinism regression: the simulator must produce identical results on
// identical inputs — same per-node counters, same network totals, same
// final memory contents and access tags — run after run.
//
// The engine's quantum_floor host-speed knob changes how often processors
// yield at the event horizon. For a data-race-free workload that never
// changes *what* is computed (memory contents, fault/message/byte counts,
// schedule entries), only sub-quantum timing (wait-time breakdowns), which
// is exactly the trade documented in sim/engine.h — so the quantum tests
// compare everything except the time-valued counters.
#include <gtest/gtest.h>

#include "golden_workload.h"

using namespace presto;

namespace {

void expect_identical(const testutil::WorkloadResult& a,
                      const testutil::WorkloadResult& b,
                      bool compare_timing) {
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.mem_hash, b.mem_hash);
  if (compare_timing) {
    EXPECT_EQ(a.exec, b.exec);
    EXPECT_EQ(a.events, b.events);
  }
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t n = 0; n < a.counters.size(); ++n) {
    const auto& x = a.counters[n];
    const auto& y = b.counters[n];
    EXPECT_EQ(x.shared_reads, y.shared_reads) << "node " << n;
    EXPECT_EQ(x.shared_writes, y.shared_writes) << "node " << n;
    EXPECT_EQ(x.read_faults, y.read_faults) << "node " << n;
    EXPECT_EQ(x.write_faults, y.write_faults) << "node " << n;
    EXPECT_EQ(x.local_faults, y.local_faults) << "node " << n;
    EXPECT_EQ(x.msgs_sent, y.msgs_sent) << "node " << n;
    EXPECT_EQ(x.bytes_sent, y.bytes_sent) << "node " << n;
    EXPECT_EQ(x.presend_blocks_sent, y.presend_blocks_sent) << "node " << n;
    EXPECT_EQ(x.presend_blocks_received, y.presend_blocks_received)
        << "node " << n;
    EXPECT_EQ(x.presend_msgs, y.presend_msgs) << "node " << n;
    EXPECT_EQ(x.schedule_entries, y.schedule_entries) << "node " << n;
    if (compare_timing) {
      EXPECT_EQ(x.remote_wait, y.remote_wait) << "node " << n;
      EXPECT_EQ(x.presend, y.presend) << "node " << n;
      EXPECT_EQ(x.barrier_wait, y.barrier_wait) << "node " << n;
      EXPECT_EQ(x.lock_wait, y.lock_wait) << "node " << n;
      EXPECT_EQ(x.finish, y.finish) << "node " << n;
    }
  }
}

TEST(Determinism, StacheRepeatedRunsIdentical) {
  const auto a = testutil::run_micro_workload(runtime::ProtocolKind::kStache);
  const auto b = testutil::run_micro_workload(runtime::ProtocolKind::kStache);
  expect_identical(a, b, /*compare_timing=*/true);
}

TEST(Determinism, PredictiveRepeatedRunsIdentical) {
  const auto a =
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive);
  const auto b =
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive);
  expect_identical(a, b, /*compare_timing=*/true);
}

TEST(Determinism, QuantumFloorDoesNotChangeResults) {
  const auto exact =
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive,
                                   /*quantum_floor=*/0);
  const auto coarse =
      testutil::run_micro_workload(runtime::ProtocolKind::kPredictive,
                                   sim::microseconds(200));
  expect_identical(exact, coarse, /*compare_timing=*/false);
}

TEST(Determinism, QuantumFloorDoesNotChangeStacheResults) {
  const auto exact = testutil::run_micro_workload(
      runtime::ProtocolKind::kStache, /*quantum_floor=*/0);
  const auto coarse = testutil::run_micro_workload(
      runtime::ProtocolKind::kStache, sim::microseconds(200));
  expect_identical(exact, coarse, /*compare_timing=*/false);
}

}  // namespace
