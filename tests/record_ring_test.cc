// Direct unit tests for net::RecordRing — the allocation-free record queue
// under both the network channels and the protocol dispatch queues. The
// interesting paths are the ones steady-state traffic rarely exercises: the
// compaction branch (long-lived non-empty queue with a large dead prefix),
// two-span push reassembly, front-pointer validity across pops, and the
// drain-rewind that makes steady state allocation-free.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "net/record_ring.h"
#include "util/rng.h"

namespace presto::net {
namespace {

std::string rec_str(const RecordRing& ring) {
  std::size_t len;
  const std::byte* p = ring.front(&len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

std::string bytes(char c, std::size_t n) { return std::string(n, c); }

TEST(RecordRing, TwoSpanPushReassemblesContiguously) {
  RecordRing ring;
  const std::string head = "header--", pay = "payload-bytes";
  ring.push(head.data(), head.size(), pay.data(), pay.size());
  EXPECT_EQ(rec_str(ring), head + pay);

  // Either span may be empty.
  ring.push(head.data(), head.size(), nullptr, 0);
  ring.push(nullptr, 0, pay.data(), pay.size());
  ring.push(nullptr, 0, nullptr, 0);  // zero-length record is legal
  ring.pop();
  EXPECT_EQ(rec_str(ring), head);
  ring.pop();
  EXPECT_EQ(rec_str(ring), pay);
  ring.pop();
  std::size_t len = 99;
  ring.front(&len);
  EXPECT_EQ(len, 0u);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

TEST(RecordRing, FrontPointerSurvivesPop) {
  // The delivery path pops the record *before* handling it (so the handler
  // can push to the same ring); the contract is that pop() never moves
  // bytes, so the popped record stays readable until the next push().
  RecordRing ring;
  const std::string a = "first-record", b = "second-record";
  ring.push(a.data(), a.size(), nullptr, 0);
  ring.push(b.data(), b.size(), nullptr, 0);

  std::size_t len_a;
  const std::byte* pa = ring.front(&len_a);
  ring.pop();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(pa), len_a), a);

  std::size_t len_b;
  const std::byte* pb = ring.front(&len_b);
  ring.pop();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(pb), len_b), b);
}

TEST(RecordRing, DrainRewindReusesTheArena) {
  // Once the queue drains, the arena rewinds to offset zero: the next push
  // lands at the same address, no allocation growth in steady state.
  RecordRing ring;
  const std::string r1 = bytes('x', 64);
  ring.push(r1.data(), r1.size(), nullptr, 0);
  std::size_t len;
  const std::byte* first_addr = ring.front(&len);
  ring.pop();
  ASSERT_TRUE(ring.empty());

  for (int i = 0; i < 1000; ++i) {
    const std::string r = bytes(static_cast<char>('a' + i % 26), 64);
    ring.push(r.data(), r.size(), nullptr, 0);
    EXPECT_EQ(ring.front(&len), first_addr) << "arena did not rewind, i=" << i;
    EXPECT_EQ(rec_str(ring), r);
    ring.pop();
    ASSERT_TRUE(ring.empty());
  }
}

TEST(RecordRing, CompactionTriggersOnLargeDeadPrefix) {
  // Build a dead prefix > 4096 bytes in front of fewer live bytes, then
  // push: the branch head_ > 4096 && head_ > size - head_ must compact and
  // preserve the live records exactly.
  RecordRing ring;
  const std::string big = bytes('B', 5000);
  const std::string live1 = bytes('1', 100), live2 = bytes('2', 100);
  ring.push(big.data(), big.size(), nullptr, 0);
  ring.push(live1.data(), live1.size(), nullptr, 0);
  ring.pop();  // dead prefix: 5004 bytes; live: 104 — compaction is armed

  ring.push(live2.data(), live2.size(), nullptr, 0);  // compacts here
  EXPECT_EQ(rec_str(ring), live1);
  ring.pop();
  EXPECT_EQ(rec_str(ring), live2);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

TEST(RecordRing, NoCompactionWhileLiveOutweighsDead) {
  // Mirror case: dead prefix > 4096 but MORE live bytes behind it — the
  // push must not compact (front pointer stays put; vector may still grow,
  // so pin capacity first by pushing/draining a large record).
  RecordRing ring;
  const std::string warm = bytes('w', 20000);
  ring.push(warm.data(), warm.size(), nullptr, 0);
  ring.pop();  // empty -> rewind; capacity now ample, no reallocation below

  const std::string dead = bytes('D', 4200);
  const std::string live = bytes('L', 8000);
  const std::string tail = bytes('t', 16);
  ring.push(dead.data(), dead.size(), nullptr, 0);
  ring.push(live.data(), live.size(), nullptr, 0);
  ring.pop();  // dead: 4204 > 4096, live: 8004 > dead — keep in place

  std::size_t len;
  const std::byte* before = ring.front(&len);
  ring.push(tail.data(), tail.size(), nullptr, 0);
  EXPECT_EQ(ring.front(&len), before) << "compacted despite live > dead";
  EXPECT_EQ(rec_str(ring), live);
  ring.pop();
  EXPECT_EQ(rec_str(ring), tail);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

// Seeded churn with a live queue crossing the compaction threshold many
// times; every popped record must match a reference std::deque bytewise.
TEST(RecordRing, RandomizedChurnMatchesReference) {
  util::Rng rng(20260806);
  RecordRing ring;
  std::deque<std::string> ref;
  std::uint64_t pushed = 0;
  for (int step = 0; step < 20000; ++step) {
    const bool do_push = ref.empty() || rng.next_below_unbiased(3) != 0;
    if (do_push) {
      const std::size_t a = rng.next_below_unbiased(48);
      const std::size_t b = rng.next_below_unbiased(200);
      std::string rec;
      rec.reserve(a + b);
      for (std::size_t i = 0; i < a + b; ++i)
        rec.push_back(static_cast<char>('A' + (pushed + i) % 53));
      ring.push(rec.data(), a, rec.data() + a, b);
      ref.push_back(std::move(rec));
      ++pushed;
    } else {
      ASSERT_FALSE(ring.empty());
      ASSERT_EQ(rec_str(ring), ref.front());
      ring.pop();
      ref.pop_front();
    }
  }
  while (!ref.empty()) {
    ASSERT_EQ(rec_str(ring), ref.front());
    ring.pop();
    ref.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace presto::net
