// Shared-lock tests, including a regression for a home-queue starvation bug:
// a dequeued pending request must not be overtaken by requests arriving in
// the handler-occupancy gap, or spinning acquirers starve the releaser.
#include <gtest/gtest.h>

#include "runtime/lock.h"
#include "runtime/system.h"

namespace presto::runtime {
namespace {

MachineConfig tiny(int nodes) { return MachineConfig::cm5_blizzard(nodes, 32); }

class LockContention : public ::testing::TestWithParam<int> {};

TEST_P(LockContention, MutualExclusionAndProgress) {
  const int nodes = GetParam();
  System sys(tiny(nodes), ProtocolKind::kStache);
  auto lock = SharedLock::create(sys.space(), 0);
  const auto counter = sys.space().alloc_on_node(0, 64);
  const int rounds = 4;
  sys.run([&](NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) {
      lock.acquire(c);
      // Critical section: non-atomic read-modify-write over two accesses;
      // mutual exclusion violations lose increments.
      const auto v = c.read<std::uint64_t>(counter);
      c.charge(sim::microseconds(3));
      c.write<std::uint64_t>(counter, v + 1);
      lock.release(c);
    }
    c.barrier();
    if (c.id() == 0)
      EXPECT_EQ(c.read<std::uint64_t>(counter),
                static_cast<std::uint64_t>(nodes * rounds));
  });
}

// 16+ nodes is the regression case: before the fix, spinners re-queued at
// the tail while fresh requests jumped the queue, so the releaser's upgrade
// request starved and the run never terminated.
INSTANTIATE_TEST_SUITE_P(Nodes, LockContention,
                         ::testing::Values(2, 4, 8, 16, 24),
                         ::testing::PrintToStringParamName());

TEST(SharedLock, UncontendedAcquireIsCheap) {
  System sys(tiny(2), ProtocolKind::kStache);
  auto lock = SharedLock::create(sys.space(), 0);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 0) {
      lock.acquire(c);
      lock.release(c);
      lock.acquire(c);  // home-local reacquire: no protocol traffic
      lock.release(c);
    }
    c.barrier();
  });
  EXPECT_EQ(sys.recorder().node(0).lock_wait, 0);
}

TEST(SharedLock, HandoffMovesOwnership) {
  System sys(tiny(3), ProtocolKind::kStache);
  auto lock = SharedLock::create(sys.space(), 0);
  const auto word = sys.space().alloc_on_node(1, 64);
  sys.run([&](NodeCtx& c) {
    for (int turn = 0; turn < 3; ++turn) {
      if (c.id() == turn) {
        lock.acquire(c);
        c.write<int>(word, turn);
        lock.release(c);
      }
      c.barrier();
      EXPECT_EQ(c.read<int>(word), turn);
      c.barrier();
    }
  });
}

}  // namespace
}  // namespace presto::runtime
