// Compiler tests: lexer, parser, access-pattern analysis (§4.2), the
// reaching-unstructured-accesses dataflow and directive placement with
// hoisting/coalescing (§4.3), including the paper's Figure 2–4 programs.
#include <gtest/gtest.h>

#include "cstar/compiler.h"
#include "cstar/lexer.h"
#include "cstar/parser.h"
#include "cstar/printer.h"
#include "cstar/samples.h"

namespace presto::cstar {
namespace {

std::vector<Token> lex(const std::string& src) {
  Lexer l(src);
  auto toks = l.tokenize();
  EXPECT_TRUE(l.errors().empty()) << l.errors().front();
  return toks;
}

TEST(Lexer, TokenizesOperatorsAndHashIndices) {
  auto toks = lex("a(#0, #1) += 2.5 * b; // comment\n c <= d && e");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], Tok::kIdent);
  EXPECT_EQ(kinds[1], Tok::kLParen);
  EXPECT_EQ(kinds[2], Tok::kHashIndex);
  EXPECT_EQ(toks[2].value, 0);
  EXPECT_EQ(kinds[4], Tok::kHashIndex);
  EXPECT_EQ(toks[4].value, 1);
  EXPECT_EQ(kinds[6], Tok::kPlusAssign);
  EXPECT_EQ(toks[7].text, "2.5");
  EXPECT_EQ(kinds[11], Tok::kIdent);  // 'c' (comment skipped)
  EXPECT_EQ(kinds[12], Tok::kLe);
  EXPECT_EQ(kinds[14], Tok::kAndAnd);
}

TEST(Lexer, SkipsBlockCommentsAndTracksKeywords) {
  auto toks = lex("aggregate /* x */ float parallel for while if");
  EXPECT_EQ(toks[0].kind, Tok::kAggregate);
  EXPECT_EQ(toks[1].kind, Tok::kFloat);
  EXPECT_EQ(toks[2].kind, Tok::kParallel);
  EXPECT_EQ(toks[3].kind, Tok::kFor);
  EXPECT_EQ(toks[4].kind, Tok::kWhile);
  EXPECT_EQ(toks[5].kind, Tok::kIf);
}

TEST(Lexer, ReportsBadCharacters) {
  Lexer l("a @ b");
  l.tokenize();
  ASSERT_EQ(l.errors().size(), 1u);
  EXPECT_NE(l.errors()[0].find("unexpected character"), std::string::npos);
}

std::unique_ptr<Program> parse_ok(const std::string& src) {
  Parser p(lex(src));
  auto prog = p.parse();
  EXPECT_TRUE(p.errors().empty()) << p.errors().front();
  return prog;
}

TEST(Parser, AggregateDeclarations) {
  auto prog = parse_ok("aggregate float Grid[][];\naggregate Cell Tree[];");
  ASSERT_EQ(prog->aggregates.size(), 2u);
  EXPECT_EQ(prog->aggregates[0].name, "Grid");
  EXPECT_EQ(prog->aggregates[0].dims, 2);
  EXPECT_EQ(prog->aggregates[0].elem_type, "float");
  EXPECT_EQ(prog->aggregates[1].dims, 1);
}

TEST(Parser, ParallelFunctionAndParams) {
  auto prog = parse_ok(
      "aggregate float Grid[][];\n"
      "parallel void f(parallel Grid g, Grid other, int k) { }");
  ASSERT_EQ(prog->functions.size(), 1u);
  const auto& f = prog->functions[0];
  EXPECT_TRUE(f.parallel);
  ASSERT_EQ(f.params.size(), 3u);
  EXPECT_TRUE(f.params[0].parallel);
  EXPECT_FALSE(f.params[1].parallel);
  EXPECT_EQ(f.params[2].type, "int");
}

TEST(Parser, PrecedenceAndAssociativity) {
  auto prog = parse_ok("void main() { x = 1 + 2 * 3 - 4; }");
  const std::string printed = print_function(prog->functions[0]);
  EXPECT_NE(printed.find("((1 + (2 * 3)) - 4)"), std::string::npos);
}

TEST(Parser, MemberIndexChains) {
  auto prog =
      parse_ok("void main() { d(p(0).edges[e].row).value += 1; }");
  const std::string printed = print_function(prog->functions[0]);
  EXPECT_NE(printed.find("d(p(0).edges[e].row).value += 1"),
            std::string::npos);
}

TEST(Parser, ControlFlowRoundTrip) {
  auto prog = parse_ok(
      "void main() {\n"
      "  for (int i = 0; i < 10; i = i + 1) {\n"
      "    if (i % 2 == 0) work(i); else rest(i);\n"
      "    while (i > 5) i = i - 1;\n"
      "  }\n"
      "}");
  const std::string printed = print_function(prog->functions[0]);
  EXPECT_NE(printed.find("for (int i = 0;"), std::string::npos);
  EXPECT_NE(printed.find("while ((i > 5))"), std::string::npos);
  EXPECT_NE(printed.find("else"), std::string::npos);
}

TEST(Parser, ReportsMissingSemicolon) {
  Parser p(lex("void main() { x = 1 }"));
  p.parse();
  EXPECT_FALSE(p.errors().empty());
}

// ---- Access analysis (§4.2) -------------------------------------------------

TEST(AccessAnalysis, StencilSummaryMatchesPaper) {
  auto prog = parse_ok(samples::kStencil);
  AccessAnalysis a(*prog);
  EXPECT_TRUE(a.errors().empty());
  const AccessSummary* s = a.summary("compute");
  ASSERT_NE(s, nullptr);
  // cur(#0,#1) written at the own position: home write.
  ASSERT_TRUE(s->param_bits.count(0));
  EXPECT_EQ(s->param_bits.at(0), kHomeWrite);
  // prev read at neighbour offsets: unstructured (non-home) reads.
  ASSERT_TRUE(s->param_bits.count(1));
  EXPECT_EQ(s->param_bits.at(1), kRemoteRead);
}

TEST(AccessAnalysis, UnstructuredMeshSummaryMatchesPaper) {
  auto prog = parse_ok(samples::kUnstructuredMesh);
  AccessAnalysis a(*prog);
  const AccessSummary* s = a.summary("update");
  ASSERT_NE(s, nullptr);
  // Paper: (primal, Write access, Home) — compound += is read+write.
  EXPECT_EQ(s->param_bits.at(0) & kHomeWrite, kHomeWrite);
  EXPECT_FALSE(has_remote(s->param_bits.at(0)));
  // (dual, Read access, Non-Home) through the indirection.
  EXPECT_EQ(s->param_bits.at(1), kRemoteRead);
}

TEST(AccessAnalysis, CompoundAssignIsReadAndWrite) {
  auto prog = parse_ok(
      "aggregate float G[];\nG g;\n"
      "parallel void f(parallel G x) { x(#0) += 1; }\n"
      "void main() { f(g); }");
  AccessAnalysis a(*prog);
  EXPECT_EQ(a.summary("f")->param_bits.at(0), kHomeRead | kHomeWrite);
}

TEST(AccessAnalysis, NonIdentityIndexIsRemote) {
  auto prog = parse_ok(
      "aggregate float G[][];\nG g;\n"
      "parallel void f(parallel G x) { x(#1, #0) = 1; }\n"
      "void main() { f(g); }");
  AccessAnalysis a(*prog);
  // Transposed index: not the own element, conservatively unstructured.
  EXPECT_EQ(a.summary("f")->param_bits.at(0), kRemoteWrite);
}

TEST(AccessAnalysis, ResolvesCallArgumentsToInstances) {
  auto prog = parse_ok(samples::kStencil);
  AccessAnalysis a(*prog);
  // Find the two calls in main.
  const FuncDecl* mn = prog->find_function("main");
  ASSERT_NE(mn, nullptr);
  const Stmt& loop = *mn->body->body[0];
  const Expr& call1 = *loop.loop_body->body[0]->expr;  // compute(a, b)
  auto bits = a.resolve_call(call1);
  EXPECT_EQ(bits.at("a"), kHomeWrite);
  EXPECT_EQ(bits.at("b"), kRemoteRead);
}

// ---- Dataflow + placement (§4.3) ---------------------------------------------

TEST(Compiler, StencilPlacesDirectiveOnEveryCall) {
  auto r = compile(samples::kStencil);
  ASSERT_TRUE(r.ok()) << r.errors.front();
  // Both compute() calls have unstructured reads (rule 2): each needs a
  // schedule; they do not coalesce because neither is home-only.
  EXPECT_EQ(r.placement.calls_needing_schedule, 2);
  EXPECT_EQ(r.placement.directives.size(), 2u);
  EXPECT_NE(r.annotated.find("__schedule_phase(1);"), std::string::npos);
  EXPECT_NE(r.annotated.find("__schedule_phase(2);"), std::string::npos);
}

TEST(Compiler, BarnesMainMatchesFigure4) {
  auto r = compile(samples::kBarnesMain);
  ASSERT_TRUE(r.ok()) << r.errors.front();
  // Four phases (Fig. 4b): build, hoisted center-of-mass, forces, update.
  ASSERT_EQ(r.placement.directives.size(), 4u);
  // The center-of-mass directive was hoisted out of the level loop: a
  // single directive for that phase.
  const auto& com = r.placement.directives[1];
  EXPECT_TRUE(com.hoisted);
  EXPECT_NE(com.reason.find("hoisted"), std::string::npos);
  // The update phase exists because its owner writes are reached by the
  // force phase's unstructured reads (rule 1).
  const auto& upd = r.placement.directives[3];
  EXPECT_NE(upd.reason.find("owner writes"), std::string::npos);
  EXPECT_NE(upd.reason.find("reached by unstructured"), std::string::npos);
  // Printed annotation shows the hoisted directive before the loop.
  const auto pos_phase2 = r.annotated.find("__schedule_phase(2);");
  const auto pos_loop = r.annotated.find("for (int l = 0;");
  ASSERT_NE(pos_phase2, std::string::npos);
  ASSERT_NE(pos_loop, std::string::npos);
  EXPECT_LT(pos_phase2, pos_loop);
}

TEST(Compiler, HomeOnlyProgramNeedsNoDirectives) {
  auto r = compile(
      "aggregate float G[];\nG g;\n"
      "parallel void init(parallel G x) { x(#0) = 1; }\n"
      "void main() { for (int i = 0; i < 3; i = i + 1) { init(g); } }");
  ASSERT_TRUE(r.ok());
  // Owner writes never reached by unstructured accesses: no schedules.
  EXPECT_TRUE(r.placement.directives.empty());
}

TEST(Compiler, OwnerWriteKillsReachingAccesses) {
  // read-remote then owner-write then owner-write: only the first owner
  // write is reached by the unstructured read.
  auto r = compile(
      "aggregate float G[];\nG g;\n"
      "parallel void readr(parallel G x, G y) { x(#0) = y(#0 + 1); }\n"
      "parallel void wown(parallel G x) { x(#0) = 0; }\n"
      "void main() {\n"
      "  readr(g, g);\n"
      "  wown(g);\n"
      "  wown(g);\n"
      "}");
  ASSERT_TRUE(r.ok());
  // readr: rule 2. First wown: rule 1 (coalesced or not). Second wown: the
  // first wown killed the reaching bit, so it needs nothing.
  ASSERT_GE(r.placement.calls_needing_schedule, 2);
  EXPECT_EQ(r.placement.calls_needing_schedule, 2);
}

TEST(Compiler, AnyPathJoinIsConservative) {
  // The unstructured read happens only on one branch; the owner write after
  // the join must still be treated as reached (any-path union).
  auto r = compile(
      "aggregate float G[];\nG g;\n"
      "parallel void readr(parallel G x, G y) { x(#0) = y(#0 + 1); }\n"
      "parallel void wown(parallel G x) { x(#0) = 0; }\n"
      "void main() {\n"
      "  int k = 1;\n"
      "  if (k) { readr(g, g); }\n"
      "  wown(g);\n"
      "}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.placement.calls_needing_schedule, 2);
}

TEST(Compiler, LoopBackEdgePropagatesAccesses) {
  // The unstructured read at the loop tail reaches the owner write at the
  // head of the next iteration through the back edge.
  auto r = compile(
      "aggregate float G[];\nG g;\n"
      "parallel void readr(parallel G x, G y) { x(#0) = y(#0 + 1); }\n"
      "parallel void wown(parallel G x) { x(#0) = 0; }\n"
      "void main() {\n"
      "  for (int i = 0; i < 5; i = i + 1) {\n"
      "    wown(g);\n"
      "    readr(g, g);\n"
      "  }\n"
      "}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.placement.calls_needing_schedule, 2);
}

TEST(Compiler, CoalescesAdjacentHomeOnlyPhases) {
  // Two consecutive owner-write phases (both rule 1, both home-only) merge
  // into one directive; the unstructured phase keeps its own (merging a
  // home-write phase into it would create schedule conflicts).
  auto r = compile(
      "aggregate float G[];\nG g;\nG h;\nG s1;\nG s2;\n"
      "parallel void scan(parallel G x, G y) { x(#0) = y(#0 + 1); }\n"
      "parallel void wown(parallel G x) { x(#0) = 0; }\n"
      "void main() {\n"
      "  for (int i = 0; i < 5; i = i + 1) {\n"
      "    scan(s1, g);\n"
      "    scan(s2, h);\n"
      "    wown(g);\n"
      "    wown(h);\n"
      "  }\n"
      "}");
  ASSERT_TRUE(r.ok());
  // Both readr calls (rule 2) and both wown calls (rule 1) need schedules;
  // the adjacent home-only wown phases coalesce into one directive.
  EXPECT_EQ(r.placement.calls_needing_schedule, 4);
  ASSERT_EQ(r.placement.directives.size(), 3u);
  EXPECT_NE(r.placement.directives[2].reason.find("coalesced"),
            std::string::npos);
}

TEST(Compiler, CfgAnnotationsShowAccessLists) {
  auto r = compile(samples::kBarnesMain);
  ASSERT_TRUE(r.ok());
  const std::string cfg = r.cfg.to_string();
  EXPECT_NE(cfg.find("build_tree(...)"), std::string::npos);
  EXPECT_NE(cfg.find("unstructured-read"), std::string::npos);
  EXPECT_NE(cfg.find("home-write"), std::string::npos);
}

TEST(Compiler, DataflowConvergesOnNestedLoops) {
  auto r = compile(
      "aggregate float G[];\nG g;\n"
      "parallel void readr(parallel G x, G y) { x(#0) = y(#0 + 1); }\n"
      "void main() {\n"
      "  for (int i = 0; i < 5; i = i + 1) {\n"
      "    for (int j = 0; j < 5; j = j + 1) {\n"
      "      if (j % 2) { readr(g, g); }\n"
      "    }\n"
      "  }\n"
      "}");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.flow.iterations, 0);
  EXPECT_EQ(r.placement.directives.size(), 1u);
}

TEST(Compiler, MissingMainIsAnError) {
  auto r = compile("aggregate float G[];\nG g;\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors.front().find("main"), std::string::npos);
}

TEST(Compiler, UnstructuredMeshProgramGetsPerCallDirectives) {
  auto r = compile(samples::kUnstructuredMesh);
  ASSERT_TRUE(r.ok()) << r.errors.front();
  // Both update() calls include unstructured accesses (rule 2).
  EXPECT_EQ(r.placement.directives.size(), 2u);
  EXPECT_FALSE(r.placement.directives[0].hoisted);
}

}  // namespace
}  // namespace presto::cstar
