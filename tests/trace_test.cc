// Golden-trace tier: pinned digests of the canonical event stream across
// every protocol × coherence block size, byte-identical streams across the
// fiber and thread backends, and the zero-perturbation guarantee — a traced
// run's simulated results are bit-identical to an untraced run's.
//
// The digest (event count by kind + FNV-1a over the canonical seq-merged
// stream) freezes the *observed* behavior the tracer reports: any change to
// hook placement, event layout, or the simulated execution itself trips
// here. Pins were captured from the implementation that introduced the
// tracer; on an intentional change, rerun and paste the ACTUAL rows.
#include <gtest/gtest.h>

#include <cstring>

#include "golden_workload.h"
#include "trace/file.h"

using namespace presto;

namespace {

using runtime::ProtocolKind;
using testutil::run_micro_workload;
using testutil::WorkloadResult;

WorkloadResult traced_run(ProtocolKind kind, std::uint32_t block_size,
                          sim::Backend backend = sim::default_backend()) {
  return run_micro_workload(kind, /*quantum_floor=*/0, /*nodes=*/4,
                            /*rounds=*/6, backend, block_size,
                            /*traced=*/true);
}

const char* kind_id(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kStache: return "kStache";
    case ProtocolKind::kPredictive: return "kPredictive";
    case ProtocolKind::kPredictiveAnticipate: return "kPredictiveAnticipate";
    case ProtocolKind::kWriteUpdate: return "kWriteUpdate";
    case ProtocolKind::kCCached: return "kCCached";
  }
  return "?";
}

struct TraceGolden {
  ProtocolKind kind;
  std::uint32_t block_size;
  std::uint64_t events;
  std::uint64_t hash;
};

TEST(GoldenTrace, ProtocolBlockSizeMatrix) {
  const TraceGolden table[] = {
      {ProtocolKind::kStache, 32, 32886ull, 162990686239271016ull},
      {ProtocolKind::kStache, 128, 9095ull, 13729410509484923606ull},
      {ProtocolKind::kStache, 1024, 2409ull, 8552695599676855083ull},
      {ProtocolKind::kPredictive, 32, 32789ull, 13108518364455192872ull},
      {ProtocolKind::kPredictive, 128, 9198ull, 10688891073784013073ull},
      {ProtocolKind::kPredictive, 1024, 2548ull, 8821779448576957018ull},
      {ProtocolKind::kPredictiveAnticipate, 32, 32021ull,
       18352635417309103506ull},
      {ProtocolKind::kPredictiveAnticipate, 128, 9009ull,
       15447177008573110231ull},
      {ProtocolKind::kPredictiveAnticipate, 1024, 2548ull,
       8821779448576957018ull},
      {ProtocolKind::kWriteUpdate, 32, 28215ull, 1370948740937214943ull},
      {ProtocolKind::kWriteUpdate, 128, 7674ull, 15265046264242563208ull},
      {ProtocolKind::kWriteUpdate, 1024, 1689ull, 5235928189218007447ull},
      // No commutative regions here: ccached streams must equal Stache's.
      {ProtocolKind::kCCached, 32, 32886ull, 162990686239271016ull},
      {ProtocolKind::kCCached, 128, 9095ull, 13729410509484923606ull},
      {ProtocolKind::kCCached, 1024, 2409ull, 8552695599676855083ull},
  };
  for (const auto& g : table) {
    SCOPED_TRACE(std::string(runtime::protocol_kind_name(g.kind)) +
                 " bsz=" + std::to_string(g.block_size));
    const auto r = traced_run(g.kind, g.block_size);
    ASSERT_TRUE(r.traced);
    EXPECT_EQ(r.trace_summary.dropped, 0u);
    EXPECT_EQ(r.trace_digest.events, g.events);
    EXPECT_EQ(r.trace_digest.hash, g.hash);
    if (::testing::Test::HasFailure()) {
      std::printf("ACTUAL: {ProtocolKind::%s, %u, %lluull, %lluull},\n",
                  kind_id(g.kind), g.block_size,
                  (unsigned long long)r.trace_digest.events,
                  (unsigned long long)r.trace_digest.hash);
    }
  }
}

// The merge path's own stream: the cc micro workload under ccached pins the
// CcFlush/merge/quiesce event sequences across the block-size sweep.
TEST(GoldenTrace, CCachedReductionMatrix) {
  struct CcTraceGolden {
    std::uint32_t block_size;
    std::uint64_t events, hash;
  };
  const CcTraceGolden table[] = {
      {32, 45229ull, 15725342464231031464ull},
      {128, 40374ull, 7466565440510190254ull},
      {1024, 8896ull, 8264576188898585960ull},
  };
  for (const auto& g : table) {
    SCOPED_TRACE("bsz=" + std::to_string(g.block_size));
    const auto r = testutil::run_cc_micro_workload(
        ProtocolKind::kCCached, g.block_size, /*nodes=*/4, /*rounds=*/6,
        /*traced=*/true);
    ASSERT_TRUE(r.traced);
    EXPECT_EQ(r.trace_summary.dropped, 0u);
    EXPECT_EQ(r.trace_digest.events, g.events);
    EXPECT_EQ(r.trace_digest.hash, g.hash);
    if (::testing::Test::HasFailure()) {
      std::printf("ACTUAL: {%u, %lluull, %lluull},\n", g.block_size,
                  (unsigned long long)r.trace_digest.events,
                  (unsigned long long)r.trace_digest.hash);
    }
  }
}

// The digest is a faithful function of the canonical stream: the hash must
// equal FNV-1a over the serialized event bytes, and the by-kind counts must
// partition the total.
TEST(GoldenTrace, DigestMatchesCanonicalStream) {
  const auto r = traced_run(ProtocolKind::kPredictive, 32);
  ASSERT_TRUE(r.traced);
  EXPECT_EQ(r.trace_digest.events, r.trace_data.events.size());
  std::uint64_t h = trace::kFnvBasis;
  h = trace::fnv1a64(h, r.trace_data.events.data(),
                     r.trace_data.events.size() * sizeof(trace::Event));
  EXPECT_EQ(r.trace_digest.hash, h);
  std::uint64_t total = 0;
  for (const auto n : r.trace_digest.by_kind) total += n;
  EXPECT_EQ(total, r.trace_digest.events);
  // seq is a strict total order in the canonical stream.
  for (std::size_t i = 1; i < r.trace_data.events.size(); ++i)
    ASSERT_LT(r.trace_data.events[i - 1].seq, r.trace_data.events[i].seq);
}

// Fiber and thread backends execute the same event sequence, so the traces
// must be byte-identical — digests AND full serialized bytes.
class TraceBackendTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TraceBackendTest, BackendsByteIdentical) {
  const auto fiber = traced_run(GetParam(), 32, sim::Backend::kFiber);
  const auto thread = traced_run(GetParam(), 32, sim::Backend::kThread);
  ASSERT_TRUE(fiber.traced);
  ASSERT_TRUE(thread.traced);
  EXPECT_EQ(fiber.trace_digest, thread.trace_digest);
  const auto a = trace::serialize(fiber.trace_data);
  const auto b = trace::serialize(thread.trace_data);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TraceBackendTest,
    ::testing::ValuesIn(runtime::kAllProtocolKinds),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) -> std::string {
      return kind_id(info.param) + 1;  // strip the "k" prefix
    });

// Zero perturbation: attaching the tracer must not move a single simulated
// number. Every golden counter, the event count, exec time, and the final
// memory/tag hash of a traced run equal the untraced run's bit for bit.
class TracePurityTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TracePurityTest, TracedRunBitIdenticalToUntraced) {
  const auto plain = run_micro_workload(GetParam());
  const auto traced = run_micro_workload(GetParam(), /*quantum_floor=*/0,
                                         /*nodes=*/4, /*rounds=*/6,
                                         sim::default_backend(),
                                         /*block_size=*/32, /*traced=*/true);
  EXPECT_EQ(plain.msgs, traced.msgs);
  EXPECT_EQ(plain.bytes, traced.bytes);
  EXPECT_EQ(plain.events, traced.events);
  EXPECT_EQ(plain.exec, traced.exec);
  EXPECT_EQ(plain.mem_hash, traced.mem_hash);
  ASSERT_EQ(plain.counters.size(), traced.counters.size());
  for (std::size_t n = 0; n < plain.counters.size(); ++n) {
    SCOPED_TRACE("node " + std::to_string(n));
    const auto& a = plain.counters[n];
    const auto& b = traced.counters[n];
    EXPECT_EQ(a.remote_wait, b.remote_wait);
    EXPECT_EQ(a.presend, b.presend);
    EXPECT_EQ(a.barrier_wait, b.barrier_wait);
    EXPECT_EQ(a.lock_wait, b.lock_wait);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.shared_reads, b.shared_reads);
    EXPECT_EQ(a.shared_writes, b.shared_writes);
    EXPECT_EQ(a.read_faults, b.read_faults);
    EXPECT_EQ(a.write_faults, b.write_faults);
    EXPECT_EQ(a.msgs_sent, b.msgs_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.presend_blocks_sent, b.presend_blocks_sent);
    EXPECT_EQ(a.presend_blocks_received, b.presend_blocks_received);
    EXPECT_EQ(a.schedule_entries, b.schedule_entries);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TracePurityTest,
    ::testing::ValuesIn(runtime::kAllProtocolKinds),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) -> std::string {
      return kind_id(info.param) + 1;  // strip the "k" prefix
    });

// Category filters drop whole kinds but must not perturb or reorder what
// remains: a miss,msg-filtered trace holds exactly the full trace's events
// of those kinds, in the same relative order (same per-kind counts; the
// stream itself is a subsequence so its per-kind hashes cannot be compared
// directly — seq values differ — but counts pin the selection).
TEST(TraceFilter, CategorySubsetOfFullStream) {
  const std::uint32_t cats = trace::kCatMiss | trace::kCatMsg;
  // The canonical CLI spec form parses to the same mask.
  const auto spec = trace::TraceConfig::from_spec("x.ptrc:miss,msg");
  EXPECT_EQ(spec.categories, cats);
  EXPECT_EQ(spec.path, "x.ptrc");
  EXPECT_TRUE(spec.enabled);

  const auto full = traced_run(ProtocolKind::kPredictive, 32);
  const auto filtered = run_micro_workload(
      ProtocolKind::kPredictive, /*quantum_floor=*/0, /*nodes=*/4,
      /*rounds=*/6, sim::default_backend(), /*block_size=*/32,
      /*traced=*/true, cats);
  ASSERT_TRUE(filtered.traced);
  std::uint64_t expect = 0;
  for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    const bool kept = (trace::event_kind_category(kind) & cats) != 0;
    if (kept) expect += full.trace_digest.by_kind[k];
    EXPECT_EQ(filtered.trace_digest.by_kind[k],
              kept ? full.trace_digest.by_kind[k] : 0u)
        << trace::event_kind_name(kind);
  }
  EXPECT_GT(expect, 0u);
  EXPECT_EQ(filtered.trace_digest.events, expect);
  // Filtering must not perturb the simulation either.
  EXPECT_EQ(filtered.exec, full.exec);
  EXPECT_EQ(filtered.mem_hash, full.mem_hash);
}

// Every kind and class has a real name; every category name round-trips
// through the CLI parser. These tables feed the reports and the --trace
// filter, so a hole is a user-visible "?".
TEST(TraceNames, TablesAreTotalAndRoundTrip) {
  for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    EXPECT_STRNE(trace::event_kind_name(kind), "?");
    const auto cat = trace::event_kind_category(kind);
    EXPECT_NE(cat & trace::kCatAll, 0u) << trace::event_kind_name(kind);
  }
  for (const auto c :
       {trace::kCatPhase, trace::kCatBarrier, trace::kCatLock,
        trace::kCatMiss, trace::kCatMsg, trace::kCatData, trace::kCatSim,
        trace::kCatAll}) {
    const char* name = trace::category_name(c);
    EXPECT_STRNE(name, "?");
    EXPECT_EQ(trace::category_from_name(name), static_cast<std::uint32_t>(c));
  }
  EXPECT_EQ(trace::category_from_name("no-such-category"), 0u);
  for (std::size_t c = 0; c < trace::kNumMissClasses; ++c)
    EXPECT_STRNE(trace::miss_class_name(static_cast<trace::MissClass>(c)),
                 "?");

  // Spec forms: empty = disabled; bare file = all categories.
  const auto off = trace::TraceConfig::from_spec("");
  EXPECT_FALSE(off.enabled);
  const auto all = trace::TraceConfig::from_spec("t.json");
  EXPECT_TRUE(all.enabled);
  EXPECT_EQ(all.categories, static_cast<std::uint32_t>(trace::kCatAll));
  const auto some = trace::TraceConfig::from_spec("t:phase,barrier,lock,sim");
  EXPECT_EQ(some.categories,
            trace::kCatPhase | trace::kCatBarrier | trace::kCatLock |
                trace::kCatSim);
}

}  // namespace
