// Parallel-equivalence tier: the windowed engine's central guarantee is that
// the conservative-window canon is a function of (workload, machine, window)
// only — never of the backend driving it or how lanes are partitioned over
// workers. These tests prove it bit-identically, three ways:
//
//   * golden matrix — fiber-windowed results (messages, exec, memory image,
//     trace digest) pinned for all four protocols at three block sizes, so
//     the windowed canon itself cannot drift silently;
//   * worker sweep — Backend::kParallel at workers {1, 2, 4, 7, hw} must
//     reproduce the serial fiber-windowed run exactly: every per-node
//     counter, message totals, exec time, final memory hash, and the full
//     trace digest (equal digests => byte-identical canonical streams);
//   * randomized soak — 20 runs with PRNG-drawn worker counts, every one
//     digest-identical to the reference.
//
// Plus the negative control: a planted conservative-PDES bug (a mailbox
// flush held past its window boundary, check/bughook.h) must make the
// differential fail — proving this tier can actually catch the class of bug
// it exists for.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/ranker/ranker.h"
#include "check/bughook.h"
#include "runtime/machine.h"
#include "golden_workload.h"

namespace presto {
namespace {

using runtime::ProtocolKind;
using testutil::run_micro_workload;
using testutil::WorkloadResult;

constexpr sim::Time kWindow = sim::microseconds(30);  // = cm5 wire latency

WorkloadResult run_serial_windowed(ProtocolKind kind,
                                   std::uint32_t block_size) {
  return run_micro_workload(kind, /*quantum_floor=*/0, /*nodes=*/4,
                            /*rounds=*/6, sim::Backend::kFiber, block_size,
                            /*traced=*/true, trace::kCatAll, kWindow);
}

WorkloadResult run_parallel(ProtocolKind kind, std::uint32_t block_size,
                            int workers) {
  return run_micro_workload(kind, /*quantum_floor=*/0, /*nodes=*/4,
                            /*rounds=*/6, sim::Backend::kParallel, block_size,
                            /*traced=*/true, trace::kCatAll, kWindow,
                            workers);
}

void expect_equal(const stats::NodeCounters& a, const stats::NodeCounters& b,
                  int node) {
  SCOPED_TRACE("node " + std::to_string(node));
  EXPECT_EQ(a.remote_wait, b.remote_wait);
  EXPECT_EQ(a.presend, b.presend);
  EXPECT_EQ(a.barrier_wait, b.barrier_wait);
  EXPECT_EQ(a.lock_wait, b.lock_wait);
  EXPECT_EQ(a.finish, b.finish);
  EXPECT_EQ(a.shared_reads, b.shared_reads);
  EXPECT_EQ(a.shared_writes, b.shared_writes);
  EXPECT_EQ(a.read_faults, b.read_faults);
  EXPECT_EQ(a.write_faults, b.write_faults);
  EXPECT_EQ(a.local_faults, b.local_faults);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.presend_blocks_sent, b.presend_blocks_sent);
  EXPECT_EQ(a.presend_blocks_received, b.presend_blocks_received);
  EXPECT_EQ(a.presend_msgs, b.presend_msgs);
  EXPECT_EQ(a.schedule_entries, b.schedule_entries);
}

void expect_equal(const WorkloadResult& a, const WorkloadResult& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t n = 0; n < a.counters.size(); ++n)
    expect_equal(a.counters[n], b.counters[n], static_cast<int>(n));
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.mem_hash, b.mem_hash);
  ASSERT_TRUE(a.traced);
  ASSERT_TRUE(b.traced);
  EXPECT_EQ(a.trace_digest.events, b.trace_digest.events);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace_summary.events, b.trace_summary.events);
  EXPECT_EQ(a.trace_summary.misses, b.trace_summary.misses);
  EXPECT_EQ(a.trace_summary.presend_hits, b.trace_summary.presend_hits);
  EXPECT_EQ(a.trace_summary.presend_waste, b.trace_summary.presend_waste);
  EXPECT_EQ(a.trace_summary.presend_unused, b.trace_summary.presend_unused);
}

std::string protocol_suffix(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kStache: return "Stache";
    case ProtocolKind::kPredictive: return "Predictive";
    case ProtocolKind::kPredictiveAnticipate: return "PredictiveAnticipate";
    case ProtocolKind::kWriteUpdate: return "WriteUpdate";
    case ProtocolKind::kCCached: return "CCached";
  }
  return "Unknown";
}

// ---- Golden matrix ----------------------------------------------------------
// The windowed canon, frozen. These are NEW pins, deliberately distinct from
// the legacy single-lane canon in golden_stats_test.cc (node-order barrier
// reductions, window-granular message interleaving, boundary-stamped trace
// order); any drift here means windowed simulated behavior changed.

struct WindowedPin {
  ProtocolKind kind;
  std::uint32_t block_size;
  std::uint64_t msgs;
  std::uint64_t bytes;
  sim::Time exec;
  std::uint64_t mem_hash;
  std::uint64_t trace_events;
  std::uint64_t trace_hash;
};

// clang-format off
constexpr WindowedPin kWindowedPins[] = {
    // PINS_BEGIN (regenerate: tools snippet in docs/performance.md §9)
    {ProtocolKind::kStache, 32,
     6903ull, 196368ull, 249729320ull, 0xca0c1bb53c718353ull,
     32886ull, 0xd93535fc91dc9e95ull},
    {ProtocolKind::kStache, 128,
     1850ull, 121376ull, 72437540ull, 0x866298b9b64b055cull,
     9095ull, 0x05c13bd0bdb5cf92ull},
    {ProtocolKind::kStache, 1024,
     435ull, 166704ull, 26442760ull, 0x49217729eff53bcbull,
     2409ull, 0xc192915d833bf0abull},
    {ProtocolKind::kPredictive, 32,
     7022ull, 201984ull, 242737780ull, 0xca0c1bb53c718353ull,
     32789ull, 0x8e0cb79dd9aa7670ull},
    {ProtocolKind::kPredictive, 128,
     1869ull, 125008ull, 70348940ull, 0x866298b9b64b055cull,
     9198ull, 0x5a97c45ccc929e8aull},
    {ProtocolKind::kPredictive, 1024,
     434ull, 174880ull, 24588360ull, 0x49217729eff53bcbull,
     2548ull, 0x372b21fe5929608full},
    {ProtocolKind::kPredictiveAnticipate, 32,
     6962ull, 201024ull, 235095120ull, 0xca0c1bb53c718353ull,
     32021ull, 0x0f073de6e8eee894ull},
    {ProtocolKind::kPredictiveAnticipate, 128,
     1854ull, 124768ull, 68035140ull, 0x866298b9b64b055cull,
     9009ull, 0x70745259a23f1335ull},
    {ProtocolKind::kPredictiveAnticipate, 1024,
     434ull, 174880ull, 24588360ull, 0x49217729eff53bcbull,
     2548ull, 0x372b21fe5929608full},
    {ProtocolKind::kWriteUpdate, 32,
     6882ull, 230208ull, 102548520ull, 0x26dbeb6c5c315964ull,
     28215ull, 0x31d98da18533067eull},
    {ProtocolKind::kWriteUpdate, 128,
     1788ull, 155328ull, 29901120ull, 0xee6f490771d81fb7ull,
     7674ull, 0xd8df5dd313515d00ull},
    {ProtocolKind::kWriteUpdate, 1024,
     318ull, 192480ull, 11759960ull, 0xd723c7aca497fc16ull,
     1689ull, 0x0d1d0557112e81f3ull},
    // ccached under the windowed canon, no commutative regions: must equal
    // the Stache rows above exactly (same fallback-path identity the legacy
    // canon pins in golden_stats_test.cc).
    {ProtocolKind::kCCached, 32,
     6903ull, 196368ull, 249729320ull, 0xca0c1bb53c718353ull,
     32886ull, 0xd93535fc91dc9e95ull},
    {ProtocolKind::kCCached, 128,
     1850ull, 121376ull, 72437540ull, 0x866298b9b64b055cull,
     9095ull, 0x05c13bd0bdb5cf92ull},
    {ProtocolKind::kCCached, 1024,
     435ull, 166704ull, 26442760ull, 0x49217729eff53bcbull,
     2409ull, 0xc192915d833bf0abull},
    // PINS_END
};
// clang-format on

class WindowedGoldenMatrix : public ::testing::TestWithParam<WindowedPin> {};

TEST_P(WindowedGoldenMatrix, FiberWindowedPinned) {
  const WindowedPin& pin = GetParam();
  const WorkloadResult r = run_serial_windowed(pin.kind, pin.block_size);
  EXPECT_EQ(r.msgs, pin.msgs);
  EXPECT_EQ(r.bytes, pin.bytes);
  EXPECT_EQ(r.exec, pin.exec);
  EXPECT_EQ(r.mem_hash, pin.mem_hash);
  ASSERT_TRUE(r.traced);
  EXPECT_EQ(r.trace_digest.events, pin.trace_events);
  EXPECT_EQ(r.trace_digest.hash, pin.trace_hash);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllBlocks, WindowedGoldenMatrix,
    ::testing::ValuesIn(kWindowedPins),
    [](const ::testing::TestParamInfo<WindowedPin>& info) -> std::string {
      return protocol_suffix(info.param.kind) + "_b" +
             std::to_string(info.param.block_size);
    });

// ---- Worker sweep -----------------------------------------------------------

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ParallelEquivalenceTest, ParallelMatchesSerialAcrossWorkers) {
  const WorkloadResult serial = run_serial_windowed(GetParam(), 32);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  for (int workers : {1, 2, 4, 7, hw}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const WorkloadResult par = run_parallel(GetParam(), 32, workers);
    expect_equal(serial, par);
  }
}

// The thread backend's windowed drain (condvar lane handoff instead of fiber
// switches) must land on the same canon too: fiber ≡ thread ≡ parallel.
TEST_P(ParallelEquivalenceTest, ThreadWindowedMatchesFiberWindowed) {
  const WorkloadResult fiber = run_serial_windowed(GetParam(), 32);
  const WorkloadResult thread = run_micro_workload(
      GetParam(), /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/6,
      sim::Backend::kThread, 32, /*traced=*/true, trace::kCatAll, kWindow);
  expect_equal(fiber, thread);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ParallelEquivalenceTest,
    ::testing::ValuesIn(runtime::kAllProtocolKinds),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) -> std::string {
      return protocol_suffix(info.param);
    });

// The merge path under the worker pool: the cc micro workload's flush round
// trips and home-side merge quiescing must land on the serial windowed
// canon at every worker count — counters, merged image, flush stats and the
// full trace digest.
TEST(ParallelEquivalenceCCached, ReductionWorkloadMatchesSerialAcrossWorkers) {
  const WorkloadResult serial = testutil::run_cc_micro_workload(
      ProtocolKind::kCCached, 32, /*nodes=*/4, /*rounds=*/6, /*traced=*/true,
      sim::Backend::kFiber, kWindow);
  EXPECT_GT(serial.cc_flushes, 0u);
  for (int workers : {1, 2, 4, 7}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const WorkloadResult par = testutil::run_cc_micro_workload(
        ProtocolKind::kCCached, 32, /*nodes=*/4, /*rounds=*/6, /*traced=*/true,
        sim::Backend::kParallel, kWindow, workers);
    expect_equal(serial, par);
    EXPECT_EQ(serial.cc_flushes, par.cc_flushes);
    EXPECT_EQ(serial.cc_entries, par.cc_entries);
  }
}

// And at application level: ranker's drifting-graph push phase under ccached,
// serial fiber-windowed vs the worker pool.
TEST(ParallelEquivalenceRanker, CCachedChecksumAndReportBitIdentical) {
  apps::RankerParams params;
  params.vertices = 96;
  params.iters = 4;
  runtime::MachineConfig m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.window = kWindow;
  m.backend = sim::Backend::kFiber;
  const auto serial = apps::run_ranker(params, m, ProtocolKind::kCCached,
                                       false);
  EXPECT_GT(serial.report.cc_flushes, 0u);
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    m.backend = sim::Backend::kParallel;
    m.workers = workers;
    const auto par = apps::run_ranker(params, m, ProtocolKind::kCCached,
                                      false);
    EXPECT_EQ(serial.checksum, par.checksum);
    EXPECT_EQ(serial.report.exec, par.report.exec);
    EXPECT_EQ(serial.report.msgs, par.report.msgs);
    EXPECT_EQ(serial.report.bytes, par.report.bytes);
    EXPECT_EQ(serial.report.faults, par.report.faults);
    EXPECT_EQ(serial.report.cc_flushes, par.report.cc_flushes);
    EXPECT_EQ(serial.report.cc_entries, par.report.cc_entries);
  }
}

// ---- Randomized-worker soak -------------------------------------------------
// Twenty parallel runs with PRNG-drawn worker counts (seeded — the draw
// sequence is fixed, only the lane-to-worker partitioning varies), every one
// byte-identical to the serial reference. Rotates through the protocols so
// each gets soaked under several partitionings.

TEST(ParallelSoak, RandomWorkerCountsStayByteIdentical) {
  constexpr ProtocolKind kKinds[] = {
      ProtocolKind::kStache, ProtocolKind::kPredictive,
      ProtocolKind::kPredictiveAnticipate, ProtocolKind::kWriteUpdate};
  WorkloadResult refs[4];
  for (int k = 0; k < 4; ++k) refs[k] = run_serial_windowed(kKinds[k], 32);

  std::mt19937 rng(0xC0FFEEu);
  std::uniform_int_distribution<int> draw_workers(1, 8);
  for (int i = 0; i < 20; ++i) {
    const int k = i % 4;
    const int workers = draw_workers(rng);
    SCOPED_TRACE("iteration " + std::to_string(i) + " protocol " +
                 protocol_suffix(kKinds[k]) + " workers=" +
                 std::to_string(workers));
    const WorkloadResult par = run_parallel(kKinds[k], 32, workers);
    expect_equal(refs[k], par);
  }
}

// ---- Planted bug: the differential must catch it ----------------------------
// Holding one source's staged mailbox past its window boundary is exactly
// the bug class the conservative protocol exists to exclude. With the hook
// set, deliveries slip a window, so the run must diverge from the serial
// canon — if this test ever sees equal digests, the equivalence tier has
// lost its teeth.

struct ScopedBugHook {
  explicit ScopedBugHook(const char* name) : name_(name) {
    check::set_bug_hook(name, true);
  }
  ~ScopedBugHook() { check::set_bug_hook(name_, false); }
  const char* name_;
};

TEST(ParallelPlantedBug, DelayedWindowFlushIsCaught) {
  const WorkloadResult good = run_serial_windowed(ProtocolKind::kStache, 32);
  WorkloadResult bad;
  {
    ScopedBugHook hook("delay-window-flush");
    bad = run_parallel(ProtocolKind::kStache, 32, /*workers=*/2);
  }
  // The run completes (the engine's final boundary pass guarantees held
  // mailboxes still drain) but its canon differs.
  EXPECT_NE(good.trace_digest, bad.trace_digest);
  EXPECT_NE(good.exec, bad.exec);
  // And with the hook cleared the same configuration matches again, so the
  // divergence above is attributable to the planted bug alone.
  const WorkloadResult clean =
      run_parallel(ProtocolKind::kStache, 32, /*workers=*/2);
  expect_equal(good, clean);
}

}  // namespace
}  // namespace presto
