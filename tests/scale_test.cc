// Positive smoke tests above the historical 64-node ceiling: the hybrid
// NodeSet, chunked tag storage, and sparse channel tables let the same
// protocols run on 256+-node machines. These are correctness smokes, not
// goldens (the <= 64-node golden pins stay the bit-identity anchor); the
// wide-machine cost curves live in bench/scale_sweep.
#include <gtest/gtest.h>

#include <cstddef>

#include "mem/global_space.h"
#include "runtime/system.h"

namespace presto::runtime {
namespace {

MachineConfig wide(int nodes, std::uint32_t block = 32) {
  MachineConfig m = MachineConfig::cm5_blizzard(nodes, block);
  m.mem.page_size = 512;  // spread homes across many nodes
  return m;
}

std::size_t metadata_bytes(System& sys) {
  return sys.protocol().metadata_bytes() + sys.network().metadata_bytes();
}

TEST(Scale, Stache256NodeInvalidateSpilledSharers) {
  // Readers on both sides of the 64-node boundary cache the home's block;
  // the next write must invalidate every one of them through the spilled
  // directory entry.
  System sys(wide(256), ProtocolKind::kStache);
  const auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 0) c.write<int>(a, 1);
    c.barrier();
    if (c.id() % 17 == 3) {
      EXPECT_EQ(c.read<int>(a), 1);
    }
    c.barrier();
    if (c.id() == 0) c.write<int>(a, 2);
    c.barrier();
    if (c.id() % 17 == 3) {
      EXPECT_EQ(c.read<int>(a), 2);
    }
  });
  // Every sampled reader faulted twice: initial fetch + post-invalidate.
  EXPECT_EQ(sys.recorder().node(3).read_faults, 2u);
  EXPECT_EQ(sys.recorder().node(224).read_faults, 2u);
}

TEST(Scale, Predictive256NodeIterativePresend) {
  // Iterative producer/consumer at 256 nodes: after the priming round the
  // predictive protocol presends to consumers in the spill range.
  System sys(wide(256), ProtocolKind::kPredictive);
  const auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 4; ++it) {
      c.phase(0);
      if (c.id() == 0) c.write<int>(a, 10 + it);
      c.barrier();
      c.phase(1);
      if (c.id() == 100 || c.id() == 255) {
        EXPECT_EQ(c.read<int>(a), 10 + it);
      }
      c.barrier();
    }
  });
  std::uint64_t present = 0;
  for (int n = 0; n < 256; ++n)
    present += sys.recorder().node(n).presend_blocks_received;
  EXPECT_GT(present, 0u);  // the schedule primed and actually present data
  // Presends spare the steady-state consumers their read faults.
  EXPECT_LT(sys.recorder().node(255).read_faults, 4u);
}

TEST(Scale, ClusterDirectoryMatchesExactValues) {
  // The coarse two-level directory is a conservative over-approximation:
  // program-visible values match the exact directory; sharer metadata for a
  // widely-shared block tracks clusters instead of 200+ individual nodes.
  auto run = [](int cluster_nodes, std::size_t* meta) {
    MachineConfig m = wide(256);
    m.cluster_nodes = cluster_nodes;
    System sys(m, ProtocolKind::kStache);
    const auto a = sys.space().alloc_on_node(0, 64);
    long long sum = 0;
    sys.run([&](NodeCtx& c) {
      for (int it = 0; it < 3; ++it) {
        if (c.id() == 0) c.write<int>(a, it + 1);
        c.barrier();
        const int v = c.read<int>(a);
        EXPECT_EQ(v, it + 1);
        c.barrier();
        if (c.id() == 0) sum += v;
      }
    });
    *meta = sys.protocol().metadata_bytes();
    return sum;
  };
  std::size_t exact_meta = 0, coarse_meta = 0;
  const long long exact = run(0, &exact_meta);
  const long long coarse = run(16, &coarse_meta);
  EXPECT_EQ(exact, coarse);
  // 256 sharers collapse to 16 clusters: the directory entry stays inline
  // instead of spilling, so the coarse directory holds strictly less.
  EXPECT_LT(coarse_meta, exact_meta);
}

TEST(Scale, MetadataStaysSubQuadraticIn1024NodeRun) {
  // A 1024-node machine runs to completion, and with a bounded working set
  // its protocol+network metadata must scale with nodes and touched blocks,
  // not nodes^2. The pre-PR dense channel table alone was
  // nodes^2 * sizeof(Channel) >= 1M entries; stay far under that.
  System sys(wide(1024), ProtocolKind::kStache);
  const auto a = sys.space().alloc_on_node(0, 256);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 0)
      for (int i = 0; i < 4; ++i) c.write<int>(a + 4 * i, i);
    c.barrier();
    if (c.id() % 37 == 1) {
      EXPECT_EQ(c.read<int>(a), 0);
    }
    c.barrier();
  });
  const std::size_t dense_channels_floor = 1024ull * 1024ull * 8;  // >= 8 MiB
  EXPECT_LT(metadata_bytes(sys), dense_channels_floor / 4);
}

TEST(Scale, RejectsInsaneNodeCounts) {
  // The old hard 64-node ceiling is gone; what remains is a sanity bound
  // against nonsense configurations (and accidental quadratic blowups).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  mem::MemConfig cfg;
  cfg.block_size = 32;
  cfg.page_size = 512;
  EXPECT_DEATH(mem::GlobalSpace(65537, cfg), "");
  EXPECT_DEATH(mem::GlobalSpace(0, cfg), "");
}

}  // namespace
}  // namespace presto::runtime
