// Tests for the ccached commutative-update protocol and its lock-in to the
// verification matrix. Mirrors tests/check_test.cc: the merge path is only
// trustworthy if the oracle and the differential fuzzer demonstrably catch
// the planted merge bugs (check/bughook.h: drop-merge-entry and
// double-apply-on-replay), shrink the failures, and replay them
// bit-identically — and demonstrably stay silent on the correct protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/bughook.h"
#include "check/fuzz.h"
#include "check/oracle.h"
#include "proto/ccached.h"
#include "runtime/system.h"

namespace presto::check {
namespace {

using runtime::MachineConfig;
using runtime::NodeCtx;
using runtime::ProtocolKind;
using runtime::System;

// A minimal all-to-one reduction program: every node pushes commutative adds
// into both blocks each round, then flushes — the pattern whose correctness
// depends on every (word, delta) log entry merging exactly once.
FuzzProgram cc_reduce_program(int rounds) {
  FuzzProgram prog;
  prog.nodes = 3;
  prog.block_size = 32;
  prog.nblocks = 2;
  prog.seed = 7;
  FuzzPhase ph;
  ph.writer = {-1, -1};
  ph.reader_mask = {0x0, 0x0};
  ph.cc_mask = 0x7;  // all three nodes contribute
  FuzzRound rd;
  rd.phases.push_back(ph);
  for (int r = 0; r < rounds; ++r) prog.rounds.push_back(rd);
  return prog;
}

TEST(CCachedOracle, SilentOnCorrectMerge) {
  const FuzzProgram prog = cc_reduce_program(3);
  ASSERT_TRUE(has_commutative(prog));
  const RunResult r =
      run_program(prog, ProtocolKind::kCCached, net::NetConfig{});
  EXPECT_EQ(r.oracle_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.read_mismatches, 0u);
}

TEST(CCachedOracle, CatchesDroppedMergeEntry) {
  // The lost-update bug: the home's merge discards the first log entry of
  // every flush it applies. The merged image diverges from the oracle's
  // committed shadow; the final sweep flags the surviving valid copies.
  FuzzProgram prog = cc_reduce_program(2);
  prog.injected_bug = "drop-merge-entry";
  const RunResult r =
      run_program(prog, ProtocolKind::kCCached, net::NetConfig{});
  EXPECT_GT(r.oracle_violations, 0u);
  EXPECT_NE(r.first_violation.find("final sweep"), std::string::npos)
      << r.first_violation;
  // The host-side read-back sees the lost deltas too.
  EXPECT_GT(r.read_mismatches, 0u);
  // Under Stache the same adds degrade to ordinary rmws — no merge path
  // runs, the bug stays dormant.
  const RunResult clean =
      run_program(prog, ProtocolKind::kStache, net::NetConfig{});
  EXPECT_EQ(clean.oracle_violations, 0u) << clean.first_violation;
  EXPECT_EQ(clean.read_mismatches, 0u);
}

TEST(CCachedOracle, CatchesDoubleAppliedReplay) {
  // The non-idempotent replay bug: every flush log folds in twice, so every
  // flushed delta lands doubled.
  FuzzProgram prog = cc_reduce_program(2);
  prog.injected_bug = "double-apply-on-replay";
  const RunResult r =
      run_program(prog, ProtocolKind::kCCached, net::NetConfig{});
  EXPECT_GT(r.oracle_violations, 0u);
  EXPECT_NE(r.first_violation.find("final sweep"), std::string::npos)
      << r.first_violation;
  EXPECT_GT(r.read_mismatches, 0u);
  const RunResult clean =
      run_program(prog, ProtocolKind::kStache, net::NetConfig{});
  EXPECT_EQ(clean.oracle_violations, 0u) << clean.first_violation;
  EXPECT_EQ(clean.read_mismatches, 0u);
}

// Mirrors Fuzz.InjectedBugIsCaughtShrunkAndReplayedIdentically for the two
// merge bugs, over a generated program with commutative phases (seed 13 is
// pinned cc-bearing; the assert below fails loudly if generation drifts).
void expect_caught_shrunk_replayed(const std::string& bug) {
  FuzzProgram prog = generate(13);
  ASSERT_TRUE(has_commutative(prog)) << "seed 13 lost its cc phases";
  prog.injected_bug = bug;
  const FuzzVerdict v = check_program(prog, /*latency_sweep=*/false);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.signature.rfind("violation[", 0), 0u) << v.signature;

  const FuzzProgram shrunk =
      shrink(prog, v.signature, /*latency_sweep=*/false, /*max_attempts=*/80);
  const FuzzVerdict sv = check_program(shrunk, false);
  ASSERT_FALSE(sv.ok);
  EXPECT_EQ(sv.signature, v.signature);
  EXPECT_LE(shrunk.rounds.size(), prog.rounds.size());
  // The failure is merge-specific: shrinking must keep a commutative phase.
  EXPECT_TRUE(has_commutative(shrunk));

  // Trace round-trip of the shrunk failure replays bit-identically.
  const FuzzProgram replayed = parse_trace(serialize_trace(shrunk));
  const FuzzVerdict rv = check_program(replayed, false);
  EXPECT_EQ(rv.report, sv.report);
  EXPECT_FALSE(rv.ok);
}

TEST(CCachedFuzz, DroppedMergeEntryIsCaughtShrunkAndReplayed) {
  expect_caught_shrunk_replayed("drop-merge-entry");
}

TEST(CCachedFuzz, DoubleAppliedReplayIsCaughtShrunkAndReplayed) {
  expect_caught_shrunk_replayed("double-apply-on-replay");
}

TEST(CCachedFuzz, CommutativePhasesRuleOutWriteUpdate) {
  // A read-modify-write on a stale phase-consistent copy loses concurrent
  // updates, so cc programs are excluded from the write-update set.
  EXPECT_FALSE(supports_write_update(cc_reduce_program(2)));
}

TEST(CCachedFuzz, CcMaskRoundTripsThroughTrace) {
  const FuzzProgram prog = cc_reduce_program(2);
  const std::string text = serialize_trace(prog);
  EXPECT_NE(text.find(" cc "), std::string::npos) << text;
  EXPECT_EQ(serialize_trace(parse_trace(text)), text);
  // Programs without cc phases serialize exactly as before the field
  // existed (backward-compatible traces).
  FuzzProgram plain = cc_reduce_program(1);
  plain.rounds[0].phases[0].cc_mask = 0;
  EXPECT_EQ(serialize_trace(plain).find(" cc "), std::string::npos);
}

// ---- Direct protocol unit tests --------------------------------------------

TEST(CCachedProtocol, FlushMergesEveryDeltaExactlyOnce) {
  MachineConfig m = MachineConfig::cm5_blizzard(4, 32);
  m.mem.page_size = 512;
  System sys(m, ProtocolKind::kCCached);
  const mem::Addr a = sys.space().alloc_on_node(0, 64);
  sys.space().set_commutative(a, 64);
  sys.run([&](NodeCtx& c) {
    // Every node adds id+1 to word 0 and 10*(id+1) to word 7.
    c.cc_add(a, c.id() + 1);
    c.cc_add(a + 56, 10 * (c.id() + 1));
    c.cc_flush();
    c.barrier();
    if (c.id() == 0) {
      EXPECT_EQ(c.read<std::int64_t>(a), 1 + 2 + 3 + 4);
      EXPECT_EQ(c.read<std::int64_t>(a + 56), 10 * (1 + 2 + 3 + 4));
    }
  });
  const auto& cs = sys.ccached()->cc_stats();
  // The 64-byte region spans two 32-byte blocks; each node touched one word
  // in each, so every node flushes two one-entry logs.
  EXPECT_EQ(cs.flushes, 8u);
  EXPECT_EQ(cs.flushed_entries, 8u);
  EXPECT_EQ(cs.merged_flushes, cs.flushes);
  EXPECT_EQ(cs.merged_entries, cs.flushed_entries);
}

TEST(CCachedProtocol, FaultSelfFlushesPendingDeltas) {
  // Reading a block the node itself holds pending deltas for must push those
  // deltas home first — the on-demand flush path on the fault.
  MachineConfig m = MachineConfig::cm5_blizzard(2, 32);
  m.mem.page_size = 512;
  System sys(m, ProtocolKind::kCCached);
  const mem::Addr a = sys.space().alloc_on_node(0, 32);
  sys.space().set_commutative(a, 32);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 1) {
      c.cc_add(a, 41);
      // No explicit cc_flush: the read below faults and self-flushes.
      EXPECT_EQ(c.read<std::int64_t>(a), 41);
    }
    c.barrier();
  });
  EXPECT_EQ(sys.ccached()->cc_stats().flushes, 1u);
  EXPECT_EQ(sys.ccached()->cc_stats().merged_entries, 1u);
}

TEST(CCachedProtocol, EmptyFlushIsFree) {
  // cc_flush with nothing pending sends no messages — which is why ccached
  // is bit-identical to Stache on programs that never call cc_add.
  MachineConfig m = MachineConfig::cm5_blizzard(2, 32);
  m.mem.page_size = 512;
  System sys(m, ProtocolKind::kCCached);
  sys.space().alloc_on_node(0, 32);
  sys.run([&](NodeCtx& c) {
    c.cc_flush();
    c.barrier();
  });
  EXPECT_EQ(sys.ccached()->cc_stats().flushes, 0u);
}

TEST(CCachedProtocol, RejectsUpdatesOutsideCommutativeRegions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        MachineConfig m = MachineConfig::cm5_blizzard(2, 32);
        m.mem.page_size = 512;
        System sys(m, ProtocolKind::kCCached);
        const mem::Addr a = sys.space().alloc_on_node(0, 32);
        sys.run([&](NodeCtx& c) {
          if (c.id() == 0) c.cc_add(a, 1);  // region was never tagged
          c.barrier();
        });
      },
      "commutative region");
}

}  // namespace
}  // namespace presto::check
