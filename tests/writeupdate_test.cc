// Write-update protocol edge cases beyond the basics in predictive_test.cc:
// range-filtered publish, multi-writer forwarding, upgrade-in-place, and
// traffic accounting.
#include <gtest/gtest.h>

#include "runtime/system.h"

namespace presto::runtime {
namespace {

MachineConfig tiny(int nodes) {
  MachineConfig m = MachineConfig::cm5_blizzard(nodes, 32);
  m.mem.page_size = 256;
  return m;
}

TEST(WriteUpdate, PublishRangeFiltersBlocks) {
  System sys(tiny(3), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 256);
  sys.run([&](NodeCtx& c) {
    auto* wu = sys.writeupdate();
    // Readers cache both halves of the region.
    if (c.id() != 0) {
      c.read<int>(a);
      c.read<int>(a + 128);
    }
    c.barrier();
    if (c.id() == 0) {
      c.write<int>(a, 1);
      c.write<int>(a + 128, 2);
    }
    // Publish only the first half.
    wu->wu_publish(c.id(), a, 128);
    c.barrier();
    if (c.id() == 1) {
      EXPECT_EQ(c.read<int>(a), 1);        // updated
      EXPECT_EQ(c.read<int>(a + 128), 0);  // stale: outside published range
    }
    c.barrier();
    // Publishing the rest delivers it.
    wu->wu_publish(c.id(), a + 128, 128);
    c.barrier();
    if (c.id() == 1) EXPECT_EQ(c.read<int>(a + 128), 2);
  });
  // Reader 1 never re-faulted: updates arrived via pushes.
  EXPECT_EQ(sys.recorder().node(1).read_faults, 2u);
}

TEST(WriteUpdate, WriteFaultUpgradesInPlaceWithoutMessages) {
  System sys(tiny(2), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 1) {
      EXPECT_EQ(c.read<int>(a), 0);  // fetch: ReadOnly copy
      const auto msgs_before = sys.recorder().node(1).msgs_sent;
      c.write<int>(a, 5);  // upgrade in place: no invalidation round
      EXPECT_EQ(sys.recorder().node(1).msgs_sent, msgs_before);
      EXPECT_EQ(c.read<int>(a), 5);  // own copy readable
    }
    c.barrier();
    // The home still has the old value until a publish.
    if (c.id() == 0) EXPECT_EQ(c.read<int>(a), 0);
    c.barrier();
    sys.writeupdate()->wu_publish(c.id(), a, 64);
    c.barrier();
    if (c.id() == 0) EXPECT_EQ(c.read<int>(a), 5);
  });
}

TEST(WriteUpdate, TwoWritersToDistinctBlocksBothForward) {
  System sys(tiny(4), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 256);
  sys.run([&](NodeCtx& c) {
    auto* wu = sys.writeupdate();
    // Node 3 caches both blocks.
    if (c.id() == 3) {
      c.read<int>(a);
      c.read<int>(a + 64);
    }
    c.barrier();
    if (c.id() == 1) c.write<int>(a, 11);
    if (c.id() == 2) c.write<int>(a + 64, 22);
    wu->wu_publish(c.id(), 0, c.space().size_bytes());
    c.barrier();
    if (c.id() == 3) {
      EXPECT_EQ(c.read<int>(a), 11);
      EXPECT_EQ(c.read<int>(a + 64), 22);
    }
    if (c.id() == 0) {
      EXPECT_EQ(c.read<int>(a), 11);
      EXPECT_EQ(c.read<int>(a + 64), 22);
    }
  });
  EXPECT_EQ(sys.recorder().node(3).read_faults, 2u);
  EXPECT_GT(sys.writeupdate()->stats().update_msgs, 0u);
}

TEST(WriteUpdate, ContiguousDirtyBlocksCoalesceToHome) {
  System sys(tiny(2), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 512);
  sys.run([&](NodeCtx& c) {
    auto* wu = sys.writeupdate();
    if (c.id() == 1)
      for (int b = 0; b < 16; ++b) c.write<int>(a + b * 32, b);
    const auto msgs_before = wu->stats().update_msgs;
    wu->wu_publish(c.id(), a, 512);
    if (c.id() == 1) {
      // 16 contiguous dirty blocks travelled in one run to the home.
      EXPECT_EQ(wu->stats().update_msgs, msgs_before + 1);
      EXPECT_EQ(wu->stats().update_blocks, 16u);
    }
    c.barrier();
    if (c.id() == 0)
      for (int b = 0; b < 16; ++b) EXPECT_EQ(c.read<int>(a + b * 32), b);
  });
}

TEST(WriteUpdate, RepublishingUnchangedDataIsIdempotent) {
  System sys(tiny(3), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    auto* wu = sys.writeupdate();
    if (c.id() == 2) c.read<int>(a);
    c.barrier();
    for (int round = 0; round < 3; ++round) {
      if (c.id() == 0) c.write<int>(a, round);
      wu->wu_publish(c.id(), a, 64);
      c.barrier();
      if (c.id() == 2) EXPECT_EQ(c.read<int>(a), round);
      c.barrier();
    }
  });
}

}  // namespace
}  // namespace presto::runtime
