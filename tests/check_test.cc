// Tests for the correctness-tooling subsystem (src/check/): the coherence
// invariant oracle and the differential schedule fuzzer. The checking code
// is only trustworthy if it demonstrably catches planted protocol bugs
// (check/bughook.h) and demonstrably stays silent on the correct protocols.
#include <gtest/gtest.h>

#include <string>

#include "check/bughook.h"
#include "check/fuzz.h"
#include "check/oracle.h"
#include "runtime/system.h"

namespace presto::check {
namespace {

using runtime::MachineConfig;
using runtime::NodeCtx;
using runtime::ProtocolKind;
using runtime::System;

// A minimal producer/consumer program: node 1 reads block 0, then node 0
// overwrites it, repeated — exactly the pattern whose correctness depends
// on the invalidation the skip-invalidate bug suppresses.
FuzzProgram producer_consumer(int rounds) {
  FuzzProgram prog;
  prog.nodes = 2;
  prog.block_size = 32;
  prog.nblocks = 2;
  prog.seed = 5;
  FuzzPhase ph;
  ph.writer = {0, -1};
  ph.reader_mask = {0x2, 0x0};  // node 1 reads block 0
  FuzzRound rd;
  rd.phases.push_back(ph);
  for (int r = 0; r < rounds; ++r) prog.rounds.push_back(rd);
  return prog;
}

TEST(Oracle, SilentOnCorrectProtocols) {
  const FuzzProgram prog = generate(11);
  for (ProtocolKind kind :
       {ProtocolKind::kStache, ProtocolKind::kPredictive,
        ProtocolKind::kPredictiveAnticipate}) {
    const RunResult r = run_program(prog, kind, net::NetConfig{});
    EXPECT_EQ(r.oracle_violations, 0u) << r.first_violation;
    EXPECT_EQ(r.read_mismatches, 0u);
  }
}

TEST(Oracle, CatchesSkippedInvalidation) {
  // The lost-invalidation bug: Stache's Inv handler acks but leaves the
  // stale ReadOnly copy in place. The writer's next write to that block
  // breaks single-writer; the reader's next read breaks data-value.
  FuzzProgram prog = producer_consumer(2);
  prog.injected_bug = "skip-invalidate";
  const RunResult r =
      run_program(prog, ProtocolKind::kStache, net::NetConfig{});
  EXPECT_GT(r.oracle_violations, 0u);
  EXPECT_NE(r.first_violation.find("single-writer"), std::string::npos)
      << r.first_violation;
}

TEST(Oracle, CatchesDroppedPresendData) {
  // The predictive presend grants the access tag without moving the bytes:
  // reads off the pre-sent copy observe stale data. Needs enough rounds for
  // the schedule to prime (presends start in round 2).
  FuzzProgram prog = producer_consumer(4);
  prog.injected_bug = "drop-presend-data";
  const RunResult r =
      run_program(prog, ProtocolKind::kPredictive, net::NetConfig{});
  EXPECT_GT(r.oracle_violations, 0u);
  EXPECT_NE(r.first_violation.find("data-value"), std::string::npos)
      << r.first_violation;
  // The same program under Stache never presends — the bug stays dormant.
  const RunResult clean =
      run_program(prog, ProtocolKind::kStache, net::NetConfig{});
  EXPECT_EQ(clean.oracle_violations, 0u) << clean.first_violation;
}

TEST(Oracle, AbortModeDiesWithDiagnostic) {
  // In abort mode (the default attachment in Debug builds) the first
  // violation dumps the event ring and aborts the process.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        set_bug_hook("skip-invalidate", true);
        MachineConfig m = MachineConfig::cm5_blizzard(2, 32);
        m.mem.page_size = 512;
        System sys(m, ProtocolKind::kStache);
        sys.enable_oracle(FailMode::kAbort);
        const mem::Addr a = sys.space().alloc_on_node(0, 64);
        sys.run([&](NodeCtx& c) {
          for (int r = 0; r < 2; ++r) {
            if (c.id() == 0) c.write<int>(a, r + 1);
            c.barrier();
            if (c.id() == 1) c.read<int>(a);
            c.barrier();
          }
        });
      },
      "coherence oracle");
}

TEST(Oracle, FinalSweepComparesEveryValidCopy) {
  MachineConfig m = MachineConfig::cm5_blizzard(3, 32);
  m.mem.page_size = 512;
  System sys(m, ProtocolKind::kStache);
  Oracle& oracle = sys.enable_oracle(FailMode::kRecord);
  const mem::Addr a = sys.space().alloc_on_node(0, 256);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 0)
      for (int i = 0; i < 64; ++i) c.write<int>(a + 4 * i, i);
    c.barrier();
    c.read<int>(a + 4 * c.id());
  });
  EXPECT_GT(oracle.reads_checked(), 0u);
  EXPECT_GT(oracle.writes_checked(), 0u);
  EXPECT_GT(oracle.final_sweep(), 0u);  // idempotent re-run of System's sweep
  EXPECT_EQ(oracle.violation_count(), 0u);
}

TEST(Fuzz, GenerateIsDeterministic) {
  const FuzzProgram a = generate(123), b = generate(123);
  EXPECT_EQ(serialize_trace(a), serialize_trace(b));
  const FuzzProgram c = generate(124);
  EXPECT_NE(serialize_trace(a), serialize_trace(c));
}

TEST(Fuzz, TraceRoundTripsExactly) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1000ULL}) {
    FuzzProgram prog = generate(seed);
    prog.injected_bug = seed == 42 ? "skip-invalidate" : "";
    const std::string text = serialize_trace(prog);
    EXPECT_EQ(serialize_trace(parse_trace(text)), text);
  }
}

TEST(Fuzz, CheckProgramReportsAreReplayable) {
  // The whole stack is deterministic: checking the same program twice gives
  // byte-identical reports (this is what makes --replay trustworthy).
  const FuzzProgram prog = generate(3);
  const FuzzVerdict a = check_program(prog, /*latency_sweep=*/true);
  const FuzzVerdict b = check_program(prog, /*latency_sweep=*/true);
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_EQ(a.report, b.report);
}

TEST(Fuzz, InjectedBugIsCaughtShrunkAndReplayedIdentically) {
  FuzzProgram prog = generate(1);
  prog.injected_bug = "skip-invalidate";
  const FuzzVerdict v = check_program(prog, /*latency_sweep=*/false);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.signature.rfind("violation[", 0), 0u) << v.signature;

  const FuzzProgram shrunk =
      shrink(prog, v.signature, /*latency_sweep=*/false, /*max_attempts=*/80);
  // Shrinking must keep the failure and not grow the program.
  const FuzzVerdict sv = check_program(shrunk, false);
  ASSERT_FALSE(sv.ok);
  EXPECT_EQ(sv.signature, v.signature);
  EXPECT_LE(shrunk.rounds.size(), prog.rounds.size());

  // Trace round-trip of the shrunk failure replays bit-identically.
  const FuzzProgram replayed = parse_trace(serialize_trace(shrunk));
  const FuzzVerdict rv = check_program(replayed, false);
  EXPECT_EQ(rv.report, sv.report);
  EXPECT_FALSE(rv.ok);
}

// Wide-shape program whose correctness depends on the home's reader set
// surviving a large -> small shrink. Participants 0/1/2 sit at physical
// nodes 0/63/127 of a 128-node machine; block 0's home is node 0. Phase 1
// registers readers {63, 127} at the home, phase 2 has node 127 write (and,
// under write-update, publish), phase 3 has node 63 read the new value.
// Clearing 127 from {63, 127} empties the NodeSet spill array — exactly
// where the drop-spill-sharer bug loses the surviving reader 63.
FuzzProgram spill_shrink_program() {
  FuzzProgram prog;
  prog.nodes = 128;
  prog.participants = 3;
  prog.block_size = 32;
  prog.nblocks = 1;
  prog.seed = 9;
  FuzzPhase prime;
  prime.writer = {-1};
  prime.reader_mask = {0x6};  // participants 1 and 2
  FuzzPhase write;
  write.writer = {2};
  write.reader_mask = {0x0};
  FuzzPhase readback;
  readback.writer = {-1};
  readback.reader_mask = {0x2};  // participant 1 must see the new value
  FuzzRound rd;
  rd.phases = {prime, write, readback};
  prog.rounds.push_back(rd);
  return prog;
}

TEST(Fuzz, WideShapesMapParticipantsAcrossTheMachine) {
  const FuzzProgram prog = spill_shrink_program();
  EXPECT_EQ(participant_count(prog), 3);
  EXPECT_EQ(participant_node(prog, 0), 0);
  EXPECT_EQ(participant_node(prog, 1), 63);
  EXPECT_EQ(participant_node(prog, 2), 127);
  // Dense shapes are the identity mapping.
  FuzzProgram dense = producer_consumer(1);
  EXPECT_EQ(participant_count(dense), 2);
  EXPECT_EQ(participant_node(dense, 1), 1);
  // Wide traces round-trip (the participants line) and stay clean.
  EXPECT_EQ(serialize_trace(parse_trace(serialize_trace(prog))),
            serialize_trace(prog));
  const FuzzVerdict v = check_program(prog, /*latency_sweep=*/false);
  EXPECT_TRUE(v.ok) << v.report;
}

TEST(Fuzz, CatchesDroppedSpillSharer) {
  // The planted hybrid-NodeSet bug: maybe_shrink_ frees an emptied spill
  // array but also drops the highest surviving inline member. Node 63's
  // registered read is forgotten, its copy goes stale, and the oracle (or
  // the host reference) flags the stale read under write-update. The same
  // program must stay clean on machines that never spill (<= 64 nodes the
  // bug cannot fire) and on the exact-set protocols.
  FuzzProgram prog = spill_shrink_program();
  prog.injected_bug = "drop-spill-sharer";
  const FuzzVerdict v = check_program(prog, /*latency_sweep=*/false);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.signature.find("write-update"), std::string::npos)
      << v.signature;

  const FuzzProgram shrunk =
      shrink(prog, v.signature, /*latency_sweep=*/false, /*max_attempts=*/60);
  const FuzzVerdict sv = check_program(shrunk, false);
  ASSERT_FALSE(sv.ok);
  EXPECT_EQ(sv.signature, v.signature);
  // The failure is spill-specific: shrinking must not collapse the machine
  // below the spill threshold.
  EXPECT_GT(shrunk.nodes, 64);

  // Replay from the serialized trace reproduces the verdict byte-for-byte.
  const FuzzVerdict rv = check_program(parse_trace(serialize_trace(shrunk)),
                                       /*latency_sweep=*/false);
  EXPECT_EQ(rv.report, sv.report);
}

TEST(Fuzz, WriteUpdateSupportRules) {
  FuzzProgram prog = producer_consumer(2);
  EXPECT_TRUE(supports_write_update(prog));
  // A second writer for block 0 breaks the stable-owner assumption.
  prog.rounds[1].phases[0].writer[0] = 1;
  EXPECT_FALSE(supports_write_update(prog));
  // Locks rule write-update out entirely.
  FuzzProgram locked = producer_consumer(2);
  locked.use_locks = true;
  locked.rounds[0].phases[0].lock_users = 0x3;
  EXPECT_FALSE(supports_write_update(locked));
}

TEST(Fuzz, SmallCorpusIsClean) {
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    const FuzzVerdict v = check_program(generate(seed), /*latency_sweep=*/true);
    EXPECT_TRUE(v.ok) << "seed " << seed << ":\n" << v.report;
  }
}

TEST(BugHooks, UnknownNameAborts) {
  EXPECT_DEATH(set_bug_hook("no-such-bug", true), "unknown bug hook");
}

}  // namespace
}  // namespace presto::check
