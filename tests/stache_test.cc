// System-level tests of the Stache write-invalidate protocol: directed
// scenarios for each transaction shape, plus a parameterized property suite
// running randomized data-race-free programs against a host reference.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/aggregate.h"
#include "runtime/system.h"
#include "util/rng.h"

namespace presto::runtime {
namespace {

MachineConfig tiny(int nodes, std::uint32_t block = 32) {
  MachineConfig m = MachineConfig::cm5_blizzard(nodes, block);
  m.mem.page_size = 256;  // small pages keep test footprints tight
  return m;
}

TEST(Stache, RemoteReadFetchesHomeValue) {
  System sys(tiny(2), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 0) c.write<int>(a, 1234);
    c.barrier();
    if (c.id() == 1) EXPECT_EQ(c.read<int>(a), 1234);
  });
  EXPECT_EQ(sys.recorder().node(1).read_faults, 1u);
  EXPECT_EQ(sys.recorder().node(0).read_faults, 0u);
  EXPECT_GT(sys.recorder().node(1).remote_wait, 0);
}

TEST(Stache, WriteInvalidatesReaders) {
  System sys(tiny(3), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 0) c.write<int>(a, 1);
    c.barrier();
    // Nodes 1 and 2 cache the block.
    if (c.id() != 0) EXPECT_EQ(c.read<int>(a), 1);
    c.barrier();
    // Home writes again: readers must be invalidated...
    if (c.id() == 0) c.write<int>(a, 2);
    c.barrier();
    // ...so they re-fetch and see the new value.
    if (c.id() != 0) EXPECT_EQ(c.read<int>(a), 2);
  });
  // Each reader faulted twice (initial read + re-fetch after invalidation).
  EXPECT_EQ(sys.recorder().node(1).read_faults, 2u);
  EXPECT_EQ(sys.recorder().node(2).read_faults, 2u);
  // The home's second write faulted locally (invalidation transaction).
  EXPECT_EQ(sys.recorder().node(0).write_faults, 1u);
  EXPECT_EQ(sys.recorder().node(0).local_faults, 1u);
}

TEST(Stache, ProducerConsumerThroughThirdPartyHome) {
  // Producer and consumer distinct from the home: §3.2's 4-message pattern.
  System sys(tiny(3), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);  // home = 0
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 4; ++it) {
      if (c.id() == 1) c.write<int>(a, 100 + it);  // producer
      c.barrier();
      if (c.id() == 2) EXPECT_EQ(c.read<int>(a), 100 + it);  // consumer
      c.barrier();
    }
  });
  // Producer writes fault each iteration after the first (consumer's read
  // downgraded its copy); consumer reads fault every iteration.
  EXPECT_EQ(sys.recorder().node(2).read_faults, 4u);
  EXPECT_GE(sys.recorder().node(1).write_faults, 4u);
}

TEST(Stache, RecallFlowsDirtyDataThroughHome) {
  System sys(tiny(3), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 1) c.write<double>(a + 8, 2.75);  // node 1 becomes owner
    c.barrier();
    if (c.id() == 2) EXPECT_EQ(c.read<double>(a + 8), 2.75);  // recall path
    c.barrier();
    if (c.id() == 0) EXPECT_EQ(c.read<double>(a + 8), 2.75);  // home re-read
  });
}

TEST(Stache, MigratoryOwnershipMoves) {
  System sys(tiny(4), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    const int n = c.nodes();
    for (int round = 0; round < 8; ++round) {
      if (c.id() == round % n) {
        int v = c.read<int>(a);
        EXPECT_EQ(v, round);
        c.write<int>(a, v + 1);
      }
      c.barrier();
    }
    if (c.id() == 0) EXPECT_EQ(c.read<int>(a), 8);
  });
}

TEST(Stache, FalseSharingMergesDistinctWords) {
  // Two nodes write disjoint words of the same block; both must survive.
  System sys(tiny(3), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 1) c.write<int>(a + 0, 111);
    if (c.id() == 2) c.write<int>(a + 4, 222);
    c.barrier();
    if (c.id() == 0) {
      EXPECT_EQ(c.read<int>(a + 0), 111);
      EXPECT_EQ(c.read<int>(a + 4), 222);
    }
  });
}

TEST(Stache, UpgradeFromSoleReader) {
  System sys(tiny(2), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 64);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 1) {
      EXPECT_EQ(c.read<int>(a), 0);
      c.write<int>(a, 5);  // sole-reader upgrade
    }
    c.barrier();
    if (c.id() == 0) EXPECT_EQ(c.read<int>(a), 5);
  });
}

TEST(Stache, RemoteMissLatencyIsCm5Scale) {
  // §5.4: ~200 microseconds average remote miss on Blizzard/CM-5.
  System sys(MachineConfig::cm5_blizzard(3, 32), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 4096);
  sys.run([&](NodeCtx& c) {
    if (c.id() == 1)
      for (int i = 0; i < 16; ++i) c.write<int>(a + i * 32, i);
    c.barrier();
    if (c.id() == 2)
      for (int i = 0; i < 16; ++i) EXPECT_EQ(c.read<int>(a + i * 32), i);
  });
  const auto& c2 = sys.recorder().node(2);
  ASSERT_EQ(c2.read_faults, 16u);
  const double avg_us =
      sim::to_micros(c2.remote_wait) / static_cast<double>(c2.read_faults);
  EXPECT_GT(avg_us, 100.0);
  EXPECT_LT(avg_us, 400.0);
}

TEST(Stache, AggregatesDistributeOwnerAlignedPages) {
  System sys(tiny(4), ProtocolKind::kStache);
  auto agg = Aggregate1D<double>::create(sys.space(), 100);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(sys.space().home_of_addr(agg.addr(i)), agg.owner(i))
        << "element " << i;
  auto [lo, hi] = agg.range(3);
  EXPECT_EQ(lo, 75u);
  EXPECT_EQ(hi, 100u);
}

TEST(Stache, Aggregate2DRowBlock) {
  System sys(tiny(4), ProtocolKind::kStache);
  auto g = Aggregate2D<float>::create(sys.space(), 16, 8);
  EXPECT_EQ(g.owner(0), 0);
  EXPECT_EQ(g.owner(15), 3);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_EQ(sys.space().home_of_addr(g.addr(i, j)), g.owner(i));
  auto [lo, hi] = g.row_range(1);
  EXPECT_EQ(lo, 4u);
  EXPECT_EQ(hi, 8u);
}

// ---------------------------------------------------------------------------
// Property suite: randomized data-race-free programs must produce exactly
// the values of a host-memory reference, under every (nodes, block size,
// seed) combination, for both Stache and the predictive protocol.
// ---------------------------------------------------------------------------

struct DrfParam {
  int nodes;
  std::uint32_t block;
  std::uint64_t seed;
  ProtocolKind kind;
};

class DrfProperty : public ::testing::TestWithParam<DrfParam> {};

TEST_P(DrfProperty, RandomDrfProgramMatchesReference) {
  const DrfParam p = GetParam();
  MachineConfig m = tiny(p.nodes, p.block);
  System sys(m, p.kind);

  constexpr std::size_t kElems = 96;
  constexpr int kIters = 6;
  auto agg = Aggregate1D<std::uint32_t>::create(sys.space(), kElems);
  std::vector<std::uint32_t> ref(kElems, 0);

  // Writer assignment rotates per iteration: in iteration it, element i is
  // written by node (i + it) % nodes and read by every node. All access
  // conflicts are separated by barriers (DRF).
  sys.run([&](NodeCtx& c) {
    util::Rng rng(p.seed ^ static_cast<std::uint64_t>(c.id()));
    for (int it = 0; it < kIters; ++it) {
      c.phase(it % 3);  // exercise directives (no-op under Stache)
      for (std::size_t i = 0; i < kElems; ++i) {
        if (static_cast<int>((i + static_cast<std::size_t>(it)) %
                             static_cast<std::size_t>(c.nodes())) != c.id())
          continue;
        const std::uint32_t v =
            static_cast<std::uint32_t>(i * 1000 + static_cast<std::size_t>(it));
        agg.set(c, i, v);
        ref[i] = v;  // host reference (engine serializes all threads)
      }
      c.barrier();
      // Every node verifies a random sample of elements.
      for (int k = 0; k < 24; ++k) {
        const std::size_t i = rng.next_below(kElems);
        EXPECT_EQ(agg.get(c, i), ref[i])
            << "node " << c.id() << " iter " << it << " elem " << i;
      }
      c.barrier();
    }
  });
  // Quiescent directory/tag consistency across every node and block.
  auto* stache = dynamic_cast<proto::StacheProtocol*>(&sys.protocol());
  ASSERT_NE(stache, nullptr);
  EXPECT_GT(stache->check_invariants(), 0u);
}

std::vector<DrfParam> drf_params() {
  std::vector<DrfParam> ps;
  for (int nodes : {2, 3, 5, 8})
    for (std::uint32_t block : {32u, 64u, 256u})
      for (std::uint64_t seed : {1ull, 99ull})
        for (ProtocolKind k :
             {ProtocolKind::kStache, ProtocolKind::kPredictive})
          ps.push_back({nodes, block, seed, k});
  return ps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DrfProperty, ::testing::ValuesIn(drf_params()),
    [](const ::testing::TestParamInfo<DrfParam>& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.nodes) + "_b" + std::to_string(p.block) +
             "_s" + std::to_string(p.seed) + "_" +
             (p.kind == ProtocolKind::kStache ? "stache" : "pred");
    });

}  // namespace
}  // namespace presto::runtime
