// Directed tests of the predictive protocol (§3.3–3.4): schedule recording,
// derived marks, presend hits, pre-invalidation, incremental growth, bulk
// coalescing, flush, and the conflict policies.
#include <gtest/gtest.h>

#include "runtime/aggregate.h"
#include "runtime/system.h"

namespace presto::runtime {
namespace {

MachineConfig tiny(int nodes, std::uint32_t block = 32) {
  MachineConfig m = MachineConfig::cm5_blizzard(nodes, block);
  m.mem.page_size = 256;
  return m;
}

proto::PredictiveProtocol& pred(System& sys) {
  auto* p = sys.predictive();
  EXPECT_NE(p, nullptr);
  return *p;
}

TEST(Predictive, ConsumerReadsBecomeLocalHitsAfterFirstIteration) {
  System sys(tiny(3), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 256);  // home 0
  std::vector<std::uint64_t> faults_per_iter;
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 5; ++it) {
      c.phase(7);
      // Producer (home) writes, consumers read in the same phase? No —
      // writes in one phase, reads in the next, as in iterative apps.
      if (c.id() == 0)
        for (int b = 0; b < 4; ++b) c.write<int>(a + b * 32, it * 10 + b);
      c.barrier();
      c.phase(8);
      if (c.id() != 0)
        for (int b = 0; b < 4; ++b)
          EXPECT_EQ(c.read<int>(a + b * 32), it * 10 + b);
      c.barrier();
      if (c.id() == 1)
        faults_per_iter.push_back(c.counters().read_faults);
    }
  });
  ASSERT_EQ(faults_per_iter.size(), 5u);
  // First iteration faults; later iterations are satisfied by presends.
  EXPECT_EQ(faults_per_iter[0], 4u);
  EXPECT_EQ(faults_per_iter[4], faults_per_iter[1]);
  EXPECT_GT(sys.recorder().node(1).presend_blocks_received, 0u);
}

TEST(Predictive, HomeWritesStopFaultingAfterPreinvalidation) {
  System sys(tiny(3), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 128);
  std::uint64_t early = 0, late = 0;
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 6; ++it) {
      c.phase(0);
      if (c.id() == 0) c.write<int>(a, it);  // invalidates consumer copies
      c.barrier();
      c.phase(1);
      if (c.id() != 0) EXPECT_EQ(c.read<int>(a), it);
      c.barrier();
      if (c.id() == 0 && it == 2) early = c.counters().write_faults;
      if (c.id() == 0 && it == 5) late = c.counters().write_faults;
    }
  });
  // After warmup, phase 0's presend pre-invalidates the readers, so the
  // home's writes hit ReadWrite locally and fault no more.
  EXPECT_EQ(late, early);
  EXPECT_GT(early, 0u);
}

TEST(Predictive, ScheduleGrowsIncrementally) {
  System sys(tiny(2), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 512);
  sys.run([&](NodeCtx& c) {
    auto& p = pred(sys);
    for (int it = 0; it < 4; ++it) {
      c.phase(3);
      // Node 1 touches one more block every iteration (adaptive growth).
      if (c.id() == 1)
        for (int b = 0; b <= it; ++b) c.read<int>(a + b * 32);
      c.barrier();
      if (c.id() == 0) {
        // Home 0's phase-3 schedule covers every block touched so far.
        EXPECT_EQ(p.schedule_size(0, 3),
                  static_cast<std::size_t>(it + 1));
      }
      c.barrier();
    }
  });
}

TEST(Predictive, FlushDiscardsSchedule) {
  System sys(tiny(2), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 128);
  sys.run([&](NodeCtx& c) {
    c.phase(1);
    if (c.id() == 1) c.read<int>(a);
    c.barrier();
    if (c.id() == 0) EXPECT_EQ(pred(sys).schedule_size(0, 1), 1u);
    c.flush_phase(1);
    if (c.id() == 0) EXPECT_EQ(pred(sys).schedule_size(0, 1), 0u);
    c.barrier();
  });
}

TEST(Predictive, ConflictBlocksAreSkipped) {
  // Node 1 reads and node 2 writes the same block in one phase (false
  // sharing): the entry derives Conflict and presend takes no action.
  System sys(tiny(3), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 128);
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 3; ++it) {
      c.phase(5);
      if (c.id() == 1) c.read<int>(a + 0);
      if (c.id() == 2) c.write<int>(a + 4, it);
      c.barrier();
    }
  });
  EXPECT_GT(pred(sys).stats().conflict_entries, 0u);
  EXPECT_EQ(pred(sys).stats().presend_push_blocks, 0u);
}

TEST(Predictive, AnticipatePushesFirstStableStateForConflicts) {
  System sys(tiny(3), ProtocolKind::kPredictiveAnticipate);
  auto a = sys.space().alloc_on_node(0, 128);
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 3; ++it) {
      c.phase(5);
      // Read-first conflict: the anticipate policy pushes ReadOnly copies.
      if (c.id() == 1) c.read<int>(a + 0);
      c.barrier();  // order read before write deterministically
      if (c.id() == 2) c.write<int>(a + 4, it);
      c.barrier();
    }
  });
  EXPECT_GT(pred(sys).stats().presend_push_blocks, 0u);
}

TEST(Predictive, MigratoryReadThenWriteDerivesWrite) {
  // One node reads then writes the block each iteration (repetitive
  // migratory): entry {readers={1}, writers={1}} derives Write, so presend
  // hands node 1 a ReadWrite copy and both its faults disappear.
  System sys(tiny(2), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 128);
  std::uint64_t f2 = 0, f5 = 0;
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 6; ++it) {
      c.phase(9);
      if (c.id() == 1) {
        const int v = c.read<int>(a);
        c.write<int>(a, v + 1);
      }
      c.barrier();
      // The home reads it back in another phase, forcing a downgrade so
      // iteration it+1 would fault again without presend.
      c.phase(10);
      if (c.id() == 0) EXPECT_EQ(c.read<int>(a), it + 1);
      c.barrier();
      if (c.id() == 1 && it == 2)
        f2 = c.counters().read_faults + c.counters().write_faults;
      if (c.id() == 1 && it == 5)
        f5 = c.counters().read_faults + c.counters().write_faults;
    }
  });
  EXPECT_EQ(f5, f2);  // steady state: no more faults on node 1
}

TEST(Predictive, ContiguousBlocksCoalesceIntoOneBulkMessage) {
  System sys(tiny(2), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 16 * 32);
  sys.run([&](NodeCtx& c) {
    // Warmup: node 1 reads 16 contiguous blocks in phase 2.
    c.phase(2);
    if (c.id() == 1)
      for (int b = 0; b < 16; ++b) c.read<int>(a + b * 32);
    c.barrier();
    // Home writes (another phase) to invalidate, then phase 2 presends.
    c.phase(4);
    if (c.id() == 0)
      for (int b = 0; b < 16; ++b) c.write<int>(a + b * 32, b);
    c.barrier();
    const auto msgs_before = pred(sys).stats().presend_msgs;
    c.phase(2);
    if (c.id() == 0) {
      // All 16 blocks travelled in a single bulk message.
      EXPECT_EQ(pred(sys).stats().presend_msgs, msgs_before + 1);
    }
    c.barrier();
  });
  EXPECT_GE(pred(sys).stats().presend_push_blocks, 16u);
}

TEST(Predictive, PresendTimeIsAccountedSeparately) {
  System sys(tiny(2), ProtocolKind::kPredictive);
  auto a = sys.space().alloc_on_node(0, 128);
  sys.run([&](NodeCtx& c) {
    for (int it = 0; it < 3; ++it) {
      c.phase(0);
      if (c.id() == 1) c.read<int>(a);
      c.barrier();
      c.phase(1);
      if (c.id() == 0) c.write<int>(a, it);
      c.barrier();
    }
  });
  EXPECT_GT(sys.recorder().node(0).presend, 0);
  EXPECT_GT(sys.recorder().node(1).presend, 0);
}

TEST(Predictive, DirectivesAreNoOpsUnderStache) {
  System sys(tiny(2), ProtocolKind::kStache);
  auto a = sys.space().alloc_on_node(0, 128);
  sys.run([&](NodeCtx& c) {
    c.phase(0);
    c.flush_phase(0);
    if (c.id() == 1) c.read<int>(a);
    c.barrier();
  });
  EXPECT_EQ(sys.recorder().node(0).presend, 0);
  EXPECT_EQ(sys.recorder().node(1).presend, 0);
}

TEST(WriteUpdate, PublishKeepsReaderCopiesFresh) {
  System sys(tiny(3), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 256);
  std::vector<std::uint64_t> faults;
  sys.run([&](NodeCtx& c) {
    auto* wu = sys.writeupdate();
    for (int it = 0; it < 4; ++it) {
      if (c.id() == 0)
        for (int b = 0; b < 4; ++b) c.write<int>(a + b * 32, it * 10 + b);
      wu->wu_publish(c.id(), 0, c.space().size_bytes());
      c.barrier();
      if (c.id() != 0)
        for (int b = 0; b < 4; ++b)
          EXPECT_EQ(c.read<int>(a + b * 32), it * 10 + b);
      c.barrier();
      if (c.id() == 1) faults.push_back(c.counters().read_faults);
    }
  });
  ASSERT_EQ(faults.size(), 4u);
  EXPECT_EQ(faults[0], 4u);       // cold misses once
  EXPECT_EQ(faults[3], faults[0]);  // updates keep copies fresh forever
}

TEST(WriteUpdate, RemoteWriterPublishesThroughHome) {
  System sys(tiny(4), ProtocolKind::kWriteUpdate);
  auto a = sys.space().alloc_on_node(0, 128);
  sys.run([&](NodeCtx& c) {
    auto* wu = sys.writeupdate();
    // Reader 2 caches the block first.
    if (c.id() == 2) c.read<int>(a);
    c.barrier();
    // Writer 1 (not home) updates and publishes.
    if (c.id() == 1) c.write<int>(a, 77);
    wu->wu_publish(c.id(), 0, c.space().size_bytes());
    c.barrier();
    // Home and the recorded reader both observe the new value locally.
    if (c.id() == 0) EXPECT_EQ(c.read<int>(a), 77);
    if (c.id() == 2) EXPECT_EQ(c.read<int>(a), 77);
  });
  // Reader 2 never faulted again after its first read.
  EXPECT_EQ(sys.recorder().node(2).read_faults, 1u);
}

}  // namespace
}  // namespace presto::runtime
