// Randomized phase-structured programs: the predictive protocol must be a
// pure performance optimization — identical results to Stache, never worse
// than re-fetching everything, and steady-state faults must not grow once
// the pattern repeats.
//
// Program shape: R rounds of P phases. In phase p, a seeded random subset
// of (writer node, block-range) assignments write, then a random subset of
// readers read and verify. Assignments are fixed across rounds (repetitive,
// like the paper's iterative applications) or drift slowly (adaptive).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "runtime/system.h"
#include "util/rng.h"

namespace presto::runtime {
namespace {

struct PhaseSpec {
  // For each block index: the writer and the set of readers in this phase.
  std::vector<int> writer;                 // -1 = nobody writes
  std::vector<std::uint64_t> reader_mask;  // bit per node
};

struct ProgramSpec {
  int nodes;
  std::uint32_t block_size;
  int nblocks;
  int phases;
  int rounds;
  std::uint64_t seed;
  bool drift;  // adaptive: one assignment changes per round
};

ProgramSpec make_spec(std::uint64_t seed, bool drift) {
  util::Rng rng(seed);
  ProgramSpec s;
  s.nodes = static_cast<int>(2 + rng.next_below(6));  // 2..7
  s.block_size = (rng.next_bool()) ? 32 : 128;
  s.nblocks = static_cast<int>(8 + rng.next_below(24));
  s.phases = static_cast<int>(2 + rng.next_below(3));
  s.rounds = 6;
  s.seed = seed * 977 + 13;
  s.drift = drift;
  return s;
}

std::vector<PhaseSpec> make_phases(const ProgramSpec& s) {
  util::Rng rng(s.seed);
  std::vector<PhaseSpec> out;
  for (int p = 0; p < s.phases; ++p) {
    PhaseSpec ph;
    ph.writer.resize(static_cast<std::size_t>(s.nblocks), -1);
    ph.reader_mask.resize(static_cast<std::size_t>(s.nblocks), 0);
    for (int b = 0; b < s.nblocks; ++b) {
      if (rng.next_bool(0.5))
        ph.writer[static_cast<std::size_t>(b)] =
            static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.nodes)));
      // Readers read in the *next* phase (producer-consumer separation, as
      // the compiler's red/black phase structure guarantees).
      std::uint64_t mask = 0;
      for (int n = 0; n < s.nodes; ++n)
        if (rng.next_bool(0.3)) mask |= 1ULL << n;
      ph.reader_mask[static_cast<std::size_t>(b)] = mask;
    }
    out.push_back(std::move(ph));
  }
  return out;
}

struct RunOutcome {
  std::uint64_t faults = 0;
  std::uint64_t faults_last_round = 0;
  std::vector<std::uint32_t> final_values;
  bool verified = true;
};

RunOutcome run_program(const ProgramSpec& s, ProtocolKind kind) {
  MachineConfig m = MachineConfig::cm5_blizzard(s.nodes, s.block_size);
  m.mem.page_size = 512;
  System sys(m, kind);
  // Spread pages round-robin so blocks have varied homes.
  const auto base = sys.space().alloc(
      static_cast<std::size_t>(s.nblocks) * s.block_size,
      [&](mem::PageId p) { return static_cast<int>(p) % s.nodes; });
  auto phases = make_phases(s);
  auto addr = [&](int b) {
    return base + static_cast<mem::Addr>(b) * s.block_size;
  };

  // Host-side reference of the latest value per block.
  std::vector<std::uint32_t> ref(static_cast<std::size_t>(s.nblocks), 0);
  RunOutcome out;
  std::uint64_t faults_before_last = 0;

  sys.run([&](NodeCtx& c) {
    for (int r = 0; r < s.rounds; ++r) {
      for (int p = 0; p < s.phases; ++p) {
        auto& ph = phases[static_cast<std::size_t>(p)];
        // Writes and reads get separate phase ids (2p, 2p+1), mirroring the
        // producer/consumer phase separation the compiler's directive
        // placement produces — mixing them in one schedule would mark every
        // block as a conflict.
        c.phase(2 * p);
        // Writers of phase p.
        for (int b = 0; b < s.nblocks; ++b) {
          if (ph.writer[static_cast<std::size_t>(b)] != c.id()) continue;
          const std::uint32_t v = static_cast<std::uint32_t>(
              1000000u * static_cast<unsigned>(p) + 1000u * static_cast<unsigned>(r) +
              static_cast<unsigned>(b));
          c.write<std::uint32_t>(addr(b), v);
          ref[static_cast<std::size_t>(b)] = v;
        }
        c.barrier();
        c.phase(2 * p + 1);
        // Readers of phase p (verify against the host reference).
        for (int b = 0; b < s.nblocks; ++b) {
          if (!(ph.reader_mask[static_cast<std::size_t>(b)] &
                (1ULL << c.id())))
            continue;
          const auto got = c.read<std::uint32_t>(addr(b));
          if (got != ref[static_cast<std::size_t>(b)]) out.verified = false;
          EXPECT_EQ(got, ref[static_cast<std::size_t>(b)])
              << "node " << c.id() << " phase " << p << " round " << r
              << " block " << b;
        }
        c.barrier();
      }
      if (r == s.rounds - 2 && c.id() == 0) {
        faults_before_last =
            sys.recorder().sum(&stats::NodeCounters::read_faults) +
            sys.recorder().sum(&stats::NodeCounters::write_faults);
      }
    }
  });
  out.faults = sys.recorder().sum(&stats::NodeCounters::read_faults) +
               sys.recorder().sum(&stats::NodeCounters::write_faults);
  out.faults_last_round = out.faults - faults_before_last;
  out.final_values = ref;
  // All protocols here derive from Stache: verify quiescent coherence
  // invariants over the whole directory.
  if (auto* st = dynamic_cast<proto::StacheProtocol*>(&sys.protocol()))
    st->check_invariants();
  return out;
}

class PhaseProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseProgram, PredictiveMatchesStacheAndReachesSteadyState) {
  const ProgramSpec spec = make_spec(GetParam(), /*drift=*/false);
  const RunOutcome stache = run_program(spec, ProtocolKind::kStache);
  const RunOutcome pred = run_program(spec, ProtocolKind::kPredictive);
  ASSERT_TRUE(stache.verified);
  ASSERT_TRUE(pred.verified);
  EXPECT_EQ(stache.final_values, pred.final_values);
  // Repetitive pattern: the predictive protocol faults strictly less in
  // total, and its last round is (near-)fault-free.
  EXPECT_LE(pred.faults, stache.faults);
  EXPECT_EQ(pred.faults_last_round, 0u)
      << "pattern repeated but faults persisted";
}

TEST_P(PhaseProgram, AnticipatePolicyIsAlsoCorrect) {
  const ProgramSpec spec = make_spec(GetParam() ^ 0xABCDEF, false);
  const RunOutcome stache = run_program(spec, ProtocolKind::kStache);
  const RunOutcome ant = run_program(spec, ProtocolKind::kPredictiveAnticipate);
  EXPECT_EQ(stache.final_values, ant.final_values);
  EXPECT_TRUE(ant.verified);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseProgram,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace presto::runtime
