#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/processor.h"

namespace presto::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, PastEventsClampToNow) {
  Engine e;
  Time seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_at(10, [&] { seen = e.now(); });  // in the past
  });
  e.run();
  EXPECT_EQ(seen, 100);
}

TEST(Engine, NestedSchedulingFromEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_in(7, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 28);
}

TEST(Processor, ChargeAdvancesLocalClock) {
  Engine e;
  auto& p = e.add_processor();
  Time end = -1;
  p.start([&] {
    p.charge(100);
    p.charge(50);
    end = p.now();
  });
  e.run();
  EXPECT_EQ(end, 150);
  EXPECT_TRUE(p.finished());
}

TEST(Processor, BlockWakesAtWakeTime) {
  Engine e;
  auto& p = e.add_processor();
  Time resumed = -1;
  p.start([&] {
    p.block();
    resumed = p.now();
  });
  e.schedule_at(500, [&] { p.wake(500); });
  e.run();
  EXPECT_EQ(resumed, 500);
}

TEST(Processor, WakeBeforeBlockIsNotLost) {
  Engine e;
  auto& p = e.add_processor();
  Time resumed = -1;
  p.start([&] {
    p.charge(100);  // runs past the wake sender
    p.block();      // latched wake is consumed immediately
    resumed = p.now();
  });
  e.schedule_at(0, [&] { p.wake(40); });
  e.run();
  EXPECT_EQ(resumed, 100);  // wake time 40 already passed
}

TEST(Processor, HorizonYieldInterleavesProcessors) {
  Engine e;
  auto& a = e.add_processor();
  auto& b = e.add_processor();
  std::vector<std::pair<char, Time>> trace;
  a.start([&] {
    for (int i = 0; i < 3; ++i) {
      a.charge(10);
      trace.emplace_back('a', a.now());
    }
  });
  b.start([&] {
    for (int i = 0; i < 3; ++i) {
      b.charge(10);
      trace.emplace_back('b', b.now());
    }
  });
  e.run();
  ASSERT_EQ(trace.size(), 6u);
  // Clocks never run far apart: each records 10,20,30.
  for (const auto& [who, t] : trace) {
    (void)who;
    EXPECT_LE(t, 30);
  }
}

TEST(Processor, StolenCyclesFoldIntoNextCharge) {
  Engine e;
  auto& p = e.add_processor();
  Time end = -1;
  p.start([&] {
    p.charge(10);
    p.block();
    p.charge(5);
    end = p.now();
  });
  e.schedule_at(100, [&] {
    p.add_stolen(20);
    p.wake(100);
  });
  e.run();
  EXPECT_EQ(end, 125);  // 100 (wake) + 5 (charge) + 20 (stolen)
  EXPECT_EQ(p.stolen_total(), 20);
}

TEST(Processor, ManyProcessorsDeterministicFinish) {
  auto run_once = [] {
    Engine e;
    std::vector<Time> finish;
    const int n = 16;
    std::vector<Processor*> ps;
    for (int i = 0; i < n; ++i) ps.push_back(&e.add_processor());
    finish.resize(n);
    for (int i = 0; i < n; ++i) {
      Processor* p = ps[static_cast<std::size_t>(i)];
      finish[static_cast<std::size_t>(i)] = 0;
      p->start([p, i, &finish] {
        for (int k = 0; k < 20; ++k) p->charge(10 + (i * 7 + k) % 13);
        finish[static_cast<std::size_t>(i)] = p->now();
      });
    }
    e.run();
    return finish;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Processor, DeadlockIsDetected) {
  auto deadlock = [] {
    Engine e;
    auto& p = e.add_processor();
    p.start([&] { p.block(); });  // nobody ever wakes it
    e.run();
  };
  EXPECT_DEATH(deadlock(), "deadlock");
}

TEST(Processor, QuantumFloorBatchesYields) {
  Engine exact;
  exact.set_quantum_floor(0);
  Engine coarse;
  coarse.set_quantum_floor(1000);
  for (Engine* e : {&exact, &coarse}) {
    auto& a = e->add_processor();
    auto& b = e->add_processor();
    a.start([&a] {
      for (int i = 0; i < 100; ++i) a.charge(10);
    });
    b.start([&b] {
      for (int i = 0; i < 100; ++i) b.charge(10);
    });
    e->run();
  }
  // Coarse quantum must yield strictly less often.
  EXPECT_LT(coarse.processor(0).yield_count(),
            exact.processor(0).yield_count());
}

TEST(Engine, TeardownWithNeverRunProcessorDoesNotHang) {
  // A processor whose thread was spawned but whose engine never ran must be
  // unwound cleanly by the destructor (kill path).
  auto e = std::make_unique<Engine>();
  auto& p = e->add_processor();
  p.start([&] { p.charge(10); });
  e.reset();  // engine destroyed without run()
  SUCCEED();
}

// Teardown must be uniform across backends for every processor lifecycle
// stage: never started, started but never scheduled (engine never ran),
// and already finished. Each case exercises a distinct destructor path
// (no context at all / Killed unwind / plain join-and-free).
class BackendTeardownTest : public ::testing::TestWithParam<Backend> {};

TEST_P(BackendTeardownTest, NeverStartedProcessor) {
  auto e = std::make_unique<Engine>(GetParam());
  e->add_processor();  // start() never called: no body, no context
  e.reset();
  SUCCEED();
}

TEST_P(BackendTeardownTest, StartedButNeverRunProcessor) {
  auto e = std::make_unique<Engine>(GetParam());
  auto& p = e->add_processor();
  bool ran = false;
  p.start([&] { ran = true; });
  e.reset();  // engine destroyed without run(): body must NOT execute
  EXPECT_FALSE(ran);
}

TEST_P(BackendTeardownTest, FinishedProcessor) {
  auto e = std::make_unique<Engine>(GetParam());
  auto& p = e->add_processor();
  p.start([&] { p.charge(10); });
  e->run();
  EXPECT_TRUE(p.finished());
  e.reset();
  SUCCEED();
}

TEST_P(BackendTeardownTest, MixedLifecyclesInOneEngine) {
  auto e = std::make_unique<Engine>(GetParam());
  e->add_processor();  // never started
  auto& p = e->add_processor();
  p.start([&] { p.charge(5); });  // started, never run
  e.reset();
  SUCCEED();
}

TEST_P(BackendTeardownTest, DeadlockIsDetected) {
  const Backend backend = GetParam();
  auto deadlock = [backend] {
    Engine e(backend);
    auto& p = e.add_processor();
    p.start([&] { p.block(); });  // nobody ever wakes it
    e.run();
  };
  EXPECT_DEATH(deadlock(), "deadlock");
}

TEST_P(BackendTeardownTest, ManyProcessorsDeterministicFinish) {
  const Backend backend = GetParam();
  auto run_once = [backend] {
    Engine e(backend);
    const int n = 16;
    std::vector<Processor*> ps;
    for (int i = 0; i < n; ++i) ps.push_back(&e.add_processor());
    std::vector<Time> finish(n, 0);
    for (int i = 0; i < n; ++i) {
      Processor* p = ps[static_cast<std::size_t>(i)];
      p->start([p, i, &finish] {
        for (int k = 0; k < 20; ++k) p->charge(10 + (i * 7 + k) % 13);
        finish[static_cast<std::size_t>(i)] = p->now();
      });
    }
    e.run();
    return finish;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(BothBackends, BackendTeardownTest,
                         ::testing::Values(Backend::kFiber, Backend::kThread),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return std::string(backend_name(info.param));
                         });

namespace overflow {
// Recursion with a per-frame buffer small enough that every frame touches
// its page: the PROT_NONE guard below the fiber stack faults before the
// overflow can reach a neighbouring allocation.
int burn(int depth) {
  volatile char buf[512];
  buf[0] = static_cast<char>(depth);
  if (depth <= 0) return buf[0];
  return burn(depth - 1) + buf[0];
}
}  // namespace overflow

TEST(FiberBackend, StackOverflowDiesInsteadOfCorrupting) {
  auto overflow_run = [] {
    Engine e(Backend::kFiber);
    e.set_fiber_stack_size(64 * 1024);
    auto& p = e.add_processor();
    p.start([] { overflow::burn(1 << 20); });
    e.run();
  };
  // Death by guard-page fault (no message) or by the canary check's
  // "fiber stack overflow" diagnostic, depending on where the frames land.
  EXPECT_DEATH(overflow_run(), "");
}

TEST(FiberBackend, EngineReportsSwitchCounters) {
  // Two interleaving processors: horizon yields force real handoffs.
  Engine e(Backend::kFiber);
  auto& a = e.add_processor();
  auto& b = e.add_processor();
  a.start([&a] {
    for (int i = 0; i < 10; ++i) a.charge(10);
  });
  b.start([&b] {
    for (int i = 0; i < 10; ++i) b.charge(10);
  });
  e.run();
  EXPECT_EQ(e.backend(), Backend::kFiber);
  EXPECT_GT(e.handoffs(), 0u);

  // One processor alone: its blocked context drives the wake events inline
  // and resumes itself — the zero-switch fast path, never a handoff.
  Engine solo(Backend::kFiber);
  auto& p = solo.add_processor();
  p.start([&p] {
    for (int i = 0; i < 5; ++i) {
      p.charge(10);
      p.block();
    }
  });
  for (Time t = 1; t <= 5; ++t)
    solo.schedule_at(t * 100, [&p, t] { p.wake(t * 100); });
  solo.run();
  EXPECT_GT(solo.direct_resumes(), 0u);
}

}  // namespace
}  // namespace presto::sim
