#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace presto::util {
namespace {

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, UnionReportsChange) {
  Bitset a(70), b(70);
  b.set(69);
  EXPECT_TRUE(a.union_with(b));
  EXPECT_FALSE(a.union_with(b));  // no further change
  EXPECT_TRUE(a.test(69));
}

TEST(Bitset, IntersectAndSubtract) {
  Bitset a(10), b(10);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  b.set(3);
  b.set(4);
  Bitset i = a;
  i.intersect_with(b);
  EXPECT_EQ(i.count(), 2u);
  Bitset s = a;
  s.subtract(b);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(1));
}

TEST(Bitset, ForEachAscending) {
  Bitset b(200);
  b.set(3);
  b.set(65);
  b.set(199);
  std::vector<std::size_t> got;
  b.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<std::size_t>{3, 65, 199}));
}

TEST(Bitset, EqualityRequiresSameBits) {
  Bitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_FALSE(a == b);
}

TEST(Rng, DeterministicStream) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const auto v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const auto u = r.next_below(17);
    EXPECT_LT(u, 17u);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng r(123);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Table, AlignsColumnsAndRendersAllCells) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Bars, RendersLegendAndScales) {
  std::vector<Bar> bars = {{"v1", {{"wait", 1.0}, {"work", 3.0}}},
                           {"v2", {{"wait", 0.5}, {"work", 1.5}}}};
  const std::string s = render_stacked_bars(bars, 40);
  EXPECT_NE(s.find("legend"), std::string::npos);
  EXPECT_NE(s.find("v1"), std::string::npos);
  EXPECT_NE(s.find("(4.00)"), std::string::npos);
  EXPECT_NE(s.find("(2.00)"), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog",     "--alpha=3", "--beta", "7",
                        "--flag",   "--gamma",   "--delta=x"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_TRUE(cli.get_bool("gamma"));
  EXPECT_EQ(cli.get("delta", ""), "x");
  EXPECT_EQ(cli.get_int("missing", -2), -2);
  EXPECT_FALSE(cli.has("missing"));
  cli.reject_unknown();  // every flag above was queried
}

TEST(Cli, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(Cli, RejectsMalformedDouble) {
  const char* argv[] = {"prog", "--rate=fast"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_double("rate", 0.0), "expects a number");
}

TEST(Cli, AcceptsNegativeAndFloatForms) {
  const char* argv[] = {"prog", "--n=-42", "--rate=1.5e3"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), -42);
  EXPECT_EQ(cli.get_double("rate", 0.0), 1500.0);
  cli.reject_unknown();
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--iters=3", "--itres=4"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("iters", 0), 3);
  EXPECT_DEATH(cli.reject_unknown(), "unknown flag\\(s\\): --itres");
}

}  // namespace
}  // namespace presto::util
