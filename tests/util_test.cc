#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace presto::util {
namespace {

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, UnionReportsChange) {
  Bitset a(70), b(70);
  b.set(69);
  EXPECT_TRUE(a.union_with(b));
  EXPECT_FALSE(a.union_with(b));  // no further change
  EXPECT_TRUE(a.test(69));
}

TEST(Bitset, IntersectAndSubtract) {
  Bitset a(10), b(10);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  b.set(3);
  b.set(4);
  Bitset i = a;
  i.intersect_with(b);
  EXPECT_EQ(i.count(), 2u);
  Bitset s = a;
  s.subtract(b);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(1));
}

TEST(Bitset, ForEachAscending) {
  Bitset b(200);
  b.set(3);
  b.set(65);
  b.set(199);
  std::vector<std::size_t> got;
  b.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<std::size_t>{3, 65, 199}));
}

TEST(Bitset, EqualityRequiresSameBits) {
  Bitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_FALSE(a == b);
}

// ---- Hybrid NodeSet: inline word below 64, heap spill above -----------------

TEST(NodeSet, InlineMembersNeverAllocate) {
  NodeSet s;
  EXPECT_TRUE(s.none());
  s.set(0);
  s.set(5);
  s.set(63);
  EXPECT_EQ(s.heap_bytes(), 0u);  // members < 64 stay in the inline word
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(64));  // probing spill range without a spill array
  EXPECT_FALSE(s.test(1000));
  EXPECT_EQ(s.word(), (1ULL << 0) | (1ULL << 5) | (1ULL << 63));
  s.reset(5);
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(s.first(), 0);
}

TEST(NodeSet, SpillAcrossTheInlineBoundary) {
  NodeSet s;
  s.set(63);
  s.set(64);   // first spill word
  s.set(130);  // second spill word
  s.set(1023);
  EXPECT_GT(s.heap_bytes(), 0u);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.test(63) && s.test(64) && s.test(130) && s.test(1023));
  EXPECT_FALSE(s.test(65) || s.test(129) || s.test(1022));
  EXPECT_EQ(s.first(), 63);
  s.reset(63);
  EXPECT_EQ(s.first(), 64);
  EXPECT_FALSE(s.single());
}

TEST(NodeSet, ForEachIsGloballyAscending) {
  NodeSet s;
  const int members[] = {900, 2, 64, 63, 127, 128, 65, 0};
  for (int m : members) s.set(m);
  std::vector<int> got;
  s.for_each([&](int n) { got.push_back(n); });
  EXPECT_EQ(got, (std::vector<int>{0, 2, 63, 64, 65, 127, 128, 900}));
}

TEST(NodeSet, ShrinkRestoresInlineRepresentation) {
  // Clearing the last spill member must free the heap array (the canonical
  // invariant: ext != nullptr implies a member >= 64), so equality with a
  // never-spilled set holds and empty-set checks stay one compare.
  NodeSet s;
  s.set(3);
  s.set(200);
  EXPECT_GT(s.heap_bytes(), 0u);
  s.reset(200);
  EXPECT_EQ(s.heap_bytes(), 0u);
  EXPECT_EQ(s, NodeSet::of(3));

  NodeSet t;
  t.set(200);
  t.reset(200);
  EXPECT_TRUE(t.none());
  EXPECT_EQ(t, NodeSet());

  // without() is copy + reset: the copy shrinks, the source is untouched.
  NodeSet u;
  u.set(7);
  u.set(100);
  const NodeSet v = u.without(100);
  EXPECT_EQ(v.heap_bytes(), 0u);
  EXPECT_EQ(v, NodeSet::of(7));
  EXPECT_TRUE(u.test(100));
}

TEST(NodeSet, SetAlgebraSpansTheBoundary) {
  NodeSet a, b;
  a.set(1);
  a.set(70);
  a.set(300);
  b.set(1);
  b.set(70);
  b.set(500);

  NodeSet u = a | b;
  EXPECT_EQ(u.count(), 4);
  EXPECT_TRUE(u.test(300) && u.test(500));

  NodeSet i = a & b;
  EXPECT_EQ(i.count(), 2);
  EXPECT_TRUE(i.test(1) && i.test(70));
  EXPECT_FALSE(i.test(300));

  NodeSet d = a;
  d.subtract(b);
  EXPECT_EQ(d, NodeSet::of(300));
  EXPECT_TRUE(d.single());

  // Subtracting everything shrinks back to the empty inline set.
  NodeSet e = a;
  e.subtract(a);
  EXPECT_TRUE(e.none());
  EXPECT_EQ(e.heap_bytes(), 0u);
}

TEST(NodeSet, EqualityIsSemanticNotRepresentational) {
  // A set that once spilled and shrank equals one that never spilled, and
  // spill arrays of different capacities with equal members compare equal.
  NodeSet once;
  once.set(9);
  once.set(64);
  once.reset(64);
  EXPECT_EQ(once, NodeSet::of(9));

  NodeSet small, large;
  small.set(64);
  large.set(64);
  large.set(4000);   // grows the spill array
  large.reset(4000); // leaves capacity behind; members now equal `small`
  EXPECT_EQ(small, large);
  EXPECT_NE(small, NodeSet::of(63));
}

TEST(NodeSet, CopyAndMoveSemantics) {
  NodeSet s;
  s.set(2);
  s.set(128);

  NodeSet copy(s);  // deep copy: distinct spill arrays
  copy.set(129);
  EXPECT_FALSE(s.test(129));
  EXPECT_TRUE(copy.test(2) && copy.test(128));

  NodeSet assigned;
  assigned.set(64);  // existing spill is replaced
  assigned = s;
  EXPECT_EQ(assigned, s);
  EXPECT_FALSE(assigned.test(64));

  NodeSet moved(std::move(copy));
  EXPECT_TRUE(moved.test(129));
  EXPECT_TRUE(copy.none());  // NOLINT(bugprone-use-after-move): spec'd empty

  NodeSet target;
  target.set(70);
  target = std::move(moved);
  EXPECT_TRUE(target.test(128) && target.test(129));
  EXPECT_FALSE(target.test(70));
}

TEST(NodeSet, MatchesBitsetOnSharedDomain) {
  // On ids < 64 (the classic machine range) NodeSet and Bitset must agree
  // operation for operation — NodeSet is the Bitset fast path the protocols
  // rely on for bit-identical emission order.
  Rng rng(7);
  NodeSet ns_a, ns_b;
  Bitset bs_a(64), bs_b(64);
  for (int i = 0; i < 40; ++i) {
    const int n = static_cast<int>(rng.next_below_unbiased(64));
    if (i % 3 == 0) {
      ns_b.set(n);
      bs_b.set(static_cast<std::size_t>(n));
    } else {
      ns_a.set(n);
      bs_a.set(static_cast<std::size_t>(n));
    }
  }
  auto agree = [](const NodeSet& ns, const Bitset& bs) {
    EXPECT_EQ(static_cast<std::size_t>(ns.count()), bs.count());
    std::vector<int> from_ns, from_bs;
    ns.for_each([&](int n) { from_ns.push_back(n); });
    bs.for_each([&](std::size_t n) { from_bs.push_back(static_cast<int>(n)); });
    EXPECT_EQ(from_ns, from_bs);
  };
  agree(ns_a, bs_a);
  NodeSet ns_u = ns_a | ns_b;
  Bitset bs_u = bs_a;
  bs_u.union_with(bs_b);
  agree(ns_u, bs_u);
  NodeSet ns_i = ns_a & ns_b;
  Bitset bs_i = bs_a;
  bs_i.intersect_with(bs_b);
  agree(ns_i, bs_i);
  NodeSet ns_d = ns_a;
  ns_d.subtract(ns_b);
  Bitset bs_d = bs_a;
  bs_d.subtract(bs_b);
  agree(ns_d, bs_d);
}

TEST(Rng, DeterministicStream) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const auto v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const auto u = r.next_below(17);
    EXPECT_LT(u, 17u);
  }
}

// Golden vectors: next_below is modulo-biased but bit-stable — golden stats
// and determinism tests depend on its exact stream consumption. These pin
// the raw stream and both bounded variants so a drive-by "fix" of the bias
// (or a generator swap) fails loudly here instead of corrupting goldens.
TEST(Rng, GoldenVectors) {
  Rng raw(2026);
  const std::uint64_t u64s[] = {10583478199052185109ULL,
                                5232962402658359512ULL,
                                14988153452874227418ULL,
                                16485387573092771586ULL};
  for (const std::uint64_t want : u64s) EXPECT_EQ(raw.next_u64(), want);

  Rng biased(2026);
  const std::uint64_t below10[] = {9, 2, 8, 6, 4, 6, 2, 9};
  for (const std::uint64_t want : below10)
    EXPECT_EQ(biased.next_below(10), want);

  Rng unbiased(2026);
  const std::uint64_t unbiased10[] = {9, 2, 8, 6, 4, 6, 2, 9};
  for (const std::uint64_t want : unbiased10)
    EXPECT_EQ(unbiased.next_below_unbiased(10), want);

  // n = 0xC000...: the rejection threshold is 2^62, so ~1 in 4 raw words is
  // rejected and the stream consumption genuinely diverges from next_below.
  Rng big(2026);
  const std::uint64_t big_n = 0xC000000000000000ULL;
  const std::uint64_t unbiased_big[] = {
      10583478199052185109ULL, 5232962402658359512ULL,
      1153095397592063706ULL, 2650329517810607874ULL};
  for (const std::uint64_t want : unbiased_big)
    EXPECT_EQ(big.next_below_unbiased(big_n), want);
}

TEST(Rng, UnbiasedMatchesBiasedForPowersOfTwo) {
  // Powers of two divide 2^64 exactly: the rejection region is empty, so
  // next_below_unbiased consumes exactly one word and agrees with next_below
  // at every stream position.
  Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t n = 1ULL << (1 + i % 62);
    EXPECT_EQ(a.next_below_unbiased(n), b.next_below(n));
  }
}

TEST(Rng, UnbiasedStaysInBounds) {
  Rng r(31);
  const std::uint64_t ns[] = {1, 2, 3, 7, 1000003, 0x8000000000000001ULL,
                              0xFFFFFFFFFFFFFFFFULL};
  for (const std::uint64_t n : ns)
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below_unbiased(n), n);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng r(123);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Table, AlignsColumnsAndRendersAllCells) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Bars, RendersLegendAndScales) {
  std::vector<Bar> bars = {{"v1", {{"wait", 1.0}, {"work", 3.0}}},
                           {"v2", {{"wait", 0.5}, {"work", 1.5}}}};
  const std::string s = render_stacked_bars(bars, 40);
  EXPECT_NE(s.find("legend"), std::string::npos);
  EXPECT_NE(s.find("v1"), std::string::npos);
  EXPECT_NE(s.find("(4.00)"), std::string::npos);
  EXPECT_NE(s.find("(2.00)"), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog",     "--alpha=3", "--beta", "7",
                        "--flag",   "--gamma",   "--delta=x"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_TRUE(cli.get_bool("gamma"));
  EXPECT_EQ(cli.get("delta", ""), "x");
  EXPECT_EQ(cli.get_int("missing", -2), -2);
  EXPECT_FALSE(cli.has("missing"));
  cli.reject_unknown();  // every flag above was queried
}

TEST(Cli, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(Cli, RejectsMalformedDouble) {
  const char* argv[] = {"prog", "--rate=fast"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_double("rate", 0.0), "expects a number");
}

TEST(Cli, AcceptsNegativeAndFloatForms) {
  const char* argv[] = {"prog", "--n=-42", "--rate=1.5e3"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), -42);
  EXPECT_EQ(cli.get_double("rate", 0.0), 1500.0);
  cli.reject_unknown();
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--iters=3", "--itres=4"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("iters", 0), 3);
  EXPECT_DEATH(cli.reject_unknown(), "unknown flag\\(s\\): --itres");
}

TEST(Cli, RejectsOutOfRangeInt) {
  // One digit past INT64_MAX: strtoll clamps and sets ERANGE; silently
  // returning the clamp once cost a bench an overnight run.
  const char* argv[] = {"prog", "--n=92233720368547758070"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "out of range");
}

TEST(Cli, RejectsOutOfRangeDouble) {
  const char* argv[] = {"prog", "--rate=1e999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_double("rate", 0.0), "out of range");
}

TEST(Cli, AcceptsExtremeInRangeValues) {
  const char* argv[] = {"prog", "--lo=-9223372036854775808",
                        "--hi=9223372036854775807", "--tiny=1e-300"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("lo", 0), INT64_MIN);
  EXPECT_EQ(cli.get_int("hi", 0), INT64_MAX);
  EXPECT_GT(cli.get_double("tiny", 0.0), 0.0);  // small but normal, no ERANGE
  cli.reject_unknown();
}

TEST(Cli, RejectsEmptyValue) {
  const char* argv[] = {"prog", "--n="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(Cli, EmptyStringValueIsDistinctFromMissing) {
  const char* argv[] = {"prog", "--name="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("name"));
  EXPECT_EQ(cli.get("name", "def"), "");
  cli.reject_unknown();
}

TEST(Cli, RepeatedFlagLastWins) {
  const char* argv[] = {"prog", "--n=1", "--n", "2", "--n=3"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 3);
  cli.reject_unknown();
}

TEST(Cli, SpaceFormConsumesNegativeNumbers) {
  // "-5" does not start with "--", so it is a value, not the next flag.
  const char* argv[] = {"prog", "--n", "-5", "--flag"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), -5);
  EXPECT_TRUE(cli.get_bool("flag"));
  cli.reject_unknown();
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_DEATH(Cli(2, const_cast<char**>(argv)),
               "unexpected positional argument");
}

}  // namespace
}  // namespace presto::util
