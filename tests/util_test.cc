#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace presto::util {
namespace {

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, UnionReportsChange) {
  Bitset a(70), b(70);
  b.set(69);
  EXPECT_TRUE(a.union_with(b));
  EXPECT_FALSE(a.union_with(b));  // no further change
  EXPECT_TRUE(a.test(69));
}

TEST(Bitset, IntersectAndSubtract) {
  Bitset a(10), b(10);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  b.set(3);
  b.set(4);
  Bitset i = a;
  i.intersect_with(b);
  EXPECT_EQ(i.count(), 2u);
  Bitset s = a;
  s.subtract(b);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(1));
}

TEST(Bitset, ForEachAscending) {
  Bitset b(200);
  b.set(3);
  b.set(65);
  b.set(199);
  std::vector<std::size_t> got;
  b.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<std::size_t>{3, 65, 199}));
}

TEST(Bitset, EqualityRequiresSameBits) {
  Bitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_FALSE(a == b);
}

TEST(Rng, DeterministicStream) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const auto v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const auto u = r.next_below(17);
    EXPECT_LT(u, 17u);
  }
}

// Golden vectors: next_below is modulo-biased but bit-stable — golden stats
// and determinism tests depend on its exact stream consumption. These pin
// the raw stream and both bounded variants so a drive-by "fix" of the bias
// (or a generator swap) fails loudly here instead of corrupting goldens.
TEST(Rng, GoldenVectors) {
  Rng raw(2026);
  const std::uint64_t u64s[] = {10583478199052185109ULL,
                                5232962402658359512ULL,
                                14988153452874227418ULL,
                                16485387573092771586ULL};
  for (const std::uint64_t want : u64s) EXPECT_EQ(raw.next_u64(), want);

  Rng biased(2026);
  const std::uint64_t below10[] = {9, 2, 8, 6, 4, 6, 2, 9};
  for (const std::uint64_t want : below10)
    EXPECT_EQ(biased.next_below(10), want);

  Rng unbiased(2026);
  const std::uint64_t unbiased10[] = {9, 2, 8, 6, 4, 6, 2, 9};
  for (const std::uint64_t want : unbiased10)
    EXPECT_EQ(unbiased.next_below_unbiased(10), want);

  // n = 0xC000...: the rejection threshold is 2^62, so ~1 in 4 raw words is
  // rejected and the stream consumption genuinely diverges from next_below.
  Rng big(2026);
  const std::uint64_t big_n = 0xC000000000000000ULL;
  const std::uint64_t unbiased_big[] = {
      10583478199052185109ULL, 5232962402658359512ULL,
      1153095397592063706ULL, 2650329517810607874ULL};
  for (const std::uint64_t want : unbiased_big)
    EXPECT_EQ(big.next_below_unbiased(big_n), want);
}

TEST(Rng, UnbiasedMatchesBiasedForPowersOfTwo) {
  // Powers of two divide 2^64 exactly: the rejection region is empty, so
  // next_below_unbiased consumes exactly one word and agrees with next_below
  // at every stream position.
  Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t n = 1ULL << (1 + i % 62);
    EXPECT_EQ(a.next_below_unbiased(n), b.next_below(n));
  }
}

TEST(Rng, UnbiasedStaysInBounds) {
  Rng r(31);
  const std::uint64_t ns[] = {1, 2, 3, 7, 1000003, 0x8000000000000001ULL,
                              0xFFFFFFFFFFFFFFFFULL};
  for (const std::uint64_t n : ns)
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below_unbiased(n), n);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng r(123);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Table, AlignsColumnsAndRendersAllCells) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Bars, RendersLegendAndScales) {
  std::vector<Bar> bars = {{"v1", {{"wait", 1.0}, {"work", 3.0}}},
                           {"v2", {{"wait", 0.5}, {"work", 1.5}}}};
  const std::string s = render_stacked_bars(bars, 40);
  EXPECT_NE(s.find("legend"), std::string::npos);
  EXPECT_NE(s.find("v1"), std::string::npos);
  EXPECT_NE(s.find("(4.00)"), std::string::npos);
  EXPECT_NE(s.find("(2.00)"), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog",     "--alpha=3", "--beta", "7",
                        "--flag",   "--gamma",   "--delta=x"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_TRUE(cli.get_bool("gamma"));
  EXPECT_EQ(cli.get("delta", ""), "x");
  EXPECT_EQ(cli.get_int("missing", -2), -2);
  EXPECT_FALSE(cli.has("missing"));
  cli.reject_unknown();  // every flag above was queried
}

TEST(Cli, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(Cli, RejectsMalformedDouble) {
  const char* argv[] = {"prog", "--rate=fast"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_double("rate", 0.0), "expects a number");
}

TEST(Cli, AcceptsNegativeAndFloatForms) {
  const char* argv[] = {"prog", "--n=-42", "--rate=1.5e3"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), -42);
  EXPECT_EQ(cli.get_double("rate", 0.0), 1500.0);
  cli.reject_unknown();
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--iters=3", "--itres=4"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("iters", 0), 3);
  EXPECT_DEATH(cli.reject_unknown(), "unknown flag\\(s\\): --itres");
}

TEST(Cli, RejectsOutOfRangeInt) {
  // One digit past INT64_MAX: strtoll clamps and sets ERANGE; silently
  // returning the clamp once cost a bench an overnight run.
  const char* argv[] = {"prog", "--n=92233720368547758070"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "out of range");
}

TEST(Cli, RejectsOutOfRangeDouble) {
  const char* argv[] = {"prog", "--rate=1e999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_double("rate", 0.0), "out of range");
}

TEST(Cli, AcceptsExtremeInRangeValues) {
  const char* argv[] = {"prog", "--lo=-9223372036854775808",
                        "--hi=9223372036854775807", "--tiny=1e-300"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("lo", 0), INT64_MIN);
  EXPECT_EQ(cli.get_int("hi", 0), INT64_MAX);
  EXPECT_GT(cli.get_double("tiny", 0.0), 0.0);  // small but normal, no ERANGE
  cli.reject_unknown();
}

TEST(Cli, RejectsEmptyValue) {
  const char* argv[] = {"prog", "--n="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(Cli, EmptyStringValueIsDistinctFromMissing) {
  const char* argv[] = {"prog", "--name="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("name"));
  EXPECT_EQ(cli.get("name", "def"), "");
  cli.reject_unknown();
}

TEST(Cli, RepeatedFlagLastWins) {
  const char* argv[] = {"prog", "--n=1", "--n", "2", "--n=3"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 3);
  cli.reject_unknown();
}

TEST(Cli, SpaceFormConsumesNegativeNumbers) {
  // "-5" does not start with "--", so it is a value, not the next flag.
  const char* argv[] = {"prog", "--n", "-5", "--flag"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), -5);
  EXPECT_TRUE(cli.get_bool("flag"));
  cli.reject_unknown();
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_DEATH(Cli(2, const_cast<char**>(argv)),
               "unexpected positional argument");
}

}  // namespace
}  // namespace presto::util
