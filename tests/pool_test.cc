// util/pool.h: the parallel experiment driver must be deterministic (index-
// ordered results identical to a serial run), propagate failures, and safely
// run many independent Engine instances concurrently — each engine is
// internally sequential, so instance-level parallelism is the only host
// parallelism the simulator has.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "golden_workload.h"
#include "util/pool.h"

namespace presto {
namespace {

TEST(PoolTest, ResultsAreIndexOrdered) {
  const auto out = util::parallel_map(64, 8, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(PoolTest, SerialAndParallelAgree) {
  const auto serial =
      util::parallel_map(17, 1, [](int i) { return std::to_string(i * 3); });
  const auto parallel =
      util::parallel_map(17, 4, [](int i) { return std::to_string(i * 3); });
  EXPECT_EQ(serial, parallel);
}

TEST(PoolTest, ZeroAndNegativeCountsAreEmpty) {
  EXPECT_TRUE(util::parallel_map(0, 4, [](int) { return 1; }).empty());
  EXPECT_TRUE(util::parallel_map(-3, 4, [](int) { return 1; }).empty());
}

TEST(PoolTest, FirstExceptionPropagates) {
  EXPECT_THROW(util::parallel_map(32, 4,
                                  [](int i) {
                                    if (i == 7) throw std::runtime_error("boom");
                                    return i;
                                  }),
               std::runtime_error);
  // Serial path too.
  EXPECT_THROW(util::parallel_map(32, 1,
                                  [](int i) {
                                    if (i == 7) throw std::runtime_error("boom");
                                    return i;
                                  }),
               std::runtime_error);
}

TEST(PoolTest, EveryIndexRunsExactlyOnce) {
  std::atomic<int> calls{0};
  util::parallel_for(100, 8, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

// The load-bearing property: N complete Systems (engine + protocol + memory)
// running concurrently on the pool produce exactly the results a serial loop
// produces — no shared mutable state leaks between instances (the fiber
// backend's switch bookkeeping is thread-local by construction).
TEST(PoolTest, ConcurrentEnginesMatchSerialRuns) {
  const runtime::ProtocolKind kinds[] = {
      runtime::ProtocolKind::kStache,
      runtime::ProtocolKind::kPredictive,
      runtime::ProtocolKind::kPredictiveAnticipate,
  };
  auto run_one = [&](int i) {
    return testutil::run_micro_workload(kinds[i % 3], /*quantum_floor=*/0,
                                        /*nodes=*/2 + i % 3, /*rounds=*/3);
  };
  const auto serial = util::parallel_map(9, 1, run_one);
  const auto parallel = util::parallel_map(9, 4, run_one);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    EXPECT_EQ(serial[i].msgs, parallel[i].msgs);
    EXPECT_EQ(serial[i].bytes, parallel[i].bytes);
    EXPECT_EQ(serial[i].events, parallel[i].events);
    EXPECT_EQ(serial[i].exec, parallel[i].exec);
    EXPECT_EQ(serial[i].mem_hash, parallel[i].mem_hash);
  }
}

}  // namespace
}  // namespace presto
