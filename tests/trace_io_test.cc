// Binary trace format: round-trip identity and adversarial-input hardening.
//
// serialize → parse → serialize must be a byte-level fixed point for real
// traces (micro workload and fuzz-corpus programs). The reader must treat
// the file as hostile: truncation at any boundary, bit flips in any
// validated region, version skew, and inconsistent counts all fail with a
// diagnostic string and never crash (this file runs under ASan in the
// sanitizer CI job).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "check/fuzz.h"
#include "golden_workload.h"
#include "runtime/lock.h"
#include "trace/analysis.h"
#include "trace/file.h"

using namespace presto;

namespace {

using runtime::ProtocolKind;

trace::TraceData sample_trace(ProtocolKind kind = ProtocolKind::kPredictive) {
  const auto r = testutil::run_micro_workload(
      kind, /*quantum_floor=*/0, /*nodes=*/4, /*rounds=*/3,
      sim::default_backend(), /*block_size=*/32, /*traced=*/true);
  return r.trace_data;
}

void expect_identical(const trace::TraceData& a, const trace::TraceData& b) {
  EXPECT_EQ(std::memcmp(&a.meta, &b.meta, sizeof(a.meta)), 0);
  ASSERT_EQ(a.events.size(), b.events.size());
  if (!a.events.empty())
    EXPECT_EQ(std::memcmp(a.events.data(), b.events.data(),
                          a.events.size() * sizeof(trace::Event)),
              0);
}

TEST(TraceIo, SerializeParseIdentity) {
  const auto t = sample_trace();
  ASSERT_FALSE(t.events.empty());
  const auto bytes = trace::serialize(t);
  trace::TraceData back;
  std::string err;
  ASSERT_TRUE(trace::parse(bytes.data(), bytes.size(), &back, &err)) << err;
  expect_identical(t, back);
  // Re-serialization is a fixed point.
  const auto bytes2 = trace::serialize(back);
  ASSERT_EQ(bytes.size(), bytes2.size());
  EXPECT_EQ(std::memcmp(bytes.data(), bytes2.data(), bytes.size()), 0);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  trace::TraceData t;
  t.meta.nodes = 2;
  t.meta.block_size = 64;
  std::strncpy(t.meta.protocol, "stache", sizeof(t.meta.protocol) - 1);
  const auto bytes = trace::serialize(t);
  trace::TraceData back;
  std::string err;
  ASSERT_TRUE(trace::parse(bytes.data(), bytes.size(), &back, &err)) << err;
  expect_identical(t, back);
}

TEST(TraceIo, FileRoundTripIdentity) {
  const auto t = sample_trace(ProtocolKind::kStache);
  const std::string path = ::testing::TempDir() + "trace_io_roundtrip.ptrc";
  std::string err;
  ASSERT_TRUE(trace::write_file(t, path, &err)) << err;
  trace::TraceData back;
  ASSERT_TRUE(trace::read_file(path, &back, &err)) << err;
  expect_identical(t, back);
  std::remove(path.c_str());
}

// Round-trip over fuzz-corpus programs: richer protocol mixes (locks,
// reductions, drifting writers) than the micro workload.
TEST(TraceIo, FuzzProgramRoundTrip) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto prog = check::generate(seed);
    check::TraceCapture cap;
    const auto res = check::run_program(prog, ProtocolKind::kPredictive,
                                        net::NetConfig{}, &cap);
    ASSERT_EQ(res.read_mismatches, 0u);
    const auto bytes = trace::serialize(cap.data);
    trace::TraceData back;
    std::string err;
    ASSERT_TRUE(trace::parse(bytes.data(), bytes.size(), &back, &err)) << err;
    expect_identical(cap.data, back);
  }
}

// A workload hitting the event kinds the micro workload never emits: shared
// locks (contended handoffs) and explicit phase flushes, with no phase
// directive before the first round so the "(before first phase)" attribution
// bucket is populated too.
trace::TraceData lock_flush_trace() {
  auto m = runtime::MachineConfig::cm5_blizzard(4, 32);
  m.trace.enabled = true;
  runtime::System sys(m, ProtocolKind::kPredictive);
  auto lock = runtime::SharedLock::create(sys.space(), 0);
  const auto counter = sys.space().alloc_on_node(0, 64);
  sys.run([&](runtime::NodeCtx& c) {
    for (int r = 0; r < 3; ++r) {
      lock.acquire(c);
      c.rmw<std::uint64_t>(counter, [](std::uint64_t& v) { ++v; });
      lock.release(c);
      c.barrier();
      c.phase(0);
      if (c.id() == 0) c.write<int>(counter + 32, r);
      c.barrier();
      c.flush_phase(0);
      c.barrier();
    }
  });
  return sys.tracer()->build(m.costs, m.net);
}

TEST(TraceIo, LockAndFlushEventsRoundTripAndExport) {
  const auto t = lock_flush_trace();
  const auto lock_acq = static_cast<std::size_t>(
      trace::EventKind::kLockAcquired);
  const auto flush = static_cast<std::size_t>(trace::EventKind::kPhaseFlush);
  std::size_t acq = 0, fl = 0;
  for (const auto& e : t.events) {
    if (e.kind == lock_acq) ++acq;
    if (e.kind == flush) ++fl;
  }
  EXPECT_EQ(acq, 12u);  // 4 nodes × 3 rounds
  EXPECT_EQ(fl, 12u);
  // Round trip.
  const auto bytes = trace::serialize(t);
  trace::TraceData back;
  std::string err;
  ASSERT_TRUE(trace::parse(bytes.data(), bytes.size(), &back, &err)) << err;
  expect_identical(t, back);
  // Perfetto export renders lock slices and flush instants.
  const std::string path = ::testing::TempDir() + "trace_io_lock.json";
  ASSERT_TRUE(trace::write_perfetto(t, path, &err)) << err;
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(body.find("lock b"), std::string::npos);
  EXPECT_NE(body.find("unlock b"), std::string::npos);
  EXPECT_NE(body.find("flush phase 0"), std::string::npos);
  // The text reports handle the pre-phase bucket and lock wait.
  const auto summary = trace::summarize(t);
  EXPECT_NE(summary.find("(before first phase)"), std::string::npos);
  const auto att = trace::attribute(t);
  EXPECT_GT(att.lock_wait, 0u);
}

// diff() must report every divergence axis: meta fields, per-kind counts,
// and the first diverging event when counts agree.
TEST(TraceIo, DiffReportsDivergences) {
  const auto a = sample_trace(ProtocolKind::kStache);
  const auto b = sample_trace(ProtocolKind::kPredictive);
  const auto d = trace::diff(a, b);
  EXPECT_NE(d.find("protocol: stache vs predictive"), std::string::npos);
  EXPECT_NE(d.find("exec time:"), std::string::npos);

  trace::TraceData meta_skew = a;
  meta_skew.meta.nodes += 1;
  meta_skew.meta.block_size *= 2;
  const auto dm = trace::diff(a, meta_skew);
  EXPECT_NE(dm.find("nodes:"), std::string::npos);
  EXPECT_NE(dm.find("block size:"), std::string::npos);

  trace::TraceData ev_skew = a;
  ev_skew.events[ev_skew.events.size() / 2].t += 10;
  const auto de = trace::diff(a, ev_skew);
  EXPECT_NE(de.find("first divergence at event"), std::string::npos);
}

// The Perfetto export is write-only (ui.perfetto.dev is the reader), but it
// must emit structurally sound JSON: brace/bracket balance, one object per
// line in the traceEvents array, and events for every node lane.
TEST(TraceIo, PerfettoExportIsBalancedJson) {
  const auto t = sample_trace();
  const std::string path = ::testing::TempDir() + "trace_io_perfetto.json";
  std::string err;
  ASSERT_TRUE(trace::write_perfetto(t, path, &err)) << err;
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_FALSE(body.empty());
  long braces = 0, brackets = 0;
  std::size_t slices = 0, metas = 0;
  for (const char c : body) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  for (std::size_t pos = 0; (pos = body.find("\"ph\":\"X\"", pos)) !=
                            std::string::npos;
       ++pos)
    ++slices;
  for (std::size_t pos = 0;
       (pos = body.find("thread_name", pos)) != std::string::npos; ++pos)
    ++metas;
  EXPECT_GT(slices, 0u);
  // One app lane + one protocol lane per node.
  EXPECT_EQ(metas, 2u * t.meta.nodes);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceIo, MissingFileFailsCleanly) {
  trace::TraceData out;
  std::string err;
  EXPECT_FALSE(trace::read_file("/nonexistent/dir/trace.ptrc", &out, &err));
  EXPECT_FALSE(err.empty());
}

// Truncation at every structural boundary and at arbitrary cut points
// inside the payload must fail with a diagnostic, never crash or read
// out of bounds.
TEST(TraceIoAdversarial, TruncationFailsCleanly) {
  const auto t = sample_trace();
  const auto bytes = trace::serialize(t);
  const std::size_t kFixed = 4 + sizeof(trace::TraceMeta) + 8 + 8;
  const std::size_t cuts[] = {
      0, 1, 3, 4, 4 + sizeof(trace::TraceMeta) - 1,
      kFixed - 9,  // header complete, footer missing
      kFixed - 1,  // one byte short of the minimum
      kFixed + sizeof(trace::Event) / 2,   // mid-first-event
      bytes.size() - sizeof(trace::Event),  // one event short
      bytes.size() - 8,                     // footer missing
      bytes.size() - 1,
  };
  for (const std::size_t n : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(n));
    ASSERT_LT(n, bytes.size());
    trace::TraceData out;
    std::string err;
    EXPECT_FALSE(trace::parse(bytes.data(), n, &out, &err));
    EXPECT_FALSE(err.empty());
  }
}

// Single-bit flips in every validated region: magic, version, count, event
// payload, and the integrity footer must each be rejected.
TEST(TraceIoAdversarial, BitFlipsFailCleanly) {
  const auto t = sample_trace();
  const auto orig = trace::serialize(t);
  const std::size_t count_off = 4 + sizeof(trace::TraceMeta);
  const std::size_t events_off = count_off + 8;
  const std::size_t offsets[] = {
      0, 2,                      // magic
      4,                         // version (first byte of meta)
      count_off, count_off + 4,  // event count
      events_off + 1,            // first event
      events_off + 17 * sizeof(trace::Event) + 9,  // mid-stream
      orig.size() - sizeof(trace::Event) - 8 + 5,  // last event
      orig.size() - 8, orig.size() - 1,            // footer
  };
  for (const std::size_t off : offsets) {
    for (const int bit : {0, 7}) {
      SCOPED_TRACE("flip byte " + std::to_string(off) + " bit " +
                   std::to_string(bit));
      ASSERT_LT(off, orig.size());
      auto bytes = orig;
      bytes[off] ^= static_cast<std::byte>(1u << bit);
      trace::TraceData out;
      std::string err;
      EXPECT_FALSE(trace::parse(bytes.data(), bytes.size(), &out, &err));
      EXPECT_FALSE(err.empty());
    }
  }
}

TEST(TraceIoAdversarial, VersionSkewReportsVersions) {
  const auto t = sample_trace();
  auto bytes = trace::serialize(t);
  // meta.version is the first field after the magic.
  std::uint32_t v = trace::kTraceVersion + 1;
  std::memcpy(bytes.data() + 4, &v, sizeof(v));
  trace::TraceData out;
  std::string err;
  EXPECT_FALSE(trace::parse(bytes.data(), bytes.size(), &out, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_NE(err.find(std::to_string(v)), std::string::npos) << err;
}

TEST(TraceIoAdversarial, ImpossibleMetaRejected) {
  const auto t = sample_trace();

  auto patch_meta = [&](auto&& mutate) {
    trace::TraceData bad = t;
    mutate(bad.meta);
    const auto bytes = trace::serialize(bad);
    trace::TraceData out;
    std::string err;
    const bool ok = trace::parse(bytes.data(), bytes.size(), &out, &err);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(err.empty());
  };

  patch_meta([](trace::TraceMeta& m) { m.nodes = 0; });
  patch_meta([](trace::TraceMeta& m) { m.nodes = 1u << 20; });
  patch_meta([](trace::TraceMeta& m) { m.block_size = 48; });  // not 2^k
  patch_meta([](trace::TraceMeta& m) {
    std::memset(m.protocol, 'x', sizeof(m.protocol));  // no NUL
  });
}

// Events referencing impossible nodes or kinds are rejected even when the
// hash is recomputed to match (a hostile writer, not line noise).
TEST(TraceIoAdversarial, ImpossibleEventsRejected) {
  auto reject = [](auto&& mutate) {
    trace::TraceData bad;
    bad.meta.nodes = 2;
    bad.meta.block_size = 32;
    std::strncpy(bad.meta.protocol, "stache", sizeof(bad.meta.protocol) - 1);
    trace::Event e;
    e.kind = static_cast<std::uint16_t>(trace::EventKind::kBarrierArrive);
    e.node = 0;
    e.seq = 0;
    bad.events.push_back(e);
    e.seq = 1;
    bad.events.push_back(e);
    mutate(bad.events);
    const auto bytes = trace::serialize(bad);  // hash footer is consistent
    trace::TraceData out;
    std::string err;
    EXPECT_FALSE(trace::parse(bytes.data(), bytes.size(), &out, &err));
    EXPECT_FALSE(err.empty());
  };

  reject([](std::vector<trace::Event>& ev) {
    ev[1].kind = static_cast<std::uint16_t>(trace::EventKind::kKindCount);
  });
  reject([](std::vector<trace::Event>& ev) { ev[1].node = 2; });
  reject([](std::vector<trace::Event>& ev) { ev[1].node = -2; });
  reject([](std::vector<trace::Event>& ev) { ev[1].seq = 0; });  // not monotone
}

// Parsed-but-corrupt data must also be safe downstream: the analysis passes
// only ever see validated TraceData, and on valid inputs they are total
// functions (no UB on weird-but-valid streams).
TEST(TraceIo, AnalysisTotalOnValidatedInput) {
  const auto t = sample_trace();
  const auto bytes = trace::serialize(t);
  trace::TraceData back;
  std::string err;
  ASSERT_TRUE(trace::parse(bytes.data(), bytes.size(), &back, &err)) << err;
  const auto att = trace::attribute(back);
  EXPECT_EQ(att.all.count,
            att.by_class[0].count + att.by_class[1].count +
                att.by_class[2].count);
  const auto scheds = trace::phase_schedules(back);
  EXPECT_FALSE(trace::summarize(back).empty());
  EXPECT_FALSE(trace::phases_report(back).empty());
  EXPECT_EQ(trace::diff(back, back), "traces are equivalent\n");
  (void)scheds;
}

}  // namespace
