#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace presto::net {
namespace {

TEST(Network, LatencyIsStartupPlusPerByte) {
  sim::Engine e;
  NetConfig cfg;
  cfg.wire_latency = 1000;
  cfg.per_byte = 10;
  Network net(e, 4, cfg);
  sim::Time arrived = -1;
  const sim::Time a = net.send(0, 1, 32, /*depart=*/0,
                               [&] { arrived = e.now(); });
  EXPECT_EQ(a, 1000 + 320);
  e.run();
  EXPECT_EQ(arrived, 1000 + 320);
}

TEST(Network, SelfSendUsesLoopback) {
  sim::Engine e;
  NetConfig cfg;
  cfg.wire_latency = 1000;
  cfg.per_byte = 10;
  cfg.self_latency = 77;
  Network net(e, 4, cfg);
  const sim::Time a = net.send(2, 2, 4096, 0, [] {});
  EXPECT_EQ(a, 77);  // size-independent loopback
}

TEST(Network, FifoPerChannel) {
  sim::Engine e;
  NetConfig cfg;
  cfg.wire_latency = 100;
  cfg.per_byte = 10;
  Network net(e, 4, cfg);
  std::vector<int> order;
  // Big message first, then a small one that would naively overtake it.
  net.send(0, 1, 1000, 0, [&] { order.push_back(1); });
  net.send(0, 1, 4, 1, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, DistinctChannelsDoNotSerialize) {
  sim::Engine e;
  NetConfig cfg;
  cfg.wire_latency = 100;
  cfg.per_byte = 10;
  Network net(e, 4, cfg);
  std::vector<int> order;
  net.send(0, 1, 1000, 0, [&] { order.push_back(1); });  // arrives 10100
  net.send(2, 1, 4, 0, [&] { order.push_back(2); });     // arrives 140
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Network, CountsMessagesAndBytes) {
  sim::Engine e;
  Network net(e, 4, NetConfig{});
  net.send(0, 1, 100, 0, [] {});
  net.send(0, 2, 50, 0, [] {});
  net.send(3, 0, 25, 0, [] {});
  e.run();
  EXPECT_EQ(net.messages_sent(), 3u);
  EXPECT_EQ(net.bytes_sent(), 175u);
  EXPECT_EQ(net.messages_from(0), 2u);
  EXPECT_EQ(net.bytes_from(0), 150u);
  EXPECT_EQ(net.messages_from(3), 1u);
}

TEST(Network, RejectsBadEndpoints) {
  sim::Engine e;
  Network net(e, 2, NetConfig{});
  EXPECT_DEATH(net.send(0, 5, 1, 0, [] {}), "bad endpoints");
}

}  // namespace
}  // namespace presto::net
