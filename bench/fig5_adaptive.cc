// Figure 5: execution time of four C** versions of Adaptive — with and
// without compiler-directed communication optimization, at 32- and 256-byte
// cache blocks — on a 32-node CM-5/Blizzard machine model. The paper's
// result: the predictive protocol converts most remote-data wait into a
// much smaller presend phase, also shrinking synchronization time from load
// imbalance; the best optimized version is ~1.5x the best unoptimized one,
// and at 256-byte blocks presend moves redundant data, narrowing the gap.
#include "apps/adaptive/adaptive.h"
#include "bench/bench_common.h"
#include "runtime/machine.h"

using namespace presto;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);

  apps::AdaptiveParams params;  // paper: 128x128 mesh, 100 iterations
  params.n = static_cast<std::size_t>(
      cli.get_int("mesh", static_cast<std::int64_t>(params.n)));
  params.iters =
      static_cast<int>(cli.get_int("iters", params.iters) / scale.divide);
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();
  if (scale.divide > 1 && params.n > 32) params.n /= 2;
  if (params.iters < 1) params.iters = 1;

  struct Version {
    const char* label;
    std::uint32_t block;
    bool optimized;
  };
  const std::vector<Version> versions = {
      {"C** unopt", 32, false},
      {"C** opt", 32, true},
      {"C** unopt", 256, false},
      {"C** opt", 256, true},
  };

  std::vector<apps::AppResult> results;
  std::vector<stats::Report> reports;
  for (const auto& v : versions) {
    auto machine =
        runtime::MachineConfig::cm5_blizzard(scale.nodes, v.block);
    machine.trace = trace_cfg;
    scale.apply(machine);
    auto r = apps::run_adaptive(params, machine,
                                v.optimized
                                    ? runtime::ProtocolKind::kPredictive
                                    : runtime::ProtocolKind::kStache,
                                v.optimized);
    r.report.label = apps::version_label(v.label, v.block);
    std::printf("%-16s checksum=%.6f\n", r.report.label.c_str(), r.checksum);
    std::fflush(stdout);
    reports.push_back(r.report);
    results.push_back(std::move(r));
  }
  bench::check_equal_checksums(results);

  bench::print_results(
      "Figure 5: Adaptive (" + std::to_string(params.n) + "x" +
          std::to_string(params.n) + ", " + std::to_string(params.iters) +
          " iters, " + std::to_string(scale.nodes) + " nodes)",
      reports);

  // Paper headline: best optimized vs best unoptimized.
  const double best_opt =
      std::min(static_cast<double>(reports[1].exec),
               static_cast<double>(reports[3].exec));
  const double best_unopt =
      std::min(static_cast<double>(reports[0].exec),
               static_cast<double>(reports[2].exec));
  std::printf("\nbest unopt / best opt = %.2fx (paper: 1.56x)\n",
              best_unopt / best_opt);
  return 0;
}
