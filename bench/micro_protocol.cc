// Micro-benchmarks (google-benchmark) of the protocol building blocks: the
// Stache remote-miss round trip, the predictive presend per-block cost with
// and without coalescing, schedule recording, barriers, and shared locks.
// Reported times are *host* costs of simulating each operation; the
// simulated (virtual) cost is printed as a counter.
#include <benchmark/benchmark.h>

#include "runtime/aggregate.h"
#include "runtime/lock.h"
#include "runtime/system.h"

using namespace presto;

namespace {

runtime::MachineConfig tiny(int nodes, std::uint32_t block = 32) {
  return runtime::MachineConfig::cm5_blizzard(nodes, block);
}

// One remote read miss per iteration (producer invalidates each round).
void BM_StacheRemoteMiss(benchmark::State& state) {
  const int iters = static_cast<int>(state.max_iterations);
  runtime::System sys(tiny(3), runtime::ProtocolKind::kStache);
  const auto a = sys.space().alloc_on_node(0, 64);
  sim::Time total_wait = 0;
  int done = 0;
  // Drive the whole simulation once; count an "iteration" per miss.
  sys.run([&](runtime::NodeCtx& c) {
    for (int i = 0; i < iters; ++i) {
      if (c.id() == 0) c.write<int>(a, i);
      c.barrier();
      if (c.id() == 1) {
        benchmark::DoNotOptimize(c.read<int>(a));
        ++done;
      }
      c.barrier();
    }
    if (c.id() == 1) total_wait = c.counters().remote_wait;
  });
  for (auto _ : state) {
    // Host work already done above; account it per miss.
  }
  state.SetItemsProcessed(done);
  state.counters["sim_miss_us"] = benchmark::Counter(
      sim::to_micros(total_wait) / std::max(1, done));
}

void BM_PresendPerBlock(benchmark::State& state) {
  const bool coalesce = state.range(0) != 0;
  const int blocks = 256;
  runtime::System sys(tiny(2), runtime::ProtocolKind::kPredictive);
  sys.predictive()->set_coalescing(coalesce);
  const auto a = sys.space().alloc_on_node(0, blocks * 32);
  const int rounds = static_cast<int>(state.max_iterations) / blocks + 2;
  sim::Time presend = 0;
  std::uint64_t pushed = 0;
  sys.run([&](runtime::NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) {
      c.phase(0);
      if (c.id() == 0)
        for (int b = 0; b < blocks; ++b) c.write<int>(a + b * 32, r + b);
      c.barrier();
      c.phase(1);
      if (c.id() == 1)
        for (int b = 0; b < blocks; ++b)
          benchmark::DoNotOptimize(c.read<int>(a + b * 32));
      c.barrier();
    }
    if (c.id() == 0) {
      presend = c.counters().presend;
      pushed = c.counters().presend_blocks_sent;
    }
  });
  for (auto _ : state) {
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushed));
  state.counters["sim_us_per_block"] = benchmark::Counter(
      sim::to_micros(presend) / std::max<double>(1.0, static_cast<double>(pushed)));
  state.counters["msgs"] = benchmark::Counter(
      static_cast<double>(sys.recorder().node(0).presend_msgs));
}

void BM_BarrierLatency(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int rounds = 64;
  runtime::System sys(tiny(nodes), runtime::ProtocolKind::kStache);
  sim::Time exec = 0;
  sys.run([&](runtime::NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) c.barrier();
    if (c.id() == 0) exec = c.proc().now();
  });
  for (auto _ : state) {
  }
  state.SetItemsProcessed(rounds);
  state.counters["sim_us_per_barrier"] =
      benchmark::Counter(sim::to_micros(exec) / rounds);
}

void BM_SharedLockHandoff(benchmark::State& state) {
  const int nodes = 4;
  const int rounds = 32;
  runtime::System sys(tiny(nodes), runtime::ProtocolKind::kStache);
  auto lock = runtime::SharedLock::create(sys.space(), 0);
  const auto counter = sys.space().alloc_on_node(0, 64);
  sys.run([&](runtime::NodeCtx& c) {
    for (int r = 0; r < rounds; ++r) {
      lock.acquire(c);
      c.rmw<std::uint64_t>(counter, [](std::uint64_t& v) { ++v; });
      lock.release(c);
      c.barrier();
    }
  });
  for (auto _ : state) {
  }
  state.SetItemsProcessed(rounds * nodes);
}

// Host-side cost of the fine-grain access check fast path.
void BM_AccessCheckFastPath(benchmark::State& state) {
  runtime::System sys(tiny(1), runtime::ProtocolKind::kStache);
  const auto a = sys.space().alloc_on_node(0, 4096);
  auto& space = sys.space();
  space.write_value<int>(0, a, 7);
  int v = 0;
  for (auto _ : state) {
    v += space.read_value<int>(0, a + static_cast<mem::Addr>((v & 63) * 32 % 4096));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_StacheRemoteMiss)->Iterations(64);
BENCHMARK(BM_PresendPerBlock)->Arg(1)->Arg(0)->Iterations(1024);
BENCHMARK(BM_BarrierLatency)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_SharedLockHandoff);
BENCHMARK(BM_AccessCheckFastPath);

BENCHMARK_MAIN();
