// Table 1: the benchmark applications and their data sets, verified by
// actually running each workload generator and reporting its measured
// characteristics (shared accesses, faults, merge traffic, messages) — one
// cell per application x protocol, with the protocol list taken from the
// registry (runtime::kAllProtocolKinds, restrictable via --protocol=NAME).
#include "apps/adaptive/adaptive.h"
#include "apps/barnes/barnes.h"
#include "apps/ocean/ocean.h"
#include "apps/ranker/ranker.h"
#include "apps/water/water.h"
#include "bench/bench_common.h"
#include "runtime/machine.h"
#include "util/pool.h"
#include "util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);
  const auto protocols = bench::protocols_from_cli(cli);
  const int jobs =
      static_cast<int>(cli.get_int("jobs", util::default_pool_jobs()));
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();

  util::Table spec({"Program", "Brief Description", "Data set (paper)"});
  spec.add_row({"Adaptive", "Structured adaptive mesh",
                "128x128 mesh, 100 iterations"});
  spec.add_row({"Barnes", "Gravitational N-body simulation",
                "16384 bodies, 3 iterations"});
  spec.add_row({"Water", "Molecular dynamics", "512 molecules, 20 iterations"});
  spec.add_row({"Ocean", "Red-black stencil relaxation",
                "258x258 grid, 100 iterations"});
  spec.add_row({"Ranker", "Pagerank push, drifting graph",
                "4096 vertices, 20 iterations"});
  std::printf("Table 1: Benchmark applications\n%s\n", spec.to_string().c_str());

  // Measured workload characteristics (scaled sizes) per protocol.
  auto machine = runtime::MachineConfig::cm5_blizzard(scale.nodes, 32);
  machine.trace = trace_cfg;
  scale.apply(machine);

  apps::AdaptiveParams ap;
  ap.iters = static_cast<int>(100 / scale.divide);
  if (scale.divide > 1) ap.n = 64;
  if (ap.iters < 1) ap.iters = 1;

  apps::BarnesParams bp;
  bp.bodies = static_cast<std::size_t>(16384 / scale.divide);

  apps::WaterParams wp;
  wp.molecules = static_cast<std::size_t>(512 / scale.divide);
  wp.steps = static_cast<int>(20 / scale.divide);
  if (wp.steps < 2) wp.steps = 2;

  apps::OceanParams op;
  op.n = scale.divide > 1 ? 64 : 258;
  op.iters = static_cast<int>(100 / scale.divide);
  if (op.iters < 1) op.iters = 1;

  apps::RankerParams rp;
  rp.vertices = static_cast<std::size_t>(4096 / scale.divide);
  rp.iters = static_cast<int>(20 / scale.divide);
  if (rp.iters < 2) rp.iters = 2;

  constexpr int kApps = 5;
  const char* app_names[kApps] = {"Adaptive", "Barnes", "Water", "Ocean",
                                  "Ranker"};
  const int nprotos = static_cast<int>(protocols.size());

  // Every (application, protocol) cell is an independent System instance;
  // run them on the host pool (index-ordered results keep the table
  // deterministic: app-major, protocol order as listed).
  const auto results =
      util::parallel_map(kApps * nprotos, jobs, [&](int i) {
        const int a = i / nprotos;
        const auto kind = protocols[static_cast<std::size_t>(i % nprotos)];
        const bool directives =
            kind == runtime::ProtocolKind::kPredictive ||
            kind == runtime::ProtocolKind::kPredictiveAnticipate;
        switch (a) {
          case 0: return apps::run_adaptive(ap, machine, kind, directives);
          case 1: return apps::run_barnes(bp, machine, kind, directives);
          case 2: return apps::run_water(wp, machine, kind, directives);
          case 3: return apps::run_ocean(op, machine, kind, directives);
          default: return apps::run_ranker(rp, machine, kind, directives);
        }
      });

  util::Table t({"Program", "protocol", "shared accesses", "faults",
                 "cc flushes", "local hit %", "presend blocks", "msgs",
                 "sim exec (s)"});
  for (int a = 0; a < kApps; ++a) {
    std::vector<apps::AppResult> per_app(
        results.begin() + a * nprotos,
        results.begin() + (a + 1) * nprotos);
    // Every protocol must compute the same answer for the same program —
    // schedules change when data moves, never what a read observes.
    bench::check_equal_checksums(per_app);
    for (int p = 0; p < nprotos; ++p) {
      const stats::Report& r = per_app[static_cast<std::size_t>(p)].report;
      t.add_row({app_names[a],
                 runtime::protocol_kind_name(protocols[
                     static_cast<std::size_t>(p)]),
                 std::to_string(r.shared_accesses), std::to_string(r.faults),
                 std::to_string(r.cc_flushes),
                 util::fmt_double(r.local_hit_pct, 2),
                 std::to_string(r.presend_blocks), std::to_string(r.msgs),
                 util::fmt_double(sim::to_seconds(r.exec), 3)});
    }
  }
  std::printf("Measured characteristics (32B blocks, %d nodes, "
              "scale 1/%lld):\n%s",
              scale.nodes, static_cast<long long>(scale.divide),
              t.to_string().c_str());
  // When traced, surface the attribution block (miss classes including
  // merge traffic) for each application's protocol sweep.
  if (machine.trace.enabled) {
    for (int a = 0; a < kApps; ++a) {
      std::vector<stats::Report> reports;
      for (int p = 0; p < nprotos; ++p)
        reports.push_back(
            results[static_cast<std::size_t>(a * nprotos + p)].report);
      const std::string trace = stats::Report::trace_summary(reports);
      if (!trace.empty()) std::printf("%s: %s", app_names[a], trace.c_str());
    }
  }
  return 0;
}
