// Table 1: the benchmark applications and their data sets, verified by
// actually running each workload generator and reporting its measured
// characteristics (shared accesses, faults, schedule entries, messages).
#include "apps/adaptive/adaptive.h"
#include "apps/barnes/barnes.h"
#include "apps/water/water.h"
#include "bench/bench_common.h"
#include "runtime/machine.h"
#include "util/pool.h"
#include "util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);
  const int jobs =
      static_cast<int>(cli.get_int("jobs", util::default_pool_jobs()));
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();

  util::Table spec({"Program", "Brief Description", "Data set (paper)"});
  spec.add_row({"Adaptive", "Structured adaptive mesh",
                "128x128 mesh, 100 iterations"});
  spec.add_row({"Barnes", "Gravitational N-body simulation",
                "16384 bodies, 3 iterations"});
  spec.add_row({"Water", "Molecular dynamics", "512 molecules, 20 iterations"});
  std::printf("Table 1: Benchmark applications\n%s\n", spec.to_string().c_str());

  // Measured workload characteristics (optimized versions, scaled sizes).
  auto machine = runtime::MachineConfig::cm5_blizzard(scale.nodes, 32);
  machine.trace = trace_cfg;
  scale.apply(machine);

  apps::AdaptiveParams ap;
  ap.iters = static_cast<int>(100 / scale.divide);
  if (scale.divide > 1) ap.n = 64;
  if (ap.iters < 1) ap.iters = 1;

  apps::BarnesParams bp;
  bp.bodies = static_cast<std::size_t>(16384 / scale.divide);

  apps::WaterParams wp;
  wp.molecules = static_cast<std::size_t>(512 / scale.divide);
  wp.steps = static_cast<int>(20 / scale.divide);
  if (wp.steps < 2) wp.steps = 2;

  // The three workloads are independent System instances; run them on the
  // host pool (index-ordered results keep the table deterministic).
  const auto results = util::parallel_map(3, jobs, [&](int i) {
    switch (i) {
      case 0:
        return apps::run_adaptive(ap, machine,
                                  runtime::ProtocolKind::kPredictive, true);
      case 1:
        return apps::run_barnes(bp, machine,
                                runtime::ProtocolKind::kPredictive, true);
      default:
        return apps::run_water(wp, machine,
                               runtime::ProtocolKind::kPredictive, true);
    }
  });
  const auto& a = results[0];
  const auto& b = results[1];
  const auto& w = results[2];

  util::Table t({"Program", "shared accesses", "faults", "local hit %",
                 "presend blocks", "msgs", "sim exec (s)"});
  auto add = [&](const char* name, const stats::Report& r) {
    t.add_row({name, std::to_string(r.shared_accesses),
               std::to_string(r.faults), util::fmt_double(r.local_hit_pct, 2),
               std::to_string(r.presend_blocks), std::to_string(r.msgs),
               util::fmt_double(sim::to_seconds(r.exec), 3)});
  };
  add("Adaptive", a.report);
  add("Barnes", b.report);
  add("Water", w.report);
  std::printf("Measured characteristics (predictive, 32B blocks, %d nodes, "
              "scale 1/%lld):\n%s",
              scale.nodes, static_cast<long long>(scale.divide),
              t.to_string().c_str());
  return 0;
}
