// Ablation (§3.4): bulk-message coalescing in the presend phase. The
// predictive protocol coalesces neighbouring cache blocks into bulk
// messages to amortize message startup costs; this bench runs Water and
// Adaptive with coalescing on and off and reports presend time, messages,
// and total execution time. Without access to System internals the apps
// expose no toggle, so the bench drives the runtime directly through a
// synthetic producer-consumer kernel plus the real Water app.
#include "apps/common/versions.h"
#include "bench/bench_common.h"
#include "runtime/aggregate.h"
#include "runtime/system.h"
#include "util/table.h"

using namespace presto;

namespace {

// Synthetic kernel: one producer node writes a large contiguous region each
// iteration; every other node reads all of it (maximum coalescing benefit).
stats::Report run_stream(int nodes, std::size_t kilobytes, int iters,
                         bool coalesce, const trace::TraceConfig& tcfg) {
  auto machine = runtime::MachineConfig::cm5_blizzard(nodes, 32);
  machine.trace = tcfg;
  runtime::System sys(machine, runtime::ProtocolKind::kPredictive);
  sys.predictive()->set_coalescing(coalesce);
  const std::size_t bytes = kilobytes * 1024;
  const auto base = sys.space().alloc_on_node(0, bytes);
  sys.run([&](runtime::NodeCtx& c) {
    for (int it = 0; it < iters; ++it) {
      c.phase(0);
      if (c.id() == 0)
        for (std::size_t off = 0; off < bytes; off += 32)
          c.write<int>(base + off, static_cast<int>(off + static_cast<std::size_t>(it)));
      c.barrier();
      c.phase(1);
      if (c.id() != 0) {
        long sum = 0;
        for (std::size_t off = 0; off < bytes; off += 32)
          sum += c.read<int>(base + off);
        c.charge_flops(static_cast<std::int64_t>(bytes / 32));
        if (sum == 42) c.charge(1);  // keep the sum alive
      }
      c.barrier();
    }
  });
  return sys.report(coalesce ? "coalescing on" : "coalescing off");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);
  const std::size_t kb =
      static_cast<std::size_t>(cli.get_int("kb", 64) / scale.divide + 1);
  const int iters = static_cast<int>(cli.get_int("iters", 8));
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();

  std::vector<stats::Report> reports;
  for (const bool coalesce : {true, false})
    reports.push_back(run_stream(scale.nodes, kb, iters, coalesce, trace_cfg));

  bench::print_results("Ablation: presend bulk coalescing (producer-consumer "
                       "stream, " + std::to_string(kb) + " KiB/iter)",
                       reports);
  std::printf("\npresend msgs: %llu (on) vs %llu (off); presend time ratio "
              "off/on = %.2fx\n",
              static_cast<unsigned long long>(reports[0].msgs),
              static_cast<unsigned long long>(reports[1].msgs),
              static_cast<double>(reports[1].presend) /
                  std::max<double>(1.0, static_cast<double>(reports[0].presend)));
  return 0;
}
