// Ablation: computation/data distribution choice (paper §4.1 lists block,
// row-block, and tiled schemes). A 5-point Jacobi stencil (two grids,
// alternating sweeps) exchanges one halo ring per sweep: row-block moves 2
// full rows per node, a tiled mesh moves 2(w+h) shorter edges — the classic
// surface-to-volume trade, measured under both Stache and the predictive
// protocol.
#include <algorithm>

#include "bench/bench_common.h"
#include "runtime/aggregate.h"
#include "runtime/system.h"

using namespace presto;

namespace {

struct Result {
  stats::Report report;
  double checksum = 0.0;
};

template <typename Agg, typename OwnedFn>
Result run_stencil(const std::string& label, runtime::ProtocolKind kind,
                   bool directives, int nodes, std::size_t n, int iters,
                   OwnedFn owned, const trace::TraceConfig& tcfg) {
  auto machine = runtime::MachineConfig::cm5_blizzard(nodes, 32);
  machine.trace = tcfg;
  runtime::System sys(machine, kind);
  Agg a = Agg::create(sys.space(), n, n);
  Agg b = Agg::create(sys.space(), n, n);
  Result result;
  sys.run([&](runtime::NodeCtx& c) {
    owned(c, a, [&](std::size_t i, std::size_t j) {
      a.set(c, i, j, static_cast<float>(i * 31 + j));
      b.set(c, i, j, 0.0f);
    });
    c.barrier();
    const Agg* cur = &b;
    const Agg* prev = &a;
    for (int it = 0; it < iters; ++it) {
      if (directives) c.phase(it % 2);
      owned(c, *cur, [&](std::size_t i, std::size_t j) {
        const float up = i > 0 ? prev->get(c, i - 1, j) : 0.0f;
        const float down = i + 1 < n ? prev->get(c, i + 1, j) : 0.0f;
        const float left = j > 0 ? prev->get(c, i, j - 1) : 0.0f;
        const float right = j + 1 < n ? prev->get(c, i, j + 1) : 0.0f;
        c.charge_flops(4);
        cur->set(c, i, j, 0.25f * (up + down + left + right));
      });
      c.barrier();
      std::swap(cur, prev);
    }
    double local = 0.0;
    owned(c, *prev, [&](std::size_t i, std::size_t j) {
      local += prev->get(c, i, j);
    });
    const double total = c.reduce_sum(local);
    if (c.id() == 0) result.checksum = total;
  });
  result.report = sys.report(label);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);
  const std::size_t n =
      static_cast<std::size_t>(cli.get_int("mesh", 128) /
                               (scale.divide > 1 ? 2 : 1));
  // At least 6 sweeps so the schedules have repetition to exploit.
  const int iters = std::max<int>(
      6, static_cast<int>(cli.get_int("iters", 20) / scale.divide));
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();

  auto rowblock_owned = [](runtime::NodeCtx& c,
                           const runtime::Aggregate2D<float>& agg,
                           auto&& fn) {
    const auto [lo, hi] = agg.row_range(c.id());
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t j = 0; j < agg.cols(); ++j) fn(i, j);
  };
  auto tiled_owned = [](runtime::NodeCtx& c,
                        const runtime::TiledAggregate2D<float>& agg,
                        auto&& fn) {
    const auto t = agg.tile(c.id());
    for (std::size_t i = t.row_lo; i < t.row_hi; ++i)
      for (std::size_t j = t.col_lo; j < t.col_hi; ++j) fn(i, j);
  };

  std::vector<stats::Report> reports;
  std::vector<double> checksums;
  for (const bool opt : {false, true}) {
    const auto kind = opt ? runtime::ProtocolKind::kPredictive
                          : runtime::ProtocolKind::kStache;
    const char* suffix = opt ? " + predictive" : " (stache)";
    auto rb = run_stencil<runtime::Aggregate2D<float>>(
        std::string("row-block") + suffix, kind, opt, scale.nodes, n, iters,
        rowblock_owned, trace_cfg);
    auto ti = run_stencil<runtime::TiledAggregate2D<float>>(
        std::string("tiled") + suffix, kind, opt, scale.nodes, n, iters,
        tiled_owned, trace_cfg);
    reports.push_back(rb.report);
    reports.push_back(ti.report);
    checksums.push_back(rb.checksum);
    checksums.push_back(ti.checksum);
  }
  for (double cs : checksums)
    if (cs != checksums.front())
      std::fprintf(stderr, "CHECKSUM MISMATCH across distributions!\n");

  bench::print_results(
      "Ablation: data distribution (Jacobi stencil, " + std::to_string(n) +
          "x" + std::to_string(n) + ", " + std::to_string(iters) +
          " sweeps, " + std::to_string(scale.nodes) + " nodes)",
      reports);
  return 0;
}
