// Ablation (§5.4): the predictive protocol trades an extra presend phase
// and schedule-building for fewer high-latency remote misses — worthwhile
// on software DSMs (Blizzard/CM-5, ~200us misses), less so on
// hardware-assisted DSMs. This bench sweeps the machine's messaging costs
// from CM-5/Blizzard down to hardware-DSM scale and reports the optimized/
// unoptimized speedup on Water at each point.
#include "apps/water/water.h"
#include "bench/bench_common.h"
#include "runtime/machine.h"
#include "util/pool.h"
#include "util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);
  const int jobs =
      static_cast<int>(cli.get_int("jobs", util::default_pool_jobs()));
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();

  apps::WaterParams params;
  params.molecules = static_cast<std::size_t>(512 / scale.divide);
  params.steps = static_cast<int>(10 / scale.divide);
  if (params.molecules < 64) params.molecules = 64;
  if (params.steps < 2) params.steps = 2;

  util::Table t({"machine", "wire latency", "unopt exec (s)", "opt exec (s)",
                 "speedup", "opt presend (s)"});

  struct Point {
    const char* name;
    double latency_scale;  // applied to the CM-5 software messaging costs
  };
  const std::vector<Point> points = {
      {"cm5_blizzard x4", 4.0}, {"cm5_blizzard", 1.0},
      {"cm5_blizzard /4", 0.25}, {"cm5_blizzard /16", 0.0625},
      {"hw_dsm", -1.0},
  };

  auto machine_for = [&](const Point& pt) {
    runtime::MachineConfig m =
        pt.latency_scale < 0
            ? runtime::MachineConfig::hw_dsm(scale.nodes, 64)
            : runtime::MachineConfig::cm5_blizzard(scale.nodes, 32);
    if (pt.latency_scale > 0) {
      auto mul = [&](sim::Time v) {
        return static_cast<sim::Time>(static_cast<double>(v) *
                                      pt.latency_scale);
      };
      m.net.wire_latency = mul(m.net.wire_latency);
      m.net.per_byte = mul(m.net.per_byte);
      m.costs.fault = mul(m.costs.fault);
      m.costs.handler = mul(m.costs.handler);
    }
    m.trace = trace_cfg;
    scale.apply(m);
    return m;
  };

  // Flatten the sweep into independent (point, variant) simulations and run
  // them on the host pool; parallel_map returns index-ordered results, so
  // the printed table is identical at any --jobs.
  const int n_runs = static_cast<int>(points.size()) * 2;
  const auto runs = util::parallel_map(n_runs, jobs, [&](int i) {
    const Point& pt = points[static_cast<std::size_t>(i / 2)];
    const bool optimized = (i % 2) != 0;
    const runtime::MachineConfig m = machine_for(pt);
    return optimized
               ? apps::run_water(params, m, runtime::ProtocolKind::kPredictive,
                                 true)
               : apps::run_water(params, m, runtime::ProtocolKind::kStache,
                                 false);
  });

  for (std::size_t p = 0; p < points.size(); ++p) {
    const Point& pt = points[p];
    const runtime::MachineConfig m = machine_for(pt);
    const auto& unopt = runs[2 * p];
    const auto& opt = runs[2 * p + 1];
    t.add_row({pt.name,
               util::fmt_double(sim::to_micros(m.net.wire_latency), 1) + " us",
               util::fmt_double(sim::to_seconds(unopt.report.exec), 4),
               util::fmt_double(sim::to_seconds(opt.report.exec), 4),
               util::fmt_double(static_cast<double>(unopt.report.exec) /
                                    static_cast<double>(opt.report.exec),
                                3),
               util::fmt_double(sim::to_seconds(opt.report.presend), 4)});
  }

  std::printf("\n== Ablation: remote-latency regime sweep (Water, %d nodes) "
              "==\n%s",
              scale.nodes, t.to_string().c_str());
  return 0;
}
