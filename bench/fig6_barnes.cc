// Figure 6: execution time of five versions of Barnes — C** with and
// without optimized communication at 32- and 1024-byte cache blocks, plus a
// hand-optimized SPMD version on an application-specific write-update
// protocol (Falsafi et al. [5]). The paper's result: at 32-byte blocks the
// predictive protocol cuts shared-memory wait sharply, but Barnes's spatial
// locality lets the unoptimized version exploit 1024-byte blocks, ending up
// marginally faster than the optimized one; both 1024-byte versions edge
// out the hand-optimized SPMD baseline.
#include "apps/barnes/barnes.h"
#include "bench/bench_common.h"
#include "runtime/machine.h"

using namespace presto;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto scale = bench::Scale::from_cli(cli);

  apps::BarnesParams params;  // paper: 16384 bodies, 3 iterations
  params.bodies = static_cast<std::size_t>(
      cli.get_int("bodies", static_cast<std::int64_t>(params.bodies)) /
      scale.divide);
  params.steps = static_cast<int>(cli.get_int("steps", params.steps));
  const auto trace_cfg = bench::trace_from_cli(cli);
  cli.reject_unknown();
  if (params.bodies < 64) params.bodies = 64;

  struct Version {
    const char* label;
    std::uint32_t block;
    runtime::ProtocolKind kind;
    bool directives;
  };
  const std::vector<Version> versions = {
      {"C** unopt", 32, runtime::ProtocolKind::kStache, false},
      {"C** opt", 32, runtime::ProtocolKind::kPredictive, true},
      {"C** unopt", 1024, runtime::ProtocolKind::kStache, false},
      {"C** opt", 1024, runtime::ProtocolKind::kPredictive, true},
      {"SPMD hand-opt", 1024, runtime::ProtocolKind::kWriteUpdate, false},
  };

  std::vector<apps::AppResult> results;
  std::vector<stats::Report> reports;
  for (const auto& v : versions) {
    auto machine =
        runtime::MachineConfig::cm5_blizzard(scale.nodes, v.block);
    machine.trace = trace_cfg;
    scale.apply(machine);
    auto r = apps::run_barnes(params, machine, v.kind, v.directives);
    r.report.label = apps::version_label(v.label, v.block);
    std::printf("%-20s checksum=%.9f\n", r.report.label.c_str(), r.checksum);
    std::fflush(stdout);
    reports.push_back(r.report);
    results.push_back(std::move(r));
  }
  bench::check_equal_checksums(results);

  bench::print_results(
      "Figure 6: Barnes (" + std::to_string(params.bodies) + " bodies, " +
          std::to_string(params.steps) + " steps, " +
          std::to_string(scale.nodes) + " nodes)",
      reports);

  std::printf("\nunopt(32)/opt(32) = %.2fx; opt(1024)/unopt(1024) = %.2fx "
              "(paper: opt(32) much faster; unopt(1024) marginally ahead)\n",
              static_cast<double>(reports[0].exec) /
                  static_cast<double>(reports[1].exec),
              static_cast<double>(reports[3].exec) /
                  static_cast<double>(reports[2].exec));
  return 0;
}
