// Shared helpers for the figure benches: CLI scaling flags and report
// printing in the paper's format (stacked bars normalized to the fastest
// version + a counter table).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/common/versions.h"
#include "runtime/machine.h"
#include "stats/report.h"
#include "trace/config.h"
#include "util/check.h"
#include "util/cli.h"

namespace presto::bench {

// --quick shrinks every workload for smoke runs (used by ctest); --scale=N
// divides the paper's problem sizes by N. --backend=fiber|thread|parallel
// and --workers=N pick the engine driving the simulation (equivalent to
// PRESTO_BACKEND/PRESTO_WORKERS; simulated results are bit-identical across
// backends — docs/performance.md §9 — only host speed differs).
struct Scale {
  std::int64_t divide = 1;
  int nodes = 32;
  sim::Backend backend = sim::default_backend();
  int workers = 0;

  static Scale from_cli(const util::Cli& cli) {
    Scale s;
    if (cli.get_bool("quick")) s.divide = 8;
    s.divide = cli.get_int("scale", s.divide);
    if (s.divide < 1) s.divide = 1;
    s.nodes = static_cast<int>(cli.get_int("nodes", 32));
    const std::string b = cli.get("backend", "");
    if (b == "fiber") {
      s.backend = sim::Backend::kFiber;
    } else if (b == "thread") {
      s.backend = sim::Backend::kThread;
    } else if (b == "parallel") {
      s.backend = sim::Backend::kParallel;
    } else {
      PRESTO_CHECK(b.empty(),
                   "--backend: expected fiber, thread or parallel, got '"
                       << b << "'");
    }
    s.workers = static_cast<int>(cli.get_int("workers", 0));
    return s;
  }

  // Applies the engine selection to a machine config built by the bench.
  void apply(runtime::MachineConfig& m) const {
    m.backend = backend;
    if (workers > 0) m.workers = workers;
  }
};

// --protocol=NAME restricts a bench's protocol sweep to one protocol (any
// name printed by runtime::protocol_kind_name: stache, predictive,
// predictive+anticipate, write-update, ccached). The default is every
// registered protocol in canonical sweep order — benches iterate the
// registry (runtime::kAllProtocolKinds) rather than keeping their own
// arrays, so a new protocol shows up in every sweep without per-tool edits.
// Unknown names abort with the list of valid ones.
inline std::vector<runtime::ProtocolKind> protocols_from_cli(
    const util::Cli& cli) {
  const std::string p = cli.get("protocol", "");
  if (p.empty())
    return std::vector<runtime::ProtocolKind>(
        std::begin(runtime::kAllProtocolKinds),
        std::end(runtime::kAllProtocolKinds));
  runtime::ProtocolKind kind;
  if (!runtime::protocol_kind_from_name(p.c_str(), &kind)) {
    std::string names;
    for (const auto k : runtime::kAllProtocolKinds) {
      if (!names.empty()) names += ", ";
      names += runtime::protocol_kind_name(k);
    }
    PRESTO_CHECK(false, "--protocol: unknown protocol '"
                            << p << "' (expected one of: " << names << ")");
  }
  return {kind};
}

// --trace=FILE[:cat,cat...] records a deterministic event trace of each run
// (docs/observability.md). ".json" writes Perfetto trace_event JSON, any
// other extension the binary format for presto_trace. When a bench runs
// several Systems, runs after the first get a ".N" path suffix.
inline trace::TraceConfig trace_from_cli(const util::Cli& cli) {
  return trace::TraceConfig::from_spec(cli.get("trace", ""));
}

inline void print_results(const std::string& title,
                          const std::vector<stats::Report>& reports) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%s", stats::Report::bars(reports).c_str());
  std::printf("%s", stats::Report::table(reports).c_str());
  const std::string trace = stats::Report::trace_summary(reports);
  if (!trace.empty()) std::printf("%s", trace.c_str());
  std::fflush(stdout);
}

inline void check_equal_checksums(const std::vector<apps::AppResult>& rs,
                                  double rel_tol = 0.0) {
  if (rs.empty()) return;
  const double base = rs.front().checksum;
  for (const auto& r : rs) {
    const double diff = r.checksum > base ? r.checksum - base
                                          : base - r.checksum;
    const double tol = rel_tol * (base < 0 ? -base : base);
    if (diff > tol) {
      std::fprintf(stderr,
                   "CHECKSUM MISMATCH: %.12g vs %.12g — versions computed "
                   "different answers!\n",
                   r.checksum, base);
    }
  }
}

}  // namespace presto::bench
