// Block-size sweeps beyond the old 64-node ceiling: 256/512/1024-node
// machines running the paper's iterative producer/consumer pattern (a ring
// of per-node blocks plus one widely-read hot block), under Stache and the
// predictive protocol, with the optional two-level cluster directory.
//
// Two questions, per machine width and block size:
//   * Does predictive presend still pay at scale, and where does the
//     advantage collapse? (exec_time ratio vs Stache per block size)
//   * Is resident protocol+network metadata sub-quadratic in nodes? Each
//     point reports measured metadata_bytes next to what the pre-sparse
//     dense layouts (nodes² channel table + per-node full tag arrays) would
//     have allocated for the same machine.
//
// Emits results/BENCH_scale.json (--json=... overrides; --quick skips the
// write by default, like host_throughput). --max-metadata-bytes=N exits
// non-zero if any measured point exceeds N — the CI perf-smoke leg passes a
// ceiling so a quadratic-metadata regression fails the build.
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.h"
#include "runtime/system.h"
#include "stats/recorder.h"
#include "util/check.h"
#include "util/cli.h"

using namespace presto;

namespace {

using Clock = std::chrono::steady_clock;

struct SweepPoint {
  int nodes = 0;
  std::uint32_t block = 0;
  const char* protocol = "";
  const char* pattern = "";
  int cluster_nodes = 0;
  std::uint64_t exec_time = 0;  // simulated ns
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t cc_flushes = 0;
  std::uint64_t presend_blocks = 0;
  std::size_t metadata_bytes = 0;
  std::size_t dense_equiv_bytes = 0;
  double wall_s = 0.0;
};

// Two iterative sharing patterns, scaled by machine width, both with phase
// directives so the predictive protocol has its schedule after the priming
// round:
//   * "ring"  — every node writes one block each round and its two ring
//     successors read it, plus one hot block written by node 0 and read by
//     32 consumers spread across the whole machine (the widely-shared
//     directory entry that spills past 64 nodes). All-to-neighbor: every
//     node is producer, consumer, and (page-grain) home at once.
//   * "bcast" — the paper's §3.2 producer/consumer shape at scale: node 0
//     (also the home) rewrites a 16-block region each round; 32 consumers
//     spread across the machine read all of it. Consumer fault stalls and
//     home handler occupancy dominate — the regime presend targets.
//   * "reduce" — every node adds into a 16-block commutative region homed on
//     node 0 each round, then 32 consumers read the merged totals. Under
//     Stache the adds are an rmw ownership ping-pong across the whole
//     machine; under ccached they privatize into per-node logs merged at the
//     home — the regime the commutative-update protocol targets.
SweepPoint run_point(int nodes, std::uint32_t block, const char* pattern,
                     runtime::ProtocolKind kind, int cluster_nodes,
                     int rounds) {
  runtime::MachineConfig m = runtime::MachineConfig::cm5_blizzard(nodes, block);
  m.mem.page_size = 512 >= block ? 512 : block;  // spread homes; keep pages small
  m.cluster_nodes = cluster_nodes;
  runtime::System sys(m, kind);

  const bool ringp = std::string_view(pattern) == "ring";
  const bool reducep = std::string_view(pattern) == "reduce";
  const auto ring_home = [&](mem::PageId p) {
    // Home each page so ring block i lands near node i's home region
    // (blocks per page > 1, so homes advance page by page).
    const std::uint32_t bpp = m.mem.page_size / block;
    return static_cast<int>((p * bpp) % static_cast<mem::PageId>(nodes));
  };
  const mem::Addr ring =
      ringp ? sys.space().alloc(static_cast<std::size_t>(nodes) * block,
                                ring_home)
            : 0;
  const int region_blocks = 16;
  const mem::Addr hot = sys.space().alloc_on_node(
      0, static_cast<std::size_t>(ringp ? 1 : region_blocks) * block);
  if (reducep)
    sys.space().set_commutative(
        hot, static_cast<std::size_t>(region_blocks) * block);
  const int hot_readers = 32;
  const int stride = nodes / hot_readers;

  const auto t0 = Clock::now();
  sys.run([&](runtime::NodeCtx& c) {
    const int n = c.nodes();
    const mem::Addr mine = ring + static_cast<mem::Addr>(c.id()) * block;
    for (int r = 0; r < rounds; ++r) {
      if (reducep) {
        // Every node contributes one unit to each block's first word, then
        // the consumers verify the merged total. Reads after the flush +
        // barrier (the ccached discipline); the read copies installed here
        // are what the next round's merges must quiesce.
        c.phase(0);
        for (int b = 0; b < region_blocks; ++b)
          c.cc_add(hot + static_cast<mem::Addr>(b) * block, 1);
        c.cc_flush();
        c.barrier();
        c.phase(1);
        if (c.id() % stride == 1)
          for (int b = 0; b < region_blocks; ++b)
            PRESTO_CHECK(c.read<std::int64_t>(
                             hot + static_cast<mem::Addr>(b) * block) ==
                             static_cast<std::int64_t>(r + 1) * n,
                         "stale reduce read");
        c.barrier();
        continue;
      }
      c.phase(0);
      if (ringp) {
        c.write<int>(mine, r * n + c.id());
        if (c.id() == 0) c.write<int>(hot, r + 1);
      } else if (c.id() == 0) {
        for (int b = 0; b < region_blocks; ++b)
          c.write<int>(hot + static_cast<mem::Addr>(b) * block, r * 100 + b);
      }
      c.barrier();
      c.phase(1);
      if (ringp) {
        for (int d = 1; d <= 2; ++d) {
          const int src = (c.id() + n - d) % n;
          const mem::Addr a = ring + static_cast<mem::Addr>(src) * block;
          PRESTO_CHECK(c.read<int>(a) == r * n + src, "stale ring read");
        }
        if (c.id() % stride == 1)
          PRESTO_CHECK(c.read<int>(hot) == r + 1, "stale hot read");
      } else if (c.id() % stride == 1) {
        for (int b = 0; b < region_blocks; ++b)
          PRESTO_CHECK(c.read<int>(hot + static_cast<mem::Addr>(b) * block) ==
                           r * 100 + b,
                       "stale bcast read");
      }
      c.barrier();
    }
  });

  SweepPoint p;
  p.nodes = nodes;
  p.block = block;
  p.protocol = runtime::protocol_kind_name(kind);
  p.pattern = pattern;
  p.cluster_nodes = cluster_nodes;
  p.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  p.exec_time = static_cast<std::uint64_t>(sys.exec_time());
  p.msgs = sys.network().messages_sent();
  p.bytes = sys.network().bytes_sent();
  p.read_faults = sys.recorder().sum(&stats::NodeCounters::read_faults);
  p.write_faults = sys.recorder().sum(&stats::NodeCounters::write_faults);
  if (const auto* cc = sys.ccached(); cc != nullptr)
    p.cc_flushes = cc->cc_stats().flushes;
  p.presend_blocks =
      sys.recorder().sum(&stats::NodeCounters::presend_blocks_received);
  p.metadata_bytes =
      sys.protocol().metadata_bytes() + sys.network().metadata_bytes();
  // Pre-sparse dense layouts for the same machine: the nodes² channel table
  // plus one tag byte per (node, block) over the whole allocated space.
  const std::size_t nblocks =
      sys.space().size_bytes() / sys.space().block_size();
  p.dense_equiv_bytes = net::Network::dense_equiv_bytes(nodes) +
                        static_cast<std::size_t>(nodes) * nblocks;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const int rounds = static_cast<int>(cli.get_int("rounds", quick ? 3 : 4));
  const int cluster = static_cast<int>(cli.get_int("cluster", 16));
  const long long max_meta = cli.get_int("max-metadata-bytes", 0);
  const std::string json_path =
      cli.get("json", quick ? "" : "results/BENCH_scale.json");
  cli.reject_unknown();

  // 64 is the widest dense-channel machine — the anchor every sparse point
  // is compared against.
  const std::vector<int> widths = quick
                                      ? std::vector<int>{64, 256}
                                      : std::vector<int>{64, 256, 512, 1024};
  const std::vector<std::uint32_t> blocks =
      quick ? std::vector<std::uint32_t>{32, 128}
            : std::vector<std::uint32_t>{32, 64, 128, 256};

  std::vector<SweepPoint> points;
  bool meta_ok = true;
  const auto print_point = [](const SweepPoint& p) {
    std::printf(
        "%-5s nodes=%4d block=%3u %-12s cluster=%-2d exec=%llu ns msgs=%llu "
        "faults=%llu presends=%llu meta=%zu dense_equiv=%zu wall=%.3fs\n",
        p.pattern, p.nodes, p.block, p.protocol, p.cluster_nodes,
        (unsigned long long)p.exec_time, (unsigned long long)p.msgs,
        (unsigned long long)p.read_faults,
        (unsigned long long)p.presend_blocks, p.metadata_bytes,
        p.dense_equiv_bytes, p.wall_s);
    std::fflush(stdout);
  };
  for (const char* pattern : {"ring", "bcast"}) {
    for (const int nodes : widths) {
      for (const std::uint32_t block : blocks) {
        const SweepPoint st = run_point(nodes, block, pattern,
                                        runtime::ProtocolKind::kStache, 0,
                                        rounds);
        const SweepPoint pr = run_point(nodes, block, pattern,
                                        runtime::ProtocolKind::kPredictive, 0,
                                        rounds);
        // One coarse-directory point per (width, block) pair shows what the
        // cluster directory buys on the same workload.
        const SweepPoint prc = run_point(nodes, block, pattern,
                                         runtime::ProtocolKind::kPredictive,
                                         cluster, rounds);
        print_point(st);
        print_point(pr);
        print_point(prc);
        // Predictive vs Stache at this shape: where presend pays.
        std::printf("  -> predictive/stache exec ratio %.3f at %s nodes=%d "
                    "block=%u\n",
                    st.exec_time > 0 ? static_cast<double>(pr.exec_time) /
                                           static_cast<double>(st.exec_time)
                                     : 0.0,
                    pattern, nodes, block);
        points.push_back(st);
        points.push_back(pr);
        points.push_back(prc);
      }
    }
  }
  // The reduce pattern compares the commutative-update protocol against the
  // rmw storm the same program produces under Stache.
  for (const int nodes : widths) {
    for (const std::uint32_t block : blocks) {
      const SweepPoint st = run_point(nodes, block, "reduce",
                                      runtime::ProtocolKind::kStache, 0,
                                      rounds);
      const SweepPoint cc = run_point(nodes, block, "reduce",
                                      runtime::ProtocolKind::kCCached, 0,
                                      rounds);
      print_point(st);
      print_point(cc);
      std::printf("  -> ccached/stache exec ratio %.3f at reduce nodes=%d "
                  "block=%u (%llu rmw faults -> %llu flushes)\n",
                  st.exec_time > 0 ? static_cast<double>(cc.exec_time) /
                                         static_cast<double>(st.exec_time)
                                   : 0.0,
                  nodes, block,
                  (unsigned long long)st.write_faults,
                  (unsigned long long)cc.cc_flushes);
      points.push_back(st);
      points.push_back(cc);
    }
  }

  for (const SweepPoint& p : points) {
    if (max_meta > 0 &&
        p.metadata_bytes > static_cast<std::size_t>(max_meta)) {
      std::fprintf(stderr,
                   "FAIL: metadata %zu bytes above ceiling %lld at nodes=%d "
                   "block=%u %s\n",
                   p.metadata_bytes, max_meta, p.nodes, p.block, p.protocol);
      meta_ok = false;
    }
    // Dense-width points (<= 64 nodes) ARE the dense layout; only sparse
    // machines must come in under it.
    PRESTO_CHECK(p.nodes <= net::Network::kDenseNodeLimit ||
                     p.metadata_bytes < p.dense_equiv_bytes,
                 "metadata " << p.metadata_bytes
                             << " not below the dense-layout equivalent "
                             << p.dense_equiv_bytes << " at nodes="
                             << p.nodes);
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    PRESTO_CHECK(f != nullptr, "cannot open " << json_path
                                              << " (run from the repo root)");
    std::fprintf(f, "{\n  \"rounds\": %d,\n  \"sweep\": [\n", rounds);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(
          f,
          "    {\"pattern\": \"%s\", \"nodes\": %d, \"block_size\": %u, "
          "\"protocol\": \"%s\", "
          "\"cluster_nodes\": %d, \"exec_time_ns\": %llu, \"msgs\": %llu, "
          "\"bytes\": %llu, \"read_faults\": %llu, \"write_faults\": %llu, "
          "\"cc_flushes\": %llu, \"presend_blocks\": %llu, "
          "\"metadata_bytes\": %zu, \"dense_equiv_bytes\": %zu, "
          "\"wall_s\": %.4f}%s\n",
          p.pattern, p.nodes, p.block, p.protocol, p.cluster_nodes,
          (unsigned long long)p.exec_time, (unsigned long long)p.msgs,
          (unsigned long long)p.bytes, (unsigned long long)p.read_faults,
          (unsigned long long)p.write_faults,
          (unsigned long long)p.cc_flushes,
          (unsigned long long)p.presend_blocks, p.metadata_bytes,
          p.dense_equiv_bytes, p.wall_s,
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"note\": \"exec_time is simulated; metadata_bytes is "
                 "resident host metadata vs the pre-sparse dense-layout "
                 "equivalent for the same machine; see "
                 "docs/performance.md #10\"\n"
                 "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return meta_ok ? 0 : 1;
}
